//! Property tests for the memory controller: arbitrary request streams
//! complete, reads observe program-order writes, and both schedulers and
//! page policies preserve the data semantics.

use ipim_dram::{
    AccessKind, AddressMap, Bank, Completion, DramTiming, MemController, PagePolicy, Request,
    RequestId, SchedPolicy,
};
use proptest::prelude::*;
use std::collections::HashMap;

fn controller(policy: SchedPolicy, page: PagePolicy) -> MemController {
    let timing = DramTiming::default();
    let map = AddressMap::default();
    let banks = (0..4).map(|_| Bank::new(timing, map)).collect();
    let mut mc = MemController::new(banks, timing, 16, page, policy);
    mc.set_refresh_enabled(false);
    mc
}

#[derive(Debug, Clone)]
struct Op {
    bank: usize,
    slot: u32, // 16-byte slot within a small region
    write: bool,
    value: u8,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        (0usize..4, 0u32..32, any::<bool>(), any::<u8>()).prop_map(|(bank, slot, write, value)| {
            Op { bank, slot, write, value }
        }),
        1..60,
    )
}

fn run_stream(
    mc: &mut MemController,
    ops: &[Op],
) -> (Vec<Completion>, HashMap<(usize, u32), u8>) {
    // Shadow model of expected memory contents per (bank, slot).
    let mut shadow: HashMap<(usize, u32), u8> = HashMap::new();
    let mut expected_read: HashMap<u64, u8> = HashMap::new();
    let mut pending: std::collections::VecDeque<Request> = Default::default();
    for (i, op) in ops.iter().enumerate() {
        let id = RequestId(i as u64);
        let addr = op.slot * 16;
        if op.write {
            shadow.insert((op.bank, op.slot), op.value);
            pending.push_back(Request {
                id,
                bank: op.bank,
                addr,
                kind: AccessKind::Write,
                data: [op.value; 16],
            });
        } else {
            expected_read.insert(i as u64, *shadow.get(&(op.bank, op.slot)).unwrap_or(&0));
            pending.push_back(Request {
                id,
                bank: op.bank,
                addr,
                kind: AccessKind::Read,
                data: [0; 16],
            });
        }
    }
    let mut now = 0u64;
    let mut done = Vec::new();
    while done.len() < ops.len() {
        while let Some(&req) = pending.front() {
            if mc.enqueue(req, now) {
                pending.pop_front();
            } else {
                break;
            }
        }
        done.extend(mc.tick(now));
        now += 1;
        assert!(now < 2_000_000, "stream did not complete");
    }
    // Drain trailing posted writes so the final memory state is visible.
    while !mc.is_idle() {
        mc.tick(now);
        now += 1;
        assert!(now < 2_100_000, "posted writes failed to drain");
    }
    // Verify reads against the shadow at issue time.
    for c in &done {
        if c.kind == AccessKind::Read {
            let want = expected_read[&c.id.0];
            assert_eq!(c.data, [want; 16], "read {:?} returned wrong data", c.id);
        }
    }
    (done, shadow)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fr_fcfs_open_page_preserves_data(ops in arb_ops()) {
        let mut mc = controller(SchedPolicy::FrFcfs, PagePolicy::Open);
        let (done, shadow) = run_stream(&mut mc, &ops);
        prop_assert_eq!(done.len(), ops.len());
        // Final memory state matches the shadow model.
        for ((bank, slot), v) in shadow {
            let mut buf = [0u8; 16];
            mc.bank(bank).array().read(slot * 16, &mut buf);
            prop_assert_eq!(buf, [v; 16]);
        }
    }

    #[test]
    fn fcfs_close_page_preserves_data(ops in arb_ops()) {
        let mut mc = controller(SchedPolicy::Fcfs, PagePolicy::Close);
        let (done, _) = run_stream(&mut mc, &ops);
        prop_assert_eq!(done.len(), ops.len());
    }

    #[test]
    fn refresh_does_not_lose_requests(ops in arb_ops()) {
        let timing = DramTiming::default();
        let map = AddressMap::default();
        let banks = (0..4).map(|_| Bank::new(timing, map)).collect();
        let mut mc =
            MemController::new(banks, timing, 16, PagePolicy::Open, SchedPolicy::FrFcfs);
        // refresh enabled
        let (done, _) = run_stream(&mut mc, &ops);
        prop_assert_eq!(done.len(), ops.len());
    }

    #[test]
    fn locality_counters_account_every_column_access(ops in arb_ops()) {
        let mut mc = controller(SchedPolicy::FrFcfs, PagePolicy::Open);
        let (_, _) = run_stream(&mut mc, &ops);
        // Drain trailing posted writes.
        let mut now = 2_000_000;
        while !mc.is_idle() {
            mc.tick(now);
            now += 1;
            prop_assert!(now < 2_100_000, "write drain stuck");
        }
        let l = mc.locality;
        let stats = mc.total_bank_stats();
        prop_assert_eq!(
            l.row_hits + l.row_misses + l.row_conflicts,
            stats.reads + stats.writes
        );
    }
}
