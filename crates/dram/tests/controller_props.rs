//! Property tests for the memory controller: arbitrary request streams
//! complete, reads observe program-order writes, and both schedulers and
//! page policies preserve the data semantics.

use ipim_dram::{
    AccessKind, AddressMap, Bank, Completion, DramTiming, MemController, PagePolicy, Request,
    RequestId, SchedPolicy,
};
use ipim_simkit::check;
use ipim_simkit::prop::{bool_any, tuple4, u32_in, u8_any, usize_in, vec_of, Gen};
use std::collections::HashMap;

fn controller(policy: SchedPolicy, page: PagePolicy) -> MemController {
    let timing = DramTiming::default();
    let map = AddressMap::default();
    let banks = (0..4).map(|_| Bank::new(timing, map)).collect();
    let mut mc = MemController::new(banks, timing, 16, page, policy);
    mc.set_refresh_enabled(false);
    mc
}

#[derive(Debug, Clone)]
struct Op {
    bank: usize,
    slot: u32, // 16-byte slot within a small region
    write: bool,
    value: u8,
}

/// Ops are generated as primitive tuples so the harness can shrink a
/// failing stream (drop ops, reduce banks/slots) before reporting it.
fn arb_raw_ops() -> Gen<Vec<(usize, u32, bool, u8)>> {
    vec_of(tuple4(usize_in(0, 4), u32_in(0, 32), bool_any(), u8_any()), 1, 60)
}

fn ops_from_raw(raw: &[(usize, u32, bool, u8)]) -> Vec<Op> {
    raw.iter().map(|&(bank, slot, write, value)| Op { bank, slot, write, value }).collect()
}

fn run_stream(mc: &mut MemController, ops: &[Op]) -> (Vec<Completion>, HashMap<(usize, u32), u8>) {
    // Shadow model of expected memory contents per (bank, slot).
    let mut shadow: HashMap<(usize, u32), u8> = HashMap::new();
    let mut expected_read: HashMap<u64, u8> = HashMap::new();
    let mut pending: std::collections::VecDeque<Request> = Default::default();
    for (i, op) in ops.iter().enumerate() {
        let id = RequestId(i as u64);
        let addr = op.slot * 16;
        if op.write {
            shadow.insert((op.bank, op.slot), op.value);
            pending.push_back(Request {
                id,
                bank: op.bank,
                addr,
                kind: AccessKind::Write,
                data: [op.value; 16],
            });
        } else {
            expected_read.insert(i as u64, *shadow.get(&(op.bank, op.slot)).unwrap_or(&0));
            pending.push_back(Request {
                id,
                bank: op.bank,
                addr,
                kind: AccessKind::Read,
                data: [0; 16],
            });
        }
    }
    let mut now = 0u64;
    let mut done = Vec::new();
    while done.len() < ops.len() {
        while let Some(&req) = pending.front() {
            if mc.enqueue(req, now) {
                pending.pop_front();
            } else {
                break;
            }
        }
        done.extend(mc.tick(now));
        now += 1;
        assert!(now < 2_000_000, "stream did not complete");
    }
    // Drain trailing posted writes so the final memory state is visible.
    while !mc.is_idle() {
        mc.tick(now);
        now += 1;
        assert!(now < 2_100_000, "posted writes failed to drain");
    }
    // Verify reads against the shadow at issue time.
    for c in &done {
        if c.kind == AccessKind::Read {
            let want = expected_read[&c.id.0];
            assert_eq!(c.data, [want; 16], "read {:?} returned wrong data", c.id);
        }
    }
    (done, shadow)
}

fn check_fr_fcfs_open_page(ops: &[Op]) {
    let mut mc = controller(SchedPolicy::FrFcfs, PagePolicy::Open);
    let (done, shadow) = run_stream(&mut mc, ops);
    assert_eq!(done.len(), ops.len());
    // Final memory state matches the shadow model.
    for ((bank, slot), v) in shadow {
        let mut buf = [0u8; 16];
        mc.bank(bank).array().read(slot * 16, &mut buf);
        assert_eq!(buf, [v; 16]);
    }
}

fn check_fcfs_close_page(ops: &[Op]) {
    let mut mc = controller(SchedPolicy::Fcfs, PagePolicy::Close);
    let (done, _) = run_stream(&mut mc, ops);
    assert_eq!(done.len(), ops.len());
}

fn check_refresh_completes(ops: &[Op]) {
    let timing = DramTiming::default();
    let map = AddressMap::default();
    let banks = (0..4).map(|_| Bank::new(timing, map)).collect();
    let mut mc = MemController::new(banks, timing, 16, PagePolicy::Open, SchedPolicy::FrFcfs);
    // refresh enabled
    let (done, _) = run_stream(&mut mc, ops);
    assert_eq!(done.len(), ops.len());
}

fn check_locality_counters(ops: &[Op]) {
    let mut mc = controller(SchedPolicy::FrFcfs, PagePolicy::Open);
    let (_, _) = run_stream(&mut mc, ops);
    // Drain trailing posted writes.
    let mut now = 2_000_000;
    while !mc.is_idle() {
        mc.tick(now);
        now += 1;
        assert!(now < 2_100_000, "write drain stuck");
    }
    let l = mc.locality;
    let stats = mc.total_bank_stats();
    assert_eq!(l.row_hits + l.row_misses + l.row_conflicts, stats.reads + stats.writes);
}

#[test]
fn fr_fcfs_open_page_preserves_data() {
    check("fr_fcfs_open_page_preserves_data", &arb_raw_ops(), |raw| {
        check_fr_fcfs_open_page(&ops_from_raw(raw));
    });
}

#[test]
fn fcfs_close_page_preserves_data() {
    check("fcfs_close_page_preserves_data", &arb_raw_ops(), |raw| {
        check_fcfs_close_page(&ops_from_raw(raw));
    });
}

#[test]
fn refresh_does_not_lose_requests() {
    check("refresh_does_not_lose_requests", &arb_raw_ops(), |raw| {
        check_refresh_completes(&ops_from_raw(raw));
    });
}

#[test]
fn locality_counters_account_every_column_access() {
    check("locality_counters_account_every_column_access", &arb_raw_ops(), |raw| {
        check_locality_counters(&ops_from_raw(raw));
    });
}

/// Historical shrunk counterexamples from the proptest era (the deleted
/// `controller_props.proptest-regressions` file), pinned as explicit
/// cases and run through every property above.
#[test]
fn regression_read_after_write_same_slot() {
    // cc 40d2b2e2…: read of (bank 2, slot 9) before a write to it.
    let ops = ops_from_raw(&[(2, 9, false, 0), (2, 9, true, 1)]);
    check_fr_fcfs_open_page(&ops);
    check_fcfs_close_page(&ops);
    check_refresh_completes(&ops);
    check_locality_counters(&ops);
}

#[test]
fn regression_single_write() {
    // cc 61183a40…: one posted write must still drain and land.
    let ops = ops_from_raw(&[(0, 0, true, 1)]);
    check_fr_fcfs_open_page(&ops);
    check_fcfs_close_page(&ops);
    check_refresh_completes(&ops);
    check_locality_counters(&ops);
}

#[test]
fn regression_interleaved_banks_write_read_write() {
    // cc 60d02d34…: write/read on bank 2 interleaved with read/write on
    // bank 1 at a distinct slot.
    let ops =
        ops_from_raw(&[(2, 3, true, 0), (2, 3, false, 0), (1, 29, false, 0), (1, 29, true, 29)]);
    check_fr_fcfs_open_page(&ops);
    check_fcfs_close_page(&ops);
    check_refresh_completes(&ops);
    check_locality_counters(&ops);
}
