//! Property tests for the skip-ahead `next_event` bounds of the DRAM layer
//! (see DESIGN.md §"Two-engine architecture").
//!
//! The contract under test: `next_event` returns a *sound lower bound* on
//! the next state transition — for every cycle strictly before the reported
//! one, the component must neither issue a DRAM command nor deliver a
//! completion. Random command interleavings probe the bound against the
//! real timing state machine; any late bound shows up as a transition on a
//! cycle where the bound claimed quiescence.

use ipim_dram::{
    AccessKind, AddressMap, Bank, BankCmd, BankState, DramTiming, MemController, PagePolicy,
    Request, RequestId, SchedPolicy,
};
use ipim_simkit::check;
use ipim_simkit::prop::{tuple3, tuple4, u32_in, u8_any, usize_in, vec_of, Gen};

fn controller(policy: SchedPolicy, page: PagePolicy, refresh: bool) -> MemController {
    let timing = DramTiming::default();
    let map = AddressMap::default();
    let banks = (0..4).map(|_| Bank::new(timing, map)).collect();
    let mut mc = MemController::new(banks, timing, 16, page, policy);
    mc.set_refresh_enabled(refresh);
    mc
}

/// Raw op: (bank, 16-byte slot, write?, value) — same shape as the
/// controller data-semantics properties, so failures shrink the same way.
fn arb_raw_ops() -> Gen<Vec<(usize, u32, bool, u8)>> {
    vec_of(tuple4(usize_in(0, 4), u32_in(0, 32), ipim_simkit::prop::bool_any(), u8_any()), 1, 60)
}

fn requests(raw: &[(usize, u32, bool, u8)]) -> Vec<Request> {
    raw.iter()
        .enumerate()
        .map(|(i, &(bank, slot, write, value))| Request {
            id: RequestId(i as u64),
            bank,
            addr: slot * 16,
            kind: if write { AccessKind::Write } else { AccessKind::Read },
            data: [value; 16],
        })
        .collect()
}

/// Drives `mc` through a request stream one cycle at a time; on every cycle
/// the controller acts (issues any command or returns any completion), the
/// bound computed *before* that tick must already have been due.
fn check_controller_bound(mc: &mut MemController, raw: &[(usize, u32, bool, u8)]) {
    let mut pending: std::collections::VecDeque<Request> = requests(raw).into();
    let total = pending.len();
    let mut done = 0usize;
    let mut now = 0u64;
    while done < total || !mc.is_idle() {
        while let Some(&req) = pending.front() {
            if mc.enqueue(req, now) {
                pending.pop_front();
            } else {
                break;
            }
        }
        let bound = mc.next_event(now);
        let stats_before = mc.total_bank_stats();
        let completions = mc.tick(now);
        let acted = !completions.is_empty() || mc.total_bank_stats() != stats_before;
        if acted {
            let b = bound.unwrap_or_else(|| {
                panic!("cycle {now}: controller acted but next_event claimed quiescence")
            });
            assert!(
                b <= now,
                "cycle {now}: controller acted but next_event reported {b} (late bound)"
            );
        }
        done += completions.len();
        now += 1;
        assert!(now < 2_000_000, "stream did not complete");
    }
}

#[test]
fn controller_next_event_is_sound_fr_fcfs_open() {
    check("controller_next_event_is_sound_fr_fcfs_open", &arb_raw_ops(), |raw| {
        check_controller_bound(&mut controller(SchedPolicy::FrFcfs, PagePolicy::Open, false), raw);
    });
}

#[test]
fn controller_next_event_is_sound_with_refresh() {
    check("controller_next_event_is_sound_with_refresh", &arb_raw_ops(), |raw| {
        check_controller_bound(&mut controller(SchedPolicy::FrFcfs, PagePolicy::Open, true), raw);
    });
}

#[test]
fn controller_next_event_is_sound_fcfs_close() {
    check("controller_next_event_is_sound_fcfs_close", &arb_raw_ops(), |raw| {
        check_controller_bound(&mut controller(SchedPolicy::Fcfs, PagePolicy::Close, false), raw);
    });
}

/// Raw bank step: (command selector, row, column).
fn arb_bank_steps() -> Gen<Vec<(usize, u32, u32)>> {
    vec_of(tuple3(usize_in(0, 5), u32_in(0, 8), u32_in(0, 16)), 1, 40)
}

/// Replays a random *legal* command sequence on a bare bank. Before each
/// command, every currently legal command's earliest cycle must be at or
/// after [`Bank::next_event`] — the bound the vault engine folds into its
/// own minimum — otherwise a state transition could precede the bound.
fn check_bank_bound(steps: &[(usize, u32, u32)]) {
    let mut bank = Bank::new(DramTiming::default(), AddressMap::default());
    let mut now = 0u64;
    for &(sel, row, col) in steps {
        let ne = bank.next_event();
        for cmd in
            [BankCmd::Act(row), BankCmd::Pre, BankCmd::Rd(col), BankCmd::Wr(col), BankCmd::Ref]
        {
            if let Some(t) = bank.earliest(cmd) {
                assert!(
                    t >= ne,
                    "{cmd:?} legal at {t}, before next_event {ne} (state {:?})",
                    bank.state()
                );
            }
        }
        // Issue one legal command chosen by the selector, at its earliest
        // legal cycle (monotone in `now` so the trace is a real schedule).
        let cmd = match (sel, bank.state()) {
            (0, BankState::Precharged) => BankCmd::Act(row),
            (1, BankState::Precharged) => BankCmd::Ref,
            (_, BankState::Precharged) => BankCmd::Act(row),
            (0, BankState::Active { .. }) => BankCmd::Pre,
            (1 | 2, BankState::Active { .. }) => BankCmd::Rd(col),
            (_, BankState::Active { .. }) => BankCmd::Wr(col),
        };
        let at = bank.earliest(cmd).expect("selected command is legal in state").max(now);
        bank.issue(cmd, at);
        now = at;
    }
}

#[test]
fn bank_next_event_bounds_every_legal_command() {
    check("bank_next_event_bounds_every_legal_command", &arb_bank_steps(), |steps| {
        check_bank_bound(steps);
    });
}
