//! Cycle-accurate DRAM bank model for the iPIM near-bank architecture.
//!
//! iPIM integrates compute logic next to each DRAM bank *without changing the
//! bank circuitry* (paper Sec. II-A), so the performance model of the banks is
//! ordinary DDR-style timing: `ACT`/`PRE`/`RD`/`WR`/`REF` commands constrained
//! by `tRCD`, `tRP`, `tRAS`, `tCCD`, `tRTP`, `tRRD_S/L`, `tFAW`, `tREFI` and
//! `tRFC` (Table III). This crate provides:
//!
//! * [`DramTiming`] — the timing parameter set (defaults from Table III),
//! * [`Bank`] — a single bank's command-legal state machine plus its data
//!   array (sparse, lazily allocated),
//! * [`MemController`] — the lightweight in-DRAM memory controller placed in
//!   each process group (paper Sec. IV-E): a 16-entry request queue, FCFS or
//!   FR-FCFS scheduling, open- or close-page row-buffer policies, and
//!   refresh scheduling,
//! * [`DramEnergy`] — activity counters and the Table III energy model.
//!
//! Time is measured in integer cycles of the 1 GHz iPIM clock (1 cycle =
//! 1 ns), represented as `u64`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod array;
mod bank;
mod controller;
mod energy;
mod timing;

pub use array::BankArray;
pub use bank::{Bank, BankCmd, BankState, BankStats};
pub use controller::{
    AccessKind, Completion, MemController, PagePolicy, Request, RequestId, RowLocality, SchedPolicy,
};
pub use energy::{DramEnergy, EnergyParams};
pub use timing::{AddressMap, DramTiming};

/// Bytes transferred by one column access (128-bit bank interface).
pub const ACCESS_BYTES: usize = 16;
