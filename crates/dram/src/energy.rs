//! Table III energy model for DRAM activity.
//!
//! Energies are tracked in picojoules (`f64`), with per-access constants
//! taken directly from the paper's Table III. Background and refresh power
//! are standard HBM2-class values (the paper inherits them from its
//! ramulator + cacti-3DD flow and folds them into the `DRAM` slice of its
//! Fig. 9 breakdown).

use crate::bank::BankStats;

/// DRAM energy parameters (picojoules / milliwatts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// Energy per 128-bit column read or write (Table III: 0.52 nJ).
    pub rd_wr_pj: f64,
    /// Energy per activate + precharge pair (Table III: 0.22 nJ).
    pub act_pre_pj: f64,
    /// Energy per per-bank refresh command.
    pub ref_pj: f64,
    /// Static background power per bank, in milliwatts.
    pub background_mw_per_bank: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self { rd_wr_pj: 520.0, act_pre_pj: 220.0, ref_pj: 2600.0, background_mw_per_bank: 0.9 }
    }
}

/// Accumulated DRAM energy, split by component (feeds Fig. 9).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DramEnergy {
    /// Read/write (CAS) energy in pJ.
    pub cas_pj: f64,
    /// Activate/precharge (RAS) energy in pJ.
    pub ras_pj: f64,
    /// Refresh energy in pJ.
    pub refresh_pj: f64,
    /// Background (static) energy in pJ.
    pub background_pj: f64,
}

impl DramEnergy {
    /// Computes energy from bank command counters and elapsed time.
    ///
    /// `elapsed_cycles` is in 1 ns cycles; `n_banks` scales background power.
    pub fn from_stats(
        stats: &BankStats,
        params: &EnergyParams,
        elapsed_cycles: u64,
        n_banks: usize,
    ) -> Self {
        // mW × ns = pJ.
        let background_pj =
            params.background_mw_per_bank * n_banks as f64 * elapsed_cycles as f64 * 1e-3;
        Self {
            cas_pj: (stats.reads + stats.writes) as f64 * params.rd_wr_pj,
            // ACT and PRE are paired in the 0.22 nJ figure; count pairs by
            // activates (every ACT is eventually precharged).
            ras_pj: stats.acts as f64 * params.act_pre_pj,
            refresh_pj: stats.refs as f64 * params.ref_pj,
            background_pj,
        }
    }

    /// Total DRAM energy in pJ.
    pub fn total_pj(&self) -> f64 {
        self.cas_pj + self.ras_pj + self.refresh_pj + self.background_pj
    }
}

impl std::ops::Add for DramEnergy {
    type Output = Self;

    fn add(self, rhs: Self) -> Self {
        Self {
            cas_pj: self.cas_pj + rhs.cas_pj,
            ras_pj: self.ras_pj + rhs.ras_pj,
            refresh_pj: self.refresh_pj + rhs.refresh_pj,
            background_pj: self.background_pj + rhs.background_pj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cas_energy_scales_with_accesses() {
        let stats = BankStats { acts: 0, pres: 0, reads: 10, writes: 5, refs: 0 };
        let e = DramEnergy::from_stats(&stats, &EnergyParams::default(), 0, 1);
        assert_eq!(e.cas_pj, 15.0 * 520.0);
        assert_eq!(e.ras_pj, 0.0);
    }

    #[test]
    fn ras_energy_counts_act_pre_pairs() {
        let stats = BankStats { acts: 7, pres: 7, reads: 0, writes: 0, refs: 0 };
        let e = DramEnergy::from_stats(&stats, &EnergyParams::default(), 0, 1);
        assert_eq!(e.ras_pj, 7.0 * 220.0);
    }

    #[test]
    fn background_scales_with_time_and_banks() {
        let stats = BankStats::default();
        let e = DramEnergy::from_stats(&stats, &EnergyParams::default(), 1000, 4);
        assert!((e.background_pj - 0.9 * 4.0 * 1000.0 * 1e-3).abs() < 1e-9);
    }

    #[test]
    fn add_combines_components() {
        let a = DramEnergy { cas_pj: 1.0, ras_pj: 2.0, refresh_pj: 3.0, background_pj: 4.0 };
        let b = a;
        let c = a + b;
        assert_eq!(c.total_pj(), 20.0);
    }
}
