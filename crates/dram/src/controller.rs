//! The lightweight in-DRAM memory controller of each process group.
//!
//! Paper Sec. IV-E: the controller contains a memory request queue
//! (16 entries), DRAM command translation/issue logic, the open-row address
//! register, and supports two page policies (open/close) and two scheduling
//! policies (FCFS, FR-FCFS). It also schedules refresh per `tREFI`/`tRFC`.
//!
//! The controller issues at most one DRAM *command* per cycle (single shared
//! command bus within the PG); data buses are per-bank, so bursts to
//! different banks overlap freely.

use std::collections::VecDeque;

use ipim_trace::{CompId, DramCmdKind, TraceEvent, Tracer};

use crate::{Bank, BankCmd, BankState, DramTiming};

/// Identifier the caller uses to match completions to requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u64);

/// Read or write access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// 16-byte read.
    Read,
    /// 16-byte write.
    Write,
}

/// One 16-byte bank access request from a PE.
#[derive(Debug, Clone, Copy)]
pub struct Request {
    /// Caller-chosen identifier, echoed in the [`Completion`].
    pub id: RequestId,
    /// Target bank within the process group.
    pub bank: usize,
    /// Byte address within the bank (16-byte aligned).
    pub addr: u32,
    /// Read or write.
    pub kind: AccessKind,
    /// Data for writes (ignored for reads).
    pub data: [u8; crate::ACCESS_BYTES],
}

/// Completion of a previously enqueued request.
#[derive(Debug, Clone, Copy)]
pub struct Completion {
    /// The identifier given at enqueue time.
    pub id: RequestId,
    /// Read or write.
    pub kind: AccessKind,
    /// Data returned by reads (zeroes for writes).
    pub data: [u8; crate::ACCESS_BYTES],
    /// Cycle at which the burst finished.
    pub finished_at: u64,
}

/// Row-buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PagePolicy {
    /// Leave rows open after column access (paper default).
    #[default]
    Open,
    /// Precharge as soon as legal after each column access.
    Close,
}

/// Request scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// First-come first-served.
    Fcfs,
    /// First-ready FCFS: row-buffer hits bypass older misses (paper default).
    #[default]
    FrFcfs,
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    req: Request,
    enqueued_at: u64,
    /// Arrival order, used to keep same-address reads and writes ordered.
    seq: u64,
    /// Whether servicing this request required an ACT (row was closed).
    saw_act: bool,
    /// Whether servicing this request required a PRE (row conflict).
    saw_pre: bool,
}

#[derive(Debug, Clone, Copy)]
struct InFlight {
    id: RequestId,
    kind: AccessKind,
    data: [u8; crate::ACCESS_BYTES],
    finish_at: u64,
}

/// Bursts in flight (column commands pipeline at `tCCD`, so several bursts
/// per bank overlap; the per-bank data bus is modeled by the bank's own
/// `tCCD` constraint).
type InFlightSet = Vec<InFlight>;

/// Row-buffer locality statistics kept by the controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RowLocality {
    /// Row-buffer hits (column access without a new ACT).
    pub row_hits: u64,
    /// Row misses (bank was precharged).
    pub row_misses: u64,
    /// Row conflicts (different row was open).
    pub row_conflicts: u64,
}

/// Per-process-group memory controller serving its PEs' banks.
#[derive(Debug, Clone)]
pub struct MemController {
    banks: Vec<Bank>,
    timing: DramTiming,
    queue: VecDeque<Pending>,
    queue_capacity: usize,
    // Posted writes: acknowledged on entry, drained to the banks lazily so
    // read streams keep their open rows (a standard write buffer, 4× the
    // read queue depth, as in a small write-back cache, so drains amortize the row switch).
    write_capacity: usize,
    write_buffer: VecDeque<Pending>,
    draining_writes: bool,
    read_idle_cycles: u32,
    next_seq: u64,
    write_acks: Vec<Completion>,
    in_flight: InFlightSet,
    page_policy: PagePolicy,
    sched_policy: SchedPolicy,
    refresh_enabled: bool,
    next_refresh: u64,
    refreshing: bool,
    // Inter-bank activation constraints.
    last_act: Option<u64>,
    act_window: VecDeque<u64>,
    /// Row-buffer locality statistics.
    pub locality: RowLocality,
    // Observability (detached by default; see `attach_trace`).
    tracer: Tracer,
    comp: CompId,
    bank_comps: Vec<CompId>,
}

impl MemController {
    /// Creates a controller over `banks` with a queue of `queue_capacity`
    /// entries (Table III: 16).
    pub fn new(
        banks: Vec<Bank>,
        timing: DramTiming,
        queue_capacity: usize,
        page_policy: PagePolicy,
        sched_policy: SchedPolicy,
    ) -> Self {
        Self {
            banks,
            timing,
            queue: VecDeque::with_capacity(queue_capacity),
            queue_capacity,
            write_capacity: queue_capacity * 8,
            write_buffer: VecDeque::with_capacity(queue_capacity * 8),
            draining_writes: false,
            read_idle_cycles: 0,
            next_seq: 0,
            write_acks: Vec::new(),
            in_flight: Vec::new(),
            page_policy,
            sched_policy,
            refresh_enabled: true,
            next_refresh: timing.t_refi,
            refreshing: false,
            last_act: None,
            act_window: VecDeque::with_capacity(4),
            locality: RowLocality::default(),
            tracer: Tracer::default(),
            comp: CompId::default(),
            bank_comps: Vec::new(),
        }
    }

    /// Attaches a tracer: `comp` identifies the controller itself (refresh
    /// windows, burst completions) and `bank_comps` its banks in index
    /// order (per-command and row open/close events).
    ///
    /// # Panics
    ///
    /// Panics if `bank_comps` does not provide one id per bank.
    pub fn attach_trace(&mut self, tracer: Tracer, comp: CompId, bank_comps: Vec<CompId>) {
        assert_eq!(bank_comps.len(), self.banks.len(), "one component id per bank");
        self.tracer = tracer;
        self.comp = comp;
        self.bank_comps = bank_comps;
    }

    /// Issues `cmd` to bank `b` and emits the command (and any row
    /// open/close transition) on the bank's trace component. All command
    /// issue paths funnel through here so the trace can never miss one.
    fn issue_cmd(&mut self, b: usize, cmd: BankCmd, now: u64) -> u64 {
        let finish = self.banks[b].issue(cmd, now);
        if self.tracer.enabled() {
            let comp = self.bank_comps[b];
            let kind = match cmd {
                BankCmd::Act(_) => DramCmdKind::Act,
                BankCmd::Pre => DramCmdKind::Pre,
                BankCmd::Rd(_) => DramCmdKind::Rd,
                BankCmd::Wr(_) => DramCmdKind::Wr,
                BankCmd::Ref => DramCmdKind::Ref,
            };
            self.tracer.emit(now, comp, || TraceEvent::DramCmd { kind });
            match cmd {
                BankCmd::Act(row) => {
                    self.tracer.emit(now, comp, || TraceEvent::RowOpen { row });
                }
                BankCmd::Pre => self.tracer.emit(now, comp, || TraceEvent::RowClose),
                _ => {}
            }
        }
        finish
    }

    /// Disables refresh scheduling (useful for deterministic unit tests).
    pub fn set_refresh_enabled(&mut self, enabled: bool) {
        self.refresh_enabled = enabled;
    }

    /// Number of banks served.
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Access to a bank (host upload/readback and statistics).
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn bank(&self, bank: usize) -> &Bank {
        &self.banks[bank]
    }

    /// Mutable access to a bank.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn bank_mut(&mut self, bank: usize) -> &mut Bank {
        &mut self.banks[bank]
    }

    /// Whether the read request queue is full.
    pub fn is_full(&self) -> bool {
        self.queue.len() >= self.queue_capacity
    }

    /// Number of queued (not yet issued) read requests.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Whether [`enqueue`](Self::enqueue) would currently accept a request
    /// of `kind` (reads and posted writes queue separately).
    pub fn can_accept(&self, kind: AccessKind) -> bool {
        match kind {
            AccessKind::Read => !self.is_full(),
            AccessKind::Write => self.write_buffer.len() < self.write_capacity,
        }
    }

    /// Whether a refresh sequence is in progress (it steps once per cycle).
    pub fn is_refreshing(&self) -> bool {
        self.refreshing
    }

    /// Whether the controller has no queued or in-flight work.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
            && self.in_flight.is_empty()
            && self.write_buffer.is_empty()
            && self.write_acks.is_empty()
    }

    /// Sound lower bound on the next cycle `>= now` at which a call to
    /// [`tick`](Self::tick) could do anything beyond the per-cycle idle
    /// bookkeeping that [`skip_idle`](Self::skip_idle) replays in bulk.
    ///
    /// The contract (see DESIGN.md §"Two-engine architecture"): for every
    /// cycle `t` in `now..T` (with `T` the returned bound), `tick(t)` issues
    /// no DRAM command, returns no completion, and changes no state other
    /// than the read-idle counter. Returning a bound *earlier* than the true
    /// next event is always safe (the engine just ticks through it);
    /// returning a later one would desynchronise the skip-ahead engine, so
    /// every branch below under-approximates. `None` means the controller
    /// is fully drained and (with refresh disabled) will never act again.
    pub fn next_event(&self, now: u64) -> Option<u64> {
        // Mid-refresh sequences step once per cycle (drains, PREs, REFs).
        if self.refreshing {
            return Some(now);
        }
        let mut t = u64::MAX;
        for a in &self.write_acks {
            t = t.min(a.finished_at);
        }
        for f in &self.in_flight {
            t = t.min(f.finish_at);
        }
        if self.refresh_enabled {
            t = t.min(self.next_refresh.max(now));
        }
        // Queued reads: the earliest cycle any of them could receive a
        // command, ignoring scheduling-policy gating (which only delays).
        for p in &self.queue {
            t = t.min(self.request_bound(&p.req));
        }
        if !self.write_buffer.is_empty() {
            // Drain-mode entry can flip at any tick the moment a write
            // becomes issuable, so always include the raw write bounds.
            for p in &self.write_buffer {
                t = t.min(self.request_bound(&p.req));
            }
            // The idle-read hysteresis (`read_idle_cycles > 150`) is the
            // one time-driven drain trigger; compute its crossing cycle.
            if self.queue.is_empty()
                && !self.draining_writes
                && self.write_buffer.len() < self.write_capacity * 3 / 4
            {
                t = t.min(now + 150u64.saturating_sub(self.read_idle_cycles as u64));
            }
        }
        if self.page_policy == PagePolicy::Close {
            for b in &self.banks {
                if let Some(pre) = b.earliest(BankCmd::Pre) {
                    t = t.min(pre);
                }
            }
        }
        if t == u64::MAX {
            None
        } else {
            Some(t.max(now))
        }
    }

    /// Earliest cycle `req` could receive *any* DRAM command given only its
    /// bank's timing state (a lower bound: inter-bank constraints and
    /// scheduling gates can only push the real issue later).
    fn request_bound(&self, req: &Request) -> u64 {
        let bank = &self.banks[req.bank];
        match bank.state() {
            BankState::Active { row } if row == bank.map().row(req.addr) => {
                bank.earliest(BankCmd::Rd(0)).expect("column legal on open row")
            }
            BankState::Active { .. } => bank.earliest(BankCmd::Pre).expect("PRE legal on open row"),
            BankState::Precharged => {
                bank.earliest(BankCmd::Act(0)).expect("ACT legal when precharged")
            }
        }
    }

    /// Replays the idle bookkeeping of `delta` ticks skipped under the
    /// [`next_event`](Self::next_event) contract: the only per-cycle state a
    /// quiescent tick mutates is the read-idle hysteresis counter.
    pub fn skip_idle(&mut self, delta: u64) {
        if self.queue.is_empty() {
            self.read_idle_cycles =
                self.read_idle_cycles.saturating_add(delta.min(u32::MAX as u64) as u32);
        }
    }

    /// Enqueues a request; returns `false` (rejecting it) when the queue is
    /// full — the caller must retry, which models back-pressure into the
    /// control core's pipeline.
    ///
    /// # Panics
    ///
    /// Panics if the bank index is out of range or the address is not
    /// 16-byte aligned.
    pub fn enqueue(&mut self, req: Request, now: u64) -> bool {
        assert!(req.bank < self.banks.len(), "bank {} out of range", req.bank);
        assert_eq!(req.addr % crate::ACCESS_BYTES as u32, 0, "unaligned access {:#x}", req.addr);
        match req.kind {
            AccessKind::Write => {
                if self.write_buffer.len() >= self.write_capacity {
                    return false;
                }
                // Posted write: the burst is acknowledged next cycle and
                // the data lands in the bank array when the write drains
                // (same-address ordering against reads is enforced by
                // sequence numbers on both sides).
                let seq = self.next_seq;
                self.next_seq += 1;
                self.write_buffer.push_back(Pending {
                    req,
                    enqueued_at: now,
                    seq,
                    saw_act: false,
                    saw_pre: false,
                });
                self.write_acks.push(Completion {
                    id: req.id,
                    kind: AccessKind::Write,
                    data: [0; crate::ACCESS_BYTES],
                    finished_at: now + 1,
                });
                true
            }
            AccessKind::Read => {
                if self.is_full() {
                    return false;
                }
                let seq = self.next_seq;
                self.next_seq += 1;
                self.queue.push_back(Pending {
                    req,
                    enqueued_at: now,
                    seq,
                    saw_act: false,
                    saw_pre: false,
                });
                true
            }
        }
    }

    /// Advances the controller by one cycle: possibly issues one DRAM
    /// command and returns any completions that finished at `now`.
    pub fn tick(&mut self, now: u64) -> Vec<Completion> {
        let mut done = Vec::new();
        let mut i = 0;
        while i < self.write_acks.len() {
            if self.write_acks[i].finished_at <= now {
                done.push(self.write_acks.swap_remove(i));
            } else {
                i += 1;
            }
        }
        let mut i = 0;
        while i < self.in_flight.len() {
            if self.in_flight[i].finish_at <= now {
                let f = self.in_flight.swap_remove(i);
                self.tracer.emit(now, self.comp, || TraceEvent::BurstDone {
                    read: matches!(f.kind, AccessKind::Read),
                });
                done.push(Completion {
                    id: f.id,
                    kind: f.kind,
                    data: f.data,
                    finished_at: f.finish_at,
                });
            } else {
                i += 1;
            }
        }

        if self.refresh_enabled && now >= self.next_refresh && !self.refreshing {
            self.refreshing = true;
            self.tracer.emit(now, self.comp, || TraceEvent::RefreshBegin);
        }
        if self.refreshing {
            if self.do_refresh_step(now) {
                // Refresh sequence consumed this cycle's command slot.
                return done;
            }
            self.refreshing = false;
            self.next_refresh = now + self.timing.t_refi;
            self.tracer.emit(now, self.comp, || TraceEvent::RefreshEnd);
        }

        self.issue_one(now);
        done
    }

    /// Progresses the refresh sequence; returns `true` while still busy.
    fn do_refresh_step(&mut self, now: u64) -> bool {
        // Close any open bank first, then refresh every bank (all-bank REF
        // issued per-bank back-to-back; tRFC overlaps).
        if !self.in_flight.is_empty() {
            return true; // wait for outstanding bursts to drain
        }
        if !self.write_buffer.is_empty() {
            // Flush posted writes before refreshing.
            self.issue_write(now);
            return true;
        }
        for b in 0..self.banks.len() {
            if matches!(self.banks[b].state(), BankState::Active { .. }) {
                if let Some(t) = self.banks[b].earliest(BankCmd::Pre) {
                    if t <= now {
                        self.issue_cmd(b, BankCmd::Pre, now);
                    }
                }
                return true;
            }
        }
        // All banks precharged: issue REF to the first bank that still needs
        // it this round (we approximate all-bank refresh as simultaneous by
        // issuing them on consecutive cycles; tRFC dominates).
        for b in 0..self.banks.len() {
            if self.banks[b].earliest(BankCmd::Act(0)).is_some_and(|t| t <= now) {
                self.issue_cmd(b, BankCmd::Ref, now);
                return b + 1 < self.banks.len();
            }
        }
        true
    }

    /// Issues at most one command according to the scheduling policy.
    ///
    /// Candidates are tried in policy priority order; the first request for
    /// which a command can legally issue this cycle consumes the PG's single
    /// command-bus slot.
    fn issue_one(&mut self, now: u64) {
        // Hysteresis: start draining writes when the buffer is almost full,
        // or when the read stream has been idle long enough that we are not
        // about to thrash its open rows; stop when the buffer empties.
        if self.queue.is_empty() {
            self.read_idle_cycles = self.read_idle_cycles.saturating_add(1);
        } else {
            self.read_idle_cycles = 0;
        }
        if self.write_buffer.len() >= self.write_capacity * 3 / 4
            || (self.read_idle_cycles > 150 && !self.write_buffer.is_empty())
        {
            self.draining_writes = true;
        }
        // Exit drain mode when the buffer is empty — or when every
        // remaining write is order-blocked behind an older same-address
        // read (the read must make progress first or the two would
        // deadlock against the drain gating below).
        if self.write_buffer.is_empty()
            || (self.draining_writes
                && self.write_buffer.iter().all(|w| self.write_order_blocked(w)))
        {
            self.draining_writes = false;
        }
        for idx in self.candidate_order(now) {
            if self.try_progress(idx, now) {
                return;
            }
        }
        if self.draining_writes && self.issue_write(now) {
            return;
        }
        self.maybe_auto_precharge(now);
    }

    /// Whether `w` must wait for an *older* queued same-address read.
    fn write_order_blocked(&self, w: &Pending) -> bool {
        self.queue
            .iter()
            .any(|r| r.req.bank == w.req.bank && r.req.addr == w.req.addr && r.seq < w.seq)
    }

    /// Issues one command on behalf of the write buffer (hits first, then
    /// the oldest write steers the row). Returns true if a command issued.
    fn issue_write(&mut self, now: u64) -> bool {
        if self.write_buffer.is_empty() {
            return false;
        }
        // Oldest drainable row-hit write first.
        let hit = self.write_buffer.iter().position(|p| {
            if self.write_order_blocked(p) {
                return false;
            }
            let bank = &self.banks[p.req.bank];
            match bank.state() {
                BankState::Active { row } if row == bank.map().row(p.req.addr) => {
                    bank.earliest(BankCmd::Wr(0)).is_some_and(|t| t <= now)
                }
                _ => false,
            }
        });
        if let Some(i) = hit {
            let p = self.write_buffer[i];
            let col = self.banks[p.req.bank].map().col(p.req.addr);
            self.issue_cmd(p.req.bank, BankCmd::Wr(col), now);
            self.banks[p.req.bank].array_mut().write(p.req.addr, &p.req.data);
            if p.saw_pre {
                self.locality.row_conflicts += 1;
            } else if p.saw_act {
                self.locality.row_misses += 1;
            } else {
                self.locality.row_hits += 1;
            }
            self.write_buffer.remove(i);
            return true;
        }
        // Steer the row buffer for the oldest drainable write.
        let Some(idx0) = (0..self.write_buffer.len())
            .find(|&i| !self.write_order_blocked(&self.write_buffer[i]))
        else {
            return false;
        };
        let p = self.write_buffer[idx0];
        let bank_state = self.banks[p.req.bank].state();
        match bank_state {
            BankState::Active { row } if row == self.banks[p.req.bank].map().row(p.req.addr) => {
                // Right row already open; just waiting on column timing.
            }
            BankState::Active { .. } => {
                if self.banks[p.req.bank].earliest(BankCmd::Pre).is_some_and(|t| t <= now) {
                    self.issue_cmd(p.req.bank, BankCmd::Pre, now);
                    self.write_buffer[idx0].saw_pre = true;
                    return true;
                }
            }
            BankState::Precharged => {
                let row = self.banks[p.req.bank].map().row(p.req.addr);
                let ok =
                    self.banks[p.req.bank].earliest(BankCmd::Act(row)).is_some_and(|t| t <= now);
                if ok && self.act_allowed(now) {
                    self.issue_cmd(p.req.bank, BankCmd::Act(row), now);
                    self.record_act(now);
                    self.write_buffer[idx0].saw_act = true;
                    return true;
                }
            }
        }
        false
    }

    /// Attempts to issue one command on behalf of queue entry `idx`;
    /// returns `true` if a command issued.
    fn try_progress(&mut self, idx: usize, now: u64) -> bool {
        let pending = self.queue[idx];
        let req = pending.req;
        // A read must wait for *older* same-address posted writes to drain
        // (a real controller would forward from the buffer; waiting is the
        // conservative model).
        if self
            .write_buffer
            .iter()
            .any(|w| w.req.bank == req.bank && w.req.addr == req.addr && w.seq < pending.seq)
        {
            self.draining_writes = true;
            return false;
        }
        let bank = &self.banks[req.bank];
        match bank.state() {
            BankState::Active { row } if row == bank.map().row(req.addr) => {
                // Row hit: issue the column command.
                let col = bank.map().col(req.addr);
                let cmd = BankCmd::Rd(col);
                if bank.earliest(cmd).is_some_and(|t| t <= now) {
                    let finish = self.issue_cmd(req.bank, cmd, now);
                    let mut data = [0u8; crate::ACCESS_BYTES];
                    self.banks[req.bank].array().read(req.addr, &mut data);
                    if pending.saw_pre {
                        self.locality.row_conflicts += 1;
                    } else if pending.saw_act {
                        self.locality.row_misses += 1;
                    } else {
                        self.locality.row_hits += 1;
                    }
                    self.in_flight.push(InFlight {
                        id: req.id,
                        kind: req.kind,
                        data,
                        finish_at: finish,
                    });
                    self.queue.remove(idx);
                    // Under close-page policy the row is closed by
                    // maybe_auto_precharge() on a later idle cycle.
                    return true;
                }
                false
            }
            BankState::Active { .. } => {
                // Row conflict: precharge first — but while the write
                // buffer drains, non-hit reads must not steer the row away
                // from the write stream (they would thrash it).
                if self.draining_writes {
                    return false;
                }
                if self.banks[req.bank].earliest(BankCmd::Pre).is_some_and(|t| t <= now) {
                    self.issue_cmd(req.bank, BankCmd::Pre, now);
                    self.queue[idx].saw_pre = true;
                    return true;
                }
                false
            }
            BankState::Precharged => {
                if self.draining_writes {
                    return false;
                }
                // Row miss: activate, honoring tRRD and tFAW across banks.
                let row = self.banks[req.bank].map().row(req.addr);
                let bank_ok =
                    self.banks[req.bank].earliest(BankCmd::Act(row)).is_some_and(|t| t <= now);
                if bank_ok && self.act_allowed(now) {
                    self.issue_cmd(req.bank, BankCmd::Act(row), now);
                    self.record_act(now);
                    self.queue[idx].saw_act = true;
                    return true;
                }
                false
            }
        }
    }

    /// Close-page helper: precharge any idle open bank with no queued hit.
    fn maybe_auto_precharge(&mut self, now: u64) {
        if self.page_policy != PagePolicy::Close {
            return;
        }
        for b in 0..self.banks.len() {
            let has_pending = self.queue.iter().any(|p| p.req.bank == b);
            if has_pending {
                continue;
            }
            if matches!(self.banks[b].state(), BankState::Active { .. })
                && self.banks[b].earliest(BankCmd::Pre).is_some_and(|t| t <= now)
            {
                self.issue_cmd(b, BankCmd::Pre, now);
                return; // one command per cycle
            }
        }
    }

    fn act_allowed(&self, now: u64) -> bool {
        if let Some(last) = self.last_act {
            if now < last + self.timing.t_rrd_l {
                return false;
            }
        }
        if self.act_window.len() == 4 {
            if let Some(&oldest) = self.act_window.front() {
                if now < oldest + self.timing.t_faw {
                    return false;
                }
            }
        }
        true
    }

    fn record_act(&mut self, now: u64) {
        self.last_act = Some(now);
        self.act_window.push_back(now);
        if self.act_window.len() > 4 {
            self.act_window.pop_front();
        }
    }

    /// Orders queue indices by scheduling-policy priority.
    fn candidate_order(&self, now: u64) -> Vec<usize> {
        match self.sched_policy {
            SchedPolicy::Fcfs => {
                // Strict arrival order: the oldest request for each bank may
                // progress; younger requests to the *same* bank must wait so
                // per-bank order (and per-address order) is preserved.
                let mut seen_banks = vec![false; self.banks.len()];
                let mut out = Vec::new();
                for (i, p) in self.queue.iter().enumerate() {
                    if !seen_banks[p.req.bank] {
                        seen_banks[p.req.bank] = true;
                        out.push(i);
                    }
                }
                out
            }
            SchedPolicy::FrFcfs => {
                // First-ready: row hits that can issue now, oldest first;
                // then the rest, oldest first — also oldest-per-bank so
                // same-address ordering is preserved. Bursts pipeline: a
                // bank with outstanding bursts still accepts new column
                // commands once its `tCCD` window reopens.
                let mut hits = Vec::new();
                let mut rest = Vec::new();
                let mut seen_banks = vec![false; self.banks.len()];
                for (i, p) in self.queue.iter().enumerate() {
                    let bank = &self.banks[p.req.bank];
                    let is_hit = match bank.state() {
                        BankState::Active { row } if row == bank.map().row(p.req.addr) => {
                            bank.earliest(BankCmd::Rd(0)).is_some_and(|t| t <= now)
                        }
                        _ => false,
                    };
                    if is_hit {
                        hits.push(i);
                    } else if !seen_banks[p.req.bank] {
                        // Only the oldest non-hit request per bank may steer
                        // the row buffer (PRE/ACT); younger ones wait.
                        seen_banks[p.req.bank] = true;
                        rest.push(i);
                    }
                }
                hits.extend(rest);
                hits
            }
        }
    }

    /// Snapshot of per-bank statistics summed over all banks.
    pub fn total_bank_stats(&self) -> crate::bank::BankStats {
        let mut s = crate::bank::BankStats::default();
        for b in &self.banks {
            s.acts += b.stats.acts;
            s.pres += b.stats.pres;
            s.reads += b.stats.reads;
            s.writes += b.stats.writes;
            s.refs += b.stats.refs;
        }
        s
    }

    /// Waiting time of the oldest queued request, in cycles.
    pub fn oldest_wait(&self, now: u64) -> u64 {
        self.queue.front().map_or(0, |p| now.saturating_sub(p.enqueued_at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AddressMap, DramTiming};

    fn controller(policy: SchedPolicy, page: PagePolicy) -> MemController {
        let timing = DramTiming::default();
        let map = AddressMap::default();
        let banks = (0..4).map(|_| Bank::new(timing, map)).collect();
        let mut mc = MemController::new(banks, timing, 16, page, policy);
        mc.set_refresh_enabled(false);
        mc
    }

    fn run_until_complete(
        mc: &mut MemController,
        mut now: u64,
        n: usize,
    ) -> (Vec<Completion>, u64) {
        let mut out = Vec::new();
        while out.len() < n {
            out.extend(mc.tick(now));
            now += 1;
            assert!(now < 1_000_000, "controller did not complete requests");
        }
        (out, now)
    }

    fn read(id: u64, bank: usize, addr: u32) -> Request {
        Request { id: RequestId(id), bank, addr, kind: AccessKind::Read, data: [0; 16] }
    }

    fn write(id: u64, bank: usize, addr: u32, byte: u8) -> Request {
        Request { id: RequestId(id), bank, addr, kind: AccessKind::Write, data: [byte; 16] }
    }

    #[test]
    fn single_read_miss_latency() {
        let mut mc = controller(SchedPolicy::FrFcfs, PagePolicy::Open);
        assert!(mc.enqueue(read(1, 0, 0), 0));
        let (done, _) = run_until_complete(&mut mc, 0, 1);
        // ACT@0, RD@14, data at 14+CL+1 = 29.
        assert_eq!(done[0].finished_at, 29);
        assert_eq!(mc.locality.row_misses, 1);
    }

    #[test]
    fn row_hit_is_faster_than_miss() {
        let mut mc = controller(SchedPolicy::FrFcfs, PagePolicy::Open);
        assert!(mc.enqueue(read(1, 0, 0), 0));
        let (_, now) = run_until_complete(&mut mc, 0, 1);
        assert!(mc.enqueue(read(2, 0, 16), now));
        let (done, end) = run_until_complete(&mut mc, now, 1);
        assert_eq!(mc.locality.row_hits, 1);
        // Hit takes CL+1 after issue; total wall time much less than a miss.
        assert!(end - now <= DramTiming::default().hit_read_latency() + 2, "{done:?}");
    }

    #[test]
    fn write_then_read_same_address_returns_data() {
        let mut mc = controller(SchedPolicy::FrFcfs, PagePolicy::Open);
        assert!(mc.enqueue(write(1, 2, 64, 0xAB), 0));
        assert!(mc.enqueue(read(2, 2, 64), 0));
        let (done, _) = run_until_complete(&mut mc, 0, 2);
        let rd = done.iter().find(|c| c.id == RequestId(2)).unwrap();
        assert_eq!(rd.data, [0xAB; 16]);
    }

    #[test]
    fn row_conflict_precharges_then_activates() {
        let mut mc = controller(SchedPolicy::FrFcfs, PagePolicy::Open);
        assert!(mc.enqueue(read(1, 0, 0), 0));
        let (_, now) = run_until_complete(&mut mc, 0, 1);
        // Different row on the same bank.
        assert!(mc.enqueue(read(2, 0, 4096), now));
        let (_, _) = run_until_complete(&mut mc, now, 1);
        assert_eq!(mc.locality.row_conflicts, 1);
        assert_eq!(mc.locality.row_misses, 1); // classification is per request
    }

    #[test]
    fn fr_fcfs_lets_hit_bypass_conflict() {
        let mut mc = controller(SchedPolicy::FrFcfs, PagePolicy::Open);
        assert!(mc.enqueue(read(1, 0, 0), 0));
        let (_, now) = run_until_complete(&mut mc, 0, 1);
        // Older request conflicts (row 2), younger hits (row 0).
        assert!(mc.enqueue(read(2, 0, 4096), now));
        assert!(mc.enqueue(read(3, 0, 16), now));
        let (done, _) = run_until_complete(&mut mc, now, 2);
        assert_eq!(done[0].id, RequestId(3), "row hit should complete first");
        assert_eq!(done[1].id, RequestId(2));
    }

    #[test]
    fn fcfs_preserves_order() {
        let mut mc = controller(SchedPolicy::Fcfs, PagePolicy::Open);
        assert!(mc.enqueue(read(1, 0, 0), 0));
        let (_, now) = run_until_complete(&mut mc, 0, 1);
        assert!(mc.enqueue(read(2, 0, 4096), now));
        assert!(mc.enqueue(read(3, 0, 16), now));
        let (done, _) = run_until_complete(&mut mc, now, 2);
        assert_eq!(done[0].id, RequestId(2));
        assert_eq!(done[1].id, RequestId(3));
    }

    #[test]
    fn queue_capacity_backpressure() {
        let mut mc = controller(SchedPolicy::FrFcfs, PagePolicy::Open);
        for i in 0..16 {
            assert!(mc.enqueue(read(i, 0, 16 * i as u32), 0));
        }
        assert!(mc.is_full());
        assert!(!mc.enqueue(read(99, 0, 0), 0));
    }

    #[test]
    fn parallel_banks_overlap() {
        let mut mc = controller(SchedPolicy::FrFcfs, PagePolicy::Open);
        for b in 0..4 {
            assert!(mc.enqueue(read(b as u64, b, 0), 0));
        }
        let (done, end) = run_until_complete(&mut mc, 0, 4);
        // Serial banks would need 4 × 29 = 116 cycles; with bank-level
        // parallelism only the command bus and tRRD serialize the ACTs.
        assert!(end < 70, "bank-level parallelism missing: end={end} {done:?}");
    }

    #[test]
    fn trrd_separates_activates() {
        let mut mc = controller(SchedPolicy::FrFcfs, PagePolicy::Open);
        assert!(mc.enqueue(read(0, 0, 0), 0));
        assert!(mc.enqueue(read(1, 1, 0), 0));
        let mut acts = Vec::new();
        for now in 0..40 {
            mc.tick(now);
            let total: u64 = (0..4).map(|b| mc.bank(b).stats.acts).sum();
            if acts.last() != Some(&total) {
                acts.push(total);
            }
        }
        // Both ACTs eventually issue; the second at least tRRD_L after.
        assert_eq!(*acts.last().unwrap(), 2);
    }

    #[test]
    fn close_page_precharges_idle_banks() {
        let mut mc = controller(SchedPolicy::FrFcfs, PagePolicy::Close);
        assert!(mc.enqueue(read(1, 0, 0), 0));
        let (_, now) = run_until_complete(&mut mc, 0, 1);
        // Give the auto-precharge time to happen.
        for t in now..now + 60 {
            mc.tick(t);
        }
        assert_eq!(mc.bank(0).state(), BankState::Precharged);
    }

    #[test]
    fn refresh_eventually_runs() {
        let timing = DramTiming::default();
        let map = AddressMap::default();
        let banks = (0..4).map(|_| Bank::new(timing, map)).collect();
        let mut mc = MemController::new(banks, timing, 16, PagePolicy::Open, SchedPolicy::FrFcfs);
        for now in 0..(timing.t_refi + timing.t_rfc + 20) {
            mc.tick(now);
        }
        assert!(mc.total_bank_stats().refs >= 4, "all banks refresh once per tREFI");
    }

    #[test]
    #[should_panic(expected = "unaligned")]
    fn unaligned_request_panics() {
        let mut mc = controller(SchedPolicy::FrFcfs, PagePolicy::Open);
        mc.enqueue(read(0, 0, 3), 0);
    }
}
