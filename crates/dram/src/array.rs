//! Sparse, lazily-allocated backing store for a DRAM bank's contents.
//!
//! A full iPIM machine has 4096 banks of 16 MiB each; allocating them eagerly
//! would need 64 GiB of host memory. Workloads touch a small, contiguous
//! fraction of each bank, so the array allocates 4 KiB pages on first write
//! and reads unwritten locations as zero (DRAM contents after host
//! initialization are defined by the host upload anyway).

use std::collections::HashMap;

const PAGE_BYTES: usize = 4096;

/// Sparse byte array modelling one bank's data contents.
#[derive(Debug, Clone, Default)]
pub struct BankArray {
    pages: HashMap<u32, Box<[u8; PAGE_BYTES]>>,
}

impl BankArray {
    /// Creates an empty (all-zero) bank array.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads `buf.len()` bytes starting at `addr`; unwritten bytes are zero.
    pub fn read(&self, addr: u32, buf: &mut [u8]) {
        let mut addr = addr as usize;
        let mut off = 0;
        while off < buf.len() {
            let page = (addr / PAGE_BYTES) as u32;
            let inner = addr % PAGE_BYTES;
            let n = (PAGE_BYTES - inner).min(buf.len() - off);
            match self.pages.get(&page) {
                Some(p) => buf[off..off + n].copy_from_slice(&p[inner..inner + n]),
                None => buf[off..off + n].fill(0),
            }
            addr += n;
            off += n;
        }
    }

    /// Writes `data` starting at byte `addr`, allocating pages as needed.
    pub fn write(&mut self, addr: u32, data: &[u8]) {
        let mut addr = addr as usize;
        let mut off = 0;
        while off < data.len() {
            let page = (addr / PAGE_BYTES) as u32;
            let inner = addr % PAGE_BYTES;
            let n = (PAGE_BYTES - inner).min(data.len() - off);
            let p = self.pages.entry(page).or_insert_with(|| Box::new([0; PAGE_BYTES]));
            p[inner..inner + n].copy_from_slice(&data[off..off + n]);
            addr += n;
            off += n;
        }
    }

    /// Reads a little-endian `u32` at `addr`.
    pub fn read_u32(&self, addr: u32) -> u32 {
        let mut b = [0u8; 4];
        self.read(addr, &mut b);
        u32::from_le_bytes(b)
    }

    /// Writes a little-endian `u32` at `addr`.
    pub fn write_u32(&mut self, addr: u32, v: u32) {
        self.write(addr, &v.to_le_bytes());
    }

    /// Reads an `f32` at `addr`.
    pub fn read_f32(&self, addr: u32) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Writes an `f32` at `addr`.
    pub fn write_f32(&mut self, addr: u32, v: f32) {
        self.write_u32(addr, v.to_bits());
    }

    /// Number of 4 KiB pages currently allocated.
    pub fn allocated_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_reads_zero() {
        let a = BankArray::new();
        let mut buf = [0xAAu8; 32];
        a.read(123, &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
        assert_eq!(a.allocated_pages(), 0);
    }

    #[test]
    fn write_read_round_trip() {
        let mut a = BankArray::new();
        let data: Vec<u8> = (0..=255).collect();
        a.write(100, &data);
        let mut back = vec![0u8; 256];
        a.read(100, &mut back);
        assert_eq!(back, data);
    }

    #[test]
    fn cross_page_access() {
        let mut a = BankArray::new();
        let data = vec![7u8; 10000];
        a.write(PAGE_BYTES as u32 - 5, &data);
        assert_eq!(a.allocated_pages(), 4);
        let mut back = vec![0u8; 10000];
        a.read(PAGE_BYTES as u32 - 5, &mut back);
        assert_eq!(back, data);
    }

    #[test]
    fn scalar_helpers() {
        let mut a = BankArray::new();
        a.write_u32(8, 0xDEAD_BEEF);
        assert_eq!(a.read_u32(8), 0xDEAD_BEEF);
        a.write_f32(16, -1.25);
        assert_eq!(a.read_f32(16), -1.25);
    }

    #[test]
    fn partial_overwrite_preserves_neighbors() {
        let mut a = BankArray::new();
        a.write(0, &[1, 2, 3, 4]);
        a.write(1, &[9, 9]);
        let mut buf = [0u8; 4];
        a.read(0, &mut buf);
        assert_eq!(buf, [1, 9, 9, 4]);
    }
}
