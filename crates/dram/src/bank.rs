//! Single-bank command-legal timing state machine.

use crate::{AddressMap, BankArray, DramTiming};

/// Row-buffer state of a bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankState {
    /// All rows closed; an ACT is required before column access.
    Precharged,
    /// A row is latched in the row buffer.
    Active {
        /// The open row index.
        row: u32,
    },
}

/// A DRAM command issued to one bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BankCmd {
    /// Activate (open) a row.
    Act(u32),
    /// Precharge (close) the open row.
    Pre,
    /// Column read of the open row (column index in 16-byte units).
    Rd(u32),
    /// Column write of the open row.
    Wr(u32),
    /// Refresh (bank-level).
    Ref,
}

/// One DRAM bank: timing constraints plus its data array.
///
/// The bank enforces intra-bank constraints (`tRCD`, `tRP`, `tRAS`, `tCCD`,
/// `tRTP`, `tWR`, `tRFC`); inter-bank constraints (`tRRD`, `tFAW`) live in
/// the per-process-group [`MemController`](crate::MemController).
#[derive(Debug, Clone)]
pub struct Bank {
    timing: DramTiming,
    map: AddressMap,
    state: BankState,
    next_act: u64,
    next_pre: u64,
    next_col: u64,
    array: BankArray,
    /// Command counters for the energy model and row-locality statistics.
    pub stats: BankStats,
}

/// Activity counters of one bank.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BankStats {
    /// Activate commands issued.
    pub acts: u64,
    /// Precharge commands issued.
    pub pres: u64,
    /// Column reads issued.
    pub reads: u64,
    /// Column writes issued.
    pub writes: u64,
    /// Refresh commands issued.
    pub refs: u64,
}

impl Bank {
    /// Creates a precharged, empty bank.
    pub fn new(timing: DramTiming, map: AddressMap) -> Self {
        Self {
            timing,
            map,
            state: BankState::Precharged,
            next_act: 0,
            next_pre: 0,
            next_col: 0,
            array: BankArray::new(),
            stats: BankStats::default(),
        }
    }

    /// Current row-buffer state.
    pub fn state(&self) -> BankState {
        self.state
    }

    /// The address map describing this bank's geometry.
    pub fn map(&self) -> &AddressMap {
        &self.map
    }

    /// Immutable access to the bank's data contents (host readback).
    pub fn array(&self) -> &BankArray {
        &self.array
    }

    /// Mutable access to the bank's data contents (host upload).
    pub fn array_mut(&mut self) -> &mut BankArray {
        &mut self.array
    }

    /// Earliest cycle at which `cmd` may legally issue, or `None` if the
    /// command is illegal in the current state (e.g. `Rd` while precharged).
    pub fn earliest(&self, cmd: BankCmd) -> Option<u64> {
        match (cmd, self.state) {
            (BankCmd::Act(_), BankState::Precharged) => Some(self.next_act),
            (BankCmd::Act(_), BankState::Active { .. }) => None,
            (BankCmd::Pre, BankState::Active { .. }) => Some(self.next_pre),
            // PRE on a precharged bank is a legal NOP in real DRAM; we forbid
            // it so scheduler bugs surface in tests.
            (BankCmd::Pre, BankState::Precharged) => None,
            (BankCmd::Rd(_) | BankCmd::Wr(_), BankState::Active { .. }) => Some(self.next_col),
            (BankCmd::Rd(_) | BankCmd::Wr(_), BankState::Precharged) => None,
            (BankCmd::Ref, BankState::Precharged) => Some(self.next_act),
            (BankCmd::Ref, BankState::Active { .. }) => None,
        }
    }

    /// Issues `cmd` at cycle `now`, updating timing state.
    ///
    /// For column commands the return value is the cycle at which the data
    /// burst completes (read data available / write data absorbed).
    ///
    /// # Panics
    ///
    /// Panics if the command is illegal at `now` — the memory controller is
    /// responsible for only issuing legal commands, so a violation here is a
    /// simulator bug, not a recoverable condition.
    pub fn issue(&mut self, cmd: BankCmd, now: u64) -> u64 {
        let earliest = self
            .earliest(cmd)
            .unwrap_or_else(|| panic!("illegal {cmd:?} in state {:?}", self.state));
        assert!(now >= earliest, "{cmd:?} issued at {now} before earliest legal cycle {earliest}");
        let t = &self.timing;
        match cmd {
            BankCmd::Act(row) => {
                assert!(row < self.map.rows(), "row {row} out of range");
                self.state = BankState::Active { row };
                self.next_col = now + t.t_rcd;
                self.next_pre = self.next_pre.max(now + t.t_ras);
                self.stats.acts += 1;
                now + t.t_rcd
            }
            BankCmd::Pre => {
                self.state = BankState::Precharged;
                self.next_act = self.next_act.max(now + t.t_rp);
                self.stats.pres += 1;
                now + t.t_rp
            }
            BankCmd::Rd(_col) => {
                self.next_col = now + t.t_ccd;
                self.next_pre = self.next_pre.max(now + t.t_rtp);
                self.stats.reads += 1;
                now + t.cl + 1
            }
            BankCmd::Wr(_col) => {
                self.next_col = now + t.t_ccd;
                self.next_pre = self.next_pre.max(now + t.cwl + 1 + t.t_wr);
                self.stats.writes += 1;
                now + t.cwl + 1
            }
            BankCmd::Ref => {
                self.next_act = self.next_act.max(now + t.t_rfc);
                self.stats.refs += 1;
                now + t.t_rfc
            }
        }
    }

    /// Earliest cycle at which *any* legal command could issue to this bank
    /// — the bank's `next_event` lower bound for the skip-ahead engine. No
    /// bank state transition can occur strictly before the returned cycle,
    /// because every legal command's [`earliest`](Self::earliest) is at
    /// least this value.
    pub fn next_event(&self) -> u64 {
        match self.state {
            BankState::Precharged => self.next_act,
            BankState::Active { .. } => self.next_pre.min(self.next_col),
        }
    }

    /// The row currently open, if any.
    pub fn open_row(&self) -> Option<u32> {
        match self.state {
            BankState::Active { row } => Some(row),
            BankState::Precharged => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank() -> Bank {
        Bank::new(DramTiming::default(), AddressMap::default())
    }

    #[test]
    fn fresh_bank_is_precharged() {
        let b = bank();
        assert_eq!(b.state(), BankState::Precharged);
        assert_eq!(b.open_row(), None);
        assert_eq!(b.earliest(BankCmd::Act(0)), Some(0));
        assert_eq!(b.earliest(BankCmd::Rd(0)), None);
        assert_eq!(b.earliest(BankCmd::Pre), None);
    }

    #[test]
    fn act_then_read_respects_trcd() {
        let mut b = bank();
        b.issue(BankCmd::Act(5), 0);
        assert_eq!(b.open_row(), Some(5));
        assert_eq!(b.earliest(BankCmd::Rd(0)), Some(14)); // tRCD
        let done = b.issue(BankCmd::Rd(0), 14);
        assert_eq!(done, 14 + 14 + 1); // CL + burst
    }

    #[test]
    fn back_to_back_reads_respect_tccd() {
        let mut b = bank();
        b.issue(BankCmd::Act(0), 0);
        b.issue(BankCmd::Rd(0), 14);
        assert_eq!(b.earliest(BankCmd::Rd(1)), Some(16)); // + tCCD
    }

    #[test]
    fn precharge_respects_tras_and_trtp() {
        let mut b = bank();
        b.issue(BankCmd::Act(0), 0);
        // tRAS=33 dominates read's tRTP here.
        assert_eq!(b.earliest(BankCmd::Pre), Some(33));
        b.issue(BankCmd::Rd(0), 14);
        assert_eq!(b.earliest(BankCmd::Pre), Some(33));
        // A late read pushes PRE out by tRTP.
        b.issue(BankCmd::Rd(1), 40);
        assert_eq!(b.earliest(BankCmd::Pre), Some(44));
    }

    #[test]
    fn write_recovery_delays_precharge() {
        let mut b = bank();
        b.issue(BankCmd::Act(0), 0);
        b.issue(BankCmd::Wr(0), 14);
        // PRE must wait CWL + burst + tWR after the write command.
        assert_eq!(b.earliest(BankCmd::Pre), Some(14 + 10 + 1 + 15).map(|v: u64| v.max(33)));
    }

    #[test]
    fn precharge_to_act_respects_trp() {
        let mut b = bank();
        b.issue(BankCmd::Act(0), 0);
        b.issue(BankCmd::Pre, 33);
        assert_eq!(b.earliest(BankCmd::Act(1)), Some(33 + 14));
        b.issue(BankCmd::Act(1), 47);
        assert_eq!(b.open_row(), Some(1));
    }

    #[test]
    fn refresh_blocks_activation_for_trfc() {
        let mut b = bank();
        b.issue(BankCmd::Ref, 0);
        assert_eq!(b.earliest(BankCmd::Act(0)), Some(350));
        assert_eq!(b.stats.refs, 1);
    }

    #[test]
    #[should_panic(expected = "illegal")]
    fn read_while_precharged_panics() {
        let mut b = bank();
        b.issue(BankCmd::Rd(0), 0);
    }

    #[test]
    #[should_panic(expected = "before earliest legal cycle")]
    fn premature_command_panics() {
        let mut b = bank();
        b.issue(BankCmd::Act(0), 0);
        b.issue(BankCmd::Rd(0), 5); // violates tRCD
    }

    #[test]
    fn stats_count_commands() {
        let mut b = bank();
        b.issue(BankCmd::Act(0), 0);
        b.issue(BankCmd::Rd(0), 14);
        b.issue(BankCmd::Wr(1), 16);
        let pre_at = b.earliest(BankCmd::Pre).unwrap();
        b.issue(BankCmd::Pre, pre_at);
        assert_eq!(b.stats, BankStats { acts: 1, pres: 1, reads: 1, writes: 1, refs: 0 });
    }
}
