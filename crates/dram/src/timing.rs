//! DRAM timing parameters and the bank address map.

/// DRAM timing parameters in cycles of the 1 GHz iPIM clock (Table III).
///
/// `tCK` is 1 ns, so cycle counts equal nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramTiming {
    /// ACT-to-RD/WR delay (row to column command).
    pub t_rcd: u64,
    /// Column-to-column command delay.
    pub t_ccd: u64,
    /// Read-to-precharge delay.
    pub t_rtp: u64,
    /// Precharge-to-activate delay.
    pub t_rp: u64,
    /// Activate-to-precharge minimum row-open time.
    pub t_ras: u64,
    /// Activate-to-activate delay, different bank groups.
    pub t_rrd_s: u64,
    /// Activate-to-activate delay, same bank group.
    pub t_rrd_l: u64,
    /// Four-activate window.
    pub t_faw: u64,
    /// Write recovery time (last write data to precharge).
    pub t_wr: u64,
    /// CAS (read) latency: RD command to data.
    pub cl: u64,
    /// CAS write latency: WR command to data.
    pub cwl: u64,
    /// Average refresh interval.
    pub t_refi: u64,
    /// Refresh cycle time (bank busy per refresh).
    pub t_rfc: u64,
}

impl Default for DramTiming {
    fn default() -> Self {
        // Table III values; tWR/CL/CWL/tREFI/tRFC are standard HBM2-class
        // values the paper inherits from ramulator's config.
        Self {
            t_rcd: 14,
            t_ccd: 2,
            t_rtp: 4,
            t_rp: 14,
            t_ras: 33,
            t_rrd_s: 4,
            t_rrd_l: 6,
            t_faw: 16,
            t_wr: 15,
            cl: 14,
            cwl: 10,
            t_refi: 3900,
            t_rfc: 350,
        }
    }
}

impl DramTiming {
    /// Latency of a row-buffer *hit* read: RD command + CAS latency + one
    /// 128-bit burst beat.
    pub fn hit_read_latency(&self) -> u64 {
        self.cl + 1
    }

    /// Latency of a row-buffer *miss* read on a precharged bank:
    /// ACT → (tRCD) → RD → (CL + beat).
    pub fn miss_read_latency(&self) -> u64 {
        self.t_rcd + self.cl + 1
    }

    /// Latency of a row-buffer *conflict* read (different row open):
    /// PRE → (tRP) → ACT → (tRCD) → RD → (CL + beat).
    pub fn conflict_read_latency(&self) -> u64 {
        self.t_rp + self.t_rcd + self.cl + 1
    }
}

/// Maps a flat bank byte address to (row, column) coordinates.
///
/// The default geometry matches a 16 MiB bank with 2 KiB rows: 8192 rows of
/// 128 columns, 16 bytes per column access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMap {
    /// Bytes per DRAM row (row-buffer size).
    pub row_bytes: u32,
    /// Total bank capacity in bytes.
    pub bank_bytes: u32,
}

impl Default for AddressMap {
    fn default() -> Self {
        Self { row_bytes: 2048, bank_bytes: 16 * 1024 * 1024 }
    }
}

impl AddressMap {
    /// The DRAM row containing byte address `addr`.
    pub fn row(&self, addr: u32) -> u32 {
        addr / self.row_bytes
    }

    /// The column (16-byte unit) of byte address `addr` within its row.
    pub fn col(&self, addr: u32) -> u32 {
        (addr % self.row_bytes) / crate::ACCESS_BYTES as u32
    }

    /// Number of rows in the bank.
    pub fn rows(&self) -> u32 {
        self.bank_bytes / self.row_bytes
    }

    /// Whether `addr` lies inside the bank.
    pub fn contains(&self, addr: u32) -> bool {
        addr < self.bank_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table3() {
        let t = DramTiming::default();
        assert_eq!(t.t_rcd, 14);
        assert_eq!(t.t_ccd, 2);
        assert_eq!(t.t_rtp, 4);
        assert_eq!(t.t_rp, 14);
        assert_eq!(t.t_ras, 33);
        assert_eq!(t.t_rrd_s, 4);
        assert_eq!(t.t_rrd_l, 6);
        assert_eq!(t.t_faw, 16);
    }

    #[test]
    fn latency_ordering() {
        let t = DramTiming::default();
        assert!(t.hit_read_latency() < t.miss_read_latency());
        assert!(t.miss_read_latency() < t.conflict_read_latency());
    }

    #[test]
    fn address_map_geometry() {
        let m = AddressMap::default();
        assert_eq!(m.rows(), 8192);
        assert_eq!(m.row(0), 0);
        assert_eq!(m.row(2048), 1);
        assert_eq!(m.col(0), 0);
        assert_eq!(m.col(16), 1);
        assert_eq!(m.col(2048 + 32), 2);
        assert!(m.contains(16 * 1024 * 1024 - 1));
        assert!(!m.contains(16 * 1024 * 1024));
    }
}
