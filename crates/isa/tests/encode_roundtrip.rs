//! Property tests: binary encode/decode round-trips for arbitrary
//! instructions, and assembly text is total.

use ipim_isa::{
    decode, encode, AddrOperand, AddrReg, ArfOp, ArfSrc, CompMode, CompOp, CrfOp, CrfSrc, CtrlReg,
    DataReg, DataType, Instruction, RemoteTarget, SimbMask, VecMask,
};
use proptest::prelude::*;

fn arb_simb() -> impl Strategy<Value = SimbMask> {
    (1usize..=64, any::<u64>()).prop_map(|(w, bits)| SimbMask::from_bits(w, bits))
}

fn arb_vec_mask() -> impl Strategy<Value = VecMask> {
    (0u8..16).prop_map(VecMask::from_bits)
}

fn arb_comp_op() -> impl Strategy<Value = CompOp> {
    prop_oneof![
        Just(CompOp::Add),
        Just(CompOp::Sub),
        Just(CompOp::Mul),
        Just(CompOp::Mac),
        Just(CompOp::Div),
        Just(CompOp::Min),
        Just(CompOp::Max),
        Just(CompOp::Shl),
        Just(CompOp::Shr),
        Just(CompOp::And),
        Just(CompOp::Or),
        Just(CompOp::Xor),
        Just(CompOp::CropLsb),
        Just(CompOp::CropMsb),
        Just(CompOp::CmpLt),
        Just(CompOp::CmpLe),
        Just(CompOp::CmpEq),
        Just(CompOp::CvtI2F),
        Just(CompOp::CvtF2I),
    ]
}

fn arb_arf_op() -> impl Strategy<Value = ArfOp> {
    prop_oneof![
        Just(ArfOp::Add),
        Just(ArfOp::Sub),
        Just(ArfOp::Mul),
        Just(ArfOp::Div),
        Just(ArfOp::Rem),
        Just(ArfOp::Shl),
        Just(ArfOp::Shr),
        Just(ArfOp::And),
        Just(ArfOp::Or),
        Just(ArfOp::Min),
        Just(ArfOp::Max),
    ]
}

fn arb_crf_op() -> impl Strategy<Value = CrfOp> {
    prop_oneof![
        Just(CrfOp::Add),
        Just(CrfOp::Sub),
        Just(CrfOp::Mul),
        Just(CrfOp::Div),
        Just(CrfOp::Rem),
        Just(CrfOp::Lt),
        Just(CrfOp::Ge),
        Just(CrfOp::Eq),
        Just(CrfOp::Min),
        Just(CrfOp::Max),
    ]
}

fn arb_addr_operand() -> impl Strategy<Value = AddrOperand> {
    prop_oneof![
        any::<u32>().prop_map(AddrOperand::Imm),
        any::<u8>().prop_map(|r| AddrOperand::Indirect(AddrReg::new(r))),
    ]
}

fn arb_crf_src() -> impl Strategy<Value = CrfSrc> {
    prop_oneof![
        any::<i32>().prop_map(CrfSrc::Imm),
        any::<u8>().prop_map(|r| CrfSrc::Reg(CtrlReg::new(r))),
    ]
}

fn arb_instruction() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        (
            arb_comp_op(),
            any::<bool>(),
            any::<bool>(),
            any::<u8>(),
            any::<u8>(),
            any::<u8>(),
            arb_vec_mask(),
            arb_simb()
        )
            .prop_map(|(op, int, sv, d, s1, s2, vm, sm)| Instruction::Comp {
                op,
                dtype: if int { DataType::I32 } else { DataType::F32 },
                mode: if sv { CompMode::ScalarVector } else { CompMode::VectorVector },
                dst: DataReg::new(d),
                src1: DataReg::new(s1),
                src2: DataReg::new(s2),
                vec_mask: vm,
                simb_mask: sm,
            }),
        (arb_arf_op(), any::<u8>(), any::<u8>(), any::<i32>(), any::<bool>(), any::<u8>(), arb_simb())
            .prop_map(|(op, d, s1, imm, use_reg, r2, sm)| Instruction::CalcArf {
                op,
                dst: AddrReg::new(d),
                src1: AddrReg::new(s1),
                src2: if use_reg { ArfSrc::Reg(AddrReg::new(r2)) } else { ArfSrc::Imm(imm) },
                simb_mask: sm,
            }),
        (arb_addr_operand(), any::<u8>(), arb_simb(), any::<bool>()).prop_map(
            |(a, d, sm, st)| if st {
                Instruction::StRf { dram_addr: a, drf: DataReg::new(d), simb_mask: sm }
            } else {
                Instruction::LdRf { dram_addr: a, drf: DataReg::new(d), simb_mask: sm }
            }
        ),
        (arb_addr_operand(), arb_addr_operand(), arb_simb(), any::<bool>()).prop_map(
            |(a, p, sm, st)| if st {
                Instruction::StPgsm { dram_addr: a, pgsm_addr: p, simb_mask: sm }
            } else {
                Instruction::LdPgsm { dram_addr: a, pgsm_addr: p, simb_mask: sm }
            }
        ),
        (arb_addr_operand(), any::<u8>(), arb_simb(), any::<bool>()).prop_map(
            |(p, d, sm, rd)| if rd {
                Instruction::RdPgsm { pgsm_addr: p, drf: DataReg::new(d), simb_mask: sm }
            } else {
                Instruction::WrPgsm { pgsm_addr: p, drf: DataReg::new(d), simb_mask: sm }
            }
        ),
        (arb_addr_operand(), any::<u8>(), arb_simb(), any::<bool>()).prop_map(
            |(v, d, sm, rd)| if rd {
                Instruction::RdVsm { vsm_addr: v, drf: DataReg::new(d), simb_mask: sm }
            } else {
                Instruction::WrVsm { vsm_addr: v, drf: DataReg::new(d), simb_mask: sm }
            }
        ),
        (any::<bool>(), any::<u8>(), any::<u8>(), 0u8..4, arb_simb()).prop_map(
            |(to_arf, a, d, lane, sm)| Instruction::Mov {
                to_arf,
                arf: AddrReg::new(a),
                drf: DataReg::new(d),
                lane,
                simb_mask: sm,
            }
        ),
        (any::<u32>(), any::<u32>())
            .prop_map(|(a, v)| Instruction::SetiVsm { vsm_addr: a, imm: v }),
        (any::<u8>(), arb_simb())
            .prop_map(|(d, sm)| Instruction::Reset { drf: DataReg::new(d), simb_mask: sm }),
        (any::<u8>(), any::<u32>(), arb_vec_mask(), arb_simb()).prop_map(
            |(d, imm, vm, sm)| Instruction::SetiDrf {
                drf: DataReg::new(d),
                imm,
                vec_mask: vm,
                simb_mask: sm,
            }
        ),
        (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>(), arb_crf_src(), arb_crf_src())
            .prop_map(|(c, v, g, p, da, va)| Instruction::Req {
                target: RemoteTarget { chip: c, vault: v, pg: g, pe: p },
                dram_addr: da,
                vsm_addr: va,
            }),
        arb_crf_src().prop_map(|t| Instruction::Jump { target: t }),
        (any::<u8>(), arb_crf_src())
            .prop_map(|(c, t)| Instruction::CJump { cond: CtrlReg::new(c), target: t }),
        (arb_crf_op(), any::<u8>(), any::<u8>(), arb_crf_src()).prop_map(
            |(op, d, s1, s2)| Instruction::CalcCrf {
                op,
                dst: CtrlReg::new(d),
                src1: CtrlReg::new(s1),
                src2: s2,
            }
        ),
        (any::<u8>(), any::<i32>())
            .prop_map(|(d, imm)| Instruction::SetiCrf { dst: CtrlReg::new(d), imm }),
        any::<u32>().prop_map(|p| Instruction::Sync { phase_id: p }),
    ]
}

proptest! {
    #[test]
    fn encode_decode_round_trip(inst in arb_instruction()) {
        let word = encode(&inst);
        let back = decode(&word).expect("decode");
        prop_assert_eq!(back, inst);
    }

    #[test]
    fn assembly_text_is_total_and_nonempty(inst in arb_instruction()) {
        prop_assert!(!inst.to_string().is_empty());
    }

    #[test]
    fn reads_and_writes_are_disjoint_unless_mac(inst in arb_instruction()) {
        // Only `mac` legitimately reads its own destination.
        let reads = inst.reads();
        let writes = inst.writes();
        let overlaps = writes.iter().any(|w| reads.contains(w));
        if overlaps {
            let is_mac = matches!(inst, Instruction::Comp { op: CompOp::Mac, .. });
            let same_reg_alias = match inst {
                // e.g. calc_arf a1, a1, ... or comp d0, d0, d0 alias freely.
                Instruction::CalcArf { dst, src1, src2, .. } =>
                    dst == src1 || matches!(src2, ArfSrc::Reg(r) if r == dst),
                Instruction::Comp { dst, src1, src2, .. } => dst == src1 || dst == src2,
                Instruction::CalcCrf { dst, src1, src2, .. } =>
                    dst == src1 || matches!(src2, CrfSrc::Reg(r) if r == dst),
                Instruction::Mov { .. } => false,
                _ => false,
            };
            prop_assert!(is_mac || same_reg_alias, "unexpected read/write overlap in {}", inst);
        }
    }
}
