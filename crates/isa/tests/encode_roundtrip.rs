//! Property tests: binary encode/decode round-trips for arbitrary
//! instructions, and assembly text is total.

use ipim_isa::{
    decode, encode, AddrOperand, AddrReg, ArfOp, ArfSrc, CompMode, CompOp, CrfOp, CrfSrc, CtrlReg,
    DataReg, DataType, Instruction, RemoteTarget, SimbMask, VecMask,
};
use ipim_simkit::check_with;
use ipim_simkit::prop::{
    bool_any, i32_any, tuple2, tuple4, tuple5, tuple6, tuple7, tuple8, u32_any, u64_any, u8_any,
    u8_in, usize_in, Config, Gen,
};

/// Matches the proptest default of 256 cases; encode/decode is cheap.
fn config() -> Config {
    Config { cases: 256, ..Config::default() }
}

fn arb_simb() -> Gen<SimbMask> {
    tuple2(usize_in(1, 65), u64_any()).map(|(w, bits)| SimbMask::from_bits(w, bits))
}

fn arb_vec_mask() -> Gen<VecMask> {
    u8_in(0, 16).map(VecMask::from_bits)
}

fn arb_comp_op() -> Gen<CompOp> {
    Gen::one_of(
        [
            CompOp::Add,
            CompOp::Sub,
            CompOp::Mul,
            CompOp::Mac,
            CompOp::Div,
            CompOp::Min,
            CompOp::Max,
            CompOp::Shl,
            CompOp::Shr,
            CompOp::And,
            CompOp::Or,
            CompOp::Xor,
            CompOp::CropLsb,
            CompOp::CropMsb,
            CompOp::CmpLt,
            CompOp::CmpLe,
            CompOp::CmpEq,
            CompOp::CvtI2F,
            CompOp::CvtF2I,
        ]
        .into_iter()
        .map(Gen::just)
        .collect(),
    )
}

fn arb_arf_op() -> Gen<ArfOp> {
    Gen::one_of(
        [
            ArfOp::Add,
            ArfOp::Sub,
            ArfOp::Mul,
            ArfOp::Div,
            ArfOp::Rem,
            ArfOp::Shl,
            ArfOp::Shr,
            ArfOp::And,
            ArfOp::Or,
            ArfOp::Min,
            ArfOp::Max,
        ]
        .into_iter()
        .map(Gen::just)
        .collect(),
    )
}

fn arb_crf_op() -> Gen<CrfOp> {
    Gen::one_of(
        [
            CrfOp::Add,
            CrfOp::Sub,
            CrfOp::Mul,
            CrfOp::Div,
            CrfOp::Rem,
            CrfOp::Lt,
            CrfOp::Ge,
            CrfOp::Eq,
            CrfOp::Min,
            CrfOp::Max,
        ]
        .into_iter()
        .map(Gen::just)
        .collect(),
    )
}

fn arb_addr_operand() -> Gen<AddrOperand> {
    Gen::one_of(vec![
        u32_any().map(AddrOperand::Imm),
        u8_any().map(|r| AddrOperand::Indirect(AddrReg::new(r))),
    ])
}

fn arb_crf_src() -> Gen<CrfSrc> {
    Gen::one_of(vec![i32_any().map(CrfSrc::Imm), u8_any().map(|r| CrfSrc::Reg(CtrlReg::new(r)))])
}

fn arb_instruction() -> Gen<Instruction> {
    Gen::one_of(vec![
        tuple8(
            arb_comp_op(),
            bool_any(),
            bool_any(),
            u8_any(),
            u8_any(),
            u8_any(),
            arb_vec_mask(),
            arb_simb(),
        )
        .map(|(op, int, sv, d, s1, s2, vm, sm)| Instruction::Comp {
            op,
            dtype: if int { DataType::I32 } else { DataType::F32 },
            mode: if sv { CompMode::ScalarVector } else { CompMode::VectorVector },
            dst: DataReg::new(d),
            src1: DataReg::new(s1),
            src2: DataReg::new(s2),
            vec_mask: vm,
            simb_mask: sm,
        }),
        tuple7(arb_arf_op(), u8_any(), u8_any(), i32_any(), bool_any(), u8_any(), arb_simb()).map(
            |(op, d, s1, imm, use_reg, r2, sm)| Instruction::CalcArf {
                op,
                dst: AddrReg::new(d),
                src1: AddrReg::new(s1),
                src2: if use_reg { ArfSrc::Reg(AddrReg::new(r2)) } else { ArfSrc::Imm(imm) },
                simb_mask: sm,
            },
        ),
        tuple4(arb_addr_operand(), u8_any(), arb_simb(), bool_any()).map(|(a, d, sm, st)| {
            if st {
                Instruction::StRf { dram_addr: a, drf: DataReg::new(d), simb_mask: sm }
            } else {
                Instruction::LdRf { dram_addr: a, drf: DataReg::new(d), simb_mask: sm }
            }
        }),
        tuple4(arb_addr_operand(), arb_addr_operand(), arb_simb(), bool_any()).map(
            |(a, p, sm, st)| {
                if st {
                    Instruction::StPgsm { dram_addr: a, pgsm_addr: p, simb_mask: sm }
                } else {
                    Instruction::LdPgsm { dram_addr: a, pgsm_addr: p, simb_mask: sm }
                }
            },
        ),
        tuple4(arb_addr_operand(), u8_any(), arb_simb(), bool_any()).map(|(p, d, sm, rd)| {
            if rd {
                Instruction::RdPgsm { pgsm_addr: p, drf: DataReg::new(d), simb_mask: sm }
            } else {
                Instruction::WrPgsm { pgsm_addr: p, drf: DataReg::new(d), simb_mask: sm }
            }
        }),
        tuple4(arb_addr_operand(), u8_any(), arb_simb(), bool_any()).map(|(v, d, sm, rd)| {
            if rd {
                Instruction::RdVsm { vsm_addr: v, drf: DataReg::new(d), simb_mask: sm }
            } else {
                Instruction::WrVsm { vsm_addr: v, drf: DataReg::new(d), simb_mask: sm }
            }
        }),
        tuple5(bool_any(), u8_any(), u8_any(), u8_in(0, 4), arb_simb()).map(
            |(to_arf, a, d, lane, sm)| Instruction::Mov {
                to_arf,
                arf: AddrReg::new(a),
                drf: DataReg::new(d),
                lane,
                simb_mask: sm,
            },
        ),
        tuple2(u32_any(), u32_any()).map(|(a, v)| Instruction::SetiVsm { vsm_addr: a, imm: v }),
        tuple2(u8_any(), arb_simb())
            .map(|(d, sm)| Instruction::Reset { drf: DataReg::new(d), simb_mask: sm }),
        tuple4(u8_any(), u32_any(), arb_vec_mask(), arb_simb()).map(|(d, imm, vm, sm)| {
            Instruction::SetiDrf { drf: DataReg::new(d), imm, vec_mask: vm, simb_mask: sm }
        }),
        tuple6(u8_any(), u8_any(), u8_any(), u8_any(), arb_crf_src(), arb_crf_src()).map(
            |(c, v, g, p, da, va)| Instruction::Req {
                target: RemoteTarget { chip: c, vault: v, pg: g, pe: p },
                dram_addr: da,
                vsm_addr: va,
            },
        ),
        arb_crf_src().map(|t| Instruction::Jump { target: t }),
        tuple2(u8_any(), arb_crf_src())
            .map(|(c, t)| Instruction::CJump { cond: CtrlReg::new(c), target: t }),
        tuple4(arb_crf_op(), u8_any(), u8_any(), arb_crf_src()).map(|(op, d, s1, s2)| {
            Instruction::CalcCrf { op, dst: CtrlReg::new(d), src1: CtrlReg::new(s1), src2: s2 }
        }),
        tuple2(u8_any(), i32_any())
            .map(|(d, imm)| Instruction::SetiCrf { dst: CtrlReg::new(d), imm }),
        u32_any().map(|p| Instruction::Sync { phase_id: p }),
    ])
}

#[test]
fn encode_decode_round_trip() {
    check_with(config(), "encode_decode_round_trip", &arb_instruction(), |inst| {
        let word = encode(inst);
        let back = decode(&word).expect("decode");
        assert_eq!(&back, inst);
    });
}

#[test]
fn assembly_text_is_total_and_nonempty() {
    check_with(config(), "assembly_text_is_total_and_nonempty", &arb_instruction(), |inst| {
        assert!(!inst.to_string().is_empty());
    });
}

#[test]
fn reads_and_writes_are_disjoint_unless_mac() {
    check_with(config(), "reads_and_writes_are_disjoint_unless_mac", &arb_instruction(), |inst| {
        // Only `mac` legitimately reads its own destination.
        let reads = inst.reads();
        let writes = inst.writes();
        let overlaps = writes.iter().any(|w| reads.contains(w));
        if overlaps {
            let is_mac = matches!(inst, Instruction::Comp { op: CompOp::Mac, .. });
            let same_reg_alias = match *inst {
                // e.g. calc_arf a1, a1, ... or comp d0, d0, d0 alias freely.
                Instruction::CalcArf { dst, src1, src2, .. } => {
                    dst == src1 || matches!(src2, ArfSrc::Reg(r) if r == dst)
                }
                Instruction::Comp { dst, src1, src2, .. } => dst == src1 || dst == src2,
                Instruction::CalcCrf { dst, src1, src2, .. } => {
                    dst == src1 || matches!(src2, CrfSrc::Reg(r) if r == dst)
                }
                Instruction::Mov { .. } => false,
                _ => false,
            };
            assert!(is_mac || same_reg_alias, "unexpected read/write overlap in {inst}");
        }
    });
}
