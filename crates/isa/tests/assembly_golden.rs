//! Golden assembly-text tests: the printed forms are part of the crate's
//! public contract (debuggers and the Table I dump rely on them).

use ipim_isa::{
    AddrOperand, AddrReg, ArfOp, ArfSrc, CompMode, CompOp, CrfOp, CrfSrc, CtrlReg, DataReg,
    DataType, Instruction, ProgramBuilder, RemoteTarget, SimbMask, VecMask,
};

fn mask() -> SimbMask {
    SimbMask::all(32)
}

#[test]
fn golden_assembly_forms() {
    let cases: Vec<(Instruction, &str)> = vec![
        (
            Instruction::Comp {
                op: CompOp::Mac,
                dtype: DataType::F32,
                mode: CompMode::ScalarVector,
                dst: DataReg::new(4),
                src1: DataReg::new(1),
                src2: DataReg::new(2),
                vec_mask: VecMask::ALL,
                simb_mask: mask(),
            },
            "comp.f32.sv mac d4, d1, d2 (vec=all, simb=all)",
        ),
        (
            Instruction::CalcArf {
                op: ArfOp::Mul,
                dst: AddrReg::new(8),
                src1: AddrReg::new(0),
                src2: ArfSrc::Imm(16),
                simb_mask: mask(),
            },
            "calc_arf mul a8, a0, #16 (simb=all)",
        ),
        (
            Instruction::LdRf {
                dram_addr: AddrOperand::Indirect(AddrReg::new(9)),
                drf: DataReg::new(3),
                simb_mask: mask(),
            },
            "ld_rf [a9], d3 (simb=all)",
        ),
        (
            Instruction::StRf {
                dram_addr: AddrOperand::Imm(0x40),
                drf: DataReg::new(3),
                simb_mask: mask(),
            },
            "st_rf 0x40, d3 (simb=all)",
        ),
        (
            Instruction::Mov {
                to_arf: true,
                arf: AddrReg::new(10),
                drf: DataReg::new(5),
                lane: 2,
                simb_mask: mask(),
            },
            "mov_arf a10, d5.2 (simb=all)",
        ),
        (
            Instruction::Req {
                target: RemoteTarget { chip: 1, vault: 2, pg: 3, pe: 0 },
                dram_addr: CrfSrc::Imm(256),
                vsm_addr: CrfSrc::Reg(CtrlReg::new(4)),
            },
            "req chip1.v2.pg3.pe0, #256, c4",
        ),
        (Instruction::CJump { cond: CtrlReg::new(1), target: CrfSrc::Imm(5) }, "cjump c1, #5"),
        (
            Instruction::CalcCrf {
                op: CrfOp::Lt,
                dst: CtrlReg::new(2),
                src1: CtrlReg::new(0),
                src2: CrfSrc::Imm(64),
            },
            "calc_crf lt c2, c0, #64",
        ),
        (Instruction::Sync { phase_id: 3 }, "sync 3"),
    ];
    for (inst, want) in cases {
        assert_eq!(inst.to_string(), want);
    }
}

#[test]
fn program_listing_format() {
    let mut b = ProgramBuilder::new();
    b.push(Instruction::SetiCrf { dst: CtrlReg::new(0), imm: 8 });
    b.push(Instruction::Sync { phase_id: 0 });
    let p = b.seal().unwrap();
    let listing = p.to_assembly();
    assert!(listing.contains("    0: seti_crf c0, #8"));
    assert!(listing.contains("    1: sync 0"));
}
