//! The SIMB instruction set: one variant per row of the paper's Table I,
//! plus two documented codegen extensions (`seti drf`, immediates).

use std::fmt;

use crate::{
    AddrReg, ArfOp, ArfSrc, CompMode, CompOp, CrfOp, CtrlReg, DataReg, DataType, SimbMask, VecMask,
};

/// A memory address operand resolved per-PE.
///
/// Table I supports *indirect addressing* for bank, PGSM and VSM addresses:
/// when indirect, the operand names an AddrRF entry whose value (computed by
/// `calc arf`) is used as the address, letting different PEs of one SIMB
/// instruction touch different locations (paper Sec. IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddrOperand {
    /// A literal byte address, identical on every PE.
    Imm(u32),
    /// Indirect: the byte address is read from this AddrRF entry on each PE.
    Indirect(AddrReg),
}

impl AddrOperand {
    /// The AddrRF register read by this operand, if indirect.
    pub fn addr_reg(self) -> Option<AddrReg> {
        match self {
            AddrOperand::Imm(_) => None,
            AddrOperand::Indirect(r) => Some(r),
        }
    }
}

impl fmt::Display for AddrOperand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AddrOperand::Imm(v) => write!(f, "{v:#x}"),
            AddrOperand::Indirect(r) => write!(f, "[{r}]"),
        }
    }
}

/// Source operand of control-flow instructions: a CtrlRF register or an
/// immediate (immediates are a documented extension; see [`ArfSrc`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrfSrc {
    /// Read from the control register file.
    Reg(CtrlReg),
    /// Immediate constant.
    Imm(i32),
}

impl CrfSrc {
    /// The CtrlRF register read by this operand, if any.
    pub fn ctrl_reg(self) -> Option<CtrlReg> {
        match self {
            CrfSrc::Reg(r) => Some(r),
            CrfSrc::Imm(_) => None,
        }
    }
}

impl fmt::Display for CrfSrc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrfSrc::Reg(r) => write!(f, "{r}"),
            CrfSrc::Imm(v) => write!(f, "#{v}"),
        }
    }
}

/// Destination of a remote-vault access (`req` instruction operands
/// `dst_chip_id, dst_vault_id, dst_pg_id, dst_pe_id`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RemoteTarget {
    /// Cube (chip) index.
    pub chip: u8,
    /// Vault index within the cube.
    pub vault: u8,
    /// Process-group index within the vault.
    pub pg: u8,
    /// Process-engine index within the process group.
    pub pe: u8,
}

impl fmt::Display for RemoteTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chip{}.v{}.pg{}.pe{}", self.chip, self.vault, self.pg, self.pe)
    }
}

/// Instruction category, used for the Fig. 11 instruction-breakdown
/// experiment and for issue routing in the control core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// SIMD `comp` instructions.
    Computation,
    /// Per-PE integer index calculation (`calc arf`, `mov drf/arf`).
    IndexCalc,
    /// Intra-vault data movement (bank, PGSM, VSM, DataRF transfers).
    IntraVault,
    /// Inter-vault data movement (`req`).
    InterVault,
    /// Control flow (`jump`, `cjump`, `calc crf`, `seti crf`).
    ControlFlow,
    /// Inter-vault synchronization (`sync`).
    Synchronization,
}

impl Category {
    /// Stable lower-case label, usable as a metrics/trace key.
    pub fn name(self) -> &'static str {
        match self {
            Category::Computation => "computation",
            Category::IndexCalc => "index-calc",
            Category::IntraVault => "intra-vault",
            Category::InterVault => "inter-vault",
            Category::ControlFlow => "control-flow",
            Category::Synchronization => "synchronization",
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A register name qualified with its register file, used for hazard
/// detection by both the control core's Issued-Inst-Queue model and the
/// compiler's dependency-graph construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RegRef {
    /// A DataRF entry.
    Data(DataReg),
    /// An AddrRF entry.
    Addr(AddrReg),
    /// A CtrlRF entry.
    Ctrl(CtrlReg),
}

impl fmt::Display for RegRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegRef::Data(r) => write!(f, "{r}"),
            RegRef::Addr(r) => write!(f, "{r}"),
            RegRef::Ctrl(r) => write!(f, "{r}"),
        }
    }
}

/// One SIMB instruction (paper Table I).
///
/// Every bank-parallel variant carries a [`SimbMask`]; the instruction
/// retires only once all masked PEs have completed it (paper Sec. IV-B,
/// step 5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instruction {
    /// `comp`: SIMD computation on DataRF vectors.
    Comp {
        /// Arithmetic/logical operation.
        op: CompOp,
        /// Lane element type.
        dtype: DataType,
        /// Vector-vector or scalar-vector mode.
        mode: CompMode,
        /// Destination DataRF entry.
        dst: DataReg,
        /// First source DataRF entry.
        src1: DataReg,
        /// Second source DataRF entry (scalar lane 0 in `sv` mode).
        src2: DataReg,
        /// Active SIMD lanes.
        vec_mask: VecMask,
        /// Active PEs.
        simb_mask: SimbMask,
    },
    /// `calc arf`: per-PE integer address calculation on the AddrRF.
    CalcArf {
        /// Integer operation.
        op: ArfOp,
        /// Destination AddrRF entry.
        dst: AddrReg,
        /// First source AddrRF entry.
        src1: AddrReg,
        /// Second source (register or immediate).
        src2: ArfSrc,
        /// Active PEs.
        simb_mask: SimbMask,
    },
    /// `st rf`: store a DataRF vector to the PE's local DRAM bank.
    StRf {
        /// Bank byte address (vector-aligned).
        dram_addr: AddrOperand,
        /// Source DataRF entry.
        drf: DataReg,
        /// Active PEs.
        simb_mask: SimbMask,
    },
    /// `ld rf`: load a vector from the PE's local DRAM bank into the DataRF.
    LdRf {
        /// Bank byte address (vector-aligned).
        dram_addr: AddrOperand,
        /// Destination DataRF entry.
        drf: DataReg,
        /// Active PEs.
        simb_mask: SimbMask,
    },
    /// `st pgsm`: store a vector from the PGSM to the PE's local bank.
    StPgsm {
        /// Bank byte address.
        dram_addr: AddrOperand,
        /// PGSM byte address.
        pgsm_addr: AddrOperand,
        /// Active PEs.
        simb_mask: SimbMask,
    },
    /// `ld pgsm`: load a vector from the PE's local bank into the PGSM.
    LdPgsm {
        /// Bank byte address.
        dram_addr: AddrOperand,
        /// PGSM byte address.
        pgsm_addr: AddrOperand,
        /// Active PEs.
        simb_mask: SimbMask,
    },
    /// `rd pgsm`: read a vector from the PGSM into the DataRF.
    RdPgsm {
        /// PGSM byte address.
        pgsm_addr: AddrOperand,
        /// Destination DataRF entry.
        drf: DataReg,
        /// Active PEs.
        simb_mask: SimbMask,
    },
    /// `wr pgsm`: write a DataRF vector into the PGSM.
    WrPgsm {
        /// PGSM byte address.
        pgsm_addr: AddrOperand,
        /// Source DataRF entry.
        drf: DataReg,
        /// Active PEs.
        simb_mask: SimbMask,
    },
    /// `rd vsm`: read a vector from the vault scratchpad into the DataRF
    /// (traverses the shared TSV bus).
    RdVsm {
        /// VSM byte address.
        vsm_addr: AddrOperand,
        /// Destination DataRF entry.
        drf: DataReg,
        /// Active PEs.
        simb_mask: SimbMask,
    },
    /// `wr vsm`: write a DataRF vector into the vault scratchpad.
    WrVsm {
        /// VSM byte address.
        vsm_addr: AddrOperand,
        /// Source DataRF entry.
        drf: DataReg,
        /// Active PEs.
        simb_mask: SimbMask,
    },
    /// `mov drf/arf`: move a scalar between the DataRF and the AddrRF,
    /// enabling data-dependent addressing (gathers).
    Mov {
        /// Direction of the move.
        to_arf: bool,
        /// AddrRF side of the transfer.
        arf: AddrReg,
        /// DataRF side of the transfer.
        drf: DataReg,
        /// Which SIMD lane of the DataRF entry participates.
        lane: u8,
        /// Active PEs.
        simb_mask: SimbMask,
    },
    /// `seti vsm`: set an immediate 32-bit value at a VSM location
    /// (vault-level; no SIMB mask).
    SetiVsm {
        /// VSM byte address.
        vsm_addr: u32,
        /// Raw 32-bit immediate.
        imm: u32,
    },
    /// `reset`: zero a DataRF entry.
    Reset {
        /// DataRF entry to clear.
        drf: DataReg,
        /// Active PEs.
        simb_mask: SimbMask,
    },
    /// `seti drf` (extension): broadcast an immediate into the active lanes
    /// of a DataRF entry. See [`ArfSrc`] for the rationale for immediates.
    SetiDrf {
        /// Destination DataRF entry.
        drf: DataReg,
        /// Raw 32-bit immediate (bit pattern; may encode f32 or i32).
        imm: u32,
        /// Lanes to write.
        vec_mask: VecMask,
        /// Active PEs.
        simb_mask: SimbMask,
    },
    /// `req`: asynchronously fetch one vector from a remote vault's bank
    /// into the local VSM (paper Sec. IV-D).
    Req {
        /// Remote bank location.
        target: RemoteTarget,
        /// Byte address in the remote bank.
        dram_addr: CrfSrc,
        /// Local VSM byte address that receives the data.
        vsm_addr: CrfSrc,
    },
    /// `jump`: unconditional jump to the instruction index in `target`.
    Jump {
        /// Jump target (CtrlRF register or immediate instruction index).
        target: CrfSrc,
    },
    /// `cjump`: jump when `cond` is non-zero.
    CJump {
        /// Condition register.
        cond: CtrlReg,
        /// Jump target.
        target: CrfSrc,
    },
    /// `calc crf`: integer calculation on the control register file.
    CalcCrf {
        /// Integer operation.
        op: CrfOp,
        /// Destination CtrlRF entry.
        dst: CtrlReg,
        /// First source CtrlRF entry.
        src1: CtrlReg,
        /// Second source (register or immediate).
        src2: CrfSrc,
    },
    /// `seti crf`: set an immediate value in the control register file.
    SetiCrf {
        /// Destination CtrlRF entry.
        dst: CtrlReg,
        /// Immediate value.
        imm: i32,
    },
    /// `sync`: inter-vault barrier identified by a phase id (Sec. IV-D).
    Sync {
        /// Phase identifier of the barrier.
        phase_id: u32,
    },
}

impl Instruction {
    /// The Table I category of this instruction.
    pub fn category(&self) -> Category {
        use Instruction::*;
        match self {
            Comp { .. } => Category::Computation,
            CalcArf { .. } | Mov { .. } => Category::IndexCalc,
            StRf { .. }
            | LdRf { .. }
            | StPgsm { .. }
            | LdPgsm { .. }
            | RdPgsm { .. }
            | WrPgsm { .. }
            | RdVsm { .. }
            | WrVsm { .. }
            | SetiVsm { .. }
            | Reset { .. }
            | SetiDrf { .. } => Category::IntraVault,
            Req { .. } => Category::InterVault,
            Jump { .. } | CJump { .. } | CalcCrf { .. } | SetiCrf { .. } => Category::ControlFlow,
            Sync { .. } => Category::Synchronization,
        }
    }

    /// Whether this instruction accesses a DRAM bank (locally or remotely);
    /// the compiler's memory-order-enforcement pass orders these.
    pub fn accesses_dram(&self) -> bool {
        matches!(
            self,
            Instruction::StRf { .. }
                | Instruction::LdRf { .. }
                | Instruction::StPgsm { .. }
                | Instruction::LdPgsm { .. }
                | Instruction::Req { .. }
        )
    }

    /// Whether this instruction writes to a DRAM bank.
    pub fn writes_dram(&self) -> bool {
        matches!(self, Instruction::StRf { .. } | Instruction::StPgsm { .. })
    }

    /// Whether this instruction reads or writes the PGSM.
    pub fn accesses_pgsm(&self) -> bool {
        matches!(
            self,
            Instruction::StPgsm { .. }
                | Instruction::LdPgsm { .. }
                | Instruction::RdPgsm { .. }
                | Instruction::WrPgsm { .. }
        )
    }

    /// Whether this instruction reads or writes the VSM.
    pub fn accesses_vsm(&self) -> bool {
        matches!(
            self,
            Instruction::RdVsm { .. }
                | Instruction::WrVsm { .. }
                | Instruction::SetiVsm { .. }
                | Instruction::Req { .. }
        )
    }

    /// The SIMB mask, for instructions that broadcast to PEs.
    pub fn simb_mask(&self) -> Option<SimbMask> {
        use Instruction::*;
        match self {
            Comp { simb_mask, .. }
            | CalcArf { simb_mask, .. }
            | StRf { simb_mask, .. }
            | LdRf { simb_mask, .. }
            | StPgsm { simb_mask, .. }
            | LdPgsm { simb_mask, .. }
            | RdPgsm { simb_mask, .. }
            | WrPgsm { simb_mask, .. }
            | RdVsm { simb_mask, .. }
            | WrVsm { simb_mask, .. }
            | Mov { simb_mask, .. }
            | Reset { simb_mask, .. }
            | SetiDrf { simb_mask, .. } => Some(*simb_mask),
            _ => None,
        }
    }

    /// Registers read by this instruction (for hazard detection).
    pub fn reads(&self) -> Vec<RegRef> {
        use Instruction::*;
        let mut out = Vec::with_capacity(3);
        let addr = |out: &mut Vec<RegRef>, a: &AddrOperand| {
            if let Some(r) = a.addr_reg() {
                out.push(RegRef::Addr(r));
            }
        };
        match self {
            Comp { op, mode: _, dst, src1, src2, .. } => {
                out.push(RegRef::Data(*src1));
                if op.uses_src2() {
                    out.push(RegRef::Data(*src2));
                }
                if op.reads_dst() {
                    out.push(RegRef::Data(*dst));
                }
            }
            CalcArf { src1, src2, .. } => {
                out.push(RegRef::Addr(*src1));
                if let ArfSrc::Reg(r) = src2 {
                    out.push(RegRef::Addr(*r));
                }
            }
            StRf { dram_addr, drf, .. } => {
                addr(&mut out, dram_addr);
                out.push(RegRef::Data(*drf));
            }
            LdRf { dram_addr, .. } => addr(&mut out, dram_addr),
            StPgsm { dram_addr, pgsm_addr, .. } | LdPgsm { dram_addr, pgsm_addr, .. } => {
                addr(&mut out, dram_addr);
                addr(&mut out, pgsm_addr);
            }
            RdPgsm { pgsm_addr, .. } => addr(&mut out, pgsm_addr),
            WrPgsm { pgsm_addr, drf, .. } => {
                addr(&mut out, pgsm_addr);
                out.push(RegRef::Data(*drf));
            }
            RdVsm { vsm_addr, .. } => addr(&mut out, vsm_addr),
            WrVsm { vsm_addr, drf, .. } => {
                addr(&mut out, vsm_addr);
                out.push(RegRef::Data(*drf));
            }
            Mov { to_arf, arf, drf, .. } => {
                if *to_arf {
                    out.push(RegRef::Data(*drf));
                } else {
                    out.push(RegRef::Addr(*arf));
                }
            }
            SetiVsm { .. } | Reset { .. } | SetiDrf { .. } | SetiCrf { .. } | Sync { .. } => {}
            Req { dram_addr, vsm_addr, .. } => {
                if let Some(r) = dram_addr.ctrl_reg() {
                    out.push(RegRef::Ctrl(r));
                }
                if let Some(r) = vsm_addr.ctrl_reg() {
                    out.push(RegRef::Ctrl(r));
                }
            }
            Jump { target } => {
                if let Some(r) = target.ctrl_reg() {
                    out.push(RegRef::Ctrl(r));
                }
            }
            CJump { cond, target } => {
                out.push(RegRef::Ctrl(*cond));
                if let Some(r) = target.ctrl_reg() {
                    out.push(RegRef::Ctrl(r));
                }
            }
            CalcCrf { src1, src2, .. } => {
                out.push(RegRef::Ctrl(*src1));
                if let Some(r) = src2.ctrl_reg() {
                    out.push(RegRef::Ctrl(r));
                }
            }
        }
        out
    }

    /// Registers written by this instruction (for hazard detection).
    pub fn writes(&self) -> Vec<RegRef> {
        use Instruction::*;
        match self {
            Comp { dst, .. } => vec![RegRef::Data(*dst)],
            CalcArf { dst, .. } => vec![RegRef::Addr(*dst)],
            LdRf { drf, .. } | RdPgsm { drf, .. } | RdVsm { drf, .. } => vec![RegRef::Data(*drf)],
            Mov { to_arf, arf, drf, .. } => {
                if *to_arf {
                    vec![RegRef::Addr(*arf)]
                } else {
                    vec![RegRef::Data(*drf)]
                }
            }
            Reset { drf, .. } | SetiDrf { drf, .. } => vec![RegRef::Data(*drf)],
            CalcCrf { dst, .. } | SetiCrf { dst, .. } => vec![RegRef::Ctrl(*dst)],
            StRf { .. }
            | StPgsm { .. }
            | LdPgsm { .. }
            | WrPgsm { .. }
            | WrVsm { .. }
            | SetiVsm { .. }
            | Req { .. }
            | Jump { .. }
            | CJump { .. }
            | Sync { .. } => vec![],
        }
    }

    /// Whether the instruction may redirect the program counter.
    pub fn is_branch(&self) -> bool {
        matches!(self, Instruction::Jump { .. } | Instruction::CJump { .. })
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Instruction::*;
        match self {
            Comp { op, dtype, mode, dst, src1, src2, vec_mask, simb_mask } => {
                if op.uses_src2() {
                    write!(
                        f,
                        "comp.{dtype}.{mode} {op} {dst}, {src1}, {src2} ({vec_mask}, {simb_mask})"
                    )
                } else {
                    write!(f, "comp.{dtype}.{mode} {op} {dst}, {src1} ({vec_mask}, {simb_mask})")
                }
            }
            CalcArf { op, dst, src1, src2, simb_mask } => {
                write!(f, "calc_arf {op} {dst}, {src1}, {src2} ({simb_mask})")
            }
            StRf { dram_addr, drf, simb_mask } => {
                write!(f, "st_rf {dram_addr}, {drf} ({simb_mask})")
            }
            LdRf { dram_addr, drf, simb_mask } => {
                write!(f, "ld_rf {dram_addr}, {drf} ({simb_mask})")
            }
            StPgsm { dram_addr, pgsm_addr, simb_mask } => {
                write!(f, "st_pgsm {dram_addr}, {pgsm_addr} ({simb_mask})")
            }
            LdPgsm { dram_addr, pgsm_addr, simb_mask } => {
                write!(f, "ld_pgsm {dram_addr}, {pgsm_addr} ({simb_mask})")
            }
            RdPgsm { pgsm_addr, drf, simb_mask } => {
                write!(f, "rd_pgsm {pgsm_addr}, {drf} ({simb_mask})")
            }
            WrPgsm { pgsm_addr, drf, simb_mask } => {
                write!(f, "wr_pgsm {pgsm_addr}, {drf} ({simb_mask})")
            }
            RdVsm { vsm_addr, drf, simb_mask } => {
                write!(f, "rd_vsm {vsm_addr}, {drf} ({simb_mask})")
            }
            WrVsm { vsm_addr, drf, simb_mask } => {
                write!(f, "wr_vsm {vsm_addr}, {drf} ({simb_mask})")
            }
            Mov { to_arf, arf, drf, lane, simb_mask } => {
                if *to_arf {
                    write!(f, "mov_arf {arf}, {drf}.{lane} ({simb_mask})")
                } else {
                    write!(f, "mov_drf {drf}.{lane}, {arf} ({simb_mask})")
                }
            }
            SetiVsm { vsm_addr, imm } => write!(f, "seti_vsm {vsm_addr:#x}, #{imm}"),
            Reset { drf, simb_mask } => write!(f, "reset {drf} ({simb_mask})"),
            SetiDrf { drf, imm, vec_mask, simb_mask } => {
                write!(f, "seti_drf {drf}, #{imm:#x} ({vec_mask}, {simb_mask})")
            }
            Req { target, dram_addr, vsm_addr } => {
                write!(f, "req {target}, {dram_addr}, {vsm_addr}")
            }
            Jump { target } => write!(f, "jump {target}"),
            CJump { cond, target } => write!(f, "cjump {cond}, {target}"),
            CalcCrf { op, dst, src1, src2 } => write!(f, "calc_crf {op} {dst}, {src1}, {src2}"),
            SetiCrf { dst, imm } => write!(f, "seti_crf {dst}, #{imm}"),
            Sync { phase_id } => write!(f, "sync {phase_id}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mask() -> SimbMask {
        SimbMask::all(32)
    }

    #[test]
    fn categories_cover_table1() {
        let c = Instruction::Comp {
            op: CompOp::Add,
            dtype: DataType::F32,
            mode: CompMode::VectorVector,
            dst: DataReg::new(0),
            src1: DataReg::new(1),
            src2: DataReg::new(2),
            vec_mask: VecMask::ALL,
            simb_mask: mask(),
        };
        assert_eq!(c.category(), Category::Computation);
        let i = Instruction::CalcArf {
            op: ArfOp::Add,
            dst: AddrReg::new(4),
            src1: AddrReg::new(5),
            src2: ArfSrc::Imm(16),
            simb_mask: mask(),
        };
        assert_eq!(i.category(), Category::IndexCalc);
        assert_eq!(Instruction::Sync { phase_id: 1 }.category(), Category::Synchronization);
        assert_eq!(
            Instruction::Req {
                target: RemoteTarget { chip: 0, vault: 1, pg: 2, pe: 3 },
                dram_addr: CrfSrc::Imm(0),
                vsm_addr: CrfSrc::Imm(0),
            }
            .category(),
            Category::InterVault
        );
    }

    #[test]
    fn mac_reads_its_destination() {
        let mac = Instruction::Comp {
            op: CompOp::Mac,
            dtype: DataType::F32,
            mode: CompMode::VectorVector,
            dst: DataReg::new(9),
            src1: DataReg::new(1),
            src2: DataReg::new(2),
            vec_mask: VecMask::ALL,
            simb_mask: mask(),
        };
        assert!(mac.reads().contains(&RegRef::Data(DataReg::new(9))));
        assert_eq!(mac.writes(), vec![RegRef::Data(DataReg::new(9))]);
    }

    #[test]
    fn indirect_addressing_reads_addr_reg() {
        let ld = Instruction::LdRf {
            dram_addr: AddrOperand::Indirect(AddrReg::new(8)),
            drf: DataReg::new(3),
            simb_mask: mask(),
        };
        assert_eq!(ld.reads(), vec![RegRef::Addr(AddrReg::new(8))]);
        assert_eq!(ld.writes(), vec![RegRef::Data(DataReg::new(3))]);
        assert!(ld.accesses_dram());
        assert!(!ld.writes_dram());
    }

    #[test]
    fn store_reads_data_and_writes_dram() {
        let st = Instruction::StRf {
            dram_addr: AddrOperand::Imm(64),
            drf: DataReg::new(5),
            simb_mask: mask(),
        };
        assert!(st.writes_dram());
        assert!(st.reads().contains(&RegRef::Data(DataReg::new(5))));
        assert!(st.writes().is_empty());
    }

    #[test]
    fn mov_direction_controls_dataflow() {
        let to_arf = Instruction::Mov {
            to_arf: true,
            arf: AddrReg::new(10),
            drf: DataReg::new(2),
            lane: 1,
            simb_mask: mask(),
        };
        assert_eq!(to_arf.reads(), vec![RegRef::Data(DataReg::new(2))]);
        assert_eq!(to_arf.writes(), vec![RegRef::Addr(AddrReg::new(10))]);
        let to_drf = Instruction::Mov {
            to_arf: false,
            arf: AddrReg::new(10),
            drf: DataReg::new(2),
            lane: 0,
            simb_mask: mask(),
        };
        assert_eq!(to_drf.reads(), vec![RegRef::Addr(AddrReg::new(10))]);
        assert_eq!(to_drf.writes(), vec![RegRef::Data(DataReg::new(2))]);
    }

    #[test]
    fn control_flow_reads_ctrl_regs() {
        let cj = Instruction::CJump { cond: CtrlReg::new(1), target: CrfSrc::Reg(CtrlReg::new(2)) };
        assert!(cj.is_branch());
        assert_eq!(cj.reads(), vec![RegRef::Ctrl(CtrlReg::new(1)), RegRef::Ctrl(CtrlReg::new(2))]);
    }

    #[test]
    fn display_is_nonempty_for_all_variants() {
        let insts = vec![
            Instruction::SetiVsm { vsm_addr: 0x10, imm: 42 },
            Instruction::Reset { drf: DataReg::new(0), simb_mask: mask() },
            Instruction::Jump { target: CrfSrc::Imm(5) },
            Instruction::Sync { phase_id: 3 },
        ];
        for inst in insts {
            assert!(!inst.to_string().is_empty());
        }
    }

    #[test]
    fn pgsm_and_vsm_classification() {
        let ldp = Instruction::LdPgsm {
            dram_addr: AddrOperand::Imm(0),
            pgsm_addr: AddrOperand::Imm(0),
            simb_mask: mask(),
        };
        assert!(ldp.accesses_pgsm());
        assert!(ldp.accesses_dram());
        let rdv = Instruction::RdVsm {
            vsm_addr: AddrOperand::Imm(0),
            drf: DataReg::new(0),
            simb_mask: mask(),
        };
        assert!(rdv.accesses_vsm());
        assert!(!rdv.accesses_dram());
    }
}
