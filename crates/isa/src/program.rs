//! Program container and label-resolving builder.
//!
//! An iPIM program is the unit of offloading: the host writes it into a
//! vault's VSM instruction region and every vault's control core executes it
//! (paper Sec. IV-E). Jump targets are instruction indices held in the CtrlRF
//! or encoded as immediates; [`ProgramBuilder`] lets compiler passes emit
//! symbolic labels and resolves them at seal time.

use std::collections::HashMap;
use std::fmt;

use crate::{CrfSrc, Instruction};

/// Error produced while building or validating a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// A label was referenced but never bound to a location.
    UnboundLabel(Label),
    /// A label was bound twice.
    DuplicateLabel(Label),
    /// A resolved jump target lies outside the program.
    TargetOutOfRange {
        /// Index of the offending branch instruction.
        inst: usize,
        /// The resolved (invalid) target.
        target: i64,
    },
    /// A serialized byte stream is shorter than its header claims.
    Truncated {
        /// Bytes required.
        expected: usize,
        /// Bytes provided.
        got: usize,
    },
    /// A serialized instruction word failed to decode.
    Decode {
        /// Index of the malformed instruction.
        index: usize,
        /// Decoder error text.
        message: String,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::UnboundLabel(l) => write!(f, "label L{} was never bound", l.0),
            ProgramError::DuplicateLabel(l) => write!(f, "label L{} bound twice", l.0),
            ProgramError::TargetOutOfRange { inst, target } => {
                write!(f, "instruction {inst} jumps to out-of-range target {target}")
            }
            ProgramError::Truncated { expected, got } => {
                write!(f, "program stream truncated: need {expected} bytes, got {got}")
            }
            ProgramError::Decode { index, message } => {
                write!(f, "instruction {index} failed to decode: {message}")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

/// A symbolic branch target created by [`ProgramBuilder::new_label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label(pub(crate) u32);

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// An immutable, validated sequence of SIMB instructions.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    insts: Vec<Instruction>,
}

impl Program {
    /// Wraps a raw instruction sequence, validating immediate jump targets.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::TargetOutOfRange`] if any immediate branch
    /// target falls outside `0..=len` (a target equal to `len` halts).
    pub fn new(insts: Vec<Instruction>) -> Result<Self, ProgramError> {
        let len = insts.len() as i64;
        for (i, inst) in insts.iter().enumerate() {
            let target = match inst {
                Instruction::Jump { target: CrfSrc::Imm(t) } => Some(*t as i64),
                Instruction::CJump { target: CrfSrc::Imm(t), .. } => Some(*t as i64),
                _ => None,
            };
            if let Some(t) = target {
                if t < 0 || t > len {
                    return Err(ProgramError::TargetOutOfRange { inst: i, target: t });
                }
            }
        }
        Ok(Self { insts })
    }

    /// The instructions of the program.
    pub fn instructions(&self) -> &[Instruction] {
        &self.insts
    }

    /// Number of (static) instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Iterates over the instructions.
    pub fn iter(&self) -> std::slice::Iter<'_, Instruction> {
        self.insts.iter()
    }

    /// Renders the whole program as assembly text, one instruction per line,
    /// prefixed with its index.
    pub fn to_assembly(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, inst) in self.insts.iter().enumerate() {
            let _ = writeln!(out, "{i:>5}: {inst}");
        }
        out
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_assembly())
    }
}

impl<'a> IntoIterator for &'a Program {
    type Item = &'a Instruction;
    type IntoIter = std::slice::Iter<'a, Instruction>;

    fn into_iter(self) -> Self::IntoIter {
        self.insts.iter()
    }
}

/// Pending patch: instruction `inst` must receive the address of `label`.
#[derive(Debug, Clone, Copy)]
enum Patch {
    JumpTarget { inst: usize, label: Label },
    CJumpTarget { inst: usize, label: Label },
    SetiCrf { inst: usize, label: Label },
}

/// Incrementally builds a [`Program`], resolving symbolic labels.
///
/// # Example
///
/// ```
/// use ipim_isa::{ProgramBuilder, Instruction, CrfSrc, CtrlReg, CrfOp};
///
/// # fn main() -> Result<(), ipim_isa::ProgramError> {
/// let mut b = ProgramBuilder::new();
/// let top = b.new_label();
/// b.push(Instruction::SetiCrf { dst: CtrlReg::new(0), imm: 3 });
/// b.bind(top)?;
/// b.push(Instruction::CalcCrf {
///     op: CrfOp::Sub,
///     dst: CtrlReg::new(0),
///     src1: CtrlReg::new(0),
///     src2: CrfSrc::Imm(1),
/// });
/// b.push_cjump_to(CtrlReg::new(0), top); // loop while c0 != 0
/// let program = b.seal()?;
/// assert_eq!(program.len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    insts: Vec<Instruction>,
    next_label: u32,
    bound: HashMap<Label, usize>,
    patches: Vec<Patch>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an instruction, returning its index.
    pub fn push(&mut self, inst: Instruction) -> usize {
        self.insts.push(inst);
        self.insts.len() - 1
    }

    /// Allocates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        let l = Label(self.next_label);
        self.next_label += 1;
        l
    }

    /// Binds `label` to the *next* instruction to be pushed.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::DuplicateLabel`] if already bound.
    pub fn bind(&mut self, label: Label) -> Result<(), ProgramError> {
        if self.bound.insert(label, self.insts.len()).is_some() {
            return Err(ProgramError::DuplicateLabel(label));
        }
        Ok(())
    }

    /// Appends an unconditional jump to `label` (resolved at seal time).
    pub fn push_jump_to(&mut self, label: Label) -> usize {
        let idx = self.push(Instruction::Jump { target: CrfSrc::Imm(0) });
        self.patches.push(Patch::JumpTarget { inst: idx, label });
        idx
    }

    /// Appends a conditional jump to `label` taken when `cond != 0`.
    pub fn push_cjump_to(&mut self, cond: crate::CtrlReg, label: Label) -> usize {
        let idx = self.push(Instruction::CJump { cond, target: CrfSrc::Imm(0) });
        self.patches.push(Patch::CJumpTarget { inst: idx, label });
        idx
    }

    /// Appends a `seti crf` whose immediate will be the address of `label`
    /// (used to materialize register-indirect jump targets, the form the
    /// paper's Table I describes).
    pub fn push_seti_crf_label(&mut self, dst: crate::CtrlReg, label: Label) -> usize {
        let idx = self.push(Instruction::SetiCrf { dst, imm: 0 });
        self.patches.push(Patch::SetiCrf { inst: idx, label });
        idx
    }

    /// Current instruction count (address of the next pushed instruction).
    pub fn here(&self) -> usize {
        self.insts.len()
    }

    /// Resolves all labels and validates the program.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::UnboundLabel`] if a referenced label was never
    /// bound, or any error from [`Program::new`].
    pub fn seal(mut self) -> Result<Program, ProgramError> {
        for patch in &self.patches {
            let (inst, label) = match patch {
                Patch::JumpTarget { inst, label }
                | Patch::CJumpTarget { inst, label }
                | Patch::SetiCrf { inst, label } => (*inst, *label),
            };
            let addr = *self.bound.get(&label).ok_or(ProgramError::UnboundLabel(label))? as i32;
            match (&mut self.insts[inst], patch) {
                (Instruction::Jump { target }, Patch::JumpTarget { .. }) => {
                    *target = CrfSrc::Imm(addr);
                }
                (Instruction::CJump { target, .. }, Patch::CJumpTarget { .. }) => {
                    *target = CrfSrc::Imm(addr);
                }
                (Instruction::SetiCrf { imm, .. }, Patch::SetiCrf { .. }) => {
                    *imm = addr;
                }
                _ => unreachable!("patch does not match instruction shape"),
            }
        }
        Program::new(self.insts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CrfOp, CtrlReg};

    #[test]
    fn empty_program() {
        let p = Program::new(vec![]).unwrap();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn label_backward_branch_resolves() {
        let mut b = ProgramBuilder::new();
        let top = b.new_label();
        b.bind(top).unwrap();
        b.push(Instruction::SetiCrf { dst: CtrlReg::new(0), imm: 0 });
        b.push_cjump_to(CtrlReg::new(0), top);
        let p = b.seal().unwrap();
        match p.instructions()[1] {
            Instruction::CJump { target: CrfSrc::Imm(0), .. } => {}
            ref other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn label_forward_branch_resolves() {
        let mut b = ProgramBuilder::new();
        let end = b.new_label();
        b.push_jump_to(end);
        b.push(Instruction::SetiCrf { dst: CtrlReg::new(1), imm: 7 });
        b.bind(end).unwrap();
        let p = b.seal().unwrap();
        match p.instructions()[0] {
            Instruction::Jump { target: CrfSrc::Imm(2) } => {}
            ref other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn unbound_label_errors() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.push_jump_to(l);
        assert!(matches!(b.seal(), Err(ProgramError::UnboundLabel(_))));
    }

    #[test]
    fn duplicate_label_errors() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.bind(l).unwrap();
        assert_eq!(b.bind(l), Err(ProgramError::DuplicateLabel(l)));
    }

    #[test]
    fn out_of_range_target_rejected() {
        let insts = vec![Instruction::Jump { target: CrfSrc::Imm(5) }];
        assert!(matches!(
            Program::new(insts),
            Err(ProgramError::TargetOutOfRange { inst: 0, target: 5 })
        ));
    }

    #[test]
    fn target_equal_to_len_halts_and_is_valid() {
        let insts = vec![Instruction::Jump { target: CrfSrc::Imm(1) }];
        assert!(Program::new(insts).is_ok());
    }

    #[test]
    fn seti_crf_label_materializes_address() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.push_seti_crf_label(CtrlReg::new(3), l);
        b.push(Instruction::CalcCrf {
            op: CrfOp::Add,
            dst: CtrlReg::new(0),
            src1: CtrlReg::new(0),
            src2: CrfSrc::Imm(1),
        });
        b.bind(l).unwrap();
        let p = b.seal().unwrap();
        match p.instructions()[0] {
            Instruction::SetiCrf { imm: 2, .. } => {}
            ref other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn assembly_listing_has_one_line_per_inst() {
        let mut b = ProgramBuilder::new();
        b.push(Instruction::Sync { phase_id: 0 });
        b.push(Instruction::Sync { phase_id: 1 });
        let p = b.seal().unwrap();
        assert_eq!(p.to_assembly().lines().count(), 2);
    }
}

impl Program {
    /// Serializes the program to the binary format the host writes into a
    /// vault's VSM instruction region: a little-endian `u32` instruction
    /// count followed by one 24-byte word per instruction.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.insts.len() * 24);
        out.extend_from_slice(&(self.insts.len() as u32).to_le_bytes());
        for inst in &self.insts {
            out.extend_from_slice(&crate::encode(inst));
        }
        out
    }

    /// Deserializes a program previously produced by [`Program::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::Truncated`] if the byte stream is shorter
    /// than its header claims, [`ProgramError::Decode`] on a malformed
    /// instruction word, or a validation error from [`Program::new`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ProgramError> {
        if bytes.len() < 4 {
            return Err(ProgramError::Truncated { expected: 4, got: bytes.len() });
        }
        let n = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes")) as usize;
        let need = 4 + n * 24;
        if bytes.len() < need {
            return Err(ProgramError::Truncated { expected: need, got: bytes.len() });
        }
        let mut insts = Vec::with_capacity(n);
        for i in 0..n {
            let word: [u8; 24] = bytes[4 + i * 24..4 + (i + 1) * 24].try_into().expect("24 bytes");
            insts.push(
                crate::decode(&word)
                    .map_err(|e| ProgramError::Decode { index: i, message: e.to_string() })?,
            );
        }
        Program::new(insts)
    }
}

#[cfg(test)]
mod serialization_tests {
    use super::*;
    use crate::{CrfOp, CtrlReg, DataReg, SimbMask};

    fn sample() -> Program {
        let mut b = ProgramBuilder::new();
        let top = b.new_label();
        b.push(Instruction::SetiCrf { dst: CtrlReg::new(0), imm: 4 });
        b.bind(top).unwrap();
        b.push(Instruction::Reset { drf: DataReg::new(1), simb_mask: SimbMask::all(32) });
        b.push(Instruction::CalcCrf {
            op: CrfOp::Sub,
            dst: CtrlReg::new(0),
            src1: CtrlReg::new(0),
            src2: CrfSrc::Imm(1),
        });
        b.push_cjump_to(CtrlReg::new(0), top);
        b.seal().unwrap()
    }

    #[test]
    fn bytes_round_trip() {
        let p = sample();
        let bytes = p.to_bytes();
        assert_eq!(bytes.len(), 4 + p.len() * 24);
        let back = Program::from_bytes(&bytes).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn truncated_stream_rejected() {
        let p = sample();
        let bytes = p.to_bytes();
        assert!(matches!(
            Program::from_bytes(&bytes[..bytes.len() - 1]),
            Err(ProgramError::Truncated { .. })
        ));
        assert!(matches!(Program::from_bytes(&[1, 2]), Err(ProgramError::Truncated { .. })));
    }

    #[test]
    fn corrupt_word_rejected() {
        let p = sample();
        let mut bytes = p.to_bytes();
        bytes[4] = 0xFF; // invalid opcode of instruction 0
        assert!(matches!(Program::from_bytes(&bytes), Err(ProgramError::Decode { index: 0, .. })));
    }

    #[test]
    fn empty_program_round_trips() {
        let p = Program::new(vec![]).unwrap();
        assert_eq!(Program::from_bytes(&p.to_bytes()).unwrap(), p);
    }
}
