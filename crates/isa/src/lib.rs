//! SIMB (Single-Instruction-Multiple-Bank) instruction set architecture.
//!
//! This crate implements Table I of the iPIM paper (ISCA 2020): a RISC-like
//! SIMD ISA in which every bank-parallel instruction carries a `simb_mask`
//! selecting the process engines (PEs) of a vault that execute it in lockstep.
//!
//! The crate provides:
//!
//! * typed register names ([`DataReg`], [`AddrReg`], [`CtrlReg`]),
//! * execution masks ([`SimbMask`], [`VecMask`]),
//! * the [`Instruction`] enum with one variant per Table I row,
//! * a [`Program`] container with label resolution,
//! * a binary encoder/decoder ([`encode`], [`decode`]) with round-trip
//!   guarantees, and
//! * a human-readable assembly [`std::fmt::Display`] form for every
//!   instruction.
//!
//! # Example
//!
//! ```
//! use ipim_isa::{Instruction, CompOp, DataType, CompMode, DataReg, VecMask, SimbMask};
//!
//! // Brighten: out = alpha * in, on all PEs of the vault.
//! let inst = Instruction::Comp {
//!     op: CompOp::Mul,
//!     dtype: DataType::F32,
//!     mode: CompMode::ScalarVector,
//!     dst: DataReg::new(2),
//!     src1: DataReg::new(1),
//!     src2: DataReg::new(0),
//!     vec_mask: VecMask::ALL,
//!     simb_mask: SimbMask::all(32),
//! };
//! assert_eq!(inst.category(), ipim_isa::Category::Computation);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod encode;
mod inst;
mod mask;
mod ops;
mod program;
mod reg;

pub use encode::{decode, encode, DecodeError};
pub use inst::{AddrOperand, Category, CrfSrc, Instruction, RegRef, RemoteTarget};
pub use mask::{MaskError, SimbMask, VecMask};
pub use ops::{ArfOp, ArfSrc, CompMode, CompOp, CrfOp, DataType};
pub use program::{Label, Program, ProgramBuilder, ProgramError};
pub use reg::{AddrReg, CtrlReg, DataReg, ARF_CHIP_ID, ARF_PE_ID, ARF_PG_ID, ARF_VAULT_ID};

/// Number of 32-bit lanes in one SIMD vector (matches the 128-bit bank
/// interface and TSV transfer width; paper Sec. IV-C).
pub const SIMD_LANES: usize = 4;

/// Width in bytes of one SIMD vector / one bank column access (128 bits).
pub const VECTOR_BYTES: usize = SIMD_LANES * 4;
