//! Fixed-width binary encoding of SIMB instructions.
//!
//! Each instruction encodes into a 24-byte (192-bit) word — wide enough to
//! hold the 64-bit `simb_mask` plus a 32-bit immediate with byte-aligned
//! fields, which is what the host driver writes into the VSM instruction
//! region. `decode(encode(i)) == i` holds for every instruction (verified by
//! a property test).

use std::fmt;

use crate::{
    AddrOperand, AddrReg, ArfOp, ArfSrc, CompMode, CompOp, CrfOp, CrfSrc, CtrlReg, DataReg,
    DataType, Instruction, RemoteTarget, SimbMask, VecMask,
};

/// Width of one encoded instruction in bytes.
pub const WORD_BYTES: usize = 24;

/// Error produced when decoding a malformed instruction word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    offset: usize,
    byte: u8,
    what: &'static str,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid {} byte {:#x} at offset {}", self.what, self.byte, self.offset)
    }
}

impl std::error::Error for DecodeError {}

struct Writer {
    buf: [u8; WORD_BYTES],
    pos: usize,
}

impl Writer {
    fn new(opcode: u8) -> Self {
        let mut w = Self { buf: [0; WORD_BYTES], pos: 0 };
        w.u8(opcode);
        w
    }

    fn u8(&mut self, v: u8) {
        self.buf[self.pos] = v;
        self.pos += 1;
    }

    fn u32(&mut self, v: u32) {
        self.buf[self.pos..self.pos + 4].copy_from_slice(&v.to_le_bytes());
        self.pos += 4;
    }

    fn u64(&mut self, v: u64) {
        self.buf[self.pos..self.pos + 8].copy_from_slice(&v.to_le_bytes());
        self.pos += 8;
    }

    fn simb(&mut self, m: SimbMask) {
        self.u8(m.width() as u8);
        self.u64(m.bits());
    }

    fn addr_operand(&mut self, a: AddrOperand) {
        match a {
            AddrOperand::Imm(v) => {
                self.u8(0);
                self.u32(v);
            }
            AddrOperand::Indirect(r) => {
                self.u8(1);
                self.u32(r.index() as u32);
            }
        }
    }

    fn crf_src(&mut self, s: CrfSrc) {
        match s {
            CrfSrc::Imm(v) => {
                self.u8(0);
                self.u32(v as u32);
            }
            CrfSrc::Reg(r) => {
                self.u8(1);
                self.u32(r.index() as u32);
            }
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8; WORD_BYTES],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> u8 {
        let v = self.buf[self.pos];
        self.pos += 1;
        v
    }

    fn u32(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.buf[self.pos..self.pos + 4].try_into().unwrap());
        self.pos += 4;
        v
    }

    fn u64(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.buf[self.pos..self.pos + 8].try_into().unwrap());
        self.pos += 8;
        v
    }

    fn simb(&mut self) -> Result<SimbMask, DecodeError> {
        let offset = self.pos;
        let width = self.u8();
        if width == 0 || width as usize > SimbMask::MAX_WIDTH {
            return Err(DecodeError { offset, byte: width, what: "simb width" });
        }
        let bits = self.u64();
        Ok(SimbMask::from_bits(width as usize, bits))
    }

    fn addr_operand(&mut self) -> Result<AddrOperand, DecodeError> {
        let offset = self.pos;
        let tag = self.u8();
        let v = self.u32();
        match tag {
            0 => Ok(AddrOperand::Imm(v)),
            1 => Ok(AddrOperand::Indirect(AddrReg::new(v as u8))),
            _ => Err(DecodeError { offset, byte: tag, what: "addr operand tag" }),
        }
    }

    fn crf_src(&mut self) -> Result<CrfSrc, DecodeError> {
        let offset = self.pos;
        let tag = self.u8();
        let v = self.u32();
        match tag {
            0 => Ok(CrfSrc::Imm(v as i32)),
            1 => Ok(CrfSrc::Reg(CtrlReg::new(v as u8))),
            _ => Err(DecodeError { offset, byte: tag, what: "crf src tag" }),
        }
    }
}

mod opcode {
    pub const COMP: u8 = 0;
    pub const CALC_ARF: u8 = 1;
    pub const ST_RF: u8 = 2;
    pub const LD_RF: u8 = 3;
    pub const ST_PGSM: u8 = 4;
    pub const LD_PGSM: u8 = 5;
    pub const RD_PGSM: u8 = 6;
    pub const WR_PGSM: u8 = 7;
    pub const RD_VSM: u8 = 8;
    pub const WR_VSM: u8 = 9;
    pub const MOV: u8 = 10;
    pub const SETI_VSM: u8 = 11;
    pub const RESET: u8 = 12;
    pub const SETI_DRF: u8 = 13;
    pub const REQ: u8 = 14;
    pub const JUMP: u8 = 15;
    pub const CJUMP: u8 = 16;
    pub const CALC_CRF: u8 = 17;
    pub const SETI_CRF: u8 = 18;
    pub const SYNC: u8 = 19;
}

fn comp_op_code(op: CompOp) -> u8 {
    use CompOp::*;
    match op {
        Add => 0,
        Sub => 1,
        Mul => 2,
        Mac => 3,
        Div => 4,
        Min => 5,
        Max => 6,
        Shl => 7,
        Shr => 8,
        And => 9,
        Or => 10,
        Xor => 11,
        CropLsb => 12,
        CropMsb => 13,
        CmpLt => 14,
        CmpLe => 15,
        CmpEq => 16,
        CvtI2F => 17,
        CvtF2I => 18,
    }
}

fn comp_op_decode(code: u8, offset: usize) -> Result<CompOp, DecodeError> {
    use CompOp::*;
    Ok(match code {
        0 => Add,
        1 => Sub,
        2 => Mul,
        3 => Mac,
        4 => Div,
        5 => Min,
        6 => Max,
        7 => Shl,
        8 => Shr,
        9 => And,
        10 => Or,
        11 => Xor,
        12 => CropLsb,
        13 => CropMsb,
        14 => CmpLt,
        15 => CmpLe,
        16 => CmpEq,
        17 => CvtI2F,
        18 => CvtF2I,
        b => return Err(DecodeError { offset, byte: b, what: "comp op" }),
    })
}

fn arf_op_code(op: ArfOp) -> u8 {
    use ArfOp::*;
    match op {
        Add => 0,
        Sub => 1,
        Mul => 2,
        Div => 3,
        Rem => 4,
        Shl => 5,
        Shr => 6,
        And => 7,
        Or => 8,
        Min => 9,
        Max => 10,
    }
}

fn arf_op_decode(code: u8, offset: usize) -> Result<ArfOp, DecodeError> {
    use ArfOp::*;
    Ok(match code {
        0 => Add,
        1 => Sub,
        2 => Mul,
        3 => Div,
        4 => Rem,
        5 => Shl,
        6 => Shr,
        7 => And,
        8 => Or,
        9 => Min,
        10 => Max,
        b => return Err(DecodeError { offset, byte: b, what: "arf op" }),
    })
}

fn crf_op_code(op: CrfOp) -> u8 {
    use CrfOp::*;
    match op {
        Add => 0,
        Sub => 1,
        Mul => 2,
        Div => 3,
        Rem => 4,
        Lt => 5,
        Ge => 6,
        Eq => 7,
        Min => 8,
        Max => 9,
    }
}

fn crf_op_decode(code: u8, offset: usize) -> Result<CrfOp, DecodeError> {
    use CrfOp::*;
    Ok(match code {
        0 => Add,
        1 => Sub,
        2 => Mul,
        3 => Div,
        4 => Rem,
        5 => Lt,
        6 => Ge,
        7 => Eq,
        8 => Min,
        9 => Max,
        b => return Err(DecodeError { offset, byte: b, what: "crf op" }),
    })
}

/// Encodes one instruction into its 24-byte binary word.
pub fn encode(inst: &Instruction) -> [u8; WORD_BYTES] {
    use Instruction::*;
    let w = match *inst {
        Comp { op, dtype, mode, dst, src1, src2, vec_mask, simb_mask } => {
            let mut w = Writer::new(opcode::COMP);
            w.u8(comp_op_code(op));
            w.u8(matches!(dtype, DataType::I32) as u8);
            w.u8(matches!(mode, CompMode::ScalarVector) as u8);
            w.u8(dst.index() as u8);
            w.u8(src1.index() as u8);
            w.u8(src2.index() as u8);
            w.u8(vec_mask.bits());
            w.simb(simb_mask);
            w
        }
        CalcArf { op, dst, src1, src2, simb_mask } => {
            let mut w = Writer::new(opcode::CALC_ARF);
            w.u8(arf_op_code(op));
            w.u8(dst.index() as u8);
            w.u8(src1.index() as u8);
            match src2 {
                ArfSrc::Imm(v) => {
                    w.u8(0);
                    w.u32(v as u32);
                }
                ArfSrc::Reg(r) => {
                    w.u8(1);
                    w.u32(r.index() as u32);
                }
            }
            w.simb(simb_mask);
            w
        }
        StRf { dram_addr, drf, simb_mask } => {
            let mut w = Writer::new(opcode::ST_RF);
            w.addr_operand(dram_addr);
            w.u8(drf.index() as u8);
            w.simb(simb_mask);
            w
        }
        LdRf { dram_addr, drf, simb_mask } => {
            let mut w = Writer::new(opcode::LD_RF);
            w.addr_operand(dram_addr);
            w.u8(drf.index() as u8);
            w.simb(simb_mask);
            w
        }
        StPgsm { dram_addr, pgsm_addr, simb_mask } => {
            let mut w = Writer::new(opcode::ST_PGSM);
            w.addr_operand(dram_addr);
            w.addr_operand(pgsm_addr);
            w.simb(simb_mask);
            w
        }
        LdPgsm { dram_addr, pgsm_addr, simb_mask } => {
            let mut w = Writer::new(opcode::LD_PGSM);
            w.addr_operand(dram_addr);
            w.addr_operand(pgsm_addr);
            w.simb(simb_mask);
            w
        }
        RdPgsm { pgsm_addr, drf, simb_mask } => {
            let mut w = Writer::new(opcode::RD_PGSM);
            w.addr_operand(pgsm_addr);
            w.u8(drf.index() as u8);
            w.simb(simb_mask);
            w
        }
        WrPgsm { pgsm_addr, drf, simb_mask } => {
            let mut w = Writer::new(opcode::WR_PGSM);
            w.addr_operand(pgsm_addr);
            w.u8(drf.index() as u8);
            w.simb(simb_mask);
            w
        }
        RdVsm { vsm_addr, drf, simb_mask } => {
            let mut w = Writer::new(opcode::RD_VSM);
            w.addr_operand(vsm_addr);
            w.u8(drf.index() as u8);
            w.simb(simb_mask);
            w
        }
        WrVsm { vsm_addr, drf, simb_mask } => {
            let mut w = Writer::new(opcode::WR_VSM);
            w.addr_operand(vsm_addr);
            w.u8(drf.index() as u8);
            w.simb(simb_mask);
            w
        }
        Mov { to_arf, arf, drf, lane, simb_mask } => {
            let mut w = Writer::new(opcode::MOV);
            w.u8(to_arf as u8);
            w.u8(arf.index() as u8);
            w.u8(drf.index() as u8);
            w.u8(lane);
            w.simb(simb_mask);
            w
        }
        SetiVsm { vsm_addr, imm } => {
            let mut w = Writer::new(opcode::SETI_VSM);
            w.u32(vsm_addr);
            w.u32(imm);
            w
        }
        Reset { drf, simb_mask } => {
            let mut w = Writer::new(opcode::RESET);
            w.u8(drf.index() as u8);
            w.simb(simb_mask);
            w
        }
        SetiDrf { drf, imm, vec_mask, simb_mask } => {
            let mut w = Writer::new(opcode::SETI_DRF);
            w.u8(drf.index() as u8);
            w.u32(imm);
            w.u8(vec_mask.bits());
            w.simb(simb_mask);
            w
        }
        Req { target, dram_addr, vsm_addr } => {
            let mut w = Writer::new(opcode::REQ);
            w.u8(target.chip);
            w.u8(target.vault);
            w.u8(target.pg);
            w.u8(target.pe);
            w.crf_src(dram_addr);
            w.crf_src(vsm_addr);
            w
        }
        Jump { target } => {
            let mut w = Writer::new(opcode::JUMP);
            w.crf_src(target);
            w
        }
        CJump { cond, target } => {
            let mut w = Writer::new(opcode::CJUMP);
            w.u8(cond.index() as u8);
            w.crf_src(target);
            w
        }
        CalcCrf { op, dst, src1, src2 } => {
            let mut w = Writer::new(opcode::CALC_CRF);
            w.u8(crf_op_code(op));
            w.u8(dst.index() as u8);
            w.u8(src1.index() as u8);
            w.crf_src(src2);
            w
        }
        SetiCrf { dst, imm } => {
            let mut w = Writer::new(opcode::SETI_CRF);
            w.u8(dst.index() as u8);
            w.u32(imm as u32);
            w
        }
        Sync { phase_id } => {
            let mut w = Writer::new(opcode::SYNC);
            w.u32(phase_id);
            w
        }
    };
    w.buf
}

/// Decodes a 24-byte binary word back into an instruction.
///
/// # Errors
///
/// Returns [`DecodeError`] if the opcode or any field tag is invalid.
pub fn decode(word: &[u8; WORD_BYTES]) -> Result<Instruction, DecodeError> {
    let mut r = Reader { buf: word, pos: 0 };
    let op = r.u8();
    let inst = match op {
        opcode::COMP => {
            let off = r.pos;
            let cop = comp_op_decode(r.u8(), off)?;
            let dtype = if r.u8() == 0 { DataType::F32 } else { DataType::I32 };
            let mode = if r.u8() == 0 { CompMode::VectorVector } else { CompMode::ScalarVector };
            let dst = DataReg::new(r.u8());
            let src1 = DataReg::new(r.u8());
            let src2 = DataReg::new(r.u8());
            let vec_mask = VecMask::from_bits(r.u8());
            let simb_mask = r.simb()?;
            Instruction::Comp { op: cop, dtype, mode, dst, src1, src2, vec_mask, simb_mask }
        }
        opcode::CALC_ARF => {
            let off = r.pos;
            let aop = arf_op_decode(r.u8(), off)?;
            let dst = AddrReg::new(r.u8());
            let src1 = AddrReg::new(r.u8());
            let tag_off = r.pos;
            let tag = r.u8();
            let v = r.u32();
            let src2 = match tag {
                0 => ArfSrc::Imm(v as i32),
                1 => ArfSrc::Reg(AddrReg::new(v as u8)),
                b => return Err(DecodeError { offset: tag_off, byte: b, what: "arf src tag" }),
            };
            let simb_mask = r.simb()?;
            Instruction::CalcArf { op: aop, dst, src1, src2, simb_mask }
        }
        opcode::ST_RF => {
            let dram_addr = r.addr_operand()?;
            let drf = DataReg::new(r.u8());
            Instruction::StRf { dram_addr, drf, simb_mask: r.simb()? }
        }
        opcode::LD_RF => {
            let dram_addr = r.addr_operand()?;
            let drf = DataReg::new(r.u8());
            Instruction::LdRf { dram_addr, drf, simb_mask: r.simb()? }
        }
        opcode::ST_PGSM => {
            let dram_addr = r.addr_operand()?;
            let pgsm_addr = r.addr_operand()?;
            Instruction::StPgsm { dram_addr, pgsm_addr, simb_mask: r.simb()? }
        }
        opcode::LD_PGSM => {
            let dram_addr = r.addr_operand()?;
            let pgsm_addr = r.addr_operand()?;
            Instruction::LdPgsm { dram_addr, pgsm_addr, simb_mask: r.simb()? }
        }
        opcode::RD_PGSM => {
            let pgsm_addr = r.addr_operand()?;
            let drf = DataReg::new(r.u8());
            Instruction::RdPgsm { pgsm_addr, drf, simb_mask: r.simb()? }
        }
        opcode::WR_PGSM => {
            let pgsm_addr = r.addr_operand()?;
            let drf = DataReg::new(r.u8());
            Instruction::WrPgsm { pgsm_addr, drf, simb_mask: r.simb()? }
        }
        opcode::RD_VSM => {
            let vsm_addr = r.addr_operand()?;
            let drf = DataReg::new(r.u8());
            Instruction::RdVsm { vsm_addr, drf, simb_mask: r.simb()? }
        }
        opcode::WR_VSM => {
            let vsm_addr = r.addr_operand()?;
            let drf = DataReg::new(r.u8());
            Instruction::WrVsm { vsm_addr, drf, simb_mask: r.simb()? }
        }
        opcode::MOV => {
            let to_arf = r.u8() != 0;
            let arf = AddrReg::new(r.u8());
            let drf = DataReg::new(r.u8());
            let lane = r.u8();
            Instruction::Mov { to_arf, arf, drf, lane, simb_mask: r.simb()? }
        }
        opcode::SETI_VSM => Instruction::SetiVsm { vsm_addr: r.u32(), imm: r.u32() },
        opcode::RESET => Instruction::Reset { drf: DataReg::new(r.u8()), simb_mask: r.simb()? },
        opcode::SETI_DRF => {
            let drf = DataReg::new(r.u8());
            let imm = r.u32();
            let vec_mask = VecMask::from_bits(r.u8());
            Instruction::SetiDrf { drf, imm, vec_mask, simb_mask: r.simb()? }
        }
        opcode::REQ => {
            let target = RemoteTarget { chip: r.u8(), vault: r.u8(), pg: r.u8(), pe: r.u8() };
            let dram_addr = r.crf_src()?;
            let vsm_addr = r.crf_src()?;
            Instruction::Req { target, dram_addr, vsm_addr }
        }
        opcode::JUMP => Instruction::Jump { target: r.crf_src()? },
        opcode::CJUMP => {
            let cond = CtrlReg::new(r.u8());
            Instruction::CJump { cond, target: r.crf_src()? }
        }
        opcode::CALC_CRF => {
            let off = r.pos;
            let cop = crf_op_decode(r.u8(), off)?;
            let dst = CtrlReg::new(r.u8());
            let src1 = CtrlReg::new(r.u8());
            let src2 = r.crf_src()?;
            Instruction::CalcCrf { op: cop, dst, src1, src2 }
        }
        opcode::SETI_CRF => {
            let dst = CtrlReg::new(r.u8());
            Instruction::SetiCrf { dst, imm: r.u32() as i32 }
        }
        opcode::SYNC => Instruction::Sync { phase_id: r.u32() },
        b => return Err(DecodeError { offset: 0, byte: b, what: "opcode" }),
    };
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mask() -> SimbMask {
        SimbMask::from_bits(32, 0xDEAD_BEEF)
    }

    fn sample_instructions() -> Vec<Instruction> {
        vec![
            Instruction::Comp {
                op: CompOp::Mac,
                dtype: DataType::F32,
                mode: CompMode::ScalarVector,
                dst: DataReg::new(9),
                src1: DataReg::new(1),
                src2: DataReg::new(2),
                vec_mask: VecMask::first(3),
                simb_mask: mask(),
            },
            Instruction::CalcArf {
                op: ArfOp::Mul,
                dst: AddrReg::new(6),
                src1: AddrReg::new(5),
                src2: ArfSrc::Imm(-128),
                simb_mask: mask(),
            },
            Instruction::CalcArf {
                op: ArfOp::Add,
                dst: AddrReg::new(6),
                src1: AddrReg::new(5),
                src2: ArfSrc::Reg(AddrReg::new(7)),
                simb_mask: mask(),
            },
            Instruction::StRf {
                dram_addr: AddrOperand::Indirect(AddrReg::new(4)),
                drf: DataReg::new(3),
                simb_mask: mask(),
            },
            Instruction::LdRf {
                dram_addr: AddrOperand::Imm(0xABCD),
                drf: DataReg::new(3),
                simb_mask: mask(),
            },
            Instruction::StPgsm {
                dram_addr: AddrOperand::Imm(16),
                pgsm_addr: AddrOperand::Indirect(AddrReg::new(9)),
                simb_mask: mask(),
            },
            Instruction::LdPgsm {
                dram_addr: AddrOperand::Indirect(AddrReg::new(10)),
                pgsm_addr: AddrOperand::Imm(32),
                simb_mask: mask(),
            },
            Instruction::RdPgsm {
                pgsm_addr: AddrOperand::Imm(48),
                drf: DataReg::new(11),
                simb_mask: mask(),
            },
            Instruction::WrPgsm {
                pgsm_addr: AddrOperand::Indirect(AddrReg::new(12)),
                drf: DataReg::new(13),
                simb_mask: mask(),
            },
            Instruction::RdVsm {
                vsm_addr: AddrOperand::Imm(0x100),
                drf: DataReg::new(14),
                simb_mask: mask(),
            },
            Instruction::WrVsm {
                vsm_addr: AddrOperand::Indirect(AddrReg::new(15)),
                drf: DataReg::new(16),
                simb_mask: mask(),
            },
            Instruction::Mov {
                to_arf: true,
                arf: AddrReg::new(20),
                drf: DataReg::new(21),
                lane: 2,
                simb_mask: mask(),
            },
            Instruction::SetiVsm { vsm_addr: 0x2000, imm: 0xFFFF_0001 },
            Instruction::Reset { drf: DataReg::new(22), simb_mask: mask() },
            Instruction::SetiDrf {
                drf: DataReg::new(23),
                imm: 1.5f32.to_bits(),
                vec_mask: VecMask::ALL,
                simb_mask: mask(),
            },
            Instruction::Req {
                target: RemoteTarget { chip: 7, vault: 15, pg: 7, pe: 3 },
                dram_addr: CrfSrc::Reg(CtrlReg::new(4)),
                vsm_addr: CrfSrc::Imm(0x300),
            },
            Instruction::Jump { target: CrfSrc::Imm(17) },
            Instruction::CJump { cond: CtrlReg::new(2), target: CrfSrc::Reg(CtrlReg::new(3)) },
            Instruction::CalcCrf {
                op: CrfOp::Lt,
                dst: CtrlReg::new(1),
                src1: CtrlReg::new(2),
                src2: CrfSrc::Imm(100),
            },
            Instruction::SetiCrf { dst: CtrlReg::new(5), imm: -7 },
            Instruction::Sync { phase_id: 9 },
        ]
    }

    #[test]
    fn round_trip_every_variant() {
        for inst in sample_instructions() {
            let word = encode(&inst);
            let back = decode(&word).unwrap_or_else(|e| panic!("decode failed for {inst}: {e}"));
            assert_eq!(back, inst, "round trip mismatch for {inst}");
        }
    }

    #[test]
    fn invalid_opcode_rejected() {
        let mut word = [0u8; WORD_BYTES];
        word[0] = 0xFF;
        assert!(decode(&word).is_err());
    }

    #[test]
    fn invalid_simb_width_rejected() {
        let inst = Instruction::Reset { drf: DataReg::new(0), simb_mask: SimbMask::all(32) };
        let mut word = encode(&inst);
        word[2] = 0; // zero width
        assert!(decode(&word).is_err());
        word[2] = 65; // too wide
        assert!(decode(&word).is_err());
    }

    #[test]
    fn invalid_comp_op_rejected() {
        let inst = Instruction::Comp {
            op: CompOp::Add,
            dtype: DataType::F32,
            mode: CompMode::VectorVector,
            dst: DataReg::new(0),
            src1: DataReg::new(0),
            src2: DataReg::new(0),
            vec_mask: VecMask::ALL,
            simb_mask: SimbMask::all(8),
        };
        let mut word = encode(&inst);
        word[1] = 200;
        assert!(decode(&word).is_err());
    }

    #[test]
    fn decode_error_display() {
        let mut word = [0u8; WORD_BYTES];
        word[0] = 0xFF;
        let err = decode(&word).unwrap_err();
        assert!(err.to_string().contains("opcode"));
    }
}
