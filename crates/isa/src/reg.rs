//! Typed register names for the three register files of iPIM.
//!
//! Each process engine (PE) owns a vector *data register file* (DataRF, 64
//! entries of 128 bits) and a scalar *address register file* (AddrRF, 64
//! entries of 32 bits). The control core on the base logic die owns a scalar
//! *control register file* (CtrlRF) used for loop counters and jump targets.

use std::fmt;

/// AddrRF location reserved for the PE's own index within its process group.
pub const ARF_PE_ID: AddrReg = AddrReg(0);
/// AddrRF location reserved for the process-group index within the vault.
pub const ARF_PG_ID: AddrReg = AddrReg(1);
/// AddrRF location reserved for the vault index within the cube.
pub const ARF_VAULT_ID: AddrReg = AddrReg(2);
/// AddrRF location reserved for the cube (chip) index.
pub const ARF_CHIP_ID: AddrReg = AddrReg(3);

macro_rules! reg_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub(crate) u8);

        impl $name {
            /// Creates a register name from its index.
            ///
            /// Register-file *sizes* are a machine-configuration concern, so
            /// any `u8` index is representable at the ISA level; the
            /// architecture model validates indices against the configured
            /// file size when a program is loaded.
            pub const fn new(index: u8) -> Self {
                Self(index)
            }

            /// Returns the index of this register within its file.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u8> for $name {
            fn from(index: u8) -> Self {
                Self(index)
            }
        }
    };
}

reg_type!(
    /// A name in a PE's vector data register file (`DataRF`).
    ///
    /// Each entry holds one 128-bit SIMD vector (four 32-bit lanes).
    DataReg,
    "d"
);

reg_type!(
    /// A name in a PE's scalar address register file (`AddrRF`).
    ///
    /// Entries hold 32-bit integers used for memory indexing. Locations
    /// [`ARF_PE_ID`]..=[`ARF_CHIP_ID`] are reserved for hardware identity
    /// registers (paper Sec. IV-E).
    AddrReg,
    "a"
);

reg_type!(
    /// A name in the control core's scalar register file (`CtrlRF`).
    ///
    /// Entries hold 32-bit integers used for loop bounds, counters and jump
    /// targets.
    CtrlReg,
    "c"
);

impl AddrReg {
    /// Returns `true` if this is one of the four reserved identity registers
    /// (peID, pgID, vaultID, chipID).
    pub const fn is_reserved(self) -> bool {
        self.0 < 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(DataReg::new(7).to_string(), "d7");
        assert_eq!(AddrReg::new(63).to_string(), "a63");
        assert_eq!(CtrlReg::new(0).to_string(), "c0");
    }

    #[test]
    fn reserved_identity_registers() {
        assert!(ARF_PE_ID.is_reserved());
        assert!(ARF_PG_ID.is_reserved());
        assert!(ARF_VAULT_ID.is_reserved());
        assert!(ARF_CHIP_ID.is_reserved());
        assert!(!AddrReg::new(4).is_reserved());
    }

    #[test]
    fn index_round_trip() {
        for i in 0..=u8::MAX {
            assert_eq!(DataReg::new(i).index(), i as usize);
            assert_eq!(DataReg::from(i), DataReg::new(i));
        }
    }

    #[test]
    fn ordering_follows_index() {
        assert!(DataReg::new(1) < DataReg::new(2));
        assert!(CtrlReg::new(9) > CtrlReg::new(3));
    }
}
