//! Operation codes for the computation, index-calculation and control-flow
//! instructions.

use std::fmt;

/// Element type of a SIMD computation (`comp` instructions operate on either
/// FP32 or INT32 lanes; paper Sec. IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 32-bit IEEE-754 floating point lanes.
    F32,
    /// 32-bit two's-complement integer lanes.
    I32,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::F32 => write!(f, "f32"),
            DataType::I32 => write!(f, "i32"),
        }
    }
}

/// Vector-shape mode of a `comp` instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompMode {
    /// `dst[l] = src1[l] op src2[l]` for every active lane.
    VectorVector,
    /// `dst[l] = src1[l] op src2[0]`: the scalar operand is lane 0 of `src2`.
    ScalarVector,
}

impl fmt::Display for CompMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompMode::VectorVector => write!(f, "vv"),
            CompMode::ScalarVector => write!(f, "sv"),
        }
    }
}

/// Arithmetic/logical operation of a `comp` instruction.
///
/// The paper's Table I lists FP/INT `add, subtract, multiply, mac` and logical
/// `shift, and, or, xor, crop-lsb, crop-msb`. The Table II workloads
/// additionally require `min`/`max` (pyramid remapping, clamping), `div`
/// (bilateral-grid normalization), compare ops (Halide `select`), and
/// int↔float conversion (index-from-data gathers and histogram binning); we
/// include those as documented extensions of the SIMD unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompOp {
    /// Lane-wise addition.
    Add,
    /// Lane-wise subtraction.
    Sub,
    /// Lane-wise multiplication.
    Mul,
    /// Multiply-accumulate: `dst += src1 * src2`.
    Mac,
    /// Lane-wise division (extension; see type-level docs).
    Div,
    /// Lane-wise minimum (extension).
    Min,
    /// Lane-wise maximum (extension).
    Max,
    /// Logical left shift (integer lanes).
    Shl,
    /// Logical right shift (integer lanes).
    Shr,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Keep the least-significant 16 bits of each lane (`crop-lsb`).
    CropLsb,
    /// Keep the most-significant 16 bits of each lane (`crop-msb`).
    CropMsb,
    /// Compare less-than, producing 1 (or 1.0) / 0 per lane (extension).
    CmpLt,
    /// Compare less-or-equal, producing 1 / 0 per lane (extension).
    CmpLe,
    /// Compare equality, producing 1 / 0 per lane (extension).
    CmpEq,
    /// Convert integer lanes to float (`src2` ignored; extension).
    CvtI2F,
    /// Convert float lanes to integer, truncating toward zero (extension).
    CvtF2I,
}

impl CompOp {
    /// Whether the operation reads the destination register (only `mac`).
    pub fn reads_dst(self) -> bool {
        matches!(self, CompOp::Mac)
    }

    /// Whether the operation uses its second source operand.
    pub fn uses_src2(self) -> bool {
        !matches!(self, CompOp::CvtI2F | CompOp::CvtF2I)
    }

    /// Mnemonic used by the assembly printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CompOp::Add => "add",
            CompOp::Sub => "sub",
            CompOp::Mul => "mul",
            CompOp::Mac => "mac",
            CompOp::Div => "div",
            CompOp::Min => "min",
            CompOp::Max => "max",
            CompOp::Shl => "shl",
            CompOp::Shr => "shr",
            CompOp::And => "and",
            CompOp::Or => "or",
            CompOp::Xor => "xor",
            CompOp::CropLsb => "croplsb",
            CompOp::CropMsb => "cropmsb",
            CompOp::CmpLt => "cmplt",
            CompOp::CmpLe => "cmple",
            CompOp::CmpEq => "cmpeq",
            CompOp::CvtI2F => "cvti2f",
            CompOp::CvtF2I => "cvtf2i",
        }
    }
}

impl fmt::Display for CompOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Integer operation of a `calc arf` (per-PE index calculation) instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArfOp {
    /// `dst = src1 + src2`.
    Add,
    /// `dst = src1 - src2`.
    Sub,
    /// `dst = src1 * src2`.
    Mul,
    /// `dst = src1 / src2` (floor division, matching Halide coordinate
    /// semantics; division by zero yields zero).
    Div,
    /// `dst = src1 % src2` (euclidean remainder; modulo zero yields zero).
    Rem,
    /// `dst = src1 << src2`.
    Shl,
    /// `dst = src1 >> src2` (arithmetic).
    Shr,
    /// `dst = src1 & src2`.
    And,
    /// `dst = src1 | src2`.
    Or,
    /// `dst = min(src1, src2)` (used for index clamping at image borders).
    Min,
    /// `dst = max(src1, src2)`.
    Max,
}

impl ArfOp {
    /// Mnemonic used by the assembly printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            ArfOp::Add => "add",
            ArfOp::Sub => "sub",
            ArfOp::Mul => "mul",
            ArfOp::Div => "div",
            ArfOp::Rem => "rem",
            ArfOp::Shl => "shl",
            ArfOp::Shr => "shr",
            ArfOp::And => "and",
            ArfOp::Or => "or",
            ArfOp::Min => "min",
            ArfOp::Max => "max",
        }
    }

    /// Applies the operation to two scalar values (the architectural
    /// semantics used by both the simulator and compiler constant folding).
    pub fn apply(self, a: i32, b: i32) -> i32 {
        match self {
            ArfOp::Add => a.wrapping_add(b),
            ArfOp::Sub => a.wrapping_sub(b),
            ArfOp::Mul => a.wrapping_mul(b),
            ArfOp::Div => {
                if b == 0 {
                    0
                } else {
                    a.div_euclid(b)
                }
            }
            ArfOp::Rem => {
                if b == 0 {
                    0
                } else {
                    a.rem_euclid(b)
                }
            }
            ArfOp::Shl => a.wrapping_shl(b as u32 & 31),
            ArfOp::Shr => a.wrapping_shr(b as u32 & 31),
            ArfOp::And => a & b,
            ArfOp::Or => a | b,
            ArfOp::Min => a.min(b),
            ArfOp::Max => a.max(b),
        }
    }
}

impl fmt::Display for ArfOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Second source operand of `calc arf` / `calc crf`: a register or an
/// immediate.
///
/// Table I lists register operands only; immediates are a documented encoding
/// extension that every practical codegen needs for strides and constants
/// (the alternative — materializing each constant through the VSM — would
/// serialize on the shared TSV bus).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArfSrc {
    /// Read the operand from an AddrRF register.
    Reg(crate::AddrReg),
    /// Use an immediate constant.
    Imm(i32),
}

impl fmt::Display for ArfSrc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArfSrc::Reg(r) => write!(f, "{r}"),
            ArfSrc::Imm(v) => write!(f, "#{v}"),
        }
    }
}

/// Integer operation of a `calc crf` (control-flow calculation) instruction.
///
/// Identical operation set to [`ArfOp`]; kept as a distinct type because the
/// two execute on different hardware (control core vs. per-PE integer ALU)
/// with different energy/latency accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrfOp {
    /// `dst = src1 + src2`.
    Add,
    /// `dst = src1 - src2`.
    Sub,
    /// `dst = src1 * src2`.
    Mul,
    /// `dst = src1 / src2` (floor division; division by zero yields zero).
    Div,
    /// `dst = src1 % src2` (euclidean remainder; modulo zero yields zero).
    Rem,
    /// `dst = 1` if `src1 < src2` else `0`.
    Lt,
    /// `dst = 1` if `src1 >= src2` else `0`.
    Ge,
    /// `dst = 1` if `src1 == src2` else `0`.
    Eq,
    /// `dst = min(src1, src2)`.
    Min,
    /// `dst = max(src1, src2)`.
    Max,
}

impl CrfOp {
    /// Mnemonic used by the assembly printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CrfOp::Add => "add",
            CrfOp::Sub => "sub",
            CrfOp::Mul => "mul",
            CrfOp::Div => "div",
            CrfOp::Rem => "rem",
            CrfOp::Lt => "lt",
            CrfOp::Ge => "ge",
            CrfOp::Eq => "eq",
            CrfOp::Min => "min",
            CrfOp::Max => "max",
        }
    }

    /// Applies the operation to two scalar values.
    pub fn apply(self, a: i32, b: i32) -> i32 {
        match self {
            CrfOp::Add => a.wrapping_add(b),
            CrfOp::Sub => a.wrapping_sub(b),
            CrfOp::Mul => a.wrapping_mul(b),
            CrfOp::Div => {
                if b == 0 {
                    0
                } else {
                    a.div_euclid(b)
                }
            }
            CrfOp::Rem => {
                if b == 0 {
                    0
                } else {
                    a.rem_euclid(b)
                }
            }
            CrfOp::Lt => (a < b) as i32,
            CrfOp::Ge => (a >= b) as i32,
            CrfOp::Eq => (a == b) as i32,
            CrfOp::Min => a.min(b),
            CrfOp::Max => a.max(b),
        }
    }
}

impl fmt::Display for CrfOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arf_op_semantics() {
        assert_eq!(ArfOp::Add.apply(3, 4), 7);
        assert_eq!(ArfOp::Sub.apply(3, 4), -1);
        assert_eq!(ArfOp::Mul.apply(-3, 4), -12);
        assert_eq!(ArfOp::Div.apply(9, 2), 4);
        assert_eq!(ArfOp::Div.apply(9, 0), 0);
        assert_eq!(ArfOp::Rem.apply(9, 4), 1);
        assert_eq!(ArfOp::Rem.apply(9, 0), 0);
        assert_eq!(ArfOp::Shl.apply(1, 5), 32);
        assert_eq!(ArfOp::Shr.apply(-8, 1), -4);
        assert_eq!(ArfOp::Min.apply(2, -3), -3);
        assert_eq!(ArfOp::Max.apply(2, -3), 2);
    }

    #[test]
    fn crf_op_semantics() {
        assert_eq!(CrfOp::Lt.apply(1, 2), 1);
        assert_eq!(CrfOp::Lt.apply(2, 2), 0);
        assert_eq!(CrfOp::Ge.apply(2, 2), 1);
        assert_eq!(CrfOp::Eq.apply(5, 5), 1);
        assert_eq!(CrfOp::Div.apply(7, 0), 0);
        assert_eq!(CrfOp::Rem.apply(7, 0), 0);
    }

    #[test]
    fn wrapping_behaviour() {
        assert_eq!(ArfOp::Add.apply(i32::MAX, 1), i32::MIN);
        assert_eq!(ArfOp::Mul.apply(i32::MAX, 2), -2);
    }

    #[test]
    fn comp_op_dst_and_src2_usage() {
        assert!(CompOp::Mac.reads_dst());
        assert!(!CompOp::Add.reads_dst());
        assert!(!CompOp::CvtI2F.uses_src2());
        assert!(CompOp::Mul.uses_src2());
    }

    #[test]
    fn mnemonics_are_distinct() {
        use std::collections::HashSet;
        let comp: HashSet<_> = [
            CompOp::Add,
            CompOp::Sub,
            CompOp::Mul,
            CompOp::Mac,
            CompOp::Div,
            CompOp::Min,
            CompOp::Max,
            CompOp::Shl,
            CompOp::Shr,
            CompOp::And,
            CompOp::Or,
            CompOp::Xor,
            CompOp::CropLsb,
            CompOp::CropMsb,
            CompOp::CmpLt,
            CompOp::CmpLe,
            CompOp::CmpEq,
            CompOp::CvtI2F,
            CompOp::CvtF2I,
        ]
        .iter()
        .map(|o| o.mnemonic())
        .collect();
        assert_eq!(comp.len(), 19);
    }
}
