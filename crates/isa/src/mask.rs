//! Execution masks: the `simb_mask` selecting PEs and the `vec_mask`
//! selecting SIMD lanes.

use std::fmt;

use crate::SIMD_LANES;

/// Error produced when constructing a mask with an out-of-range bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaskError {
    bit: usize,
    width: usize,
}

impl fmt::Display for MaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mask bit {} out of range for width {}", self.bit, self.width)
    }
}

impl std::error::Error for MaskError {}

/// Boolean vector selecting which PEs of a vault execute a SIMB instruction.
///
/// In the default configuration a vault holds 8 process groups of 4 PEs each,
/// so the mask is a 32-bit boolean vector; the width is kept explicit so
/// alternative machine shapes (used by the sensitivity studies) remain
/// expressible. PE `i` of PG `g` maps to bit `g * pes_per_pg + i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SimbMask {
    bits: u64,
    width: u8,
}

impl SimbMask {
    /// Maximum supported number of PEs per vault.
    pub const MAX_WIDTH: usize = 64;

    /// Creates a mask with all `width` bits set (every PE executes).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`Self::MAX_WIDTH`].
    pub fn all(width: usize) -> Self {
        assert!(width > 0 && width <= Self::MAX_WIDTH, "invalid SIMB width {width}");
        let bits = if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        Self { bits, width: width as u8 }
    }

    /// Creates a mask with no bits set.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`Self::MAX_WIDTH`].
    pub fn none(width: usize) -> Self {
        assert!(width > 0 && width <= Self::MAX_WIDTH, "invalid SIMB width {width}");
        Self { bits: 0, width: width as u8 }
    }

    /// Creates a mask selecting exactly one PE.
    ///
    /// # Errors
    ///
    /// Returns [`MaskError`] if `pe >= width`.
    pub fn single(width: usize, pe: usize) -> Result<Self, MaskError> {
        let mut mask = Self::none(width);
        mask.set(pe)?;
        Ok(mask)
    }

    /// Creates a mask from raw bits, truncating to `width`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`Self::MAX_WIDTH`].
    pub fn from_bits(width: usize, bits: u64) -> Self {
        let all = Self::all(width);
        Self { bits: bits & all.bits, width: all.width }
    }

    /// Sets bit `pe`.
    ///
    /// # Errors
    ///
    /// Returns [`MaskError`] if `pe` is out of range.
    pub fn set(&mut self, pe: usize) -> Result<(), MaskError> {
        if pe >= self.width as usize {
            return Err(MaskError { bit: pe, width: self.width as usize });
        }
        self.bits |= 1 << pe;
        Ok(())
    }

    /// Clears bit `pe`.
    ///
    /// # Errors
    ///
    /// Returns [`MaskError`] if `pe` is out of range.
    pub fn clear(&mut self, pe: usize) -> Result<(), MaskError> {
        if pe >= self.width as usize {
            return Err(MaskError { bit: pe, width: self.width as usize });
        }
        self.bits &= !(1 << pe);
        Ok(())
    }

    /// Returns whether PE `pe` is selected; out-of-range bits read as unset.
    pub fn contains(&self, pe: usize) -> bool {
        pe < self.width as usize && (self.bits >> pe) & 1 == 1
    }

    /// Number of PEs selected.
    pub fn count(&self) -> usize {
        self.bits.count_ones() as usize
    }

    /// Returns `true` when no PE is selected.
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// The mask width (number of PEs per vault this mask addresses).
    pub fn width(&self) -> usize {
        self.width as usize
    }

    /// Raw bit representation (bit `i` = PE `i`).
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// Iterates over the indices of selected PEs in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        let bits = self.bits;
        (0..self.width as usize).filter(move |&i| (bits >> i) & 1 == 1)
    }
}

impl fmt::Display for SimbMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.bits == Self::all(self.width as usize).bits {
            write!(f, "simb=all")
        } else {
            write!(f, "simb={:#x}/{}", self.bits, self.width)
        }
    }
}

/// Boolean vector selecting which of the four SIMD lanes participate in a
/// vector operation (paper Sec. IV-C, the `vec_mask` operand of `comp`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VecMask(u8);

impl VecMask {
    /// All four lanes enabled.
    pub const ALL: VecMask = VecMask(0b1111);

    /// Creates a mask from the low [`SIMD_LANES`](crate::SIMD_LANES) bits.
    pub fn from_bits(bits: u8) -> Self {
        Self(bits & 0b1111)
    }

    /// Mask enabling only the first `n` lanes.
    ///
    /// # Panics
    ///
    /// Panics if `n > 4`.
    pub fn first(n: usize) -> Self {
        assert!(n <= SIMD_LANES, "lane count {n} exceeds SIMD width");
        Self(((1u16 << n) - 1) as u8)
    }

    /// Whether lane `lane` participates; out-of-range lanes read as disabled.
    pub fn lane(self, lane: usize) -> bool {
        lane < SIMD_LANES && (self.0 >> lane) & 1 == 1
    }

    /// Number of active lanes.
    pub fn count(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Raw bits (bit `i` = lane `i`).
    pub fn bits(self) -> u8 {
        self.0
    }
}

impl Default for VecMask {
    fn default() -> Self {
        Self::ALL
    }
}

impl fmt::Display for VecMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Self::ALL {
            write!(f, "vec=all")
        } else {
            write!(f, "vec={:#06b}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_and_none() {
        let all = SimbMask::all(32);
        assert_eq!(all.count(), 32);
        assert!(all.contains(0) && all.contains(31) && !all.contains(32));
        let none = SimbMask::none(32);
        assert!(none.is_empty());
    }

    #[test]
    fn width_64_does_not_overflow() {
        let all = SimbMask::all(64);
        assert_eq!(all.count(), 64);
        assert_eq!(all.bits(), u64::MAX);
    }

    #[test]
    fn set_clear_round_trip() {
        let mut m = SimbMask::none(8);
        m.set(3).unwrap();
        assert!(m.contains(3));
        assert_eq!(m.count(), 1);
        m.clear(3).unwrap();
        assert!(m.is_empty());
        assert!(m.set(8).is_err());
        assert!(m.clear(9).is_err());
    }

    #[test]
    fn from_bits_truncates() {
        let m = SimbMask::from_bits(4, 0xFF);
        assert_eq!(m.count(), 4);
        assert_eq!(m.bits(), 0xF);
    }

    #[test]
    fn iter_yields_selected() {
        let m = SimbMask::from_bits(8, 0b1010_0001);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![0, 5, 7]);
    }

    #[test]
    fn single_selects_one() {
        let m = SimbMask::single(32, 17).unwrap();
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![17]);
        assert!(SimbMask::single(32, 32).is_err());
    }

    #[test]
    fn vec_mask_lanes() {
        assert_eq!(VecMask::ALL.count(), 4);
        let m = VecMask::first(2);
        assert!(m.lane(0) && m.lane(1) && !m.lane(2));
        assert_eq!(VecMask::from_bits(0b0101).count(), 2);
        assert!(!VecMask::ALL.lane(4));
    }

    #[test]
    fn display_forms() {
        assert_eq!(SimbMask::all(32).to_string(), "simb=all");
        assert_eq!(SimbMask::from_bits(8, 0b11).to_string(), "simb=0x3/8");
        assert_eq!(VecMask::ALL.to_string(), "vec=all");
        assert_eq!(VecMask::first(1).to_string(), "vec=0b0001");
    }
}
