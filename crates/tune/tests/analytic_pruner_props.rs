//! Properties of the analytic pruning tier inside the tuner.
//!
//! The hill-climb no longer simulates every neighbour: the analytic
//! engine ranks each wave and only the top-`frontier` candidates reach
//! the bit-exact engine. These tests pin the two contracts that makes
//! safe:
//!
//! 1. **Determinism is untouched** — the analytic prediction is a pure
//!    function of the compiled program, so the same seed still finds the
//!    same winner at any pool width and any repetition.
//! 2. **The short-list never drops the best** — on the recorded PR 5
//!    winner workloads (Blur and BilateralGrid at the paper's 128²
//!    scale), a frontier-limited climb must find exactly the winner the
//!    full-wave climb finds, while simulating strictly fewer candidates.

use ipim_serve::{PoolConfig, ServePool};
use ipim_tune::{run_search, Strategy, TuneConfig};

fn cfg_128(workload: &str) -> TuneConfig {
    TuneConfig {
        strategy: Strategy::HillClimb { restarts: 1, steps: 3 },
        ..TuneConfig::new(workload)
    }
}

#[test]
fn same_seed_same_winner_with_analytic_pruner_at_any_pool_width() {
    // 64² keeps the bit-exact runs cheap; the frontier default (4) is
    // active, so every wave exercises the analytic short-list.
    let cfg = TuneConfig {
        width: 64,
        height: 64,
        strategy: Strategy::HillClimb { restarts: 1, steps: 3 },
        ..TuneConfig::new("Blur")
    };
    assert!(cfg.frontier > 0, "default config must exercise the short-list");
    let mut outcomes = Vec::new();
    for workers in [1usize, 2, 4] {
        let pool = ServePool::start(&PoolConfig { workers, queue_depth: 32, cache_capacity: 64 });
        outcomes.push(run_search(&cfg, &pool).expect("search succeeds"));
        pool.shutdown();
    }
    for o in &outcomes[1..] {
        assert_eq!(o.best.key, outcomes[0].best.key, "pool width changed the winner");
        assert_eq!(o.best.cycles, outcomes[0].best.cycles);
        // The whole evaluation log — including which candidates the
        // short-list admitted — is width-invariant.
        let keys =
            |o: &ipim_tune::TuneOutcome| o.evals.iter().map(|e| e.key.clone()).collect::<Vec<_>>();
        assert_eq!(keys(o), keys(&outcomes[0]));
    }
}

#[test]
fn slow_frontier_never_drops_the_known_best() {
    // The recorded PR 5 wins (Blur 1.79×, BilateralGrid 1.32× at 128²)
    // came from full-wave climbs. The frontier-limited climb must land on
    // the same winner — if the analytic ranking ever pushed the true best
    // out of the top-K, this diverges immediately.
    let pool = ServePool::start(&PoolConfig { workers: 4, queue_depth: 64, cache_capacity: 256 });
    for name in ["Blur", "BilateralGrid"] {
        let full = run_search(&TuneConfig { frontier: 0, ..cfg_128(name) }, &pool)
            .unwrap_or_else(|e| panic!("{name} full-wave: {e}"));
        let short =
            run_search(&cfg_128(name), &pool).unwrap_or_else(|e| panic!("{name} frontier: {e}"));
        assert_eq!(
            short.best.key, full.best.key,
            "{name}: the frontier short-list dropped the full-wave winner"
        );
        assert_eq!(short.best.cycles, full.best.cycles);
        assert!(
            short.simulated < full.simulated,
            "{name}: the short-list must spend fewer simulations ({} vs {})",
            short.simulated,
            full.simulated,
        );
        // And the win itself still stands against the hand schedule.
        let d = short.default_cycles.expect("hand default completes");
        let b = short.best.cycles.expect("best completes");
        assert!(b < d, "{name}: recorded win regressed (best {b} vs hand {d})");
    }
    pool.shutdown();
}
