//! Ranking regression for the static cost estimator.
//!
//! `ipim_compiler::estimate` is rank-only: the tuner prunes candidates by
//! it before paying for simulation, so an estimator that misorders the
//! known-good schedules silently wastes the whole search budget. This
//! pins the orderings the PR 6 recalibration was fitted against — cycle
//! counts replayed from cached programs over a Blur 128² schedule sweep
//! (exhaustive tune, seed 7: hand default 16 272 cycles, tuned winner
//! `tile=32x8,pgsm=on` 9 084 cycles, a 1.79× speedup).

use ipim_core::{workload_by_name, MachineConfig, ScheduleOverride, WorkloadScale};

fn blur_est(ov: Option<(u32, u32)>) -> u64 {
    let machine = MachineConfig::vault_slice(1);
    let w = workload_by_name("Blur", WorkloadScale { width: 128, height: 128 }).unwrap();
    let w = match ov {
        None => w,
        Some(tile) => w
            .with_override(&ScheduleOverride {
                tile: Some(tile),
                load_pgsm: Some(true),
                vectorize: Some(1),
                compute_root: Default::default(),
            })
            .expect("legal override"),
    };
    ipim_compiler::estimate(&w.pipeline, &machine).expect("estimate").est_cycles
}

#[test]
fn estimate_ranks_tuned_winner_above_hand_blur_schedule() {
    let hand = blur_est(None);
    let winner = blur_est(Some((32, 8)));
    assert!(
        winner < hand,
        "the 1.79x tuned winner (32x8,pgsm) must estimate cheaper than the \
         hand schedule: winner {winner} vs hand {hand}"
    );
}

#[test]
fn estimate_ranks_winner_above_single_slot_runner_up() {
    // The pre-recalibration model ranked 1-slot 64x8 (replayed: 10 874
    // cycles) above the true winner 32x8 (9 084 cycles) because it
    // charged PGSM staging uniformly per slot; the pipelined model must
    // not regress to that inversion.
    let winner = blur_est(Some((32, 8)));
    let single_slot = blur_est(Some((64, 8)));
    assert!(
        winner < single_slot,
        "winner 32x8 ({winner}) must estimate cheaper than 1-slot 64x8 ({single_slot})"
    );
}
