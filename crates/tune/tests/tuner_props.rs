//! Tuner contracts (simkit harness).
//!
//! 1. **Space legality** — every schedule the space enumerates for Blur
//!    and StencilChain compiles, and a seeded sample of them simulates to
//!    an output matching the golden CPU interpreter within the canonical
//!    banded tolerance.
//! 2. **Seed determinism** — the same tuner seed finds the same best
//!    schedule twice, independent of pool width (wall-clock never leaks
//!    into the search decision).

use ipim_core::experiments::{output_divergence, REFERENCE_TOLERANCE};
use ipim_core::{workload_by_name, MachineConfig, Session, WorkloadScale};
use ipim_serve::{PoolConfig, ServePool, SimResponse};
use ipim_simkit::Rng;
use ipim_tune::{run_search, ScheduleSpace, Strategy, TuneConfig};

fn small_cfg(workload: &str) -> TuneConfig {
    TuneConfig {
        width: 64,
        height: 64,
        strategy: Strategy::HillClimb { restarts: 1, steps: 3 },
        ..TuneConfig::new(workload)
    }
}

#[test]
fn prop_every_enumerated_schedule_compiles_and_a_sample_verifies() {
    let machine = MachineConfig::vault_slice(1);
    // Blur gets a full independent re-compile of every entry (2-stage,
    // cheap); StencilChain re-checks a seeded sample — its 32-stage
    // compiles dominate wall-clock, and enumeration itself already
    // compile-checked every entry once. It must stay at 64×64: any
    // smaller and the 32-deep halo-recompute boundary error covers the
    // whole image, so the banded interpreter comparison has no clean
    // interior left to verify.
    for (name, side, recheck_all) in [("Blur", 64u32, true), ("StencilChain", 64, false)] {
        let scale = WorkloadScale { width: side, height: side };
        let workload = workload_by_name(name, scale).unwrap();
        let space = ScheduleSpace::enumerate(&workload, &machine, false).unwrap();
        assert!(!space.is_empty(), "{name}: empty space");

        // Entries must compile — independently of the filter that built
        // the space (all of them, or a seeded sample for the heavy suite).
        let session = Session::new(machine.clone());
        let mut rng = Rng::new(0xC0FFEE ^ name.len() as u64);
        let recheck: Vec<usize> = if recheck_all {
            (0..space.entries.len()).collect()
        } else {
            (0..5).map(|_| rng.range_usize(0, space.entries.len())).collect()
        };
        for i in recheck {
            let entry = &space.entries[i];
            let w = workload.with_override(&entry.ov).unwrap_or_else(|e| {
                panic!("{name}: enumerated override {} does not apply: {e}", entry.ov)
            });
            session.compile_only(&w.pipeline).unwrap_or_else(|e| {
                panic!("{name}: enumerated schedule {} does not compile: {e}", entry.summary)
            });
        }

        // A seeded sample must also *run* correctly: simulate through the
        // pool and compare against the golden interpreter.
        let pool = ServePool::start(&PoolConfig { workers: 1, queue_depth: 8, cache_capacity: 8 });
        let cfg = TuneConfig { width: side, height: side, ..small_cfg(name) };
        for _ in 0..2 {
            let entry = &space.entries[rng.range_usize(0, space.entries.len())];
            let candidate =
                ipim_tune::Candidate { schedule: entry.ov, ..ipim_tune::Candidate::default_hand() };
            let w = workload.with_override(&entry.ov).unwrap();
            match pool.submit(candidate.request(&cfg)).wait() {
                SimResponse::Done(d) => {
                    let diff = output_divergence(&w, &d.output);
                    assert!(
                        diff <= REFERENCE_TOLERANCE,
                        "{name}: schedule {} diverges by {diff}",
                        entry.summary
                    );
                }
                other => panic!("{name}: schedule {} failed to run: {other:?}", entry.summary),
            }
        }
        pool.shutdown();
    }
}

#[test]
fn same_seed_finds_the_same_best_schedule() {
    let cfg = small_cfg("Blur");
    let mut outcomes = Vec::new();
    // Twice with one worker, once with two: neither repetition nor pool
    // width may change the winner.
    for workers in [1usize, 1, 2] {
        let pool = ServePool::start(&PoolConfig { workers, queue_depth: 32, cache_capacity: 64 });
        let outcome = run_search(&cfg, &pool).expect("search succeeds");
        pool.shutdown();
        outcomes.push(outcome);
    }
    let best_keys: Vec<&str> = outcomes.iter().map(|o| o.best.key.as_str()).collect();
    assert_eq!(best_keys[0], best_keys[1], "same seed, same pool: different winner");
    assert_eq!(best_keys[0], best_keys[2], "pool width changed the winner");
    assert_eq!(outcomes[0].best.cycles, outcomes[1].best.cycles);
    // The evaluation *log* is deterministic too, not just the winner.
    let keys =
        |o: &ipim_tune::TuneOutcome| o.evals.iter().map(|e| e.key.clone()).collect::<Vec<_>>();
    assert_eq!(keys(&outcomes[0]), keys(&outcomes[1]));
    assert_eq!(keys(&outcomes[0]), keys(&outcomes[2]));
}

#[test]
fn new_family_spaces_are_nontrivial_and_tuner_is_deterministic() {
    // The NN/video families must be *tunable*, not just runnable: the
    // schedule space for Gemm and TemporalBlur has to offer real choice
    // (more than one compiling point), and the search over a new-family
    // workload must be exactly as deterministic as over Blur.
    let machine = MachineConfig::vault_slice(1);
    for name in ["Gemm", "TemporalBlur"] {
        let scale = WorkloadScale { width: 64, height: 64 };
        let workload = workload_by_name(name, scale).unwrap();
        let space = ScheduleSpace::enumerate(&workload, &machine, false).unwrap();
        assert!(
            space.entries.len() >= 2,
            "{name}: schedule space is trivial ({} entries)",
            space.entries.len()
        );
    }

    let cfg = small_cfg("TemporalBlur");
    let mut outcomes = Vec::new();
    for workers in [1usize, 1, 2] {
        let pool = ServePool::start(&PoolConfig { workers, queue_depth: 32, cache_capacity: 64 });
        let outcome = run_search(&cfg, &pool).expect("search succeeds");
        pool.shutdown();
        outcomes.push(outcome);
    }
    let best_keys: Vec<&str> = outcomes.iter().map(|o| o.best.key.as_str()).collect();
    assert_eq!(best_keys[0], best_keys[1], "same seed, same pool: different winner");
    assert_eq!(best_keys[0], best_keys[2], "pool width changed the winner");
    assert_eq!(outcomes[0].best.cycles, outcomes[1].best.cycles);
    let keys =
        |o: &ipim_tune::TuneOutcome| o.evals.iter().map(|e| e.key.clone()).collect::<Vec<_>>();
    assert_eq!(keys(&outcomes[0]), keys(&outcomes[1]));
    assert_eq!(keys(&outcomes[0]), keys(&outcomes[2]));
    assert!(outcomes[0].verified_divergence <= REFERENCE_TOLERANCE);
}

#[test]
fn tuned_blur_beats_the_hand_default() {
    // The CI smoke gate's in-tree twin: fixed seed, small budget, Blur —
    // the found schedule must be at least as fast as the hand-written one
    // and verified against the interpreter (run_search errors otherwise).
    let cfg = small_cfg("Blur");
    let pool = ServePool::start(&PoolConfig { workers: 2, queue_depth: 32, cache_capacity: 64 });
    let outcome = run_search(&cfg, &pool).expect("search succeeds");
    pool.shutdown();
    let default = outcome.default_cycles.expect("hand default completes");
    let best = outcome.best.cycles.expect("best completes");
    assert!(best <= default, "tuned {best} cycles worse than hand {default}");
    assert!(outcome.verified_divergence <= REFERENCE_TOLERANCE);
}
