//! Reporting: JSONL records for `results/tuning.jsonl` and a
//! human-readable leaderboard.
//!
//! One `tune_eval` line per evaluation (candidate, estimate, cycles,
//! energy, cache-hit, wall-ns) plus one `tune_best` summary line per run.
//! Every string field is a canonical rendering from this crate (no user
//! text), so the writer needs no general JSON escaping.

use std::io::Write;
use std::path::Path;

use crate::TuneOutcome;

/// Renders one run as JSONL: every evaluation, then the summary line.
pub fn jsonl_lines(outcome: &TuneOutcome) -> Vec<String> {
    let mut lines = Vec::with_capacity(outcome.evals.len() + 1);
    for e in &outcome.evals {
        lines.push(format!(
            "{{\"kind\":\"tune_eval\",\"workload\":\"{}\",\"width\":{},\"height\":{},\
             \"seed\":{},\"strategy\":\"{}\",\"candidate\":\"{}\",\"est_cycles\":{},\
             \"cycles\":{},\"energy_pj\":{},\"output_hash\":{},\"cache_hit\":{},\
             \"pruned\":{},\"wall_ns\":{},\"error\":{}}}",
            outcome.workload,
            outcome.width,
            outcome.height,
            outcome.seed,
            outcome.strategy,
            e.key,
            e.est_cycles,
            e.cycles.map_or("null".to_string(), |c| c.to_string()),
            e.energy_pj.map_or("null".to_string(), |v| format!("{v:?}")),
            e.output_hash.map_or("null".to_string(), |h| format!("\"{h:016x}\"")),
            e.cache_hit,
            e.pruned,
            e.wall_ns,
            e.error.as_ref().map_or("null".to_string(), |m| {
                format!("\"{}\"", m.replace('\\', "\\\\").replace('"', "\\\""))
            }),
        ));
    }
    lines.push(format!(
        "{{\"kind\":\"tune_best\",\"workload\":\"{}\",\"width\":{},\"height\":{},\
         \"seed\":{},\"strategy\":\"{}\",\"space\":{},\"rejected\":{},\"pruned\":{},\
         \"simulated\":{},\"default_cycles\":{},\"best_candidate\":\"{}\",\
         \"best_cycles\":{},\"speedup\":{:.4},\"divergence\":{:?}}}",
        outcome.workload,
        outcome.width,
        outcome.height,
        outcome.seed,
        outcome.strategy,
        outcome.space_size,
        outcome.rejected,
        outcome.pruned,
        outcome.simulated,
        outcome.default_cycles.map_or("null".to_string(), |c| c.to_string()),
        outcome.best.key,
        outcome.best.cycles.expect("best is always completed"),
        outcome.speedup,
        outcome.verified_divergence,
    ));
    lines
}

/// Appends `lines` to the JSONL file at `path`, creating it (and its
/// parent directory) on first use.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn append_jsonl(path: &Path, lines: &[String]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
    for line in lines {
        writeln!(f, "{line}")?;
    }
    Ok(())
}

/// Renders the top-`n` completed candidates as a fixed-width table, best
/// first, with the hand default called out for comparison.
pub fn leaderboard(outcome: &TuneOutcome, n: usize) -> String {
    let mut done: Vec<_> = outcome.evals.iter().filter(|e| e.cycles.is_some()).collect();
    done.sort_by(|a, b| (a.cycles, &a.key).cmp(&(b.cycles, &b.key)));
    let mut out = String::new();
    out.push_str(&format!(
        "== {} {}x{} · strategy {} · seed {} ==\n",
        outcome.workload, outcome.width, outcome.height, outcome.strategy, outcome.seed
    ));
    out.push_str(&format!(
        "space {} candidate(s) ({} rejected in enumeration), {} pruned, {} simulated\n",
        outcome.space_size, outcome.rejected, outcome.pruned, outcome.simulated
    ));
    out.push_str(&format!(
        "{:>4}  {:>12}  {:>12}  {:>14}  {:>7}  candidate\n",
        "rank", "est_cycles", "cycles", "energy_pj", "vs hand"
    ));
    let default_cycles = outcome.default_cycles;
    for (rank, e) in done.iter().take(n.max(1)).enumerate() {
        let cycles = e.cycles.expect("filtered");
        let vs = match default_cycles {
            Some(d) if cycles > 0 => format!("{:.2}x", d as f64 / cycles as f64),
            _ => "-".to_string(),
        };
        out.push_str(&format!(
            "{:>4}  {:>12}  {:>12}  {:>14.1}  {:>7}  {}\n",
            rank + 1,
            e.est_cycles,
            cycles,
            e.energy_pj.unwrap_or(0.0),
            vs,
            e.key,
        ));
    }
    match (default_cycles, outcome.best.cycles) {
        (Some(d), Some(b)) => out.push_str(&format!(
            "hand default: {d} cycles · best found: {b} cycles · speedup {:.3}x · \
             divergence {:?}\n",
            outcome.speedup, outcome.verified_divergence
        )),
        _ => out.push_str("hand default did not complete\n"),
    }
    out
}
