//! # ipim-tune — deterministic schedule autotuning for the iPIM model
//!
//! Hand-written Table II schedules encode one mapping guess per workload;
//! this crate searches the legal neighbourhood of that guess and reports
//! when the machine model disagrees with the hand choice. The tuner is a
//! *client* of the existing stack, not a new simulator:
//!
//! - [`ScheduleSpace`] enumerates legal knob settings (tile extents over
//!   output divisors, PGSM staging, SIMB vector widths, `compute_root`
//!   policies, optional backend knobs), filtered through the real
//!   compiler so every candidate is known-compilable.
//! - Candidate evaluation fans out across an
//!   [`ServePool`](ipim_serve::ServePool) as ordinary
//!   [`SimRequest`](ipim_serve::SimRequest)s carrying a
//!   [`ScheduleOverride`] — deduplicated tuner-side by canonical key and
//!   pool-side by the content-addressed result cache.
//! - The analytic fast-forward engine (`ipim_core::analytic`) predicts
//!   every candidate's cycles from its compiled program before any
//!   simulation is spent: far-off candidates are pruned outright, and
//!   hill-climb waves simulate only the top-`frontier` neighbours by
//!   predicted rank, with the bit-exact SkipAhead engine verifying that
//!   short-list.
//! - Search strategies ([`Strategy`]) — exhaustive, seeded random
//!   sampling, greedy hill-climb with restarts — all draw randomness from
//!   the in-tree `ipim-simkit` PRNG, so the same seed finds the same best
//!   schedule on every machine.
//! - The winning schedule is re-run and checked against the golden CPU
//!   interpreter (`ipim_core::experiments::output_divergence`) before it
//!   is reported.
//!
//! The `tune` binary wraps [`run_search`] with JSONL reporting
//! (`results/tuning.jsonl`) and a human-readable leaderboard.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::time::Instant;

use ipim_core::{workload_by_name, MachineConfig, Workload, WorkloadScale};
use ipim_serve::{ServePool, SimResponse};

mod report;
mod search;
mod space;

pub use report::{append_jsonl, jsonl_lines, leaderboard};
pub use search::{run_search, Strategy, TuneOutcome};
pub use space::{Candidate, ScheduleEntry, ScheduleSpace};

/// Everything one tuning run needs to know.
#[derive(Debug, Clone)]
pub struct TuneConfig {
    /// Table II workload name.
    pub workload: String,
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
    /// Vaults in the simulated slice.
    pub vaults: usize,
    /// Per-candidate simulation cycle budget.
    pub max_cycles: u64,
    /// PRNG seed — the *only* source of randomness in a run.
    pub seed: u64,
    /// Search strategy.
    pub strategy: Strategy,
    /// Candidates whose analytic prediction exceeds `prune_ratio` × the
    /// space-wide minimum prediction are recorded but never simulated.
    pub prune_ratio: f64,
    /// Hill-climb neighbour short-list: each wave simulates only the
    /// `frontier` best-predicted neighbours (ties broken by candidate
    /// key). `0` disables the short-list and simulates every neighbour,
    /// which is the pre-analytic behaviour.
    pub frontier: usize,
    /// Widen the space with backend knobs (reg_alloc / reorder /
    /// memory_order).
    pub include_backend: bool,
}

impl TuneConfig {
    /// A sensible default run for `workload`: 128×128, one vault,
    /// hill-climb with two restarts.
    pub fn new(workload: &str) -> Self {
        Self {
            workload: workload.to_string(),
            width: 128,
            height: 128,
            vaults: 1,
            max_cycles: 2_000_000_000,
            seed: 0x1915,
            strategy: Strategy::HillClimb { restarts: 2, steps: 8 },
            prune_ratio: 8.0,
            frontier: 4,
            include_backend: false,
        }
    }

    /// The workload at this config's scale.
    ///
    /// # Errors
    ///
    /// Returns a message for unknown workload names.
    pub fn instantiate(&self) -> Result<Workload, String> {
        let scale = WorkloadScale { width: self.width, height: self.height };
        workload_by_name(&self.workload, scale)
            .ok_or_else(|| format!("unknown workload {:?}", self.workload))
    }

    /// The machine shape candidates are evaluated on.
    pub fn machine(&self) -> MachineConfig {
        MachineConfig::vault_slice(self.vaults)
    }
}

/// What evaluating one candidate produced.
#[derive(Debug, Clone)]
pub struct EvalRecord {
    /// The candidate.
    pub candidate: Candidate,
    /// Canonical candidate key (dedup/tie-break identity).
    pub key: String,
    /// Analytic-engine cycle prediction for the candidate's schedule (0
    /// when the model had nothing to say, e.g. for the hand default).
    pub est_cycles: u64,
    /// Simulated cycles to quiescence (`None`: pruned, timed out or
    /// errored).
    pub cycles: Option<u64>,
    /// Simulated total energy in picojoules.
    pub energy_pj: Option<f64>,
    /// FNV-1a hash of the output image (determinism witness).
    pub output_hash: Option<u64>,
    /// The tuner asked for this candidate more than once (later requests
    /// were served from memory instead of re-simulated).
    pub cache_hit: bool,
    /// Skipped by the static-estimate pruner.
    pub pruned: bool,
    /// Wall-clock nanoseconds from submission to response (report-only;
    /// never part of the search decision).
    pub wall_ns: u64,
    /// In-band failure (timeout / compile error), if any.
    pub error: Option<String>,
}

/// The evaluation engine: owns the space, the dedup table and the record
/// log; strategies drive it wave by wave.
pub struct Tuner<'a> {
    cfg: &'a TuneConfig,
    pool: &'a ServePool,
    /// The enumerated legal space.
    pub space: ScheduleSpace,
    workload: Workload,
    prune_floor: u64,
    seen: HashMap<String, usize>,
    /// Every evaluation in submission order.
    pub evals: Vec<EvalRecord>,
}

impl<'a> Tuner<'a> {
    /// Enumerates the space for `cfg` and prepares an empty log.
    ///
    /// # Errors
    ///
    /// Returns a message for unknown workloads or empty legal spaces.
    pub fn new(cfg: &'a TuneConfig, pool: &'a ServePool) -> Result<Self, String> {
        let workload = cfg.instantiate()?;
        let machine = cfg.machine();
        let space = ScheduleSpace::enumerate(&workload, &machine, cfg.include_backend)?;
        let min_est = space.entries.iter().map(|e| e.est_cycles).min().expect("space is non-empty");
        let prune_floor = (min_est as f64 * cfg.prune_ratio.max(1.0)) as u64;
        Ok(Self {
            cfg,
            pool,
            space,
            workload,
            prune_floor,
            seen: HashMap::new(),
            evals: Vec::new(),
        })
    }

    /// The workload being tuned (at the config's scale).
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// Evaluates a wave of candidates concurrently across the pool,
    /// returning each candidate's index into [`Tuner::evals`].
    ///
    /// Candidates already evaluated are not resubmitted — their existing
    /// record is returned (and marked [`EvalRecord::cache_hit`]).
    /// Candidates over the prune floor are recorded as pruned without
    /// simulation. Everything else goes to the pool in one wave, so a
    /// multi-worker pool evaluates the wave in parallel while response
    /// order (and therefore the log) stays deterministic.
    pub fn evaluate(&mut self, candidates: &[Candidate]) -> Vec<usize> {
        // Phase 1: classify, reserving a record slot per fresh candidate.
        let mut indices = Vec::with_capacity(candidates.len());
        let mut to_run: Vec<usize> = Vec::new(); // eval indices needing simulation
        for cand in candidates {
            let key = cand.key();
            if let Some(&i) = self.seen.get(&key) {
                self.evals[i].cache_hit = true;
                indices.push(i);
                continue;
            }
            let est_cycles = self.space.estimate_for(cand).unwrap_or(0);
            let pruned = est_cycles > self.prune_floor;
            let i = self.evals.len();
            self.seen.insert(key.clone(), i);
            self.evals.push(EvalRecord {
                candidate: cand.clone(),
                key,
                est_cycles,
                cycles: None,
                energy_pj: None,
                output_hash: None,
                cache_hit: false,
                pruned,
                wall_ns: 0,
                error: None,
            });
            if !pruned {
                to_run.push(i);
            }
            indices.push(i);
        }
        // Phase 2: submit the whole wave, then collect in order.
        let tickets: Vec<_> = to_run
            .iter()
            .map(|&i| {
                (i, Instant::now(), self.pool.submit(self.evals[i].candidate.request(self.cfg)))
            })
            .collect();
        for (i, submitted, ticket) in tickets {
            let response = ticket.wait();
            self.evals[i].wall_ns = submitted.elapsed().as_nanos() as u64;
            match response {
                SimResponse::Done(d) => {
                    self.evals[i].cycles = Some(d.cycles);
                    self.evals[i].energy_pj = Some(d.energy_pj);
                    self.evals[i].output_hash = Some(d.output_hash);
                }
                SimResponse::Timeout(t) => {
                    self.evals[i].error = Some(format!("timeout: {t:?}"));
                }
                SimResponse::Error(msg) => {
                    self.evals[i].error = Some(msg);
                }
            }
        }
        indices
    }

    /// The best completed evaluation so far: minimum cycles, ties broken
    /// by candidate key — wall-clock never participates, so the winner is
    /// identical on every machine.
    pub fn best(&self) -> Option<&EvalRecord> {
        self.evals
            .iter()
            .filter(|e| e.cycles.is_some())
            .min_by(|a, b| (a.cycles, &a.key).cmp(&(b.cycles, &b.key)))
    }

    /// Re-runs `candidate` through the pool (a result-cache hit when it
    /// was already simulated) and measures its output's divergence from
    /// the golden CPU interpreter.
    ///
    /// # Errors
    ///
    /// Returns a message when the run fails or the override does not
    /// apply.
    pub fn verify(&self, candidate: &Candidate) -> Result<f32, String> {
        let w = if candidate.schedule.is_empty() {
            self.workload.clone()
        } else {
            self.workload.with_override(&candidate.schedule)?
        };
        match self.pool.submit(candidate.request(self.cfg)).wait() {
            SimResponse::Done(d) => Ok(ipim_core::experiments::output_divergence(&w, &d.output)),
            other => Err(format!("verification run failed: {other:?}")),
        }
    }
}
