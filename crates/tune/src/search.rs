//! Search strategies over a [`ScheduleSpace`].
//!
//! All three strategies share the same contract: randomness comes only
//! from the in-tree `ipim-simkit` PRNG seeded by
//! [`TuneConfig::seed`](crate::TuneConfig), evaluation order is
//! deterministic, and the winner is picked by `(cycles, candidate key)` —
//! so one seed reproduces one best schedule, bit for bit, on any machine
//! and any pool width.

use ipim_simkit::Rng;

use crate::space::Candidate;
use crate::{EvalRecord, TuneConfig, Tuner};
use ipim_serve::ServePool;

/// How to walk the space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Simulate every candidate (small spaces only).
    Exhaustive,
    /// Seeded sampling without replacement.
    Random {
        /// Candidates to draw.
        samples: usize,
    },
    /// Greedy hill-climb over 1-knob neighbourhoods, restarting from
    /// seeded random points.
    HillClimb {
        /// Independent climbs: the first starts from the best *estimated*
        /// candidate, later ones from seeded random picks.
        restarts: usize,
        /// Maximum moves per climb.
        steps: usize,
    },
}

impl Strategy {
    /// Canonical report spelling.
    pub fn name(&self) -> String {
        match self {
            Strategy::Exhaustive => "exhaustive".to_string(),
            Strategy::Random { samples } => format!("random:{samples}"),
            Strategy::HillClimb { restarts, steps } => format!("hill:{restarts}x{steps}"),
        }
    }
}

/// A finished tuning run: the full log plus the headline numbers.
#[derive(Debug, Clone)]
pub struct TuneOutcome {
    /// Workload name as requested.
    pub workload: String,
    /// Image width evaluated at.
    pub width: u32,
    /// Image height evaluated at.
    pub height: u32,
    /// The seed that reproduces this run.
    pub seed: u64,
    /// Strategy spelling (see [`Strategy::name`]).
    pub strategy: String,
    /// Total legal candidates (entries × backend combos).
    pub space_size: usize,
    /// Raw combinations the legality filter discarded.
    pub rejected: usize,
    /// Evaluations skipped by the static-estimate pruner.
    pub pruned: usize,
    /// Evaluations actually simulated.
    pub simulated: usize,
    /// Cycles of the hand-written default schedule (`None` if it failed).
    pub default_cycles: Option<u64>,
    /// Energy of the hand-written default schedule.
    pub default_energy_pj: Option<f64>,
    /// The winning evaluation.
    pub best: EvalRecord,
    /// `default_cycles / best cycles` (1.0 when the default was not
    /// beaten or not measured).
    pub speedup: f64,
    /// Winner's output divergence from the golden CPU interpreter.
    pub verified_divergence: f32,
    /// Every evaluation, in submission order.
    pub evals: Vec<EvalRecord>,
}

/// Runs `cfg`'s strategy over `pool` and returns the full outcome.
///
/// The hand-written default schedule is always evaluated first (it is the
/// baseline the leaderboard compares against and the CI gate's floor),
/// and the winner is verified against the golden interpreter before the
/// outcome is assembled.
///
/// # Errors
///
/// Returns a message for unknown workloads, empty legal spaces, a search
/// that produced no completed evaluation, or a winner whose output
/// diverges from the reference beyond the canonical tolerance.
pub fn run_search(cfg: &TuneConfig, pool: &ServePool) -> Result<TuneOutcome, String> {
    let mut tuner = Tuner::new(cfg, pool)?;
    let default_idx = tuner.evaluate(&[Candidate::default_hand()])[0];
    let (default_cycles, default_energy_pj) =
        (tuner.evals[default_idx].cycles, tuner.evals[default_idx].energy_pj);

    let candidates = tuner.space.candidates();
    let mut rng = Rng::new(cfg.seed);
    match cfg.strategy {
        Strategy::Exhaustive => {
            tuner.evaluate(&candidates);
        }
        Strategy::Random { samples } => {
            let mut order: Vec<usize> = (0..candidates.len()).collect();
            rng.shuffle(&mut order);
            let picks: Vec<Candidate> =
                order.into_iter().take(samples.max(1)).map(|i| candidates[i].clone()).collect();
            tuner.evaluate(&picks);
        }
        Strategy::HillClimb { restarts, steps } => {
            for restart in 0..restarts.max(1) {
                let mut current = if restart == 0 {
                    tuner.space.best_estimated()
                } else {
                    candidates[rng.range_usize(0, candidates.len())].clone()
                };
                let mut current_cycles = cycles_of(&mut tuner, &current).unwrap_or(u64::MAX);
                for _ in 0..steps.max(1) {
                    let mut neighbours: Vec<Candidate> =
                        candidates.iter().filter(|c| current.distance(c) == 1).cloned().collect();
                    if neighbours.is_empty() {
                        break;
                    }
                    // Analytic short-list: rank the wave by predicted
                    // cycles (key tie-break keeps the order seedless) and
                    // let the bit-exact engine verify only the top
                    // `frontier`. frontier == 0 simulates every
                    // neighbour.
                    if cfg.frontier > 0 && neighbours.len() > cfg.frontier {
                        neighbours.sort_by_cached_key(|c| {
                            (tuner.space.estimate_for(c).unwrap_or(u64::MAX), c.key())
                        });
                        neighbours.truncate(cfg.frontier);
                    }
                    let idxs = tuner.evaluate(&neighbours);
                    // Deterministic move: best (cycles, key) among
                    // strictly improving neighbours.
                    let step = idxs
                        .into_iter()
                        .filter(|&i| tuner.evals[i].cycles.is_some_and(|c| c < current_cycles))
                        .min_by(|&a, &b| {
                            let ea = &tuner.evals[a];
                            let eb = &tuner.evals[b];
                            (ea.cycles, &ea.key).cmp(&(eb.cycles, &eb.key))
                        });
                    match step {
                        Some(i) => {
                            current = tuner.evals[i].candidate.clone();
                            current_cycles = tuner.evals[i].cycles.expect("filtered Some");
                        }
                        None => break, // local optimum
                    }
                }
            }
        }
    }

    let best = tuner.best().ok_or("search produced no completed evaluation")?.clone();
    let verified_divergence = tuner.verify(&best.candidate)?;
    if verified_divergence > ipim_core::experiments::REFERENCE_TOLERANCE {
        return Err(format!(
            "winner {} diverges from the reference interpreter by {verified_divergence}",
            best.key
        ));
    }
    let best_cycles = best.cycles.expect("best() only returns completed evals");
    let speedup = match default_cycles {
        Some(d) if best_cycles > 0 => d as f64 / best_cycles as f64,
        _ => 1.0,
    };
    Ok(TuneOutcome {
        workload: cfg.workload.clone(),
        width: cfg.width,
        height: cfg.height,
        seed: cfg.seed,
        strategy: cfg.strategy.name(),
        space_size: tuner.space.len(),
        rejected: tuner.space.rejected,
        pruned: tuner.evals.iter().filter(|e| e.pruned).count(),
        simulated: tuner.evals.iter().filter(|e| e.cycles.is_some() || e.error.is_some()).count(),
        default_cycles,
        default_energy_pj,
        best,
        speedup,
        verified_divergence,
        evals: tuner.evals,
    })
}

/// Evaluates one candidate and returns its cycles (memoized by the
/// tuner's dedup table).
fn cycles_of(tuner: &mut Tuner<'_>, candidate: &Candidate) -> Option<u64> {
    let i = tuner.evaluate(std::slice::from_ref(candidate))[0];
    tuner.evals[i].cycles
}
