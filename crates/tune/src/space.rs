//! The legal search space: which knob settings are worth simulating.
//!
//! A [`ScheduleSpace`] is built per workload × machine shape by
//! *constructive enumeration*: candidate tile extents come from the
//! divisors of the output image (tile widths additionally multiples of 4,
//! the SIMB lane count), crossed with the PGSM staging choice, the
//! vector width and the [`ComputeRootPolicy`]. Every raw combination is
//! then pushed through the real legality boundary — the override is
//! applied, the pipeline re-validated, **compiled**, and statically
//! cost-estimated — so a space never hands the tuner a candidate that
//! the compiler would reject. Overrides that collapse to the same
//! effective schedule (e.g. `root=keep` vs `root=all` on a pipeline whose
//! funcs are already all roots) are deduplicated by the rescheduled
//! pipeline's canonical summary, keeping the space free of candidates
//! that could only waste simulation budget.
//!
//! Backend knobs (register allocation, Algorithm 1 reordering, memory
//! ordering) ride along as a small cross product when the tuner asks for
//! them; they never affect mapping legality, so they multiply the space
//! *after* the compile filter. The unsafe combination — reordering
//! without memory-order edges — is excluded by construction.

use ipim_core::{ComputeRootPolicy, MachineConfig, RegAllocPolicy, ScheduleOverride, Workload};
use ipim_serve::SimRequest;

use crate::TuneConfig;

/// Reject overrides whose inlined expression size bound exceeds this —
/// compiling (let alone simulating) them would dwarf any cycle win.
const MAX_INLINED_NODES: u64 = 50_000;

/// Cycle budget for enumeration-time analytic predictions: a candidate
/// whose *predicted* run exceeds this is rejected the same way a
/// simulation timeout would reject it.
const ESTIMATE_MAX_CYCLES: u64 = 4_000_000_000;

/// One legal schedule override, annotated with what enumeration learned
/// about it.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleEntry {
    /// The override itself.
    pub ov: ScheduleOverride,
    /// Canonical per-func summary of the *rescheduled* pipeline — the
    /// dedup key (two overrides with the same summary compile to the same
    /// program).
    pub summary: String,
    /// Predicted cycles from the analytic fast-forward engine
    /// (`ipim_core::analytic`), walked over the candidate's compiled
    /// program. Approximate (measured ≤15% at Table II 128²) but
    /// rank-faithful — used for pruning and neighbour ordering, never
    /// reported as a result.
    pub est_cycles: u64,
}

/// One point of the full search space: a schedule plus backend knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// The schedule override (empty = the hand-written schedule).
    pub schedule: ScheduleOverride,
    /// Register-allocation policy.
    pub reg_alloc: RegAllocPolicy,
    /// Run Algorithm 1 instruction reordering.
    pub reorder: bool,
    /// Add memory-order-enforcement edges before reordering.
    pub memory_order: bool,
}

impl Candidate {
    /// The hand-written default: no override, fully optimized backend.
    pub fn default_hand() -> Self {
        Self {
            schedule: ScheduleOverride::default(),
            reg_alloc: RegAllocPolicy::Max,
            reorder: true,
            memory_order: true,
        }
    }

    /// Canonical identity string — the tuner's dedup key and the
    /// deterministic tie-breaker when two candidates simulate to the same
    /// cycle count.
    pub fn key(&self) -> String {
        format!(
            "{};reg={};reorder={};memory_order={}",
            self.schedule,
            match self.reg_alloc {
                RegAllocPolicy::Min => "min",
                RegAllocPolicy::Max => "max",
            },
            self.reorder,
            self.memory_order,
        )
    }

    /// The serving-layer request that evaluates this candidate under
    /// `cfg`'s workload, scale and budget.
    pub fn request(&self, cfg: &TuneConfig) -> SimRequest {
        SimRequest {
            workload: cfg.workload.clone(),
            width: cfg.width,
            height: cfg.height,
            vaults: cfg.vaults,
            reg_alloc: self.reg_alloc,
            reorder: self.reorder,
            memory_order: self.memory_order,
            max_cycles: cfg.max_cycles,
            schedule: self.schedule,
            ..SimRequest::default()
        }
    }

    /// How many knobs differ from `other` (tile, pgsm, vectorize, root,
    /// backend-combo) — hill-climb neighbours are at distance 1.
    pub fn distance(&self, other: &Candidate) -> usize {
        usize::from(self.schedule.tile != other.schedule.tile)
            + usize::from(self.schedule.load_pgsm != other.schedule.load_pgsm)
            + usize::from(self.schedule.vectorize != other.schedule.vectorize)
            + usize::from(self.schedule.compute_root != other.schedule.compute_root)
            + usize::from(
                (self.reg_alloc, self.reorder, self.memory_order)
                    != (other.reg_alloc, other.reorder, other.memory_order),
            )
    }
}

/// The compile-filtered search space for one workload × machine shape.
#[derive(Debug, Clone)]
pub struct ScheduleSpace {
    /// Legal, deduplicated schedule overrides in enumeration order.
    pub entries: Vec<ScheduleEntry>,
    /// Backend knob combinations `(reg_alloc, reorder, memory_order)`.
    pub backends: Vec<(RegAllocPolicy, bool, bool)>,
    /// Raw combinations discarded by the legality filter (validation,
    /// compile or estimate failure).
    pub rejected: usize,
}

impl ScheduleSpace {
    /// Enumerates the legal space for `workload` on `machine`.
    ///
    /// `include_backend` widens the space with the backend knob cross
    /// product; otherwise only the fully optimized backend is searched.
    ///
    /// # Errors
    ///
    /// Returns a message when no raw combination survives the legality
    /// filter (the workload then has no tunable mapping on this machine).
    pub fn enumerate(
        workload: &Workload,
        machine: &MachineConfig,
        include_backend: bool,
    ) -> Result<Self, String> {
        let (out_w, out_h) = workload.output_extent();
        let session = ipim_core::Session::new(machine.clone());
        let mut entries: Vec<ScheduleEntry> = Vec::new();
        let mut rejected = 0usize;
        for tw in divisors(out_w).into_iter().filter(|tw| tw.is_multiple_of(4)) {
            for th in divisors(out_h) {
                for load_pgsm in [false, true] {
                    for vectorize in [1u32, 2, 4] {
                        for compute_root in [
                            ComputeRootPolicy::Keep,
                            ComputeRootPolicy::All,
                            ComputeRootPolicy::OutputOnly,
                        ] {
                            let ov = ScheduleOverride {
                                tile: Some((tw, th)),
                                load_pgsm: Some(load_pgsm),
                                vectorize: Some(vectorize),
                                compute_root,
                            };
                            let Ok(w) = workload.with_override(&ov) else {
                                rejected += 1;
                                continue;
                            };
                            // Compile-time guard: inlining a deep producer
                            // chain (root=output_only on e.g. StencilChain)
                            // grows expressions exponentially; bound the
                            // size arithmetically before building anything.
                            if w.pipeline.inlined_size_bound() > MAX_INLINED_NODES {
                                rejected += 1;
                                continue;
                            }
                            let summary = w.pipeline.schedule_summary();
                            if entries.iter().any(|e| e.summary == summary) {
                                continue; // same effective schedule, not a rejection
                            }
                            // Compile through the process-wide program
                            // cache: enumeration is the cold pass, so the
                            // pool workers that later simulate surviving
                            // candidates find every program already built.
                            let Ok(compiled) = session.compile(&w.pipeline) else {
                                rejected += 1;
                                continue;
                            };
                            // Rank by the analytic fast-forward model on
                            // the very program the workers would simulate
                            // (replaces the static `ipim_compiler::estimate`
                            // heuristic, whose ranking was measurably noisy
                            // — see DESIGN.md §11).
                            let Ok(report) = ipim_core::analytic::predict(
                                &compiled.program,
                                machine,
                                ESTIMATE_MAX_CYCLES,
                            ) else {
                                rejected += 1;
                                continue;
                            };
                            entries.push(ScheduleEntry { ov, summary, est_cycles: report.cycles });
                        }
                    }
                }
            }
        }
        if entries.is_empty() {
            return Err(format!(
                "{}: no legal schedule for {out_w}x{out_h} on this machine \
                 ({rejected} combination(s) rejected)",
                workload.name
            ));
        }
        let backends = if include_backend {
            // Reordering without memory-order edges is unsound, so the
            // backend space toggles them together.
            vec![
                (RegAllocPolicy::Max, true, true),
                (RegAllocPolicy::Min, true, true),
                (RegAllocPolicy::Max, false, false),
                (RegAllocPolicy::Min, false, false),
            ]
        } else {
            vec![(RegAllocPolicy::Max, true, true)]
        };
        Ok(Self { entries, backends, rejected })
    }

    /// The full candidate list: entries × backends, in deterministic
    /// enumeration order.
    pub fn candidates(&self) -> Vec<Candidate> {
        let mut out = Vec::with_capacity(self.entries.len() * self.backends.len());
        for entry in &self.entries {
            for &(reg_alloc, reorder, memory_order) in &self.backends {
                out.push(Candidate { schedule: entry.ov, reg_alloc, reorder, memory_order });
            }
        }
        out
    }

    /// Total candidate count (entries × backend combos).
    pub fn len(&self) -> usize {
        self.entries.len() * self.backends.len()
    }

    /// Whether the space is empty (never true for a value `enumerate`
    /// returned).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The static estimate for `candidate`'s schedule, if its override is
    /// one of this space's entries (backend knobs don't move the
    /// estimate).
    pub fn estimate_for(&self, candidate: &Candidate) -> Option<u64> {
        self.entries.iter().find(|e| e.ov == candidate.schedule).map(|e| e.est_cycles)
    }

    /// The candidate with the smallest static estimate (ties broken by
    /// enumeration order) under the default backend — the greedy seed for
    /// hill-climbing.
    pub fn best_estimated(&self) -> Candidate {
        let entry = self
            .entries
            .iter()
            .min_by_key(|e| e.est_cycles)
            .expect("enumerate never returns an empty space");
        let &(reg_alloc, reorder, memory_order) = &self.backends[0];
        Candidate { schedule: entry.ov, reg_alloc, reorder, memory_order }
    }
}

/// The divisors of `n` in increasing order.
fn divisors(n: u32) -> Vec<u32> {
    (1..=n).filter(|d| n.is_multiple_of(*d)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipim_core::{workload_by_name, WorkloadScale};

    fn space_for(name: &str) -> ScheduleSpace {
        let w = workload_by_name(name, WorkloadScale { width: 64, height: 64 }).unwrap();
        ScheduleSpace::enumerate(&w, &MachineConfig::vault_slice(1), false).unwrap()
    }

    #[test]
    fn enumeration_is_deterministic_and_nonempty() {
        let a = space_for("Blur");
        let b = space_for("Blur");
        assert!(!a.is_empty());
        assert_eq!(a.entries, b.entries);
        assert_eq!(a.rejected, b.rejected);
    }

    #[test]
    fn entries_have_unique_summaries_and_legal_tiles() {
        let s = space_for("Blur");
        let mut seen = std::collections::HashSet::new();
        for e in &s.entries {
            assert!(seen.insert(e.summary.clone()), "duplicate summary {}", e.summary);
            let (tw, _th) = e.ov.tile.unwrap();
            assert_eq!(tw % 4, 0, "tile width {tw} not a lane multiple");
            assert!(e.est_cycles > 0);
        }
    }

    #[test]
    fn backend_cross_product_multiplies_candidates() {
        let w = workload_by_name("Blur", WorkloadScale { width: 64, height: 64 }).unwrap();
        let narrow = ScheduleSpace::enumerate(&w, &MachineConfig::vault_slice(1), false).unwrap();
        let wide = ScheduleSpace::enumerate(&w, &MachineConfig::vault_slice(1), true).unwrap();
        assert_eq!(narrow.entries, wide.entries);
        assert_eq!(wide.len(), narrow.len() * 4);
        // The unsound combination is absent.
        assert!(!wide.backends.iter().any(|&(_, reorder, mo)| reorder && !mo));
    }

    #[test]
    fn distance_counts_knob_differences() {
        let a = Candidate::default_hand();
        let mut b = a.clone();
        assert_eq!(a.distance(&b), 0);
        b.schedule.tile = Some((8, 8));
        assert_eq!(a.distance(&b), 1);
        b.reg_alloc = RegAllocPolicy::Min;
        assert_eq!(a.distance(&b), 2);
    }
}
