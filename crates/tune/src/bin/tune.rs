//! `tune` — search for schedules that beat the hand-written Table II
//! mappings, using the serving pool for parallel candidate evaluation.
//!
//! ```text
//! tune --workloads Blur,StencilChain --seed 7 --strategy hill \
//!      --out results/tuning.jsonl
//! ```
//!
//! Per workload the run prints a leaderboard to stdout and appends one
//! `tune_eval` JSONL line per evaluation plus a `tune_best` summary to
//! `--out` (skipped with `--no-append`). `--gate-default` exits non-zero
//! if any workload's best schedule is *worse* than the hand default —
//! the CI smoke gate.
//!
//! Flags: `--workloads A,B` (default Blur) · `--width/--height` (128) ·
//! `--vaults N` (1) · `--seed N` (0x1915) · `--strategy
//! exhaustive|random|hill` (hill) · `--samples N` (random, 24) ·
//! `--restarts N`/`--steps N` (hill, 2/8) · `--workers N` (pool, 2) ·
//! `--max-cycles N` · `--prune-ratio X` (8.0) · `--frontier N` (4; 0 =
//! simulate every hill-climb neighbour) · `--include-backend` ·
//! `--top N` (10) · `--out PATH` (results/tuning.jsonl) · `--no-append` ·
//! `--gate-default`.

use std::path::PathBuf;
use std::process::ExitCode;

use ipim_serve::{PoolConfig, ServePool};
use ipim_tune::{append_jsonl, jsonl_lines, leaderboard, run_search, Strategy, TuneConfig};

fn main() -> ExitCode {
    let mut workloads = vec!["Blur".to_string()];
    let mut base = TuneConfig::new("Blur");
    let mut strategy_name = "hill".to_string();
    let mut samples = 24usize;
    let mut restarts = 2usize;
    let mut steps = 8usize;
    let mut workers = 2usize;
    let mut top = 10usize;
    let mut out_path = PathBuf::from("results/tuning.jsonl");
    let mut no_append = false;
    let mut gate_default = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |flag: &str| args.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match a.as_str() {
            "--workloads" => {
                workloads = val("--workloads").split(',').map(str::to_string).collect();
            }
            "--width" => base.width = parse(&val("--width"), "--width"),
            "--height" => base.height = parse(&val("--height"), "--height"),
            "--vaults" => base.vaults = parse(&val("--vaults"), "--vaults"),
            "--seed" => base.seed = parse(&val("--seed"), "--seed"),
            "--max-cycles" => base.max_cycles = parse(&val("--max-cycles"), "--max-cycles"),
            "--strategy" => strategy_name = val("--strategy"),
            "--samples" => samples = parse(&val("--samples"), "--samples"),
            "--restarts" => restarts = parse(&val("--restarts"), "--restarts"),
            "--steps" => steps = parse(&val("--steps"), "--steps"),
            "--workers" => workers = parse(&val("--workers"), "--workers"),
            "--prune-ratio" => {
                base.prune_ratio = val("--prune-ratio")
                    .parse()
                    .unwrap_or_else(|_| panic!("--prune-ratio needs a number"));
            }
            "--frontier" => base.frontier = parse(&val("--frontier"), "--frontier"),
            "--include-backend" => base.include_backend = true,
            "--top" => top = parse(&val("--top"), "--top"),
            "--out" => out_path = PathBuf::from(val("--out")),
            "--no-append" => no_append = true,
            "--gate-default" => gate_default = true,
            other => panic!(
                "unknown argument {other:?} (supported: --workloads A,B --width N --height N \
                 --vaults N --seed N --max-cycles N --strategy exhaustive|random|hill \
                 --samples N --restarts N --steps N --workers N --prune-ratio X \
                 --frontier N --include-backend --top N --out PATH --no-append \
                 --gate-default)"
            ),
        }
    }
    base.strategy = match strategy_name.as_str() {
        "exhaustive" => Strategy::Exhaustive,
        "random" => Strategy::Random { samples },
        "hill" => Strategy::HillClimb { restarts, steps },
        other => panic!("unknown strategy {other:?} (exhaustive | random | hill)"),
    };

    // One pool serves every workload's candidate fleet; the cache makes
    // revisited candidates (hill restarts, the verification re-run) free.
    let pool = ServePool::start(&PoolConfig { workers, queue_depth: 256, cache_capacity: 1024 });
    let mut gate_failed = false;
    for name in &workloads {
        let cfg = TuneConfig { workload: name.clone(), ..base.clone() };
        let outcome = match run_search(&cfg, &pool) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("tune: {name}: {e}");
                gate_failed = true;
                continue;
            }
        };
        print!("{}", leaderboard(&outcome, top));
        if !no_append {
            if let Err(e) = append_jsonl(&out_path, &jsonl_lines(&outcome)) {
                eprintln!("tune: cannot write {}: {e}", out_path.display());
                return ExitCode::FAILURE;
            }
            println!("appended {} line(s) to {}", outcome.evals.len() + 1, out_path.display());
        }
        if gate_default {
            match (outcome.default_cycles, outcome.best.cycles) {
                (Some(d), Some(b)) if b <= d => {
                    println!("gate: {name} best {b} <= default {d} cycles — ok");
                }
                (d, b) => {
                    eprintln!("gate: {name} FAILED (default {d:?}, best {b:?})");
                    gate_failed = true;
                }
            }
        }
        println!();
    }
    let metrics = pool.shutdown();
    eprintln!(
        "tune: pool completed {} job(s), {} cache hit(s)",
        metrics.counter("serve/pool/completed"),
        metrics.counter("serve/cache/hits")
    );
    if gate_failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn parse<T: std::str::FromStr>(text: &str, flag: &str) -> T {
    text.parse().unwrap_or_else(|_| panic!("{flag} needs an unsigned integer, got {text:?}"))
}
