//! A real-TCP test backend: a `ServePool` behind a listener, one
//! `serve_stream` thread per accepted connection, and a `kill()` that
//! models a backend crash (existing connections reset, new connects
//! refused).
//!
//! Each test binary compiles its own copy of this module and uses a
//! different subset of it (only `failover.rs` kills backends, only the
//! cache tests read `pool`), so the unused-item lints are per-binary
//! noise here.
#![allow(dead_code)]

use std::io::BufReader;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use ipim_serve::server::serve_stream;
use ipim_serve::{PoolConfig, ServePool};

pub struct TestBackend {
    pub addr: String,
    pub pool: Arc<ServePool>,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    accept: Option<JoinHandle<()>>,
}

pub fn spawn_backend(workers: usize, cache_capacity: usize) -> TestBackend {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind test backend");
    let addr = listener.local_addr().unwrap().to_string();
    let pool = Arc::new(ServePool::start(&PoolConfig { workers, queue_depth: 64, cache_capacity }));
    let stop = Arc::new(AtomicBool::new(false));
    let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
    let accept = {
        let (pool, stop, conns) = (pool.clone(), stop.clone(), conns.clone());
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop.load(Ordering::Acquire) {
                    break; // drops the listener: connects now refused
                }
                let Ok(stream) = stream else { break };
                conns.lock().unwrap().push(stream.try_clone().unwrap());
                let pool = pool.clone();
                std::thread::spawn(move || {
                    let reader = BufReader::new(stream.try_clone().unwrap());
                    let _ = serve_stream(reader, &stream, &*pool);
                });
            }
        })
    };
    TestBackend { addr, pool, stop, conns, accept: Some(accept) }
}

impl TestBackend {
    /// Crash the backend: stop accepting (new connects are refused once
    /// the listener drops) and reset every live connection so clients see
    /// EOF immediately. The pool itself is leaked — a crashed process
    /// doesn't get to clean up either.
    pub fn kill(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Wake the accept loop so it observes `stop` and drops the
        // listener.
        let _ = TcpStream::connect(&self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for c in self.conns.lock().unwrap().drain(..) {
            let _ = c.shutdown(Shutdown::Both);
        }
    }
}
