//! Backend failure mid-wave: every job still completes — rerouted via
//! retry onto the survivors — and the answers stay bit-identical to a
//! serial run. Simulation determinism is what makes this assertable: a
//! job that ran twice (once lost with its backend, once on a survivor)
//! produces the same bits either way.

mod common;

use common::spawn_backend;
use ipim_serve::{PoolConfig, ServePool, SimRequest};
use ipim_shard::{HashRing, RetryPolicy, ShardConfig, ShardRouter};

#[test]
fn backend_killed_mid_wave_loses_no_jobs() {
    let mut backends: Vec<_> = (0..3).map(|_| spawn_backend(1, 64)).collect();
    let addrs: Vec<String> = backends.iter().map(|b| b.addr.clone()).collect();
    let config = ShardConfig {
        retry: RetryPolicy { max_attempts: 6, backoff_ms: 5, jitter_ms: 2 },
        probe_ms: 20,
        queue_depth: 64,
        ..ShardConfig::over(addrs)
    };
    let ring = HashRing::new(3, config.replicas);
    let router = ShardRouter::start(&config);

    // A wave of distinct jobs; `victim` is whichever backend owns the
    // most of them, so killing it is guaranteed to strand routed work.
    let jobs: Vec<SimRequest> = ["Brighten", "Blur", "Shift", "Histogram"]
        .into_iter()
        .flat_map(|w| {
            [(64, 32), (96, 64), (128, 64), (64, 96)].map(|(x, y)| SimRequest::named(w, x, y))
        })
        .collect();
    let mut owned = [0usize; 3];
    for j in &jobs {
        owned[ring.owner(j.fingerprint())] += 1;
    }
    let victim = (0..3).max_by_key(|&b| owned[b]).unwrap();
    assert!(owned[victim] > 0, "victim must own part of the wave: {owned:?}");

    // Submit the first half, crash the victim mid-wave, submit the rest.
    let half = jobs.len() / 2;
    let mut tickets: Vec<_> = jobs[..half].iter().map(|j| router.submit(j.clone())).collect();
    backends[victim].kill();
    tickets.extend(jobs[half..].iter().map(|j| router.submit(j.clone())));

    let sharded: Vec<String> = tickets.into_iter().map(|t| t.wait()).collect();
    let metrics = router.shutdown();

    for (i, line) in sharded.iter().enumerate() {
        assert!(
            line.contains("\"status\":\"done\""),
            "job {i} did not survive the backend crash: {line}"
        );
    }
    assert_eq!(metrics.counter("shard/completed"), jobs.len() as u64);
    assert_eq!(metrics.counter("shard/errors"), 0, "no job may exhaust its retry budget");
    assert!(metrics.counter("shard/ejections") >= 1, "the crashed backend must have been ejected");
    assert_eq!(metrics.counter("shard/fingerprint_mismatches"), 0);

    // Bit-identity with a serial run survives the failover.
    let serial_pool =
        ServePool::start(&PoolConfig { workers: 1, queue_depth: 64, cache_capacity: 64 });
    let serial: Vec<String> =
        jobs.iter().map(|r| serial_pool.submit(r.clone()).wait().to_json_string()).collect();
    serial_pool.shutdown();
    assert_eq!(sharded, serial, "failover must not change a single answered bit");
}
