//! Malformed-wire robustness, property-tested with the `simkit` harness:
//! garbage and truncated ndjson must be answered **in-band** — one error
//! line per input line — the backend must never die, and the shard front
//! must never dispatch (or retry) a line that failed to parse: parse
//! failures are not idempotent work, they are answers.

mod common;

use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpStream};

use common::spawn_backend;
use ipim_serve::server::serve_batch;
use ipim_serve::SimRequest;
use ipim_shard::{ShardConfig, ShardRouter};
use ipim_simkit::prop::{check_with, Config, Gen};

/// Printable-ASCII garbage: newline-free so one payload stays one line,
/// whitespace-free so the protocol's blank-line skip doesn't apply.
fn gen_garbage() -> Gen<String> {
    Gen::from_fn(|rng| {
        let len = 1 + (rng.next_u64() % 40) as usize;
        (0..len).map(|_| char::from(33 + (rng.next_u64() % 94) as u8)).collect()
    })
}

/// A strict prefix of a valid request line — a truncated write.
fn gen_truncated() -> Gen<String> {
    Gen::from_fn(|rng| {
        let full =
            SimRequest::named(["Brighten", "Blur", "Shift"][(rng.next_u64() % 3) as usize], 32, 32)
                .to_json_string();
        let cut = 1 + (rng.next_u64() as usize % (full.len() - 1));
        full[..cut].to_string()
    })
}

/// Sends `line` plus one valid request over a fresh connection; returns
/// both response lines. The second response proves the backend survived
/// whatever the first line was.
fn round_trip_pair(addr: &str, line: &str) -> (String, String) {
    let stream = TcpStream::connect(addr).expect("backend reachable");
    let mut write_half = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    write_half.write_all(line.as_bytes()).unwrap();
    write_half.write_all(b"\n{\"workload\":\"Brighten\",\"width\":64,\"height\":64}\n").unwrap();
    write_half.shutdown(Shutdown::Write).unwrap();
    let mut first = String::new();
    reader.read_line(&mut first).unwrap();
    let mut second = String::new();
    reader.read_line(&mut second).unwrap();
    (first, second)
}

#[test]
fn prop_backend_answers_garbage_inband_and_survives() {
    let backend = spawn_backend(1, 16);
    let cfg = Config { cases: 12, ..Config::default() };
    check_with(cfg, "backend_answers_garbage_inband", &gen_garbage(), |payload| {
        let (first, second) = round_trip_pair(&backend.addr, payload);
        if SimRequest::from_json_str(payload).is_err() {
            assert!(first.contains("\"status\":\"error\""), "payload {payload:?} → {first}");
        }
        assert!(second.contains("\"status\":\"done\""), "backend died after {payload:?}: {second}");
    });
}

#[test]
fn prop_backend_answers_truncated_requests_inband() {
    let backend = spawn_backend(1, 16);
    let cfg = Config { cases: 12, ..Config::default() };
    check_with(cfg, "backend_answers_truncated_inband", &gen_truncated(), |payload| {
        let (first, second) = round_trip_pair(&backend.addr, payload);
        assert!(
            SimRequest::from_json_str(payload).is_err(),
            "a strict prefix must not parse: {payload:?}"
        );
        assert!(first.contains("\"status\":\"error\""), "payload {payload:?} → {first}");
        assert!(second.contains("\"status\":\"done\""), "backend died after {payload:?}: {second}");
    });
}

#[test]
fn prop_shard_front_answers_garbage_without_dispatching() {
    let backend = spawn_backend(1, 16);
    let router = ShardRouter::start(&ShardConfig::over(vec![backend.addr.clone()]));
    let cfg = Config { cases: 12, ..Config::default() };
    check_with(cfg, "shard_front_never_dispatches_garbage", &gen_garbage(), |payload| {
        if SimRequest::from_json_str(payload).is_ok() {
            return; // astronomically unlikely, but then it's a real request
        }
        let before = router.metrics().counter("shard/submitted");
        let input = format!("{payload}\n");
        let mut out = Vec::new();
        serve_batch(input.as_bytes(), &mut out, &router).unwrap();
        let reply = String::from_utf8(out).unwrap();
        assert!(reply.contains("\"status\":\"error\""), "{payload:?} → {reply}");
        assert_eq!(
            router.metrics().counter("shard/submitted"),
            before,
            "a parse failure must be answered at the front, never dispatched"
        );
    });
    router.shutdown();
}

#[test]
fn inband_backend_errors_are_final_never_retried() {
    let backend = spawn_backend(1, 16);
    let router = ShardRouter::start(&ShardConfig::over(vec![backend.addr.clone()]));
    // An unknown workload parses fine but fails on the backend — the
    // in-band error line is the answer, not grounds for a retry.
    let line = router.submit(SimRequest::named("NoSuchKernel", 16, 16)).wait();
    assert!(line.contains("\"status\":\"error\""), "{line}");
    let metrics = router.shutdown();
    assert_eq!(metrics.counter("shard/backend_errors"), 1);
    assert_eq!(metrics.counter("shard/retries"), 0, "arrived lines are final");
    assert_eq!(
        backend.pool.metrics().counter("serve/pool/errors"),
        1,
        "the backend served the failing job exactly once"
    );
}
