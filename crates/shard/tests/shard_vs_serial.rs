//! The shard tier's determinism bar: a sharded run over N real-TCP
//! backends answers **bit-identically** to the same job list run serially
//! on one local pool — same wire lines, hence same output hashes, report
//! hashes and cache fingerprints. This is what makes the distributed tier
//! semantically invisible: only throughput changes.

mod common;

use common::spawn_backend;
use ipim_serve::{PoolConfig, ServePool, SimRequest};
use ipim_shard::{HashRing, ShardConfig, ShardRouter};

/// A mixed, deterministic job list: several workloads and sizes,
/// duplicates (cache-hit path), a multi-cube job (inter-cube tiling over
/// SERDES) and an unknown workload (in-band error path).
fn job_list() -> Vec<SimRequest> {
    let mut jobs = vec![
        SimRequest::named("Brighten", 64, 32),
        SimRequest::named("Blur", 96, 64),
        SimRequest::named("Shift", 64, 64),
        SimRequest::named("Histogram", 64, 64),
        SimRequest::named("Brighten", 64, 64),
        SimRequest::named("Blur", 64, 96),
        SimRequest { cubes: 2, ..SimRequest::named("Brighten", 128, 128) },
        SimRequest::named("NoSuchKernel", 16, 16),
    ];
    // Duplicates: consistent hashing sends a repeat to the same backend,
    // whose result cache answers it bit-identically.
    jobs.push(jobs[0].clone());
    jobs.push(jobs[3].clone());
    jobs.push(jobs[6].clone());
    jobs
}

#[test]
fn sharded_run_is_bit_identical_to_serial() {
    let backends: Vec<_> = (0..3).map(|_| spawn_backend(1, 32)).collect();
    let addrs: Vec<String> = backends.iter().map(|b| b.addr.clone()).collect();
    let router = ShardRouter::start(&ShardConfig::over(addrs));

    let jobs = job_list();
    let sharded = router.run_all(jobs.clone());
    let metrics = router.shutdown();

    // Serial reference: one pool, one worker, same jobs, same order.
    let serial_pool =
        ServePool::start(&PoolConfig { workers: 1, queue_depth: 64, cache_capacity: 32 });
    let serial: Vec<String> =
        jobs.iter().map(|r| serial_pool.submit(r.clone()).wait().to_json_string()).collect();
    serial_pool.shutdown();

    assert_eq!(sharded.len(), serial.len());
    for (i, (s, r)) in sharded.iter().zip(&serial).enumerate() {
        assert_eq!(s, r, "job {i} ({}) diverged between sharded and serial", jobs[i].workload);
    }

    // Every response arrived exactly once and every backend derived the
    // same cache key we routed on.
    assert_eq!(metrics.counter("shard/submitted"), jobs.len() as u64);
    assert_eq!(
        metrics.counter("shard/completed") + metrics.counter("shard/backend_errors"),
        jobs.len() as u64
    );
    assert_eq!(metrics.counter("shard/fingerprint_mismatches"), 0);
    assert_eq!(metrics.counter("shard/errors"), 0, "no job may be lost to front errors");
}

#[test]
fn duplicates_route_to_the_same_backend_and_hit_its_cache() {
    let backends: Vec<_> = (0..3).map(|_| spawn_backend(1, 32)).collect();
    let addrs: Vec<String> = backends.iter().map(|b| b.addr.clone()).collect();
    let config = ShardConfig::over(addrs);
    let ring = HashRing::new(3, config.replicas);
    let router = ShardRouter::start(&config);

    let req = SimRequest::named("Brighten", 64, 64);
    let owner = ring.owner(req.fingerprint());
    let first = router.submit(req.clone()).wait();
    let second = router.submit(req.clone()).wait();
    assert_eq!(first, second, "a cache hit must be bit-identical to the cold run");
    let metrics = router.shutdown();
    assert_eq!(
        metrics.counter(&format!("shard/backend{owner}/answered")),
        2,
        "both submissions must land on the ring owner"
    );
    assert_eq!(backends[owner].pool.metrics().counter("serve/cache/hits"), 1);
}
