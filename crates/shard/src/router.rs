//! The shard front: admission, routing, retry, probing, drain.
//!
//! A [`ShardRouter`] owns one [`Backend`](crate::backend::Backend) per
//! configured address, each with its own bounded queue and link thread.
//! [`submit`](ShardRouter::submit) routes by the request's content
//! fingerprint over the [`HashRing`] and blocks when the owning backend's
//! queue is full — backpressure reaches the caller, exactly as with a
//! local [`ServePool`](ipim_serve::ServePool).
//!
//! Retry lives in one place: a failed attempt (connect refused, connection
//! died pre-response) *bounces* through an unbounded channel to the retry
//! thread, which sleeps the backoff (base·2^attempts plus seeded jitter —
//! `simkit` PRNG, no wall-clock randomness) and re-dispatches. Only
//! `submit` callers and the retry thread ever push into the bounded
//! backend queues; link and reader threads only bounce — so two full
//! backends can never deadlock each other by mutually re-routing.

use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ipim_serve::{LineService, PendingLine, SimRequest, SimResponse, TimeoutKind};
use ipim_simkit::Rng;
use ipim_trace::{json, MetricsRegistry};

use crate::backend::{link_loop, Backend};
use crate::ring::HashRing;

/// When and how hard to retry a failed attempt.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts per job (first try included, min 1).
    pub max_attempts: usize,
    /// Base backoff before re-dispatch; doubles per failed attempt
    /// (capped at 1s).
    pub backoff_ms: u64,
    /// Uniform jitter added to every backoff, drawn from the router's
    /// seeded PRNG (0 disables).
    pub jitter_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self { max_attempts: 4, backoff_ms: 10, jitter_ms: 5 }
    }
}

/// Shard front configuration.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Backend addresses (`host:port` of `ipim_served --stream --tcp`).
    pub backends: Vec<String>,
    /// Virtual nodes per backend on the hash ring.
    pub replicas: usize,
    /// Response lines outstanding per connection before the link blocks.
    pub window: usize,
    /// Routed-but-unwritten jobs per backend before `submit` blocks.
    pub queue_depth: usize,
    /// Retry/backoff policy for failed attempts.
    pub retry: RetryPolicy,
    /// Health-probe cadence for ejected backends.
    pub probe_ms: u64,
    /// Seed for backoff jitter and probe-cadence jitter.
    pub seed: u64,
}

impl ShardConfig {
    /// The default policy over a given backend list.
    pub fn over(backends: Vec<String>) -> Self {
        Self {
            backends,
            replicas: 32,
            window: 4,
            queue_depth: 16,
            retry: RetryPolicy::default(),
            probe_ms: 50,
            seed: 0x5AAD_0007,
        }
    }
}

/// One admitted job on its way through the shard.
pub(crate) struct ShardJob {
    pub req: SimRequest,
    /// Cached [`SimRequest::fingerprint`] — the routing key.
    pub fingerprint: u64,
    /// Admission time, for front-door deadline shedding.
    pub admitted: Instant,
    /// Failed attempts so far.
    pub attempts: usize,
    /// Backends that already failed this job (ring skips them while
    /// alternatives exist).
    pub tried: Vec<usize>,
    /// Where the final response line goes.
    pub reply: mpsc::Sender<String>,
}

/// Monotone shard counters (exported under `shard/...`).
#[derive(Default)]
pub(crate) struct Counters {
    pub submitted: AtomicU64,
    pub completed: AtomicU64,
    pub shed: AtomicU64,
    pub errors: AtomicU64,
    pub backend_errors: AtomicU64,
    pub timeouts: AtomicU64,
    pub retries: AtomicU64,
    pub ejections: AtomicU64,
    pub readmissions: AtomicU64,
    pub probes: AtomicU64,
    pub unsolicited: AtomicU64,
    pub fingerprint_mismatches: AtomicU64,
}

/// State shared by the front, link, reader, retry and probe threads.
pub(crate) struct Shared {
    pub config: ShardConfig,
    pub ring: HashRing,
    pub backends: Vec<Backend>,
    pub counters: Counters,
    /// `Some` while the retry thread is accepting bounces.
    retry_tx: Mutex<Option<mpsc::Sender<ShardJob>>>,
    /// Jobs admitted but not yet answered; `drained` fires at zero.
    outstanding: Mutex<u64>,
    drained: Condvar,
    /// Refuse new submissions (set first at shutdown).
    pub closing: AtomicBool,
    /// Teardown underway: probes stop, connection deaths stop ejecting.
    pub stopping: AtomicBool,
    /// Seeded jitter source — determinism per seed, no wall-clock entropy.
    rng: Mutex<Rng>,
}

impl Shared {
    fn jitter(&self, bound_ms: u64) -> u64 {
        if bound_ms == 0 {
            0
        } else {
            self.rng.lock().expect("rng poisoned").range_u64(bound_ms + 1)
        }
    }

    fn backoff(&self, attempts: usize) -> Duration {
        let exp = attempts.saturating_sub(1).min(6) as u32;
        let base = self.config.retry.backoff_ms.saturating_mul(1u64 << exp).min(1_000);
        Duration::from_millis(base + self.jitter(self.config.retry.jitter_ms))
    }

    /// Whether the job's deadline has already passed.
    pub(crate) fn shed_if_expired(&self, job: &ShardJob) -> bool {
        job.req.deadline_ms.is_some_and(|d| job.admitted.elapsed().as_millis() as u64 > d)
    }

    /// Answers a shed job with the same wire line a backend would use.
    pub(crate) fn finish_shed(&self, job: ShardJob) {
        self.counters.shed.fetch_add(1, Ordering::Relaxed);
        self.finish(job, SimResponse::Timeout(TimeoutKind::DeadlineBeforeStart).to_json_string());
    }

    fn finish_error(&self, job: ShardJob, msg: &str) {
        self.counters.errors.fetch_add(1, Ordering::Relaxed);
        self.finish(job, SimResponse::Error(msg.to_string()).to_json_string());
    }

    /// Delivers the final line for a job. Every admitted job reaches this
    /// exactly once; it is the only place `outstanding` decrements.
    fn finish(&self, job: ShardJob, line: String) {
        // A caller that dropped its ticket just doesn't hear the answer.
        let _ = job.reply.send(line);
        let mut g = self.outstanding.lock().expect("outstanding poisoned");
        *g -= 1;
        if *g == 0 {
            self.drained.notify_all();
        }
    }

    /// A response line arrived for `job` on backend `idx` — classify it
    /// for the counters, cross-check the echoed fingerprint, forward the
    /// line verbatim. Arrived lines are **final**: an in-band error is the
    /// backend's answer, never grounds for a retry.
    pub(crate) fn answer(&self, idx: usize, job: ShardJob, line: String) {
        self.backends[idx].answered.fetch_add(1, Ordering::Relaxed);
        match json::parse(&line).ok().and_then(|v| {
            v.get("status").and_then(|s| s.as_str().map(String::from)).map(|s| (s, v))
        }) {
            Some((status, v)) if status == "done" => {
                self.counters.completed.fetch_add(1, Ordering::Relaxed);
                let echoed = v
                    .get("fingerprint")
                    .and_then(|f| f.as_str().map(String::from))
                    .and_then(|hex| u64::from_str_radix(&hex, 16).ok());
                if echoed != Some(job.fingerprint) {
                    // The backend derived a different cache key from the
                    // wire bytes than we routed on — a protocol bug worth
                    // counting loudly (tests assert this stays 0).
                    self.counters.fingerprint_mismatches.fetch_add(1, Ordering::Relaxed);
                }
            }
            Some((status, _)) if status == "timeout" => {
                self.counters.timeouts.fetch_add(1, Ordering::Relaxed);
            }
            _ => {
                self.counters.backend_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.finish(job, line);
    }

    /// Marks backend `idx` ineligible for routing (idempotent; counts
    /// only the edge).
    pub(crate) fn eject(&self, idx: usize) {
        if self.backends[idx].healthy.swap(false, Ordering::AcqRel) {
            self.counters.ejections.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// An attempt on backend `from` failed before a response arrived:
    /// charge the attempt and either give up (in-band error) or hand the
    /// job to the retry thread. Never blocks — safe from link and reader
    /// threads.
    pub(crate) fn bounce(&self, from: usize, mut job: ShardJob) {
        if !job.tried.contains(&from) {
            job.tried.push(from);
        }
        job.attempts += 1;
        let budget = self.config.retry.max_attempts.max(1);
        if job.attempts >= budget {
            let addr = &self.backends[from].addr;
            let msg =
                format!("shard: gave up after {budget} attempt(s); last backend {addr} failed");
            self.finish_error(job, &msg);
            return;
        }
        self.counters.retries.fetch_add(1, Ordering::Relaxed);
        self.requeue(job);
    }

    fn requeue(&self, job: ShardJob) {
        let sent = match &*self.retry_tx.lock().expect("retry_tx poisoned") {
            Some(tx) => tx.send(job).map_err(|e| e.0),
            None => Err(job),
        };
        if let Err(job) = sent {
            self.finish_error(job, "shard is shutting down");
        }
    }

    /// Routes one admitted job. May block on the owning backend's bounded
    /// queue (backpressure) — called only from `submit` callers and the
    /// retry thread, never from link or reader threads.
    fn dispatch(&self, job: ShardJob) {
        if self.shed_if_expired(&job) {
            self.finish_shed(job);
            return;
        }
        let healthy: Vec<bool> =
            self.backends.iter().map(|b| b.healthy.load(Ordering::Acquire)).collect();
        match self.ring.route(job.fingerprint, &healthy, &job.tried) {
            Some(idx) => {
                self.backends[idx].dispatched.fetch_add(1, Ordering::Relaxed);
                if let Err(job) = self.backends[idx].queue.push(job) {
                    self.finish_error(job, "shard is shutting down");
                }
            }
            None => {
                // Nothing healthy right now. Spend an attempt waiting out
                // a backoff — a probe may readmit someone — or give up.
                let mut job = job;
                job.attempts += 1;
                if job.attempts >= self.config.retry.max_attempts.max(1) {
                    self.finish_error(job, "shard: no healthy backend");
                } else {
                    self.counters.retries.fetch_add(1, Ordering::Relaxed);
                    self.requeue(job);
                }
            }
        }
    }

    fn export_metrics(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::default();
        let c = &self.counters;
        for (name, v) in [
            ("shard/submitted", &c.submitted),
            ("shard/completed", &c.completed),
            ("shard/shed", &c.shed),
            ("shard/errors", &c.errors),
            ("shard/backend_errors", &c.backend_errors),
            ("shard/timeouts", &c.timeouts),
            ("shard/retries", &c.retries),
            ("shard/ejections", &c.ejections),
            ("shard/readmissions", &c.readmissions),
            ("shard/probes", &c.probes),
            ("shard/unsolicited", &c.unsolicited),
            ("shard/fingerprint_mismatches", &c.fingerprint_mismatches),
        ] {
            reg.counter_add(name, v.load(Ordering::Relaxed));
        }
        reg.gauge_set("shard/backends", self.backends.len() as f64);
        for (i, b) in self.backends.iter().enumerate() {
            reg.counter_add(
                &format!("shard/backend{i}/dispatched"),
                b.dispatched.load(Ordering::Relaxed),
            );
            reg.counter_add(
                &format!("shard/backend{i}/answered"),
                b.answered.load(Ordering::Relaxed),
            );
        }
        reg
    }
}

/// A handle to one submitted job's eventual response line.
pub struct ShardTicket {
    rx: mpsc::Receiver<String>,
}

impl ShardTicket {
    /// Blocks until the response line arrives. The shard always answers —
    /// shed, gave-up and shutdown cases all produce in-band lines — so a
    /// disconnected channel can only mean the router was torn down.
    pub fn wait(self) -> String {
        self.rx.recv().unwrap_or_else(|_| {
            SimResponse::Error("shard shut down before reply".into()).to_json_string()
        })
    }
}

impl PendingLine for ShardTicket {
    fn into_line(self) -> String {
        self.wait()
    }
}

/// The distributed front tier: consistent-hash routing of [`SimRequest`]s
/// over N TCP backends, with bounded in-flight windows, deterministic
/// retry-with-backoff, health probing and graceful drain.
pub struct ShardRouter {
    shared: Arc<Shared>,
    links: Vec<JoinHandle<()>>,
    retry: Option<JoinHandle<()>>,
    probe: Option<JoinHandle<()>>,
}

impl ShardRouter {
    /// Starts the router: one link thread per backend (connections are
    /// opened lazily, on first routed job), the retry thread and the
    /// probe thread.
    ///
    /// # Panics
    ///
    /// Panics if `config.backends` is empty.
    pub fn start(config: &ShardConfig) -> Self {
        assert!(!config.backends.is_empty(), "shard needs at least one backend");
        let ring = HashRing::new(config.backends.len(), config.replicas);
        let backends: Vec<Backend> = config
            .backends
            .iter()
            .map(|addr| Backend::new(addr.clone(), config.queue_depth))
            .collect();
        let (retry_tx, retry_rx) = mpsc::channel::<ShardJob>();
        let shared = Arc::new(Shared {
            config: config.clone(),
            ring,
            backends,
            counters: Counters::default(),
            retry_tx: Mutex::new(Some(retry_tx)),
            outstanding: Mutex::new(0),
            drained: Condvar::new(),
            closing: AtomicBool::new(false),
            stopping: AtomicBool::new(false),
            rng: Mutex::new(Rng::new(config.seed)),
        });
        let links = (0..shared.backends.len())
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("ipim-shard-link-{i}"))
                    .spawn(move || link_loop(&shared, i))
                    .expect("spawn link")
            })
            .collect();
        let retry = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("ipim-shard-retry".into())
                .spawn(move || retry_loop(&shared, &retry_rx))
                .expect("spawn retry")
        };
        let probe = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("ipim-shard-probe".into())
                .spawn(move || probe_loop(&shared))
                .expect("spawn probe")
        };
        Self { shared, links, retry: Some(retry), probe: Some(probe) }
    }

    /// Submits one request, blocking while the owning backend's queue is
    /// full. The ticket resolves to the backend's response line verbatim
    /// (or an in-band shard line: shed, gave-up, shutting down).
    pub fn submit(&self, req: SimRequest) -> ShardTicket {
        let (tx, rx) = mpsc::channel();
        if self.shared.closing.load(Ordering::Acquire) {
            let _ = tx.send(SimResponse::Error("shard is shutting down".into()).to_json_string());
            return ShardTicket { rx };
        }
        self.shared.counters.submitted.fetch_add(1, Ordering::Relaxed);
        *self.shared.outstanding.lock().expect("outstanding poisoned") += 1;
        let job = ShardJob {
            fingerprint: req.fingerprint(),
            req,
            admitted: Instant::now(),
            attempts: 0,
            tried: Vec::new(),
            reply: tx,
        };
        self.shared.dispatch(job);
        ShardTicket { rx }
    }

    /// Submits a batch and waits for all response lines, in request order.
    pub fn run_all(&self, requests: impl IntoIterator<Item = SimRequest>) -> Vec<String> {
        let tickets: Vec<ShardTicket> = requests.into_iter().map(|r| self.submit(r)).collect();
        tickets.into_iter().map(ShardTicket::wait).collect()
    }

    /// Backends this router shards over.
    pub fn backends(&self) -> usize {
        self.shared.backends.len()
    }

    /// Snapshot of the shard counters under `shard/...`.
    pub fn metrics(&self) -> MetricsRegistry {
        self.shared.export_metrics()
    }

    /// Graceful drain: refuse new submissions, wait for every admitted
    /// job to be answered (completing, retrying or giving up as policy
    /// dictates), then tear down all threads. Returns the final metrics.
    pub fn shutdown(self) -> MetricsRegistry {
        self.shared.closing.store(true, Ordering::Release);
        {
            let mut g = self.shared.outstanding.lock().expect("outstanding poisoned");
            while *g > 0 {
                g = self.shared.drained.wait(g).expect("outstanding poisoned");
            }
        }
        // Everything is answered; now stop the machinery.
        self.shared.stopping.store(true, Ordering::Release);
        *self.shared.retry_tx.lock().expect("retry_tx poisoned") = None;
        for b in &self.shared.backends {
            b.queue.close();
        }
        for h in self.links {
            h.join().expect("link thread panicked");
        }
        if let Some(h) = self.retry {
            h.join().expect("retry thread panicked");
        }
        if let Some(h) = self.probe {
            h.join().expect("probe thread panicked");
        }
        self.shared.export_metrics()
    }
}

impl LineService for ShardRouter {
    type Pending = ShardTicket;

    fn dispatch(&self, req: SimRequest) -> ShardTicket {
        self.submit(req)
    }
}

/// The retry thread: sleeps each bounced job's backoff, then re-dispatches
/// it (possibly blocking on the target queue — this thread may block, link
/// and reader threads never do).
fn retry_loop(shared: &Arc<Shared>, rx: &mpsc::Receiver<ShardJob>) {
    while let Ok(job) = rx.recv() {
        std::thread::sleep(shared.backoff(job.attempts));
        shared.dispatch(job);
    }
}

/// The probe thread: periodically try a TCP connect to each ejected
/// backend; success readmits it to the ring.
fn probe_loop(shared: &Arc<Shared>) {
    while !shared.stopping.load(Ordering::Acquire) {
        sleep_checking(
            Duration::from_millis(
                shared.config.probe_ms.max(1) + shared.jitter(shared.config.retry.jitter_ms),
            ),
            &shared.stopping,
        );
        if shared.stopping.load(Ordering::Acquire) {
            return;
        }
        for b in &shared.backends {
            if b.healthy.load(Ordering::Acquire) {
                continue;
            }
            shared.counters.probes.fetch_add(1, Ordering::Relaxed);
            if TcpStream::connect(&b.addr).is_ok() && !b.healthy.swap(true, Ordering::AcqRel) {
                shared.counters.readmissions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Sleeps `total` in small chunks so shutdown is never stuck behind a
/// long probe pause.
fn sleep_checking(total: Duration, stop: &AtomicBool) {
    let mut left = total;
    while !left.is_zero() && !stop.load(Ordering::Acquire) {
        let chunk = left.min(Duration::from_millis(25));
        std::thread::sleep(chunk);
        left -= chunk;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A port nobody listens on: bind-then-drop reserves a fresh one.
    fn dead_addr() -> String {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    }

    fn fast_config(backends: Vec<String>) -> ShardConfig {
        ShardConfig {
            retry: RetryPolicy { max_attempts: 3, backoff_ms: 2, jitter_ms: 1 },
            probe_ms: 10,
            ..ShardConfig::over(backends)
        }
    }

    #[test]
    fn unreachable_backends_exhaust_retries_into_inband_errors() {
        let router = ShardRouter::start(&fast_config(vec![dead_addr(), dead_addr()]));
        let lines = router
            .run_all([SimRequest::named("Brighten", 16, 16), SimRequest::named("Shift", 16, 16)]);
        for line in &lines {
            assert!(line.contains("\"status\":\"error\""), "{line}");
        }
        let m = router.shutdown();
        assert_eq!(m.counter("shard/submitted"), 2);
        assert_eq!(m.counter("shard/errors"), 2);
        assert_eq!(m.counter("shard/completed"), 0);
        assert!(m.counter("shard/ejections") >= 1, "dead backends must be ejected");
        assert!(m.counter("shard/retries") >= 1, "attempts must be retried before giving up");
    }

    #[test]
    fn expired_deadline_is_shed_not_errored() {
        // The only backend refuses connections, but the job's deadline
        // (0 ms) expires before its retry budget does: the front must
        // answer the deadline timeout, not a gave-up error.
        let router = ShardRouter::start(&fast_config(vec![dead_addr()]));
        let mut req = SimRequest::named("Brighten", 16, 16);
        req.deadline_ms = Some(0);
        let line = router.submit(req).wait();
        assert!(line.contains("\"status\":\"timeout\""), "{line}");
        assert!(line.contains("deadline"), "{line}");
        let m = router.shutdown();
        assert_eq!(m.counter("shard/shed"), 1);
        assert_eq!(m.counter("shard/errors"), 0);
    }

    #[test]
    fn submit_after_shutdown_is_refused_inband() {
        let router = ShardRouter::start(&fast_config(vec![dead_addr()]));
        router.shared.closing.store(true, Ordering::Release);
        let line = router.submit(SimRequest::named("Brighten", 16, 16)).wait();
        assert!(line.contains("shutting down"), "{line}");
        let m = router.shutdown();
        assert_eq!(m.counter("shard/submitted"), 0);
    }

    #[test]
    fn idle_shutdown_joins_cleanly() {
        let router = ShardRouter::start(&fast_config(vec![dead_addr(), dead_addr(), dead_addr()]));
        let m = router.shutdown();
        assert_eq!(m.counter("shard/submitted"), 0);
        assert!(m.get("shard/backends").is_some());
    }
}
