//! `ipim_shard` — the distributed serving front-end.
//!
//! Speaks the same ndjson protocol as `ipim_served` (one `SimRequest`
//! JSON object per input line, one response line per request, in order)
//! but routes every request over a fleet of `ipim_served --stream --tcp`
//! backends by consistent-hashing its content fingerprint. Clients cannot
//! tell the difference: the shard forwards backend response lines
//! verbatim, answers protocol problems in-band, and blocks for
//! backpressure exactly like the local pool.
//!
//! ```text
//! ipim_served --stream --tcp 127.0.0.1:7101 &
//! ipim_served --stream --tcp 127.0.0.1:7102 &
//! printf '{"workload":"Blur"}\n{"workload":"Shift"}\n' |
//!     ipim_shard --backend 127.0.0.1:7101 --backend 127.0.0.1:7102
//! ```
//!
//! Flags: `--backend ADDR` (repeatable, required) · `--replicas N` hash
//! ring virtual nodes per backend (default 32) · `--window N` in-flight
//! responses per backend connection (default 4) · `--queue-depth N` per
//! backend (default 16) · `--retries N` total attempts per job (default
//! 4) · `--backoff-ms N` base retry backoff (default 10) · `--jitter-ms
//! N` seeded backoff jitter bound (default 5) · `--probe-ms N` ejected
//! backend probe cadence (default 50) · `--seed N` jitter PRNG seed ·
//! `--tcp ADDR` serve clients over TCP instead of stdin/stdout ·
//! `--stream` per-response-flush pacing.

use std::io::{stdin, stdout, BufReader, BufWriter};
use std::net::TcpListener;

use ipim_serve::server::{serve_batch, serve_stream, serve_tcp};
use ipim_shard::{ShardConfig, ShardRouter};

fn main() {
    let mut backends: Vec<String> = Vec::new();
    let mut config = ShardConfig::over(Vec::new());
    let mut tcp_addr: Option<String> = None;
    let mut streaming = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |flag: &str| args.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match a.as_str() {
            "--backend" => backends.push(val("--backend")),
            "--replicas" => config.replicas = parse(&val("--replicas"), "--replicas"),
            "--window" => config.window = parse(&val("--window"), "--window"),
            "--queue-depth" => config.queue_depth = parse(&val("--queue-depth"), "--queue-depth"),
            "--retries" => config.retry.max_attempts = parse(&val("--retries"), "--retries"),
            "--backoff-ms" => {
                config.retry.backoff_ms = parse_u64(&val("--backoff-ms"), "--backoff-ms")
            }
            "--jitter-ms" => config.retry.jitter_ms = parse_u64(&val("--jitter-ms"), "--jitter-ms"),
            "--probe-ms" => config.probe_ms = parse_u64(&val("--probe-ms"), "--probe-ms"),
            "--seed" => config.seed = parse_u64(&val("--seed"), "--seed"),
            "--tcp" => tcp_addr = Some(val("--tcp")),
            "--stream" => streaming = true,
            other => panic!(
                "unknown argument {other:?} (supported: --backend ADDR [--backend ADDR ...] \
                 --replicas N --window N --queue-depth N --retries N --backoff-ms N \
                 --jitter-ms N --probe-ms N --seed N --tcp ADDR --stream)"
            ),
        }
    }
    if backends.is_empty() {
        eprintln!("ipim_shard: at least one --backend ADDR is required");
        std::process::exit(2);
    }
    config.backends = backends;

    let router = ShardRouter::start(&config);
    match tcp_addr {
        Some(addr) => {
            let listener = TcpListener::bind(&addr)
                .unwrap_or_else(|e| panic!("ipim_shard: cannot bind {addr}: {e}"));
            eprintln!(
                "ipim_shard: listening on {addr}, sharding over {} backend(s){}",
                router.backends(),
                if streaming { ", streaming" } else { "" }
            );
            serve_tcp(&listener, &router, streaming).unwrap_or_else(|e| panic!("ipim_shard: {e}"));
        }
        None => {
            let summary = if streaming {
                serve_stream(BufReader::new(stdin()), stdout().lock(), &router)
            } else {
                serve_batch(stdin().lock(), BufWriter::new(stdout().lock()), &router)
            }
            .unwrap_or_else(|e| panic!("ipim_shard: {e}"));
            let metrics = router.shutdown();
            eprintln!(
                "ipim_shard: {} request(s), {} parse error(s), {} completed, {} retried, \
                 {} ejection(s)",
                summary.requests,
                summary.parse_errors,
                metrics.counter("shard/completed"),
                metrics.counter("shard/retries"),
                metrics.counter("shard/ejections"),
            );
        }
    }
}

fn parse(text: &str, flag: &str) -> usize {
    text.parse().unwrap_or_else(|_| panic!("{flag} needs an unsigned integer, got {text:?}"))
}

fn parse_u64(text: &str, flag: &str) -> u64 {
    text.parse().unwrap_or_else(|_| panic!("{flag} needs an unsigned integer, got {text:?}"))
}
