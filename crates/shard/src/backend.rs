//! One TCP backend: a bounded queue, a link thread, and a reader thread.
//!
//! The link thread owns the backend's connection lifecycle: it pops jobs
//! from the backend's [`JobQueue`], (re)connects lazily, reserves a slot in
//! the bounded in-flight window (backpressure toward the router), and
//! writes the request line. A reader thread per connection forwards each
//! response line — verbatim — to the job that is next in FIFO order (the
//! ndjson protocol guarantees response *n* pairs with request *n* on one
//! connection).
//!
//! Failure handling is strictly *at-most-once per attempt*: a job is
//! retried only when its connection died **before its response line
//! arrived** — the in-flight queue is drained back to the router under the
//! same mutex that guards arrival, so a response and a retry can never
//! race. A line that did arrive is final, even if it is an in-band error:
//! backends answer protocol problems in-band precisely so the front can
//! tell "the backend rejected this job" (don't retry) from "the backend
//! vanished" (do).

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use ipim_serve::JobQueue;

use crate::router::{ShardJob, Shared};

/// Per-backend state shared between the router front and the link thread.
pub(crate) struct Backend {
    /// `host:port` of the `ipim_served --stream` process.
    pub addr: String,
    /// Jobs routed here but not yet written to the connection.
    pub queue: JobQueue<ShardJob>,
    /// Routing eligibility: cleared on connect failure or connection
    /// death (ejection), restored by a successful probe or reconnect
    /// (readmission).
    pub healthy: AtomicBool,
    /// Jobs the ring routed here (including ones later bounced away).
    pub dispatched: AtomicU64,
    /// Response lines this backend answered.
    pub answered: AtomicU64,
}

impl Backend {
    pub(crate) fn new(addr: String, queue_depth: usize) -> Self {
        Self {
            addr,
            queue: JobQueue::bounded(queue_depth),
            healthy: AtomicBool::new(true),
            dispatched: AtomicU64::new(0),
            answered: AtomicU64::new(0),
        }
    }
}

struct InflightState {
    q: VecDeque<ShardJob>,
    dead: bool,
}

/// The bounded in-flight window of one connection. The mutex is the
/// at-most-once hinge: `push_slot` (writer side) and the reader's
/// pop/drain all hold it, so a job is either answered by its line or
/// drained for retry — never both.
struct Inflight {
    state: Mutex<InflightState>,
    space: Condvar,
}

impl Inflight {
    fn new() -> Self {
        Self {
            state: Mutex::new(InflightState { q: VecDeque::new(), dead: false }),
            space: Condvar::new(),
        }
    }

    /// Reserves a window slot, blocking while `window` jobs are already
    /// in flight. Returns the job back if the connection died while (or
    /// before) waiting — the `Err` *is* the job, ownership returning to
    /// the caller for a retry, so its size is the point.
    #[allow(clippy::result_large_err)]
    fn push_slot(&self, window: usize, job: ShardJob) -> Result<(), ShardJob> {
        let mut s = self.state.lock().expect("inflight poisoned");
        while s.q.len() >= window && !s.dead {
            s = self.space.wait(s).expect("inflight poisoned");
        }
        if s.dead {
            return Err(job);
        }
        s.q.push_back(job);
        Ok(())
    }
}

/// One live connection: the write half, its in-flight window, and the
/// reader thread draining the read half.
struct Conn {
    stream: TcpStream,
    inflight: Arc<Inflight>,
    window: usize,
    reader: Option<JoinHandle<()>>,
}

impl Conn {
    fn open(shared: &Arc<Shared>, idx: usize) -> std::io::Result<Conn> {
        let stream = TcpStream::connect(&shared.backends[idx].addr)?;
        let inflight = Arc::new(Inflight::new());
        let read_half = stream.try_clone()?;
        let reader = {
            let shared = shared.clone();
            let inflight = inflight.clone();
            std::thread::Builder::new()
                .name(format!("ipim-shard-read-{idx}"))
                .spawn(move || reader_loop(&shared, idx, read_half, &inflight))
                .expect("spawn reader")
        };
        Ok(Conn { stream, inflight, window: shared.config.window.max(1), reader: Some(reader) })
    }

    fn dead(&self) -> bool {
        self.inflight.state.lock().expect("inflight poisoned").dead
    }

    /// Reserves a window slot and writes the request line. A write error
    /// is not reported here: the job already holds its slot, so we force
    /// the connection down and let the reader's drain path bounce it
    /// (one code path for every lost-connection case).
    #[allow(clippy::result_large_err)]
    fn send(&mut self, job: ShardJob) -> Result<(), ShardJob> {
        let mut wire = job.req.to_json_string().into_bytes();
        wire.push(b'\n');
        self.inflight.push_slot(self.window, job)?;
        if self.stream.write_all(&wire).is_err() {
            let _ = self.stream.shutdown(Shutdown::Both);
        }
        Ok(())
    }

    /// Tears the connection down and joins the reader (which drains any
    /// in-flight jobs back to the router first).
    fn close(mut self) {
        let _ = self.stream.shutdown(Shutdown::Both);
        if let Some(h) = self.reader.take() {
            let _ = h.join();
        }
    }
}

/// The link thread: pops routed jobs, keeps a connection up, pushes jobs
/// into its window. Ends when the backend queue is closed and drained.
pub(crate) fn link_loop(shared: &Arc<Shared>, idx: usize) {
    let backend = &shared.backends[idx];
    let mut conn: Option<Conn> = None;
    while let Some(job) = backend.queue.pop() {
        if shared.shed_if_expired(&job) {
            shared.finish_shed(job);
            continue;
        }
        if conn.as_ref().is_none_or(Conn::dead) {
            if let Some(c) = conn.take() {
                c.close();
            }
            match Conn::open(shared, idx) {
                Ok(c) => {
                    conn = Some(c);
                    if !backend.healthy.swap(true, Ordering::AcqRel) {
                        shared.counters.readmissions.fetch_add(1, Ordering::Relaxed);
                    }
                }
                Err(_) => {
                    shared.eject(idx);
                    shared.bounce(idx, job);
                    continue;
                }
            }
        }
        if let Err(job) = conn.as_mut().expect("connection just ensured").send(job) {
            // The window reported the connection dead before the job got
            // a slot; the reader has already drained everyone else.
            shared.eject(idx);
            shared.bounce(idx, job);
        }
    }
    if let Some(c) = conn.take() {
        c.close();
    }
}

/// The reader thread of one connection: forwards response lines to jobs
/// in FIFO order; on connection death, drains the window back to the
/// router for retry.
fn reader_loop(shared: &Arc<Shared>, idx: usize, stream: TcpStream, inflight: &Inflight) {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    continue;
                }
                let job = {
                    let mut s = inflight.state.lock().expect("inflight poisoned");
                    s.q.pop_front()
                };
                inflight.space.notify_all();
                match job {
                    Some(job) => shared.answer(idx, job, trimmed.to_string()),
                    // An unsolicited line (nothing in flight) is a protocol
                    // violation by the backend; nothing to pair it with.
                    None => {
                        shared.counters.unsolicited.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
    }
    // Connection over. Mark it dead and pull back every unanswered job
    // under the same lock the arrival path uses: each job is answered
    // exactly once — by its line above or by the bounce below, never both.
    let drained: Vec<ShardJob> = {
        let mut s = inflight.state.lock().expect("inflight poisoned");
        s.dead = true;
        s.q.drain(..).collect()
    };
    inflight.space.notify_all();
    if !shared.stopping.load(Ordering::Acquire) {
        shared.eject(idx);
    }
    for job in drained {
        shared.bounce(idx, job);
    }
}
