//! Consistent-hash ring over backend indices.
//!
//! Each backend contributes `replicas` points at
//! `fnv1a("shard:{backend}:{replica}")`; a request's
//! [`fingerprint`](ipim_serve::SimRequest::fingerprint) routes to the first
//! point clockwise from its own position. Two properties fall out of this
//! construction and are what the shard tier leans on:
//!
//! * **Determinism** — the ring is a pure function of (backend count,
//!   replicas), so every shard front with the same config routes every
//!   fingerprint identically. Combined with deterministic simulation this
//!   makes a sharded run reproducible run-to-run.
//! * **Minimal disruption** — ejecting a backend only moves the keys that
//!   backend owned; everyone else's cache locality survives the failure.

use ipim_serve::fnv1a;

/// A consistent-hash ring mapping `u64` fingerprints to backend indices.
pub struct HashRing {
    /// `(point, backend)` pairs sorted by point.
    points: Vec<(u64, usize)>,
    backends: usize,
}

impl HashRing {
    /// Builds the ring for `backends` backends with `replicas` virtual
    /// nodes each (minimum 1 of each).
    pub fn new(backends: usize, replicas: usize) -> Self {
        let backends = backends.max(1);
        let replicas = replicas.max(1);
        let mut points: Vec<(u64, usize)> = (0..backends)
            .flat_map(|b| {
                (0..replicas).map(move |r| (fnv1a(format!("shard:{b}:{r}").as_bytes()), b))
            })
            .collect();
        points.sort_unstable();
        Self { points, backends }
    }

    /// Backends on the ring.
    pub fn backends(&self) -> usize {
        self.backends
    }

    /// The backend owning `fingerprint` when every backend is healthy.
    pub fn owner(&self, fingerprint: u64) -> usize {
        self.walk(fingerprint).next().expect("ring is never empty")
    }

    /// Ring order from the fingerprint's position: every backend exactly
    /// once, starting at the owner.
    fn walk(&self, fingerprint: u64) -> impl Iterator<Item = usize> + '_ {
        let start = self.points.partition_point(|&(p, _)| p < fingerprint);
        let n = self.points.len();
        let mut seen = vec![false; self.backends];
        (0..n).filter_map(move |i| {
            let (_, b) = self.points[(start + i) % n];
            if seen[b] {
                None
            } else {
                seen[b] = true;
                Some(b)
            }
        })
    }

    /// Routes `fingerprint`: the first healthy backend in ring order that
    /// the job has not `tried` yet. When every healthy backend was already
    /// tried, the first healthy one again (a backend may have recovered
    /// since the job last saw it fail). `None` only when nothing is
    /// healthy.
    pub fn route(&self, fingerprint: u64, healthy: &[bool], tried: &[usize]) -> Option<usize> {
        debug_assert_eq!(healthy.len(), self.backends);
        let mut fallback = None;
        for b in self.walk(fingerprint) {
            if !healthy[b] {
                continue;
            }
            if !tried.contains(&b) {
                return Some(b);
            }
            if fallback.is_none() {
                fallback = Some(b);
            }
        }
        fallback
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipim_simkit::prop::{check, u64_any, Gen};

    #[test]
    fn owner_is_deterministic_across_ring_builds() {
        let a = HashRing::new(4, 32);
        let b = HashRing::new(4, 32);
        check("same_config_routes_identically", &u64_any(), |&fp| {
            assert_eq!(a.owner(fp), b.owner(fp));
        });
    }

    #[test]
    fn replicas_spread_load_across_backends() {
        let ring = HashRing::new(4, 32);
        let mut counts = [0usize; 4];
        // A deterministic sweep of well-spread fingerprints.
        for i in 0..4096u64 {
            counts[ring.owner(i.wrapping_mul(0x9e37_79b9_7f4a_7c15))] += 1;
        }
        for (b, &c) in counts.iter().enumerate() {
            assert!(
                c > 4096 / 16,
                "backend {b} owns only {c}/4096 keys — ring badly unbalanced: {counts:?}"
            );
        }
    }

    #[test]
    fn ejection_moves_only_the_ejected_backends_keys() {
        let ring = HashRing::new(3, 32);
        let all = [true, true, true];
        let down1 = [true, false, true];
        check("healthy_keys_keep_their_owner", &u64_any(), |&fp| {
            let owner = ring.route(fp, &all, &[]).unwrap();
            let rerouted = ring.route(fp, &down1, &[]).unwrap();
            if owner == 1 {
                assert_ne!(rerouted, 1, "ejected backend must not receive keys");
            } else {
                assert_eq!(rerouted, owner, "healthy backends keep their keys");
            }
        });
    }

    #[test]
    fn route_skips_tried_backends_then_falls_back() {
        let ring = HashRing::new(3, 16);
        let healthy = [true, true, true];
        check("tried_backends_are_avoided_then_revisited", &u64_any(), |&fp| {
            let first = ring.route(fp, &healthy, &[]).unwrap();
            let second = ring.route(fp, &healthy, &[first]).unwrap();
            let third = ring.route(fp, &healthy, &[first, second]).unwrap();
            let exhausted = ring.route(fp, &healthy, &[first, second, third]).unwrap();
            let mut distinct = [first, second, third];
            distinct.sort_unstable();
            assert_eq!(distinct, [0, 1, 2], "all three backends visited once each");
            assert_eq!(exhausted, first, "exhausted tried-list falls back, never refuses");
        });
    }

    #[test]
    fn route_is_none_only_when_nothing_is_healthy() {
        let ring = HashRing::new(4, 8);
        let gen =
            Gen::from_fn(|rng| (0..4).map(|_| rng.next_u64() % 2 == 0).collect::<Vec<bool>>());
        check("route_finds_any_healthy_backend", &gen, |healthy| {
            let routed = ring.route(7, healthy, &[]);
            assert_eq!(routed.is_some(), healthy.iter().any(|&h| h));
            if let Some(b) = routed {
                assert!(healthy[b], "routed backend must be healthy");
            }
        });
    }
}
