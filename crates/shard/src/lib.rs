//! # ipim-shard — the distributed serve tier for the iPIM reproduction
//!
//! A std-only front tier that shards [`SimRequest`](ipim_serve::SimRequest)
//! streams over N `ipim_served --stream` backends across real TCP:
//!
//! - **[`HashRing`]** — consistent hashing of the request's
//!   content-addressed fingerprint (the same key the backend
//!   `ResultCache` uses), so each unique job has exactly one home backend
//!   and repeat jobs hit that backend's warm cache.
//! - **[`ShardRouter`]** — per-backend bounded queues and in-flight
//!   windows (backpressure reaches the submitter), retry-with-backoff on
//!   connection failure (seeded `simkit` jitter — no wall-clock
//!   randomness), deadline shedding at the front, health probing with
//!   ejection/readmission, and graceful drain on shutdown. Counters
//!   export under `shard/...`.
//! - **Protocol reuse** — [`ShardRouter`] implements
//!   [`LineService`](ipim_serve::LineService), so the `ipim_shard` binary
//!   serves the identical ndjson protocol as `ipim_served`: clients don't
//!   know (or care) whether they talk to one machine or a fleet.
//!
//! Determinism contract: backends forward lines verbatim and arrived
//! lines are never retried, so a sharded run's responses are bit-identical
//! (output hashes, report hashes, fingerprints) to the same jobs run
//! serially on one backend — the `shard_vs_serial` tests and the CI
//! `shard_soak` step hold this bar.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod ring;
mod router;

pub use ring::HashRing;
pub use router::{RetryPolicy, ShardConfig, ShardRouter, ShardTicket};
