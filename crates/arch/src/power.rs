//! Peak power and thermal feasibility estimates (paper Sec. VII-B).
//!
//! The paper reports 63 W peak per cube at 593 mW/mm² power density, with
//! 78.5 % of peak power induced by simultaneous bank activate/precharge.
//! These helpers reproduce those numbers from the Table III energy model so
//! the `thermal_power` experiment binary can regenerate the section's
//! claims.

use crate::{EnergyParams, MachineConfig};

/// Cube footprint in mm² (8 cubes ≈ 850 mm², Sec. VII-A).
pub const CUBE_MM2: f64 = 850.0 / 8.0;

/// Peak power density allowed by a commodity-server active cooling
/// solution, mW/mm² (Sec. VII-B).
pub const COMMODITY_COOLING_MW_PER_MM2: f64 = 706.0;

/// Peak power density allowed by a high-end-server active cooling
/// solution, mW/mm² (Sec. VII-B).
pub const HIGH_END_COOLING_MW_PER_MM2: f64 = 1214.0;

/// Peak-power estimate for one cube.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeakPower {
    /// Total peak power in watts.
    pub total_w: f64,
    /// Share induced by the DRAM banks (activate/precharge + column access).
    pub dram_fraction: f64,
    /// Power density in mW/mm².
    pub density_mw_per_mm2: f64,
}

impl PeakPower {
    /// Whether the given cooling budget covers this power density.
    pub fn fits_cooling(&self, budget_mw_per_mm2: f64) -> bool {
        self.density_mw_per_mm2 <= budget_mw_per_mm2
    }
}

/// Estimates one cube's peak power.
///
/// Peak scenario: every bank row-cycles as fast as `tRAS + tRP` allows with
/// a burst of column accesses per open row, every SIMD unit retires one op
/// per `tADD`, every integer ALU one op per cycle group, all vault TSVs
/// stream, and every control core runs. This is the "simultaneously
/// activating/precharging DRAM banks" worst case the paper's thermal
/// discussion describes. (The paper reports 63 W/cube with 78.5 % induced by
/// ACT/PRE; with the *published* Table III per-access energies the ACT/PRE
/// share computes much lower — we reproduce the magnitude and document the
/// share discrepancy in EXPERIMENTS.md.)
pub fn peak_power_per_cube(config: &MachineConfig, energy: &EnergyParams) -> PeakPower {
    let banks = (config.vaults_per_cube * config.pes_per_vault()) as f64;
    let vaults = config.vaults_per_cube as f64;
    let pgs = (config.vaults_per_cube * config.pgs_per_vault) as f64;

    // Row cycle: ACT … (tRAS) … PRE … (tRP), with 4 column bursts per row.
    let t_rc = (config.timing.t_ras + config.timing.t_rp) as f64;
    let act_pre_w = banks * energy.dram.act_pre_pj / t_rc * 1e-3;
    let cols_per_row_cycle = 4.0;
    let cas_w = banks * cols_per_row_cycle * energy.dram.rd_wr_pj / t_rc * 1e-3;

    // Compute: one SIMD op per tADD, one integer op per tADD.
    let ops_per_ns = 1.0 / config.latency.add as f64;
    let compute_w = banks * (energy.simd_pj + energy.int_alu_pj) * ops_per_ns * 1e-3;
    // Register files and scratchpads at the same op rate.
    let sram_w = banks * (energy.data_rf_pj + energy.addr_rf_pj) * ops_per_ns * 1e-3
        + pgs * energy.pgsm_pj * ops_per_ns * 1e-3;
    // TSVs streaming 128 bits per vault per cycle plus control cores.
    let tsv_w = vaults * 128.0 * energy.tsv_pj_per_bit * 1e-3;
    let core_w = vaults * energy.ctrl_core_mw * 1e-3;

    let total_w = act_pre_w + cas_w + compute_w + sram_w + tsv_w + core_w;
    PeakPower {
        total_w,
        dram_fraction: (act_pre_w + cas_w) / total_w,
        density_mw_per_mm2: total_w * 1e3 / CUBE_MM2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_power_is_tens_of_watts() {
        let p = peak_power_per_cube(&MachineConfig::default(), &EnergyParams::default());
        // Paper: 63 W / cube; the estimate should land in the same regime.
        assert!(p.total_w > 30.0 && p.total_w < 100.0, "total={}", p.total_w);
    }

    #[test]
    fn dram_dominates_peak_power() {
        let p = peak_power_per_cube(&MachineConfig::default(), &EnergyParams::default());
        // Paper: the majority of peak power is DRAM-bank induced (78.5 %
        // ACT/PRE in the paper's accounting).
        assert!(p.dram_fraction > 0.4, "fraction={}", p.dram_fraction);
    }

    #[test]
    fn density_fits_active_cooling() {
        let p = peak_power_per_cube(&MachineConfig::default(), &EnergyParams::default());
        assert!(p.fits_cooling(COMMODITY_COOLING_MW_PER_MM2), "density={}", p.density_mw_per_mm2);
        assert!(p.fits_cooling(HIGH_END_COOLING_MW_PER_MM2));
    }
}
