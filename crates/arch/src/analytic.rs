//! The third engine tier: an analytic fast-forward model.
//!
//! [`predict`] produces an [`ExecutionReport`]-shaped estimate of a
//! program's run — cycles, per-category issue/stall accounting, DRAM
//! locality and the full Table III energy book — **without simulating**.
//! It is the [`Fidelity::Approximate`](crate::Fidelity) tier behind
//! [`Engine::Analytic`](crate::Engine): 100–1000× faster than the
//! skip-ahead engine, with a bounded, continuously measured error
//! (`tests/analytic_accuracy.rs` pins per-workload envelopes, and the
//! `analytic_divergence` bench records drift into `results/figures.jsonl`
//! where `bench_regress` gates it).
//!
//! # How it works
//!
//! The model exploits a structural property of SIMB programs: control flow
//! depends only on the control register file (written exclusively by
//! `SetiCrf`/`CalcCrf`, read by `Jump`/`CJump`), which is *data
//! independent* and — because `load_program_all` is SPMD — identical in
//! every vault. So one exact interpretation of `pc`/CtrlRF replays the
//! true dynamic instruction stream of every vault in a single pass, and
//! per-vault counters simply scale by the vault count.
//!
//! Along that exact stream, timing is composed from intervals instead of
//! ticks. A monotone *issue cursor* advances at most one instruction per
//! cycle (the control core's issue bandwidth) and is pushed back by the
//! same constraints `Vault::issue_decision` enforces, each tracked as a
//! scalar horizon rather than per-cycle state:
//!
//! * **branch bubble** — taken `Jump`/`CJump` refetch penalty, exact;
//! * **data hazards** — a completion-time scoreboard per architectural
//!   register (RAW/WAR/WAW collapse to "issue after the last in-flight
//!   instruction touching the register completes");
//! * **issued-queue capacity** — a min-heap of in-flight completion
//!   times bounded by `inst_queue`;
//! * **TSV slot** — broadcasts consume one slot per issue; `RdVsm`/`WrVsm`
//!   additionally serialize one port grant per masked PE per cycle;
//! * **DRAM service** — a representative per-PG memory-controller cursor
//!   with an open-row register: addresses are recovered by abstractly
//!   interpreting PE 0's AddrRF (identity registers and `CalcArf` chains
//!   are exact; a `Mov` from the data RF poisons the target register),
//!   classified hit/miss/conflict against [`DramTiming`]'s latencies, and
//!   periodically displaced by refresh windows;
//! * **barriers** — `Sync` parks when the in-flight window drains and
//!   releases after the machine's `2 × mesh diameter + 4` coordination
//!   delay, exactly as `Machine::coordinate_barrier` does.
//!
//! Counter accounting (issue counts, categories, RF/PGSM/VSM accesses,
//! TSV transfers, DRAM accesses) mirrors `Vault::account_accesses`
//! instruction for instruction, so the energy book — composed by the same
//! `compose_energy` the cycle engines use — inherits near-exact activity
//! counts; only the *cycles* term (background + control-core energy) and
//! the modelled DRAM row behaviour are approximate.
//!
//! # Calibration
//!
//! Every fudged constant lives in the [`cal`] module below with the
//! measurement that justifies it; the procedure (replay the Table II
//! suite, compare against SkipAhead, adjust, re-run the divergence table)
//! is documented in DESIGN.md §11. Everything not in [`cal`] is either
//! exact (instruction stream, counters) or taken directly from
//! [`MachineConfig`]/[`DramTiming`] (latencies).

use std::collections::BinaryHeap;

use ipim_isa::{
    AddrOperand, ArfSrc, CompOp, CrfSrc, Instruction, Program, RegRef, ARF_CHIP_ID, ARF_PE_ID,
    ARF_PG_ID, ARF_VAULT_ID,
};

use crate::config::MachineConfig;
use crate::machine::{compose_energy, ExecutionReport, SimTimeout};
use crate::stats::{StallReason, VaultStats};
use crate::EnergyParams;

/// Calibration constants — the **only** tuned numbers in the model.
///
/// Fitted (PR 7) by replaying the Table II workloads at 32²/64²/128²
/// against the SkipAhead engine (`tests/analytic_accuracy.rs` pins the
/// resulting per-workload envelopes; `analytic_divergence` re-measures
/// them continuously). Change a constant here only together with a fresh
/// divergence table.
pub mod cal {
    /// Cycles between issuing an instruction and its functional unit
    /// starting (dispatch queues are drained at the *next* tick).
    pub const UNIT_START: u64 = 1;
    /// Cycles between issuing a memory instruction and the request
    /// reaching the memory controller (PE mem queue → MC enqueue happens
    /// one tick after issue, MC serves from the following tick).
    pub const MEM_ENQUEUE: u64 = 2;
    /// Command-bus occupancy per request: a row hit is one CAS.
    pub const CMDS_HIT: u64 = 1;
    /// Commands per row miss (ACT + CAS).
    pub const CMDS_MISS: u64 = 2;
    /// Commands per row conflict (PRE + ACT + CAS).
    pub const CMDS_CONFLICT: u64 = 3;
    /// Every k-th DRAM access whose address the abstract AddrRF cannot
    /// recover (a data-dependent gather) is charged as a row miss; the
    /// rest count as hits. Fitted against the Resample/BilateralGrid
    /// gather workloads.
    pub const UNKNOWN_MISS_EVERY: u64 = 8;
    /// Round-trip cycles for a remote `Req` (forward hop, remote bank
    /// read, response hop, VSM landing), at mesh-average distance.
    pub const REQ_ROUND_TRIP: u64 = 48;
    /// Mesh flit-hops charged per `Req` (forward + response at average
    /// distance).
    pub const REQ_FLIT_HOPS: u64 = 4;
    /// Cycles between the last completion and halt detection (drain +
    /// halt-transition tick).
    pub const TAIL: u64 = 2;
    /// Read-idle cycles before the MC starts draining posted writes into
    /// command-bus gaps (the controller's hysteresis constant; the
    /// machine cannot halt until the write buffer empties, so a leftover
    /// backlog pays this once at the end of the run).
    pub const WRITE_DRAIN_IDLE: u64 = 150;
}

/// Classification of one modelled DRAM access against the open row.
#[derive(Clone, Copy, PartialEq, Eq)]
enum RowClass {
    Hit,
    Miss,
    Conflict,
}

/// Per-static-instruction facts hoisted out of the dynamic walk so the hot
/// loop touches no allocator: the register set as flat scoreboard indices,
/// the SIMB mask population, and the busiest-PG request count.
struct Decoded {
    /// Flat indices (data ‖ addr ‖ ctrl) of the registers the instruction
    /// reads, and writes — kept separate because the hazard rule is exact
    /// RAW/WAR/WAW: concurrent *readers* of one register never stall each
    /// other.
    reads: Vec<u16>,
    writes: Vec<u16>,
    /// Masked-PE count (0 for control-core instructions).
    n: u64,
    /// Requests the busiest per-PG memory controller sees.
    m: u64,
}

/// Maps a [`RegRef`] into the flat scoreboard index space.
fn flat_reg(r: RegRef, data: usize, addr: usize) -> u16 {
    (match r {
        RegRef::Data(x) => x.index(),
        RegRef::Addr(x) => data + x.index(),
        RegRef::Ctrl(x) => data + addr + x.index(),
    }) as u16
}

fn decode(insts: &[Instruction], config: &MachineConfig) -> Vec<Decoded> {
    insts
        .iter()
        .map(|inst| {
            let flat = |rs: Vec<RegRef>| {
                let mut v: Vec<u16> = rs
                    .into_iter()
                    .map(|r| flat_reg(r, config.data_rf_entries, config.addr_rf_entries))
                    .collect();
                v.sort_unstable();
                v.dedup();
                v
            };
            let (reads, writes) = (flat(inst.reads()), flat(inst.writes()));
            let (n, m) = match inst.simb_mask() {
                Some(mask) => {
                    let mut per_pg = vec![0u64; config.pgs_per_vault.max(1)];
                    for g in mask.iter() {
                        let pg = (g / config.pes_per_pg).min(per_pg.len() - 1);
                        per_pg[pg] += 1;
                    }
                    (mask.count() as u64, per_pg.into_iter().max().unwrap_or(0))
                }
                None => (0, 0),
            };
            Decoded { reads, writes, n, m }
        })
        .collect()
}

/// The walk's mutable state for one (representative) vault.
struct Walk<'a> {
    config: &'a MachineConfig,
    /// Exact control state.
    pc: usize,
    ctrl_rf: Vec<i32>,
    /// Abstract AddrRF of PE 0 (`None` = data-dependent, unrecoverable).
    addr0: Vec<Option<i32>>,
    /// Issue-time cursor: the cycle the previous instruction issued.
    cursor: u64,
    branch_bubble_until: u64,
    /// Completion horizons per architectural register (flat data ‖ addr ‖
    /// ctrl index space): the latest in-flight *writer* and *reader* of
    /// each register. RAW checks `write_done` of reads; WAR/WAW check
    /// both horizons of writes; read-after-read never stalls.
    write_done: Vec<u64>,
    read_done: Vec<u64>,
    /// Completion times of in-flight instructions (min-heap via Reverse),
    /// bounded by `inst_queue`.
    inflight: BinaryHeap<std::cmp::Reverse<u64>>,
    /// First cycle the TSV slot is free for a broadcast issue.
    tsv_free_at: u64,
    /// Representative per-PG memory controller: next free command slot.
    mc_free: u64,
    /// Posted writes buffered at the representative MC, not yet drained.
    write_backlog: u64,
    /// Open row in the representative bank.
    open_row: Option<u64>,
    /// Next refresh window start (when refresh is enabled).
    next_refresh: u64,
    /// Unresolved-address access counter (drives `UNKNOWN_MISS_EVERY`).
    unknown_accesses: u64,
    /// Completion horizon of outstanding remote `Req`s (blocks `RdVsm`).
    req_ready: u64,
    /// Latest completion time seen (the drain horizon).
    last_completion: u64,
    /// Per-vault statistics (single-vault; scaled by the caller).
    stats: VaultStats,
    /// Modelled bank-row classification counts (representative bank).
    row_hits: u64,
    row_misses: u64,
    row_conflicts: u64,
    /// Modelled DRAM read/write completions (per-PE requests, one vault).
    bank_reads: u64,
    bank_writes: u64,
    /// Mesh flit-hops (whole machine).
    flit_hops: u64,
}

impl<'a> Walk<'a> {
    fn new(config: &'a MachineConfig) -> Self {
        let mut addr0 = vec![Some(0i32); config.addr_rf_entries];
        // PE 0 of PG 0 of vault 0 of cube 0: every identity register is 0,
        // which `reset_identity_registers` also writes — kept explicit so a
        // different representative would be a one-line change.
        addr0[ARF_PE_ID.index()] = Some(0);
        addr0[ARF_PG_ID.index()] = Some(0);
        addr0[ARF_VAULT_ID.index()] = Some(0);
        addr0[ARF_CHIP_ID.index()] = Some(0);
        Self {
            config,
            pc: 0,
            ctrl_rf: vec![0; config.ctrl_rf_entries],
            addr0,
            cursor: 0,
            branch_bubble_until: 0,
            write_done: vec![
                0;
                config.data_rf_entries
                    + config.addr_rf_entries
                    + config.ctrl_rf_entries
            ],
            read_done: vec![
                0;
                config.data_rf_entries + config.addr_rf_entries + config.ctrl_rf_entries
            ],
            inflight: BinaryHeap::new(),
            tsv_free_at: 0,
            mc_free: 0,
            write_backlog: 0,
            open_row: None,
            next_refresh: config.timing.t_refi,
            unknown_accesses: 0,
            req_ready: 0,
            last_completion: 0,
            stats: VaultStats::default(),
            row_hits: 0,
            row_misses: 0,
            row_conflicts: 0,
            bank_reads: 0,
            bank_writes: 0,
            flit_hops: 0,
        }
    }

    fn crf(&self, src: CrfSrc) -> i32 {
        match src {
            CrfSrc::Imm(v) => v,
            CrfSrc::Reg(r) => self.ctrl_rf[r.index()],
        }
    }

    /// Abstractly resolves a DRAM/scratchpad address operand on PE 0.
    fn resolve0(&self, a: AddrOperand) -> Option<u32> {
        match a {
            AddrOperand::Imm(v) => Some(v),
            AddrOperand::Indirect(r) => self.addr0[r.index()].map(|v| v as u32),
        }
    }

    /// Classifies and journals one representative DRAM access.
    fn classify_row(&mut self, addr: Option<u32>, n: u64) -> RowClass {
        let class = match addr {
            Some(a) => {
                let row = u64::from(a) / u64::from(self.config.bank.row_bytes);
                let class = match self.open_row {
                    Some(open) if open == row => RowClass::Hit,
                    Some(_) => RowClass::Conflict,
                    None => RowClass::Miss,
                };
                self.open_row = Some(row);
                class
            }
            None => {
                // Data-dependent gather: the address stream is invisible to
                // the abstract AddrRF. Charge a calibrated miss fraction and
                // leave the open row untouched (the next resolvable access
                // re-anchors it).
                self.unknown_accesses += 1;
                if self.unknown_accesses.is_multiple_of(cal::UNKNOWN_MISS_EVERY) {
                    RowClass::Miss
                } else {
                    RowClass::Hit
                }
            }
        };
        match class {
            RowClass::Hit => self.row_hits += n,
            RowClass::Miss => self.row_misses += n,
            RowClass::Conflict => self.row_conflicts += n,
        }
        class
    }

    /// Advances the MC cursor over a refresh window if one is due.
    fn refresh_displace(&mut self, start: u64) -> u64 {
        let mut start = start;
        if self.config.refresh {
            let t = &self.config.timing;
            while start >= self.next_refresh {
                start = start.max(self.next_refresh) + t.t_rfc;
                self.next_refresh += t.t_refi;
            }
        }
        start
    }

    /// Models one memory instruction's DRAM service; returns the last
    /// PE's completion time.
    fn serve_dram(&mut self, issue_t: u64, inst: &Instruction, n: u64, m: u64, extra: u64) -> u64 {
        let t = &self.config.timing;
        let is_read = matches!(inst, Instruction::LdRf { .. } | Instruction::LdPgsm { .. });
        let arrival = issue_t + cal::MEM_ENQUEUE;
        self.stats.dram_accesses += n;
        if !is_read {
            // The MC posts writes: they are acknowledged on entry into a
            // deep write buffer and drained lazily, so a store completes
            // almost immediately and rarely disturbs the read stream's
            // open rows (measured: Shift 64² real locality is 94% hits on
            // its write stream). The drains do consume command-bus slots
            // eventually, though: when the MC is already contended the
            // slots come out of the read stream's budget; when it is
            // idle the backlog drains in the gaps for free (modelled in
            // the read path and at end of run).
            self.bank_writes += n;
            self.row_hits += n;
            if arrival <= self.mc_free {
                self.mc_free += m;
            } else {
                self.write_backlog += m;
            }
            let done = arrival + 1;
            self.stats.mem_busy += n * (done - arrival);
            return done;
        }
        // Command-bus gaps since the last read first drain backlogged
        // writes (after the controller's read-idle hysteresis).
        if self.write_backlog > 0 {
            let gap = arrival.saturating_sub(self.mc_free);
            let drained = gap.saturating_sub(cal::WRITE_DRAIN_IDLE).min(self.write_backlog);
            self.write_backlog -= drained;
        }
        let addr = match *inst {
            Instruction::LdRf { dram_addr, .. } | Instruction::LdPgsm { dram_addr, .. } => {
                self.resolve0(dram_addr)
            }
            _ => None,
        };
        let class = self.classify_row(addr, n);
        let (lat, cmds) = match class {
            RowClass::Hit => (t.hit_read_latency(), cal::CMDS_HIT),
            RowClass::Miss => (t.miss_read_latency(), cal::CMDS_MISS),
            RowClass::Conflict => (t.conflict_read_latency(), cal::CMDS_CONFLICT),
        };
        let start = self.refresh_displace(arrival.max(self.mc_free));
        // The MC's command bus issues one command per cycle; back-to-back
        // same-bank service is additionally bounded by t_ccd.
        let gap = cmds.max(if m <= 1 { t.t_ccd } else { cmds });
        let done_last = start + m.saturating_sub(1) * cmds + lat + extra;
        self.mc_free = start + (m * gap).max(t.t_ccd);
        self.bank_reads += n;
        self.stats.mem_busy += n * done_last.saturating_sub(arrival);
        done_last
    }

    /// Mirrors `Vault::account_accesses` for one issued instruction.
    fn account(&mut self, inst: &Instruction) {
        let n = inst.simb_mask().map_or(0, |m| m.count() as u64);
        let indirect = |a: &AddrOperand| matches!(a, AddrOperand::Indirect(_));
        match inst {
            Instruction::Comp { .. } => {
                self.stats.simd_ops += n;
                self.stats.data_rf_accesses += 3 * n;
            }
            Instruction::CalcArf { .. } => {
                self.stats.int_alu_ops += n;
                self.stats.addr_rf_accesses += 3 * n;
            }
            Instruction::Mov { .. } => {
                self.stats.int_alu_ops += n;
                self.stats.addr_rf_accesses += n;
                self.stats.data_rf_accesses += n;
            }
            Instruction::LdRf { dram_addr, .. } | Instruction::StRf { dram_addr, .. } => {
                self.stats.data_rf_accesses += n;
                if indirect(dram_addr) {
                    self.stats.addr_rf_accesses += n;
                }
            }
            Instruction::LdPgsm { dram_addr, pgsm_addr, .. }
            | Instruction::StPgsm { dram_addr, pgsm_addr, .. } => {
                self.stats.pgsm_accesses += n;
                let ind = u64::from(indirect(dram_addr)) + u64::from(indirect(pgsm_addr));
                self.stats.addr_rf_accesses += ind * n;
            }
            Instruction::RdPgsm { pgsm_addr, .. } | Instruction::WrPgsm { pgsm_addr, .. } => {
                self.stats.pgsm_accesses += n;
                self.stats.data_rf_accesses += n;
                if indirect(pgsm_addr) {
                    self.stats.addr_rf_accesses += n;
                }
            }
            Instruction::RdVsm { vsm_addr, .. } | Instruction::WrVsm { vsm_addr, .. } => {
                self.stats.vsm_accesses += n;
                self.stats.data_rf_accesses += n;
                if indirect(vsm_addr) {
                    self.stats.addr_rf_accesses += n;
                }
            }
            Instruction::Reset { .. } | Instruction::SetiDrf { .. } => {
                self.stats.data_rf_accesses += n;
            }
            Instruction::SetiVsm { .. } => {
                self.stats.vsm_accesses += 1;
            }
            _ => {}
        }
    }

    /// Applies the abstract (PE 0) functional semantics that address
    /// recovery needs; everything else is timing-only.
    fn interpret0(&mut self, inst: &Instruction) {
        match *inst {
            Instruction::CalcArf { op, dst, src1, src2, .. } => {
                let a = self.addr0[src1.index()];
                let b = match src2 {
                    ArfSrc::Imm(v) => Some(v),
                    ArfSrc::Reg(r) => self.addr0[r.index()],
                };
                self.addr0[dst.index()] = match (a, b) {
                    (Some(a), Some(b)) => Some(op.apply(a, b)),
                    _ => None,
                };
            }
            Instruction::Mov { to_arf, arf, .. } if to_arf => {
                // Loaded from the data RF: data dependent, unrecoverable.
                self.addr0[arf.index()] = None;
            }
            _ => {}
        }
    }
}

/// Predicts the execution report of `program` on `config` without
/// simulating. See the module docs for the model; the result is marked
/// [`Fidelity::Approximate`](crate::Fidelity) via
/// [`Engine::fidelity`](crate::Engine).
///
/// # Errors
///
/// Returns [`SimTimeout`] when the predicted run exceeds `max_cycles` —
/// the same failure a simulating engine would report.
pub fn predict(
    program: &Program,
    config: &MachineConfig,
    max_cycles: u64,
) -> Result<ExecutionReport, SimTimeout> {
    let lat = &config.latency;
    let insts = program.instructions();
    let decoded = decode(insts, config);
    let mut w = Walk::new(config);
    let n_vaults = config.total_vaults();
    let timeout = || SimTimeout { max_cycles, stuck_vaults: (0..n_vaults).collect() };

    // The mesh the barrier delay depends on (mirrors Machine::new).
    let mesh_w = ((config.vaults_per_cube as f64).sqrt().ceil() as usize).max(1);
    let mesh_h = config.vaults_per_cube.div_ceil(mesh_w);
    let barrier_delay = 2 * (mesh_w + mesh_h) as u64 + 4;

    let mut issued_dynamic: u64 = 0;
    while w.pc < insts.len() {
        // Every issue occupies at least one cycle, so the dynamic count is
        // a lower bound on cycles: exceeding the budget here is the same
        // timeout a simulating engine would hit.
        issued_dynamic += 1;
        if issued_dynamic > max_cycles || w.cursor > max_cycles {
            return Err(timeout());
        }
        let inst = &insts[w.pc];
        let dec = &decoded[w.pc];

        // ---- Issue-time constraints (mirrors issue_decision). ----
        let next = w.cursor + 1;
        let mut issue_t = next;
        let mut binding: Option<StallReason> = None;
        let mut push = |t: u64, reason: StallReason, issue_t: &mut u64| {
            if t > *issue_t {
                *issue_t = t;
                binding = Some(reason);
            }
        };
        if w.branch_bubble_until > issue_t {
            push(w.branch_bubble_until, StallReason::Branch, &mut issue_t);
        }
        // Queue capacity: pop completions that free slots before `issue_t`;
        // while full, wait for the earliest retirement.
        while let Some(&std::cmp::Reverse(done)) = w.inflight.peek() {
            if done <= issue_t {
                w.inflight.pop();
            } else if w.inflight.len() >= config.inst_queue {
                push(done, StallReason::QueueFull, &mut issue_t);
                w.inflight.pop();
            } else {
                break;
            }
        }
        // Register hazards vs in-flight completions: RAW (my reads vs
        // their writes), WAR (my writes vs their reads), WAW (my writes vs
        // their writes) — exactly `issue_decision`'s rule; concurrent
        // readers never stall each other.
        for &r in &dec.reads {
            let ready = w.write_done[r as usize];
            if ready > issue_t {
                push(ready, StallReason::Hazard, &mut issue_t);
            }
        }
        for &r in &dec.writes {
            let ready = w.write_done[r as usize].max(w.read_done[r as usize]);
            if ready > issue_t {
                push(ready, StallReason::Hazard, &mut issue_t);
            }
        }
        // VSM interlock: reads of the VSM wait for outstanding remote reqs.
        if matches!(inst, Instruction::RdVsm { .. }) && w.req_ready > issue_t {
            push(w.req_ready, StallReason::VsmInterlock, &mut issue_t);
        }
        // Sync waits for the whole in-flight window to drain.
        if matches!(inst, Instruction::Sync { .. }) {
            let drain = w.last_completion.max(w.req_ready);
            if drain > issue_t {
                push(drain, StallReason::Sync, &mut issue_t);
            }
        }
        // Broadcasts need the cycle's TSV slot.
        if dec.n > 0 && w.tsv_free_at > issue_t {
            push(w.tsv_free_at, StallReason::Tsv, &mut issue_t);
        }
        if let Some(reason) = binding {
            w.stats.stalls.bump_by(reason, issue_t - next);
        }

        // ---- Issue (mirrors try_issue + account_accesses). ----
        w.stats.issued += 1;
        w.stats.by_category.bump(inst.category());
        w.account(inst);
        w.cursor = issue_t;

        let mut next_pc = w.pc + 1;
        match *inst {
            Instruction::Jump { target } => {
                next_pc = w.crf(target) as usize;
                w.branch_bubble_until = issue_t + 1 + lat.branch_penalty;
            }
            Instruction::CJump { cond, target } => {
                if w.ctrl_rf[cond.index()] != 0 {
                    next_pc = w.crf(target) as usize;
                    w.branch_bubble_until = issue_t + 1 + lat.branch_penalty;
                }
            }
            Instruction::CalcCrf { op, dst, src1, src2 } => {
                let b = w.crf(src2);
                let a = w.ctrl_rf[src1.index()];
                w.ctrl_rf[dst.index()] = op.apply(a, b);
            }
            Instruction::SetiCrf { dst, imm } => {
                w.ctrl_rf[dst.index()] = imm;
            }
            Instruction::SetiVsm { .. } => {}
            Instruction::Req { .. } => {
                w.stats.remote_reqs += 1;
                // Forward + remote bank read + response, at mesh-average
                // distance; the served read lands in this vault's DRAM
                // accounting symmetrically (each vault serves what it
                // sends under SPMD).
                let done = issue_t + cal::REQ_ROUND_TRIP;
                w.req_ready = w.req_ready.max(done);
                w.last_completion = w.last_completion.max(done);
                w.inflight.push(std::cmp::Reverse(done));
                w.flit_hops += cal::REQ_FLIT_HOPS;
                w.stats.dram_accesses += 1;
                w.bank_reads += 1;
                w.row_misses += 1;
            }
            Instruction::Sync { .. } => {
                // Park, coordinate, release: every vault runs the same
                // stream, so they all park at `issue_t` and resume
                // together after the coordination delay.
                let release = issue_t + barrier_delay;
                w.stats.stalls.bump_by(StallReason::Sync, barrier_delay);
                w.cursor = release;
                w.tsv_free_at = w.tsv_free_at.max(release);
                // The in-flight window drained before parking; scoreboard
                // entries are all ≤ release, so they can stay as-is.
                w.inflight.clear();
            }
            _ => {
                // Broadcast instruction: timing dispatch (mirrors
                // Vault::dispatch's latency table) + abstract semantics.
                let n = dec.n;
                w.stats.tsv_transfers += 1;
                w.tsv_free_at = w.tsv_free_at.max(issue_t + 1);
                let done = match inst {
                    Instruction::Comp { op, .. } => {
                        let l = match op {
                            CompOp::Add | CompOp::Sub => lat.add,
                            CompOp::Mul => lat.mul,
                            CompOp::Mac => lat.mac,
                            CompOp::Div => lat.div,
                            _ => lat.logic,
                        };
                        w.stats.simd_busy += n * (l + lat.rf);
                        issue_t + cal::UNIT_START + l + lat.rf
                    }
                    Instruction::CalcArf { .. } | Instruction::Mov { .. } => {
                        w.stats.int_alu_busy += n * (lat.logic + lat.rf);
                        issue_t + cal::UNIT_START + lat.logic + lat.rf
                    }
                    Instruction::Reset { .. } | Instruction::SetiDrf { .. } => {
                        w.stats.simd_busy += n * lat.rf;
                        issue_t + cal::UNIT_START + lat.rf
                    }
                    Instruction::LdRf { .. } => w.serve_dram(issue_t, inst, n, dec.m, lat.pe_bus),
                    Instruction::StRf { .. } => w.serve_dram(issue_t, inst, n, dec.m, 0),
                    Instruction::LdPgsm { .. } => {
                        w.serve_dram(issue_t, inst, n, dec.m, lat.pe_bus + lat.pgsm)
                    }
                    Instruction::StPgsm { .. } => w.serve_dram(issue_t, inst, n, dec.m, 0),
                    Instruction::RdPgsm { .. } | Instruction::WrPgsm { .. } => {
                        issue_t + cal::UNIT_START + lat.pgsm + lat.pe_bus
                    }
                    Instruction::RdVsm { .. } | Instruction::WrVsm { .. } => {
                        // One TSV grant per masked PE per cycle; grants
                        // block broadcast issue while they drain.
                        w.stats.tsv_transfers += n;
                        w.tsv_free_at = w.tsv_free_at.max(issue_t + 1 + n);
                        issue_t + n + lat.tsv + lat.vsm + lat.pe_bus
                    }
                    _ => issue_t + 1,
                };
                w.interpret0(inst);
                w.last_completion = w.last_completion.max(done);
                w.inflight.push(std::cmp::Reverse(done));
                for &r in &dec.reads {
                    let e = &mut w.read_done[r as usize];
                    *e = (*e).max(done);
                }
                for &r in &dec.writes {
                    let e = &mut w.write_done[r as usize];
                    *e = (*e).max(done);
                }
            }
        }
        w.pc = next_pc;
    }

    // Drain + halt-detection tail: the machine cannot halt until the MCs
    // empty their write buffers, which starts after the read-idle
    // hysteresis and retires roughly one write per command slot.
    let mut end = w.cursor.max(w.last_completion).max(w.mc_free);
    if w.write_backlog > 0 {
        end += cal::WRITE_DRAIN_IDLE + w.write_backlog;
    }
    let cycles = end + cal::TAIL;
    if cycles > max_cycles {
        return Err(timeout());
    }
    w.stats.cycles = cycles;

    // ---- Scale the representative vault to the whole machine. ----
    let pes = config.total_pes();
    let mut stats = VaultStats::default();
    for _ in 0..n_vaults {
        stats.absorb(&w.stats);
    }
    let n_banks = pes as u64;
    let per_bank_refs =
        if config.refresh { cycles / (config.timing.t_refi + config.timing.t_rfc) } else { 0 };
    let bank_stats = ipim_dram::BankStats {
        // One representative bank's row behaviour, mirrored across every
        // masked bank (row classes were journalled ×n) and every vault.
        acts: (w.row_misses + w.row_conflicts) * n_vaults as u64,
        pres: w.row_conflicts * n_vaults as u64,
        reads: w.bank_reads * n_vaults as u64,
        writes: w.bank_writes * n_vaults as u64,
        refs: per_bank_refs * n_banks,
    };
    let locality = ipim_dram::RowLocality {
        row_hits: w.row_hits * n_vaults as u64,
        row_misses: w.row_misses * n_vaults as u64,
        row_conflicts: w.row_conflicts * n_vaults as u64,
    };
    let energy = compose_energy(
        &EnergyParams::default(),
        config,
        &stats,
        &bank_stats,
        cycles,
        w.flit_hops * n_vaults as u64,
        0,
        n_vaults,
    );
    Ok(ExecutionReport { cycles, stats, bank_stats, locality, energy, vaults: n_vaults, pes })
}

/// Relative cycle divergence of an analytic prediction from a measured
/// report, in percent (`|predicted − measured| / measured × 100`). The
/// canonical spelling every divergence gate and report uses.
pub fn divergence_pct(predicted_cycles: u64, measured_cycles: u64) -> f64 {
    if measured_cycles == 0 {
        return if predicted_cycles == 0 { 0.0 } else { f64::INFINITY };
    }
    (predicted_cycles as f64 - measured_cycles as f64).abs() / measured_cycles as f64 * 100.0
}
