//! iPIM near-bank microarchitecture model (paper Sec. IV).
//!
//! The machine is a hierarchy of *cubes* → *vaults* → *process groups (PGs)*
//! → *process engines (PEs)*. Each vault pairs an in-order control core on
//! the base logic die with SIMB-parallel near-bank PEs on the PIM dies —
//! the decoupled control-execution architecture that gives iPIM
//! programmability at ~10.7 % area overhead per DRAM die.
//!
//! Main entry points:
//!
//! * [`MachineConfig`] — Table III machine shape and policies,
//! * [`Machine`] — builds the machine, loads [`ipim_isa::Program`]s, runs
//!   them cycle-accurately and produces an [`ExecutionReport`],
//! * [`EnergyBook`] / [`EnergyParams`] — the Table III energy model,
//! * [`area`] — the Table IV area model,
//! * [`power`] — peak-power / thermal estimates (Sec. VII-B).
//!
//! # Example
//!
//! ```
//! use ipim_arch::{Machine, MachineConfig};
//! use ipim_isa::{Instruction, ProgramBuilder, DataReg, SimbMask, VecMask};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = MachineConfig::vault_slice(1);
//! let mut machine = Machine::new(config.clone());
//! let mut b = ProgramBuilder::new();
//! b.push(Instruction::SetiDrf {
//!     drf: DataReg::new(0),
//!     imm: 2.5f32.to_bits(),
//!     vec_mask: VecMask::ALL,
//!     simb_mask: SimbMask::all(config.pes_per_vault()),
//! });
//! machine.load_program_all(&b.seal()?);
//! let report = machine.run(10_000)?;
//! assert!(report.cycles > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analytic;
pub mod area;
mod config;
mod energy;
mod machine;
pub mod power;
mod scratchpad;
mod stats;
mod vault;

pub use config::{Engine, Fidelity, LatencyParams, MachineConfig, Placement, TraceConfig};
pub use energy::{EnergyBook, EnergyParams};
pub use machine::{ExecutionReport, Machine, SimTimeout};
pub use scratchpad::Scratchpad;
pub use stats::{CategoryCounts, StallCounts, StallReason, VaultStats};
pub use vault::{InMsg, OutMsg, Vault, VaultId, Vector};
