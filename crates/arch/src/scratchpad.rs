//! Dense scratchpad memories: the process-group scratchpad (PGSM) and the
//! vault scratchpad (VSM).

/// A byte-addressed scratchpad with access counting.
///
/// PGSM (8 KiB, one per process group) provides intra-PG data sharing with
/// per-PE read/write ports; VSM (256 KiB, one per vault) provides intra-vault
/// sharing, remote-access buffering and instruction storage (paper
/// Sec. IV-E). Out-of-range accesses panic: the compiler must never emit
/// them, so they indicate a codegen bug.
#[derive(Debug, Clone)]
pub struct Scratchpad {
    bytes: Vec<u8>,
    accesses: u64,
}

impl Scratchpad {
    /// Creates a zeroed scratchpad of `size` bytes.
    pub fn new(size: u32) -> Self {
        Self { bytes: vec![0; size as usize], accesses: 0 }
    }

    /// Capacity in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the scratchpad has zero capacity.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Reads `buf.len()` bytes at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the scratchpad.
    pub fn read(&mut self, addr: u32, buf: &mut [u8]) {
        let a = addr as usize;
        assert!(
            a + buf.len() <= self.bytes.len(),
            "scratchpad read {a}+{} out of {} bytes",
            buf.len(),
            self.bytes.len()
        );
        buf.copy_from_slice(&self.bytes[a..a + buf.len()]);
        self.accesses += 1;
    }

    /// Writes `data` at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the scratchpad.
    pub fn write(&mut self, addr: u32, data: &[u8]) {
        let a = addr as usize;
        assert!(
            a + data.len() <= self.bytes.len(),
            "scratchpad write {a}+{} out of {} bytes",
            data.len(),
            self.bytes.len()
        );
        self.bytes[a..a + data.len()].copy_from_slice(data);
        self.accesses += 1;
    }

    /// Reads a `u32` at `addr`.
    pub fn read_u32(&mut self, addr: u32) -> u32 {
        let mut b = [0u8; 4];
        self.read(addr, &mut b);
        u32::from_le_bytes(b)
    }

    /// Writes a `u32` at `addr`.
    pub fn write_u32(&mut self, addr: u32, v: u32) {
        self.write(addr, &v.to_le_bytes());
    }

    /// Number of read/write accesses so far (for energy accounting).
    pub fn accesses(&self) -> u64 {
        self.accesses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_counting() {
        let mut s = Scratchpad::new(64);
        assert_eq!(s.len(), 64);
        s.write_u32(8, 0xFEED);
        assert_eq!(s.read_u32(8), 0xFEED);
        assert_eq!(s.accesses(), 2);
    }

    #[test]
    fn zero_initialized() {
        let mut s = Scratchpad::new(16);
        assert_eq!(s.read_u32(12), 0);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_range_read_panics() {
        let mut s = Scratchpad::new(16);
        let mut b = [0u8; 4];
        s.read(13, &mut b);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_range_write_panics() {
        let mut s = Scratchpad::new(16);
        s.write(16, &[1]);
    }
}
