//! Energy model: Table III per-access energies and the Fig. 9 breakdown
//! accumulator.

use ipim_dram::DramEnergy;

/// Per-access / per-bit energy constants (Table III, picojoules).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// SIMD unit energy per executed instruction per PE (87.37 pJ).
    pub simd_pj: f64,
    /// Integer ALU energy per operation (11.05 pJ).
    pub int_alu_pj: f64,
    /// AddrRF energy per access (0.43 pJ).
    pub addr_rf_pj: f64,
    /// DataRF energy per access (2.66 pJ).
    pub data_rf_pj: f64,
    /// PGSM energy per 128-bit access (cacti-3DD-class estimate).
    pub pgsm_pj: f64,
    /// VSM energy per 128-bit access (cacti-3DD-class estimate).
    pub vsm_pj: f64,
    /// PE bus energy per bit (0.017 pJ).
    pub pe_bus_pj_per_bit: f64,
    /// TSV energy per bit (4.64 pJ).
    pub tsv_pj_per_bit: f64,
    /// SERDES energy per bit (4.50 pJ).
    pub serdes_pj_per_bit: f64,
    /// On-chip network energy per bit per hop.
    pub noc_pj_per_bit_hop: f64,
    /// Control core power in milliwatts (in-order ARM Cortex-A5-class).
    pub ctrl_core_mw: f64,
    /// DRAM access energies.
    pub dram: ipim_dram::EnergyParams,
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self {
            simd_pj: 87.37,
            int_alu_pj: 11.05,
            addr_rf_pj: 0.43,
            data_rf_pj: 2.66,
            pgsm_pj: 9.8,
            vsm_pj: 24.5,
            pe_bus_pj_per_bit: 0.017,
            tsv_pj_per_bit: 4.64,
            serdes_pj_per_bit: 4.50,
            noc_pj_per_bit_hop: 0.52,
            ctrl_core_mw: 80.0,
            dram: ipim_dram::EnergyParams::default(),
        }
    }
}

/// Accumulated energy by component, the shape of the paper's Fig. 9
/// breakdown (`DRAM`, `SIMDunit`, `AddrRF`, `DataRF`, `PGSM`, `Others`).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBook {
    /// DRAM energy (background + RAS + CAS + refresh).
    pub dram: DramEnergy,
    /// SIMD unit energy (pJ).
    pub simd_pj: f64,
    /// Integer ALU (index calculation) energy (pJ).
    pub int_alu_pj: f64,
    /// Address register file energy (pJ).
    pub addr_rf_pj: f64,
    /// Data register file energy (pJ).
    pub data_rf_pj: f64,
    /// Process-group scratchpad energy (pJ).
    pub pgsm_pj: f64,
    /// Vault scratchpad energy (pJ).
    pub vsm_pj: f64,
    /// PE bus energy (pJ).
    pub pe_bus_pj: f64,
    /// TSV energy (pJ).
    pub tsv_pj: f64,
    /// On-chip network energy (pJ).
    pub noc_pj: f64,
    /// SERDES (inter-cube) energy (pJ).
    pub serdes_pj: f64,
    /// Control core energy (pJ).
    pub ctrl_core_pj: f64,
}

impl EnergyBook {
    /// Total energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.dram.total_pj()
            + self.simd_pj
            + self.int_alu_pj
            + self.addr_rf_pj
            + self.data_rf_pj
            + self.pgsm_pj
            + self.vsm_pj
            + self.pe_bus_pj
            + self.tsv_pj
            + self.noc_pj
            + self.serdes_pj
            + self.ctrl_core_pj
    }

    /// Total energy in joules.
    pub fn total_j(&self) -> f64 {
        self.total_pj() * 1e-12
    }

    /// Energy spent on the PIM dies (everything except data movement across
    /// TSV/NoC/SERDES and the control core) — the paper reports 89.17 %.
    pub fn pim_die_pj(&self) -> f64 {
        self.dram.total_pj()
            + self.simd_pj
            + self.int_alu_pj
            + self.addr_rf_pj
            + self.data_rf_pj
            + self.pgsm_pj
            + self.pe_bus_pj
    }

    /// The `Others` slice of Fig. 9: data movement + control core + VSM.
    pub fn others_pj(&self) -> f64 {
        self.vsm_pj + self.tsv_pj + self.noc_pj + self.serdes_pj + self.ctrl_core_pj
    }

    /// Fraction of total energy spent on the PIM dies.
    pub fn pim_die_fraction(&self) -> f64 {
        let total = self.total_pj();
        if total == 0.0 {
            0.0
        } else {
            self.pim_die_pj() / total
        }
    }
}

impl std::ops::Add for EnergyBook {
    type Output = Self;

    fn add(self, rhs: Self) -> Self {
        Self {
            dram: self.dram + rhs.dram,
            simd_pj: self.simd_pj + rhs.simd_pj,
            int_alu_pj: self.int_alu_pj + rhs.int_alu_pj,
            addr_rf_pj: self.addr_rf_pj + rhs.addr_rf_pj,
            data_rf_pj: self.data_rf_pj + rhs.data_rf_pj,
            pgsm_pj: self.pgsm_pj + rhs.pgsm_pj,
            vsm_pj: self.vsm_pj + rhs.vsm_pj,
            pe_bus_pj: self.pe_bus_pj + rhs.pe_bus_pj,
            tsv_pj: self.tsv_pj + rhs.tsv_pj,
            noc_pj: self.noc_pj + rhs.noc_pj,
            serdes_pj: self.serdes_pj + rhs.serdes_pj,
            ctrl_core_pj: self.ctrl_core_pj + rhs.ctrl_core_pj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table3() {
        let p = EnergyParams::default();
        assert_eq!(p.simd_pj, 87.37);
        assert_eq!(p.int_alu_pj, 11.05);
        assert_eq!(p.addr_rf_pj, 0.43);
        assert_eq!(p.data_rf_pj, 2.66);
        assert_eq!(p.pe_bus_pj_per_bit, 0.017);
        assert_eq!(p.tsv_pj_per_bit, 4.64);
        assert_eq!(p.serdes_pj_per_bit, 4.50);
    }

    #[test]
    fn totals_and_fractions() {
        let book =
            EnergyBook { simd_pj: 60.0, tsv_pj: 30.0, ctrl_core_pj: 10.0, ..EnergyBook::default() };
        assert_eq!(book.total_pj(), 100.0);
        assert_eq!(book.pim_die_pj(), 60.0);
        assert_eq!(book.others_pj(), 40.0);
        assert!((book.pim_die_fraction() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn empty_book_fraction_is_zero() {
        assert_eq!(EnergyBook::default().pim_die_fraction(), 0.0);
    }

    #[test]
    fn add_is_componentwise() {
        let a = EnergyBook { simd_pj: 1.0, noc_pj: 2.0, ..EnergyBook::default() };
        let b = EnergyBook { simd_pj: 3.0, vsm_pj: 4.0, ..EnergyBook::default() };
        let c = a + b;
        assert_eq!(c.simd_pj, 4.0);
        assert_eq!(c.noc_pj, 2.0);
        assert_eq!(c.vsm_pj, 4.0);
    }
}
