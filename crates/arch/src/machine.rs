//! The full iPIM machine: cubes of vaults connected by per-cube 2D meshes
//! and inter-cube SERDES links, with machine-wide barrier coordination.

use std::collections::VecDeque;
use std::fmt;

use ipim_dram::ACCESS_BYTES;
use ipim_isa::{Program, RemoteTarget};
use ipim_noc::{Mesh, MeshConfig, NodeId, Packet, PacketId};
use ipim_trace::{CompId, CompRegistry, MetricsRegistry, SharedSink, TraceEvent, Tracer};

use crate::stats::VaultStats;
use crate::vault::{InMsg, OutMsg, Vault, VaultId};
use crate::{EnergyBook, EnergyParams, Engine, MachineConfig};

/// Fixed latency of an inter-cube SERDES traversal in cycles (link + both
/// gateways; Table III's 0.08 ns/hop link delay is dominated by
/// serialization, which this constant folds in).
const SERDES_LATENCY: u64 = 8;

/// Payload routed through a cube's mesh.
#[derive(Debug, Clone, PartialEq)]
enum NetMsg {
    Fwd { origin: VaultId, target: RemoteTarget, dram_addr: u32, tag: u64 },
    Resp { tag: u64 },
}

/// Error returned when a simulation exceeds its cycle budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimTimeout {
    /// Cycle budget that was exhausted.
    pub max_cycles: u64,
    /// Vaults that had not halted.
    pub stuck_vaults: Vec<usize>,
}

impl fmt::Display for SimTimeout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "simulation did not quiesce within {} cycles ({} vaults still running)",
            self.max_cycles,
            self.stuck_vaults.len()
        )
    }
}

impl std::error::Error for SimTimeout {}

/// Result of running a program to completion.
///
/// `PartialEq` compares every counter and energy term exactly (f64 equality
/// included): two reports are equal only when the runs were bit-identical,
/// which is what the engine-equivalence and serve-pool determinism tests
/// assert.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionReport {
    /// Wall-clock cycles until machine-wide quiescence.
    pub cycles: u64,
    /// Summed per-vault statistics.
    pub stats: VaultStats,
    /// Summed DRAM command counters.
    pub bank_stats: ipim_dram::BankStats,
    /// Summed row-buffer locality counters.
    pub locality: ipim_dram::RowLocality,
    /// Energy broken down by component.
    pub energy: EnergyBook,
    /// Number of vaults that executed the program.
    pub vaults: usize,
    /// Total PEs in the simulated machine.
    pub pes: usize,
}

impl ExecutionReport {
    /// Runtime in seconds at the 1 GHz clock.
    pub fn seconds(&self) -> f64 {
        self.cycles as f64 * 1e-9
    }

    /// Aggregate DRAM bytes moved (16 B per access).
    pub fn dram_bytes(&self) -> u64 {
        (self.bank_stats.reads + self.bank_stats.writes) * ACCESS_BYTES as u64
    }

    /// Achieved DRAM bandwidth in GB/s.
    pub fn dram_bandwidth_gbs(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.dram_bytes() as f64 / self.cycles as f64
        }
    }
}

/// The simulated iPIM machine.
#[derive(Debug, Clone)]
pub struct Machine {
    config: MachineConfig,
    energy_params: EnergyParams,
    vaults: Vec<Vault>,
    meshes: Vec<Mesh<NetMsg>>,
    mesh_shape: (u8, u8),
    serdes: VecDeque<(u64, usize, InMsg)>, // (deliver_at, global vault, msg)
    serdes_bits: u64,
    now: u64,
    next_packet: u64,
    barrier_release_at: Option<u64>,
    tracer: Tracer,
    comp_engine: CompId,
    comp_serdes: CompId,
}

impl Machine {
    /// Builds a machine from `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`MachineConfig::validate`]).
    pub fn new(config: MachineConfig) -> Self {
        config.validate().unwrap_or_else(|e| panic!("invalid machine config: {e}"));
        let mut vaults = Vec::with_capacity(config.total_vaults());
        for cube in 0..config.cubes {
            for vault in 0..config.vaults_per_cube {
                vaults.push(Vault::new(VaultId { cube, vault }, &config));
            }
        }
        let width = (config.vaults_per_cube as f64).sqrt().ceil() as u8;
        let width = width.max(1);
        let height = (config.vaults_per_cube as u8).div_ceil(width);
        let meshes = (0..config.cubes)
            .map(|_| Mesh::new(MeshConfig { width, height, queue_capacity: 8 }))
            .collect();
        Self {
            config,
            energy_params: EnergyParams::default(),
            vaults,
            meshes,
            mesh_shape: (width, height),
            serdes: VecDeque::new(),
            serdes_bits: 0,
            now: 0,
            next_packet: 0,
            barrier_release_at: None,
            tracer: Tracer::default(),
            comp_engine: CompId::default(),
            comp_serdes: CompId::default(),
        }
    }

    /// Wires `sink` through every instrumented component — the cycle
    /// engine, the SERDES gateway, each cube's mesh routers, and each
    /// vault's control core, memory controllers, and banks — and returns
    /// the registry mapping component ids to hierarchical paths (e.g.
    /// `cube0/vault3/pg1/bank2`).
    ///
    /// Components register in deterministic machine-construction order, so
    /// two identically configured runs assign identical ids — the property
    /// the engine-equivalence tests rely on when comparing event streams.
    /// Call before [`run`](Self::run); without a call, every tracer stays
    /// detached and emit sites cost a single branch.
    pub fn attach_trace(&mut self, sink: SharedSink) -> CompRegistry {
        let tracer = Tracer::attached(sink);
        let mut registry = CompRegistry::default();
        self.comp_engine = registry.register("machine/engine");
        self.comp_serdes = registry.register("machine/serdes");
        let (w, _) = self.mesh_shape;
        for (c, mesh) in self.meshes.iter_mut().enumerate() {
            let comps = (0..mesh.config().width as usize * mesh.config().height as usize)
                .map(|i| {
                    registry.register(&format!(
                        "cube{c}/router{}_{}",
                        i % w as usize,
                        i / w as usize
                    ))
                })
                .collect();
            mesh.attach_trace(tracer.clone(), comps);
        }
        for v in &mut self.vaults {
            let id = v.id();
            let prefix = format!("cube{}/vault{}", id.cube, id.vault);
            v.attach_trace(&tracer, &mut registry, &prefix);
        }
        self.tracer = tracer;
        registry
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Overrides the energy constants (defaults are Table III).
    pub fn set_energy_params(&mut self, params: EnergyParams) {
        self.energy_params = params;
    }

    /// Current simulation time in cycles.
    pub fn now(&self) -> u64 {
        self.now
    }

    fn vault_index(&self, cube: usize, vault: usize) -> usize {
        assert!(cube < self.config.cubes && vault < self.config.vaults_per_cube);
        cube * self.config.vaults_per_cube + vault
    }

    fn node_of(&self, vault: usize) -> NodeId {
        NodeId {
            x: (vault % self.mesh_shape.0 as usize) as u8,
            y: (vault / self.mesh_shape.0 as usize) as u8,
        }
    }

    /// Access a vault (host upload / inspection).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn vault(&self, cube: usize, vault: usize) -> &Vault {
        &self.vaults[self.vault_index(cube, vault)]
    }

    /// Mutable access to a vault.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn vault_mut(&mut self, cube: usize, vault: usize) -> &mut Vault {
        let i = self.vault_index(cube, vault);
        &mut self.vaults[i]
    }

    /// Loads the same program into every vault (the SPMD model: per-vault
    /// behaviour differentiates through the identity registers A0–A3).
    pub fn load_program_all(&mut self, program: &Program) {
        for v in &mut self.vaults {
            v.load_program(program.clone());
        }
    }

    /// Runs until machine-wide quiescence or `max_cycles`.
    ///
    /// # Errors
    ///
    /// Returns [`SimTimeout`] if the machine does not quiesce in time (which
    /// usually indicates a barrier mismatch or an infinite loop in the
    /// program).
    pub fn run(&mut self, max_cycles: u64) -> Result<ExecutionReport, SimTimeout> {
        let deadline = self.now + max_cycles;
        // `quiet_streak` counts consecutive cycles with no observable work;
        // while work happens, ticking again is almost certainly cheaper than
        // computing the machine-wide event bound, and a single quiet cycle
        // sandwiched between busy ones (a bursting memory controller, say)
        // would waste the probe too. Only a second consecutive quiet cycle
        // triggers the skip-ahead probe. The counter is a pure scheduling
        // heuristic: it decides *when* to look for a jump, never whether one
        // is sound.
        let mut quiet_streak = 0u32;
        while !self.quiesced() {
            if self.now >= deadline {
                let stuck = self
                    .vaults
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| !v.is_halted())
                    .map(|(i, _)| i)
                    .collect();
                return Err(SimTimeout { max_cycles, stuck_vaults: stuck });
            }
            match self.config.engine {
                Engine::Legacy => {
                    self.tick();
                }
                // The machine API is bit-exact by contract: when a Machine
                // is driven directly under `Engine::Analytic`, run with the
                // skip-ahead semantics. The analytic *prediction* path lives
                // in `crate::analytic::predict` and never builds a Machine.
                Engine::SkipAhead | Engine::Analytic if quiet_streak < 2 => {
                    quiet_streak = if self.tick() { 0 } else { quiet_streak + 1 };
                }
                Engine::SkipAhead | Engine::Analytic => {
                    // Advance directly to the earliest cycle any component
                    // can act. A bound of `now` (or an event already due)
                    // means this cycle is live: fall back to a real tick.
                    // With no event at all (a wedged machine) skip straight
                    // to the deadline so the timeout path stays identical.
                    let target = self.next_event().unwrap_or(deadline).min(deadline);
                    if target > self.now {
                        let delta = target - self.now;
                        self.tracer
                            .emit(self.now, self.comp_engine, || TraceEvent::SkipWindow { delta });
                        for v in &mut self.vaults {
                            v.skip(self.now, delta);
                        }
                        self.now = target;
                        quiet_streak = 0;
                    } else {
                        quiet_streak = if self.tick() { 0 } else { quiet_streak + 1 };
                    }
                }
            }
        }
        Ok(self.report())
    }

    /// Sound lower bound on the next cycle `>= now` at which [`tick`]
    /// (Self::tick) can change machine state: the minimum over the SERDES
    /// head-of-queue delivery, the pending barrier release, and every mesh's
    /// and vault's own bound. `None` means the machine is fully quiescent.
    fn next_event(&self) -> Option<u64> {
        let now = self.now;
        let mut t = u64::MAX;
        // Deliveries only ever pop from the SERDES queue head, so the head's
        // timestamp (not the queue minimum) is the next delivery.
        if let Some(&(at, _, _)) = self.serdes.front() {
            t = t.min(at.max(now));
        }
        if let Some(at) = self.barrier_release_at {
            t = t.min(at.max(now));
        }
        for m in &self.meshes {
            if let Some(e) = m.next_event(now) {
                t = t.min(e);
            }
        }
        for v in &self.vaults {
            if t <= now {
                // Already clamped to `now`; later vaults cannot lower it.
                return Some(now);
            }
            if let Some(e) = v.next_event(now) {
                t = t.min(e);
            }
        }
        if t == u64::MAX {
            None
        } else {
            Some(t)
        }
    }

    fn quiesced(&self) -> bool {
        self.vaults.iter().all(Vault::is_halted)
            && self.meshes.iter().all(Mesh::is_idle)
            && self.serdes.is_empty()
    }

    /// Advances the whole machine one cycle.
    ///
    /// Returns whether the cycle did observable work anywhere in the
    /// machine. The skip-ahead engine only computes [`next_event`]
    /// (Self::next_event) after a quiet cycle — a heuristic, so a
    /// pessimistic `true` is always safe.
    pub fn tick(&mut self) -> bool {
        let now = self.now;
        let mut progress = false;

        // 1. SERDES deliveries.
        while self.serdes.front().is_some_and(|e| e.0 <= now) {
            let (_, v, msg) = self.serdes.pop_front().expect("front checked");
            self.vaults[v].deliver(msg, now);
            progress = true;
        }

        // 2. Mesh deliveries.
        for cube in 0..self.meshes.len() {
            for packet in self.meshes[cube].tick(now) {
                progress = true;
                let vault_local =
                    packet.dst.y as usize * self.mesh_shape.0 as usize + packet.dst.x as usize;
                let v = cube * self.config.vaults_per_cube + vault_local;
                let msg = match packet.payload {
                    NetMsg::Fwd { origin, target, dram_addr, tag } => InMsg::ServeReq {
                        origin,
                        pg: target.pg as usize,
                        pe: target.pe as usize,
                        dram_addr,
                        tag,
                    },
                    NetMsg::Resp { tag } => InMsg::ReqDone { tag },
                };
                self.vaults[v].deliver(msg, now);
            }
        }

        // 3. Vault execution.
        for v in &mut self.vaults {
            progress |= v.tick(now);
        }

        // 4. Functional fills for newly issued remote requests: snapshot the
        // remote value now and write it into the requester's VSM (programs
        // separate producer and consumer phases with `sync`, so this is
        // sequentially consistent; see vault module docs).
        for vi in 0..self.vaults.len() {
            for (_tag, target, dram_addr, vsm_addr) in self.vaults[vi].take_pending_req_fills() {
                let src = self.vault_index(target.chip as usize, target.vault as usize);
                let data = self.vaults[src].read_bank16(
                    target.pg as usize,
                    target.pe as usize,
                    dram_addr & !(ACCESS_BYTES as u32 - 1),
                );
                self.vaults[vi].fill_vsm(vsm_addr, data);
            }
        }

        // 5. Route outboxes.
        for vi in 0..self.vaults.len() {
            for msg in self.vaults[vi].take_outbox() {
                self.route(vi, msg, now);
                progress = true;
            }
        }

        // 6. Barrier coordination.
        progress |= self.coordinate_barrier(now);

        self.now += 1;
        // Flits still in flight keep the machine hot even on cycles where
        // none crossed a hop boundary (e.g. all blocked on back-pressure).
        progress || self.meshes.iter().any(|m| !m.is_idle())
    }

    fn route(&mut self, from: usize, msg: OutMsg, now: u64) {
        match msg {
            OutMsg::ReqForward { origin, target, dram_addr, tag } => {
                let dst_global = self.vault_index(target.chip as usize, target.vault as usize);
                let payload = NetMsg::Fwd { origin, target, dram_addr, tag };
                self.send(from, dst_global, payload, 16, now);
            }
            OutMsg::ReqResponse { origin, tag } => {
                let dst_global = self.vault_index(origin.cube, origin.vault);
                self.send(from, dst_global, NetMsg::Resp { tag }, ACCESS_BYTES as u32, now);
            }
        }
    }

    fn send(&mut self, from: usize, to: usize, payload: NetMsg, bytes: u32, now: u64) {
        let from_cube = from / self.config.vaults_per_cube;
        let to_cube = to / self.config.vaults_per_cube;
        if from_cube == to_cube {
            let packet = Packet {
                id: PacketId(self.next_packet),
                src: self.node_of(from % self.config.vaults_per_cube),
                dst: self.node_of(to % self.config.vaults_per_cube),
                bytes,
                payload,
            };
            self.next_packet += 1;
            // The mesh applies back-pressure; a vault NIC with a full local
            // queue simply retries next cycle. We retry by requeueing
            // through the serdes path with a one-cycle delay to keep the
            // simulator deadlock-free.
            if !self.meshes[from_cube].inject(packet.clone(), now) {
                let msg = to_in_msg(packet.payload);
                self.serdes.push_back((now + 1, to, msg));
            }
        } else {
            // Inter-cube: fixed SERDES + remote-mesh-diameter latency
            // (detailed per-hop routing is modelled intra-cube, where >98 %
            // of traffic lives; see DESIGN.md).
            self.serdes_bits += bytes as u64 * 8;
            self.tracer.emit(now, self.comp_serdes, || TraceEvent::SerdesSend { bytes });
            let diameter = (self.mesh_shape.0 + self.mesh_shape.1) as u64;
            let at = now + SERDES_LATENCY + diameter;
            self.serdes.push_back((at, to, to_in_msg(payload)));
            // Keep the queue sorted by delivery time (we only ever push
            // near-future events, so this stays cheap).
            let mut v: Vec<_> = self.serdes.drain(..).collect();
            v.sort_by_key(|e| e.0);
            self.serdes = v.into();
        }
    }

    /// Returns whether barrier state changed this cycle.
    fn coordinate_barrier(&mut self, now: u64) -> bool {
        if let Some(at) = self.barrier_release_at {
            if now >= at {
                for v in &mut self.vaults {
                    v.release_barrier(now);
                }
                self.barrier_release_at = None;
                return true;
            }
            return false;
        }
        let mut waiting = 0;
        let mut running = 0;
        let mut phase: Option<u32> = None;
        for v in &self.vaults {
            if let Some(p) = v.at_barrier() {
                waiting += 1;
                match phase {
                    None => phase = Some(p),
                    Some(q) => {
                        assert_eq!(p, q, "vaults waiting at different sync phases: program bug")
                    }
                }
            } else if !v.is_halted() {
                running += 1;
            }
        }
        if waiting > 0 && running == 0 {
            // All participating vaults reached the barrier: master vault
            // gathers slave signals and broadcasts proceed (Sec. IV-D) —
            // two mesh traversals plus bookkeeping.
            let diameter = (self.mesh_shape.0 + self.mesh_shape.1) as u64;
            self.barrier_release_at = Some(now + 2 * diameter + 4);
            return true;
        }
        false
    }

    /// Summed DRAM command and row-locality counters across every bank.
    fn dram_totals(&self) -> (ipim_dram::BankStats, ipim_dram::RowLocality) {
        let mut bank_stats = ipim_dram::BankStats::default();
        let mut locality = ipim_dram::RowLocality::default();
        for v in &self.vaults {
            for mc in &v.mcs {
                let b = mc.total_bank_stats();
                bank_stats.acts += b.acts;
                bank_stats.pres += b.pres;
                bank_stats.reads += b.reads;
                bank_stats.writes += b.writes;
                bank_stats.refs += b.refs;
                locality.row_hits += mc.locality.row_hits;
                locality.row_misses += mc.locality.row_misses;
                locality.row_conflicts += mc.locality.row_conflicts;
            }
        }
        (bank_stats, locality)
    }

    /// Builds the final execution report (also usable mid-run).
    pub fn report(&self) -> ExecutionReport {
        let mut stats = VaultStats::default();
        for v in &self.vaults {
            stats.absorb(&v.stats);
        }
        let (bank_stats, locality) = self.dram_totals();
        let max_cycles = stats.cycles;
        let energy = self.energy(&stats, &bank_stats, max_cycles);
        ExecutionReport {
            cycles: max_cycles,
            stats,
            bank_stats,
            locality,
            energy,
            vaults: self.vaults.len(),
            pes: self.config.total_pes(),
        }
    }

    /// Snapshots every counter in the machine into a fresh metrics
    /// registry, under the same hierarchical paths the trace uses
    /// (per-vault `cube{c}/vault{v}/...`, per-cube mesh counters, and a
    /// `machine/...` aggregate). Deterministic for a deterministic run, so
    /// the engine-equivalence tests compare whole registries.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::default();
        reg.counter_add("machine/cycles", self.now);
        reg.counter_add("machine/serdes_bits", self.serdes_bits);
        for (c, mesh) in self.meshes.iter().enumerate() {
            let s = mesh.total_stats();
            reg.counter_add(&format!("cube{c}/mesh/flits_forwarded"), s.flits_forwarded);
            reg.counter_add(&format!("cube{c}/mesh/credit_stalls"), s.stall_cycles);
            reg.counter_add(&format!("cube{c}/mesh/flit_hops"), mesh.flit_hops());
        }
        let mut total = VaultStats::default();
        for v in &self.vaults {
            let id = v.id();
            let prefix = format!("cube{}/vault{}", id.cube, id.vault);
            v.stats.record_into(&mut reg, &prefix);
            reg.histogram_observe("machine/vault_cycles", v.stats.cycles);
            total.absorb(&v.stats);
        }
        total.record_into(&mut reg, "machine/total");
        let (bank, locality) = self.dram_totals();
        reg.counter_add("dram/acts", bank.acts);
        reg.counter_add("dram/pres", bank.pres);
        reg.counter_add("dram/reads", bank.reads);
        reg.counter_add("dram/writes", bank.writes);
        reg.counter_add("dram/refs", bank.refs);
        reg.counter_add("dram/row_hits", locality.row_hits);
        reg.counter_add("dram/row_misses", locality.row_misses);
        reg.counter_add("dram/row_conflicts", locality.row_conflicts);
        reg
    }

    fn energy(
        &self,
        stats: &VaultStats,
        bank_stats: &ipim_dram::BankStats,
        cycles: u64,
    ) -> EnergyBook {
        let noc_hops = self.meshes.iter().map(Mesh::flit_hops).sum::<u64>();
        compose_energy(
            &self.energy_params,
            &self.config,
            stats,
            bank_stats,
            cycles,
            noc_hops,
            self.serdes_bits,
            self.vaults.len(),
        )
    }
}

/// Composes an [`EnergyBook`] from counters — the single Table III energy
/// formula, shared by the cycle engines (via [`Machine::report`]) and the
/// analytic predictor (`crate::analytic`), so the two tiers can never
/// diverge on how counters turn into picojoules.
#[allow(clippy::too_many_arguments)]
pub(crate) fn compose_energy(
    p: &EnergyParams,
    config: &MachineConfig,
    stats: &VaultStats,
    bank_stats: &ipim_dram::BankStats,
    cycles: u64,
    noc_hops: u64,
    serdes_bits: u64,
    n_vaults: usize,
) -> EnergyBook {
    let n_banks = config.total_vaults() * config.pes_per_vault();
    let dram = ipim_dram::DramEnergy::from_stats(bank_stats, &p.dram, cycles, n_banks);
    let bits = 128.0;
    EnergyBook {
        dram,
        simd_pj: stats.simd_ops as f64 * p.simd_pj,
        int_alu_pj: stats.int_alu_ops as f64 * p.int_alu_pj,
        addr_rf_pj: stats.addr_rf_accesses as f64 * p.addr_rf_pj,
        data_rf_pj: stats.data_rf_accesses as f64 * p.data_rf_pj,
        pgsm_pj: stats.pgsm_accesses as f64 * p.pgsm_pj,
        vsm_pj: stats.vsm_accesses as f64 * p.vsm_pj,
        pe_bus_pj: stats.dram_accesses as f64 * bits * p.pe_bus_pj_per_bit,
        tsv_pj: stats.tsv_transfers as f64 * bits * p.tsv_pj_per_bit,
        noc_pj: noc_hops as f64 * bits * p.noc_pj_per_bit_hop,
        serdes_pj: serdes_bits as f64 * p.serdes_pj_per_bit,
        // mW × ns = pJ; one control core per vault.
        ctrl_core_pj: p.ctrl_core_mw * cycles as f64 * n_vaults as f64,
    }
}

fn to_in_msg(payload: NetMsg) -> InMsg {
    match payload {
        NetMsg::Fwd { origin, target, dram_addr, tag } => InMsg::ServeReq {
            origin,
            pg: target.pg as usize,
            pe: target.pe as usize,
            dram_addr,
            tag,
        },
        NetMsg::Resp { tag } => InMsg::ReqDone { tag },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MachineConfig;

    #[test]
    fn empty_machine_quiesces_immediately() {
        let mut m = Machine::new(MachineConfig::vault_slice(1));
        let report = m.run(10).expect("nothing to do");
        assert_eq!(report.stats.issued, 0);
        assert_eq!(report.vaults, 1);
        assert_eq!(report.pes, 32);
    }

    #[test]
    fn report_bandwidth_of_idle_machine_is_zero() {
        let m = Machine::new(MachineConfig::vault_slice(1));
        let report = m.report();
        assert_eq!(report.dram_bytes(), 0);
        assert_eq!(report.dram_bandwidth_gbs(), 0.0);
    }

    #[test]
    fn mesh_shape_covers_all_vaults() {
        // 16 vaults -> 4x4 mesh; 3 vaults -> 2x2 (one idle node is fine).
        let m = Machine::new(MachineConfig::default());
        assert_eq!(m.mesh_shape, (4, 4));
        let m3 = Machine::new(MachineConfig::vault_slice(3));
        assert!(m3.mesh_shape.0 as usize * m3.mesh_shape.1 as usize >= 3);
    }

    #[test]
    fn node_mapping_is_injective() {
        let m = Machine::new(MachineConfig::default());
        let mut seen = std::collections::HashSet::new();
        for v in 0..16 {
            assert!(seen.insert(m.node_of(v)), "vault {v} collides");
        }
    }

    #[test]
    #[should_panic(expected = "invalid machine config")]
    fn invalid_config_rejected_at_construction() {
        let _ = Machine::new(MachineConfig { cubes: 0, ..MachineConfig::default() });
    }

    #[test]
    fn sim_timeout_formats() {
        let t = SimTimeout { max_cycles: 7, stuck_vaults: vec![0, 3] };
        let s = t.to_string();
        assert!(s.contains('7') && s.contains('2'), "{s}");
    }
}
