//! Machine configuration (paper Table III).

use ipim_dram::{AddressMap, DramTiming, PagePolicy, SchedPolicy};

/// Where the compute logic sits relative to the DRAM banks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// iPIM: compute logic beside each bank on the PIM dies (near-bank).
    #[default]
    NearBank,
    /// Process-on-base-die baseline: all PE logic on the base logic die, so
    /// every bank access crosses the vault's shared TSVs (paper Sec. VII-C1).
    BaseDie,
}

/// Which cycle engine [`Machine::run`](crate::Machine::run) uses.
///
/// The two [`Fidelity::BitExact`] engines produce bit-identical results
/// (cycles, statistics, energy, bank contents) — `tests/engine_equivalence.rs`
/// enforces this across the full workload suite. The legacy engine exists
/// for differential testing and as the reference semantics. The analytic
/// engine is the third tier: an [`Fidelity::Approximate`] model
/// ([`crate::analytic::predict`]) that predicts a run's report without
/// simulating — callers must check [`Engine::fidelity`] before treating its
/// output as ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Tick every component every cycle (the reference semantics).
    Legacy,
    /// Advance time directly to the next scheduled event when every
    /// component proves itself quiescent via its `next_event` bound,
    /// replaying per-cycle accounting (stall/busy/idle counters) in bulk.
    #[default]
    SkipAhead,
    /// Predict cycles/energy from one analytic walk of the instruction
    /// stream ([`crate::analytic`]) without simulating. Approximate:
    /// results carry bounded, continuously-measured error vs `SkipAhead`
    /// and produce no output image. Driving [`Machine::run`]
    /// (crate::Machine::run) directly with this engine falls back to
    /// `SkipAhead` semantics (the machine API is bit-exact by contract);
    /// `ipim_core::Session::simulate` is the analytic entry point.
    Analytic,
}

/// How much a result from an [`Engine`] can be trusted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Cycle-exact: bit-identical cycles, statistics, energy and output
    /// across engines of this fidelity.
    BitExact,
    /// Modelled: cycles/energy carry a measured error envelope and the
    /// output image is not computed.
    Approximate,
}

impl Fidelity {
    /// Canonical report spelling (`"bit_exact"` / `"approximate"`).
    pub fn name(self) -> &'static str {
        match self {
            Fidelity::BitExact => "bit_exact",
            Fidelity::Approximate => "approximate",
        }
    }
}

impl Engine {
    /// The fidelity class of results this engine produces.
    pub fn fidelity(self) -> Fidelity {
        match self {
            Engine::Legacy | Engine::SkipAhead => Fidelity::BitExact,
            Engine::Analytic => Fidelity::Approximate,
        }
    }
}

/// Trace-capture configuration.
///
/// Tracing defaults to off; a disabled config leaves every instrumented
/// component with a detached [`Tracer`](ipim_trace::Tracer), whose emit
/// path is a single branch (see `crates/trace` docs for the overhead
/// contract). `ipim_core::Session` reads this to decide whether to wire a
/// ring sink through the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Whether to capture structured trace events during the run.
    pub enabled: bool,
    /// Ring-buffer capacity in records; the oldest records are evicted
    /// once the buffer fills (the `dropped` count in the capture reports
    /// how many).
    pub ring_capacity: usize,
    /// Keep 1-in-`sample_every` records (0 or 1 keeps everything). Large
    /// multi-cube machines emit far more events than any practical ring
    /// holds; sampling trades per-record fidelity for a statistically
    /// representative capture instead of silently keeping only the tail.
    pub sample_every: u64,
    /// Seed for the sampling decision PRNG (simkit xoshiro256++), so a
    /// sampled capture is reproducible run-to-run.
    pub sample_seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self { enabled: false, ring_capacity: 1 << 20, sample_every: 0, sample_seed: 0 }
    }
}

/// Functional-unit and interconnect latencies in cycles (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyParams {
    /// FP/INT SIMD add or subtract.
    pub add: u64,
    /// SIMD multiply.
    pub mul: u64,
    /// SIMD multiply-accumulate.
    pub mac: u64,
    /// SIMD logical operation (also min/max/compare/convert).
    pub logic: u64,
    /// SIMD divide (extension; two dependent multiplies' worth).
    pub div: u64,
    /// AddrRF / DataRF access.
    pub rf: u64,
    /// PGSM access.
    pub pgsm: u64,
    /// VSM access.
    pub vsm: u64,
    /// PE-internal bus hop.
    pub pe_bus: u64,
    /// TSV crossing.
    pub tsv: u64,
    /// NoC hop.
    pub noc_hop: u64,
    /// Taken-branch refetch penalty at the control core.
    pub branch_penalty: u64,
}

impl Default for LatencyParams {
    fn default() -> Self {
        Self {
            add: 4,
            mul: 5,
            mac: 8,
            logic: 1,
            div: 10,
            rf: 1,
            pgsm: 1,
            vsm: 1,
            pe_bus: 1,
            tsv: 1,
            noc_hop: 1,
            branch_penalty: 2,
        }
    }
}

/// Full machine shape and policy configuration.
///
/// The default is the paper's Table III machine: 8 cubes × 16 vaults ×
/// 8 process groups × 4 process engines, 64-entry instruction queue,
/// 16-entry DRAM request queue, 64-entry register files, 8 KiB PGSM and
/// 256 KiB VSM.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Number of 3D-stacked cubes.
    pub cubes: usize,
    /// Vaults per cube.
    pub vaults_per_cube: usize,
    /// Process groups (PIM dies) per vault.
    pub pgs_per_vault: usize,
    /// Process engines (banks) per process group.
    pub pes_per_pg: usize,
    /// Issued-instruction-queue entries in each control core.
    pub inst_queue: usize,
    /// DRAM request queue entries in each PG memory controller.
    pub dram_req_queue: usize,
    /// DataRF entries per PE (each 128 bits).
    pub data_rf_entries: usize,
    /// AddrRF entries per PE (each 32 bits).
    pub addr_rf_entries: usize,
    /// CtrlRF entries in the control core.
    pub ctrl_rf_entries: usize,
    /// PGSM bytes per process group.
    pub pgsm_bytes: u32,
    /// VSM bytes per vault.
    pub vsm_bytes: u32,
    /// DRAM bank geometry.
    pub bank: AddressMap,
    /// DRAM timing.
    pub timing: DramTiming,
    /// Row-buffer policy (paper default: open page).
    pub page_policy: PagePolicy,
    /// DRAM scheduling policy (paper default: FR-FCFS).
    pub sched_policy: SchedPolicy,
    /// Near-bank (iPIM) or base-die (PonB) compute placement.
    pub placement: Placement,
    /// Functional-unit latencies.
    pub latency: LatencyParams,
    /// Whether DRAM refresh is simulated.
    pub refresh: bool,
    /// Cycle-engine selection (skip-ahead by default; legacy for
    /// differential testing).
    pub engine: Engine,
    /// Structured trace capture (off by default).
    pub trace: TraceConfig,
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self {
            cubes: 8,
            vaults_per_cube: 16,
            pgs_per_vault: 8,
            pes_per_pg: 4,
            inst_queue: 64,
            dram_req_queue: 16,
            data_rf_entries: 64,
            addr_rf_entries: 64,
            ctrl_rf_entries: 32,
            pgsm_bytes: 8 * 1024,
            vsm_bytes: 256 * 1024,
            bank: AddressMap::default(),
            timing: DramTiming::default(),
            page_policy: PagePolicy::Open,
            sched_policy: SchedPolicy::FrFcfs,
            placement: Placement::NearBank,
            latency: LatencyParams::default(),
            refresh: true,
            engine: Engine::default(),
            trace: TraceConfig::default(),
        }
    }
}

impl MachineConfig {
    /// A reduced machine for fast simulation: one cube slice of `vaults`
    /// vaults with the full per-vault resources. Used by tests and the
    /// scaled experiments (see DESIGN.md §2 on lockstep scale-out).
    pub fn vault_slice(vaults: usize) -> Self {
        Self { cubes: 1, vaults_per_cube: vaults, ..Self::default() }
    }

    /// PEs per vault — the SIMB mask width (default 32).
    pub fn pes_per_vault(&self) -> usize {
        self.pgs_per_vault * self.pes_per_pg
    }

    /// Total PEs in the machine (default 4096).
    pub fn total_pes(&self) -> usize {
        self.cubes * self.vaults_per_cube * self.pes_per_vault()
    }

    /// Total vaults in the machine.
    pub fn total_vaults(&self) -> usize {
        self.cubes * self.vaults_per_cube
    }

    /// Peak aggregate bank bandwidth in bytes/cycle.
    ///
    /// Near-bank: every PE can move 16 B/cycle from its bank. Base-die: all
    /// traffic in a vault crosses its shared TSV bundle (16 B/cycle/vault) —
    /// the ~10× gap the paper reports (Sec. VII-C1, with ~32 PEs/vault the
    /// raw ratio is 32; queuing brings the realized gap to ~10×).
    pub fn peak_bank_bytes_per_cycle(&self) -> u64 {
        match self.placement {
            Placement::NearBank => (self.total_pes() * 16) as u64,
            Placement::BaseDie => (self.total_vaults() * 16) as u64,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.cubes == 0
            || self.vaults_per_cube == 0
            || self.pgs_per_vault == 0
            || self.pes_per_pg == 0
        {
            return Err("machine dimensions must be non-zero".into());
        }
        if self.pes_per_vault() > 64 {
            return Err(format!(
                "{} PEs per vault exceeds the 64-bit SIMB mask",
                self.pes_per_vault()
            ));
        }
        if self.data_rf_entries > 256 || self.addr_rf_entries > 256 || self.ctrl_rf_entries > 256 {
            return Err("register files are limited to 256 entries (8-bit names)".into());
        }
        if self.pgsm_bytes == 0 || self.vsm_bytes == 0 {
            return Err("scratchpads must be non-empty".into());
        }
        if self.inst_queue == 0 || self.dram_req_queue == 0 {
            return Err("queues must be non-empty".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table3() {
        let c = MachineConfig::default();
        assert_eq!(c.cubes, 8);
        assert_eq!(c.vaults_per_cube, 16);
        assert_eq!(c.pgs_per_vault, 8);
        assert_eq!(c.pes_per_pg, 4);
        assert_eq!(c.pes_per_vault(), 32);
        assert_eq!(c.total_pes(), 4096);
        assert_eq!(c.inst_queue, 64);
        assert_eq!(c.dram_req_queue, 16);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn near_bank_bandwidth_dwarfs_base_die() {
        let near = MachineConfig::default();
        let ponb = MachineConfig { placement: Placement::BaseDie, ..MachineConfig::default() };
        assert_eq!(near.peak_bank_bytes_per_cycle() / ponb.peak_bank_bytes_per_cycle(), 32);
    }

    #[test]
    fn vault_slice_shrinks_machine() {
        let c = MachineConfig::vault_slice(2);
        assert_eq!(c.total_vaults(), 2);
        assert_eq!(c.pes_per_vault(), 32);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_oversized_mask() {
        let c = MachineConfig { pgs_per_vault: 20, ..MachineConfig::default() };
        assert!(c.validate().is_err());
        let c = MachineConfig { cubes: 0, ..MachineConfig::default() };
        assert!(c.validate().is_err());
        let c = MachineConfig { inst_queue: 0, ..MachineConfig::default() };
        assert!(c.validate().is_err());
    }
}
