//! One vault: a decoupled control core on the base logic die driving the
//! SIMB-parallel process engines on the PIM dies (paper Sec. IV-B).
//!
//! Functional semantics execute *at issue* (issue is sequential and the
//! Issued-Inst-Queue hazard interlock guarantees operands are final), while
//! timing is shadowed by per-PE functional-unit queues, the per-PG memory
//! controllers, and the shared TSV arbiter. This "execute-at-issue,
//! timing-shadow" split is exact for hazard-free in-order machines and keeps
//! the simulator fast.

use std::collections::{HashMap, VecDeque};

use ipim_dram::{AccessKind, Bank, Completion, MemController, Request, RequestId, ACCESS_BYTES};
use ipim_isa::{
    AddrOperand, ArfSrc, Category, CompMode, CompOp, CrfSrc, DataType, Instruction, Program,
    RegRef, RemoteTarget, SimbMask, ARF_CHIP_ID, ARF_PE_ID, ARF_PG_ID, ARF_VAULT_ID,
};
use ipim_trace::{CompId, CompRegistry, SpadKind, TraceEvent, Tracer};

use crate::stats::{StallReason, VaultStats};
use crate::{MachineConfig, Placement, Scratchpad};

/// Global identity of a vault within the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VaultId {
    /// Cube (chip) index.
    pub cube: usize,
    /// Vault index within the cube.
    pub vault: usize,
}

/// Message a vault sends to the machine's interconnect.
#[derive(Debug, Clone, PartialEq)]
pub enum OutMsg {
    /// Forward a remote read request to `target`'s vault.
    ReqForward {
        /// Requesting vault.
        origin: VaultId,
        /// Remote bank location to read.
        target: RemoteTarget,
        /// Byte address in the remote bank.
        dram_addr: u32,
        /// Tag matching the response to the in-flight `req`.
        tag: u64,
    },
    /// Data response back to the requesting vault.
    ReqResponse {
        /// The vault that issued the original `req`.
        origin: VaultId,
        /// Tag of the original request.
        tag: u64,
    },
}

/// Message delivered to a vault by the machine's interconnect.
#[derive(Debug, Clone, PartialEq)]
pub enum InMsg {
    /// Serve a remote read against this vault's banks.
    ServeReq {
        /// Requesting vault.
        origin: VaultId,
        /// Local process group to read from.
        pg: usize,
        /// Local PE (bank) within the process group.
        pe: usize,
        /// Byte address in the bank.
        dram_addr: u32,
        /// Tag to echo in the response.
        tag: u64,
    },
    /// A previously issued `req` completed; its data is now in the VSM.
    ReqDone {
        /// Tag of the completed request.
        tag: u64,
    },
}

/// One 128-bit DataRF entry.
pub type Vector = [u32; 4];

/// A pipelined functional unit: initiation interval of one operation per
/// cycle, completion after the operation's latency.
#[derive(Debug, Clone, Default)]
struct Unit {
    queue: VecDeque<(u64, u64)>,     // (inflight id, latency)
    in_flight: VecDeque<(u64, u64)>, // (inflight id, done_at)
    last_start: Option<u64>,
}

impl Unit {
    fn busy(&self) -> bool {
        !self.in_flight.is_empty() || !self.queue.is_empty()
    }

    /// Drains operations completing at or before `now` into `out`.
    fn complete(&mut self, now: u64, out: &mut Vec<u64>) {
        // Completions may be out of order when latencies differ; scan.
        let mut i = 0;
        while i < self.in_flight.len() {
            if self.in_flight[i].1 <= now {
                let (id, _) = self.in_flight.remove(i).expect("index checked");
                out.push(id);
            } else {
                i += 1;
            }
        }
    }

    /// Starts the next queued op if the pipeline can initiate this cycle;
    /// returns whether an op started.
    fn start(&mut self, now: u64) -> bool {
        if self.last_start == Some(now) {
            return false;
        }
        if let Some((id, lat)) = self.queue.pop_front() {
            self.in_flight.push_back((id, now + lat));
            self.last_start = Some(now);
            return true;
        }
        false
    }
}

#[derive(Debug, Clone)]
struct MemOp {
    req: Request,
}

#[derive(Debug, Clone, Default)]
struct MemUnit {
    queue: VecDeque<MemOp>,
    outstanding: usize,
}

/// One process engine: register files plus timing units.
#[derive(Debug, Clone)]
struct Pe {
    data_rf: Vec<Vector>,
    addr_rf: Vec<i32>,
    simd: Unit,
    alu: Unit,
    pgsm_port: Unit,
    vsm_port: Unit, // starts only when granted a TSV slot
    mem: MemUnit,
}

impl Pe {
    fn new(config: &MachineConfig) -> Self {
        Self {
            data_rf: vec![[0; 4]; config.data_rf_entries],
            addr_rf: vec![0; config.addr_rf_entries],
            simd: Unit::default(),
            alu: Unit::default(),
            pgsm_port: Unit::default(),
            vsm_port: Unit::default(),
            mem: MemUnit::default(),
        }
    }
}

#[derive(Debug, Clone)]
struct InFlightInst {
    pending: u32,
    reads: Vec<RegRef>,
    writes: Vec<RegRef>,
}

/// Where the PE-side work of an instruction executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DispatchUnit {
    Simd,
    Alu,
    PgsmPort,
    VsmPort,
    Mem,
}

/// Control-core + barrier state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CoreState {
    Running,
    /// Reached `sync phase` and waits for the machine-wide barrier release.
    AtBarrier(u32),
    Halted,
}

/// What the control core would do on a given cycle, computed without side
/// effects. [`Vault::try_issue`] acts on it; the skip-ahead engine uses the
/// same classification to prove a stall reason constant across a jumped
/// window, so the two can never disagree on which counter a cycle bumps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IssueDecision {
    /// Core halted: the issue stage does nothing.
    Halted,
    /// Program exhausted but in-flight work remains: no counter moves.
    Drained,
    /// Exactly one stall counter would be bumped.
    Stall(StallReason),
    /// `sync` is ready: the core would park at barrier `phase`.
    Park(u32),
    /// The instruction at `pc` would issue.
    Issue,
}

/// One vault of the iPIM machine.
#[derive(Debug, Clone)]
pub struct Vault {
    id: VaultId,
    config: MachineConfig,
    program: Program,
    pc: usize,
    state: CoreState,
    branch_bubble_until: u64,
    ctrl_rf: Vec<i32>,
    issued: HashMap<u64, InFlightInst>,
    next_inst_id: u64,
    pes: Vec<Pe>,
    pub(crate) mcs: Vec<MemController>,
    pgsms: Vec<Scratchpad>,
    vsm: Scratchpad,
    // TSV arbiter: one 128-bit slot per cycle, shared by instruction
    // broadcast and data transfers (paper Sec. IV-C).
    tsv_free: bool,
    // Completions that finish a fixed delay after their MC completion.
    delayed: Vec<(u64, u64)>, // (done_at, inst_id)
    // PonB: MC completions waiting for a TSV slot.
    ponb_wait: VecDeque<u64>, // inst ids
    // Remote requests this vault has issued, not yet answered.
    reqs_in_flight: HashMap<u64, u32 /* local vsm addr */>,
    next_req_tag: u64,
    // Remote requests this vault is serving for others.
    serving: HashMap<u64, (VaultId, u64)>, // local serve-id -> (origin, tag)
    next_serve_id: u64,
    outbox: Vec<OutMsg>,
    // Remote serves that found the MC queue full and must retry.
    pending_serves: Vec<(usize, Request)>,
    // Post-DRAM latency per outstanding MC request id.
    mem_extra: HashMap<u64, u64>,
    // (tag, target, dram_addr, vsm_addr) of reqs whose functional fill the
    // machine performs at service time.
    pending_req_fills: Vec<(u64, RemoteTarget, u32, u32)>,
    /// Execution counters.
    pub stats: VaultStats,
    halted_at: Option<u64>,
    tracer: Tracer,
    comp_core: CompId,
    // Last stall classification the issue stage reported, for
    // edge-triggered `SimbStall` emission (see `TraceEvent::SimbStall`).
    last_stall: Option<StallReason>,
}

impl Vault {
    /// Creates an idle vault with an empty program.
    pub fn new(id: VaultId, config: &MachineConfig) -> Self {
        let pes: Vec<Pe> = (0..config.pes_per_vault()).map(|_| Pe::new(config)).collect();
        let mcs = (0..config.pgs_per_vault)
            .map(|_| {
                let banks =
                    (0..config.pes_per_pg).map(|_| Bank::new(config.timing, config.bank)).collect();
                let mut mc = MemController::new(
                    banks,
                    config.timing,
                    config.dram_req_queue,
                    config.page_policy,
                    config.sched_policy,
                );
                mc.set_refresh_enabled(config.refresh);
                mc
            })
            .collect();
        let pgsms = (0..config.pgs_per_vault).map(|_| Scratchpad::new(config.pgsm_bytes)).collect();
        let mut vault = Self {
            id,
            config: config.clone(),
            program: Program::default(),
            pc: 0,
            state: CoreState::Halted,
            branch_bubble_until: 0,
            ctrl_rf: vec![0; config.ctrl_rf_entries],
            issued: HashMap::new(),
            next_inst_id: 0,
            pes,
            mcs,
            pgsms,
            vsm: Scratchpad::new(config.vsm_bytes),
            tsv_free: true,
            delayed: Vec::new(),
            ponb_wait: VecDeque::new(),
            reqs_in_flight: HashMap::new(),
            next_req_tag: 0,
            serving: HashMap::new(),
            next_serve_id: 0,
            outbox: Vec::new(),
            pending_serves: Vec::new(),
            mem_extra: HashMap::new(),
            pending_req_fills: Vec::new(),
            stats: VaultStats::default(),
            halted_at: None,
            tracer: Tracer::default(),
            comp_core: CompId::default(),
            last_stall: None,
        };
        vault.reset_identity_registers();
        vault
    }

    /// Attaches a tracer, registering this vault's components (core, one
    /// memory controller and its banks per process group) under `prefix`.
    pub(crate) fn attach_trace(
        &mut self,
        tracer: &Tracer,
        registry: &mut CompRegistry,
        prefix: &str,
    ) {
        self.tracer = tracer.clone();
        self.comp_core = registry.register(&format!("{prefix}/core"));
        for (pg, mc) in self.mcs.iter_mut().enumerate() {
            let mc_comp = registry.register(&format!("{prefix}/pg{pg}/mc"));
            let bank_comps = (0..self.config.pes_per_pg)
                .map(|b| registry.register(&format!("{prefix}/pg{pg}/bank{b}")))
                .collect();
            mc.attach_trace(tracer.clone(), mc_comp, bank_comps);
        }
    }

    fn reset_identity_registers(&mut self) {
        for pg in 0..self.config.pgs_per_vault {
            for pe in 0..self.config.pes_per_pg {
                let g = pg * self.config.pes_per_pg + pe;
                self.pes[g].addr_rf[ARF_PE_ID.index()] = pe as i32;
                self.pes[g].addr_rf[ARF_PG_ID.index()] = pg as i32;
                self.pes[g].addr_rf[ARF_VAULT_ID.index()] = self.id.vault as i32;
                self.pes[g].addr_rf[ARF_CHIP_ID.index()] = self.id.cube as i32;
            }
        }
    }

    /// This vault's machine-wide identity.
    pub fn id(&self) -> VaultId {
        self.id
    }

    /// Loads a program and resets execution state (registers and
    /// scratchpads are cleared; bank contents are preserved, matching a
    /// host that uploads data once and launches several kernels).
    pub fn load_program(&mut self, program: Program) {
        self.program = program;
        self.pc = 0;
        self.state = CoreState::Running;
        self.branch_bubble_until = 0;
        self.ctrl_rf.iter_mut().for_each(|c| *c = 0);
        self.issued.clear();
        self.delayed.clear();
        self.ponb_wait.clear();
        self.reqs_in_flight.clear();
        self.serving.clear();
        self.outbox.clear();
        self.pending_serves.clear();
        self.mem_extra.clear();
        self.pending_req_fills.clear();
        for pe in &mut self.pes {
            pe.data_rf.iter_mut().for_each(|v| *v = [0; 4]);
            pe.addr_rf.iter_mut().for_each(|v| *v = 0);
            pe.simd = Unit::default();
            pe.alu = Unit::default();
            pe.pgsm_port = Unit::default();
            pe.vsm_port = Unit::default();
            pe.mem = MemUnit::default();
        }
        self.halted_at = None;
        self.last_stall = None;
        self.reset_identity_registers();
    }

    /// Whether the control core has executed the whole program and all
    /// in-flight work (including remote serves) has drained.
    pub fn is_halted(&self) -> bool {
        matches!(self.state, CoreState::Halted)
            && self.issued.is_empty()
            && self.serving.is_empty()
            && self.mcs.iter().all(|m| m.is_idle())
    }

    /// Cycle at which the control core retired its last instruction.
    pub fn halted_at(&self) -> Option<u64> {
        self.halted_at
    }

    /// Whether the core is parked at barrier `phase`.
    pub fn at_barrier(&self) -> Option<u32> {
        match self.state {
            CoreState::AtBarrier(p) => Some(p),
            _ => None,
        }
    }

    /// Releases the vault from its barrier (machine-wide sync reached).
    pub fn release_barrier(&mut self, now: u64) {
        if matches!(self.state, CoreState::AtBarrier(_)) {
            self.state = CoreState::Running;
            self.tracer.emit(now, self.comp_core, || TraceEvent::BarrierRelease);
        }
    }

    /// Host access: bank array of (pg, pe).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn bank_array(&self, pg: usize, pe: usize) -> &ipim_dram::BankArray {
        self.mcs[pg].bank(pe).array()
    }

    /// Host access: mutable bank array of (pg, pe).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn bank_array_mut(&mut self, pg: usize, pe: usize) -> &mut ipim_dram::BankArray {
        self.mcs[pg].bank_mut(pe).array_mut()
    }

    /// Host access: a PE's DataRF (tests and debugging).
    pub fn data_rf(&self, pe: usize) -> &[Vector] {
        &self.pes[pe].data_rf
    }

    /// Host access: a PE's AddrRF (tests and debugging).
    pub fn addr_rf(&self, pe: usize) -> &[i32] {
        &self.pes[pe].addr_rf
    }

    /// Host access: the vault scratchpad.
    pub fn vsm(&mut self) -> &mut Scratchpad {
        &mut self.vsm
    }

    /// Host access: a process group's scratchpad.
    pub fn pgsm(&mut self, pg: usize) -> &mut Scratchpad {
        &mut self.pgsms[pg]
    }

    /// Delivers an interconnect message.
    pub fn deliver(&mut self, msg: InMsg, now: u64) {
        match msg {
            InMsg::ServeReq { origin, pg, pe, dram_addr, tag } => {
                let serve_id = self.next_serve_id;
                self.next_serve_id += 1;
                self.serving.insert(serve_id, (origin, tag));
                // The read is buffered in this vault's VSM before the link
                // traversal (paper Sec. IV-D): count the access.
                self.stats.vsm_accesses += 1;
                self.tracer.emit(now, self.comp_core, || TraceEvent::SpadAccess {
                    kind: SpadKind::Vsm,
                    count: 1,
                });
                let req = Request {
                    id: RequestId(REMOTE_SERVE_BASE + serve_id),
                    bank: pe,
                    addr: dram_addr & !(ACCESS_BYTES as u32 - 1),
                    kind: AccessKind::Read,
                    data: [0; ACCESS_BYTES],
                };
                // Remote serves bypass queue back-pressure modelling: the
                // NIC retries internally. If full, park it.
                if !self.mcs[pg].enqueue(req, now) {
                    self.pending_serves.push((pg, req));
                }
            }
            InMsg::ReqDone { tag } => {
                // Find the in-flight `req` with this tag and finish it.
                if let Some(_vsm_addr) = self.reqs_in_flight.remove(&tag) {
                    let inst_id = REQ_TAG_BASE + tag;
                    self.finish(inst_id);
                    self.stats.vsm_accesses += 1;
                    self.tracer.emit(now, self.comp_core, || TraceEvent::SpadAccess {
                        kind: SpadKind::Vsm,
                        count: 1,
                    });
                }
            }
        }
    }

    /// Drains queued outbound messages.
    pub fn take_outbox(&mut self) -> Vec<OutMsg> {
        std::mem::take(&mut self.outbox)
    }

    /// Advances the vault one cycle.
    ///
    /// Returns whether the cycle did observable work (an op started or
    /// completed, a request moved, an instruction issued, the core halted).
    /// The skip-ahead engine uses a `false` return as its cue to compute
    /// [`next_event`](Self::next_event) — purely a scheduling heuristic, so
    /// a pessimistic `true` is always safe.
    pub fn tick(&mut self, now: u64) -> bool {
        if self.is_halted() && self.outbox.is_empty() && self.pending_serves.is_empty() {
            return false;
        }
        self.stats.cycles += 1;
        self.tsv_free = true;
        let mut progress = false;

        // Retry parked remote serves.
        if !self.pending_serves.is_empty() {
            progress = true;
            let mut parked = std::mem::take(&mut self.pending_serves);
            parked.retain(|(pg, req)| !self.mcs[*pg].enqueue(*req, now));
            self.pending_serves = parked;
        }

        // 1. Pipelined unit completions and starts.
        let mut finished: Vec<u64> = Vec::new();
        for pe in &mut self.pes {
            for unit in [&mut pe.simd, &mut pe.alu, &mut pe.pgsm_port] {
                unit.complete(now, &mut finished);
                progress |= unit.start(now);
            }
            // VSM port needs the TSV slot to start.
            pe.vsm_port.complete(now, &mut finished);
        }
        // TSV arbitration for VSM ports: one grant per cycle, round-robin by
        // PE index (the queue order provides fairness enough for SIMB code).
        if self.tsv_free {
            for pe in &mut self.pes {
                if !pe.vsm_port.queue.is_empty() {
                    pe.vsm_port.start(now);
                    self.tsv_free = false;
                    self.stats.tsv_transfers += 1;
                    progress = true;
                    break;
                }
            }
        }

        // 2. Memory controllers. A refresh sequence steps every cycle, so
        // it keeps the vault hot: probing for a jump mid-refresh is wasted
        // work (the bound is always `now`).
        for pg in 0..self.mcs.len() {
            let completions = self.mcs[pg].tick(now);
            progress |= !completions.is_empty() || self.mcs[pg].is_refreshing();
            for c in completions {
                self.on_mc_completion(pg, c, now);
            }
        }

        // 3. Issue new DRAM requests from PE mem queues (the MC's request
        // queue provides the real back-pressure; the per-PE cap only
        // bounds bookkeeping).
        let max_outstanding = self.config.dram_req_queue.max(1);
        for g in 0..self.pes.len() {
            let pg = g / self.config.pes_per_pg;
            while self.pes[g].mem.outstanding < max_outstanding {
                let Some(op) = self.pes[g].mem.queue.front().cloned() else { break };
                if !self.mcs[pg].enqueue(op.req, now) {
                    break;
                }
                self.pes[g].mem.queue.pop_front();
                self.pes[g].mem.outstanding += 1;
                progress = true;
            }
        }

        // 4. Delayed completions (post-DRAM PE-bus / PGSM latency).
        let mut i = 0;
        while i < self.delayed.len() {
            if self.delayed[i].0 <= now {
                let (_, id) = self.delayed.swap_remove(i);
                finished.push(id);
            } else {
                i += 1;
            }
        }

        // 5. PonB: drain one TSV-blocked DRAM completion per cycle.
        if self.tsv_free {
            if let Some(id) = self.ponb_wait.pop_front() {
                self.tsv_free = false;
                self.stats.tsv_transfers += 1;
                finished.push(id);
            }
        }

        progress |= !finished.is_empty();
        for id in finished {
            self.finish(id);
        }

        // 6. Busy accounting.
        for pe in &self.pes {
            if pe.simd.busy() {
                self.stats.simd_busy += 1;
            }
            if pe.alu.busy() {
                self.stats.int_alu_busy += 1;
            }
            if pe.mem.outstanding > 0 || !pe.mem.queue.is_empty() {
                self.stats.mem_busy += 1;
            }
        }

        // 7. Control core issue.
        progress |= self.try_issue(now);

        // 8. Halt detection.
        if matches!(self.state, CoreState::Running)
            && self.pc >= self.program.len()
            && self.issued.is_empty()
        {
            self.state = CoreState::Halted;
            self.halted_at = Some(now);
            progress = true;
        }
        progress
    }

    /// Sound lower bound on the next cycle `>= now` at which [`tick`]
    /// (Self::tick) could change vault state (beyond the per-cycle counters
    /// that [`skip`](Self::skip) replays in bulk), assuming no interconnect
    /// message is delivered in between — the machine folds message arrival
    /// times into its own minimum.
    ///
    /// Contract (see DESIGN.md §"Two-engine architecture"): returning a
    /// bound earlier than the true next event is always safe; returning a
    /// later one is a bug. `None` means the vault will never act again
    /// without outside input.
    pub(crate) fn next_event(&self, now: u64) -> Option<u64> {
        // Mirror of tick()'s early return: a drained vault is clock-gated.
        if self.is_halted() && self.outbox.is_empty() && self.pending_serves.is_empty() {
            return None;
        }
        // Work that tick() acts on unconditionally forces a live tick.
        if !self.pending_serves.is_empty() || !self.outbox.is_empty() || !self.ponb_wait.is_empty()
        {
            return Some(now);
        }
        let mut t = u64::MAX;
        let max_outstanding = self.config.dram_req_queue.max(1);
        for (g, pe) in self.pes.iter().enumerate() {
            for unit in [&pe.simd, &pe.alu, &pe.pgsm_port, &pe.vsm_port] {
                if !unit.queue.is_empty() {
                    // A queued op can start on the very next tick (the VSM
                    // port always wins arbitration when nothing else moves).
                    return Some(now);
                }
                for &(_, done_at) in &unit.in_flight {
                    t = t.min(done_at);
                }
            }
            if let Some(op) = pe.mem.queue.front() {
                // The queued request moves only when the MC can take it;
                // while back-pressured (MC queue full, or the per-PE
                // outstanding cap hit) the next chance to move is an MC
                // state change — a command issue or a completion — and the
                // MC bound below covers both.
                let pg = g / self.config.pes_per_pg;
                if pe.mem.outstanding < max_outstanding && self.mcs[pg].can_accept(op.req.kind) {
                    return Some(now);
                }
            }
        }
        for &(done_at, _) in &self.delayed {
            t = t.min(done_at);
        }
        for mc in &self.mcs {
            if t <= now {
                // The bound below is clamped to `now`; nothing can lower it.
                return Some(now);
            }
            if let Some(e) = mc.next_event(now) {
                t = t.min(e);
            }
        }
        if t <= now {
            return Some(now);
        }
        // The issue stage: with every queue above empty the TSV slot is
        // provably free, so probe the decision with `tsv_free = true`.
        match self.issue_decision(now, true) {
            IssueDecision::Issue | IssueDecision::Park(_) => return Some(now),
            IssueDecision::Stall(StallReason::Branch) => t = t.min(self.branch_bubble_until),
            IssueDecision::Drained => {
                if self.issued.is_empty() {
                    // The halt transition in tick() step 8 fires this cycle.
                    return Some(now);
                }
            }
            // Remaining stalls clear only when one of the completion events
            // already folded into `t` (or a machine-level event: barrier
            // release, `ReqDone` delivery) fires.
            IssueDecision::Halted | IssueDecision::Stall(_) => {}
        }
        if t == u64::MAX {
            None
        } else {
            Some(t.max(now))
        }
    }

    /// Replays the per-cycle accounting of `delta` ticks skipped under the
    /// [`next_event`](Self::next_event) contract, covering cycles
    /// `now..now + delta`. In such a window every queue is empty and no
    /// completion fires, so each legacy tick would only have advanced the
    /// cycle counter, the busy/idle integrators, and exactly one stall
    /// counter — all replayed here in O(1) per component.
    pub(crate) fn skip(&mut self, now: u64, delta: u64) {
        if self.is_halted() && self.outbox.is_empty() && self.pending_serves.is_empty() {
            return;
        }
        self.stats.cycles += delta;
        for pe in &self.pes {
            if pe.simd.busy() {
                self.stats.simd_busy += delta;
            }
            if pe.alu.busy() {
                self.stats.int_alu_busy += delta;
            }
            if pe.mem.outstanding > 0 || !pe.mem.queue.is_empty() {
                self.stats.mem_busy += delta;
            }
        }
        for mc in &mut self.mcs {
            mc.skip_idle(delta);
        }
        // The stall classification is constant across the window: every
        // state it reads (pc, issued set, in-flight requests, barrier state,
        // branch bubble) only changes at an event `next_event` reports.
        if let IssueDecision::Stall(reason) = self.issue_decision(now, true) {
            self.stats.stalls.bump_by(reason, delta);
        }
    }

    fn on_mc_completion(&mut self, _pg: usize, c: Completion, now: u64) {
        let raw = c.id.0;
        if raw >= REMOTE_SERVE_BASE {
            // Finished serving a remote read: send the response.
            let serve_id = raw - REMOTE_SERVE_BASE;
            if let Some((origin, tag)) = self.serving.remove(&serve_id) {
                self.outbox.push(OutMsg::ReqResponse { origin, tag });
            }
            return;
        }
        let pe = (raw >> 40) as usize;
        let inst_id = raw & ((1 << 40) - 1);
        self.pes[pe].mem.outstanding -= 1;
        self.stats.dram_accesses += 1;
        // Look up the extra latency recorded at dispatch.
        let extra = self.mem_extra.remove(&raw).unwrap_or(0);
        match self.config.placement {
            Placement::BaseDie => self.ponb_wait.push_back(inst_id),
            Placement::NearBank => {
                if extra == 0 {
                    self.finish(inst_id);
                } else {
                    self.delayed.push((now + extra, inst_id));
                }
            }
        }
    }

    /// Marks one PE-side completion of instruction `inst_id`.
    fn finish(&mut self, inst_id: u64) {
        let done = if let Some(e) = self.issued.get_mut(&inst_id) {
            e.pending = e.pending.saturating_sub(1);
            e.pending == 0
        } else {
            false
        };
        if done {
            self.issued.remove(&inst_id);
        }
    }

    /// Classifies what the issue stage would do at `now`, without side
    /// effects. `tsv_free` is passed in because during a real tick the TSV
    /// slot may already have been consumed by a VSM-port grant or a PonB
    /// drain, while the skip-ahead engine only probes windows in which both
    /// are provably idle (so the slot is free).
    fn issue_decision(&self, now: u64, tsv_free: bool) -> IssueDecision {
        match self.state {
            CoreState::Halted => return IssueDecision::Halted,
            CoreState::AtBarrier(_) => return IssueDecision::Stall(StallReason::Sync),
            CoreState::Running => {}
        }
        if self.pc >= self.program.len() {
            return IssueDecision::Drained;
        }
        if now < self.branch_bubble_until {
            return IssueDecision::Stall(StallReason::Branch);
        }
        let inst = self.program.instructions()[self.pc];

        // Structural hazard: issued-inst-queue capacity.
        if self.issued.len() >= self.config.inst_queue {
            return IssueDecision::Stall(StallReason::QueueFull);
        }
        // Data hazards against in-flight instructions (paper Sec. IV-B 2).
        let reads = inst.reads();
        let writes = inst.writes();
        for e in self.issued.values() {
            let raw = reads.iter().any(|r| e.writes.contains(r));
            let war = writes.iter().any(|w| e.reads.contains(w));
            let waw = writes.iter().any(|w| e.writes.contains(w));
            if raw || war || waw {
                return IssueDecision::Stall(StallReason::Hazard);
            }
        }
        // Conservative VSM interlock: reads of the VSM wait for pending
        // remote requests (their data lands in the VSM asynchronously).
        if matches!(inst, Instruction::RdVsm { .. }) && !self.reqs_in_flight.is_empty() {
            return IssueDecision::Stall(StallReason::VsmInterlock);
        }
        // `sync` waits for the vault to quiesce, then parks at the barrier.
        if let Instruction::Sync { phase_id } = inst {
            if !self.issued.is_empty() || !self.reqs_in_flight.is_empty() {
                return IssueDecision::Stall(StallReason::Sync);
            }
            return IssueDecision::Park(phase_id);
        }
        // Broadcast instructions need this cycle's TSV slot.
        if inst.simb_mask().is_some() && !tsv_free {
            return IssueDecision::Stall(StallReason::Tsv);
        }
        IssueDecision::Issue
    }

    /// Attempts to issue the instruction at `pc`; returns whether the core
    /// made progress (issued or parked at a barrier).
    fn try_issue(&mut self, now: u64) -> bool {
        let decision = self.issue_decision(now, self.tsv_free);
        match decision {
            IssueDecision::Halted | IssueDecision::Drained => return false,
            IssueDecision::Stall(reason) => {
                self.stats.stalls.bump(reason);
                if self.last_stall != Some(reason) {
                    self.last_stall = Some(reason);
                    self.tracer.emit(now, self.comp_core, || TraceEvent::SimbStall {
                        reason: reason.name(),
                    });
                }
                return false;
            }
            IssueDecision::Park(phase_id) => {
                self.last_stall = None;
                self.state = CoreState::AtBarrier(phase_id);
                self.pc += 1;
                self.stats.issued += 1;
                self.stats.by_category.bump(Category::Synchronization);
                self.tracer
                    .emit(now, self.comp_core, || TraceEvent::BarrierEnter { phase: phase_id });
                return true;
            }
            IssueDecision::Issue => {
                self.last_stall = None;
            }
        }
        let inst = self.program.instructions()[self.pc];
        let reads = inst.reads();
        let writes = inst.writes();
        let needs_tsv = inst.simb_mask().is_some();

        // --- Issue. ---
        if needs_tsv {
            self.tsv_free = false;
            self.stats.tsv_transfers += 1;
        }
        self.stats.issued += 1;
        self.stats.by_category.bump(inst.category());
        if self.tracer.enabled() {
            let pc = self.pc as u32;
            let category = inst.category().name();
            self.tracer.emit(now, self.comp_core, || TraceEvent::SimbIssue { pc, category });
        }
        self.account_accesses(&inst, now);

        let mut next_pc = self.pc + 1;
        match inst {
            Instruction::Jump { target } => {
                next_pc = self.crf_value(target) as usize;
                self.branch_bubble_until = now + 1 + self.config.latency.branch_penalty;
            }
            Instruction::CJump { cond, target } => {
                if self.ctrl_rf[cond.index()] != 0 {
                    next_pc = self.crf_value(target) as usize;
                    self.branch_bubble_until = now + 1 + self.config.latency.branch_penalty;
                }
            }
            Instruction::CalcCrf { op, dst, src1, src2 } => {
                let b = self.crf_value(src2);
                let a = self.ctrl_rf[src1.index()];
                self.ctrl_rf[dst.index()] = op.apply(a, b);
            }
            Instruction::SetiCrf { dst, imm } => {
                self.ctrl_rf[dst.index()] = imm;
            }
            Instruction::SetiVsm { vsm_addr, imm } => {
                self.vsm.write_u32(vsm_addr, imm);
            }
            Instruction::Req { target, dram_addr, vsm_addr } => {
                let tag = self.next_req_tag;
                self.next_req_tag += 1;
                let daddr = self.crf_value(dram_addr) as u32;
                let vaddr = self.crf_value(vsm_addr) as u32;
                self.reqs_in_flight.insert(tag, vaddr);
                self.issued.insert(
                    REQ_TAG_BASE + tag,
                    InFlightInst { pending: 1, reads: vec![], writes: vec![] },
                );
                self.outbox.push(OutMsg::ReqForward {
                    origin: self.id,
                    target,
                    dram_addr: daddr,
                    tag,
                });
                self.stats.remote_reqs += 1;
                // Functional effect happens when the remote vault serves the
                // read; the VSM interlock keeps readers ordered behind it.
                self.pending_req_fills.push((tag, target, daddr, vaddr));
            }
            _ => {
                // SIMB-broadcast instruction: functional execution across
                // the masked PEs, then timing dispatch.
                let inst_id = self.next_inst_id;
                self.next_inst_id += 1;
                debug_assert!(inst_id < REQ_TAG_BASE);
                let mask = inst.simb_mask().expect("broadcast instruction");
                self.execute_functional(&inst, mask);
                let n = self.dispatch(&inst, mask, inst_id, now);
                if n > 0 {
                    self.issued.insert(inst_id, InFlightInst { pending: n, reads, writes });
                }
            }
        }
        self.pc = next_pc;
        true
    }

    fn crf_value(&self, src: CrfSrc) -> i32 {
        match src {
            CrfSrc::Imm(v) => v,
            CrfSrc::Reg(r) => self.ctrl_rf[r.index()],
        }
    }

    /// Resolves an address operand on a specific PE.
    fn resolve(&self, pe: usize, a: AddrOperand) -> u32 {
        match a {
            AddrOperand::Imm(v) => v,
            AddrOperand::Indirect(r) => self.pes[pe].addr_rf[r.index()] as u32,
        }
    }

    /// Applies the functional semantics of a broadcast instruction.
    fn execute_functional(&mut self, inst: &Instruction, mask: SimbMask) {
        let pes_per_pg = self.config.pes_per_pg;
        for g in mask.iter() {
            let pg = g / pes_per_pg;
            let pe_in_pg = g % pes_per_pg;
            match *inst {
                Instruction::Comp { op, dtype, mode, dst, src1, src2, vec_mask, .. } => {
                    let a = self.pes[g].data_rf[src1.index()];
                    let b = self.pes[g].data_rf[src2.index()];
                    let d0 = self.pes[g].data_rf[dst.index()];
                    let mut d = d0;
                    for l in 0..4 {
                        if !vec_mask.lane(l) {
                            continue;
                        }
                        let rhs = match mode {
                            CompMode::VectorVector => b[l],
                            CompMode::ScalarVector => b[0],
                        };
                        d[l] = apply_comp(op, dtype, a[l], rhs, d0[l]);
                    }
                    self.pes[g].data_rf[dst.index()] = d;
                }
                Instruction::CalcArf { op, dst, src1, src2, .. } => {
                    let a = self.pes[g].addr_rf[src1.index()];
                    let b = match src2 {
                        ArfSrc::Imm(v) => v,
                        ArfSrc::Reg(r) => self.pes[g].addr_rf[r.index()],
                    };
                    self.pes[g].addr_rf[dst.index()] = op.apply(a, b);
                }
                Instruction::Mov { to_arf, arf, drf, lane, .. } => {
                    if to_arf {
                        let v = self.pes[g].data_rf[drf.index()][lane as usize & 3];
                        self.pes[g].addr_rf[arf.index()] = v as i32;
                    } else {
                        let v = self.pes[g].addr_rf[arf.index()] as u32;
                        self.pes[g].data_rf[drf.index()][lane as usize & 3] = v;
                    }
                }
                Instruction::LdRf { dram_addr, drf, .. } => {
                    let addr = self.resolve(g, dram_addr);
                    let mut buf = [0u8; 16];
                    self.mcs[pg].bank(pe_in_pg).array().read(addr, &mut buf);
                    self.pes[g].data_rf[drf.index()] = bytes_to_vector(&buf);
                }
                Instruction::StRf { dram_addr, drf, .. } => {
                    let addr = self.resolve(g, dram_addr);
                    let buf = vector_to_bytes(&self.pes[g].data_rf[drf.index()]);
                    self.mcs[pg].bank_mut(pe_in_pg).array_mut().write(addr, &buf);
                }
                Instruction::LdPgsm { dram_addr, pgsm_addr, .. } => {
                    let da = self.resolve(g, dram_addr);
                    let pa = self.resolve(g, pgsm_addr);
                    let mut buf = [0u8; 16];
                    self.mcs[pg].bank(pe_in_pg).array().read(da, &mut buf);
                    self.pgsms[pg].write(pa, &buf);
                }
                Instruction::StPgsm { dram_addr, pgsm_addr, .. } => {
                    let da = self.resolve(g, dram_addr);
                    let pa = self.resolve(g, pgsm_addr);
                    let mut buf = [0u8; 16];
                    self.pgsms[pg].read(pa, &mut buf);
                    self.mcs[pg].bank_mut(pe_in_pg).array_mut().write(da, &buf);
                }
                Instruction::RdPgsm { pgsm_addr, drf, .. } => {
                    let pa = self.resolve(g, pgsm_addr);
                    let mut buf = [0u8; 16];
                    self.pgsms[pg].read(pa, &mut buf);
                    self.pes[g].data_rf[drf.index()] = bytes_to_vector(&buf);
                }
                Instruction::WrPgsm { pgsm_addr, drf, .. } => {
                    let pa = self.resolve(g, pgsm_addr);
                    let buf = vector_to_bytes(&self.pes[g].data_rf[drf.index()]);
                    self.pgsms[pg].write(pa, &buf);
                }
                Instruction::RdVsm { vsm_addr, drf, .. } => {
                    let va = self.resolve(g, vsm_addr);
                    let mut buf = [0u8; 16];
                    self.vsm.read(va, &mut buf);
                    self.pes[g].data_rf[drf.index()] = bytes_to_vector(&buf);
                }
                Instruction::WrVsm { vsm_addr, drf, .. } => {
                    let va = self.resolve(g, vsm_addr);
                    let buf = vector_to_bytes(&self.pes[g].data_rf[drf.index()]);
                    self.vsm.write(va, &buf);
                }
                Instruction::Reset { drf, .. } => {
                    self.pes[g].data_rf[drf.index()] = [0; 4];
                }
                Instruction::SetiDrf { drf, imm, vec_mask, .. } => {
                    let mut d = self.pes[g].data_rf[drf.index()];
                    for (l, lane) in d.iter_mut().enumerate() {
                        if vec_mask.lane(l) {
                            *lane = imm;
                        }
                    }
                    self.pes[g].data_rf[drf.index()] = d;
                }
                _ => unreachable!("non-broadcast instruction in execute_functional"),
            }
        }
    }

    /// Queues the timing work of a broadcast instruction on each masked PE;
    /// returns the number of PE-side completions to wait for.
    fn dispatch(&mut self, inst: &Instruction, mask: SimbMask, inst_id: u64, _now: u64) -> u32 {
        let lat = &self.config.latency;
        let (unit, latency, mem_kind): (DispatchUnit, u64, Option<(AccessKind, u64)>) = match inst {
            Instruction::Comp { op, .. } => {
                let l = match op {
                    CompOp::Add | CompOp::Sub => lat.add,
                    CompOp::Mul => lat.mul,
                    CompOp::Mac => lat.mac,
                    CompOp::Div => lat.div,
                    _ => lat.logic,
                };
                (DispatchUnit::Simd, l + lat.rf, None)
            }
            Instruction::CalcArf { .. } | Instruction::Mov { .. } => {
                (DispatchUnit::Alu, lat.logic + lat.rf, None)
            }
            Instruction::Reset { .. } | Instruction::SetiDrf { .. } => {
                (DispatchUnit::Simd, lat.rf, None)
            }
            Instruction::LdRf { .. } => {
                (DispatchUnit::Mem, 0, Some((AccessKind::Read, lat.pe_bus)))
            }
            Instruction::StRf { .. } => (DispatchUnit::Mem, 0, Some((AccessKind::Write, 0))),
            Instruction::LdPgsm { .. } => {
                (DispatchUnit::Mem, 0, Some((AccessKind::Read, lat.pe_bus + lat.pgsm)))
            }
            Instruction::StPgsm { .. } => {
                (DispatchUnit::Mem, lat.pgsm, Some((AccessKind::Write, 0)))
            }
            Instruction::RdPgsm { .. } | Instruction::WrPgsm { .. } => {
                (DispatchUnit::PgsmPort, lat.pgsm + lat.pe_bus, None)
            }
            Instruction::RdVsm { .. } | Instruction::WrVsm { .. } => {
                (DispatchUnit::VsmPort, lat.tsv + lat.vsm + lat.pe_bus, None)
            }
            _ => unreachable!("non-broadcast instruction in dispatch"),
        };

        let mut n = 0;
        for g in mask.iter() {
            n += 1;
            match unit {
                DispatchUnit::Simd => self.pes[g].simd.queue.push_back((inst_id, latency)),
                DispatchUnit::Alu => self.pes[g].alu.queue.push_back((inst_id, latency)),
                DispatchUnit::PgsmPort => self.pes[g].pgsm_port.queue.push_back((inst_id, latency)),
                DispatchUnit::VsmPort => self.pes[g].vsm_port.queue.push_back((inst_id, latency)),
                DispatchUnit::Mem => {
                    let (kind, extra) = mem_kind.expect("mem op");
                    let addr = match *inst {
                        Instruction::LdRf { dram_addr, .. }
                        | Instruction::StRf { dram_addr, .. }
                        | Instruction::LdPgsm { dram_addr, .. }
                        | Instruction::StPgsm { dram_addr, .. } => self.resolve(g, dram_addr),
                        _ => unreachable!(),
                    };
                    // Writes carry the real bytes: the functional write has
                    // already happened at issue, and the MC replays it in
                    // same-address order, so the replay is idempotent.
                    let data = match *inst {
                        Instruction::StRf { drf, .. } => {
                            vector_to_bytes(&self.pes[g].data_rf[drf.index()])
                        }
                        Instruction::StPgsm { pgsm_addr, .. } => {
                            let pa = self.resolve(g, pgsm_addr);
                            let mut buf = [0u8; ACCESS_BYTES];
                            let pg = g / self.config.pes_per_pg;
                            self.pgsms[pg].read(pa, &mut buf);
                            buf
                        }
                        _ => [0; ACCESS_BYTES],
                    };
                    let rid = RequestId(((g as u64) << 40) | inst_id);
                    self.mem_extra.insert(rid.0, extra);
                    self.pes[g].mem.queue.push_back(MemOp {
                        req: Request {
                            id: rid,
                            bank: g % self.config.pes_per_pg,
                            addr: addr & !(ACCESS_BYTES as u32 - 1),
                            kind,
                            data,
                        },
                    });
                }
            }
        }
        n
    }

    /// Updates register-file / scratchpad access counters for energy, and
    /// mirrors scratchpad traffic into the trace.
    fn account_accesses(&mut self, inst: &Instruction, now: u64) {
        let n = inst.simb_mask().map_or(0, |m| m.count() as u64);
        // Scratchpad traffic this instruction generates, mirrored into the
        // trace after the counter update.
        let mut spad: Option<(SpadKind, u64)> = None;
        match inst {
            Instruction::Comp { .. } => {
                self.stats.simd_ops += n;
                self.stats.data_rf_accesses += 3 * n;
            }
            Instruction::CalcArf { .. } => {
                self.stats.int_alu_ops += n;
                self.stats.addr_rf_accesses += 3 * n;
            }
            Instruction::Mov { .. } => {
                self.stats.int_alu_ops += n;
                self.stats.addr_rf_accesses += n;
                self.stats.data_rf_accesses += n;
            }
            Instruction::LdRf { dram_addr, .. } | Instruction::StRf { dram_addr, .. } => {
                self.stats.data_rf_accesses += n;
                if dram_addr.addr_reg().is_some() {
                    self.stats.addr_rf_accesses += n;
                }
            }
            Instruction::LdPgsm { dram_addr, pgsm_addr, .. }
            | Instruction::StPgsm { dram_addr, pgsm_addr, .. } => {
                self.stats.pgsm_accesses += n;
                spad = Some((SpadKind::Pgsm, n));
                let indirect =
                    [dram_addr, pgsm_addr].iter().filter(|a| a.addr_reg().is_some()).count() as u64;
                self.stats.addr_rf_accesses += indirect * n;
            }
            Instruction::RdPgsm { pgsm_addr, drf: _, .. }
            | Instruction::WrPgsm { pgsm_addr, drf: _, .. } => {
                self.stats.pgsm_accesses += n;
                spad = Some((SpadKind::Pgsm, n));
                self.stats.data_rf_accesses += n;
                if pgsm_addr.addr_reg().is_some() {
                    self.stats.addr_rf_accesses += n;
                }
            }
            Instruction::RdVsm { vsm_addr, .. } | Instruction::WrVsm { vsm_addr, .. } => {
                self.stats.vsm_accesses += n;
                spad = Some((SpadKind::Vsm, n));
                self.stats.data_rf_accesses += n;
                if vsm_addr.addr_reg().is_some() {
                    self.stats.addr_rf_accesses += n;
                }
            }
            Instruction::Reset { .. } | Instruction::SetiDrf { .. } => {
                self.stats.data_rf_accesses += n;
            }
            Instruction::SetiVsm { .. } => {
                self.stats.vsm_accesses += 1;
                spad = Some((SpadKind::Vsm, 1));
            }
            _ => {}
        }
        if let Some((kind, count)) = spad {
            let count = count.min(u32::MAX as u64) as u32;
            self.tracer.emit(now, self.comp_core, || TraceEvent::SpadAccess { kind, count });
        }
    }

    /// Completes the functional effect of a served remote request: called by
    /// the machine when it routes the `ReqForward` (the remote read value is
    /// snapshotted at service time; see module docs).
    pub(crate) fn take_pending_req_fills(&mut self) -> Vec<(u64, RemoteTarget, u32, u32)> {
        std::mem::take(&mut self.pending_req_fills)
    }

    /// Host/machine helper: write 16 bytes into this vault's VSM (remote
    /// response data landing).
    pub(crate) fn fill_vsm(&mut self, addr: u32, data: [u8; 16]) {
        self.vsm.write(addr, &data);
    }

    /// Reads 16 bytes from a bank (machine-level remote service).
    pub(crate) fn read_bank16(&self, pg: usize, pe: usize, addr: u32) -> [u8; 16] {
        let mut buf = [0u8; 16];
        self.mcs[pg].bank(pe).array().read(addr, &mut buf);
        buf
    }
}

/// Base of the inflight-id space reserved for `req` instructions.
const REQ_TAG_BASE: u64 = 1 << 39;
/// Base of the MC request-id space reserved for remote serves.
const REMOTE_SERVE_BASE: u64 = 1 << 62;

fn bytes_to_vector(b: &[u8; 16]) -> Vector {
    let mut v = [0u32; 4];
    for (i, lane) in v.iter_mut().enumerate() {
        *lane = u32::from_le_bytes(b[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
    }
    v
}

fn vector_to_bytes(v: &Vector) -> [u8; 16] {
    let mut b = [0u8; 16];
    for (i, lane) in v.iter().enumerate() {
        b[i * 4..i * 4 + 4].copy_from_slice(&lane.to_le_bytes());
    }
    b
}

/// Lane semantics of the SIMD `comp` operations.
fn apply_comp(op: CompOp, dtype: DataType, a: u32, b: u32, d: u32) -> u32 {
    use CompOp::*;
    match dtype {
        DataType::F32 => {
            let (fa, fb, fd) = (f32::from_bits(a), f32::from_bits(b), f32::from_bits(d));
            match op {
                Add => (fa + fb).to_bits(),
                Sub => (fa - fb).to_bits(),
                Mul => (fa * fb).to_bits(),
                Mac => (fd + fa * fb).to_bits(),
                Div => (fa / fb).to_bits(),
                Min => fa.min(fb).to_bits(),
                Max => fa.max(fb).to_bits(),
                CmpLt => ((fa < fb) as u32 as f32).to_bits(),
                CmpLe => ((fa <= fb) as u32 as f32).to_bits(),
                CmpEq => ((fa == fb) as u32 as f32).to_bits(),
                CvtI2F => (a as i32 as f32).to_bits(),
                CvtF2I => (fa as i32) as u32,
                Shl => a.wrapping_shl(b & 31),
                Shr => a.wrapping_shr(b & 31),
                And => a & b,
                Or => a | b,
                Xor => a ^ b,
                CropLsb => a & 0xFFFF,
                CropMsb => a >> 16,
            }
        }
        DataType::I32 => {
            let (ia, ib, id) = (a as i32, b as i32, d as i32);
            match op {
                Add => ia.wrapping_add(ib) as u32,
                Sub => ia.wrapping_sub(ib) as u32,
                Mul => ia.wrapping_mul(ib) as u32,
                Mac => id.wrapping_add(ia.wrapping_mul(ib)) as u32,
                Div => {
                    if ib == 0 {
                        0
                    } else {
                        ia.wrapping_div(ib) as u32
                    }
                }
                Min => ia.min(ib) as u32,
                Max => ia.max(ib) as u32,
                CmpLt => (ia < ib) as u32,
                CmpLe => (ia <= ib) as u32,
                CmpEq => (ia == ib) as u32,
                CvtI2F => (ia as f32).to_bits(),
                CvtF2I => (f32::from_bits(a) as i32) as u32,
                Shl => a.wrapping_shl(b & 31),
                Shr => (ia.wrapping_shr(b & 31)) as u32,
                And => a & b,
                Or => a | b,
                Xor => a ^ b,
                CropLsb => a & 0xFFFF,
                CropMsb => a >> 16,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vault() -> Vault {
        Vault::new(VaultId { cube: 0, vault: 0 }, &MachineConfig::vault_slice(1))
    }

    #[test]
    fn identity_registers_initialized() {
        let v = vault();
        // PE 13 = PG 3, PE-in-PG 1.
        assert_eq!(v.addr_rf(13)[ARF_PE_ID.index()], 1);
        assert_eq!(v.addr_rf(13)[ARF_PG_ID.index()], 3);
        assert_eq!(v.addr_rf(13)[ARF_VAULT_ID.index()], 0);
        assert_eq!(v.addr_rf(13)[ARF_CHIP_ID.index()], 0);
    }

    #[test]
    fn fresh_vault_is_halted() {
        let v = vault();
        assert!(v.is_halted());
        assert_eq!(v.at_barrier(), None);
    }

    #[test]
    fn vector_byte_round_trip() {
        let v: Vector = [1, 0xDEAD_BEEF, u32::MAX, 42];
        assert_eq!(bytes_to_vector(&vector_to_bytes(&v)), v);
    }

    #[test]
    fn comp_semantics_float_and_int() {
        let two = 2.0f32.to_bits();
        let three = 3.0f32.to_bits();
        assert_eq!(f32::from_bits(apply_comp(CompOp::Add, DataType::F32, two, three, 0)), 5.0);
        assert_eq!(
            f32::from_bits(apply_comp(CompOp::Mac, DataType::F32, two, three, 1.0f32.to_bits())),
            7.0
        );
        assert_eq!(apply_comp(CompOp::Mul, DataType::I32, 7u32, (-3i32) as u32, 0) as i32, -21);
        assert_eq!(apply_comp(CompOp::Div, DataType::I32, 7, 0, 0), 0);
        assert_eq!(apply_comp(CompOp::CmpLt, DataType::I32, (-1i32) as u32, 1, 0), 1);
        assert_eq!(f32::from_bits(apply_comp(CompOp::CvtI2F, DataType::F32, 5, 0, 0)), 5.0);
        assert_eq!(apply_comp(CompOp::CvtF2I, DataType::I32, 5.9f32.to_bits(), 0, 0), 5);
        assert_eq!(apply_comp(CompOp::CropLsb, DataType::I32, 0xABCD_1234, 0, 0), 0x1234);
        assert_eq!(apply_comp(CompOp::CropMsb, DataType::I32, 0xABCD_1234, 0, 0), 0xABCD);
    }

    #[test]
    fn unit_pipelines_one_start_per_cycle() {
        let mut u = Unit::default();
        u.queue.push_back((1, 4));
        u.queue.push_back((2, 4));
        u.start(10);
        u.start(10); // same cycle: second start refused
        assert_eq!(u.in_flight.len(), 1);
        u.start(11);
        assert_eq!(u.in_flight.len(), 2);
        let mut done = Vec::new();
        u.complete(13, &mut done);
        assert!(done.is_empty());
        u.complete(14, &mut done);
        assert_eq!(done, vec![1]);
        u.complete(15, &mut done);
        assert_eq!(done, vec![1, 2]);
        assert!(!u.busy());
    }
}
