//! Execution statistics: dynamic instruction mix, stall accounting,
//! component utilization and IPC — the raw material of Figs. 11–13.

use ipim_isa::Category;

/// Why the control core could not issue on a given cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallReason {
    /// RAW/WAR/WAW hazard against an in-flight instruction.
    Hazard,
    /// Issued-instruction queue full.
    QueueFull,
    /// TSV broadcast slot taken this cycle.
    Tsv,
    /// Taken-branch refetch bubble.
    Branch,
    /// Waiting at a `sync` barrier.
    Sync,
    /// Conservative VSM interlock against in-flight `req`s.
    VsmInterlock,
}

/// Per-vault execution counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VaultStats {
    /// Cycles this vault was active (until halt).
    pub cycles: u64,
    /// Dynamic instructions issued.
    pub issued: u64,
    /// Dynamic instruction mix by Table I category.
    pub by_category: CategoryCounts,
    /// Stall cycles by cause.
    pub stalls: StallCounts,
    /// SIMD operations executed (instruction × active PE).
    pub simd_ops: u64,
    /// Integer-ALU operations executed (instruction × active PE).
    pub int_alu_ops: u64,
    /// PE-cycles each SIMD unit was busy (summed over PEs).
    pub simd_busy: u64,
    /// PE-cycles each integer ALU was busy.
    pub int_alu_busy: u64,
    /// PE-cycles each memory unit had an outstanding bank access.
    pub mem_busy: u64,
    /// AddrRF accesses (reads + writes).
    pub addr_rf_accesses: u64,
    /// DataRF accesses (reads + writes).
    pub data_rf_accesses: u64,
    /// PGSM accesses.
    pub pgsm_accesses: u64,
    /// VSM accesses.
    pub vsm_accesses: u64,
    /// TSV transfer slots consumed (broadcasts + data).
    pub tsv_transfers: u64,
    /// Remote requests initiated by this vault.
    pub remote_reqs: u64,
    /// DRAM 16-byte accesses (reads + writes) across the vault's banks.
    pub dram_accesses: u64,
}

/// Dynamic instruction counts by ISA category.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CategoryCounts {
    /// `comp` instructions.
    pub computation: u64,
    /// `calc arf` / `mov` instructions.
    pub index_calc: u64,
    /// Intra-vault data movement.
    pub intra_vault: u64,
    /// `req` instructions.
    pub inter_vault: u64,
    /// Control flow.
    pub control_flow: u64,
    /// `sync` instructions.
    pub synchronization: u64,
}

impl CategoryCounts {
    /// Increments the counter for `cat`.
    pub fn bump(&mut self, cat: Category) {
        match cat {
            Category::Computation => self.computation += 1,
            Category::IndexCalc => self.index_calc += 1,
            Category::IntraVault => self.intra_vault += 1,
            Category::InterVault => self.inter_vault += 1,
            Category::ControlFlow => self.control_flow += 1,
            Category::Synchronization => self.synchronization += 1,
        }
    }

    /// Total dynamic instructions.
    pub fn total(&self) -> u64 {
        self.computation
            + self.index_calc
            + self.intra_vault
            + self.inter_vault
            + self.control_flow
            + self.synchronization
    }

    /// Fraction of instructions in `part` out of the total (0 when empty).
    pub fn fraction(&self, part: u64) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            part as f64 / t as f64
        }
    }
}

impl std::ops::Add for CategoryCounts {
    type Output = Self;

    fn add(self, rhs: Self) -> Self {
        Self {
            computation: self.computation + rhs.computation,
            index_calc: self.index_calc + rhs.index_calc,
            intra_vault: self.intra_vault + rhs.intra_vault,
            inter_vault: self.inter_vault + rhs.inter_vault,
            control_flow: self.control_flow + rhs.control_flow,
            synchronization: self.synchronization + rhs.synchronization,
        }
    }
}

/// Stall-cycle counts by cause.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallCounts {
    /// Data-hazard stalls.
    pub hazard: u64,
    /// Issued-inst-queue-full stalls.
    pub queue_full: u64,
    /// TSV contention stalls.
    pub tsv: u64,
    /// Branch bubbles.
    pub branch: u64,
    /// Barrier waits.
    pub sync: u64,
    /// VSM/req interlock stalls.
    pub vsm_interlock: u64,
}

impl StallCounts {
    /// Records one stall cycle of the given kind.
    pub fn bump(&mut self, reason: StallReason) {
        self.bump_by(reason, 1);
    }

    /// Records `n` stall cycles of the given kind (skip-ahead accrual: the
    /// engine proves the stall reason constant across a jumped window and
    /// accounts the whole span at once).
    pub fn bump_by(&mut self, reason: StallReason, n: u64) {
        match reason {
            StallReason::Hazard => self.hazard += n,
            StallReason::QueueFull => self.queue_full += n,
            StallReason::Tsv => self.tsv += n,
            StallReason::Branch => self.branch += n,
            StallReason::Sync => self.sync += n,
            StallReason::VsmInterlock => self.vsm_interlock += n,
        }
    }

    /// Total stall cycles.
    pub fn total(&self) -> u64 {
        self.hazard + self.queue_full + self.tsv + self.branch + self.sync + self.vsm_interlock
    }
}

impl VaultStats {
    /// Instructions per cycle (the paper's Fig. 13 metric, avg 0.63).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.issued as f64 / self.cycles as f64
        }
    }

    /// Utilization of a component given its busy PE-cycles and PE count.
    pub fn utilization(&self, busy: u64, pes: usize) -> f64 {
        if self.cycles == 0 || pes == 0 {
            0.0
        } else {
            busy as f64 / (self.cycles as f64 * pes as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_bump_and_total() {
        let mut c = CategoryCounts::default();
        c.bump(Category::Computation);
        c.bump(Category::Computation);
        c.bump(Category::IndexCalc);
        c.bump(Category::InterVault);
        assert_eq!(c.total(), 4);
        assert!((c.fraction(c.index_calc) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_fractions_are_zero() {
        let c = CategoryCounts::default();
        assert_eq!(c.fraction(c.computation), 0.0);
        let s = VaultStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.utilization(10, 4), 0.0);
    }

    #[test]
    fn stall_accounting() {
        let mut s = StallCounts::default();
        s.bump(StallReason::Hazard);
        s.bump(StallReason::Hazard);
        s.bump(StallReason::Tsv);
        s.bump(StallReason::Sync);
        assert_eq!(s.total(), 4);
        assert_eq!(s.hazard, 2);
    }

    #[test]
    fn ipc_and_utilization() {
        let s = VaultStats { cycles: 100, issued: 63, simd_busy: 160, ..VaultStats::default() };
        assert!((s.ipc() - 0.63).abs() < 1e-12);
        assert!((s.utilization(s.simd_busy, 32) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn category_counts_add() {
        let a = CategoryCounts { computation: 1, index_calc: 2, ..Default::default() };
        let b = CategoryCounts { computation: 3, inter_vault: 4, ..Default::default() };
        let c = a + b;
        assert_eq!(c.computation, 4);
        assert_eq!(c.index_calc, 2);
        assert_eq!(c.inter_vault, 4);
    }
}
