//! Execution statistics: dynamic instruction mix, stall accounting,
//! component utilization and IPC — the raw material of Figs. 11–13.

use ipim_isa::Category;
use ipim_trace::MetricsRegistry;

/// Why the control core could not issue on a given cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallReason {
    /// RAW/WAR/WAW hazard against an in-flight instruction.
    Hazard,
    /// Issued-instruction queue full.
    QueueFull,
    /// TSV broadcast slot taken this cycle.
    Tsv,
    /// Taken-branch refetch bubble.
    Branch,
    /// Waiting at a `sync` barrier.
    Sync,
    /// Conservative VSM interlock against in-flight `req`s.
    VsmInterlock,
}

impl StallReason {
    /// Every stall cause, in the order `StallCounts` stores them. The single
    /// source of truth for iterating the stall taxonomy — reports and metrics
    /// exporters walk this instead of hand-listing the fields.
    pub const ALL: [StallReason; 6] = [
        StallReason::Hazard,
        StallReason::QueueFull,
        StallReason::Tsv,
        StallReason::Branch,
        StallReason::Sync,
        StallReason::VsmInterlock,
    ];

    /// Stable lower-case label, usable as a metrics/trace key.
    pub fn name(self) -> &'static str {
        match self {
            StallReason::Hazard => "hazard",
            StallReason::QueueFull => "queue_full",
            StallReason::Tsv => "tsv",
            StallReason::Branch => "branch",
            StallReason::Sync => "sync",
            StallReason::VsmInterlock => "vsm_interlock",
        }
    }
}

/// Per-vault execution counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VaultStats {
    /// Cycles this vault was active (until halt).
    pub cycles: u64,
    /// Dynamic instructions issued.
    pub issued: u64,
    /// Dynamic instruction mix by Table I category.
    pub by_category: CategoryCounts,
    /// Stall cycles by cause.
    pub stalls: StallCounts,
    /// SIMD operations executed (instruction × active PE).
    pub simd_ops: u64,
    /// Integer-ALU operations executed (instruction × active PE).
    pub int_alu_ops: u64,
    /// PE-cycles each SIMD unit was busy (summed over PEs).
    pub simd_busy: u64,
    /// PE-cycles each integer ALU was busy.
    pub int_alu_busy: u64,
    /// PE-cycles each memory unit had an outstanding bank access.
    pub mem_busy: u64,
    /// AddrRF accesses (reads + writes).
    pub addr_rf_accesses: u64,
    /// DataRF accesses (reads + writes).
    pub data_rf_accesses: u64,
    /// PGSM accesses.
    pub pgsm_accesses: u64,
    /// VSM accesses.
    pub vsm_accesses: u64,
    /// TSV transfer slots consumed (broadcasts + data).
    pub tsv_transfers: u64,
    /// Remote requests initiated by this vault.
    pub remote_reqs: u64,
    /// DRAM 16-byte accesses (reads + writes) across the vault's banks.
    pub dram_accesses: u64,
}

/// Dynamic instruction counts by ISA category.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CategoryCounts {
    /// `comp` instructions.
    pub computation: u64,
    /// `calc arf` / `mov` instructions.
    pub index_calc: u64,
    /// Intra-vault data movement.
    pub intra_vault: u64,
    /// `req` instructions.
    pub inter_vault: u64,
    /// Control flow.
    pub control_flow: u64,
    /// `sync` instructions.
    pub synchronization: u64,
}

impl CategoryCounts {
    /// Every ISA category, in field order — for iterating the mix.
    pub const ALL: [Category; 6] = [
        Category::Computation,
        Category::IndexCalc,
        Category::IntraVault,
        Category::InterVault,
        Category::ControlFlow,
        Category::Synchronization,
    ];

    /// The count for one category.
    pub fn get(&self, cat: Category) -> u64 {
        match cat {
            Category::Computation => self.computation,
            Category::IndexCalc => self.index_calc,
            Category::IntraVault => self.intra_vault,
            Category::InterVault => self.inter_vault,
            Category::ControlFlow => self.control_flow,
            Category::Synchronization => self.synchronization,
        }
    }

    /// Increments the counter for `cat`.
    pub fn bump(&mut self, cat: Category) {
        match cat {
            Category::Computation => self.computation += 1,
            Category::IndexCalc => self.index_calc += 1,
            Category::IntraVault => self.intra_vault += 1,
            Category::InterVault => self.inter_vault += 1,
            Category::ControlFlow => self.control_flow += 1,
            Category::Synchronization => self.synchronization += 1,
        }
    }

    /// Total dynamic instructions.
    pub fn total(&self) -> u64 {
        self.computation
            + self.index_calc
            + self.intra_vault
            + self.inter_vault
            + self.control_flow
            + self.synchronization
    }

    /// Fraction of instructions in `part` out of the total (0 when empty).
    pub fn fraction(&self, part: u64) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            part as f64 / t as f64
        }
    }
}

impl std::ops::Add for CategoryCounts {
    type Output = Self;

    fn add(self, rhs: Self) -> Self {
        Self {
            computation: self.computation + rhs.computation,
            index_calc: self.index_calc + rhs.index_calc,
            intra_vault: self.intra_vault + rhs.intra_vault,
            inter_vault: self.inter_vault + rhs.inter_vault,
            control_flow: self.control_flow + rhs.control_flow,
            synchronization: self.synchronization + rhs.synchronization,
        }
    }
}

/// Stall-cycle counts by cause.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallCounts {
    /// Data-hazard stalls.
    pub hazard: u64,
    /// Issued-inst-queue-full stalls.
    pub queue_full: u64,
    /// TSV contention stalls.
    pub tsv: u64,
    /// Branch bubbles.
    pub branch: u64,
    /// Barrier waits.
    pub sync: u64,
    /// VSM/req interlock stalls.
    pub vsm_interlock: u64,
}

impl StallCounts {
    /// Records one stall cycle of the given kind.
    pub fn bump(&mut self, reason: StallReason) {
        self.bump_by(reason, 1);
    }

    /// Records `n` stall cycles of the given kind (skip-ahead accrual: the
    /// engine proves the stall reason constant across a jumped window and
    /// accounts the whole span at once).
    pub fn bump_by(&mut self, reason: StallReason, n: u64) {
        match reason {
            StallReason::Hazard => self.hazard += n,
            StallReason::QueueFull => self.queue_full += n,
            StallReason::Tsv => self.tsv += n,
            StallReason::Branch => self.branch += n,
            StallReason::Sync => self.sync += n,
            StallReason::VsmInterlock => self.vsm_interlock += n,
        }
    }

    /// The count for one stall cause.
    pub fn get(&self, reason: StallReason) -> u64 {
        match reason {
            StallReason::Hazard => self.hazard,
            StallReason::QueueFull => self.queue_full,
            StallReason::Tsv => self.tsv,
            StallReason::Branch => self.branch,
            StallReason::Sync => self.sync,
            StallReason::VsmInterlock => self.vsm_interlock,
        }
    }

    /// Accumulates another vault's stall counts into this one.
    pub fn merge(&mut self, other: &StallCounts) {
        for reason in StallReason::ALL {
            self.bump_by(reason, other.get(reason));
        }
    }

    /// Total stall cycles.
    pub fn total(&self) -> u64 {
        StallReason::ALL.iter().map(|&r| self.get(r)).sum()
    }
}

impl VaultStats {
    /// Instructions per cycle (the paper's Fig. 13 metric, avg 0.63).
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.issued as f64 / self.cycles as f64
        }
    }

    /// Accumulates another vault's counters into this one. `cycles` takes
    /// the max rather than the sum: an aggregate over vaults runs for as
    /// long as its slowest member, not the sum of their lifetimes.
    pub fn absorb(&mut self, other: &VaultStats) {
        self.cycles = self.cycles.max(other.cycles);
        self.issued += other.issued;
        self.by_category = self.by_category + other.by_category;
        self.stalls.merge(&other.stalls);
        self.simd_ops += other.simd_ops;
        self.int_alu_ops += other.int_alu_ops;
        self.simd_busy += other.simd_busy;
        self.int_alu_busy += other.int_alu_busy;
        self.mem_busy += other.mem_busy;
        self.addr_rf_accesses += other.addr_rf_accesses;
        self.data_rf_accesses += other.data_rf_accesses;
        self.pgsm_accesses += other.pgsm_accesses;
        self.vsm_accesses += other.vsm_accesses;
        self.tsv_transfers += other.tsv_transfers;
        self.remote_reqs += other.remote_reqs;
        self.dram_accesses += other.dram_accesses;
    }

    /// Records every counter into `reg` under `prefix` (e.g. `vault3`).
    /// This is the single path from per-vault counters to exported metrics,
    /// so stall causes and instruction categories appear under one naming
    /// scheme instead of being re-listed by each reporter.
    pub fn record_into(&self, reg: &mut MetricsRegistry, prefix: &str) {
        reg.counter_add(&format!("{prefix}/cycles"), self.cycles);
        reg.counter_add(&format!("{prefix}/issued"), self.issued);
        for cat in CategoryCounts::ALL {
            reg.counter_add(&format!("{prefix}/inst/{}", cat.name()), self.by_category.get(cat));
        }
        for reason in StallReason::ALL {
            reg.counter_add(&format!("{prefix}/stall/{}", reason.name()), self.stalls.get(reason));
        }
        reg.counter_add(&format!("{prefix}/simd_ops"), self.simd_ops);
        reg.counter_add(&format!("{prefix}/int_alu_ops"), self.int_alu_ops);
        reg.counter_add(&format!("{prefix}/spad/pgsm"), self.pgsm_accesses);
        reg.counter_add(&format!("{prefix}/spad/vsm"), self.vsm_accesses);
        reg.counter_add(&format!("{prefix}/tsv_transfers"), self.tsv_transfers);
        reg.counter_add(&format!("{prefix}/remote_reqs"), self.remote_reqs);
        reg.counter_add(&format!("{prefix}/dram_accesses"), self.dram_accesses);
        reg.gauge_set(&format!("{prefix}/ipc"), self.ipc());
    }

    /// Utilization of a component given its busy PE-cycles and PE count.
    pub fn utilization(&self, busy: u64, pes: usize) -> f64 {
        if self.cycles == 0 || pes == 0 {
            0.0
        } else {
            busy as f64 / (self.cycles as f64 * pes as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_bump_and_total() {
        let mut c = CategoryCounts::default();
        c.bump(Category::Computation);
        c.bump(Category::Computation);
        c.bump(Category::IndexCalc);
        c.bump(Category::InterVault);
        assert_eq!(c.total(), 4);
        assert!((c.fraction(c.index_calc) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_fractions_are_zero() {
        let c = CategoryCounts::default();
        assert_eq!(c.fraction(c.computation), 0.0);
        let s = VaultStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.utilization(10, 4), 0.0);
    }

    #[test]
    fn stall_accounting() {
        let mut s = StallCounts::default();
        s.bump(StallReason::Hazard);
        s.bump(StallReason::Hazard);
        s.bump(StallReason::Tsv);
        s.bump(StallReason::Sync);
        assert_eq!(s.total(), 4);
        assert_eq!(s.hazard, 2);
    }

    #[test]
    fn ipc_and_utilization() {
        let s = VaultStats { cycles: 100, issued: 63, simd_busy: 160, ..VaultStats::default() };
        assert!((s.ipc() - 0.63).abs() < 1e-12);
        assert!((s.utilization(s.simd_busy, 32) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn absorb_sums_counters_and_maxes_cycles() {
        let mut a =
            VaultStats { cycles: 100, issued: 10, pgsm_accesses: 3, ..VaultStats::default() };
        a.stalls.bump(StallReason::Tsv);
        let mut b = VaultStats { cycles: 80, issued: 5, pgsm_accesses: 4, ..VaultStats::default() };
        b.stalls.bump_by(StallReason::Tsv, 2);
        b.stalls.bump(StallReason::Hazard);
        a.absorb(&b);
        assert_eq!(a.cycles, 100);
        assert_eq!(a.issued, 15);
        assert_eq!(a.pgsm_accesses, 7);
        assert_eq!(a.stalls.tsv, 3);
        assert_eq!(a.stalls.hazard, 1);
        assert_eq!(a.stalls.total(), 4);
    }

    #[test]
    fn record_into_registry_covers_stalls_and_categories() {
        let mut s = VaultStats { cycles: 10, issued: 5, ..VaultStats::default() };
        s.by_category.bump(Category::Computation);
        s.stalls.bump_by(StallReason::Sync, 7);
        let mut reg = MetricsRegistry::default();
        s.record_into(&mut reg, "vault0");
        assert_eq!(reg.counter("vault0/inst/computation"), 1);
        assert_eq!(reg.counter("vault0/stall/sync"), 7);
        assert_eq!(reg.counter("vault0/stall/hazard"), 0);
        assert_eq!(reg.counter("vault0/cycles"), 10);
        // One entry per stall cause, per category, plus the scalar counters
        // and the IPC gauge.
        assert_eq!(reg.len(), 2 + 6 + 6 + 7 + 1);
    }

    #[test]
    fn stall_get_matches_fields_for_all_reasons() {
        let mut s = StallCounts::default();
        for (i, reason) in StallReason::ALL.into_iter().enumerate() {
            s.bump_by(reason, i as u64 + 1);
        }
        assert_eq!(s.get(StallReason::Hazard), 1);
        assert_eq!(s.get(StallReason::VsmInterlock), 6);
        assert_eq!(s.total(), 21);
        let mut names: Vec<&str> = StallReason::ALL.iter().map(|r| r.name()).collect();
        names.dedup();
        assert_eq!(names.len(), 6, "stall names must be distinct");
    }

    #[test]
    fn category_counts_add() {
        let a = CategoryCounts { computation: 1, index_calc: 2, ..Default::default() };
        let b = CategoryCounts { computation: 3, inter_vault: 4, ..Default::default() };
        let c = a + b;
        assert_eq!(c.computation, 4);
        assert_eq!(c.index_calc, 2);
        assert_eq!(c.inter_vault, 4);
    }
}
