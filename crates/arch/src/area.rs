//! Area model (paper Table IV and Sec. VII-B).
//!
//! Component areas are synthesized 22 nm values with the paper's
//! conservative ×2 DRAM-process overhead already applied, normalized against
//! a 96 mm² DRAM die. The decoupled control core lives on the base logic die
//! and is therefore *not* part of the per-DRAM-die overhead — that is the
//! architectural point the table makes.

/// Area of one component class on a DRAM die.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaItem {
    /// Component name as it appears in Table IV.
    pub name: &'static str,
    /// Number of instances per DRAM die.
    pub count: usize,
    /// Total area in mm² (DRAM-process adjusted).
    pub area_mm2: f64,
}

impl AreaItem {
    /// Overhead relative to a DRAM die of `die_mm2`.
    pub fn overhead_pct(&self, die_mm2: f64) -> f64 {
        100.0 * self.area_mm2 / die_mm2
    }
}

/// Area of a reference DRAM die (HBM-class, Sec. VII-B).
pub const DRAM_DIE_MM2: f64 = 96.0;

/// Area of the control core on the base logic die (Sec. VII-B).
pub const CTRL_CORE_MM2: f64 = 0.92;

/// VSM share of the control-core area.
pub const VSM_MM2: f64 = 0.23;

/// Spare area available per vault on the base logic die.
pub const BASE_DIE_SPARE_PER_VAULT_MM2: f64 = 3.5;

/// Table IV: per-DRAM-die area of iPIM's execution components.
///
/// One DRAM die hosts 16 process groups (one per vault) × 4 PEs = 64 PEs.
pub fn table4_items() -> Vec<AreaItem> {
    vec![
        AreaItem { name: "SIMD Unit", count: 64, area_mm2: 2.26 },
        AreaItem { name: "Int ALU", count: 64, area_mm2: 0.32 },
        AreaItem { name: "Address Register File", count: 64, area_mm2: 0.20 },
        AreaItem { name: "Data Register File", count: 64, area_mm2: 1.79 },
        AreaItem { name: "Memory Controller", count: 16, area_mm2: 1.84 },
        AreaItem { name: "PGSM", count: 16, area_mm2: 3.87 },
    ]
}

/// Total added area per DRAM die in mm².
pub fn total_added_mm2() -> f64 {
    table4_items().iter().map(|i| i.area_mm2).sum()
}

/// Total per-DRAM-die overhead percentage (paper: 10.71 %).
pub fn total_overhead_pct() -> f64 {
    100.0 * total_added_mm2() / DRAM_DIE_MM2
}

/// Overhead if the control core were naively replicated per bank instead of
/// decoupled onto the base die (paper: 122.36 %, i.e. 10.42× worse).
pub fn naive_per_bank_core_overhead_pct() -> f64 {
    // 64 banks/die × control core area (DRAM-process ×2), plus the
    // execution components.
    let per_bank_cores = 64.0 * CTRL_CORE_MM2 * 2.0;
    100.0 * (per_bank_cores + total_added_mm2()) / DRAM_DIE_MM2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_total_matches_paper() {
        assert!((total_added_mm2() - 10.28).abs() < 1e-9);
        assert!((total_overhead_pct() - 10.708).abs() < 0.01, "{}", total_overhead_pct());
    }

    #[test]
    fn naive_design_is_an_order_of_magnitude_worse() {
        let ratio = naive_per_bank_core_overhead_pct() / total_overhead_pct();
        assert!(ratio > 10.0 && ratio < 13.0, "ratio={ratio}");
    }

    #[test]
    fn per_item_overheads_match_table4() {
        let items = table4_items();
        let simd = items.iter().find(|i| i.name == "SIMD Unit").unwrap();
        assert!((simd.overhead_pct(DRAM_DIE_MM2) - 2.354).abs() < 0.01);
        let pgsm = items.iter().find(|i| i.name == "PGSM").unwrap();
        assert!((pgsm.overhead_pct(DRAM_DIE_MM2) - 4.031).abs() < 0.01);
    }

    #[test]
    fn control_core_fits_base_die_budget() {
        const { assert!(CTRL_CORE_MM2 < BASE_DIE_SPARE_PER_VAULT_MM2) }
    }
}
