//! End-to-end machine tests: real SIMB programs running on the
//! cycle-accurate simulator, checking both functional results and timing
//! behaviour (hazard stalls, TSV serialization, PonB slowdown, barriers,
//! remote requests).

use ipim_arch::{Machine, MachineConfig, Placement};
use ipim_isa::{
    AddrOperand, AddrReg, ArfOp, ArfSrc, CompMode, CompOp, CrfOp, CrfSrc, CtrlReg, DataReg,
    DataType, Instruction, Program, ProgramBuilder, RemoteTarget, SimbMask, VecMask, ARF_PE_ID,
};

const W: usize = 32; // PEs per vault in the default shape

fn all() -> SimbMask {
    SimbMask::all(W)
}

fn one_vault() -> Machine {
    Machine::new(MachineConfig::vault_slice(1))
}

fn comp(op: CompOp, dst: u8, src1: u8, src2: u8, mask: SimbMask) -> Instruction {
    Instruction::Comp {
        op,
        dtype: DataType::F32,
        mode: CompMode::VectorVector,
        dst: DataReg::new(dst),
        src1: DataReg::new(src1),
        src2: DataReg::new(src2),
        vec_mask: VecMask::ALL,
        simb_mask: mask,
    }
}

fn seti_f32(drf: u8, v: f32, mask: SimbMask) -> Instruction {
    Instruction::SetiDrf {
        drf: DataReg::new(drf),
        imm: v.to_bits(),
        vec_mask: VecMask::ALL,
        simb_mask: mask,
    }
}

fn run(machine: &mut Machine, program: Program) -> ipim_arch::ExecutionReport {
    machine.load_program_all(&program);
    machine.run(2_000_000).expect("program should quiesce")
}

#[test]
fn seti_and_add_produce_expected_lanes() {
    let mut m = one_vault();
    let mut b = ProgramBuilder::new();
    b.push(seti_f32(0, 1.5, all()));
    b.push(seti_f32(1, 2.25, all()));
    b.push(comp(CompOp::Add, 2, 0, 1, all()));
    let report = run(&mut m, b.seal().unwrap());
    for pe in 0..W {
        let v = m.vault(0, 0).data_rf(pe)[2];
        for lane in v {
            assert_eq!(f32::from_bits(lane), 3.75);
        }
    }
    assert_eq!(report.stats.issued, 3);
    assert!(report.cycles > 0);
}

#[test]
fn load_compute_store_round_trip() {
    let mut m = one_vault();
    // Host upload: each PE's bank gets [pe, pe+1, pe+2, pe+3] at address 0.
    for pg in 0..8 {
        for pe in 0..4 {
            let g = (pg * 4 + pe) as f32;
            let v = m.vault_mut(0, 0);
            let arr = v.bank_array_mut(pg, pe);
            for l in 0..4 {
                arr.write_f32((l * 4) as u32, g + l as f32);
            }
        }
    }
    let mut b = ProgramBuilder::new();
    b.push(Instruction::LdRf {
        dram_addr: AddrOperand::Imm(0),
        drf: DataReg::new(0),
        simb_mask: all(),
    });
    b.push(seti_f32(1, 10.0, all()));
    b.push(comp(CompOp::Mul, 2, 0, 1, all()));
    b.push(Instruction::StRf {
        dram_addr: AddrOperand::Imm(64),
        drf: DataReg::new(2),
        simb_mask: all(),
    });
    run(&mut m, b.seal().unwrap());
    for pg in 0..8 {
        for pe in 0..4 {
            let g = (pg * 4 + pe) as f32;
            let arr = m.vault(0, 0).bank_array(pg, pe);
            for l in 0..4u32 {
                assert_eq!(arr.read_f32(64 + l * 4), (g + l as f32) * 10.0);
            }
        }
    }
}

#[test]
fn indirect_addressing_differentiates_pes() {
    let mut m = one_vault();
    // Each PE stores to address peID * 16 in its own bank.
    let mut b = ProgramBuilder::new();
    b.push(Instruction::CalcArf {
        op: ArfOp::Mul,
        dst: AddrReg::new(8),
        src1: ARF_PE_ID,
        src2: ArfSrc::Imm(16),
        simb_mask: all(),
    });
    b.push(seti_f32(0, 7.0, all()));
    b.push(Instruction::StRf {
        dram_addr: AddrOperand::Indirect(AddrReg::new(8)),
        drf: DataReg::new(0),
        simb_mask: all(),
    });
    run(&mut m, b.seal().unwrap());
    for pg in 0..8 {
        for pe in 0..4u32 {
            let arr = m.vault(0, 0).bank_array(pg, pe as usize);
            assert_eq!(arr.read_f32(pe * 16), 7.0, "pe {pe} of pg {pg}");
            // Other slots untouched.
            for other in 0..4u32 {
                if other != pe {
                    assert_eq!(arr.read_f32(other * 16), 0.0);
                }
            }
        }
    }
}

#[test]
fn control_flow_loop_accumulates() {
    let mut m = one_vault();
    let mut b = ProgramBuilder::new();
    // c0 = 5 iterations; accumulate d0 += 1.0 each iteration.
    b.push(Instruction::SetiCrf { dst: CtrlReg::new(0), imm: 5 });
    b.push(seti_f32(1, 1.0, all()));
    b.push(Instruction::Reset { drf: DataReg::new(0), simb_mask: all() });
    let top = b.new_label();
    b.bind(top).unwrap();
    b.push(comp(CompOp::Add, 0, 0, 1, all()));
    b.push(Instruction::CalcCrf {
        op: CrfOp::Sub,
        dst: CtrlReg::new(0),
        src1: CtrlReg::new(0),
        src2: CrfSrc::Imm(1),
    });
    b.push_cjump_to(CtrlReg::new(0), top);
    let report = run(&mut m, b.seal().unwrap());
    for pe in 0..W {
        assert_eq!(f32::from_bits(m.vault(0, 0).data_rf(pe)[0][0]), 5.0);
    }
    // 5 iterations × 3 instructions + 3 prologue.
    assert_eq!(report.stats.issued, 18);
    assert!(report.stats.stalls.branch > 0, "taken branches should bubble");
}

#[test]
fn pgsm_shares_data_between_pes_of_a_pg() {
    let mut m = one_vault();
    let pe0: SimbMask = SimbMask::single(W, 0).unwrap();
    let pe1 = SimbMask::single(W, 1).unwrap();
    let mut b = ProgramBuilder::new();
    b.push(seti_f32(0, 42.0, pe0));
    b.push(Instruction::WrPgsm {
        pgsm_addr: AddrOperand::Imm(32),
        drf: DataReg::new(0),
        simb_mask: pe0,
    });
    b.push(Instruction::RdPgsm {
        pgsm_addr: AddrOperand::Imm(32),
        drf: DataReg::new(3),
        simb_mask: pe1,
    });
    run(&mut m, b.seal().unwrap());
    assert_eq!(f32::from_bits(m.vault(0, 0).data_rf(1)[3][0]), 42.0);
    // PE 4 is in a different PG: its PGSM was untouched.
    assert_eq!(m.vault(0, 0).data_rf(4)[3][0], 0);
}

#[test]
fn vsm_shares_data_across_pgs() {
    let mut m = one_vault();
    let pe0 = SimbMask::single(W, 0).unwrap(); // PG 0
    let pe7 = SimbMask::single(W, 7 * 4).unwrap(); // PG 7
    let mut b = ProgramBuilder::new();
    b.push(seti_f32(0, -3.5, pe0));
    b.push(Instruction::WrVsm {
        vsm_addr: AddrOperand::Imm(128),
        drf: DataReg::new(0),
        simb_mask: pe0,
    });
    b.push(Instruction::RdVsm {
        vsm_addr: AddrOperand::Imm(128),
        drf: DataReg::new(5),
        simb_mask: pe7,
    });
    run(&mut m, b.seal().unwrap());
    assert_eq!(f32::from_bits(m.vault(0, 0).data_rf(28)[5][0]), -3.5);
}

#[test]
fn waw_reuse_stalls_but_distinct_registers_overlap() {
    // Two long-latency MACs: writing the same destination must serialize
    // (WAW hazard at the in-order core); distinct destinations overlap.
    // This is the microarchitectural basis of the compiler's "max" register
    // allocation policy (paper Sec. V-C).
    let prog = |dst2: u8| {
        let mut b = ProgramBuilder::new();
        b.push(seti_f32(1, 1.0, all()));
        b.push(seti_f32(2, 2.0, all()));
        for _ in 0..32 {
            b.push(comp(CompOp::Mac, 3, 1, 2, all()));
            b.push(comp(CompOp::Mac, dst2, 1, 2, all()));
        }
        b.seal().unwrap()
    };
    let mut m1 = one_vault();
    let serial = run(&mut m1, prog(3)).cycles;
    let mut m2 = one_vault();
    let overlapped = run(&mut m2, prog(4)).cycles;
    assert!(overlapped < serial, "distinct destinations should overlap: {overlapped} vs {serial}");
}

#[test]
fn vsm_reads_serialize_on_tsv() {
    // A SIMB rd_vsm across 32 PEs must serialize on the single TSV port;
    // a SIMB rd_pgsm uses per-PE ports and is far faster.
    let mut bv = ProgramBuilder::new();
    bv.push(Instruction::RdVsm {
        vsm_addr: AddrOperand::Imm(0),
        drf: DataReg::new(0),
        simb_mask: all(),
    });
    let mut bp = ProgramBuilder::new();
    bp.push(Instruction::RdPgsm {
        pgsm_addr: AddrOperand::Imm(0),
        drf: DataReg::new(0),
        simb_mask: all(),
    });
    let mut m1 = one_vault();
    let vsm_cycles = run(&mut m1, bv.seal().unwrap()).cycles;
    let mut m2 = one_vault();
    let pgsm_cycles = run(&mut m2, bp.seal().unwrap()).cycles;
    assert!(vsm_cycles >= pgsm_cycles + (W as u64) - 4, "vsm={vsm_cycles} pgsm={pgsm_cycles}");
}

#[test]
fn base_die_placement_is_slower_for_streaming_loads() {
    let streaming = || {
        let mut b = ProgramBuilder::new();
        for i in 0..16u32 {
            b.push(Instruction::LdRf {
                dram_addr: AddrOperand::Imm(i * 16),
                drf: DataReg::new((i % 32) as u8),
                simb_mask: all(),
            });
        }
        b.seal().unwrap()
    };
    let mut near = Machine::new(MachineConfig::vault_slice(1));
    let near_cycles = run(&mut near, streaming()).cycles;
    let mut ponb = Machine::new(MachineConfig {
        placement: Placement::BaseDie,
        ..MachineConfig::vault_slice(1)
    });
    let ponb_cycles = run(&mut ponb, streaming()).cycles;
    assert!(
        ponb_cycles as f64 > near_cycles as f64 * 1.8,
        "PonB should serialize on TSVs: near={near_cycles} ponb={ponb_cycles}"
    );
}

#[test]
fn remote_req_fetches_across_vaults() {
    let mut m = Machine::new(MachineConfig::vault_slice(2));
    // Vault 1's PG 2 / PE 3 bank holds a value at address 256.
    m.vault_mut(0, 1).bank_array_mut(2, 3).write_f32(256, 99.5);
    // Vault 0 requests it into VSM address 64, then PE 0 reads it.
    let pe0 = SimbMask::single(W, 0).unwrap();
    let mut b = ProgramBuilder::new();
    b.push(Instruction::Req {
        target: RemoteTarget { chip: 0, vault: 1, pg: 2, pe: 3 },
        dram_addr: CrfSrc::Imm(256),
        vsm_addr: CrfSrc::Imm(64),
    });
    b.push(Instruction::RdVsm {
        vsm_addr: AddrOperand::Imm(64),
        drf: DataReg::new(9),
        simb_mask: pe0,
    });
    // Only vault 0 runs the req; vault 1 runs an empty filter via masks —
    // the program is SPMD, so guard with vaultID would normally be used.
    // Here both vaults issue the same req; that is fine (vault 1 requests
    // from itself-as-remote too) and exercises concurrent serving.
    m.load_program_all(&b.seal().unwrap());
    let report = m.run(1_000_000).expect("quiesce");
    assert_eq!(f32::from_bits(m.vault(0, 0).data_rf(0)[9][0]), 99.5);
    assert_eq!(report.stats.remote_reqs, 2);
    assert!(report.stats.stalls.vsm_interlock > 0, "rd_vsm must wait for req");
}

#[test]
fn sync_barrier_aligns_vaults() {
    let mut m = Machine::new(MachineConfig::vault_slice(4));
    let mut b = ProgramBuilder::new();
    // Vault-dependent work before the barrier: vault v loops v*20 times.
    b.push(Instruction::SetiCrf { dst: CtrlReg::new(1), imm: 0 });
    // c0 = vaultID * 20 — materialize via repeated adds driven from a
    // per-vault loop... simpler: every vault spins a fixed loop but vault
    // differences come from DRAM latency; just check the barrier completes
    // and both phases execute.
    b.push(seti_f32(0, 1.0, all()));
    b.push(Instruction::Sync { phase_id: 1 });
    b.push(seti_f32(1, 2.0, all()));
    let report = run(&mut m, b.seal().unwrap());
    assert_eq!(report.stats.by_category.synchronization, 4);
    for v in 0..4 {
        assert_eq!(f32::from_bits(m.vault(0, v).data_rf(0)[1][0]), 2.0);
    }
}

#[test]
fn gather_via_mov_data_dependent_address() {
    let mut m = one_vault();
    // Bank holds a table at 0..256; index value 3 stored as float in d0;
    // convert to address 3*16 and gather.
    for pg in 0..8 {
        for pe in 0..4 {
            let arr = m.vault_mut(0, 0).bank_array_mut(pg, pe);
            for slot in 0..16u32 {
                arr.write_f32(slot * 16, 100.0 + slot as f32);
            }
        }
    }
    let mut b = ProgramBuilder::new();
    b.push(seti_f32(0, 3.0, all()));
    // d1 = int(d0) (lane 0), then a8 = d1.0 * 16
    b.push(Instruction::Comp {
        op: CompOp::CvtF2I,
        dtype: DataType::I32,
        mode: CompMode::VectorVector,
        dst: DataReg::new(1),
        src1: DataReg::new(0),
        src2: DataReg::new(0),
        vec_mask: VecMask::ALL,
        simb_mask: all(),
    });
    b.push(Instruction::Mov {
        to_arf: true,
        arf: AddrReg::new(8),
        drf: DataReg::new(1),
        lane: 0,
        simb_mask: all(),
    });
    b.push(Instruction::CalcArf {
        op: ArfOp::Mul,
        dst: AddrReg::new(8),
        src1: AddrReg::new(8),
        src2: ArfSrc::Imm(16),
        simb_mask: all(),
    });
    b.push(Instruction::LdRf {
        dram_addr: AddrOperand::Indirect(AddrReg::new(8)),
        drf: DataReg::new(2),
        simb_mask: all(),
    });
    run(&mut m, b.seal().unwrap());
    for pe in 0..W {
        assert_eq!(f32::from_bits(m.vault(0, 0).data_rf(pe)[2][0]), 103.0);
    }
}

#[test]
fn issue_queue_limits_outstanding_work() {
    // More independent loads than the DRAM request queue can hold: the core
    // must stall with queue-full or hazard stalls but still finish.
    let mut b = ProgramBuilder::new();
    for i in 0..80u32 {
        b.push(Instruction::LdRf {
            dram_addr: AddrOperand::Imm((i % 64) * 16),
            drf: DataReg::new((i % 64) as u8),
            simb_mask: all(),
        });
    }
    let mut m = one_vault();
    let report = run(&mut m, b.seal().unwrap());
    assert_eq!(report.stats.by_category.intra_vault, 80);
    assert!(report.stats.stalls.total() > 0);
}

#[test]
fn report_aggregates_dram_traffic() {
    let mut b = ProgramBuilder::new();
    b.push(Instruction::LdRf {
        dram_addr: AddrOperand::Imm(0),
        drf: DataReg::new(0),
        simb_mask: all(),
    });
    b.push(Instruction::StRf {
        dram_addr: AddrOperand::Imm(16),
        drf: DataReg::new(0),
        simb_mask: all(),
    });
    let mut m = one_vault();
    let report = run(&mut m, b.seal().unwrap());
    assert_eq!(report.bank_stats.reads, W as u64);
    assert_eq!(report.bank_stats.writes, W as u64);
    assert_eq!(report.dram_bytes(), (2 * W * 16) as u64);
    assert!(report.energy.total_pj() > 0.0);
    assert!(report.energy.dram.cas_pj > 0.0);
    assert!(report.stats.ipc() > 0.0);
}

#[test]
fn int32_lane_arithmetic() {
    let mut m = one_vault();
    let mut b = ProgramBuilder::new();
    b.push(Instruction::SetiDrf {
        drf: DataReg::new(0),
        imm: 7u32,
        vec_mask: VecMask::ALL,
        simb_mask: all(),
    });
    b.push(Instruction::SetiDrf {
        drf: DataReg::new(1),
        imm: (-3i32) as u32,
        vec_mask: VecMask::ALL,
        simb_mask: all(),
    });
    b.push(Instruction::Comp {
        op: CompOp::Mul,
        dtype: DataType::I32,
        mode: CompMode::VectorVector,
        dst: DataReg::new(2),
        src1: DataReg::new(0),
        src2: DataReg::new(1),
        vec_mask: VecMask::ALL,
        simb_mask: all(),
    });
    run(&mut m, b.seal().unwrap());
    assert_eq!(m.vault(0, 0).data_rf(0)[2][0] as i32, -21);
}

#[test]
fn partial_vec_mask_preserves_inactive_lanes() {
    let mut m = one_vault();
    let mut b = ProgramBuilder::new();
    b.push(seti_f32(0, 5.0, all()));
    b.push(Instruction::SetiDrf {
        drf: DataReg::new(0),
        imm: 9.0f32.to_bits(),
        vec_mask: VecMask::first(2),
        simb_mask: all(),
    });
    run(&mut m, b.seal().unwrap());
    let v = m.vault(0, 0).data_rf(0)[0];
    assert_eq!(f32::from_bits(v[0]), 9.0);
    assert_eq!(f32::from_bits(v[1]), 9.0);
    assert_eq!(f32::from_bits(v[2]), 5.0);
    assert_eq!(f32::from_bits(v[3]), 5.0);
}

#[test]
fn cross_cube_req_traverses_serdes() {
    // Two cubes of one vault each: the req crosses the SERDES link.
    let config = MachineConfig { cubes: 2, vaults_per_cube: 1, ..MachineConfig::vault_slice(1) };
    let mut m = Machine::new(config);
    m.vault_mut(1, 0).bank_array_mut(0, 0).write_f32(128, 77.25);
    let pe0 = SimbMask::single(W, 0).unwrap();
    let mut b = ProgramBuilder::new();
    b.push(Instruction::Req {
        target: RemoteTarget { chip: 1, vault: 0, pg: 0, pe: 0 },
        dram_addr: CrfSrc::Imm(128),
        vsm_addr: CrfSrc::Imm(32),
    });
    b.push(Instruction::RdVsm {
        vsm_addr: AddrOperand::Imm(32),
        drf: DataReg::new(7),
        simb_mask: pe0,
    });
    m.load_program_all(&b.seal().unwrap());
    let report = m.run(1_000_000).expect("quiesce");
    assert_eq!(f32::from_bits(m.vault(0, 0).data_rf(0)[7][0]), 77.25);
    assert!(report.energy.serdes_pj > 0.0, "SERDES energy must be charged");
}

#[test]
fn load_program_resets_register_files() {
    let mut m = one_vault();
    let mut b1 = ProgramBuilder::new();
    b1.push(seti_f32(5, 9.0, all()));
    m.load_program_all(&b1.seal().unwrap());
    m.run(100_000).expect("first run");
    assert_eq!(f32::from_bits(m.vault(0, 0).data_rf(0)[5][0]), 9.0);

    // A second program sees cleared registers but preserved banks.
    m.vault_mut(0, 0).bank_array_mut(0, 0).write_f32(0, 3.5);
    let mut b2 = ProgramBuilder::new();
    b2.push(Instruction::LdRf {
        dram_addr: AddrOperand::Imm(0),
        drf: DataReg::new(6),
        simb_mask: all(),
    });
    m.load_program_all(&b2.seal().unwrap());
    m.run(100_000).expect("second run");
    assert_eq!(f32::from_bits(m.vault(0, 0).data_rf(0)[6][0]), 3.5);
}

#[test]
fn report_is_deterministic_across_identical_runs() {
    let prog = {
        let mut b = ProgramBuilder::new();
        b.push(seti_f32(0, 1.0, all()));
        for i in 0..8u32 {
            b.push(Instruction::StRf {
                dram_addr: AddrOperand::Imm(i * 16),
                drf: DataReg::new(0),
                simb_mask: all(),
            });
        }
        b.seal().unwrap()
    };
    let run = || {
        let mut m = one_vault();
        m.load_program_all(&prog);
        m.run(1_000_000).expect("quiesce").cycles
    };
    assert_eq!(run(), run());
}
