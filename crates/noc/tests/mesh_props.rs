//! Property tests for the mesh: every injected packet is delivered exactly
//! once to its destination, regardless of traffic pattern.

use ipim_noc::{Mesh, MeshConfig, NodeId, Packet, PacketId};
use proptest::prelude::*;
use std::collections::HashMap;

fn arb_packets() -> impl Strategy<Value = Vec<((u8, u8), (u8, u8), u32)>> {
    proptest::collection::vec(
        ((0u8..4, 0u8..4), (0u8..4, 0u8..4), prop_oneof![Just(16u32), Just(32), Just(64)]),
        1..50,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn all_packets_delivered_exactly_once(specs in arb_packets()) {
        let mut mesh: Mesh<u64> = Mesh::new(MeshConfig::default());
        let mut to_send: std::collections::VecDeque<_> = specs
            .iter()
            .enumerate()
            .map(|(i, (src, dst, bytes))| Packet {
                id: PacketId(i as u64),
                src: NodeId { x: src.0, y: src.1 },
                dst: NodeId { x: dst.0, y: dst.1 },
                bytes: *bytes,
                payload: i as u64,
            })
            .collect();
        let mut received: HashMap<u64, NodeId> = HashMap::new();
        let mut now = 0u64;
        while received.len() < specs.len() {
            if let Some(p) = to_send.front() {
                let p = p.clone();
                if mesh.inject(p, now) {
                    to_send.pop_front();
                }
            }
            for p in mesh.tick(now) {
                let prev = received.insert(p.payload, p.dst);
                prop_assert!(prev.is_none(), "duplicate delivery of {}", p.payload);
                // Delivered at the right node.
                let want = &specs[p.payload as usize].1;
                prop_assert_eq!(p.dst, NodeId { x: want.0, y: want.1 });
            }
            now += 1;
            prop_assert!(now < 100_000, "deliveries stalled");
        }
        // Network drains completely.
        for _ in 0..100 {
            mesh.tick(now);
            now += 1;
        }
        prop_assert!(mesh.is_idle());
    }

    #[test]
    fn hop_count_bounds_latency(src in (0u8..4, 0u8..4), dst in (0u8..4, 0u8..4)) {
        let mut mesh: Mesh<u8> = Mesh::new(MeshConfig::default());
        let p = Packet {
            id: PacketId(0),
            src: NodeId { x: src.0, y: src.1 },
            dst: NodeId { x: dst.0, y: dst.1 },
            bytes: 16,
            payload: 9,
        };
        let hops = mesh.hops(p.src, p.dst) as u64;
        prop_assert!(mesh.inject(p, 0));
        let mut now = 0u64;
        loop {
            if !mesh.tick(now).is_empty() {
                break;
            }
            now += 1;
            prop_assert!(now < 1000);
        }
        // One hop per cycle plus injection/ejection overhead.
        prop_assert!(now >= hops, "arrived before traversing {hops} hops");
        prop_assert!(now <= hops + 4, "uncontended latency too high: {now} vs {hops} hops");
    }
}
