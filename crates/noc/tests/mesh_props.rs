//! Property tests for the mesh: every injected packet is delivered exactly
//! once to its destination, regardless of traffic pattern.

use ipim_noc::{Mesh, MeshConfig, NodeId, Packet, PacketId};
use ipim_simkit::check;
use ipim_simkit::prop::{tuple2, tuple3, u32_in, u8_in, vec_of, Gen};
use std::collections::HashMap;

type PacketSpec = ((u8, u8), (u8, u8), u32);

fn arb_packets() -> Gen<Vec<PacketSpec>> {
    let coord = || tuple2(u8_in(0, 4), u8_in(0, 4));
    // Sizes 16/32/64 bytes, generated as an exponent so shrinking stays
    // within the valid set.
    let bytes = u32_in(0, 3).map(|e| 16u32 << e);
    vec_of(tuple3(coord(), coord(), bytes), 1, 50)
}

#[test]
fn all_packets_delivered_exactly_once() {
    check("all_packets_delivered_exactly_once", &arb_packets(), |specs| {
        let mut mesh: Mesh<u64> = Mesh::new(MeshConfig::default());
        let mut to_send: std::collections::VecDeque<_> = specs
            .iter()
            .enumerate()
            .map(|(i, (src, dst, bytes))| Packet {
                id: PacketId(i as u64),
                src: NodeId { x: src.0, y: src.1 },
                dst: NodeId { x: dst.0, y: dst.1 },
                bytes: *bytes,
                payload: i as u64,
            })
            .collect();
        let mut received: HashMap<u64, NodeId> = HashMap::new();
        let mut now = 0u64;
        while received.len() < specs.len() {
            if let Some(p) = to_send.front() {
                let p = p.clone();
                if mesh.inject(p, now) {
                    to_send.pop_front();
                }
            }
            for p in mesh.tick(now) {
                let prev = received.insert(p.payload, p.dst);
                assert!(prev.is_none(), "duplicate delivery of {}", p.payload);
                // Delivered at the right node.
                let want = &specs[p.payload as usize].1;
                assert_eq!(p.dst, NodeId { x: want.0, y: want.1 });
            }
            now += 1;
            assert!(now < 100_000, "deliveries stalled");
        }
        // Network drains completely.
        for _ in 0..100 {
            mesh.tick(now);
            now += 1;
        }
        assert!(mesh.is_idle());
    });
}

#[test]
fn hop_count_bounds_latency() {
    let endpoints = tuple2(tuple2(u8_in(0, 4), u8_in(0, 4)), tuple2(u8_in(0, 4), u8_in(0, 4)));
    check("hop_count_bounds_latency", &endpoints, |&(src, dst)| {
        let mut mesh: Mesh<u8> = Mesh::new(MeshConfig::default());
        let p = Packet {
            id: PacketId(0),
            src: NodeId { x: src.0, y: src.1 },
            dst: NodeId { x: dst.0, y: dst.1 },
            bytes: 16,
            payload: 9,
        };
        let hops = mesh.hops(p.src, p.dst) as u64;
        assert!(mesh.inject(p, 0));
        let mut now = 0u64;
        loop {
            if !mesh.tick(now).is_empty() {
                break;
            }
            now += 1;
            assert!(now < 1000);
        }
        // One hop per cycle plus injection/ejection overhead.
        assert!(now >= hops, "arrived before traversing {hops} hops");
        assert!(now <= hops + 4, "uncontended latency too high: {now} vs {hops} hops");
    });
}
