//! Interconnect model: on-chip 2D mesh, input-queued routers with X-Y
//! routing, and off-chip SERDES links between cubes (paper Sec. IV-E).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod mesh;
mod router;

pub use mesh::{Mesh, MeshConfig};
pub use router::{Flit, NodeId, Packet, PacketId, Router, RouterStats};
