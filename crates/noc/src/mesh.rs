//! 2D-mesh network built from input-queued routers.

use std::collections::VecDeque;

use ipim_trace::{CompId, TraceEvent, Tracer};

use crate::router::{Flit, Port, PORTS};
use crate::{NodeId, Packet, Router};

/// Mesh construction parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeshConfig {
    /// Mesh columns.
    pub width: u8,
    /// Mesh rows.
    pub height: u8,
    /// Flit capacity of each router input queue.
    pub queue_capacity: usize,
}

impl Default for MeshConfig {
    fn default() -> Self {
        // A 4×4 mesh connects the 16 vaults of one cube (paper Table III).
        Self { width: 4, height: 4, queue_capacity: 8 }
    }
}

/// A 2D-mesh interconnect transporting [`Packet`]s between nodes.
///
/// Each [`tick`](Mesh::tick) moves each flit at most one hop, so latency is
/// one cycle per hop (Table III: `tNoC` = 1 ns/hop). Bounded input queues
/// provide credit-style back-pressure.
#[derive(Debug, Clone)]
pub struct Mesh<P> {
    config: MeshConfig,
    routers: Vec<Router<P>>,
    delivered: VecDeque<Packet<P>>,
    flit_hops: u64,
    tracer: Tracer,
    router_comps: Vec<CompId>,
}

impl<P: Clone> Mesh<P> {
    /// Creates an idle mesh.
    pub fn new(config: MeshConfig) -> Self {
        assert!(config.width >= 1 && config.height >= 1, "mesh must be non-empty");
        let routers = (0..config.height)
            .flat_map(|y| (0..config.width).map(move |x| NodeId { x, y }))
            .map(|id| Router::new(id, config.queue_capacity))
            .collect();
        Self {
            config,
            routers,
            delivered: VecDeque::new(),
            flit_hops: 0,
            tracer: Tracer::default(),
            router_comps: Vec::new(),
        }
    }

    /// The construction parameters.
    pub fn config(&self) -> &MeshConfig {
        &self.config
    }

    /// Attaches a tracer, with one component id per router (row-major, the
    /// same order as [`MeshConfig`] node indexing).
    ///
    /// # Panics
    ///
    /// Panics unless exactly one component id is supplied per router.
    pub fn attach_trace(&mut self, tracer: Tracer, router_comps: Vec<CompId>) {
        assert_eq!(router_comps.len(), self.routers.len(), "one component id per router");
        self.tracer = tracer;
        self.router_comps = router_comps;
    }

    fn index(&self, n: NodeId) -> usize {
        assert!(n.x < self.config.width && n.y < self.config.height, "node {n} outside mesh");
        n.y as usize * self.config.width as usize + n.x as usize
    }

    fn neighbour(&self, n: NodeId, port: Port) -> Option<NodeId> {
        match port {
            Port::North if n.y > 0 => Some(NodeId { x: n.x, y: n.y - 1 }),
            Port::South if n.y + 1 < self.config.height => Some(NodeId { x: n.x, y: n.y + 1 }),
            Port::East if n.x + 1 < self.config.width => Some(NodeId { x: n.x + 1, y: n.y }),
            Port::West if n.x > 0 => Some(NodeId { x: n.x - 1, y: n.y }),
            _ => None,
        }
    }

    /// Injects a packet at its source node's local port.
    ///
    /// Returns `false` (and drops nothing — the caller retries) when the
    /// local input queue lacks space for all flits of the packet; this is
    /// the back-pressure a vault NIC sees.
    ///
    /// # Panics
    ///
    /// Panics if the packet's `src` or `dst` lies outside the mesh.
    pub fn inject(&mut self, packet: Packet<P>, now: u64) -> bool {
        let src = self.index(packet.src);
        self.index(packet.dst); // validate dst
        let flits = packet.flits();
        let local = Router::<P>::port_index(Port::Local);
        let cap = self.routers[src].capacity;
        if self.routers[src].inputs[local].len() + flits as usize > cap {
            return false;
        }
        let dst = packet.dst;
        let id = packet.id;
        for i in 0..flits {
            let is_tail = i + 1 == flits;
            self.routers[src].inputs[local].push_back(Flit {
                id,
                dst,
                is_tail,
                payload: is_tail.then(|| packet.clone()),
                moved_at: now,
            });
        }
        true
    }

    /// Advances the network one cycle; returns packets whose tail flit
    /// reached the destination this cycle.
    pub fn tick(&mut self, now: u64) -> Vec<Packet<P>> {
        // For every router and every output port, move at most one flit.
        for r in 0..self.routers.len() {
            let node = self.routers[r].id;
            for (out, &port) in PORTS.iter().enumerate() {
                // Which input currently owns this output?
                let owner = match self.routers[r].alloc[out] {
                    Some(i) => Some(i),
                    None => self.routers[r].pick_input_for(out, now),
                };
                let Some(input) = owner else { continue };
                // The owner's head flit must still route to this output (a
                // wormhole allocation only ever sees flits of one packet).
                let Some(head) = self.routers[r].inputs[input].front() else {
                    self.routers[r].alloc[out] = None;
                    continue;
                };
                if head.moved_at == now {
                    continue;
                }
                if Router::<P>::port_index(self.routers[r].route(head.dst)) != out {
                    // Interleaved packet from the same input wants another
                    // output; release allocation.
                    self.routers[r].alloc[out] = None;
                    continue;
                }
                match port {
                    Port::Local => {
                        // Eject at destination.
                        let mut flit = self.routers[r].inputs[input].pop_front().expect("head");
                        flit.moved_at = now;
                        self.routers[r].stats.flits_forwarded += 1;
                        if self.tracer.enabled() {
                            let comp = self.router_comps[r];
                            self.tracer.emit(now, comp, || TraceEvent::FlitHop { delivered: true });
                        }
                        let is_tail = flit.is_tail;
                        if let Some(p) = flit.payload.take() {
                            self.delivered.push_back(p);
                        }
                        self.routers[r].alloc[out] = if is_tail { None } else { Some(input) };
                    }
                    _ => {
                        let Some(next) = self.neighbour(node, port) else {
                            // X-Y routing never routes off-mesh for valid
                            // destinations; a flit here is a bug.
                            panic!("flit routed off mesh edge at {node}");
                        };
                        let next_idx = self.index(next);
                        let downstream_port = Router::<P>::port_index(match port {
                            Port::North => Port::South,
                            Port::South => Port::North,
                            Port::East => Port::West,
                            Port::West => Port::East,
                            Port::Local => unreachable!(),
                        });
                        if self.routers[next_idx].inputs[downstream_port].len()
                            >= self.routers[next_idx].capacity
                        {
                            self.routers[r].stats.stall_cycles += 1;
                            if self.tracer.enabled() {
                                let comp = self.router_comps[r];
                                self.tracer.emit(now, comp, || TraceEvent::CreditStall);
                            }
                            self.routers[r].alloc[out] = Some(input);
                            continue;
                        }
                        let mut flit = self.routers[r].inputs[input].pop_front().expect("head");
                        flit.moved_at = now;
                        let is_tail = flit.is_tail;
                        self.routers[next_idx].inputs[downstream_port].push_back(flit);
                        self.routers[r].stats.flits_forwarded += 1;
                        self.flit_hops += 1;
                        if self.tracer.enabled() {
                            let comp = self.router_comps[r];
                            self.tracer
                                .emit(now, comp, || TraceEvent::FlitHop { delivered: false });
                        }
                        self.routers[r].alloc[out] = if is_tail { None } else { Some(input) };
                    }
                }
            }
        }
        self.delivered.drain(..).collect()
    }

    /// Whether any flit is still in flight.
    pub fn is_idle(&self) -> bool {
        self.routers.iter().all(|r| r.queued_flits() == 0) && self.delivered.is_empty()
    }

    /// Sound lower bound on the next cycle `>= now` at which a
    /// [`tick`](Mesh::tick) can change mesh state. An idle mesh never acts
    /// spontaneously (`None`); a mesh with flits in flight moves them every
    /// cycle, so the bound is `now` itself — routers have no timers, which
    /// keeps this exact rather than conservative.
    pub fn next_event(&self, now: u64) -> Option<u64> {
        let routers = self.routers.iter().filter_map(|r| r.next_event(now)).min();
        match routers {
            Some(t) => Some(t),
            None if !self.delivered.is_empty() => Some(now),
            None => None,
        }
    }

    /// Total link traversals (flit-hops), for interconnect energy.
    pub fn flit_hops(&self) -> u64 {
        self.flit_hops
    }

    /// Manhattan hop distance between two nodes.
    pub fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        (a.x.abs_diff(b.x) + a.y.abs_diff(b.y)) as u32
    }

    /// Sum of router statistics across the mesh.
    pub fn total_stats(&self) -> crate::RouterStats {
        let mut s = crate::RouterStats::default();
        for r in &self.routers {
            s.flits_forwarded += r.stats.flits_forwarded;
            s.stall_cycles += r.stats.stall_cycles;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh<u32> {
        Mesh::new(MeshConfig::default())
    }

    fn packet(id: u64, src: (u8, u8), dst: (u8, u8), bytes: u32, val: u32) -> Packet<u32> {
        Packet {
            id: crate::PacketId(id),
            src: NodeId { x: src.0, y: src.1 },
            dst: NodeId { x: dst.0, y: dst.1 },
            bytes,
            payload: val,
        }
    }

    fn run(m: &mut Mesh<u32>, start: u64, n: usize) -> (Vec<Packet<u32>>, u64) {
        let mut out = Vec::new();
        let mut now = start;
        while out.len() < n {
            out.extend(m.tick(now));
            now += 1;
            assert!(now < start + 10_000, "packets not delivered");
        }
        (out, now)
    }

    #[test]
    fn delivers_single_packet() {
        let mut m = mesh();
        assert!(m.inject(packet(1, (0, 0), (3, 3), 16, 42), 0));
        let (got, _) = run(&mut m, 0, 1);
        assert_eq!(got[0].payload, 42);
        assert!(m.is_idle());
    }

    #[test]
    fn latency_scales_with_hops() {
        let mut near = mesh();
        assert!(near.inject(packet(1, (0, 0), (1, 0), 16, 0), 0));
        let (_, t_near) = run(&mut near, 0, 1);
        let mut far = mesh();
        assert!(far.inject(packet(1, (0, 0), (3, 3), 16, 0), 0));
        let (_, t_far) = run(&mut far, 0, 1);
        assert!(t_far > t_near, "far={t_far} near={t_near}");
    }

    #[test]
    fn local_delivery_same_node() {
        let mut m = mesh();
        assert!(m.inject(packet(1, (2, 2), (2, 2), 16, 7), 0));
        let (got, _) = run(&mut m, 0, 1);
        assert_eq!(got[0].payload, 7);
    }

    #[test]
    fn multi_flit_packet_arrives_whole() {
        let mut m = mesh();
        assert!(m.inject(packet(1, (0, 0), (2, 1), 64, 9), 0)); // 4 flits
        let (got, _) = run(&mut m, 0, 1);
        assert_eq!(got[0].payload, 9);
        assert_eq!(got[0].flits(), 4);
        assert!(m.is_idle());
    }

    #[test]
    fn many_packets_all_arrive() {
        let mut m = mesh();
        let mut now = 0;
        let mut sent = 0u64;
        let mut received = Vec::new();
        while sent < 40 {
            let p = packet(sent, ((sent % 4) as u8, 0), (3, 3), 16, sent as u32);
            if m.inject(p, now) {
                sent += 1;
            }
            received.extend(m.tick(now));
            now += 1;
        }
        while received.len() < 40 {
            received.extend(m.tick(now));
            now += 1;
            assert!(now < 10_000);
        }
        let mut vals: Vec<u32> = received.iter().map(|p| p.payload).collect();
        vals.sort_unstable();
        assert_eq!(vals, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn injection_backpressure_when_full() {
        let mut m = mesh();
        let mut accepted = 0;
        for i in 0..20 {
            if m.inject(packet(i, (0, 0), (3, 3), 16, 0), 0) {
                accepted += 1;
            }
        }
        assert!(accepted >= 1);
        assert!(accepted <= 8, "queue capacity must bound injection: {accepted}");
    }

    #[test]
    fn hop_count_is_manhattan() {
        let m = mesh();
        assert_eq!(m.hops(NodeId { x: 0, y: 0 }, NodeId { x: 3, y: 2 }), 5);
        assert_eq!(m.hops(NodeId { x: 1, y: 1 }, NodeId { x: 1, y: 1 }), 0);
    }

    #[test]
    fn flit_hops_counted() {
        let mut m = mesh();
        assert!(m.inject(packet(1, (0, 0), (2, 0), 16, 0), 0));
        run(&mut m, 0, 1);
        assert_eq!(m.flit_hops(), 2);
    }

    #[test]
    #[should_panic(expected = "outside mesh")]
    fn inject_out_of_range_panics() {
        let mut m = mesh();
        m.inject(packet(1, (0, 0), (9, 9), 16, 0), 0);
    }

    #[test]
    fn one_by_one_mesh_delivers_locally() {
        let mut m: Mesh<u32> = Mesh::new(MeshConfig { width: 1, height: 1, queue_capacity: 4 });
        assert!(m.inject(packet(1, (0, 0), (0, 0), 16, 5), 0));
        let mut now = 0;
        let mut got = Vec::new();
        while got.is_empty() {
            got.extend(m.tick(now));
            now += 1;
            assert!(now < 100);
        }
        assert_eq!(got[0].payload, 5);
    }
}
