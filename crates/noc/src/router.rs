//! Input-queued wormhole router with X-Y dimension-order routing.

use std::collections::VecDeque;

/// Identifier of a mesh node `(x, y)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId {
    /// Column.
    pub x: u8,
    /// Row.
    pub y: u8,
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// Unique packet identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PacketId(pub u64);

/// A network packet carrying an opaque payload.
///
/// Packets are segmented into 16-byte flits at injection; the tail flit
/// carries the payload, so delivery happens when the tail drains at the
/// destination's local port.
#[derive(Debug, Clone, PartialEq)]
pub struct Packet<P> {
    /// Unique id.
    pub id: PacketId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Payload size in bytes (determines flit count).
    pub bytes: u32,
    /// Opaque payload delivered at the destination.
    pub payload: P,
}

impl<P> Packet<P> {
    /// Number of 16-byte flits this packet occupies (header rides along).
    pub fn flits(&self) -> u32 {
        self.bytes.div_ceil(16).max(1)
    }
}

/// One flit of a packet in flight.
#[derive(Debug, Clone)]
pub struct Flit<P> {
    /// The packet this flit belongs to.
    pub id: PacketId,
    /// Destination node (routing key).
    pub dst: NodeId,
    /// Whether this is the tail flit.
    pub is_tail: bool,
    /// Payload, present only on the tail flit.
    pub payload: Option<Packet<P>>,
    /// Cycle stamp preventing multi-hop movement in one cycle.
    pub(crate) moved_at: u64,
}

/// Router port directions (4 mesh neighbours + the local PE/vault port).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Port {
    North,
    South,
    East,
    West,
    Local,
}

pub(crate) const PORTS: [Port; 5] = [Port::North, Port::South, Port::East, Port::West, Port::Local];

/// Activity counters of one router.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Flits forwarded through any output port.
    pub flits_forwarded: u64,
    /// Cycles in which a ready flit could not move (back-pressure).
    pub stall_cycles: u64,
}

/// An input-queued (IQ) router implementing X-Y routing with wormhole
/// output allocation (an output port is held by one input until the tail
/// flit passes), per paper Sec. IV-E.
#[derive(Debug, Clone)]
pub struct Router<P> {
    pub(crate) id: NodeId,
    pub(crate) inputs: Vec<VecDeque<Flit<P>>>,
    /// Output allocation: which input currently owns each output.
    pub(crate) alloc: Vec<Option<usize>>,
    pub(crate) capacity: usize,
    rr_next: usize,
    /// Forwarding statistics.
    pub stats: RouterStats,
}

impl<P> Router<P> {
    pub(crate) fn new(id: NodeId, capacity: usize) -> Self {
        Self {
            id,
            inputs: (0..PORTS.len()).map(|_| VecDeque::new()).collect(),
            alloc: vec![None; PORTS.len()],
            capacity,
            rr_next: 0,
            stats: RouterStats::default(),
        }
    }

    /// X-Y routing: route in X until the column matches, then in Y; then
    /// eject at the local port.
    pub(crate) fn route(&self, dst: NodeId) -> Port {
        if dst.x > self.id.x {
            Port::East
        } else if dst.x < self.id.x {
            Port::West
        } else if dst.y > self.id.y {
            Port::South
        } else if dst.y < self.id.y {
            Port::North
        } else {
            Port::Local
        }
    }

    pub(crate) fn port_index(port: Port) -> usize {
        PORTS.iter().position(|&p| p == port).expect("port in table")
    }

    /// Round-robin pick among inputs whose head flit requests `out`.
    pub(crate) fn pick_input_for(&mut self, out: usize, now: u64) -> Option<usize> {
        let n = self.inputs.len();
        for off in 0..n {
            let i = (self.rr_next + off) % n;
            if let Some(head) = self.inputs[i].front() {
                if head.moved_at != now && Self::port_index(self.route(head.dst)) == out {
                    self.rr_next = (i + 1) % n;
                    return Some(i);
                }
            }
        }
        None
    }

    /// Total queued flits (used for drain detection).
    pub fn queued_flits(&self) -> usize {
        self.inputs.iter().map(VecDeque::len).sum()
    }

    /// Sound lower bound on the next cycle `>= now` at which this router
    /// can act: `None` when no flit is queued (nothing to move, ever,
    /// without new injections), otherwise `now` (a queued flit may advance
    /// on the very next tick).
    pub fn next_event(&self, now: u64) -> Option<u64> {
        if self.queued_flits() == 0 {
            None
        } else {
            Some(now)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_flit_count() {
        let p = Packet {
            id: PacketId(1),
            src: NodeId { x: 0, y: 0 },
            dst: NodeId { x: 1, y: 1 },
            bytes: 16,
            payload: (),
        };
        assert_eq!(p.flits(), 1);
        let p2 = Packet { bytes: 17, ..p.clone() };
        assert_eq!(p2.flits(), 2);
        let p3 = Packet { bytes: 0, ..p };
        assert_eq!(p3.flits(), 1);
    }

    #[test]
    fn xy_routing_goes_x_first() {
        let r: Router<()> = Router::new(NodeId { x: 1, y: 1 }, 4);
        assert_eq!(r.route(NodeId { x: 3, y: 0 }), Port::East);
        assert_eq!(r.route(NodeId { x: 0, y: 3 }), Port::West);
        assert_eq!(r.route(NodeId { x: 1, y: 3 }), Port::South);
        assert_eq!(r.route(NodeId { x: 1, y: 0 }), Port::North);
        assert_eq!(r.route(NodeId { x: 1, y: 1 }), Port::Local);
    }
}
