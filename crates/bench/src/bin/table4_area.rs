//! Table IV: area of iPIM's components on each DRAM die, with the
//! decoupled-vs-naive control-core comparison (paper: 10.71% total
//! overhead; a per-bank control core would cost 122.36%, 10.42× more).

use ipim_bench::banner;
use ipim_core::area;

fn main() {
    banner("Table IV — per-DRAM-die area", "Sec. VII-B");
    println!("{:<26} {:>6} {:>10} {:>10}", "component", "count", "area mm2", "overhead");
    for item in area::table4_items() {
        println!(
            "{:<26} {:>6} {:>10.2} {:>9.2}%",
            item.name,
            item.count,
            item.area_mm2,
            item.overhead_pct(area::DRAM_DIE_MM2)
        );
    }
    println!(
        "{:<26} {:>6} {:>10.2} {:>9.2}%",
        "TOTAL",
        "-",
        area::total_added_mm2(),
        area::total_overhead_pct()
    );
    println!("\npaper: 10.28 mm2 total, 10.71% overhead");
    println!(
        "control core on base die: {:.2} mm2 (incl. {:.2} mm2 VSM), fits the {:.1} mm2/vault budget",
        area::CTRL_CORE_MM2,
        area::VSM_MM2,
        area::BASE_DIE_SPARE_PER_VAULT_MM2
    );
    println!(
        "naive per-bank cores would cost {:.1}% per die — {:.1}x the decoupled design (paper: 122.36%, 10.42x)",
        area::naive_per_bank_core_overhead_pct(),
        area::naive_per_bank_core_overhead_pct() / area::total_overhead_pct()
    );
}
