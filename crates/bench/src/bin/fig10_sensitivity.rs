//! Fig. 10: sensitivity of execution time to (a) DataRF entries and
//! (b) PGSM size (paper: RF=16/32/64 are 46.8%/26.8%/9.5% slower than
//! RF=128; PGSM=2K/4K are 58.9%/39.0% slower than 8K).

use ipim_bench::{banner, config_from_env, f, row};
use ipim_core::experiments::{fig10_pgsm, fig10_rf};

fn main() {
    let mut cfg = config_from_env();
    // The sweep runs 3 benchmarks × 7 machine configurations; halve the
    // image so the full sweep stays tractable (sensitivity is relative).
    cfg.scale.width = (cfg.scale.width / 2).max(128);
    cfg.scale.height = (cfg.scale.height / 2).max(128);
    banner("Fig. 10 — sensitivity to RF entries and PGSM size", "Sec. VII-C3");
    println!("(a) DataRF entries (normalized mean execution time; paper: 1.47/1.27/1.10/1.00)");
    let rf = fig10_rf(&cfg, &[16, 32, 64, 128]).expect("rf sweep");
    row("RF entries", &[("norm. time".into(), 11)]);
    for p in &rf {
        row(&p.value.to_string(), &[(f(p.normalized_time, 3), 11)]);
    }
    println!("\n(b) PGSM bytes (paper: 1.59/1.39/1.00)");
    let pg = fig10_pgsm(&cfg, &[2048, 4096, 8192]).expect("pgsm sweep");
    row("PGSM bytes", &[("norm. time".into(), 11)]);
    for p in &pg {
        row(&p.value.to_string(), &[(f(p.normalized_time, 3), 11)]);
    }
}
