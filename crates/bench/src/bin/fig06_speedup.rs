//! Fig. 6: throughput and speedup of iPIM over the V100 GPU
//! (paper: 11.02× average; Brighten 21.09×, Histogram 43.78×, Blur 4.32×,
//! Stencil Chain 4.30×).

use ipim_bench::{banner, config_from_env, f, row};
use ipim_core::experiments::{geomean, gpu_comparison, run_suite};

fn main() {
    let cfg = config_from_env();
    banner(
        "Fig. 6 — iPIM vs GPU throughput/speedup (cycle-accurate slice, scaled out)",
        "Sec. VII-B: 11.02x average speedup",
    );
    let suite = run_suite(&cfg).expect("suite");
    let rows = gpu_comparison(&cfg, &suite);
    row(
        "benchmark",
        &[("iPIM Gpix/s".into(), 12), ("GPU Gpix/s".into(), 11), ("speedup".into(), 8)],
    );
    for r in &rows {
        row(
            r.name,
            &[
                (f(r.ipim_gpix_s, 1), 12),
                (f(r.gpu_gpix_s, 2), 11),
                (format!("{:.2}x", r.speedup), 8),
            ],
        );
    }
    println!(
        "\ngeomean speedup: {:.2}x  (paper: 11.02x average)",
        geomean(rows.iter().map(|r| r.speedup))
    );
}
