//! Measures the analytic engine tier's cycle divergence from the
//! SkipAhead engine across the Table II suite, and optionally records it
//! as `analytic/divergence/<Workload>` JSONL entries that `bench_regress
//! --analytic-fresh` gates against the committed baselines in
//! `results/figures.jsonl` (fail on >10-point drift — the canary for
//! silent miscalibration when a future PR touches timing).
//!
//! Usage:
//!   analytic_divergence [--scale N] [--record FILE]
//!
//! Prints one line per workload: SkipAhead cycles, predicted cycles,
//! divergence %, and the two wall-clock times (the speedup the analytic
//! tier exists for).

use std::io::Write as _;
use std::time::Instant;

use ipim_core::analytic::divergence_pct;
use ipim_core::{all_workloads, Engine, Fidelity, MachineConfig, Session, WorkloadScale};

const MAX_CYCLES: u64 = 4_000_000_000;

fn main() {
    let mut scale = 64u32;
    let mut record: Option<String> = None;
    let mut detail = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--scale needs a number"));
            }
            "--record" => {
                record = Some(args.next().unwrap_or_else(|| panic!("--record needs a path")));
            }
            "--detail" => detail = true,
            other => {
                panic!("unknown argument {other:?} (supported: --scale N, --record FILE, --detail)")
            }
        }
    }

    let mut lines = Vec::new();
    println!(
        "{:<16} {:>12} {:>12} {:>9} {:>11} {:>11} {:>9}",
        "workload", "skip_cycles", "pred_cycles", "diverge%", "skip_wall", "pred_wall", "speedup"
    );
    for w in all_workloads(WorkloadScale { width: scale, height: scale }) {
        let measured = Session::new(MachineConfig {
            engine: Engine::SkipAhead,
            ..MachineConfig::vault_slice(1)
        });
        let predicted = Session::new(MachineConfig {
            engine: Engine::Analytic,
            ..MachineConfig::vault_slice(1)
        });
        // Warm the program cache so both timings are simulation-only.
        let program = match measured.compile(&w.pipeline) {
            Ok(p) => p,
            Err(e) => {
                println!("{:<16} SKIP (does not compile at {scale}²: {e})", w.name);
                continue;
            }
        };

        let t0 = Instant::now();
        let skip = measured.simulate(&program, &w.inputs, MAX_CYCLES).expect("skip-ahead run");
        let skip_wall = t0.elapsed();
        let t1 = Instant::now();
        let pred = predicted.simulate(&program, &w.inputs, MAX_CYCLES).expect("analytic predict");
        let pred_wall = t1.elapsed();
        assert_eq!(pred.fidelity, Fidelity::Approximate);

        let div = divergence_pct(pred.report.cycles, skip.report.cycles);
        let speedup = skip_wall.as_secs_f64() / pred_wall.as_secs_f64().max(1e-9);
        println!(
            "{:<16} {:>12} {:>12} {:>8.2}% {:>10.1?} {:>10.1?} {:>8.0}x",
            w.name, skip.report.cycles, pred.report.cycles, div, skip_wall, pred_wall, speedup
        );
        if detail {
            for (tag, r) in [("skip", &skip.report), ("pred", &pred.report)] {
                let s = &r.stats;
                let st = &s.stalls;
                println!(
                    "    {tag}: issued={} hazard={} queue={} tsv={} branch={} sync={} vsmlock={} \
                     mem_busy={} simd_busy={} dram={} hits/miss/conf={}/{}/{}",
                    s.issued,
                    st.hazard,
                    st.queue_full,
                    st.tsv,
                    st.branch,
                    st.sync,
                    st.vsm_interlock,
                    s.mem_busy,
                    s.simd_busy,
                    s.dram_accesses,
                    r.locality.row_hits,
                    r.locality.row_misses,
                    r.locality.row_conflicts,
                );
            }
        }
        lines.push(format!(
            "{{\"suite\":\"analytic\",\"name\":\"analytic/divergence/{}\",\"iters\":1,\
             \"min_ns\":{},\"divergence_pct\":{:.3},\"scale\":{},\
             \"skip_cycles\":{},\"pred_cycles\":{}}}",
            w.name,
            pred_wall.as_nanos(),
            div,
            scale,
            skip.report.cycles,
            pred.report.cycles,
        ));
    }

    if let Some(path) = record {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .unwrap_or_else(|e| panic!("open {path}: {e}"));
        for l in &lines {
            writeln!(f, "{l}").expect("write record");
        }
        println!("recorded {} entries to {path}", lines.len());
    }
}
