//! Ablation studies over the architectural design choices DESIGN.md calls
//! out (beyond the paper's own Fig. 8/10/12 comparisons): row-buffer
//! policy, DRAM scheduling policy, refresh overhead, and multi-vault
//! scaling of the simulated slice.

use ipim_bench::{banner, config_from_env, f, row};
use ipim_core::dram::{PagePolicy, SchedPolicy};
use ipim_core::{workload_by_name, MachineConfig, Session};

fn run(cfg: MachineConfig, name: &str, scale: ipim_core::WorkloadScale) -> u64 {
    let w = workload_by_name(name, scale).expect("workload");
    Session::new(cfg)
        .run_workload(&w, 8_000_000_000)
        .unwrap_or_else(|e| panic!("{name}: {e}"))
        .report
        .cycles
}

fn main() {
    let cfg = config_from_env();
    let scale = cfg.scale;
    banner(
        "Ablations — row policy, scheduler, refresh, slice width",
        "DESIGN.md §5/§8 design choices",
    );

    for bench in ["Brighten", "Blur"] {
        println!("\n[{bench}]");
        let base = run(cfg.slice.clone(), bench, scale);
        row("baseline (open, FR-FCFS, refresh)", &[(base.to_string(), 12), ("1.000x".into(), 8)]);
        let cases: Vec<(&str, MachineConfig)> = vec![
            (
                "close-page policy",
                MachineConfig { page_policy: PagePolicy::Close, ..cfg.slice.clone() },
            ),
            (
                "FCFS scheduling",
                MachineConfig { sched_policy: SchedPolicy::Fcfs, ..cfg.slice.clone() },
            ),
            ("refresh disabled", MachineConfig { refresh: false, ..cfg.slice.clone() }),
            ("2-vault slice", MachineConfig { vaults_per_cube: 2, ..cfg.slice.clone() }),
        ];
        for (label, machine) in cases {
            let cycles = run(machine, bench, scale);
            row(
                label,
                &[(cycles.to_string(), 12), (format!("{}x", f(cycles as f64 / base as f64, 3)), 8)],
            );
        }
    }
    println!("\n(2-vault slice halves per-vault work: expect ~0.5x cycles;");
    println!(" close-page / FCFS degrade row locality; refresh costs a few %)");
}
