//! Fig. 1: GPU profiling of the Table II benchmarks — DRAM bandwidth /
//! utilization vs ALU utilization (a), and the index-calculation share of
//! ALU work (b).

use ipim_bench::{banner, f, pct, row};
use ipim_core::experiments::fig1;

fn main() {
    banner(
        "Fig. 1 — GPU profiling (calibrated V100 model)",
        "Sec. III: 57.55% mean DRAM util, 3.43% mean ALU util, 58.71% index share",
    );
    row(
        "benchmark",
        &[
            ("BW GB/s".into(), 9),
            ("DRAM util".into(), 10),
            ("ALU util".into(), 9),
            ("index shr".into(), 10),
        ],
    );
    let rows = fig1();
    let n = rows.len() as f64;
    let (mut md, mut ma, mut mi) = (0.0, 0.0, 0.0);
    for r in &rows {
        md += r.dram_util / n;
        ma += r.alu_util / n;
        mi += r.index_fraction / n;
        row(
            r.name,
            &[
                (f(r.dram_bw_gbs, 0), 9),
                (pct(r.dram_util), 10),
                (pct(r.alu_util), 9),
                (pct(r.index_fraction), 10),
            ],
        );
    }
    row("MEAN", &[(String::new(), 9), (pct(md), 10), (pct(ma), 9), (pct(mi), 10)]);
    println!("\npaper: mean DRAM util 57.55% (518 GB/s), mean ALU util 3.43%, index 58.71%");
}
