//! `families_smoke` — CI gate for the NN/video workload families
//! (DESIGN.md §13).
//!
//! Runs one NN kernel (RowSoftmax: the full-row reduction trees) and one
//! video kernel (MotionEnergy: inter-frame PGSM state) end to end on all
//! three engines and asserts the subsystem's three load-bearing claims:
//!
//! 1. both cycle engines (legacy, skip-ahead) agree bit-for-bit on every
//!    counter and every output pixel;
//! 2. the cycle-accurate output matches the golden CPU interpreter inside
//!    the canonical banded tolerance;
//! 3. the analytic tier produces an `Approximate`-fidelity prediction with
//!    an exact issue count and a composed energy model.
//!
//! Panics (non-zero exit) on any violation. Scale and workload choice are
//! fixed so the run is deterministic and fast enough for every CI push.

use ipim_core::experiments::verify_output_against_reference;
use ipim_core::{workload_by_name, Engine, Fidelity, MachineConfig, Session, WorkloadScale};

const MAX_CYCLES: u64 = 2_000_000_000;

fn main() {
    let scale = WorkloadScale { width: 64, height: 64 };
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>9}",
        "workload", "legacy", "skip_ahead", "analytic", "diverge%"
    );
    for name in ["RowSoftmax", "MotionEnergy"] {
        let w = workload_by_name(name, scale).expect("registered workload");
        let run = |engine| {
            Session::new(MachineConfig { engine, ..MachineConfig::vault_slice(1) })
                .run_workload(&w, MAX_CYCLES)
                .unwrap_or_else(|e| panic!("{name} ({engine:?}): {e}"))
        };
        let legacy = run(Engine::Legacy);
        let skip = run(Engine::SkipAhead);
        let analytic = run(Engine::Analytic);

        assert_eq!(legacy.fidelity, Fidelity::BitExact, "{name}: legacy fidelity");
        assert_eq!(skip.fidelity, Fidelity::BitExact, "{name}: skip-ahead fidelity");
        assert_eq!(analytic.fidelity, Fidelity::Approximate, "{name}: analytic fidelity");

        assert_eq!(legacy.report.cycles, skip.report.cycles, "{name}: cycles diverge");
        assert_eq!(legacy.report.stats, skip.report.stats, "{name}: statistics diverge");
        assert_eq!(legacy.output.data(), skip.output.data(), "{name}: outputs diverge");

        verify_output_against_reference(&w, &legacy.output);

        assert_eq!(
            analytic.report.stats.issued, skip.report.stats.issued,
            "{name}: analytic issue count must be exact"
        );
        assert!(analytic.report.energy.total_pj() > 0.0, "{name}: energy model composed");

        let div = ipim_core::analytic::divergence_pct(analytic.report.cycles, skip.report.cycles);
        println!(
            "{:<14} {:>12} {:>12} {:>12} {:>8.2}%",
            name, legacy.report.cycles, skip.report.cycles, analytic.report.cycles, div
        );
    }
    println!("families_smoke: ok (engines agree, golden-verified, analytic composed)");
}
