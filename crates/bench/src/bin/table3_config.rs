//! Table III: the iPIM hardware configuration, rendered from the live
//! machine-configuration and energy-model defaults.

use ipim_bench::banner;
use ipim_core::{EnergyParams, MachineConfig};

fn main() {
    banner("Table III — iPIM hardware configuration", "Sec. VII-A");
    let c = MachineConfig::default();
    let e = EnergyParams::default();
    println!(
        "cubes/vaults/PGs/PEs/InstQueue/DRAMReqQueue : {}/{}/{}/{}/{}/{}",
        c.cubes, c.vaults_per_cube, c.pgs_per_vault, c.pes_per_pg, c.inst_queue, c.dram_req_queue
    );
    println!("SIMD len / CAS width                         : 4 / 128b");
    println!(
        "Bank / AddrRF / DataRF / PGSM / VSM          : {}M / {}B / {}B / {}K / {}K",
        c.bank.bank_bytes >> 20,
        c.addr_rf_entries * 4,
        c.data_rf_entries * 16,
        c.pgsm_bytes >> 10,
        c.vsm_bytes >> 10
    );
    let t = c.timing;
    println!(
        "tCK/tRCD/tCCD/tRTP/tRP/tRAS (ns)             : 1/{}/{}/{}/{}/{}",
        t.t_rcd, t.t_ccd, t.t_rtp, t.t_rp, t.t_ras
    );
    println!(
        "tRRDS/tRRDL/tFAW (ns)                        : {}/{}/{}",
        t.t_rrd_s, t.t_rrd_l, t.t_faw
    );
    let l = c.latency;
    println!(
        "tADD/tMUL/tMAC/tLOGIC (ns)                   : {}/{}/{}/{}",
        l.add, l.mul, l.mac, l.logic
    );
    println!(
        "tRF/tPGSM/tVSM/tPEbus/tTSV/tNoC (ns)         : {}/{}/{}/{}/{}/{}",
        l.rf, l.pgsm, l.vsm, l.pe_bus, l.tsv, l.noc_hop
    );
    println!(
        "RD,WR / PRE,ACT energy                       : {:.2}n / {:.2}n J/access",
        e.dram.rd_wr_pj / 1000.0,
        e.dram.act_pre_pj / 1000.0
    );
    println!(
        "AddrRF / DataRF energy                       : {:.2}p / {:.2}p J/access",
        e.addr_rf_pj, e.data_rf_pj
    );
    println!(
        "SIMD / IntALU energy                         : {:.2}p / {:.2}p J/op",
        e.simd_pj, e.int_alu_pj
    );
    println!(
        "PEbus / TSV / SERDES energy                  : {:.3}p / {:.2}p / {:.2}p J/bit",
        e.pe_bus_pj_per_bit, e.tsv_pj_per_bit, e.serdes_pj_per_bit
    );
    println!(
        "rowbuffer policy / schedule                  : {:?} / {:?}",
        c.page_policy, c.sched_policy
    );
}
