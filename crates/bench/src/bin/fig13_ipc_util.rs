//! Fig. 13: control-core IPC and key component utilization
//! (paper: average IPC 0.63; address-RF utilization >40% for the
//! index-calculation-heavy benchmarks).

use ipim_bench::{banner, config_from_env, f, pct, row};
use ipim_core::experiments::{fig13, run_suite};

fn main() {
    let cfg = config_from_env();
    banner("Fig. 13 — IPC and utilization", "Sec. VII-E2: avg IPC 0.63");
    let suite = run_suite(&cfg).expect("suite");
    let rows = fig13(&cfg, &suite);
    row(
        "benchmark",
        &[
            ("IPC".into(), 6),
            ("SIMD util".into(), 10),
            ("IntALU util".into(), 12),
            ("mem util".into(), 9),
        ],
    );
    let mut ipc = 0.0;
    for r in &rows {
        ipc += r.ipc / rows.len() as f64;
        row(
            r.name,
            &[
                (f(r.ipc, 3), 6),
                (pct(r.simd_util), 10),
                (pct(r.int_alu_util), 12),
                (pct(r.mem_util), 9),
            ],
        );
    }
    println!("\nmean IPC: {:.3} (paper 0.63)", ipc);
}
