//! Skip-ahead vs. legacy engine race on StencilChain (the deepest
//! pipeline in Table II, and the workload the skip-ahead engine was sized
//! against — see DESIGN.md §"Two-engine architecture").
//!
//! Prints one line per engine plus the speedup, and exits non-zero if the
//! skip-ahead engine is not strictly faster; CI runs this as a perf
//! regression gate. Pass `--scale N` for an N×N input (default 128, the
//! smallest scale StencilChain compiles at).

use std::time::Instant;

use ipim_core::{workload_by_name, Engine, MachineConfig, Session, WorkloadScale};

fn main() {
    let mut scale = 128u32;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--scale needs a number"));
            }
            other => panic!("unknown argument {other:?} (supported: --scale N)"),
        }
    }
    let w = workload_by_name("StencilChain", WorkloadScale { width: scale, height: scale })
        .expect("StencilChain is a Table II workload");

    let mut seconds = [0.0f64; 2];
    let mut cycles = [0u64; 2];
    for (i, engine) in [Engine::Legacy, Engine::SkipAhead].into_iter().enumerate() {
        let session = Session::new(MachineConfig { engine, ..MachineConfig::vault_slice(1) });
        // One warmup to fault in the program and touch the banks.
        session.run_workload(&w, 4_000_000_000).expect("warmup");
        let start = Instant::now();
        let outcome = session.run_workload(&w, 4_000_000_000).expect("run");
        seconds[i] = start.elapsed().as_secs_f64();
        cycles[i] = outcome.report.cycles;
        println!("{engine:?}: {:.3} s wall, {} simulated cycles", seconds[i], cycles[i]);
    }
    assert_eq!(cycles[0], cycles[1], "engines disagree on simulated cycles");
    let speedup = seconds[0] / seconds[1];
    println!("skip-ahead speedup over legacy: {speedup:.2}x");
    if speedup <= 1.0 {
        eprintln!("FAIL: skip-ahead must be strictly faster than the legacy engine");
        std::process::exit(1);
    }
}
