//! CI perf-regression gate for the cycle engines.
//!
//! Re-measures the `end_to_end/legacy` and `end_to_end/skip_ahead` kernels
//! (the same compile+simulate+verify loop `benches/figures.rs` records) and
//! diffs their `min_ns` against the committed baseline in
//! `results/figures.jsonl`. Because CI machines differ from the machine
//! that recorded the baseline, both sides are normalized by the
//! `fig01_gpu_profile` entry — a pure-computation kernel that tracks
//! machine speed but not simulator regressions.
//!
//! Exits non-zero when a gated entry's normalized `min_ns` regresses by
//! more than the threshold (default 25 %).
//!
//! ```text
//! cargo run --release -p ipim-bench --bin bench_regress -- \
//!     --baseline results/figures.jsonl [--threshold 25] [--fresh new.jsonl] \
//!     [--serve-fresh serve.jsonl] [--analytic-fresh analytic.jsonl]
//! ```
//!
//! With `--fresh`, no measurement runs: the two files are diffed directly
//! (useful for comparing two recorded runs).
//!
//! With `--serve-fresh`, `serve/throughput/*` and `shard/throughput/*`
//! entries from a just-measured loadgen run are gated against the baseline
//! too — but **only** baseline
//! entries whose recorded `cores` field matches this machine's core count
//! (and whose `mix`/`transport` match the fresh entry's). Throughput
//! numbers depend on physical parallelism in a way the single-core
//! normalizer cannot correct for, so cross-machine comparisons are skipped
//! with a message instead of producing false regressions.
//!
//! With `--analytic-fresh`, `analytic/divergence/*` entries from a
//! just-recorded `analytic_divergence --record` run are gated against the
//! committed calibration baseline: a workload whose divergence drifts
//! more than 10 percentage points above its baseline fails the gate.
//! Divergence is a property of the model, not of the machine, so no
//! normalizer applies — this is the canary that fires when a future PR
//! changes engine timing without recalibrating the analytic tier.
//!
//! With `--matrix`, a fresh `matrix.jsonl` (from `ipim-report`'s `matrix`
//! bin) is gated against the committed `results/matrix.jsonl` (override
//! with `--matrix-baseline`): a schema-version mismatch fails outright;
//! per cell, simulated `cycles` are deterministic and fail on >threshold
//! upward drift un-normalized, while `wall_ns` is normalized by the
//! `fig01_gpu_profile` anchor *recorded inside each matrix file* and
//! gated only for cells whose baseline wall time clears a 1 ms noise
//! floor. Cells present on only one side loud-skip.

use std::time::Instant;

use ipim_core::experiments::{fig1, verify_against_reference};
use ipim_core::trace::json;
use ipim_core::{workload_by_name, Engine, MachineConfig, Session, WorkloadScale};

/// The entries the gate enforces.
const GATED: [&str; 2] = ["end_to_end/legacy", "end_to_end/skip_ahead"];
/// The machine-speed normalizer entry.
const NORMALIZER: &str = "fig01_gpu_profile";

/// One figures-file entry, with the context fields the serve gate needs.
struct Entry {
    name: String,
    min_ns: u64,
    /// Core count the entry was recorded on (serve entries only).
    cores: Option<u64>,
    /// Workload mix (serve entries only).
    mix: Option<String>,
    /// Transport: "inproc" | "stream" | "shard" (absent = inproc).
    transport: String,
    /// Analytic-vs-skip-ahead cycle divergence (analytic entries only).
    divergence_pct: Option<f64>,
    /// Image side the entry was recorded at (analytic entries only).
    scale: Option<u64>,
}

/// Parses a `results/figures.jsonl` file.
fn parse_jsonl(path: &str) -> Vec<Entry> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path:?}: {e}"));
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).unwrap_or_else(|e| panic!("{path}:{}: bad JSON: {e}", i + 1));
        let name = v
            .get("name")
            .and_then(json::Value::as_str)
            .unwrap_or_else(|| panic!("{path}:{}: no name", i + 1));
        let min_ns = v
            .get("min_ns")
            .and_then(json::Value::as_f64)
            .unwrap_or_else(|| panic!("{path}:{}: no min_ns", i + 1));
        out.push(Entry {
            name: name.to_string(),
            min_ns: min_ns as u64,
            cores: v.get("cores").and_then(json::Value::as_f64).map(|c| c as u64),
            mix: v.get("mix").and_then(json::Value::as_str).map(str::to_string),
            transport: v
                .get("transport")
                .and_then(json::Value::as_str)
                .unwrap_or("inproc")
                .to_string(),
            divergence_pct: v.get("divergence_pct").and_then(json::Value::as_f64),
            scale: v.get("scale").and_then(json::Value::as_f64).map(|s| s as u64),
        });
    }
    out
}

fn lookup(entries: &[Entry], name: &str) -> Option<u64> {
    entries.iter().find(|e| e.name == name).map(|e| e.min_ns)
}

/// Minimum wall-clock of `iters` calls after `warmup` discarded calls.
fn min_ns_of<R>(warmup: u32, iters: u32, mut f: impl FnMut() -> R) -> u64 {
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let mut min = u64::MAX;
    for _ in 0..iters {
        let start = Instant::now();
        std::hint::black_box(f());
        min = min.min(start.elapsed().as_nanos() as u64);
    }
    min
}

/// Measures fresh `min_ns` for the normalizer and both gated entries.
fn measure_fresh() -> Vec<Entry> {
    let mut out = Vec::new();
    let plain = |name: String, min_ns: u64| Entry {
        name,
        min_ns,
        cores: None,
        mix: None,
        transport: "inproc".to_string(),
        divergence_pct: None,
        scale: None,
    };
    out.push(plain(NORMALIZER.to_string(), min_ns_of(3, 10, fig1)));
    let scale = WorkloadScale { width: 128, height: 128 };
    let w = workload_by_name("StencilChain", scale).expect("Table II workload");
    for (label, engine) in [("legacy", Engine::Legacy), ("skip_ahead", Engine::SkipAhead)] {
        let session = Session::new(MachineConfig { engine, ..MachineConfig::vault_slice(1) });
        let min = min_ns_of(1, 2, || {
            let o = session.run_workload(&w, 4_000_000_000).expect("run");
            verify_against_reference(&w, &o);
            o.report.cycles
        });
        out.push(plain(format!("end_to_end/{label}"), min));
    }
    out
}

/// Gates `serve/throughput/*` and `shard/throughput/*` entries: compares
/// a fresh loadgen run against baseline entries recorded on an identical
/// setup (same core count as this machine, same mix and transport),
/// skipping — loudly — anything recorded elsewhere. Returns whether any
/// comparison failed.
fn gate_serve(baseline: &[Entry], serve_fresh: &[Entry], norm: f64, threshold_pct: f64) -> bool {
    let machine_cores = std::thread::available_parallelism().map(|n| n.get() as u64).unwrap_or(1);
    let mut failed = false;
    for base in baseline.iter().filter(|e| {
        e.name.starts_with("serve/throughput/") || e.name.starts_with("shard/throughput/")
    }) {
        match base.cores {
            Some(c) if c == machine_cores => {}
            Some(c) => {
                println!(
                    "skip: {}: baseline recorded on {c} core(s), this machine has \
                     {machine_cores} — not comparable",
                    base.name
                );
                continue;
            }
            None => {
                println!("skip: {}: baseline has no cores field", base.name);
                continue;
            }
        }
        let Some(fresh) = serve_fresh
            .iter()
            .find(|f| f.name == base.name && f.mix == base.mix && f.transport == base.transport)
        else {
            println!(
                "skip: {}: no fresh entry with mix {:?} / transport {:?}",
                base.name, base.mix, base.transport
            );
            continue;
        };
        let expected = base.min_ns as f64 * norm;
        let delta_pct = (fresh.min_ns as f64 / expected - 1.0) * 100.0;
        let verdict = if delta_pct > threshold_pct { "FAIL" } else { "ok" };
        println!(
            "{verdict}: {}: p50_ns {} vs normalized baseline {:.0} ({delta_pct:+.1} %, \
             gate +{threshold_pct:.0} %)",
            base.name, fresh.min_ns, expected
        );
        failed |= delta_pct > threshold_pct;
    }
    failed
}

/// How far (percentage points) a workload's analytic divergence may
/// drift above its committed calibration baseline before the gate fails.
const DIVERGENCE_DRIFT_PTS: f64 = 10.0;

/// Gates `analytic/divergence/*` entries: every baseline workload×scale
/// with a fresh re-measurement must stay within
/// [`DIVERGENCE_DRIFT_PTS`] points of its committed divergence. Improved
/// (lower) divergence always passes — only upward drift is a
/// miscalibration signal. Returns whether any comparison failed.
fn gate_analytic(baseline: &[Entry], fresh: &[Entry]) -> bool {
    let mut failed = false;
    let mut gated = 0;
    for base in baseline.iter().filter(|e| e.name.starts_with("analytic/divergence/")) {
        let Some(base_div) = base.divergence_pct else {
            println!("skip: {}: baseline has no divergence_pct field", base.name);
            continue;
        };
        let Some(f) = fresh.iter().find(|f| f.name == base.name && f.scale == base.scale) else {
            println!("skip: {}: no fresh entry at scale {:?}", base.name, base.scale);
            continue;
        };
        let Some(fresh_div) = f.divergence_pct else {
            println!("skip: {}: fresh entry has no divergence_pct field", base.name);
            continue;
        };
        gated += 1;
        let drift = fresh_div - base_div;
        let verdict = if drift > DIVERGENCE_DRIFT_PTS { "FAIL" } else { "ok" };
        println!(
            "{verdict}: {} (scale {}): divergence {fresh_div:.2}% vs baseline {base_div:.2}% \
             ({drift:+.2} pts, gate +{DIVERGENCE_DRIFT_PTS:.0} pts)",
            base.name,
            base.scale.unwrap_or(0),
        );
        failed |= drift > DIVERGENCE_DRIFT_PTS;
    }
    // Loud-skip the other direction too: a fresh measurement with no
    // committed baseline is a brand-new workload×scale (or a renamed one)
    // — not a failure, but it must be visible so the calibration entry
    // actually gets recorded rather than silently never gated.
    for f in fresh.iter().filter(|e| e.name.starts_with("analytic/divergence/")) {
        if !baseline.iter().any(|b| b.name == f.name && b.scale == f.scale) {
            println!(
                "skip: {} (scale {}): fresh entry has no committed baseline yet — record one",
                f.name,
                f.scale.unwrap_or(0),
            );
        }
    }
    if gated == 0 {
        println!("skip: no comparable analytic/divergence entries on both sides");
    }
    failed
}

/// The wall-clock noise floor for matrix cells. A cell's `wall_ns` spans
/// submit→completion through the serve pool, so it includes
/// queue-position wait — which shifts with `--workers` and OS scheduling
/// jitter (2× swings on millisecond cells in practice). Only cells long
/// enough to amortize that (≥ 50 ms) gate wall; quicker baselines are
/// loud-skipped and their deterministic `cycles` gated exactly instead.
const MATRIX_WALL_FLOOR_NS: u64 = 50_000_000;

/// Gates a fresh benchmark matrix against the committed baseline. Both
/// files are schema-checked by the shared `ipim-report` parser (a version
/// mismatch fails before any comparison). Returns whether any cell
/// failed.
fn gate_matrix(baseline_path: &str, fresh_path: &str, threshold_pct: f64) -> bool {
    let parse = |path: &str| match ipim_report::read_matrix(std::path::Path::new(path)) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("FAIL: matrix gate: {e}");
            std::process::exit(1);
        }
    };
    let base = parse(baseline_path);
    let fresh = parse(fresh_path);
    // Each matrix file carries its own machine-speed anchor, so the gate
    // needs no entry from figures.jsonl.
    let norm = match (base.anchor_ns(), fresh.anchor_ns()) {
        (Some(b), Some(f)) if b > 0 && f > 0 => f as f64 / b as f64,
        _ => {
            eprintln!("warning: matrix anchor missing on one side; comparing raw wall_ns");
            1.0
        }
    };
    println!("matrix machine-speed normalizer: {norm:.3}x baseline");
    let mut failed = false;
    for b in &base.cells {
        let Some(f) = fresh.cells.iter().find(|f| f.fingerprint() == b.fingerprint()) else {
            println!("skip: matrix {}: no fresh cell (not re-measured)", b.canonical_key());
            continue;
        };
        // Simulated cycles are deterministic: any upward drift beyond
        // the threshold is a real simulated-performance regression, no
        // normalizer needed (downward drift is an improvement).
        if let (Some(bc), Some(fc)) = (b.cycles, f.cycles) {
            let delta_pct = (fc as f64 / bc as f64 - 1.0) * 100.0;
            let verdict = if delta_pct > threshold_pct { "FAIL" } else { "ok" };
            println!(
                "{verdict}: matrix {}: cycles {fc} vs baseline {bc} ({delta_pct:+.1} %, \
                 gate +{threshold_pct:.0} %)",
                b.canonical_key()
            );
            failed |= delta_pct > threshold_pct;
        }
        if b.wall_ns >= MATRIX_WALL_FLOOR_NS {
            let expected = b.wall_ns as f64 * norm;
            let delta_pct = (f.wall_ns as f64 / expected - 1.0) * 100.0;
            let verdict = if delta_pct > threshold_pct { "FAIL" } else { "ok" };
            println!(
                "{verdict}: matrix {}: wall_ns {} vs normalized baseline {:.0} \
                 ({delta_pct:+.1} %, gate +{threshold_pct:.0} %)",
                b.canonical_key(),
                f.wall_ns,
                expected
            );
            failed |= delta_pct > threshold_pct;
        } else {
            println!(
                "skip: matrix {}: baseline wall {} ns under the {} ns gate floor",
                b.canonical_key(),
                b.wall_ns,
                MATRIX_WALL_FLOOR_NS
            );
        }
    }
    for f in &fresh.cells {
        if !base.cells.iter().any(|b| b.fingerprint() == f.fingerprint()) {
            println!(
                "skip: matrix {}: fresh cell has no committed baseline yet — record one",
                f.canonical_key()
            );
        }
    }
    if base.cells.is_empty() {
        println!("skip: matrix baseline has no cells");
    }
    failed
}

fn main() {
    let mut baseline_path = "results/figures.jsonl".to_string();
    let mut fresh_path: Option<String> = None;
    let mut serve_fresh_path: Option<String> = None;
    let mut analytic_fresh_path: Option<String> = None;
    let mut matrix_fresh_path: Option<String> = None;
    let mut matrix_baseline_path = "results/matrix.jsonl".to_string();
    let mut threshold_pct = 25.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |flag: &str| args.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match a.as_str() {
            "--baseline" => baseline_path = val("--baseline"),
            "--fresh" => fresh_path = Some(val("--fresh")),
            "--serve-fresh" => serve_fresh_path = Some(val("--serve-fresh")),
            "--analytic-fresh" => analytic_fresh_path = Some(val("--analytic-fresh")),
            "--matrix" => matrix_fresh_path = Some(val("--matrix")),
            "--matrix-baseline" => matrix_baseline_path = val("--matrix-baseline"),
            "--threshold" => {
                threshold_pct = val("--threshold").parse().expect("--threshold needs a number");
            }
            other => panic!(
                "unknown argument {other:?} (supported: --baseline FILE --fresh FILE \
                 --serve-fresh FILE --analytic-fresh FILE --matrix FILE \
                 --matrix-baseline FILE --threshold PCT)"
            ),
        }
    }

    // A missing baseline is a recording gap, not a regression: skip the
    // gate loudly (the same degradation the cores-matched serve gate uses)
    // instead of panicking, so CI stays green until a baseline lands.
    if !std::path::Path::new(&baseline_path).exists() {
        println!(
            "skip: baseline {baseline_path:?} does not exist — record one with \
             `cargo bench -p ipim-bench` and commit it; perf gate skipped"
        );
        return;
    }
    let baseline = parse_jsonl(&baseline_path);
    let fresh = match &fresh_path {
        Some(p) => parse_jsonl(p),
        None => measure_fresh(),
    };

    // Normalize out machine-speed differences when both sides carry the
    // normalizer entry; otherwise compare raw.
    let norm = match (lookup(&baseline, NORMALIZER), lookup(&fresh, NORMALIZER)) {
        (Some(b), Some(f)) if b > 0 && f > 0 => f as f64 / b as f64,
        _ => {
            eprintln!("warning: no {NORMALIZER} entry on both sides; comparing raw min_ns");
            1.0
        }
    };
    println!("machine-speed normalizer ({NORMALIZER}): {norm:.3}x baseline");

    let mut failed = false;
    for name in GATED {
        let Some(base) = lookup(&baseline, name) else {
            eprintln!("warning: baseline has no {name:?} entry; skipping");
            continue;
        };
        let Some(new) = lookup(&fresh, name) else {
            eprintln!("FAIL: fresh results have no {name:?} entry");
            failed = true;
            continue;
        };
        let expected = base as f64 * norm;
        let delta_pct = (new as f64 / expected - 1.0) * 100.0;
        let verdict = if delta_pct > threshold_pct { "FAIL" } else { "ok" };
        println!(
            "{verdict}: {name}: min_ns {new} vs normalized baseline {:.0} ({delta_pct:+.1} %, \
             gate +{threshold_pct:.0} %)",
            expected
        );
        failed |= delta_pct > threshold_pct;
    }

    if let Some(p) = &serve_fresh_path {
        failed |= gate_serve(&baseline, &parse_jsonl(p), norm, threshold_pct);
    }

    if let Some(p) = &analytic_fresh_path {
        failed |= gate_analytic(&baseline, &parse_jsonl(p));
    }

    if let Some(p) = &matrix_fresh_path {
        // Mirror the figures-baseline degradation: a missing committed
        // matrix is a recording gap, not a regression.
        if std::path::Path::new(&matrix_baseline_path).exists() {
            failed |= gate_matrix(&matrix_baseline_path, p, threshold_pct);
        } else {
            println!(
                "skip: matrix baseline {matrix_baseline_path:?} does not exist — record one \
                 with `cargo run --release -p ipim-report --bin matrix` and commit it"
            );
        }
    }

    if failed {
        eprintln!("bench_regress: performance gate failed");
        std::process::exit(1);
    }
}
