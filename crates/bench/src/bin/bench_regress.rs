//! CI perf-regression gate for the cycle engines.
//!
//! Re-measures the `end_to_end/legacy` and `end_to_end/skip_ahead` kernels
//! (the same compile+simulate+verify loop `benches/figures.rs` records) and
//! diffs their `min_ns` against the committed baseline in
//! `results/figures.jsonl`. Because CI machines differ from the machine
//! that recorded the baseline, both sides are normalized by the
//! `fig01_gpu_profile` entry — a pure-computation kernel that tracks
//! machine speed but not simulator regressions.
//!
//! Exits non-zero when a gated entry's normalized `min_ns` regresses by
//! more than the threshold (default 25 %).
//!
//! ```text
//! cargo run --release -p ipim-bench --bin bench_regress -- \
//!     --baseline results/figures.jsonl [--threshold 25] [--fresh new.jsonl]
//! ```
//!
//! With `--fresh`, no measurement runs: the two files are diffed directly
//! (useful for comparing two recorded runs).

use std::time::Instant;

use ipim_core::experiments::{fig1, verify_against_reference};
use ipim_core::trace::json;
use ipim_core::{workload_by_name, Engine, MachineConfig, Session, WorkloadScale};

/// The entries the gate enforces.
const GATED: [&str; 2] = ["end_to_end/legacy", "end_to_end/skip_ahead"];
/// The machine-speed normalizer entry.
const NORMALIZER: &str = "fig01_gpu_profile";

/// Parses a `results/figures.jsonl` file into `(name, min_ns)` pairs.
fn parse_jsonl(path: &str) -> Vec<(String, u64)> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path:?}: {e}"));
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line).unwrap_or_else(|e| panic!("{path}:{}: bad JSON: {e}", i + 1));
        let name = v
            .get("name")
            .and_then(json::Value::as_str)
            .unwrap_or_else(|| panic!("{path}:{}: no name", i + 1));
        let min_ns = v
            .get("min_ns")
            .and_then(json::Value::as_f64)
            .unwrap_or_else(|| panic!("{path}:{}: no min_ns", i + 1));
        out.push((name.to_string(), min_ns as u64));
    }
    out
}

fn lookup(entries: &[(String, u64)], name: &str) -> Option<u64> {
    entries.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
}

/// Minimum wall-clock of `iters` calls after `warmup` discarded calls.
fn min_ns_of<R>(warmup: u32, iters: u32, mut f: impl FnMut() -> R) -> u64 {
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let mut min = u64::MAX;
    for _ in 0..iters {
        let start = Instant::now();
        std::hint::black_box(f());
        min = min.min(start.elapsed().as_nanos() as u64);
    }
    min
}

/// Measures fresh `min_ns` for the normalizer and both gated entries.
fn measure_fresh() -> Vec<(String, u64)> {
    let mut out = Vec::new();
    out.push((NORMALIZER.to_string(), min_ns_of(3, 10, fig1)));
    let scale = WorkloadScale { width: 128, height: 128 };
    let w = workload_by_name("StencilChain", scale).expect("Table II workload");
    for (label, engine) in [("legacy", Engine::Legacy), ("skip_ahead", Engine::SkipAhead)] {
        let session = Session::new(MachineConfig { engine, ..MachineConfig::vault_slice(1) });
        let min = min_ns_of(1, 2, || {
            let o = session.run_workload(&w, 4_000_000_000).expect("run");
            verify_against_reference(&w, &o);
            o.report.cycles
        });
        out.push((format!("end_to_end/{label}"), min));
    }
    out
}

fn main() {
    let mut baseline_path = "results/figures.jsonl".to_string();
    let mut fresh_path: Option<String> = None;
    let mut threshold_pct = 25.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |flag: &str| args.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match a.as_str() {
            "--baseline" => baseline_path = val("--baseline"),
            "--fresh" => fresh_path = Some(val("--fresh")),
            "--threshold" => {
                threshold_pct = val("--threshold").parse().expect("--threshold needs a number");
            }
            other => panic!(
                "unknown argument {other:?} (supported: --baseline FILE --fresh FILE \
                 --threshold PCT)"
            ),
        }
    }

    let baseline = parse_jsonl(&baseline_path);
    let fresh = match &fresh_path {
        Some(p) => parse_jsonl(p),
        None => measure_fresh(),
    };

    // Normalize out machine-speed differences when both sides carry the
    // normalizer entry; otherwise compare raw.
    let norm = match (lookup(&baseline, NORMALIZER), lookup(&fresh, NORMALIZER)) {
        (Some(b), Some(f)) if b > 0 && f > 0 => f as f64 / b as f64,
        _ => {
            eprintln!("warning: no {NORMALIZER} entry on both sides; comparing raw min_ns");
            1.0
        }
    };
    println!("machine-speed normalizer ({NORMALIZER}): {norm:.3}x baseline");

    let mut failed = false;
    for name in GATED {
        let Some(base) = lookup(&baseline, name) else {
            eprintln!("warning: baseline has no {name:?} entry; skipping");
            continue;
        };
        let Some(new) = lookup(&fresh, name) else {
            eprintln!("FAIL: fresh results have no {name:?} entry");
            failed = true;
            continue;
        };
        let expected = base as f64 * norm;
        let delta_pct = (new as f64 / expected - 1.0) * 100.0;
        let verdict = if delta_pct > threshold_pct { "FAIL" } else { "ok" };
        println!(
            "{verdict}: {name}: min_ns {new} vs normalized baseline {:.0} ({delta_pct:+.1} %, \
             gate +{threshold_pct:.0} %)",
            expected
        );
        failed |= delta_pct > threshold_pct;
    }
    if failed {
        eprintln!("bench_regress: performance gate failed");
        std::process::exit(1);
    }
}
