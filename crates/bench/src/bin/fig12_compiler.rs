//! Fig. 12: effectiveness of the compiler backend optimizations
//! (paper: opt is 3.19× over baseline1; max register allocation
//! contributes 2.59× (opt vs baseline2), reordering 2.74× (vs baseline3),
//! memory-order enforcement 1.30× (vs baseline4)).

use ipim_bench::{banner, config_from_env, row};
use ipim_core::experiments::{fig12, geomean};

fn main() {
    let cfg = config_from_env();
    banner(
        "Fig. 12 — compiler optimization effectiveness (speedup over baseline1)",
        "Sec. VII-E1: opt 3.19x, b2 +2.59x from RA, b3 +2.74x from reorder, b4 +1.30x from mem order",
    );
    let rows = fig12(&cfg).expect("fig12");
    row(
        "benchmark",
        &[
            ("opt".into(), 7),
            ("baseline2".into(), 10),
            ("baseline3".into(), 10),
            ("baseline4".into(), 10),
        ],
    );
    for r in &rows {
        row(
            r.name,
            &[
                (format!("{:.2}x", r.opt), 7),
                (format!("{:.2}x", r.baseline2), 10),
                (format!("{:.2}x", r.baseline3), 10),
                (format!("{:.2}x", r.baseline4), 10),
            ],
        );
    }
    let g = |sel: fn(&ipim_core::experiments::CompilerRow) -> f64| geomean(rows.iter().map(sel));
    println!("\ngeomean: opt {:.2}x (paper 3.19x)", g(|r| r.opt));
    println!(
        "register allocation contribution (opt/b2): {:.2}x (paper 2.59x)",
        g(|r| r.opt) / g(|r| r.baseline2)
    );
    println!(
        "reordering contribution (opt/b3): {:.2}x (paper 2.74x)",
        g(|r| r.opt) / g(|r| r.baseline3)
    );
    println!(
        "memory-order contribution (opt/b4): {:.2}x (paper 1.30x)",
        g(|r| r.opt) / g(|r| r.baseline4)
    );
}
