//! Fig. 7: energy comparison between iPIM and the GPU
//! (paper: 79.49% average saving; 89.26% single-stage, 66.81% multi-stage).

use ipim_bench::{banner, config_from_env, f, pct, row};
use ipim_core::experiments::{gpu_comparison, run_suite};

fn main() {
    let cfg = config_from_env();
    banner("Fig. 7 — iPIM vs GPU energy", "Sec. VII-B: 79.49% average energy saving");
    let suite = run_suite(&cfg).expect("suite");
    let rows = gpu_comparison(&cfg, &suite);
    row("benchmark", &[("iPIM nJ/px".into(), 11), ("GPU nJ/px".into(), 10), ("saving".into(), 8)]);
    let mut single = (0.0, 0);
    let mut multi = (0.0, 0);
    for (r, run) in rows.iter().zip(&suite) {
        if run.workload.multi_stage {
            multi = (multi.0 + r.energy_saving, multi.1 + 1);
        } else {
            single = (single.0 + r.energy_saving, single.1 + 1);
        }
        row(
            r.name,
            &[
                (f(r.ipim_nj_per_pixel, 3), 11),
                (f(r.gpu_nj_per_pixel, 3), 10),
                (pct(r.energy_saving), 8),
            ],
        );
    }
    let mean: f64 = rows.iter().map(|r| r.energy_saving).sum::<f64>() / rows.len() as f64;
    println!("\nmean saving: {} (paper 79.49%)", pct(mean));
    println!(
        "single-stage: {}  multi-stage: {}  (paper 89.26% / 66.81%)",
        pct(single.0 / single.1 as f64),
        pct(multi.0 / multi.1 as f64)
    );
}
