//! `loadgen` — closed-loop load generator for the `ipim-serve` pool.
//!
//! Spawns `--clients` closed-loop client threads against an in-process
//! `ServePool` with `--workers` workers. Each client draws `--requests`
//! jobs from a seeded simkit PRNG over the chosen `--mix`, submits one at a
//! time, and records the response latency. At the end it reports throughput
//! and p50/p95/p99 latency, and (with `--append-figures`) appends a
//! `serve/throughput/...` JSONL entry compatible with
//! `results/figures.jsonl` (`min_ns` carries the p50 so `bench_regress` can
//! parse the file).
//!
//! The run **fails** (exit 1) on any `Error` response or any timeout that
//! is not an explicit deadline shed — a deadlock or a lost reply can only
//! show up as the watchdog firing (exit 2 after `--watchdog-secs`).
//!
//! With `--stream`, clients talk to the pool over real loopback-TCP ndjson
//! connections in per-response-flush streaming mode (`serve_stream`)
//! instead of in-process `submit` calls — the end-to-end exercise of the
//! `ipim_served --stream` protocol path, wire parsing included.
//!
//! With `--shard N`, clients drive an `ipim-shard` router over N local
//! streaming-TCP backends (each its own `ServePool` with `--workers`
//! workers) — the end-to-end exercise of the distributed tier: consistent
//! hashing, per-backend windows, retry machinery and all. `--verify` then
//! checks every unique request's output hash, **report hash** and echoed
//! cache **fingerprint** against a serial in-process run, which is the
//! sharded-equals-serial determinism gate CI leans on. The figures entry
//! becomes `shard/throughput/backendsN`; as with the serve entries, the
//! recorded `cores` field is what makes numbers comparable (a single-core
//! container serializes all backends, so absolute throughput there is not
//! comparable to multi-core runs).
//!
//! Flags: `--workers N` (default 4) · `--clients N` (default = workers) ·
//! `--requests M` per client (default 8) · `--seed S` (default 7) ·
//! `--mix fast|mixed|table2` (default fast; `mixed` is the shard-soak
//! traffic: workload × size spread with per-class deadlines) · `--cache N`
//! (default 0: caching off so throughput numbers are honest) · `--stream` ·
//! `--shard N` · `--verify` re-run each unique request serially and compare
//! bit-for-bit · `--watchdog-secs T` (default 600) ·
//! `--append-figures PATH`.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use ipim_core::trace::json;
use ipim_serve::server::serve_stream;
use ipim_serve::{
    image_hash, report_hash, PoolConfig, ServePool, SimRequest, SimResponse, TimeoutKind,
};
use ipim_shard::{ShardConfig, ShardRouter};
use ipim_simkit::rng::{splitmix64, Rng};

struct Options {
    pool: PoolConfig,
    clients: usize,
    requests: usize,
    seed: u64,
    mix: &'static str,
    stream: bool,
    shard: usize,
    verify: bool,
    watchdog_secs: u64,
    append_figures: Option<String>,
}

/// What one request came back as, seen from the client side — the common
/// shape of the in-process and wire transports.
enum Reply {
    Done { output_hash: u64, report_hash: Option<u64>, fingerprint: Option<u64> },
    DeadlineShed,
    OtherTimeout(String),
    Error(String),
}

fn hex_field(v: &json::Value, key: &str) -> Option<u64> {
    v.get(key).and_then(json::Value::as_str).and_then(|h| u64::from_str_radix(h, 16).ok())
}

impl Reply {
    fn from_response(resp: SimResponse) -> Self {
        match resp {
            SimResponse::Done(done) => Reply::Done {
                output_hash: done.output_hash,
                report_hash: Some(report_hash(&done.report)),
                fingerprint: Some(done.fingerprint),
            },
            SimResponse::Timeout(TimeoutKind::DeadlineBeforeStart) => Reply::DeadlineShed,
            SimResponse::Timeout(kind) => Reply::OtherTimeout(format!("{kind:?}")),
            SimResponse::Error(msg) => Reply::Error(msg),
        }
    }

    /// Parses one ndjson response line off the wire.
    fn from_wire(line: &str) -> Self {
        let Ok(v) = json::parse(line) else {
            return Reply::Error(format!("unparseable response line {line:?}"));
        };
        match v.get("status").and_then(json::Value::as_str) {
            Some("done") => match hex_field(&v, "output_hash") {
                Some(output_hash) => Reply::Done {
                    output_hash,
                    report_hash: hex_field(&v, "report_hash"),
                    fingerprint: hex_field(&v, "fingerprint"),
                },
                None => Reply::Error(format!("done response without output_hash: {line:?}")),
            },
            Some("timeout") => match v.get("reason").and_then(json::Value::as_str) {
                Some("deadline") => Reply::DeadlineShed,
                reason => Reply::OtherTimeout(format!("{reason:?}")),
            },
            Some("error") => Reply::Error(
                v.get("message")
                    .and_then(json::Value::as_str)
                    .unwrap_or("error response without message")
                    .to_string(),
            ),
            other => Reply::Error(format!("unknown response status {other:?}")),
        }
    }
}

/// One client's transport: in-process pool submission, an ndjson
/// streaming TCP connection, or the shard router (which itself talks
/// streaming TCP to every backend).
enum Transport<'p> {
    InProcess(&'p ServePool),
    Shard(&'p ShardRouter),
    Stream { write: TcpStream, read: BufReader<TcpStream> },
}

impl Transport<'_> {
    fn round_trip(&mut self, req: &SimRequest) -> Reply {
        match self {
            Transport::InProcess(pool) => Reply::from_response(pool.submit(req.clone()).wait()),
            Transport::Shard(router) => Reply::from_wire(router.submit(req.clone()).wait().trim()),
            Transport::Stream { write, read } => {
                if let Err(e) = writeln!(write, "{}", req.to_json_string()) {
                    return Reply::Error(format!("wire write: {e}"));
                }
                let mut line = String::new();
                match read.read_line(&mut line) {
                    Ok(0) => Reply::Error("server closed the stream early".to_string()),
                    Ok(_) => Reply::from_wire(line.trim()),
                    Err(e) => Reply::Error(format!("wire read: {e}")),
                }
            }
        }
    }
}

fn parse_args() -> Options {
    let mut opts = Options {
        pool: PoolConfig { workers: 4, queue_depth: 64, cache_capacity: 0 },
        clients: 0,
        requests: 8,
        seed: 7,
        mix: "fast",
        stream: false,
        shard: 0,
        verify: false,
        watchdog_secs: 600,
        append_figures: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |flag: &str| args.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        let num = |flag: &str, text: String| -> u64 {
            text.parse().unwrap_or_else(|_| panic!("{flag} needs an unsigned integer"))
        };
        match a.as_str() {
            "--workers" => opts.pool.workers = num("--workers", val("--workers")) as usize,
            "--clients" => opts.clients = num("--clients", val("--clients")) as usize,
            "--requests" => opts.requests = num("--requests", val("--requests")) as usize,
            "--seed" => opts.seed = num("--seed", val("--seed")),
            "--cache" => opts.pool.cache_capacity = num("--cache", val("--cache")) as usize,
            "--watchdog-secs" => {
                opts.watchdog_secs = num("--watchdog-secs", val("--watchdog-secs"));
            }
            "--append-figures" => opts.append_figures = Some(val("--append-figures")),
            "--stream" => opts.stream = true,
            "--shard" => opts.shard = num("--shard", val("--shard")) as usize,
            "--verify" => opts.verify = true,
            "--mix" => {
                opts.mix = match val("--mix").as_str() {
                    "fast" => "fast",
                    "mixed" => "mixed",
                    "table2" => "table2",
                    other => panic!("--mix must be fast, mixed or table2, got {other:?}"),
                }
            }
            other => panic!(
                "unknown argument {other:?} (supported: --workers N --clients N --requests M \
                 --seed S --mix fast|mixed|table2 --cache N --stream --shard N --verify \
                 --watchdog-secs T --append-figures PATH)"
            ),
        }
    }
    if opts.clients == 0 {
        opts.clients = opts.pool.workers;
    }
    assert!(
        !(opts.stream && opts.shard > 0),
        "--stream and --shard are mutually exclusive (the shard already talks TCP to backends)"
    );
    opts
}

/// The workload mixes. `fast` sticks to 64×64 single-stage kernels for CI
/// soaks; `mixed` is realistic shard-soak traffic — a spread over all
/// three workload families (image, NN, video) × sizes skewed toward small
/// images, with generous deadlines on the interactive classes and none on
/// the batch classes (sizes are chosen so each workload's schedule keeps
/// the tile grid a multiple of the 32 PEs);
/// `table2` is the full 10-benchmark suite at 128×128 (Downsample and
/// Upsample need ≥128 pixels per row to fit the SIMB lanes).
fn mix_requests(mix: &str) -> Vec<SimRequest> {
    let with_deadline = |name: &str, w: u32, h: u32, deadline_ms: Option<u64>| SimRequest {
        deadline_ms,
        ..SimRequest::named(name, w, h)
    };
    match mix {
        "fast" => ["Brighten", "Blur", "Shift", "Histogram"]
            .iter()
            .map(|name| SimRequest::named(name, 64, 64))
            .collect(),
        "mixed" => vec![
            // Interactive class: small, deadline-bounded (generous enough
            // never to shed on a healthy run — the deadline *plumbing* is
            // what's being exercised).
            with_deadline("Brighten", 64, 32, Some(120_000)),
            with_deadline("Shift", 64, 32, Some(120_000)),
            with_deadline("Brighten", 64, 64, Some(120_000)),
            with_deadline("Shift", 64, 64, Some(120_000)),
            with_deadline("Histogram", 64, 32, Some(120_000)),
            // Interactive NN/video traffic: the small-kernel end of the
            // new families (their schedule ladders keep these legal well
            // below Table II's minimum sizes).
            with_deadline("Gemm", 64, 32, Some(120_000)),
            with_deadline("RowSoftmax", 64, 32, Some(120_000)),
            with_deadline("FrameDelta", 96, 64, Some(120_000)),
            with_deadline("MotionEnergy", 64, 32, Some(120_000)),
            // Batch class: larger, no deadline.
            with_deadline("Blur", 96, 64, None),
            with_deadline("Histogram", 96, 64, None),
            with_deadline("Blur", 128, 64, None),
            with_deadline("Conv3x3", 64, 64, None),
            with_deadline("TemporalBlur", 64, 64, None),
        ],
        "table2" => [
            "Brighten",
            "Blur",
            "Downsample",
            "Upsample",
            "Shift",
            "Histogram",
            "BilateralGrid",
            "Interpolate",
            "LocalLaplacian",
            "StencilChain",
        ]
        .iter()
        .map(|name| SimRequest { max_cycles: 4_000_000_000, ..SimRequest::named(name, 128, 128) })
        .collect(),
        other => panic!("unknown mix {other:?}"),
    }
}

/// One local shard backend: a `ServePool` behind a loopback listener,
/// serving every accepted connection in streaming mode on its own thread
/// (the `ipim_served --stream --tcp` shape, in-process). The accept
/// thread is detached — backends live until the process exits; the
/// returned pool handle is kept for end-of-run metrics.
/// A spawned local backend: its listen address and its pool handle (kept
/// for end-of-run metrics).
type LocalBackend = (String, Arc<ServePool>);

/// Per-fingerprint determinism witness: the request, its output hash,
/// and (when the transport carries one) its report hash.
type Witness = (SimRequest, u64, Option<u64>);

fn spawn_shard_backend(pool_config: &PoolConfig) -> LocalBackend {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind shard backend");
    let addr = listener.local_addr().expect("local addr").to_string();
    let pool = Arc::new(ServePool::start(pool_config));
    let served = pool.clone();
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { break };
            let served = served.clone();
            std::thread::spawn(move || {
                let reader = BufReader::new(stream.try_clone().expect("clone stream"));
                let _ = serve_stream(reader, &stream, &*served);
            });
        }
    });
    (addr, pool)
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn main() {
    let opts = parse_args();
    let mix = mix_requests(opts.mix);
    let total_requests = opts.clients * opts.requests;
    // Speedup from extra workers is bounded by the machine: simulation is
    // pure CPU-bound work, so throughput scales with min(workers, cores).
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    eprintln!(
        "loadgen: {} client(s) x {} request(s), {} worker(s) on {} core(s), mix {}, cache {}, \
         seed {}{}",
        opts.clients,
        opts.requests,
        opts.pool.workers,
        cores,
        opts.mix,
        opts.pool.cache_capacity,
        opts.seed,
        if opts.stream {
            ", streaming over TCP".to_string()
        } else if opts.shard > 0 {
            format!(", sharded over {} TCP backend(s)", opts.shard)
        } else {
            String::new()
        }
    );

    // The watchdog turns a deadlock into a loud, bounded failure: if the
    // closed loop hasn't finished after `watchdog_secs`, exit 2.
    let finished = std::sync::Arc::new(AtomicBool::new(false));
    {
        let finished = finished.clone();
        let secs = opts.watchdog_secs;
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_secs(secs));
            if !finished.load(Ordering::SeqCst) {
                eprintln!("loadgen: WATCHDOG: run did not finish within {secs}s");
                std::process::exit(2);
            }
        });
    }

    let pool = ServePool::start(&opts.pool);
    // In shard mode the router fans out over `opts.shard` local streaming
    // backends, each with its own `--workers`-worker pool (the main pool
    // above sits idle; clients never touch it). Seeded from `--seed` so
    // retry jitter and probe timing are reproducible.
    let shard: Option<(ShardRouter, Vec<LocalBackend>)> = (opts.shard > 0).then(|| {
        let backends: Vec<_> = (0..opts.shard).map(|_| spawn_shard_backend(&opts.pool)).collect();
        let addrs = backends.iter().map(|(a, _)| a.clone()).collect();
        let router =
            ShardRouter::start(&ShardConfig { seed: opts.seed, ..ShardConfig::over(addrs) });
        (router, backends)
    });
    // One representative (request, output_hash, report_hash) per
    // fingerprint, shared so cross-client divergence on identical requests
    // is itself a failure.
    let observed: Mutex<HashMap<u64, Witness>> = Mutex::new(HashMap::new());
    let failures: Mutex<Vec<String>> = Mutex::new(Vec::new());

    // In streaming mode every client gets its own long-lived loopback-TCP
    // connection served by `serve_stream` (the `ipim_served --stream`
    // code path); otherwise clients submit in-process.
    let listener = if opts.stream {
        Some(TcpListener::bind("127.0.0.1:0").expect("bind loopback"))
    } else {
        None
    };
    let addr = listener.as_ref().map(|l| l.local_addr().expect("local addr"));

    let started = Instant::now();
    let mut latencies: Vec<u64> = std::thread::scope(|scope| {
        if let Some(listener) = &listener {
            let pool = &pool;
            let n = opts.clients;
            scope.spawn(move || {
                // One streaming server per connection; exactly `clients`
                // connections, then stop accepting so the scope can join.
                for _ in 0..n {
                    let (stream, _) = listener.accept().expect("accept client");
                    scope.spawn(move || {
                        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
                        serve_stream(reader, &stream, pool).expect("serve stream");
                    });
                }
            });
        }
        let handles: Vec<_> = (0..opts.clients)
            .map(|c| {
                let pool = &pool;
                let shard = &shard;
                let mix = &mix;
                let observed = &observed;
                let failures = &failures;
                let mut rng = Rng::new(splitmix64(&mut (opts.seed ^ c as u64)));
                scope.spawn(move || {
                    let mut transport = match (shard, addr) {
                        (Some((router, _)), _) => Transport::Shard(router),
                        (None, None) => Transport::InProcess(pool),
                        (None, Some(addr)) => {
                            let write = TcpStream::connect(addr).expect("connect");
                            let read = BufReader::new(write.try_clone().expect("clone"));
                            Transport::Stream { write, read }
                        }
                    };
                    let mut lat = Vec::with_capacity(opts.requests);
                    for _ in 0..opts.requests {
                        let req = mix[(rng.next_u64() % mix.len() as u64) as usize].clone();
                        let sent = Instant::now();
                        let reply = transport.round_trip(&req);
                        lat.push(sent.elapsed().as_nanos() as u64);
                        match reply {
                            Reply::Done { output_hash, report_hash, fingerprint } => {
                                // The server derives the cache key from the
                                // wire bytes it received; it must match the
                                // key we routed on.
                                if fingerprint.is_some_and(|fp| fp != req.fingerprint()) {
                                    failures.lock().unwrap().push(format!(
                                        "{}: echoed fingerprint {:016x} != local {:016x}",
                                        req.workload,
                                        fingerprint.unwrap(),
                                        req.fingerprint()
                                    ));
                                }
                                let mut seen = observed.lock().unwrap();
                                let entry = seen
                                    .entry(req.fingerprint())
                                    .or_insert_with(|| (req.clone(), output_hash, report_hash));
                                if entry.1 != output_hash
                                    || (entry.2.is_some()
                                        && report_hash.is_some()
                                        && entry.2 != report_hash)
                                {
                                    failures.lock().unwrap().push(format!(
                                        "{}: output/report hash diverged across identical requests",
                                        req.workload
                                    ));
                                }
                            }
                            Reply::DeadlineShed => {}
                            Reply::OtherTimeout(kind) => failures
                                .lock()
                                .unwrap()
                                .push(format!("{}: non-deadline timeout {kind}", req.workload)),
                            Reply::Error(msg) => {
                                failures.lock().unwrap().push(format!("{}: {msg}", req.workload));
                            }
                        }
                    }
                    if let Transport::Stream { write, .. } = &transport {
                        // Half-close marks end-of-input so the per-client
                        // server thread sees EOF and joins.
                        let _ = write.shutdown(Shutdown::Write);
                    }
                    lat
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("client panicked")).collect()
    });
    let wall = started.elapsed();
    finished.store(true, Ordering::SeqCst);
    let metrics = pool.shutdown();
    // Drain the shard router (waits for in-flight jobs, joins its threads)
    // and fold the backends' pool counters into one view. The backends'
    // accept threads are detached and die with the process.
    let shard_summary = shard.map(|(router, backends)| {
        let sm = router.shutdown();
        let sum =
            |key: &str| -> u64 { backends.iter().map(|(_, p)| p.metrics().counter(key)).sum() };
        (sm, sum("serve/pool/completed"), sum("serve/pool/errors"), sum("serve/cache/hits"))
    });

    latencies.sort_unstable();
    let p50 = percentile(&latencies, 0.50);
    let p95 = percentile(&latencies, 0.95);
    let p99 = percentile(&latencies, 0.99);
    let mean = latencies.iter().sum::<u64>() / latencies.len().max(1) as u64;
    let throughput = total_requests as f64 / wall.as_secs_f64();
    println!(
        "loadgen: {} response(s) in {:.2}s -> {throughput:.2} req/s; latency p50 {:.1}ms \
         p95 {:.1}ms p99 {:.1}ms",
        latencies.len(),
        wall.as_secs_f64(),
        p50 as f64 / 1e6,
        p95 as f64 / 1e6,
        p99 as f64 / 1e6,
    );
    match &shard_summary {
        Some((sm, completed, errors, hits)) => {
            println!(
                "loadgen: shard submitted {} / completed {} / shed {} / retries {} / \
                 ejections {} / readmissions {}",
                sm.counter("shard/submitted"),
                sm.counter("shard/completed"),
                sm.counter("shard/shed"),
                sm.counter("shard/retries"),
                sm.counter("shard/ejections"),
                sm.counter("shard/readmissions"),
            );
            println!(
                "loadgen: backends completed {completed} / errors {errors} / cache hits {hits}"
            );
            // These two counters being nonzero means the distributed tier
            // corrupted or duplicated work — always a failure.
            for key in ["shard/fingerprint_mismatches", "shard/unsolicited"] {
                let n = sm.counter(key);
                if n > 0 {
                    failures.lock().unwrap().push(format!("{key} = {n} after a clean drain"));
                }
            }
        }
        None => println!(
            "loadgen: pool completed {} / timeouts {} / errors {} / cache hits {}",
            metrics.counter("serve/pool/completed"),
            metrics.counter("serve/pool/timeouts"),
            metrics.counter("serve/pool/errors"),
            metrics.counter("serve/cache/hits"),
        ),
    }

    if opts.verify {
        let seen = observed.lock().unwrap();
        eprintln!("loadgen: verifying {} unique request(s) against serial runs", seen.len());
        for (req, pooled_hash, pooled_report) in seen.values() {
            let (session, workload) =
                req.instantiate().unwrap_or_else(|e| panic!("{}: {e}", req.workload));
            match session.run_workload(&workload, req.max_cycles) {
                Ok(outcome) => {
                    let serial_hash = image_hash(&outcome.output);
                    if serial_hash != *pooled_hash {
                        failures.lock().unwrap().push(format!(
                            "{}: pooled output hash {pooled_hash:#x} != serial {serial_hash:#x}",
                            req.workload
                        ));
                    }
                    let serial_report = report_hash(&outcome.report);
                    if pooled_report.is_some_and(|r| r != serial_report) {
                        failures.lock().unwrap().push(format!(
                            "{}: pooled report hash {:#x} != serial {serial_report:#x}",
                            req.workload,
                            pooled_report.unwrap()
                        ));
                    }
                }
                Err(e) => {
                    failures.lock().unwrap().push(format!("{}: serial run: {e}", req.workload));
                }
            }
        }
    }

    if let Some(path) = &opts.append_figures {
        let (suite, name, transport) = if opts.shard > 0 {
            ("shard", format!("shard/throughput/backends{}", opts.shard), "shard")
        } else {
            let transport = if opts.stream { "stream" } else { "inproc" };
            ("serve", format!("serve/throughput/workers{}", opts.pool.workers), transport)
        };
        let line = format!(
            r#"{{"suite":"{suite}","name":"{name}","iters":{},"min_ns":{},"median_ns":{},"p95_ns":{},"mean_ns":{},"p99_ns":{},"throughput_rps":{:.3},"clients":{},"cores":{},"mix":"{}","transport":"{transport}","seed":{}}}"#,
            total_requests,
            p50,
            p50,
            p95,
            mean,
            p99,
            throughput,
            opts.clients,
            cores,
            opts.mix,
            opts.seed,
        );
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .unwrap_or_else(|e| panic!("loadgen: cannot open {path}: {e}"));
        writeln!(file, "{line}").unwrap_or_else(|e| panic!("loadgen: cannot write {path}: {e}"));
        println!("loadgen: appended {name} to {path}");
    }

    let failures = failures.into_inner().unwrap();
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("loadgen: FAIL: {f}");
        }
        std::process::exit(1);
    }
}
