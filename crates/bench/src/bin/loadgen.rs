//! `loadgen` — closed-loop load generator for the `ipim-serve` pool.
//!
//! Spawns `--clients` closed-loop client threads against an in-process
//! `ServePool` with `--workers` workers. Each client draws `--requests`
//! jobs from a seeded simkit PRNG over the chosen `--mix`, submits one at a
//! time, and records the response latency. At the end it reports throughput
//! and p50/p95/p99 latency, and (with `--append-figures`) appends a
//! `serve/throughput/...` JSONL entry compatible with
//! `results/figures.jsonl` (`min_ns` carries the p50 so `bench_regress` can
//! parse the file).
//!
//! The run **fails** (exit 1) on any `Error` response or any timeout that
//! is not an explicit deadline shed — a deadlock or a lost reply can only
//! show up as the watchdog firing (exit 2 after `--watchdog-secs`).
//!
//! With `--stream`, clients talk to the pool over real loopback-TCP ndjson
//! connections in per-response-flush streaming mode (`serve_stream`)
//! instead of in-process `submit` calls — the end-to-end exercise of the
//! `ipim_served --stream` protocol path, wire parsing included.
//!
//! Flags: `--workers N` (default 4) · `--clients N` (default = workers) ·
//! `--requests M` per client (default 8) · `--seed S` (default 7) ·
//! `--mix fast|table2` (default fast) · `--cache N` (default 0: caching off
//! so throughput numbers are honest) · `--stream` · `--verify` re-run each
//! unique request serially and compare bit-for-bit · `--watchdog-secs T`
//! (default 600) · `--append-figures PATH`.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use ipim_core::trace::json;
use ipim_serve::server::serve_stream;
use ipim_serve::{image_hash, PoolConfig, ServePool, SimRequest, SimResponse, TimeoutKind};
use ipim_simkit::rng::{splitmix64, Rng};

struct Options {
    pool: PoolConfig,
    clients: usize,
    requests: usize,
    seed: u64,
    mix: &'static str,
    stream: bool,
    verify: bool,
    watchdog_secs: u64,
    append_figures: Option<String>,
}

/// What one request came back as, seen from the client side — the common
/// shape of the in-process and wire transports.
enum Reply {
    Done { output_hash: u64 },
    DeadlineShed,
    OtherTimeout(String),
    Error(String),
}

impl Reply {
    fn from_response(resp: SimResponse) -> Self {
        match resp {
            SimResponse::Done(done) => Reply::Done { output_hash: done.output_hash },
            SimResponse::Timeout(TimeoutKind::DeadlineBeforeStart) => Reply::DeadlineShed,
            SimResponse::Timeout(kind) => Reply::OtherTimeout(format!("{kind:?}")),
            SimResponse::Error(msg) => Reply::Error(msg),
        }
    }

    /// Parses one ndjson response line off the wire.
    fn from_wire(line: &str) -> Self {
        let Ok(v) = json::parse(line) else {
            return Reply::Error(format!("unparseable response line {line:?}"));
        };
        match v.get("status").and_then(json::Value::as_str) {
            Some("done") => match v
                .get("output_hash")
                .and_then(json::Value::as_str)
                .and_then(|h| u64::from_str_radix(h, 16).ok())
            {
                Some(output_hash) => Reply::Done { output_hash },
                None => Reply::Error(format!("done response without output_hash: {line:?}")),
            },
            Some("timeout") => match v.get("reason").and_then(json::Value::as_str) {
                Some("deadline") => Reply::DeadlineShed,
                reason => Reply::OtherTimeout(format!("{reason:?}")),
            },
            Some("error") => Reply::Error(
                v.get("message")
                    .and_then(json::Value::as_str)
                    .unwrap_or("error response without message")
                    .to_string(),
            ),
            other => Reply::Error(format!("unknown response status {other:?}")),
        }
    }
}

/// One client's transport: in-process pool submission, or an ndjson
/// streaming TCP connection.
enum Transport<'p> {
    InProcess(&'p ServePool),
    Stream { write: TcpStream, read: BufReader<TcpStream> },
}

impl Transport<'_> {
    fn round_trip(&mut self, req: &SimRequest) -> Reply {
        match self {
            Transport::InProcess(pool) => Reply::from_response(pool.submit(req.clone()).wait()),
            Transport::Stream { write, read } => {
                if let Err(e) = writeln!(write, "{}", req.to_json_string()) {
                    return Reply::Error(format!("wire write: {e}"));
                }
                let mut line = String::new();
                match read.read_line(&mut line) {
                    Ok(0) => Reply::Error("server closed the stream early".to_string()),
                    Ok(_) => Reply::from_wire(line.trim()),
                    Err(e) => Reply::Error(format!("wire read: {e}")),
                }
            }
        }
    }
}

fn parse_args() -> Options {
    let mut opts = Options {
        pool: PoolConfig { workers: 4, queue_depth: 64, cache_capacity: 0 },
        clients: 0,
        requests: 8,
        seed: 7,
        mix: "fast",
        stream: false,
        verify: false,
        watchdog_secs: 600,
        append_figures: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |flag: &str| args.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        let num = |flag: &str, text: String| -> u64 {
            text.parse().unwrap_or_else(|_| panic!("{flag} needs an unsigned integer"))
        };
        match a.as_str() {
            "--workers" => opts.pool.workers = num("--workers", val("--workers")) as usize,
            "--clients" => opts.clients = num("--clients", val("--clients")) as usize,
            "--requests" => opts.requests = num("--requests", val("--requests")) as usize,
            "--seed" => opts.seed = num("--seed", val("--seed")),
            "--cache" => opts.pool.cache_capacity = num("--cache", val("--cache")) as usize,
            "--watchdog-secs" => {
                opts.watchdog_secs = num("--watchdog-secs", val("--watchdog-secs"));
            }
            "--append-figures" => opts.append_figures = Some(val("--append-figures")),
            "--stream" => opts.stream = true,
            "--verify" => opts.verify = true,
            "--mix" => {
                opts.mix = match val("--mix").as_str() {
                    "fast" => "fast",
                    "table2" => "table2",
                    other => panic!("--mix must be fast or table2, got {other:?}"),
                }
            }
            other => panic!(
                "unknown argument {other:?} (supported: --workers N --clients N --requests M \
                 --seed S --mix fast|table2 --cache N --stream --verify --watchdog-secs T \
                 --append-figures PATH)"
            ),
        }
    }
    if opts.clients == 0 {
        opts.clients = opts.pool.workers;
    }
    opts
}

/// The workload mixes. `fast` sticks to 64×64 single-stage kernels for CI
/// soaks; `table2` is the full 10-benchmark suite at 128×128 (Downsample
/// and Upsample need ≥128 pixels per row to fit the SIMB lanes).
fn mix_requests(mix: &str) -> Vec<SimRequest> {
    match mix {
        "fast" => ["Brighten", "Blur", "Shift", "Histogram"]
            .iter()
            .map(|name| SimRequest::named(name, 64, 64))
            .collect(),
        "table2" => [
            "Brighten",
            "Blur",
            "Downsample",
            "Upsample",
            "Shift",
            "Histogram",
            "BilateralGrid",
            "Interpolate",
            "LocalLaplacian",
            "StencilChain",
        ]
        .iter()
        .map(|name| SimRequest { max_cycles: 4_000_000_000, ..SimRequest::named(name, 128, 128) })
        .collect(),
        other => panic!("unknown mix {other:?}"),
    }
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn main() {
    let opts = parse_args();
    let mix = mix_requests(opts.mix);
    let total_requests = opts.clients * opts.requests;
    // Speedup from extra workers is bounded by the machine: simulation is
    // pure CPU-bound work, so throughput scales with min(workers, cores).
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    eprintln!(
        "loadgen: {} client(s) x {} request(s), {} worker(s) on {} core(s), mix {}, cache {}, \
         seed {}{}",
        opts.clients,
        opts.requests,
        opts.pool.workers,
        cores,
        opts.mix,
        opts.pool.cache_capacity,
        opts.seed,
        if opts.stream { ", streaming over TCP" } else { "" }
    );

    // The watchdog turns a deadlock into a loud, bounded failure: if the
    // closed loop hasn't finished after `watchdog_secs`, exit 2.
    let finished = std::sync::Arc::new(AtomicBool::new(false));
    {
        let finished = finished.clone();
        let secs = opts.watchdog_secs;
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_secs(secs));
            if !finished.load(Ordering::SeqCst) {
                eprintln!("loadgen: WATCHDOG: run did not finish within {secs}s");
                std::process::exit(2);
            }
        });
    }

    let pool = ServePool::start(&opts.pool);
    // One representative (request, output_hash) per fingerprint, shared so
    // cross-client divergence on identical requests is itself a failure.
    let observed: Mutex<HashMap<u64, (SimRequest, u64)>> = Mutex::new(HashMap::new());
    let failures: Mutex<Vec<String>> = Mutex::new(Vec::new());

    // In streaming mode every client gets its own long-lived loopback-TCP
    // connection served by `serve_stream` (the `ipim_served --stream`
    // code path); otherwise clients submit in-process.
    let listener = if opts.stream {
        Some(TcpListener::bind("127.0.0.1:0").expect("bind loopback"))
    } else {
        None
    };
    let addr = listener.as_ref().map(|l| l.local_addr().expect("local addr"));

    let started = Instant::now();
    let mut latencies: Vec<u64> = std::thread::scope(|scope| {
        if let Some(listener) = &listener {
            let pool = &pool;
            let n = opts.clients;
            scope.spawn(move || {
                // One streaming server per connection; exactly `clients`
                // connections, then stop accepting so the scope can join.
                for _ in 0..n {
                    let (stream, _) = listener.accept().expect("accept client");
                    scope.spawn(move || {
                        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
                        serve_stream(reader, &stream, pool).expect("serve stream");
                    });
                }
            });
        }
        let handles: Vec<_> = (0..opts.clients)
            .map(|c| {
                let pool = &pool;
                let mix = &mix;
                let observed = &observed;
                let failures = &failures;
                let mut rng = Rng::new(splitmix64(&mut (opts.seed ^ c as u64)));
                scope.spawn(move || {
                    let mut transport = match addr {
                        None => Transport::InProcess(pool),
                        Some(addr) => {
                            let write = TcpStream::connect(addr).expect("connect");
                            let read = BufReader::new(write.try_clone().expect("clone"));
                            Transport::Stream { write, read }
                        }
                    };
                    let mut lat = Vec::with_capacity(opts.requests);
                    for _ in 0..opts.requests {
                        let req = mix[(rng.next_u64() % mix.len() as u64) as usize].clone();
                        let sent = Instant::now();
                        let reply = transport.round_trip(&req);
                        lat.push(sent.elapsed().as_nanos() as u64);
                        match reply {
                            Reply::Done { output_hash } => {
                                let mut seen = observed.lock().unwrap();
                                let entry = seen
                                    .entry(req.fingerprint())
                                    .or_insert_with(|| (req.clone(), output_hash));
                                if entry.1 != output_hash {
                                    failures.lock().unwrap().push(format!(
                                        "{}: output hash diverged across identical requests",
                                        req.workload
                                    ));
                                }
                            }
                            Reply::DeadlineShed => {}
                            Reply::OtherTimeout(kind) => failures
                                .lock()
                                .unwrap()
                                .push(format!("{}: non-deadline timeout {kind}", req.workload)),
                            Reply::Error(msg) => {
                                failures.lock().unwrap().push(format!("{}: {msg}", req.workload));
                            }
                        }
                    }
                    if let Transport::Stream { write, .. } = &transport {
                        // Half-close marks end-of-input so the per-client
                        // server thread sees EOF and joins.
                        let _ = write.shutdown(Shutdown::Write);
                    }
                    lat
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("client panicked")).collect()
    });
    let wall = started.elapsed();
    finished.store(true, Ordering::SeqCst);
    let metrics = pool.shutdown();

    latencies.sort_unstable();
    let p50 = percentile(&latencies, 0.50);
    let p95 = percentile(&latencies, 0.95);
    let p99 = percentile(&latencies, 0.99);
    let mean = latencies.iter().sum::<u64>() / latencies.len().max(1) as u64;
    let throughput = total_requests as f64 / wall.as_secs_f64();
    println!(
        "loadgen: {} response(s) in {:.2}s -> {throughput:.2} req/s; latency p50 {:.1}ms \
         p95 {:.1}ms p99 {:.1}ms",
        latencies.len(),
        wall.as_secs_f64(),
        p50 as f64 / 1e6,
        p95 as f64 / 1e6,
        p99 as f64 / 1e6,
    );
    println!(
        "loadgen: pool completed {} / timeouts {} / errors {} / cache hits {}",
        metrics.counter("serve/pool/completed"),
        metrics.counter("serve/pool/timeouts"),
        metrics.counter("serve/pool/errors"),
        metrics.counter("serve/cache/hits"),
    );

    if opts.verify {
        let seen = observed.lock().unwrap();
        eprintln!("loadgen: verifying {} unique request(s) against serial runs", seen.len());
        for (req, pooled_hash) in seen.values() {
            let (session, workload) =
                req.instantiate().unwrap_or_else(|e| panic!("{}: {e}", req.workload));
            match session.run_workload(&workload, req.max_cycles) {
                Ok(outcome) => {
                    let serial_hash = image_hash(&outcome.output);
                    if serial_hash != *pooled_hash {
                        failures.lock().unwrap().push(format!(
                            "{}: pooled output hash {pooled_hash:#x} != serial {serial_hash:#x}",
                            req.workload
                        ));
                    }
                }
                Err(e) => {
                    failures.lock().unwrap().push(format!("{}: serial run: {e}", req.workload));
                }
            }
        }
    }

    if let Some(path) = &opts.append_figures {
        let line = format!(
            r#"{{"suite":"serve","name":"serve/throughput/workers{}","iters":{},"min_ns":{},"median_ns":{},"p95_ns":{},"mean_ns":{},"p99_ns":{},"throughput_rps":{:.3},"clients":{},"cores":{},"mix":"{}","transport":"{}","seed":{}}}"#,
            opts.pool.workers,
            total_requests,
            p50,
            p50,
            p95,
            mean,
            p99,
            throughput,
            opts.clients,
            cores,
            opts.mix,
            if opts.stream { "stream" } else { "inproc" },
            opts.seed,
        );
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .unwrap_or_else(|e| panic!("loadgen: cannot open {path}: {e}"));
        writeln!(file, "{line}").unwrap_or_else(|e| panic!("loadgen: cannot write {path}: {e}"));
        println!("loadgen: appended serve/throughput/workers{} to {path}", opts.pool.workers);
    }

    let failures = failures.into_inner().unwrap();
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("loadgen: FAIL: {f}");
        }
        std::process::exit(1);
    }
}
