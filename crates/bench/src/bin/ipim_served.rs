//! `ipim_served` — the simulation service front-end.
//!
//! Speaks the `ipim-serve` ndjson protocol (one `SimRequest` JSON object
//! per input line, one `SimResponse` line per request, in order) over one
//! of two transports:
//!
//! * **stdin/stdout** (default) — serve one batch and exit. Composes with
//!   shell pipelines:
//!   `printf '{"workload":"Blur"}\n' | ipim_served --workers 4`
//! * **TCP** (`--tcp ADDR`) — bind a `std::net::TcpListener` and serve one
//!   batch per connection, forever (the client half-closes its write side
//!   to mark end-of-batch).
//!
//! `--stream` switches either transport to per-response-flush pacing:
//! response line *n* is written (and flushed) the moment jobs 1..=*n* have
//! resolved, instead of after input EOF — the long-lived-connection mode
//! where a client pipelines requests and reads answers as they land.
//!
//! Flags: `--workers N` (default 4) · `--queue-depth N` (default 64) ·
//! `--cache N` result-cache entries, 0 disables (default 128) ·
//! `--tcp ADDR` e.g. `127.0.0.1:7199` · `--stream`.

use std::io::{stdin, stdout, BufReader, BufWriter};
use std::net::TcpListener;

use ipim_serve::server::{serve_batch, serve_stream, serve_tcp};
use ipim_serve::{PoolConfig, ServePool};

fn main() {
    let mut config = PoolConfig::default();
    let mut tcp_addr: Option<String> = None;
    let mut streaming = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |flag: &str| args.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match a.as_str() {
            "--workers" => config.workers = parse(&val("--workers"), "--workers"),
            "--queue-depth" => config.queue_depth = parse(&val("--queue-depth"), "--queue-depth"),
            "--cache" => config.cache_capacity = parse(&val("--cache"), "--cache"),
            "--tcp" => tcp_addr = Some(val("--tcp")),
            "--stream" => streaming = true,
            other => panic!(
                "unknown argument {other:?} (supported: --workers N --queue-depth N --cache N \
                 --tcp ADDR --stream)"
            ),
        }
    }

    let pool = ServePool::start(&config);
    match tcp_addr {
        Some(addr) => {
            let listener = TcpListener::bind(&addr)
                .unwrap_or_else(|e| panic!("ipim_served: cannot bind {addr}: {e}"));
            eprintln!(
                "ipim_served: listening on {addr} ({} worker(s), cache {}{})",
                config.workers,
                config.cache_capacity,
                if streaming { ", streaming" } else { "" }
            );
            serve_tcp(&listener, &pool, streaming).unwrap_or_else(|e| panic!("ipim_served: {e}"));
        }
        None => {
            // `stdin().lock()` is not `Send` (the stream mode's reader
            // thread needs to own its input), so stream over the unlocked
            // handle instead.
            let summary = if streaming {
                serve_stream(BufReader::new(stdin()), stdout().lock(), &pool)
            } else {
                serve_batch(stdin().lock(), BufWriter::new(stdout().lock()), &pool)
            }
            .unwrap_or_else(|e| panic!("ipim_served: {e}"));
            let metrics = pool.shutdown();
            eprintln!(
                "ipim_served: {} request(s), {} parse error(s), {} cache hit(s)",
                summary.requests,
                summary.parse_errors,
                metrics.counter("serve/cache/hits")
            );
        }
    }
}

fn parse(text: &str, flag: &str) -> usize {
    text.parse().unwrap_or_else(|_| panic!("{flag} needs an unsigned integer, got {text:?}"))
}
