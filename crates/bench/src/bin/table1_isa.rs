//! Table I: the SIMB instruction set architecture, rendered from the live
//! ISA definitions (and exercising the binary encoder on each sample).

use ipim_bench::banner;
use ipim_core::isa::{
    encode, AddrOperand, AddrReg, ArfOp, ArfSrc, CompMode, CompOp, CrfOp, CrfSrc, CtrlReg, DataReg,
    DataType, Instruction, RemoteTarget, SimbMask, VecMask,
};

fn main() {
    banner("Table I — SIMB instruction set architecture", "Sec. IV-C");
    let mask = SimbMask::all(32);
    let samples: Vec<(&str, &str, Instruction)> = vec![
        (
            "computation",
            "comp — SIMD computation (vv/sv modes, FP/INT + logical ops)",
            Instruction::Comp {
                op: CompOp::Mac,
                dtype: DataType::F32,
                mode: CompMode::VectorVector,
                dst: DataReg::new(4),
                src1: DataReg::new(1),
                src2: DataReg::new(2),
                vec_mask: VecMask::ALL,
                simb_mask: mask,
            },
        ),
        (
            "index calculation",
            "calc arf — per-PE memory address calculation (INT only)",
            Instruction::CalcArf {
                op: ArfOp::Mul,
                dst: AddrReg::new(8),
                src1: AddrReg::new(0),
                src2: ArfSrc::Imm(16),
                simb_mask: mask,
            },
        ),
        (
            "intra-vault",
            "st/ld rf — store(/load) bank data from(/to) the DataRF",
            Instruction::LdRf {
                dram_addr: AddrOperand::Indirect(AddrReg::new(8)),
                drf: DataReg::new(1),
                simb_mask: mask,
            },
        ),
        (
            "intra-vault",
            "st/ld pgsm — move data between the bank and the PGSM",
            Instruction::LdPgsm {
                dram_addr: AddrOperand::Indirect(AddrReg::new(8)),
                pgsm_addr: AddrOperand::Imm(64),
                simb_mask: mask,
            },
        ),
        (
            "intra-vault",
            "rd/wr pgsm — move data between the PGSM and the DataRF",
            Instruction::RdPgsm {
                pgsm_addr: AddrOperand::Imm(64),
                drf: DataReg::new(2),
                simb_mask: mask,
            },
        ),
        (
            "intra-vault",
            "rd/wr vsm — move data between the VSM and the DataRF",
            Instruction::WrVsm {
                vsm_addr: AddrOperand::Imm(256),
                drf: DataReg::new(3),
                simb_mask: mask,
            },
        ),
        (
            "intra-vault",
            "mov drf/arf — DataRF ↔ AddrRF (data-dependent indexing)",
            Instruction::Mov {
                to_arf: true,
                arf: AddrReg::new(9),
                drf: DataReg::new(3),
                lane: 1,
                simb_mask: mask,
            },
        ),
        (
            "intra-vault",
            "seti vsm — set an immediate at a VSM location",
            Instruction::SetiVsm { vsm_addr: 0x100, imm: 42 },
        ),
        (
            "intra-vault",
            "reset — clear a DataRF entry",
            Instruction::Reset { drf: DataReg::new(0), simb_mask: mask },
        ),
        (
            "inter-vault",
            "req — asynchronously fetch remote bank data into the local VSM",
            Instruction::Req {
                target: RemoteTarget { chip: 0, vault: 3, pg: 1, pe: 2 },
                dram_addr: CrfSrc::Imm(0x400),
                vsm_addr: CrfSrc::Imm(0x80),
            },
        ),
        (
            "control flow",
            "jump/cjump — (conditional) jump via the CtrlRF",
            Instruction::CJump { cond: CtrlReg::new(1), target: CrfSrc::Imm(7) },
        ),
        (
            "control flow",
            "calc crf — control-flow calculation (INT only)",
            Instruction::CalcCrf {
                op: CrfOp::Lt,
                dst: CtrlReg::new(2),
                src1: CtrlReg::new(0),
                src2: CrfSrc::Imm(100),
            },
        ),
        (
            "control flow",
            "seti crf — set an immediate CtrlRF value",
            Instruction::SetiCrf { dst: CtrlReg::new(0), imm: 0 },
        ),
        (
            "synchronization",
            "sync — inter-vault barrier on a phase id",
            Instruction::Sync { phase_id: 1 },
        ),
    ];
    for (cat, desc, inst) in samples {
        let word = encode(&inst);
        println!("[{cat:<15}] {desc}");
        println!("    asm:    {inst}");
        println!("    binary: {}", hex(&word));
    }
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect::<Vec<_>>().join("")
}
