//! Fig. 9: energy breakdown of iPIM programs
//! (paper: 89.17% of energy on the PIM dies, 10.83% data movement + core).

use ipim_bench::{banner, config_from_env, pct, row};
use ipim_core::experiments::{fig9, run_suite};

fn main() {
    let cfg = config_from_env();
    banner("Fig. 9 — energy breakdown", "Sec. VII-C2: 89.17% PIM-die energy");
    let suite = run_suite(&cfg).expect("suite");
    row(
        "benchmark",
        &[
            ("DRAM".into(), 7),
            ("SIMD".into(), 7),
            ("IntALU".into(), 7),
            ("AddrRF".into(), 7),
            ("DataRF".into(), 7),
            ("PGSM".into(), 7),
            ("others".into(), 7),
            ("PIMdie".into(), 7),
        ],
    );
    let rows = fig9(&suite);
    let mut pim = 0.0;
    for r in &rows {
        pim += r.pim_die_fraction / rows.len() as f64;
        row(
            r.name,
            &[
                (pct(r.dram), 7),
                (pct(r.simd), 7),
                (pct(r.int_alu), 7),
                (pct(r.addr_rf), 7),
                (pct(r.data_rf), 7),
                (pct(r.pgsm), 7),
                (pct(r.others), 7),
                (pct(r.pim_die_fraction), 7),
            ],
        );
    }
    println!("\nmean PIM-die fraction: {} (paper 89.17%)", pct(pim));
}
