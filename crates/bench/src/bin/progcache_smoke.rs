//! CI smoke gate for the compiled-program cache.
//!
//! Runs a cold wave of simulations (direct `Session` path *and* the
//! `ServePool` path), then a warm wave of the same workloads with a
//! different cycle budget — a budget change defeats the serve-layer
//! `ResultCache` (`max_cycles` is in its fingerprint) but not the program
//! cache (`max_cycles` is simulation-only, so the program key is
//! unchanged). The gate then asserts, from the `serve/progcache/*`
//! metrics, that the warm wave compiled **zero** programs, hit the cache
//! once per job, and produced bit-identical outputs.
//!
//! ```text
//! cargo run --release -p ipim-bench --bin progcache_smoke
//! ```
//!
//! Exits non-zero on any violation.

use ipim_core::{workload_by_name, MachineConfig, ProgramCache, Session, WorkloadScale};
use ipim_serve::{PoolConfig, ServePool, SimRequest, SimResponse};

/// The workload mix both waves run (all legal at 64×64 on one vault).
const MIX: [&str; 4] = ["Brighten", "Blur", "Shift", "StencilChain"];

fn fail(msg: &str) -> ! {
    eprintln!("progcache_smoke: FAIL: {msg}");
    std::process::exit(1);
}

/// Snapshot of the global program-cache counters.
fn stats() -> (u64, u64, u64) {
    ProgramCache::global().stats()
}

fn main() {
    // --- Direct-session path -------------------------------------------
    let session = Session::new(MachineConfig::vault_slice(1));
    let scale = WorkloadScale { width: 64, height: 64 };
    let workloads: Vec<_> =
        MIX.iter().map(|n| workload_by_name(n, scale).expect("Table II workload")).collect();

    let (_, m0, _) = stats();
    let cold: Vec<_> = workloads
        .iter()
        .map(|w| session.run_workload(w, 4_000_000_000).expect("cold run"))
        .collect();
    let (h1, m1, _) = stats();
    if m1 - m0 < MIX.len() as u64 {
        fail(&format!("cold wave compiled {} program(s), want ≥ {}", m1 - m0, MIX.len()));
    }

    // Warm wave: different budget, same programs.
    let warm: Vec<_> = workloads
        .iter()
        .map(|w| session.run_workload(w, 3_999_999_999).expect("warm run"))
        .collect();
    let (h2, m2, _) = stats();
    if m2 != m1 {
        fail(&format!("warm session wave compiled {} program(s), want 0", m2 - m1));
    }
    if h2 - h1 < MIX.len() as u64 {
        fail(&format!("warm session wave hit {} time(s), want ≥ {}", h2 - h1, MIX.len()));
    }
    for (name, (c, w)) in MIX.iter().zip(cold.iter().zip(&warm)) {
        if !std::sync::Arc::ptr_eq(&c.compiled, &w.compiled) {
            fail(&format!("{name}: warm run did not reuse the cached program"));
        }
        if c.output.data() != w.output.data() || c.report.cycles != w.report.cycles {
            fail(&format!("{name}: warm outcome differs from cold outcome"));
        }
    }
    println!(
        "ok: session path: {} cold compile(s), 0 warm compiles, {} warm hit(s)",
        m1 - m0,
        h2 - h1
    );

    // --- ServePool path ------------------------------------------------
    // The result cache is disabled so every job really reaches the
    // simulator; every program it needs is already cached above.
    let pool = ServePool::start(&PoolConfig { workers: 2, queue_depth: 16, cache_capacity: 0 });
    let responses = pool.run_all(MIX.iter().map(|n| SimRequest::named(n, 64, 64)));
    let metrics = pool.shutdown();
    for (name, r) in MIX.iter().zip(&responses) {
        match r {
            SimResponse::Done(_) => {}
            other => fail(&format!("{name}: pool job did not complete: {other:?}")),
        }
    }
    let (h3, m3, _) = stats();
    if m3 != m2 {
        fail(&format!("pool wave compiled {} program(s), want 0", m3 - m2));
    }
    if h3 - h2 < MIX.len() as u64 {
        fail(&format!("pool wave hit {} time(s), want ≥ {}", h3 - h2, MIX.len()));
    }
    if metrics.counter("serve/progcache/misses") != m3 {
        fail("pool metrics disagree with ProgramCache::stats() miss count");
    }
    println!(
        "ok: pool path: 0 warm compiles, {} hit(s); progcache totals: {} hits / {} misses",
        h3 - h2,
        h3,
        m3
    );
    println!("progcache_smoke: all checks passed");
}
