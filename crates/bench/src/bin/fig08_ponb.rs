//! Fig. 8: near-bank iPIM vs the process-on-base-die (PonB) baseline
//! (paper: 3.61× speedup and 56.71% energy saving on average).

use ipim_bench::{banner, config_from_env, pct, row};
use ipim_core::experiments::{fig8, geomean};

fn main() {
    let cfg = config_from_env();
    banner(
        "Fig. 8 — near-bank vs process-on-base-die",
        "Sec. VII-C1: 3.61x speedup, 56.71% energy saving",
    );
    let rows = fig8(&cfg).expect("fig8");
    row("benchmark", &[("speedup".into(), 8), ("energy saving".into(), 14)]);
    for r in &rows {
        row(r.name, &[(format!("{:.2}x", r.speedup), 8), (pct(r.energy_saving), 14)]);
    }
    let mean_save: f64 = rows.iter().map(|r| r.energy_saving).sum::<f64>() / rows.len() as f64;
    println!(
        "\ngeomean speedup {:.2}x (paper 3.61x), mean saving {} (paper 56.71%)",
        geomean(rows.iter().map(|r| r.speedup)),
        pct(mean_save)
    );
}
