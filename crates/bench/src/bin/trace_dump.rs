//! Runs a Table II workload with tracing enabled and writes the captured
//! events as Chrome `trace_event` JSON (load the file in `chrome://tracing`
//! or <https://ui.perfetto.dev>). Also prints the hierarchical metrics
//! table for the run.
//!
//! ```text
//! cargo run --release -p ipim-bench --bin trace_dump -- \
//!     --workload Blur --scale 64 --trace out.json
//! ```

use ipim_core::trace::chrome;
use ipim_core::{workload_by_name, MachineConfig, Session, TraceConfig, WorkloadScale};

fn main() {
    let mut workload = "Blur".to_string();
    let mut scale = 64u32;
    let mut out: Option<String> = None;
    let mut ring = 1usize << 20;
    let mut vaults = 1usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |flag: &str| args.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match a.as_str() {
            "--workload" => workload = val("--workload"),
            "--scale" => scale = val("--scale").parse().expect("--scale needs a number"),
            "--trace" => out = Some(val("--trace")),
            "--ring" => ring = val("--ring").parse().expect("--ring needs a number"),
            "--vaults" => vaults = val("--vaults").parse().expect("--vaults needs a number"),
            other => panic!(
                "unknown argument {other:?} (supported: --workload NAME --scale N \
                 --trace OUT.json --ring N --vaults N)"
            ),
        }
    }
    let w = workload_by_name(&workload, WorkloadScale { width: scale, height: scale })
        .unwrap_or_else(|| panic!("{workload:?} is not a Table II workload"));

    let config = MachineConfig {
        trace: TraceConfig { enabled: true, ring_capacity: ring, ..TraceConfig::default() },
        ..MachineConfig::vault_slice(vaults)
    };
    let session = Session::new(config);
    let outcome = session.run_workload(&w, 4_000_000_000).expect("workload run");

    let capture = outcome.trace.as_ref().expect("tracing was enabled");
    println!(
        "{workload} {scale}x{scale}: {} cycles, {} events captured ({} dropped of {})",
        outcome.report.cycles,
        capture.records.len(),
        capture.dropped,
        capture.total,
    );
    if let Some(path) = out {
        let json = capture.to_chrome_json();
        let report = chrome::lint(&json).expect("exporter produced a well-formed trace");
        std::fs::write(&path, &json).expect("write trace file");
        println!(
            "wrote {path}: {} trace events ({} spans, {} instants, {} completes)",
            report.events, report.spans, report.instants, report.completes
        );
    }
    println!("\n{}", outcome.metrics.render_table());
}
