//! Analytic vs. skip-ahead engine race over a tuner-shaped candidate
//! wave (StencilChain, the deepest Table II pipeline — see DESIGN.md
//! §"Three engine tiers").
//!
//! The analytic tier exists so the tuner can rank whole neighbourhoods
//! without paying for simulation; this race measures exactly that shape
//! of work: a wave of legal schedule candidates is compiled once (shared
//! program cache), then every candidate is evaluated by both engines and
//! the total wall-clocks compared. Exits non-zero if the analytic tier is
//! not at least `--floor`× (default 100) faster, or if its cycle ranking
//! of the wave disagrees with the bit-exact engine's ranking — the two
//! properties the tuner's short-list depends on. CI runs this as a perf
//! regression gate next to `engine_race`. Pass `--scale N` for an N×N
//! input (default 64).

use std::time::Instant;

use ipim_core::{
    workload_by_name, Engine, Fidelity, MachineConfig, ScheduleOverride, Session, WorkloadScale,
};

const MAX_CYCLES: u64 = 4_000_000_000;

fn main() {
    let mut scale = 64u32;
    let mut floor = 100.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--scale needs a number"));
            }
            "--floor" => {
                floor = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--floor needs a number"));
            }
            other => panic!("unknown argument {other:?} (supported: --scale N, --floor X)"),
        }
    }
    let base = workload_by_name("StencilChain", WorkloadScale { width: scale, height: scale })
        .expect("StencilChain is a Table II workload");

    let skip =
        Session::new(MachineConfig { engine: Engine::SkipAhead, ..MachineConfig::vault_slice(1) });
    let analytic =
        Session::new(MachineConfig { engine: Engine::Analytic, ..MachineConfig::vault_slice(1) });

    // A hill-climb-shaped wave: tile/pgsm neighbours of the hand
    // schedule, compiled up front (process-wide program cache) so both
    // engines race on simulation alone — the tuner pays compilation once
    // at enumeration time for the same reason. Combinations the compiler
    // rejects are dropped the same way the tuner's legality filter drops
    // them.
    let mut compiled = Vec::new();
    for (tw, th) in [(16u32, 8u32), (8, 16), (8, 8), (16, 16), (32, 8), (8, 32)] {
        for load_pgsm in [true, false] {
            let ov = ScheduleOverride {
                tile: Some((tw, th)),
                load_pgsm: Some(load_pgsm),
                vectorize: Some(4),
                ..ScheduleOverride::default()
            };
            let Ok(w) = base.with_override(&ov) else { continue };
            let Ok(p) = skip.compile(&w.pipeline) else { continue };
            let key = format!("tile={tw}x{th},pgsm={}", if load_pgsm { "on" } else { "off" });
            compiled.push((key, w, p));
        }
    }
    assert!(compiled.len() >= 4, "candidate wave collapsed to {} legal entries", compiled.len());

    let mut skip_wall = 0.0f64;
    let mut analytic_wall = 0.0f64;
    let mut ranks: Vec<(u64, u64, &str)> = Vec::new(); // (skip cycles, pred cycles, key)
    println!(
        "{:<22} {:>12} {:>12} {:>11} {:>11}",
        "candidate", "skip_cycles", "pred_cycles", "skip_wall", "pred_wall"
    );
    for (key, w, program) in &compiled {
        let t0 = Instant::now();
        let s = skip.simulate(program, &w.inputs, MAX_CYCLES).expect("skip-ahead run");
        let st = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let p = analytic.simulate(program, &w.inputs, MAX_CYCLES).expect("analytic predict");
        let pt = t1.elapsed().as_secs_f64();
        assert_eq!(p.fidelity, Fidelity::Approximate);
        skip_wall += st;
        analytic_wall += pt;
        ranks.push((s.report.cycles, p.report.cycles, key));
        println!(
            "{:<22} {:>12} {:>12} {:>10.3}s {:>10.6}s",
            key, s.report.cycles, p.report.cycles, st, pt
        );
    }

    let speedup = skip_wall / analytic_wall.max(1e-9);
    println!(
        "wave of {}: skip-ahead {skip_wall:.3} s, analytic {analytic_wall:.6} s — {speedup:.0}x",
        ranks.len()
    );

    // The short-list property: the analytic best must be the wave's true
    // best (ties by key, same rule the tuner applies).
    let true_best = ranks.iter().min_by_key(|(s, _, k)| (*s, *k)).expect("non-empty wave");
    let pred_best = ranks.iter().min_by_key(|(_, p, k)| (*p, *k)).expect("non-empty wave");
    if true_best.2 != pred_best.2 {
        eprintln!(
            "FAIL: analytic picked {} but the bit-exact winner is {}",
            pred_best.2, true_best.2
        );
        std::process::exit(1);
    }
    println!("winner agreement: both engines pick {}", true_best.2);

    if speedup < floor {
        eprintln!("FAIL: analytic tier must be at least {floor:.0}x faster (got {speedup:.0}x)");
        std::process::exit(1);
    }
}
