//! Fig. 11: dynamic instruction breakdown of iPIM programs
//! (paper: index calculation 23.25% on average, >28% for five benchmarks;
//! inter-vault movement only 1.44%).

use ipim_bench::{banner, config_from_env, pct, row};
use ipim_core::experiments::{fig11, run_suite};

fn main() {
    let cfg = config_from_env();
    banner(
        "Fig. 11 — instruction breakdown",
        "Sec. VII-D: index calc 23.25% avg, inter-vault 1.44%",
    );
    let suite = run_suite(&cfg).expect("suite");
    row(
        "benchmark",
        &[
            ("comp".into(), 7),
            ("index".into(), 7),
            ("intra-mem".into(), 10),
            ("inter".into(), 7),
            ("ctrl".into(), 7),
            ("sync".into(), 7),
        ],
    );
    let rows = fig11(&suite);
    let n = rows.len() as f64;
    let (mut idx, mut inter) = (0.0, 0.0);
    for r in &rows {
        idx += r.index_calc / n;
        inter += r.inter_vault / n;
        row(
            r.name,
            &[
                (pct(r.computation), 7),
                (pct(r.index_calc), 7),
                (pct(r.intra_vault), 10),
                (pct(r.inter_vault), 7),
                (pct(r.control_flow), 7),
                (pct(r.synchronization), 7),
            ],
        );
    }
    println!(
        "\nmean index share {} (paper 23.25%), mean inter-vault {} (paper 1.44%)",
        pct(idx),
        pct(inter)
    );
}
