//! Sec. VII-B thermal analysis: peak power per cube and cooling headroom
//! (paper: 63 W/cube, 593 mW/mm², fits commodity active cooling at
//! 706 mW/mm² and high-end cooling at 1214 mW/mm²).

use ipim_bench::banner;
use ipim_core::power::{
    peak_power_per_cube, COMMODITY_COOLING_MW_PER_MM2, CUBE_MM2, HIGH_END_COOLING_MW_PER_MM2,
};
use ipim_core::{EnergyParams, MachineConfig};

fn main() {
    banner("Thermal — peak power per cube", "Sec. VII-B: 63 W, 593 mW/mm2");
    let p = peak_power_per_cube(&MachineConfig::default(), &EnergyParams::default());
    println!("cube footprint            : {CUBE_MM2:.1} mm2");
    println!("peak power                : {:.1} W   (paper 63 W)", p.total_w);
    println!("power density             : {:.0} mW/mm2 (paper 593 mW/mm2)", p.density_mw_per_mm2);
    println!(
        "DRAM-bank-induced share   : {:.1}%  (paper attributes 78.5% to ACT/PRE)",
        p.dram_fraction * 100.0
    );
    println!(
        "commodity cooling (706)   : {}",
        if p.fits_cooling(COMMODITY_COOLING_MW_PER_MM2) { "OK" } else { "EXCEEDED" }
    );
    println!(
        "high-end cooling (1214)   : {}",
        if p.fits_cooling(HIGH_END_COOLING_MW_PER_MM2) { "OK" } else { "EXCEEDED" }
    );
}
