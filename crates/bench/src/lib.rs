//! Shared helpers for the figure/table regeneration binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper's
//! evaluation (see DESIGN.md §4 for the index). Binaries honor two
//! environment variables:
//!
//! * `IPIM_SCALE`  — simulated image edge in pixels (default 256; the
//!   paper-shaped runs in EXPERIMENTS.md use 512),
//! * `IPIM_VAULTS` — vaults in the simulated slice (default 1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ipim_core::experiments::ExperimentConfig;
use ipim_core::{MachineConfig, WorkloadScale};

/// Builds the experiment configuration from the environment.
pub fn config_from_env() -> ExperimentConfig {
    let edge: u32 = std::env::var("IPIM_SCALE").ok().and_then(|v| v.parse().ok()).unwrap_or(256);
    let vaults: usize = std::env::var("IPIM_VAULTS").ok().and_then(|v| v.parse().ok()).unwrap_or(1);
    ExperimentConfig {
        scale: WorkloadScale { width: edge, height: edge },
        slice: MachineConfig::vault_slice(vaults),
        ..ExperimentConfig::default()
    }
}

/// Prints a header banner for one experiment.
pub fn banner(id: &str, paper: &str) {
    println!("==============================================================");
    println!("{id}");
    println!("paper reference: {paper}");
    println!("==============================================================");
}

/// Prints one formatted row of label + columns.
pub fn row(label: &str, cols: &[(String, usize)]) {
    print!("{label:<16}");
    for (text, width) in cols {
        print!(" {text:>w$}", w = width);
    }
    println!();
}

/// Formats a float with the given precision.
pub fn f(v: f64, prec: usize) -> String {
    format!("{v:.prec$}")
}

/// Formats a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults() {
        std::env::remove_var("IPIM_SCALE");
        std::env::remove_var("IPIM_VAULTS");
        let cfg = config_from_env();
        assert_eq!(cfg.scale.width, 256);
        assert_eq!(cfg.slice.total_vaults(), 1);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(pct(0.7949), "79.5%");
    }
}
