//! Criterion benches, one group per reproduced table/figure.
//!
//! These measure the wall-clock cost of regenerating each experiment's
//! underlying measurement at a reduced scale (the figure binaries in
//! `src/bin/` print the paper-shaped numbers themselves). Cycle-accurate
//! simulation is expensive, so the groups use small images and few samples.

use criterion::{criterion_group, criterion_main, Criterion};
use ipim_core::experiments::{fig1, ExperimentConfig};
use ipim_core::{
    all_workloads, area, compile, power, workload_by_name, CompileOptions, EnergyParams,
    MachineConfig, Session, WorkloadScale,
};

fn small() -> WorkloadScale {
    WorkloadScale { width: 128, height: 128 }
}

fn bench_scale() -> WorkloadScale {
    // Large enough that every PE runs multiple tile slots.
    WorkloadScale { width: 128, height: 128 }
}

/// Fig. 1: the GPU-profile model (pure computation).
fn fig01(c: &mut Criterion) {
    c.bench_function("fig01_gpu_profile", |b| b.iter(fig1));
}

/// Table I: ISA encode/decode throughput over a full workload program.
fn table1(c: &mut Criterion) {
    let w = workload_by_name("Blur", small()).unwrap();
    let compiled = compile(
        &w.pipeline,
        &MachineConfig::vault_slice(1),
        &CompileOptions::opt(),
    )
    .unwrap();
    c.bench_function("table1_isa_encode_program", |b| {
        b.iter(|| {
            let mut bytes = 0usize;
            for inst in compiled.program.instructions() {
                bytes += ipim_core::isa::encode(inst).len();
            }
            bytes
        })
    });
}

/// Tables III/IV + thermal: configuration/area/power models.
fn tables_3_4(c: &mut Criterion) {
    c.bench_function("table3_config_validate", |b| {
        b.iter(|| MachineConfig::default().validate().is_ok())
    });
    c.bench_function("table4_area_model", |b| b.iter(area::total_overhead_pct));
    c.bench_function("thermal_peak_power", |b| {
        b.iter(|| power::peak_power_per_cube(&MachineConfig::default(), &EnergyParams::default()))
    });
}

/// Fig. 6/7 measurement kernel: compile+simulate one representative
/// single-stage and one multi-stage benchmark on the slice.
fn fig06_07(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig06_07_speedup_energy");
    g.sample_size(10);
    for name in ["Brighten", "Blur", "BilateralGrid"] {
        let w = workload_by_name(name, bench_scale()).unwrap();
        let session = Session::new(MachineConfig::vault_slice(1));
        g.bench_function(name, |b| {
            b.iter(|| session.run_workload(&w, 2_000_000_000).unwrap().report.cycles)
        });
    }
    g.finish();
}

/// Fig. 8: the PonB comparison kernel (same run under the other placement).
fn fig08(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig08_ponb");
    g.sample_size(10);
    let w = workload_by_name("Brighten", bench_scale()).unwrap();
    for (label, cfg) in [
        ("near_bank", MachineConfig::vault_slice(1)),
        ("base_die", ipim_core::baselines::ponb_config(&MachineConfig::vault_slice(1))),
    ] {
        let session = Session::new(cfg);
        g.bench_function(label, |b| {
            b.iter(|| session.run_workload(&w, 4_000_000_000).unwrap().report.cycles)
        });
    }
    g.finish();
}

/// Fig. 9/11/13 share the suite measurement kernel: one full run with
/// statistics extraction.
fn fig09_11_13(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig09_11_13_stats");
    g.sample_size(10);
    let w = workload_by_name("Interpolate", bench_scale()).unwrap();
    let session = Session::new(MachineConfig::vault_slice(1));
    g.bench_function("interpolate_stats", |b| {
        b.iter(|| {
            let o = session.run_workload(&w, 4_000_000_000).unwrap();
            (
                o.report.energy.pim_die_fraction(),
                o.report.stats.by_category.index_calc,
                o.report.stats.ipc(),
            )
        })
    });
    g.finish();
}

/// Fig. 10: the sensitivity-sweep kernel (one off-nominal configuration).
fn fig10(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_sensitivity");
    g.sample_size(10);
    let w = workload_by_name("Blur", bench_scale()).unwrap();
    for (label, rf) in [("rf16", 16usize), ("rf128", 128)] {
        let session = Session::new(MachineConfig {
            data_rf_entries: rf,
            ..MachineConfig::vault_slice(1)
        });
        g.bench_function(label, |b| {
            b.iter(|| session.run_workload(&w, 4_000_000_000).unwrap().report.cycles)
        });
    }
    g.finish();
}

/// Fig. 12: the five-compiler-configuration kernel on one benchmark.
fn fig12(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_compiler");
    g.sample_size(10);
    let w = workload_by_name("Blur", bench_scale()).unwrap();
    for (label, options) in [
        ("baseline1", CompileOptions::baseline1()),
        ("opt", CompileOptions::opt()),
    ] {
        let session = Session::with_options(MachineConfig::vault_slice(1), options);
        g.bench_function(label, |b| {
            b.iter(|| session.run_workload(&w, 4_000_000_000).unwrap().report.cycles)
        });
    }
    g.finish();
}

/// Compiler-only throughput: how fast the full backend compiles Table II.
fn compiler_throughput(c: &mut Criterion) {
    let cfg = MachineConfig::vault_slice(1);
    let ws = all_workloads(small());
    c.bench_function("compile_all_table2", |b| {
        b.iter(|| {
            ws.iter()
                .map(|w| compile(&w.pipeline, &cfg, &CompileOptions::opt()).unwrap().static_instructions)
                .sum::<usize>()
        })
    });
    let _ = ExperimentConfig::quick();
}

criterion_group!(
    benches,
    fig01,
    table1,
    tables_3_4,
    fig06_07,
    fig08,
    fig09_11_13,
    fig10,
    fig12,
    compiler_throughput
);
criterion_main!(benches);
