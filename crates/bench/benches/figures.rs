//! Micro-benchmarks, one group per reproduced table/figure, on the simkit
//! timer (`cargo bench -p ipim-bench`).
//!
//! These measure the wall-clock cost of regenerating each experiment's
//! underlying measurement at a reduced scale (the figure binaries in
//! `src/bin/` print the paper-shaped numbers themselves). Cycle-accurate
//! simulation is expensive, so the groups use small images and few
//! samples. Results append to `results/figures.jsonl`, one JSON object
//! per benchmark, for later perf PRs to diff against.

use ipim_core::experiments::{fig1, ExperimentConfig};
use ipim_core::{
    all_workloads, area, compile, power, workload_by_name, CompileOptions, EnergyParams, Engine,
    MachineConfig, Session, WorkloadScale,
};
use ipim_simkit::{Bench, BenchConfig};

fn small() -> WorkloadScale {
    WorkloadScale { width: 128, height: 128 }
}

fn bench_scale() -> WorkloadScale {
    // Large enough that every PE runs multiple tile slots.
    WorkloadScale { width: 128, height: 128 }
}

/// Iteration count for full compile+simulate measurements (criterion's
/// old `sample_size(10)`).
fn sim_config() -> BenchConfig {
    BenchConfig { warmup: 1, iters: 10 }
}

/// Fig. 1: the GPU-profile model (pure computation).
fn fig01(b: &mut Bench) {
    b.bench("fig01_gpu_profile", fig1);
}

/// Table I: ISA encode/decode throughput over a full workload program.
fn table1(b: &mut Bench) {
    let w = workload_by_name("Blur", small()).unwrap();
    let compiled =
        compile(&w.pipeline, &MachineConfig::vault_slice(1), &CompileOptions::opt()).unwrap();
    b.bench("table1_isa_encode_program", || {
        let mut bytes = 0usize;
        for inst in compiled.program.instructions() {
            bytes += ipim_core::isa::encode(inst).len();
        }
        bytes
    });
}

/// Tables III/IV + thermal: configuration/area/power models.
fn tables_3_4(b: &mut Bench) {
    b.bench("table3_config_validate", || MachineConfig::default().validate().is_ok());
    b.bench("table4_area_model", area::total_overhead_pct);
    b.bench("thermal_peak_power", || {
        power::peak_power_per_cube(&MachineConfig::default(), &EnergyParams::default())
    });
}

/// Fig. 6/7 measurement kernel: compile+simulate one representative
/// single-stage and one multi-stage benchmark on the slice.
fn fig06_07(b: &mut Bench) {
    for name in ["Brighten", "Blur", "BilateralGrid"] {
        let w = workload_by_name(name, bench_scale()).unwrap();
        let session = Session::new(MachineConfig::vault_slice(1));
        b.bench_with(sim_config(), &format!("fig06_07_speedup_energy/{name}"), || {
            session.run_workload(&w, 2_000_000_000).unwrap().report.cycles
        });
    }
}

/// Fig. 8: the PonB comparison kernel (same run under the other placement).
fn fig08(b: &mut Bench) {
    let w = workload_by_name("Brighten", bench_scale()).unwrap();
    for (label, cfg) in [
        ("near_bank", MachineConfig::vault_slice(1)),
        ("base_die", ipim_core::baselines::ponb_config(&MachineConfig::vault_slice(1))),
    ] {
        let session = Session::new(cfg);
        b.bench_with(sim_config(), &format!("fig08_ponb/{label}"), || {
            session.run_workload(&w, 4_000_000_000).unwrap().report.cycles
        });
    }
}

/// Fig. 9/11/13 share the suite measurement kernel: one full run with
/// statistics extraction.
fn fig09_11_13(b: &mut Bench) {
    let w = workload_by_name("Interpolate", bench_scale()).unwrap();
    let session = Session::new(MachineConfig::vault_slice(1));
    b.bench_with(sim_config(), "fig09_11_13_stats/interpolate_stats", || {
        let o = session.run_workload(&w, 4_000_000_000).unwrap();
        (
            o.report.energy.pim_die_fraction(),
            o.report.stats.by_category.index_calc,
            o.report.stats.ipc(),
        )
    });
}

/// Fig. 10: the sensitivity-sweep kernel (one off-nominal configuration).
fn fig10(b: &mut Bench) {
    let w = workload_by_name("Blur", bench_scale()).unwrap();
    for (label, rf) in [("rf16", 16usize), ("rf128", 128)] {
        let session =
            Session::new(MachineConfig { data_rf_entries: rf, ..MachineConfig::vault_slice(1) });
        b.bench_with(sim_config(), &format!("fig10_sensitivity/{label}"), || {
            session.run_workload(&w, 4_000_000_000).unwrap().report.cycles
        });
    }
}

/// Fig. 12: the five-compiler-configuration kernel on one benchmark.
fn fig12(b: &mut Bench) {
    let w = workload_by_name("Blur", bench_scale()).unwrap();
    for (label, options) in
        [("baseline1", CompileOptions::baseline1()), ("opt", CompileOptions::opt())]
    {
        let session = Session::with_options(MachineConfig::vault_slice(1), options);
        b.bench_with(sim_config(), &format!("fig12_compiler/{label}"), || {
            session.run_workload(&w, 4_000_000_000).unwrap().report.cycles
        });
    }
}

/// The `tests/end_to_end.rs` hot path: compile+simulate+verify of the
/// deepest pipeline under each cycle engine, so perf PRs can diff the
/// skip-ahead engine's wall-clock (and its margin over legacy) run-to-run.
fn end_to_end(b: &mut Bench) {
    let w = workload_by_name("StencilChain", bench_scale()).unwrap();
    for (label, engine) in [("legacy", Engine::Legacy), ("skip_ahead", Engine::SkipAhead)] {
        let session = Session::new(MachineConfig { engine, ..MachineConfig::vault_slice(1) });
        b.bench_with(BenchConfig { warmup: 1, iters: 3 }, &format!("end_to_end/{label}"), || {
            let o = session.run_workload(&w, 4_000_000_000).unwrap();
            ipim_core::experiments::verify_against_reference(&w, &o);
            o.report.cycles
        });
    }
}

/// Compiler-only throughput: how fast the full backend compiles Table II.
fn compiler_throughput(b: &mut Bench) {
    let cfg = MachineConfig::vault_slice(1);
    let ws = all_workloads(small());
    b.bench("compile_all_table2", || {
        ws.iter()
            .map(|w| {
                compile(&w.pipeline, &cfg, &CompileOptions::opt()).unwrap().static_instructions
            })
            .sum::<usize>()
    });
    let _ = ExperimentConfig::quick();
}

fn main() {
    let mut b = Bench::new("figures");
    fig01(&mut b);
    table1(&mut b);
    tables_3_4(&mut b);
    fig06_07(&mut b);
    fig08(&mut b);
    fig09_11_13(&mut b);
    fig10(&mut b);
    fig12(&mut b);
    end_to_end(&mut b);
    compiler_throughput(&mut b);
    b.finish().expect("write results");
}
