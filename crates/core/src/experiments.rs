//! Experiment drivers: one function per table/figure of the paper's
//! evaluation (Sec. VII). Each returns plain data rows that the
//! `ipim-bench` binaries render; EXPERIMENTS.md records paper-vs-measured.
//!
//! iPIM numbers come from cycle-accurate simulation of a machine *slice*
//! (default: one vault, 32 PEs) on a proportional image; full-machine
//! throughput scales by the PE ratio because SIMB execution is
//! lockstep-data-parallel across vaults (DESIGN.md §2). GPU numbers come
//! from the calibrated V100 roofline at DIV8K scale.

use ipim_arch::MachineConfig;
use ipim_baselines::{gpu_profile, ponb_config, run_gpu, GpuModel};
use ipim_compiler::CompileOptions;
use ipim_workloads::{workloads_in_family, Workload, WorkloadFamily, WorkloadScale};

use crate::session::{RunOutcome, Session, SessionError};

/// The paper's Table II benchmarks — the population every figure driver
/// below iterates. The NN and Video families are deliberately excluded
/// here: the figures reproduce the paper's evaluation, whose benchmark
/// set is fixed (the wider suite is covered by `all_workloads` consumers:
/// end_to_end, engine equivalence, analytic divergence, serve/tune).
fn table2(scale: WorkloadScale) -> Vec<Workload> {
    workloads_in_family(WorkloadFamily::Image, scale)
}

/// Shared experiment parameters.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Image scale simulated on the slice.
    pub scale: WorkloadScale,
    /// The simulated machine slice.
    pub slice: MachineConfig,
    /// The full machine being modeled (throughput scale-out target).
    pub full: MachineConfig,
    /// Cycle budget per run.
    pub max_cycles: u64,
    /// Cross-check every output against the reference interpreter.
    pub verify: bool,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            scale: WorkloadScale::default(),
            slice: MachineConfig::vault_slice(1),
            full: MachineConfig::default(),
            max_cycles: 4_000_000_000,
            verify: false,
        }
    }
}

impl ExperimentConfig {
    /// A fast configuration for tests (small images, verification on).
    pub fn quick() -> Self {
        Self {
            scale: WorkloadScale { width: 128, height: 128 },
            slice: MachineConfig::vault_slice(1),
            full: MachineConfig::default(),
            max_cycles: 1_000_000_000,
            verify: true,
        }
    }

    /// Throughput multiplier from the slice to the full machine.
    pub fn scale_out_factor(&self) -> f64 {
        self.full.total_pes() as f64 / self.slice.total_pes() as f64
    }
}

/// One benchmark's simulated + modeled results.
#[derive(Debug, Clone)]
pub struct SuiteRun {
    /// The workload (pipeline + inputs + metadata).
    pub workload: Workload,
    /// Cycle-accurate iPIM outcome on the slice.
    pub outcome: RunOutcome,
}

/// Runs all ten Table II benchmarks on the iPIM slice with the optimized
/// compiler.
///
/// # Errors
///
/// Returns the first compile/simulation error (or a verification mismatch
/// wrapped as a panic in `verify` mode — tests treat that as failure).
pub fn run_suite(cfg: &ExperimentConfig) -> Result<Vec<SuiteRun>, SessionError> {
    let session = Session::new(cfg.slice.clone());
    let mut out = Vec::new();
    for w in table2(cfg.scale) {
        let outcome = session.run_workload(&w, cfg.max_cycles)?;
        if cfg.verify {
            verify_against_reference(&w, &outcome);
        }
        out.push(SuiteRun { workload: w, outcome });
    }
    Ok(out)
}

/// Panics if the simulated output diverges from the reference interpreter
/// beyond the boundary band (see DESIGN.md on boundary semantics).
pub fn verify_against_reference(w: &Workload, outcome: &RunOutcome) {
    verify_output_against_reference(w, &outcome.output);
}

/// [`verify_against_reference`] for a bare output image — lets callers that
/// only hold a serving-layer response (which carries the output pixels but
/// not the full `RunOutcome`) check it against the reference interpreter.
pub fn verify_output_against_reference(w: &Workload, output: &ipim_frontend::Image) {
    let diff = output_divergence(w, output);
    assert!(
        diff <= REFERENCE_TOLERANCE,
        "{}: simulated output diverges from reference by {diff}",
        w.name
    );
}

/// The banded-comparison tolerance [`verify_output_against_reference`]
/// enforces.
pub const REFERENCE_TOLERANCE: f32 = 2e-3;

/// Maximum absolute difference between `output` and the reference
/// interpreter inside the boundary-inset band — the raw figure behind
/// [`verify_output_against_reference`], for callers (e.g. the autotuner)
/// that want a verdict rather than a panic.
pub fn output_divergence(w: &Workload, output: &ipim_frontend::Image) -> f32 {
    let images: Vec<_> = w.inputs.iter().map(|(_, img)| img.clone()).collect();
    let expected = ipim_frontend::interpret(&w.pipeline, &images)
        .unwrap_or_else(|e| panic!("{}: reference failed: {e}", w.name));
    let inset = (w.stages as u32 + 2).min(expected.width() / 4).min(expected.height() / 4);
    let mut diff = 0.0f32;
    for y in inset..expected.height() - inset {
        for x in inset..expected.width() - inset {
            diff = diff.max((expected.get(x, y) - output.get(x, y)).abs());
        }
    }
    diff
}

// --------------------------------------------------------------------
// Fig. 1: GPU profiling.
// --------------------------------------------------------------------

/// One bar group of Fig. 1.
#[derive(Debug, Clone)]
pub struct Fig1Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Achieved DRAM bandwidth in GB/s.
    pub dram_bw_gbs: f64,
    /// DRAM utilization (0–1).
    pub dram_util: f64,
    /// ALU utilization (0–1).
    pub alu_util: f64,
    /// Index-calculation share of ALU work (0–1).
    pub index_fraction: f64,
}

/// Regenerates Fig. 1 from the calibrated GPU model at DIV8K scale.
pub fn fig1() -> Vec<Fig1Row> {
    let model = GpuModel::default();
    table2(WorkloadScale::tiny())
        .into_iter()
        .map(|w| {
            let p = gpu_profile(w.name);
            Fig1Row {
                name: w.name,
                dram_bw_gbs: model.peak_bw * p.dram_util / 1e9,
                dram_util: p.dram_util,
                alu_util: p.alu_util,
                index_fraction: p.index_fraction,
            }
        })
        .collect()
}

// --------------------------------------------------------------------
// Fig. 6 / Fig. 7: speedup and energy vs GPU.
// --------------------------------------------------------------------

/// One bar of Fig. 6 (throughput/speedup) and Fig. 7 (energy).
#[derive(Debug, Clone)]
pub struct GpuComparisonRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Full-machine iPIM throughput in Gpixel/s.
    pub ipim_gpix_s: f64,
    /// GPU throughput in Gpixel/s.
    pub gpu_gpix_s: f64,
    /// iPIM speedup over the GPU.
    pub speedup: f64,
    /// iPIM energy per output pixel (nJ).
    pub ipim_nj_per_pixel: f64,
    /// GPU energy per output pixel (nJ).
    pub gpu_nj_per_pixel: f64,
    /// Energy saving fraction (0–1).
    pub energy_saving: f64,
}

/// Computes the Fig. 6 / Fig. 7 comparison from a completed suite.
pub fn gpu_comparison(cfg: &ExperimentConfig, suite: &[SuiteRun]) -> Vec<GpuComparisonRow> {
    let model = GpuModel::default();
    let factor = cfg.scale_out_factor();
    suite
        .iter()
        .map(|run| {
            // GPU modeled at DIV8K, iPIM measured on the slice and scaled
            // out; both expressed per output pixel so scales cancel.
            let gpu = run_gpu(&model, &workload_at_div8k(&run.workload));
            // Throughput in *processed output pixels* (for the histogram
            // reduction that is the input pixel count, as in the paper).
            let pixels = run.workload.output_pixels as f64;
            let ipim_pps = pixels / run.outcome.report.seconds() * factor;
            let ipim_nj = run.outcome.report.energy.total_pj() / pixels / 1000.0;
            let gpu_nj = gpu.energy_j / workload_at_div8k(&run.workload).output_pixels as f64 * 1e9;
            GpuComparisonRow {
                name: run.workload.name,
                ipim_gpix_s: ipim_pps / 1e9,
                gpu_gpix_s: gpu.pixels_per_second / 1e9,
                speedup: ipim_pps / gpu.pixels_per_second,
                ipim_nj_per_pixel: ipim_nj,
                gpu_nj_per_pixel: gpu_nj,
                energy_saving: 1.0 - (ipim_nj / gpu_nj).min(1.0),
            }
        })
        .collect()
}

fn workload_at_div8k(w: &Workload) -> Workload {
    // Only the metadata matters for the GPU model; rebuild at DIV8K scale
    // without regenerating images (pixel counts drive the roofline).
    let mut big = w.clone();
    let s = WorkloadScale::div8k();
    let ratio = s.pixels() as f64 / w.scale.pixels() as f64;
    big.output_pixels = (w.output_pixels as f64 * ratio) as u64;
    big.scale = s;
    big
}

/// Geometric mean of an iterator of positive values.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

// --------------------------------------------------------------------
// Fig. 8: near-bank vs process-on-base-die.
// --------------------------------------------------------------------

/// One bar pair of Fig. 8.
#[derive(Debug, Clone)]
pub struct PonbRow {
    /// Benchmark name.
    pub name: &'static str,
    /// iPIM speedup over PonB.
    pub speedup: f64,
    /// Energy saving over PonB (0–1).
    pub energy_saving: f64,
}

/// Simulates every workload under both placements.
///
/// # Errors
///
/// Propagates compile/simulation errors.
pub fn fig8(cfg: &ExperimentConfig) -> Result<Vec<PonbRow>, SessionError> {
    let near = Session::new(cfg.slice.clone());
    let ponb = Session::new(ponb_config(&cfg.slice));
    let mut out = Vec::new();
    for w in table2(cfg.scale) {
        let a = near.run_workload(&w, cfg.max_cycles)?;
        let b = ponb.run_workload(&w, cfg.max_cycles)?;
        out.push(PonbRow {
            name: w.name,
            speedup: b.report.cycles as f64 / a.report.cycles as f64,
            energy_saving: 1.0 - (a.report.energy.total_pj() / b.report.energy.total_pj()).min(1.0),
        });
    }
    Ok(out)
}

// --------------------------------------------------------------------
// Fig. 9: energy breakdown.
// --------------------------------------------------------------------

/// One stacked bar of Fig. 9 (fractions sum to 1).
#[derive(Debug, Clone)]
pub struct EnergyBreakdownRow {
    /// Benchmark name.
    pub name: &'static str,
    /// DRAM share.
    pub dram: f64,
    /// SIMD unit share.
    pub simd: f64,
    /// Integer ALU share.
    pub int_alu: f64,
    /// AddrRF share.
    pub addr_rf: f64,
    /// DataRF share.
    pub data_rf: f64,
    /// PGSM share.
    pub pgsm: f64,
    /// Everything else (VSM, TSV, NoC, SERDES, control core).
    pub others: f64,
    /// Fraction of energy spent on the PIM dies.
    pub pim_die_fraction: f64,
}

/// Computes Fig. 9 from a completed suite.
pub fn fig9(suite: &[SuiteRun]) -> Vec<EnergyBreakdownRow> {
    suite
        .iter()
        .map(|run| {
            let e = &run.outcome.report.energy;
            let total = e.total_pj();
            EnergyBreakdownRow {
                name: run.workload.name,
                dram: e.dram.total_pj() / total,
                simd: e.simd_pj / total,
                int_alu: e.int_alu_pj / total,
                addr_rf: e.addr_rf_pj / total,
                data_rf: e.data_rf_pj / total,
                pgsm: e.pgsm_pj / total,
                others: (e.pe_bus_pj + e.others_pj()) / total,
                pim_die_fraction: e.pim_die_fraction(),
            }
        })
        .collect()
}

// --------------------------------------------------------------------
// Fig. 10: sensitivity to RF entries and PGSM size.
// --------------------------------------------------------------------

/// One sweep point of Fig. 10: normalized mean execution time.
#[derive(Debug, Clone)]
pub struct SensitivityPoint {
    /// The swept parameter's value.
    pub value: u32,
    /// Mean execution time normalized to the largest configuration.
    pub normalized_time: f64,
}

/// Fig. 10(a): sweeps the DataRF size.
///
/// # Errors
///
/// Propagates compile/simulation errors.
pub fn fig10_rf(
    cfg: &ExperimentConfig,
    sizes: &[usize],
) -> Result<Vec<SensitivityPoint>, SessionError> {
    sweep(cfg, sizes, |slice, v| MachineConfig { data_rf_entries: v, ..slice.clone() })
}

/// Fig. 10(b): sweeps the PGSM size.
///
/// # Errors
///
/// Propagates compile/simulation errors.
pub fn fig10_pgsm(
    cfg: &ExperimentConfig,
    sizes: &[usize],
) -> Result<Vec<SensitivityPoint>, SessionError> {
    sweep(cfg, sizes, |slice, v| MachineConfig { pgsm_bytes: v as u32, ..slice.clone() })
}

fn sweep(
    cfg: &ExperimentConfig,
    sizes: &[usize],
    patch: impl Fn(&MachineConfig, usize) -> MachineConfig,
) -> Result<Vec<SensitivityPoint>, SessionError> {
    // Representative subset: one elementwise/stencil, one gather-heavy,
    // one deep chain — exercising both the register-pressure and
    // scratchpad-capacity effects. A workload that cannot compile at some
    // swept size (e.g. the stencil chain's accumulated halos cannot stage
    // through a 2 KiB PGSM at all) is dropped from the sweep so every
    // point averages the same set.
    let names = ["Blur", "BilateralGrid", "StencilChain"];
    let workloads: Vec<_> =
        table2(cfg.scale).into_iter().filter(|w| names.contains(&w.name)).collect();
    // cycles[w][i] for workload w at size index i; None = did not compile.
    let mut cycles: Vec<Vec<Option<f64>>> = vec![Vec::new(); workloads.len()];
    for &size in sizes {
        let session = Session::new(patch(&cfg.slice, size));
        for (wi, w) in workloads.iter().enumerate() {
            match session.run_workload(w, cfg.max_cycles) {
                Ok(outcome) => cycles[wi].push(Some(outcome.report.cycles as f64)),
                Err(SessionError::Compile(_)) => cycles[wi].push(None),
                Err(e) => return Err(e),
            }
        }
    }
    let usable: Vec<usize> =
        (0..workloads.len()).filter(|&wi| cycles[wi].iter().all(Option::is_some)).collect();
    assert!(!usable.is_empty(), "no workload compiles across the whole sweep");
    // Per-workload normalization to its own fastest point, then averaged.
    let mut rows = Vec::new();
    for (i, &size) in sizes.iter().enumerate() {
        let mut mean = 0.0;
        for &wi in &usable {
            let series: Vec<f64> = cycles[wi].iter().map(|c| c.expect("usable")).collect();
            let best = series.iter().copied().fold(f64::INFINITY, f64::min);
            mean += series[i] / best;
        }
        rows.push(SensitivityPoint {
            value: size as u32,
            normalized_time: mean / usable.len() as f64,
        });
    }
    Ok(rows)
}

// --------------------------------------------------------------------
// Fig. 11: instruction breakdown.
// --------------------------------------------------------------------

/// One stacked bar of Fig. 11 (dynamic instruction shares).
#[derive(Debug, Clone)]
pub struct InstBreakdownRow {
    /// Benchmark name.
    pub name: &'static str,
    /// `comp` share.
    pub computation: f64,
    /// Index-calculation share.
    pub index_calc: f64,
    /// Intra-vault data-movement share.
    pub intra_vault: f64,
    /// Inter-vault (`req`) share.
    pub inter_vault: f64,
    /// Control-flow share.
    pub control_flow: f64,
    /// Synchronization share.
    pub synchronization: f64,
}

/// Computes Fig. 11 from a completed suite.
pub fn fig11(suite: &[SuiteRun]) -> Vec<InstBreakdownRow> {
    suite
        .iter()
        .map(|run| {
            let c = &run.outcome.report.stats.by_category;
            InstBreakdownRow {
                name: run.workload.name,
                computation: c.fraction(c.computation),
                index_calc: c.fraction(c.index_calc),
                intra_vault: c.fraction(c.intra_vault),
                inter_vault: c.fraction(c.inter_vault),
                control_flow: c.fraction(c.control_flow),
                synchronization: c.fraction(c.synchronization),
            }
        })
        .collect()
}

// --------------------------------------------------------------------
// Fig. 12: compiler-optimization effectiveness.
// --------------------------------------------------------------------

/// One benchmark's five compiler configurations (cycles normalized as
/// speedup over `baseline1`).
#[derive(Debug, Clone)]
pub struct CompilerRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Speedup of the optimized configuration over baseline1.
    pub opt: f64,
    /// Speedup of baseline2 (min regalloc) over baseline1.
    pub baseline2: f64,
    /// Speedup of baseline3 (no reordering) over baseline1.
    pub baseline3: f64,
    /// Speedup of baseline4 (no memory order) over baseline1.
    pub baseline4: f64,
}

/// Runs the Fig. 12 comparison.
///
/// # Errors
///
/// Propagates compile/simulation errors.
pub fn fig12(cfg: &ExperimentConfig) -> Result<Vec<CompilerRow>, SessionError> {
    let configs = [
        CompileOptions::baseline1(),
        CompileOptions::opt(),
        CompileOptions::baseline2(),
        CompileOptions::baseline3(),
        CompileOptions::baseline4(),
    ];
    let mut rows = Vec::new();
    for w in table2(cfg.scale) {
        let mut cycles = Vec::new();
        for options in configs {
            let session = Session::with_options(cfg.slice.clone(), options);
            cycles.push(session.run_workload(&w, cfg.max_cycles)?.report.cycles as f64);
        }
        rows.push(CompilerRow {
            name: w.name,
            opt: cycles[0] / cycles[1],
            baseline2: cycles[0] / cycles[2],
            baseline3: cycles[0] / cycles[3],
            baseline4: cycles[0] / cycles[4],
        });
    }
    Ok(rows)
}

// --------------------------------------------------------------------
// Fig. 13: IPC and utilization.
// --------------------------------------------------------------------

/// One bar group of Fig. 13.
#[derive(Debug, Clone)]
pub struct IpcRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Control-core instructions per cycle.
    pub ipc: f64,
    /// SIMD-unit utilization (0–1).
    pub simd_util: f64,
    /// Integer-ALU (AddrRF) utilization (0–1).
    pub int_alu_util: f64,
    /// Bank/memory-path utilization (0–1).
    pub mem_util: f64,
}

/// Computes Fig. 13 from a completed suite.
pub fn fig13(cfg: &ExperimentConfig, suite: &[SuiteRun]) -> Vec<IpcRow> {
    let pes = cfg.slice.total_pes();
    suite
        .iter()
        .map(|run| {
            let s = &run.outcome.report.stats;
            IpcRow {
                name: run.workload.name,
                ipc: s.ipc(),
                simd_util: s.utilization(s.simd_busy, pes),
                int_alu_util: s.utilization(s.int_alu_busy, pes),
                mem_util: s.utilization(s.mem_busy, pes),
            }
        })
        .collect()
}
