//! # iPIM — programmable in-memory image processing accelerator
//!
//! A from-scratch Rust reproduction of *iPIM: Programmable In-Memory Image
//! Processing Accelerator Using Near-Bank Architecture* (ISCA 2020): the
//! SIMB ISA, the decoupled control-execution near-bank microarchitecture
//! (cycle-accurate), the Halide-style compilation flow with the paper's
//! `ipim_tile`/`load_pgsm` schedules and backend optimizations, the
//! Table II workload suite, and the GPU / process-on-base-die baselines.
//!
//! This crate is the public facade: it re-exports the subsystem crates and
//! provides the [`Session`] compile-and-run API plus the [`experiments`]
//! drivers that regenerate every table and figure of the paper's
//! evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use ipim_core::{Session, MachineConfig};
//! use ipim_core::frontend::{PipelineBuilder, Image, x, y};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Algorithm: a 3-tap blur. Schedule: tile 8×8 across the PE hierarchy,
//! // stage tiles in the process-group scratchpad, vectorize by 4.
//! let mut p = PipelineBuilder::new();
//! let input = p.input("in", 64, 64);
//! let blur = p.func("blur", 64, 64);
//! p.define(
//!     blur,
//!     (input.at(x() - 1, y()) + input.at(x(), y()) + input.at(x() + 1, y())) / 3.0,
//! );
//! p.schedule(blur).compute_root().ipim_tile(8, 8).load_pgsm().vectorize(4);
//! let pipeline = p.build(blur)?;
//!
//! // Compile and run on a cycle-accurate one-vault slice.
//! let session = Session::new(MachineConfig::vault_slice(1));
//! let outcome = session.run_pipeline(
//!     &pipeline,
//!     &[(input.id(), Image::gradient(64, 64))],
//!     50_000_000,
//! )?;
//! println!(
//!     "{} cycles, IPC {:.2}, {:.1} pJ/pixel",
//!     outcome.report.cycles,
//!     outcome.report.stats.ipc(),
//!     outcome.energy_pj_per_pixel(),
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
mod progcache;
mod session;

pub use progcache::{program_key, CompiledProgram, ProgramCache};
pub use session::{RunOutcome, Session, SessionError};

pub use ipim_arch::{
    analytic, area, power, EnergyBook, EnergyParams, Engine, ExecutionReport, Fidelity, Machine,
    MachineConfig, Placement, TraceConfig,
};
pub use ipim_compiler::{
    compile, host, CompileOptions, CompiledPipeline, MemoryMap, RegAllocPolicy,
};
pub use ipim_workloads::{
    all_workloads, workload_by_name, workloads_in_family, ComputeRootPolicy, ScheduleOverride,
    Workload, WorkloadFamily, WorkloadScale,
};

/// Re-export of the Halide-style frontend.
pub mod frontend {
    pub use ipim_frontend::*;
}

/// Re-export of the SIMB ISA.
pub mod isa {
    pub use ipim_isa::*;
}

/// Re-export of the baseline models.
pub mod baselines {
    pub use ipim_baselines::*;
}

/// Re-export of the DRAM bank model.
pub mod dram {
    pub use ipim_dram::*;
}

/// Re-export of the interconnect model.
pub mod noc {
    pub use ipim_noc::*;
}

/// Re-export of the observability subsystem (event tracing, metrics,
/// Chrome-trace export).
pub mod trace {
    pub use ipim_trace::*;
}
