//! The high-level compile-and-run API.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

use ipim_arch::{analytic, Engine, ExecutionReport, Fidelity, Machine, MachineConfig, SimTimeout};
use ipim_compiler::{compile, host, CompileError, CompileOptions, CompiledPipeline};
use ipim_frontend::{Image, Pipeline, SourceId};
use ipim_trace::{MetricsRegistry, SamplingSink, TraceCapture};
use ipim_workloads::Workload;

use crate::progcache::{CompiledProgram, ProgramCache};

// The serving layer moves run results between worker threads; everything a
// run produces must therefore be plain data. The machine itself is
// intentionally `!Send` (its tracer shares an `Rc<RefCell<..>>` sink), so
// these assertions are the compile-time proof that nothing thread-bound
// leaks into the outputs.
const fn assert_send<T: Send>() {}
const _: () = {
    assert_send::<RunOutcome>();
    assert_send::<TraceCapture>();
    assert_send::<ExecutionReport>();
    assert_send::<SessionError>();
};

/// Error produced by a session run.
#[derive(Debug)]
pub enum SessionError {
    /// Compilation failed.
    Compile(CompileError),
    /// The simulation did not quiesce within the cycle budget.
    Timeout(SimTimeout),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Compile(e) => write!(f, "compile: {e}"),
            SessionError::Timeout(e) => write!(f, "simulation: {e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<CompileError> for SessionError {
    fn from(e: CompileError) -> Self {
        SessionError::Compile(e)
    }
}

impl From<SimTimeout> for SessionError {
    fn from(e: SimTimeout) -> Self {
        SessionError::Timeout(e)
    }
}

/// Everything a run produces: the output image, the compiled program, and
/// the cycle-accurate execution report.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The output buffer read back from the banks.
    pub output: Image,
    /// Cycle-accurate performance/energy report.
    pub report: ExecutionReport,
    /// The compiled program and memory map — shared with (and usually
    /// served from) the process-wide [`ProgramCache`]; dereferences to the
    /// underlying [`CompiledPipeline`].
    pub compiled: Arc<CompiledProgram>,
    /// Hierarchical counter/gauge/histogram snapshot of the finished run.
    pub metrics: MetricsRegistry,
    /// Captured trace events, when `MachineConfig::trace.enabled` was set.
    pub trace: Option<TraceCapture>,
    /// How much this outcome can be trusted: [`Fidelity::BitExact`] for
    /// the cycle engines, [`Fidelity::Approximate`] for the analytic
    /// tier (whose `output` is a zero image at the correct extent and
    /// whose report carries a measured error envelope).
    pub fidelity: Fidelity,
}

impl RunOutcome {
    /// Output pixels per second at the simulated machine's 1 GHz clock.
    pub fn pixels_per_second(&self) -> f64 {
        let pixels = self.output.pixels() as f64;
        pixels / self.report.seconds()
    }

    /// Energy per output pixel in picojoules.
    pub fn energy_pj_per_pixel(&self) -> f64 {
        self.report.energy.total_pj() / self.output.pixels() as f64
    }
}

/// A compile-and-run session against one machine configuration.
///
/// # Example
///
/// ```
/// use ipim_core::{Session, MachineConfig, CompileOptions};
/// use ipim_core::frontend::{PipelineBuilder, Image, x, y};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut p = PipelineBuilder::new();
/// let input = p.input("in", 64, 64);
/// let out = p.func("out", 64, 64);
/// p.define(out, input.at(x(), y()) * 2.0);
/// p.schedule(out).compute_root().ipim_tile(8, 8);
/// let pipeline = p.build(out)?;
///
/// let session = Session::new(MachineConfig::vault_slice(1));
/// let outcome = session.run_pipeline(
///     &pipeline,
///     &[(input.id(), Image::gradient(64, 64))],
///     10_000_000,
/// )?;
/// assert_eq!(outcome.output.width(), 64);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Session {
    config: MachineConfig,
    options: CompileOptions,
}

impl Session {
    /// Creates a session with the fully optimized compiler.
    pub fn new(config: MachineConfig) -> Self {
        Self { config, options: CompileOptions::opt() }
    }

    /// Creates a session with explicit compiler options (the Fig. 12
    /// baselines).
    pub fn with_options(config: MachineConfig, options: CompileOptions) -> Self {
        Self { config, options }
    }

    /// Cheap per-worker constructor for the serving layer: a session is
    /// just the configuration pair, so a pool worker can build one per job
    /// from borrowed specs without threading machines (which are `!Send`)
    /// across the pool.
    pub fn for_worker(config: &MachineConfig, options: &CompileOptions) -> Self {
        Self { config: config.clone(), options: *options }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// The compiler options.
    pub fn options(&self) -> &CompileOptions {
        &self.options
    }

    /// Compiles a pipeline without running it, bypassing the program
    /// cache (a guaranteed-fresh lowering; [`Session::compile`] is the
    /// cached path everything else should prefer).
    ///
    /// # Errors
    ///
    /// Returns the compiler's error on unsupported pipelines.
    pub fn compile_only(&self, pipeline: &Pipeline) -> Result<CompiledPipeline, SessionError> {
        Ok(compile(pipeline, &self.config, &self.options)?)
    }

    /// Compiles `pipeline` into a shareable [`CompiledProgram`] through
    /// the process-wide [`ProgramCache`]: the first compile of a given
    /// (pipeline content × machine shape × options) key lowers the
    /// pipeline, every later one returns the cached artifact. Compilation
    /// is deterministic, so the cached program is bit-identical to a
    /// fresh compile.
    ///
    /// # Errors
    ///
    /// Returns the compiler's error on unsupported pipelines.
    pub fn compile(&self, pipeline: &Pipeline) -> Result<Arc<CompiledProgram>, SessionError> {
        Ok(ProgramCache::global().compile_pipeline(pipeline, &self.config, &self.options)?)
    }

    /// Uploads `inputs`, runs `program` to quiescence and reads the output
    /// back — the simulate half of [`run_pipeline`](Self::run_pipeline),
    /// needing no access to the frontend pipeline at all.
    ///
    /// # Errors
    ///
    /// Returns [`SessionError::Timeout`] when the simulation does not
    /// quiesce within `max_cycles`.
    pub fn simulate(
        &self,
        program: &Arc<CompiledProgram>,
        inputs: &[(SourceId, Image)],
        max_cycles: u64,
    ) -> Result<RunOutcome, SessionError> {
        if self.config.engine == Engine::Analytic {
            return self.predict(program, max_cycles);
        }
        let compiled = program.compiled();
        let mut machine = Machine::new(self.config.clone());
        // When tracing is on, wire a shared ring through every component
        // (behind a 1-in-N sampler when `sample_every` asks for one);
        // otherwise every tracer stays detached (one-branch emit path).
        let capture = if self.config.trace.enabled {
            let t = &self.config.trace;
            let sink = Rc::new(RefCell::new(SamplingSink::new(
                t.ring_capacity,
                t.sample_every,
                t.sample_seed,
            )));
            let components = machine.attach_trace(sink.clone());
            Some((sink, components))
        } else {
            None
        };
        for (src, img) in inputs {
            host::upload(&mut machine, &compiled.map, *src, img);
        }
        machine.load_program_all(&compiled.program);
        let report = machine.run(max_cycles)?;
        let output = host::read_back(&machine, &compiled.map, program.output_source());
        let metrics = machine.metrics();
        let trace = capture.map(|(sink, components)| {
            let mut sampler = sink.borrow_mut();
            let (sampled_out, total) = (sampler.sampled_out(), sampler.total());
            let ring = sampler.ring_mut();
            TraceCapture {
                records: ring.drain(),
                components,
                dropped: ring.dropped(),
                sampled_out,
                total,
            }
        });
        Ok(RunOutcome {
            output,
            report,
            compiled: program.clone(),
            metrics,
            trace,
            fidelity: self.config.engine.fidelity(),
        })
    }

    /// The [`Engine::Analytic`] path of [`simulate`](Self::simulate):
    /// predicts the run from the compiled SIMB stream alone (see
    /// `ipim_arch::analytic`), never building a machine or touching
    /// banks. The outcome is marked [`Fidelity::Approximate`]; its
    /// `output` is a zero image at the extent `read_back` would produce,
    /// and `metrics` carries the predicted counters under the same
    /// `machine/total` + `dram/*` paths the simulating engines export.
    fn predict(
        &self,
        program: &Arc<CompiledProgram>,
        max_cycles: u64,
    ) -> Result<RunOutcome, SessionError> {
        let compiled = program.compiled();
        let report = analytic::predict(&compiled.program, &self.config, max_cycles)
            .map_err(SessionError::Timeout)?;
        let (w, h) = host::output_extent(&compiled.map, program.output_source());
        let mut metrics = MetricsRegistry::default();
        metrics.counter_add("machine/cycles", report.cycles);
        report.stats.record_into(&mut metrics, "machine/total");
        metrics.counter_add("dram/acts", report.bank_stats.acts);
        metrics.counter_add("dram/pres", report.bank_stats.pres);
        metrics.counter_add("dram/reads", report.bank_stats.reads);
        metrics.counter_add("dram/writes", report.bank_stats.writes);
        metrics.counter_add("dram/refs", report.bank_stats.refs);
        metrics.counter_add("dram/row_hits", report.locality.row_hits);
        metrics.counter_add("dram/row_misses", report.locality.row_misses);
        metrics.counter_add("dram/row_conflicts", report.locality.row_conflicts);
        metrics.counter_add("analytic/predictions", 1);
        Ok(RunOutcome {
            output: Image::new(w, h),
            report,
            compiled: program.clone(),
            metrics,
            trace: None,
            fidelity: Fidelity::Approximate,
        })
    }

    /// Compiles `pipeline` (through the program cache), uploads `inputs`,
    /// runs to quiescence and reads the output back — the two-phase
    /// [`compile`](Self::compile) + [`simulate`](Self::simulate) flow as
    /// one call.
    ///
    /// # Errors
    ///
    /// Returns [`SessionError`] on compile failure or simulation timeout.
    pub fn run_pipeline(
        &self,
        pipeline: &Pipeline,
        inputs: &[(SourceId, Image)],
        max_cycles: u64,
    ) -> Result<RunOutcome, SessionError> {
        let program = self.compile(pipeline)?;
        self.simulate(&program, inputs, max_cycles)
    }

    /// Runs a Table II workload.
    ///
    /// # Errors
    ///
    /// Returns [`SessionError`] on compile failure or simulation timeout.
    pub fn run_workload(&self, w: &Workload, max_cycles: u64) -> Result<RunOutcome, SessionError> {
        self.run_pipeline(&w.pipeline, &w.inputs, max_cycles)
    }
}
