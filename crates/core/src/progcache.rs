//! Compiled programs as first-class, content-addressed artifacts.
//!
//! A [`CompiledProgram`] is a lowered SIMB program plus its memory map,
//! tagged with the FNV-1a fingerprint of a canonical key over everything
//! that determines it: the pipeline's full content
//! ([`Pipeline::content_summary`]), the compile-relevant machine shape,
//! and the backend [`CompileOptions`]. Simulation-only knobs — the cycle
//! engine, the cycle budget, tracing — are deliberately *not* part of the
//! key, so one compiled program serves every engine and budget, exactly
//! mirroring how the serve `ResultCache` key excludes the deadline.
//!
//! [`ProgramCache`] memoizes compilation behind that key: a thread-safe
//! bounded LRU whose hit/miss/eviction counters export under
//! `serve/progcache/...`. Compilation is deterministic, so a cache hit is
//! bit-identical to the compile it replaces and memoization is
//! semantically invisible; what it buys is the wall-clock — serve workers,
//! tuner search waves and CI measurements compile each distinct
//! (workload × schedule × machine) key exactly once per process.
//!
//! The process-wide instance ([`ProgramCache::global`]) sizes itself from
//! `IPIM_PROGCACHE_CAPACITY` (default 256 programs; `0` disables caching —
//! useful for A/B-measuring the cache itself).

use std::collections::HashMap;
use std::ops::Deref;
use std::sync::{Arc, Mutex, OnceLock};

use ipim_arch::MachineConfig;
use ipim_compiler::{compile, fnv1a, CompileError, CompileOptions, CompiledPipeline};
use ipim_frontend::{Pipeline, SourceId};
use ipim_trace::MetricsRegistry;

/// A lowered pipeline as a shareable, content-addressed artifact.
///
/// Dereferences to the underlying [`CompiledPipeline`], so existing code
/// reading `program`, `map`, `spill_slots` or `static_instructions` keeps
/// working unchanged.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    key: u64,
    canonical_key: String,
    output_source: SourceId,
    inner: CompiledPipeline,
}

// Programs cross the serve pool's thread boundary inside `RunOutcome` and
// live in the shared cache; they must be plain data.
const fn assert_send_sync<T: Send + Sync>() {}
const _: () = assert_send_sync::<CompiledProgram>();

impl Deref for CompiledProgram {
    type Target = CompiledPipeline;

    fn deref(&self) -> &CompiledPipeline {
        &self.inner
    }
}

impl CompiledProgram {
    /// The 64-bit content fingerprint (FNV-1a of
    /// [`canonical_key`](Self::canonical_key)).
    pub fn key(&self) -> u64 {
        self.key
    }

    /// The canonical key string the fingerprint hashes.
    pub fn canonical_key(&self) -> &str {
        &self.canonical_key
    }

    /// The pipeline's output source — what
    /// [`Session::simulate`](crate::Session::simulate) reads back, kept
    /// here so simulation needs no access to the original pipeline.
    pub fn output_source(&self) -> SourceId {
        self.output_source
    }

    /// The compiled artifact itself.
    pub fn compiled(&self) -> &CompiledPipeline {
        &self.inner
    }
}

/// Canonical program-cache key: every compile-determining input in one
/// stable string. Two pipelines/machines/options with equal keys compile
/// to bit-identical programs.
pub fn program_key(
    pipeline: &Pipeline,
    config: &MachineConfig,
    options: &CompileOptions,
) -> String {
    format!(
        "pipeline={};machine={};options=reg_alloc={:?},reorder={},memory_order={}",
        pipeline.content_summary(),
        machine_compile_summary(config),
        options.reg_alloc,
        options.reorder,
        options.memory_order,
    )
}

/// The compile-relevant slice of a machine configuration: exactly the
/// fields [`ipim_compiler::compile`] reads. The cycle engine, timing,
/// scheduling policies and tracing shape *simulation*, never the program,
/// so they are excluded — one compiled program serves them all.
fn machine_compile_summary(config: &MachineConfig) -> String {
    format!(
        "pes={};pes_per_vault={};pes_per_pg={};vaults_per_cube={};vaults={};\
         data_rf={};addr_rf={};pgsm_bytes={};bank_bytes={}",
        config.total_pes(),
        config.pes_per_vault(),
        config.pes_per_pg,
        config.vaults_per_cube,
        config.total_vaults(),
        config.data_rf_entries,
        config.addr_rf_entries,
        config.pgsm_bytes,
        config.bank.bank_bytes,
    )
}

struct Entry {
    program: Arc<CompiledProgram>,
    touched: u64,
}

struct Inner {
    tick: u64,
    entries: HashMap<u64, Entry>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// A thread-safe LRU cache of compiled programs with observable counters.
pub struct ProgramCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl ProgramCache {
    /// Creates a cache holding at most `capacity` programs. A capacity of
    /// 0 disables caching (every compile is fresh, counted as a miss).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            inner: Mutex::new(Inner {
                tick: 0,
                entries: HashMap::new(),
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
        }
    }

    /// The process-wide cache every [`Session`](crate::Session) compiles
    /// through. Capacity comes from `IPIM_PROGCACHE_CAPACITY` (default
    /// 256; `0` disables caching process-wide).
    pub fn global() -> &'static ProgramCache {
        static GLOBAL: OnceLock<ProgramCache> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let capacity = std::env::var("IPIM_PROGCACHE_CAPACITY")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(256);
            ProgramCache::new(capacity)
        })
    }

    /// Compiles `pipeline` for `config`/`options` through the cache: a hit
    /// returns the shared program without re-lowering anything, a miss
    /// compiles (outside the lock) and stores the result. Compile errors
    /// are never cached.
    ///
    /// # Errors
    ///
    /// Returns the compiler's error on unsupported pipelines.
    pub fn compile_pipeline(
        &self,
        pipeline: &Pipeline,
        config: &MachineConfig,
        options: &CompileOptions,
    ) -> Result<Arc<CompiledProgram>, CompileError> {
        let canonical_key = program_key(pipeline, config, options);
        let key = fnv1a(canonical_key.as_bytes());
        if let Some(hit) = self.lookup(key) {
            return Ok(hit);
        }
        let inner = compile(pipeline, config, options)?;
        let program = Arc::new(CompiledProgram {
            key,
            canonical_key,
            output_source: pipeline.output().source,
            inner,
        });
        self.insert(key, program.clone());
        Ok(program)
    }

    fn lookup(&self, key: u64) -> Option<Arc<CompiledProgram>> {
        let mut c = self.inner.lock().expect("program cache poisoned");
        c.tick += 1;
        let tick = c.tick;
        let found = c.entries.get_mut(&key).map(|e| {
            e.touched = tick;
            e.program.clone()
        });
        match found {
            Some(p) => {
                c.hits += 1;
                Some(p)
            }
            None => {
                c.misses += 1;
                None
            }
        }
    }

    fn insert(&self, key: u64, program: Arc<CompiledProgram>) {
        if self.capacity == 0 {
            return;
        }
        let mut c = self.inner.lock().expect("program cache poisoned");
        if c.entries.contains_key(&key) {
            return; // a racing worker compiled the same key: keep the first
        }
        if c.entries.len() >= self.capacity {
            if let Some(&lru) = c.entries.iter().min_by_key(|(_, e)| e.touched).map(|(k, _)| k) {
                c.entries.remove(&lru);
                c.evictions += 1;
            }
        }
        c.tick += 1;
        let tick = c.tick;
        c.entries.insert(key, Entry { program, touched: tick });
    }

    /// Cached programs right now.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("program cache poisoned").entries.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of `(hits, misses, evictions)`.
    pub fn stats(&self) -> (u64, u64, u64) {
        let c = self.inner.lock().expect("program cache poisoned");
        (c.hits, c.misses, c.evictions)
    }

    /// Registers the program-cache counters (and the compiler's per-stage
    /// lowering-cache counters) under `serve/progcache/...`.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry) {
        let (hits, misses, evictions) = self.stats();
        reg.counter_add("serve/progcache/hits", hits);
        reg.counter_add("serve/progcache/misses", misses);
        reg.counter_add("serve/progcache/evictions", evictions);
        reg.gauge_set("serve/progcache/entries", self.len() as f64);
        let (sh, sm, se) = ipim_compiler::stage_cache_stats();
        reg.counter_add("serve/progcache/stage_hits", sh);
        reg.counter_add("serve/progcache/stage_misses", sm);
        reg.counter_add("serve/progcache/stage_evictions", se);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipim_frontend::{x, y, PipelineBuilder};

    fn tiny(mult: f32) -> Pipeline {
        let mut p = PipelineBuilder::new();
        let input = p.input("in", 32, 32);
        let out = p.func("out", 32, 32);
        p.define(out, input.at(x(), y()) * mult);
        p.schedule(out).compute_root().ipim_tile(4, 8).vectorize(4);
        p.build(out).unwrap()
    }

    #[test]
    fn hit_shares_the_same_program() {
        let cache = ProgramCache::new(4);
        let cfg = MachineConfig::vault_slice(1);
        let opts = CompileOptions::opt();
        let p = tiny(2.0);
        let a = cache.compile_pipeline(&p, &cfg, &opts).unwrap();
        let b = cache.compile_pipeline(&p, &cfg, &opts).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "a warm compile returns the shared artifact");
        assert_eq!(cache.stats(), (1, 1, 0));
    }

    #[test]
    fn distinct_content_means_distinct_keys() {
        let cache = ProgramCache::new(4);
        let cfg = MachineConfig::vault_slice(1);
        let opts = CompileOptions::opt();
        let a = cache.compile_pipeline(&tiny(2.0), &cfg, &opts).unwrap();
        let b = cache.compile_pipeline(&tiny(3.0), &cfg, &opts).unwrap();
        assert_ne!(a.key(), b.key());
        assert_eq!(cache.stats(), (0, 2, 0));
    }

    #[test]
    fn engine_is_not_part_of_the_key() {
        use ipim_arch::Engine;
        let cfg = MachineConfig::vault_slice(1);
        let legacy = MachineConfig { engine: Engine::Legacy, ..cfg.clone() };
        let opts = CompileOptions::opt();
        let p = tiny(2.0);
        assert_eq!(program_key(&p, &cfg, &opts), program_key(&p, &legacy, &opts));
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let cache = ProgramCache::new(0);
        let cfg = MachineConfig::vault_slice(1);
        let opts = CompileOptions::opt();
        let p = tiny(2.0);
        let a = cache.compile_pipeline(&p, &cfg, &opts).unwrap();
        let b = cache.compile_pipeline(&p, &cfg, &opts).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), (0, 2, 0));
        assert!(cache.is_empty());
    }

    #[test]
    fn eviction_is_least_recently_used() {
        let cache = ProgramCache::new(2);
        let cfg = MachineConfig::vault_slice(1);
        let opts = CompileOptions::opt();
        let a = cache.compile_pipeline(&tiny(1.0), &cfg, &opts).unwrap();
        let _b = cache.compile_pipeline(&tiny(2.0), &cfg, &opts).unwrap();
        // Touch `a` so `b` becomes the LRU victim.
        let a2 = cache.compile_pipeline(&tiny(1.0), &cfg, &opts).unwrap();
        assert!(Arc::ptr_eq(&a, &a2));
        let _c = cache.compile_pipeline(&tiny(3.0), &cfg, &opts).unwrap();
        let (_, _, evictions) = cache.stats();
        assert_eq!(evictions, 1);
        // `a` survived, `b` was evicted.
        let a3 = cache.compile_pipeline(&tiny(1.0), &cfg, &opts).unwrap();
        assert!(Arc::ptr_eq(&a, &a3));
        assert_eq!(cache.len(), 2);
    }
}
