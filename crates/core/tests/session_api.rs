//! Tests of the public `Session` API surface: error paths, metrics and
//! the compile-only entry point.

use ipim_core::frontend::{x, y, Image, PipelineBuilder};
use ipim_core::{CompileOptions, MachineConfig, Session, SessionError};

fn simple_pipeline() -> (ipim_core::frontend::Pipeline, ipim_core::frontend::SourceRef) {
    let mut p = PipelineBuilder::new();
    let input = p.input("in", 64, 64);
    let out = p.func("out", 64, 64);
    p.define(out, input.at(x(), y()) + 1.0);
    p.schedule(out).compute_root().ipim_tile(8, 8);
    (p.build(out).unwrap(), input)
}

#[test]
fn compile_only_reports_static_size() {
    let (pipe, _) = simple_pipeline();
    let session = Session::new(MachineConfig::vault_slice(1));
    let compiled = session.compile_only(&pipe).expect("compile");
    assert!(compiled.static_instructions > 10);
    assert_eq!(compiled.spill_slots, 0, "trivial kernel must not spill");
    assert_eq!(compiled.program.len(), compiled.static_instructions);
}

#[test]
fn run_outcome_metrics_are_consistent() {
    let (pipe, input) = simple_pipeline();
    let session = Session::new(MachineConfig::vault_slice(1));
    let outcome = session
        .run_pipeline(&pipe, &[(input.id(), Image::gradient(64, 64))], 100_000_000)
        .expect("run");
    assert_eq!(outcome.output.pixels(), 64 * 64);
    let pps = outcome.pixels_per_second();
    // pixels / (cycles × 1ns) must be self-consistent.
    let expect = 64.0 * 64.0 / (outcome.report.cycles as f64 * 1e-9);
    assert!((pps - expect).abs() / expect < 1e-9);
    assert!(outcome.energy_pj_per_pixel() > 0.0);
}

#[test]
fn timeout_is_reported_not_hung() {
    let (pipe, input) = simple_pipeline();
    let session = Session::new(MachineConfig::vault_slice(1));
    let err = session
        .run_pipeline(&pipe, &[(input.id(), Image::gradient(64, 64))], 10)
        .expect_err("10 cycles cannot finish");
    match err {
        SessionError::Timeout(t) => assert_eq!(t.max_cycles, 10),
        other => panic!("unexpected error {other}"),
    }
}

#[test]
fn unsupported_pipeline_reports_compile_error() {
    // Extent not divisible by the tile grid.
    let mut p = PipelineBuilder::new();
    let input = p.input("in", 60, 60);
    let out = p.func("out", 60, 60);
    p.define(out, input.at(x(), y()));
    p.schedule(out).compute_root().ipim_tile(8, 8);
    let pipe = p.build(out).unwrap();
    let session = Session::new(MachineConfig::vault_slice(1));
    assert!(matches!(session.compile_only(&pipe), Err(SessionError::Compile(_))));
}

#[test]
fn sessions_with_different_options_share_results() {
    let (pipe, input) = simple_pipeline();
    let img = Image::gradient(64, 64);
    let mut cycle_counts = Vec::new();
    for options in [CompileOptions::opt(), CompileOptions::baseline1()] {
        let session = Session::with_options(MachineConfig::vault_slice(1), options);
        let outcome =
            session.run_pipeline(&pipe, &[(input.id(), img.clone())], 100_000_000).expect("run");
        // Same functional result across compiler configurations.
        for yy in 0..64 {
            for xx in 0..64 {
                assert_eq!(outcome.output.get(xx, yy), img.get(xx, yy) + 1.0);
            }
        }
        cycle_counts.push(outcome.report.cycles);
    }
    assert!(cycle_counts[0] <= cycle_counts[1], "opt must not be slower");
}

#[test]
fn experiment_config_scale_out_factor() {
    use ipim_core::experiments::ExperimentConfig;
    let cfg = ExperimentConfig::quick();
    // 4096 PEs in the paper machine / 32 in the slice.
    assert_eq!(cfg.scale_out_factor(), 128.0);
}

#[test]
fn geomean_of_known_values() {
    use ipim_core::experiments::geomean;
    assert!((geomean([1.0, 4.0]) - 2.0).abs() < 1e-12);
    assert!((geomean([2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    assert_eq!(geomean(std::iter::empty::<f64>()), 0.0);
}

#[test]
fn stencil_chain_compiles_at_small_sizes() {
    // Regression: the small-size fallback tile used to be a fixed 16×16,
    // which left 64×64 with only 16 tiles — fewer than the 32 PEs of the
    // vault slice, an illegal mapping the compiler rejects. The fallback
    // must now pick a tile that keeps every size down to 32×32 legal.
    use ipim_core::{workload_by_name, WorkloadScale};
    let session = Session::new(MachineConfig::vault_slice(1));
    for (w, h) in [(64, 64), (32, 32)] {
        let workload =
            workload_by_name("StencilChain", WorkloadScale { width: w, height: h }).unwrap();
        session
            .compile_only(&workload.pipeline)
            .unwrap_or_else(|e| panic!("StencilChain {w}x{h} must compile: {e}"));
    }
}

#[test]
fn new_families_compile_across_the_size_ladder() {
    // The NN/video families ship with fallback schedule ladders (the
    // StencilChain-style tile descent plus the row-tile search for the
    // reduction kernels), so every family member must compile at every
    // size the mixed serving traffic uses — including the rectangular and
    // sub-Table-II ones. 128×128 additionally pins the PGSM staging-pad
    // regression: RowSoftmax's whole-tile staging used to land exactly on
    // the share boundary and the per-lane gather's 16-byte read ran off
    // the end of the scratchpad.
    use ipim_core::{workload_by_name, WorkloadScale};
    let session = Session::new(MachineConfig::vault_slice(1));
    let names = ["Gemm", "Conv3x3", "RowSoftmax", "FrameDelta", "TemporalBlur", "MotionEnergy"];
    let sizes = [(32u32, 32u32), (64, 32), (64, 64), (96, 64), (128, 128)];
    for name in names {
        for (w, h) in sizes {
            let workload = workload_by_name(name, WorkloadScale { width: w, height: h }).unwrap();
            session
                .compile_only(&workload.pipeline)
                .unwrap_or_else(|e| panic!("{name} {w}x{h} must compile: {e}"));
        }
    }
}
