//! The process-on-base-die (PonB) baseline configuration (Sec. VII-C1).

use ipim_arch::{MachineConfig, Placement};

/// Derives the PonB configuration from an iPIM configuration: identical in
/// every respect except that all compute logic sits on the base logic die,
/// so every bank access crosses the vault's shared TSVs — "the only
/// difference of PonB with iPIM" per the paper, which serializes the bank
/// traffic on the TSV bundle and caps bandwidth at ~1/10th.
pub fn ponb_config(ipim: &MachineConfig) -> MachineConfig {
    MachineConfig { placement: Placement::BaseDie, ..ipim.clone() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_placement_differs() {
        let ipim = MachineConfig::vault_slice(2);
        let ponb = ponb_config(&ipim);
        assert_eq!(ponb.placement, Placement::BaseDie);
        assert_eq!(MachineConfig { placement: ipim.placement, ..ponb.clone() }, ipim);
    }

    #[test]
    fn bandwidth_ratio_is_32x_raw() {
        let ipim = MachineConfig::default();
        let ponb = ponb_config(&ipim);
        assert_eq!(ipim.peak_bank_bytes_per_cycle() / ponb.peak_bank_bytes_per_cycle(), 32);
    }
}
