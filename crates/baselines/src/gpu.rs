//! The calibrated V100 roofline model.

use ipim_workloads::Workload;

/// Fixed V100 hardware parameters (NVIDIA whitepaper / Sec. VII-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuModel {
    /// Peak HBM2 bandwidth in bytes/s (4 stacks).
    pub peak_bw: f64,
    /// Peak FP32 throughput in FLOP/s.
    pub peak_flops: f64,
    /// Board power under these workloads in watts (measured via
    /// nvidia-smi in the paper; image kernels run well under TDP).
    pub power_w: f64,
}

impl Default for GpuModel {
    fn default() -> Self {
        Self { peak_bw: 900e9, peak_flops: 14e12, power_w: 250.0 }
    }
}

/// Per-benchmark utilization profile — the quantities the paper measures in
/// Fig. 1 with nvprof.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuProfile {
    /// Fraction of peak DRAM bandwidth achieved (Fig. 1(a)).
    pub dram_util: f64,
    /// ALU (FP32 + INT32) utilization (Fig. 1(a)).
    pub alu_util: f64,
    /// Share of ALU work that is index calculation (Fig. 1(b)).
    pub index_fraction: f64,
}

/// The Fig. 1 profile of one Table II benchmark.
///
/// Values are calibrated to the paper's reported aggregates: 57.55 % mean
/// DRAM utilization (58.80 % single-stage, 55.73 % multi-stage), 3.43 %
/// mean ALU utilization (2.85 % → 4.53 % single → multi), 58.71 % mean
/// index-calculation share with 5 benchmarks above 60 %, and Histogram
/// anomalously low on both axes (value-dependent atomics defeat the GPU
/// schedule).
pub fn gpu_profile(name: &str) -> GpuProfile {
    match name {
        "Brighten" => GpuProfile { dram_util: 0.68, alu_util: 0.018, index_fraction: 0.58 },
        "Blur" => GpuProfile { dram_util: 0.64, alu_util: 0.035, index_fraction: 0.66 },
        "Downsample" => GpuProfile { dram_util: 0.62, alu_util: 0.028, index_fraction: 0.55 },
        "Upsample" => GpuProfile { dram_util: 0.63, alu_util: 0.026, index_fraction: 0.52 },
        "Shift" => GpuProfile { dram_util: 0.68, alu_util: 0.015, index_fraction: 0.72 },
        "Histogram" => GpuProfile { dram_util: 0.12, alu_util: 0.012, index_fraction: 0.65 },
        "BilateralGrid" => GpuProfile { dram_util: 0.56, alu_util: 0.041, index_fraction: 0.63 },
        "Interpolate" => GpuProfile { dram_util: 0.58, alu_util: 0.043, index_fraction: 0.48 },
        "LocalLaplacian" => GpuProfile { dram_util: 0.57, alu_util: 0.052, index_fraction: 0.50 },
        "StencilChain" => GpuProfile { dram_util: 0.60, alu_util: 0.045, index_fraction: 0.61 },
        _ => GpuProfile { dram_util: 0.5755, alu_util: 0.0343, index_fraction: 0.5871 },
    }
}

/// Modeled GPU execution of one workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuResult {
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Energy in joules.
    pub energy_j: f64,
    /// Achieved DRAM bandwidth in bytes/s.
    pub achieved_bw: f64,
    /// Throughput in output pixels per second.
    pub pixels_per_second: f64,
}

/// Runs the roofline model for `workload`.
///
/// Runtime is the max of the bandwidth time (effective DRAM traffic over
/// achieved bandwidth) and the compute time (FLOPs over utilized ALU
/// throughput) — for these kernels the bandwidth term dominates, exactly as
/// Fig. 1 shows.
pub fn run_gpu(model: &GpuModel, workload: &Workload) -> GpuResult {
    let profile = gpu_profile(workload.name);
    let bytes = workload.gpu_bytes_per_pixel * workload.output_pixels as f64;
    let achieved_bw = model.peak_bw * profile.dram_util;
    let t_mem = bytes / achieved_bw;
    // Index calculation inflates ALU work (Fig. 1(b)): algorithm FLOPs are
    // (1 - index_fraction) of total ALU ops.
    let alu_ops = workload.flops_per_pixel * workload.output_pixels as f64
        / (1.0 - profile.index_fraction).max(0.25);
    let t_alu = alu_ops / (model.peak_flops * profile.alu_util.max(1e-3));
    let seconds = t_mem.max(t_alu);
    GpuResult {
        seconds,
        energy_j: seconds * model.power_w,
        achieved_bw: bytes / seconds,
        pixels_per_second: workload.output_pixels as f64 / seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipim_workloads::{all_workloads, WorkloadScale};

    #[test]
    fn aggregate_utilizations_match_fig1() {
        let names = [
            "Brighten",
            "Blur",
            "Downsample",
            "Upsample",
            "Shift",
            "Histogram",
            "BilateralGrid",
            "Interpolate",
            "LocalLaplacian",
            "StencilChain",
        ];
        let mean_dram: f64 =
            names.iter().map(|n| gpu_profile(n).dram_util).sum::<f64>() / names.len() as f64;
        let mean_alu: f64 =
            names.iter().map(|n| gpu_profile(n).alu_util).sum::<f64>() / names.len() as f64;
        let mean_idx: f64 =
            names.iter().map(|n| gpu_profile(n).index_fraction).sum::<f64>() / names.len() as f64;
        assert!((mean_dram - 0.5755).abs() < 0.02, "mean dram {mean_dram}");
        assert!((mean_alu - 0.0343).abs() < 0.008, "mean alu {mean_alu}");
        assert!((mean_idx - 0.5871).abs() < 0.03, "mean index {mean_idx}");
        let above_60 = names.iter().filter(|n| gpu_profile(n).index_fraction > 0.6).count();
        assert_eq!(above_60, 5, "five benchmarks dominated by index calc");
    }

    #[test]
    fn workloads_are_bandwidth_bound() {
        let model = GpuModel::default();
        for w in all_workloads(WorkloadScale::tiny()) {
            let profile = gpu_profile(w.name);
            let r = run_gpu(&model, &w);
            // Achieved bandwidth ≈ utilization × peak (memory-bound).
            let util = r.achieved_bw / model.peak_bw;
            assert!(
                (util - profile.dram_util).abs() < 0.05 || util < profile.dram_util,
                "{}: util {util} vs profile {}",
                w.name,
                profile.dram_util
            );
        }
    }

    #[test]
    fn histogram_is_anomalously_slow() {
        let model = GpuModel::default();
        let ws = all_workloads(WorkloadScale::tiny());
        let time = |n: &str| {
            run_gpu(&model, ws.iter().find(|w| w.name == n).unwrap()).seconds
                / ws.iter().find(|w| w.name == n).unwrap().output_pixels as f64
        };
        assert!(time("Histogram") > 4.0 * time("Brighten"));
    }

    #[test]
    fn runtime_scales_with_pixels() {
        let model = GpuModel::default();
        let small = run_gpu(
            &model,
            &ipim_workloads::workload_by_name("blur", WorkloadScale::tiny()).unwrap(),
        );
        let big = run_gpu(
            &model,
            &ipim_workloads::workload_by_name("blur", WorkloadScale::default()).unwrap(),
        );
        let ratio = big.seconds / small.seconds;
        assert!((ratio - 16.0).abs() < 0.5, "ratio {ratio}");
    }
}
