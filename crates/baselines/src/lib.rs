//! Baselines: the calibrated NVIDIA Tesla V100 GPU model (Sec. III /
//! Fig. 1) and the process-on-base-die (PonB) machine configuration
//! (Sec. VII-C1).
//!
//! The GPU is *modeled*, not simulated: the paper's own profiling shows the
//! workloads are DRAM-bandwidth-bound on the V100 (57.55 % average DRAM
//! utilization at 518 GB/s, 3.43 % ALU utilization), so a roofline
//! parameterized with the per-benchmark utilizations reproduces exactly the
//! measured behaviour the paper compares against. iPIM itself is always
//! cycle-accurately simulated.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gpu;
mod ponb;

pub use gpu::{gpu_profile, run_gpu, GpuModel, GpuProfile, GpuResult};
pub use ponb::ponb_config;
