//! Plain-data results that cross the pool's thread boundary.
//!
//! Workers own the (intentionally `!Send`) machines; only a [`SimResponse`]
//! ever leaves a worker. `PartialEq` on a response is exact — counters,
//! f64 energy terms and output pixels compare bit-for-bit — which is what
//! lets the cache tests assert that a hit is indistinguishable from a cold
//! run, and the pool tests that a pooled run is indistinguishable from a
//! serial one.

use ipim_core::frontend::Image;
use ipim_core::{ExecutionReport, Fidelity, RunOutcome, SessionError};

use crate::request::{fnv1a, json_escape, SimRequest};

/// A successfully completed simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct DoneResponse {
    /// Canonical workload name (as the suite spells it).
    pub workload: String,
    /// The request's content-addressed identity
    /// ([`SimRequest::fingerprint`]), echoed so a front tier (the shard
    /// router) can check that the backend derived the same cache key from
    /// the wire bytes it forwarded.
    pub fingerprint: u64,
    /// Wall-clock cycles to machine-wide quiescence.
    pub cycles: u64,
    /// Instructions issued across all vaults.
    pub issued: u64,
    /// Total energy in picojoules.
    pub energy_pj: f64,
    /// Full cycle-accurate report (plain data, exact-comparable).
    pub report: ExecutionReport,
    /// The output image read back from the banks.
    pub output: Image,
    /// FNV-1a over the output's f32 bit patterns (row-major), the cheap
    /// wire-level determinism witness.
    pub output_hash: u64,
    /// Whether `cycles`/`energy_pj` are bit-exact simulation results or
    /// an analytic-tier prediction (in which case `output` is a blank
    /// image and `output_hash` hashes that blank — predictions answer
    /// cost questions, not correctness questions).
    pub fidelity: Fidelity,
}

/// Why a job produced no result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimeoutKind {
    /// The wall-clock deadline passed before a worker could start the job.
    DeadlineBeforeStart,
    /// The simulation exhausted its cycle budget.
    CycleBudget {
        /// The exhausted budget.
        max_cycles: u64,
        /// Vaults that had not halted — the partial progress picture.
        stuck_vaults: usize,
    },
}

/// The service's answer to one [`SimRequest`].
#[derive(Debug, Clone, PartialEq)]
pub enum SimResponse {
    /// The simulation ran to quiescence.
    Done(Box<DoneResponse>),
    /// The job timed out (deadline or cycle budget); the worker survives
    /// and moves on to the next job.
    Timeout(TimeoutKind),
    /// The request itself was bad (unknown workload, compile error, ...).
    Error(String),
}

/// Hashes an image's pixels (f32 bit patterns, row-major).
pub fn image_hash(img: &Image) -> u64 {
    let mut bytes = Vec::with_capacity(img.data().len() * 4);
    for px in img.data() {
        bytes.extend_from_slice(&px.to_bits().to_le_bytes());
    }
    fnv1a(&bytes)
}

/// Hashes a full [`ExecutionReport`] — every counter, bank statistic and
/// f64 energy term — into one 64-bit witness, so a wire client can assert
/// report-level bit-identity without shipping the whole report. The hash
/// covers the report's canonical `Debug` rendering (f64s print in
/// shortest-round-trip form, so equal hashes mean bit-equal reports).
pub fn report_hash(report: &ExecutionReport) -> u64 {
    fnv1a(format!("{report:?}").as_bytes())
}

impl SimResponse {
    /// Builds the response for a finished serial run.
    pub fn from_outcome(req: &SimRequest, outcome: RunOutcome) -> Self {
        let output_hash = image_hash(&outcome.output);
        SimResponse::Done(Box::new(DoneResponse {
            workload: req.workload.clone(),
            fingerprint: req.fingerprint(),
            cycles: outcome.report.cycles,
            issued: outcome.report.stats.issued,
            energy_pj: outcome.report.energy.total_pj(),
            report: outcome.report,
            output: outcome.output,
            output_hash,
            fidelity: outcome.fidelity,
        }))
    }

    /// Maps a session error: cycle-budget exhaustion degrades to
    /// [`SimResponse::Timeout`], anything else is a request error.
    pub fn from_error(e: SessionError) -> Self {
        match e {
            SessionError::Timeout(t) => SimResponse::Timeout(TimeoutKind::CycleBudget {
                max_cycles: t.max_cycles,
                stuck_vaults: t.stuck_vaults.len(),
            }),
            other => SimResponse::Error(other.to_string()),
        }
    }

    /// The wire form: one JSON object per response. `Done` sends the
    /// summary, the output hash, the report hash and the request
    /// fingerprint, not the pixels — the hashes are the determinism
    /// witnesses (sharded-vs-serial bit-identity is asserted over them),
    /// and megapixel payloads don't belong on an ndjson control channel.
    pub fn to_json_string(&self) -> String {
        match self {
            SimResponse::Done(d) => {
                // Bit-exact responses keep their historical fields
                // (recorded output hashes stay valid); only predictions
                // carry the fidelity marker.
                let fidelity = match d.fidelity {
                    Fidelity::BitExact => String::new(),
                    f => format!(",\"fidelity\":\"{}\"", f.name()),
                };
                format!(
                    "{{\"status\":\"done\",\"workload\":\"{}\",\"cycles\":{},\"issued\":{},\
                     \"energy_pj\":{:?},\"output_width\":{},\"output_height\":{},\
                     \"output_hash\":\"{:016x}\",\"report_hash\":\"{:016x}\",\
                     \"fingerprint\":\"{:016x}\"{fidelity}}}",
                    json_escape(&d.workload),
                    d.cycles,
                    d.issued,
                    d.energy_pj,
                    d.output.width(),
                    d.output.height(),
                    d.output_hash,
                    report_hash(&d.report),
                    d.fingerprint,
                )
            }
            SimResponse::Timeout(TimeoutKind::DeadlineBeforeStart) => {
                "{\"status\":\"timeout\",\"reason\":\"deadline\"}".to_string()
            }
            SimResponse::Timeout(TimeoutKind::CycleBudget { max_cycles, stuck_vaults }) => format!(
                "{{\"status\":\"timeout\",\"reason\":\"cycle_budget\",\"max_cycles\":{max_cycles},\
                 \"stuck_vaults\":{stuck_vaults}}}"
            ),
            SimResponse::Error(msg) => {
                format!("{{\"status\":\"error\",\"message\":\"{}\"}}", json_escape(msg))
            }
        }
    }

    /// Whether this is a `Done` response.
    pub fn is_done(&self) -> bool {
        matches!(self, SimResponse::Done(_))
    }

    /// Whether this is a `Timeout` response.
    pub fn is_timeout(&self) -> bool {
        matches!(self, SimResponse::Timeout(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipim_trace::json;

    #[test]
    fn image_hash_tracks_content() {
        let a = Image::gradient(8, 8);
        let mut b = a.clone();
        assert_eq!(image_hash(&a), image_hash(&b));
        let v = b.get(3, 3);
        b.set(3, 3, v + 1.0);
        assert_ne!(image_hash(&a), image_hash(&b));
    }

    #[test]
    fn wire_forms_are_valid_json() {
        let timeout =
            SimResponse::Timeout(TimeoutKind::CycleBudget { max_cycles: 100, stuck_vaults: 2 });
        let v = json::parse(&timeout.to_json_string()).unwrap();
        assert_eq!(v.get("status").unwrap().as_str(), Some("timeout"));
        assert_eq!(v.get("stuck_vaults").unwrap().as_f64(), Some(2.0));

        let err = SimResponse::Error("no such \"kernel\"".into());
        let v = json::parse(&err.to_json_string()).unwrap();
        assert_eq!(v.get("message").unwrap().as_str(), Some("no such \"kernel\""));
        assert!(!err.is_done() && !err.is_timeout());
    }

    #[test]
    fn report_hash_tracks_report_content() {
        let mut a = ExecutionReport {
            cycles: 10,
            stats: Default::default(),
            bank_stats: Default::default(),
            locality: Default::default(),
            energy: Default::default(),
            vaults: 1,
            pes: 32,
        };
        let h = report_hash(&a);
        assert_eq!(h, report_hash(&a.clone()), "hash is a pure function of the report");
        a.cycles += 1;
        assert_ne!(h, report_hash(&a), "any counter change must change the hash");
    }

    #[test]
    fn done_wire_carries_the_identity_witnesses() {
        let done = SimResponse::Done(Box::new(DoneResponse {
            workload: "T".into(),
            fingerprint: 0xabcd,
            cycles: 1,
            issued: 1,
            energy_pj: 1.0,
            report: ExecutionReport {
                cycles: 1,
                stats: Default::default(),
                bank_stats: Default::default(),
                locality: Default::default(),
                energy: Default::default(),
                vaults: 1,
                pes: 32,
            },
            output: Image::splat(1, 1, 0.0),
            output_hash: 0x1234,
            fidelity: Fidelity::BitExact,
        }));
        let v = json::parse(&done.to_json_string()).unwrap();
        assert_eq!(v.get("fingerprint").unwrap().as_str(), Some("000000000000abcd"));
        assert_eq!(v.get("output_hash").unwrap().as_str(), Some("0000000000001234"));
        assert!(v.get("report_hash").unwrap().as_str().is_some());
    }

    #[test]
    fn fidelity_marker_only_on_predictions() {
        let done = |fidelity| {
            SimResponse::Done(Box::new(DoneResponse {
                workload: "T".into(),
                fingerprint: 0xfeed,
                cycles: 1,
                issued: 1,
                energy_pj: 1.0,
                report: ExecutionReport {
                    cycles: 1,
                    stats: Default::default(),
                    bank_stats: Default::default(),
                    locality: Default::default(),
                    energy: Default::default(),
                    vaults: 1,
                    pes: 32,
                },
                output: Image::splat(1, 1, 0.0),
                output_hash: 0,
                fidelity,
            }))
        };
        // Bit-exact responses keep the historical wire shape...
        let exact = done(Fidelity::BitExact).to_json_string();
        assert!(!exact.contains("fidelity"), "unexpected marker: {exact}");
        // ...and predictions are unmistakably marked.
        let v = json::parse(&done(Fidelity::Approximate).to_json_string()).unwrap();
        assert_eq!(v.get("fidelity").unwrap().as_str(), Some("approximate"));
    }
}
