//! A bounded MPMC job queue on std `Mutex` + `Condvar`.
//!
//! Producers block once the queue is full (backpressure: admission control
//! happens at `submit`, not deep in a worker), consumers block while it is
//! empty. [`JobQueue::close`] starts a graceful shutdown: producers are
//! refused, consumers drain what was already admitted and then observe
//! `None` — no job accepted before the close is ever lost.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct State<T> {
    buf: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue.
pub struct JobQueue<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    /// Signalled on push and on close (wakes consumers).
    not_empty: Condvar,
    /// Signalled on pop and on close (wakes blocked producers).
    not_full: Condvar,
}

impl<T> JobQueue<T> {
    /// Creates a queue admitting at most `capacity` queued items (min 1).
    pub fn bounded(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            state: Mutex::new(State { buf: VecDeque::new(), closed: false }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Enqueues `item`, blocking while the queue is full.
    ///
    /// # Errors
    ///
    /// Returns the item back if the queue is (or becomes, while waiting)
    /// closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut s = self.state.lock().expect("queue poisoned");
        while s.buf.len() >= self.capacity && !s.closed {
            s = self.not_full.wait(s).expect("queue poisoned");
        }
        if s.closed {
            return Err(item);
        }
        s.buf.push_back(item);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues `item` only if there is room right now.
    ///
    /// # Errors
    ///
    /// Returns the item back when the queue is full or closed.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut s = self.state.lock().expect("queue poisoned");
        if s.closed || s.buf.len() >= self.capacity {
            return Err(item);
        }
        s.buf.push_back(item);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking while the queue is empty. Returns
    /// `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = s.buf.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self.not_empty.wait(s).expect("queue poisoned");
        }
    }

    /// Closes the queue: subsequent pushes fail, pops drain then end.
    pub fn close(&self) {
        let mut s = self.state.lock().expect("queue poisoned");
        s.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").buf.len()
    }

    /// Whether nothing is queued right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the queue has been closed.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("queue poisoned").closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn fifo_within_capacity() {
        let q = JobQueue::bounded(4);
        for i in 0..4 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 4);
        assert!(q.try_push(99).is_err(), "full queue refuses try_push");
        assert_eq!((q.pop(), q.pop(), q.pop(), q.pop()), (Some(0), Some(1), Some(2), Some(3)));
        assert!(q.is_empty());
    }

    #[test]
    fn close_drains_then_ends() {
        let q = JobQueue::bounded(8);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert_eq!(q.push(3), Err(3), "closed queue refuses new work");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert!(q.is_closed());
    }

    #[test]
    fn full_push_blocks_until_a_pop() {
        let q = Arc::new(JobQueue::bounded(1));
        q.push(0u32).unwrap();
        let qp = q.clone();
        let producer = thread::spawn(move || qp.push(1).is_ok());
        // Give the producer time to block on the full queue.
        thread::sleep(Duration::from_millis(20));
        assert_eq!(q.pop(), Some(0));
        assert!(producer.join().unwrap(), "producer completed after space freed");
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn close_unblocks_waiting_consumers() {
        let q = Arc::new(JobQueue::<u32>::bounded(1));
        let qc = q.clone();
        let consumer = thread::spawn(move || qc.pop());
        thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn mpmc_under_contention_loses_nothing() {
        const PRODUCERS: usize = 4;
        const PER_PRODUCER: usize = 250;
        let q = Arc::new(JobQueue::bounded(8));
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let q = q.clone();
                thread::spawn(move || {
                    for i in 0..PER_PRODUCER {
                        q.push(p * PER_PRODUCER + i).unwrap();
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = q.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<usize> = consumers.into_iter().flat_map(|c| c.join().unwrap()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..PRODUCERS * PER_PRODUCER).collect::<Vec<_>>());
    }
}
