//! The fixed worker pool.
//!
//! Each worker thread builds its own `Session` per job — `Machine`'s
//! shared trace sink is an `Rc<RefCell<..>>`, making machines intentionally
//! `!Send`, so a machine is born, run and dropped entirely inside one
//! worker. Only plain-data [`SimRequest`]s enter and [`SimResponse`]s leave
//! (both statically `Send`; `ipim-core` carries the compile-time proof).
//!
//! Deadline semantics (graceful degradation, never worker death):
//!
//! * **admission deadline** — a job whose `deadline_ms` elapsed while it
//!   sat in the queue is answered `Timeout(DeadlineBeforeStart)` without
//!   running; under overload the pool sheds exactly the work nobody is
//!   waiting for anymore.
//! * **cycle budget** — a simulation that exhausts `max_cycles` returns
//!   `Timeout(CycleBudget {..})` with the partial-progress picture (how
//!   many vaults were still running). The worker thread survives both
//!   cases and simply takes the next job.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Instant;

use ipim_trace::MetricsRegistry;

use crate::cache::ResultCache;
use crate::queue::JobQueue;
use crate::request::SimRequest;
use crate::response::{SimResponse, TimeoutKind};

/// Pool sizing and policy.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Worker threads (min 1). Each owns its machines outright.
    pub workers: usize,
    /// Jobs admitted but not yet started; a full queue blocks `submit`
    /// (backpressure).
    pub queue_depth: usize,
    /// Result-cache entries (0 disables caching).
    pub cache_capacity: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self { workers: 4, queue_depth: 64, cache_capacity: 128 }
    }
}

struct Job {
    request: SimRequest,
    admitted: Instant,
    reply: mpsc::Sender<SimResponse>,
}

/// Aggregate pool counters (monotone, lock-free).
#[derive(Default)]
struct PoolCounters {
    completed: AtomicU64,
    timeouts: AtomicU64,
    errors: AtomicU64,
}

/// A handle to one submitted job's eventual response.
pub struct Ticket {
    rx: mpsc::Receiver<SimResponse>,
}

impl Ticket {
    /// Blocks until the response arrives. A worker always replies (even a
    /// shed or failed job gets a `Timeout`/`Error`), so a disconnected
    /// channel can only mean the pool was torn down under us.
    pub fn wait(self) -> SimResponse {
        self.rx.recv().unwrap_or_else(|_| SimResponse::Error("pool shut down before reply".into()))
    }
}

/// A fixed pool of simulation workers behind a bounded queue and a shared
/// result cache.
pub struct ServePool {
    queue: Arc<JobQueue<Job>>,
    cache: Arc<Mutex<ResultCache>>,
    counters: Arc<PoolCounters>,
    workers: Vec<thread::JoinHandle<u64>>,
}

impl ServePool {
    /// Starts `config.workers` worker threads.
    pub fn start(config: &PoolConfig) -> Self {
        let queue = Arc::new(JobQueue::bounded(config.queue_depth));
        let cache = Arc::new(Mutex::new(ResultCache::new(config.cache_capacity)));
        let counters = Arc::new(PoolCounters::default());
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let queue = queue.clone();
                let cache = cache.clone();
                let counters = counters.clone();
                thread::Builder::new()
                    .name(format!("ipim-serve-{i}"))
                    .spawn(move || worker_loop(&queue, &cache, &counters))
                    .expect("spawn worker")
            })
            .collect();
        Self { queue, cache, counters, workers }
    }

    /// Submits one job, blocking while the queue is full. The returned
    /// [`Ticket`] resolves to the job's response.
    pub fn submit(&self, request: SimRequest) -> Ticket {
        let (tx, rx) = mpsc::channel();
        let job = Job { request, admitted: Instant::now(), reply: tx };
        if let Err(job) = self.queue.push(job) {
            let _ = job.reply.send(SimResponse::Error("pool is shut down".into()));
        }
        Ticket { rx }
    }

    /// Submits a batch and waits for all responses, in request order.
    pub fn run_all(&self, requests: impl IntoIterator<Item = SimRequest>) -> Vec<SimResponse> {
        let tickets: Vec<Ticket> = requests.into_iter().map(|r| self.submit(r)).collect();
        tickets.into_iter().map(Ticket::wait).collect()
    }

    /// Jobs currently admitted but not yet started.
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }

    /// Snapshot of pool + cache counters under `serve/...`.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::default();
        reg.counter_add("serve/pool/completed", self.counters.completed.load(Ordering::Relaxed));
        reg.counter_add("serve/pool/timeouts", self.counters.timeouts.load(Ordering::Relaxed));
        reg.counter_add("serve/pool/errors", self.counters.errors.load(Ordering::Relaxed));
        reg.gauge_set("serve/pool/workers", self.workers.len() as f64);
        self.cache.lock().expect("cache poisoned").export_metrics(&mut reg);
        ipim_core::ProgramCache::global().export_metrics(&mut reg);
        reg
    }

    /// Graceful shutdown: refuse new work, drain admitted jobs, join every
    /// worker. Returns the final metrics snapshot.
    pub fn shutdown(self) -> MetricsRegistry {
        self.queue.close();
        let mut jobs_by_worker = Vec::with_capacity(self.workers.len());
        for w in self.workers {
            jobs_by_worker.push(w.join().expect("worker panicked"));
        }
        let mut reg = MetricsRegistry::default();
        reg.counter_add("serve/pool/completed", self.counters.completed.load(Ordering::Relaxed));
        reg.counter_add("serve/pool/timeouts", self.counters.timeouts.load(Ordering::Relaxed));
        reg.counter_add("serve/pool/errors", self.counters.errors.load(Ordering::Relaxed));
        for (i, jobs) in jobs_by_worker.iter().enumerate() {
            reg.counter_add(&format!("serve/pool/worker{i}/jobs"), *jobs);
        }
        self.cache.lock().expect("cache poisoned").export_metrics(&mut reg);
        ipim_core::ProgramCache::global().export_metrics(&mut reg);
        reg
    }
}

/// One worker: pop, shed-or-serve, reply, repeat until the queue ends.
fn worker_loop(queue: &JobQueue<Job>, cache: &Mutex<ResultCache>, counters: &PoolCounters) -> u64 {
    let mut jobs = 0u64;
    while let Some(job) = queue.pop() {
        jobs += 1;
        let response = serve_one(&job, cache);
        match &response {
            SimResponse::Done(_) => counters.completed.fetch_add(1, Ordering::Relaxed),
            SimResponse::Timeout(_) => counters.timeouts.fetch_add(1, Ordering::Relaxed),
            SimResponse::Error(_) => counters.errors.fetch_add(1, Ordering::Relaxed),
        };
        // A submitter that dropped its ticket just doesn't hear the answer.
        let _ = job.reply.send(response);
    }
    jobs
}

fn serve_one(job: &Job, cache: &Mutex<ResultCache>) -> SimResponse {
    let req = &job.request;
    if let Some(deadline_ms) = req.deadline_ms {
        if job.admitted.elapsed().as_millis() as u64 > deadline_ms {
            return SimResponse::Timeout(TimeoutKind::DeadlineBeforeStart);
        }
    }
    let fingerprint = req.fingerprint();
    if let Some(hit) = cache.lock().expect("cache poisoned").lookup(fingerprint) {
        return hit;
    }
    let response = match req.instantiate() {
        Ok((session, workload)) => match session.run_workload(&workload, req.max_cycles) {
            Ok(outcome) => SimResponse::from_outcome(req, outcome),
            Err(e) => SimResponse::from_error(e),
        },
        Err(msg) => SimResponse::Error(msg),
    };
    cache.lock().expect("cache poisoned").insert(fingerprint, &response);
    response
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(workload: &str) -> SimRequest {
        SimRequest::named(workload, 64, 64)
    }

    #[test]
    fn pool_serves_and_shuts_down() {
        let pool = ServePool::start(&PoolConfig { workers: 2, queue_depth: 8, cache_capacity: 8 });
        let responses = pool.run_all([small("Brighten"), small("Shift")]);
        assert!(responses.iter().all(SimResponse::is_done), "{responses:?}");
        let metrics = pool.shutdown();
        assert_eq!(metrics.counter("serve/pool/completed"), 2);
        assert_eq!(metrics.counter("serve/pool/errors"), 0);
    }

    #[test]
    fn cache_hit_equals_cold_run_and_counts() {
        let pool = ServePool::start(&PoolConfig { workers: 1, queue_depth: 4, cache_capacity: 4 });
        let cold = pool.submit(small("Brighten")).wait();
        let warm = pool.submit(small("Brighten")).wait();
        assert_eq!(cold, warm, "cache hit must be bit-identical to the cold run");
        let metrics = pool.shutdown();
        assert_eq!(metrics.counter("serve/cache/hits"), 1);
        assert_eq!(metrics.counter("serve/cache/misses"), 1);
    }

    #[test]
    fn bad_requests_degrade_to_error_responses() {
        let pool = ServePool::start(&PoolConfig { workers: 1, queue_depth: 4, cache_capacity: 0 });
        let r = pool.submit(small("NoSuchKernel")).wait();
        assert!(matches!(r, SimResponse::Error(_)), "{r:?}");
        // The worker survived the bad job and serves the next one.
        let ok = pool.submit(small("Brighten")).wait();
        assert!(ok.is_done());
        let metrics = pool.shutdown();
        assert_eq!(metrics.counter("serve/pool/errors"), 1);
    }

    #[test]
    fn cycle_budget_exhaustion_degrades_to_timeout() {
        let mut req = small("Blur");
        req.max_cycles = 10; // far too small to quiesce
        let pool = ServePool::start(&PoolConfig { workers: 1, queue_depth: 4, cache_capacity: 4 });
        let r = pool.submit(req).wait();
        match r {
            SimResponse::Timeout(TimeoutKind::CycleBudget { max_cycles, stuck_vaults }) => {
                assert_eq!(max_cycles, 10);
                assert!(stuck_vaults > 0);
            }
            other => panic!("expected cycle-budget timeout, got {other:?}"),
        }
        // Timeouts are not memoized: a retry with the same fingerprint
        // reruns (and here times out again, but freshly).
        let again = pool.submit(SimRequest { max_cycles: 10, ..small("Blur") }).wait();
        assert!(again.is_timeout());
        let metrics = pool.shutdown();
        assert_eq!(metrics.counter("serve/pool/timeouts"), 2);
        assert_eq!(metrics.counter("serve/cache/hits"), 0);
    }

    #[test]
    fn expired_deadline_sheds_the_job_before_running() {
        let mut req = small("Brighten");
        req.deadline_ms = Some(0);
        let pool = ServePool::start(&PoolConfig { workers: 1, queue_depth: 4, cache_capacity: 4 });
        // Hold the worker busy so the deadline job sits in the queue past
        // its (zero) deadline.
        let busy = pool.submit(small("Blur"));
        std::thread::sleep(std::time::Duration::from_millis(5));
        let shed = pool.submit(req).wait();
        assert_eq!(shed, SimResponse::Timeout(TimeoutKind::DeadlineBeforeStart));
        assert!(busy.wait().is_done());
        pool.shutdown();
    }
}
