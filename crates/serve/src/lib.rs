//! # ipim-serve — simulator-as-a-service for the iPIM reproduction
//!
//! PIM evaluation is dominated by *fleets* of workload × configuration
//! jobs, not single runs. This crate turns the single-threaded
//! [`Session`](ipim_core::Session) API into a hermetic, std-only service:
//!
//! - **[`SimRequest`] / [`SimResponse`]** — plain-data job descriptions and
//!   results with a canonical content hash ([`SimRequest::fingerprint`]).
//!   Machines are intentionally `!Send` (their shared trace sink is an
//!   `Rc<RefCell<..>>`); only these plain values cross threads.
//! - **[`JobQueue`]** — a bounded MPMC queue (std `Mutex` + `Condvar`)
//!   giving backpressure at admission and graceful drain on shutdown.
//! - **[`ServePool`]** — a fixed set of worker threads, each owning its
//!   machines outright, with per-job deadline/cycle-budget degradation
//!   (a timed-out job answers `Timeout`, the worker lives on).
//! - **[`ResultCache`]** — content-addressed LRU memoization of `Done`
//!   responses; hits are bit-identical to cold runs because simulation is
//!   deterministic. Counters export into the `ipim-trace`
//!   [`MetricsRegistry`](ipim_trace::MetricsRegistry) under `serve/...`.
//! - **[`server`]** — the ndjson request/response protocol behind the
//!   `ipim_served` binary (stdin/stdout or TCP) and the `loadgen`
//!   closed-loop load generator (both in `ipim-bench`).
//!
//! ## Quickstart
//!
//! ```
//! use ipim_serve::{PoolConfig, ServePool, SimRequest};
//!
//! let pool = ServePool::start(&PoolConfig { workers: 2, ..PoolConfig::default() });
//! let responses = pool.run_all([
//!     SimRequest::named("Brighten", 64, 64),
//!     SimRequest::named("Shift", 64, 64),
//! ]);
//! assert!(responses.iter().all(|r| r.is_done()));
//! let metrics = pool.shutdown();
//! assert_eq!(metrics.counter("serve/pool/completed"), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod pool;
mod queue;
mod request;
mod response;
pub mod server;

pub use cache::ResultCache;
pub use ipim_core::{ComputeRootPolicy, ScheduleOverride};
pub use pool::{PoolConfig, ServePool, Ticket};
pub use queue::JobQueue;
pub use request::{fnv1a, SimRequest};
pub use response::{image_hash, report_hash, DoneResponse, SimResponse, TimeoutKind};
pub use server::{LineService, PendingLine};
