//! Newline-delimited-JSON request/response serving.
//!
//! The wire protocol is one JSON object per line: each line of the input is
//! parsed as a [`SimRequest`], submitted to the pool, and answered with one
//! [`SimResponse`] line in the same order. A malformed line yields an
//! `{"status":"error",...}` line rather than killing the stream — the
//! client's line *n* always pairs with response line *n*.
//!
//! Two pacing modes share that framing:
//!
//! * **batch** ([`serve_batch`]) — read until EOF, then answer. Right for
//!   shell pipelines, where the input ends before anyone reads output.
//! * **stream** ([`serve_stream`]) — a reader thread keeps admitting lines
//!   while the writer flushes each response the moment it (and all its
//!   predecessors) resolve. Right for long-lived TCP connections, where a
//!   client pipelines requests and consumes answers as they land.
//!
//! The same functions serve both transports the `ipim_served` binary
//! offers: stdin/stdout (shell pipelines, test harnesses) and a
//! `std::net::TcpListener` accept loop (one batch/stream per connection).
//!
//! Both pacing modes are generic over a [`LineService`]: anything that
//! admits a parsed request and eventually resolves it to one response
//! line. [`ServePool`] is the local implementation; the `ipim-shard`
//! front tier implements the same trait over a fleet of TCP backends, so
//! the wire framing, ordering guarantee and in-band error handling are
//! written exactly once.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::sync::mpsc;

use crate::pool::{ServePool, Ticket};
use crate::request::SimRequest;
use crate::response::SimResponse;

/// A handle to one admitted request's eventually-resolved response line.
pub trait PendingLine: Send {
    /// Blocks until the response is ready and returns its ndjson line
    /// (no trailing newline).
    fn into_line(self) -> String;
}

/// Anything that can stand behind the ndjson protocol: admits parsed
/// requests (blocking for backpressure) and answers each with exactly one
/// response line. Implementations must tolerate any request — protocol
/// problems are reported in-band by the returned line, never by panicking.
pub trait LineService: Sync {
    /// The pending-response handle [`dispatch`](Self::dispatch) returns.
    type Pending: PendingLine;
    /// Admits one request, returning a handle to its eventual response.
    fn dispatch(&self, req: SimRequest) -> Self::Pending;
}

impl PendingLine for Ticket {
    fn into_line(self) -> String {
        self.wait().to_json_string()
    }
}

impl LineService for ServePool {
    type Pending = Ticket;

    fn dispatch(&self, req: SimRequest) -> Ticket {
        self.submit(req)
    }
}

/// What one served batch did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Request lines read (blank lines are skipped, not counted).
    pub requests: usize,
    /// Lines that failed to parse into a request.
    pub parse_errors: usize,
}

/// Serves one batch: reads request lines until EOF, fans them out across
/// `pool`, then writes response lines in request order.
///
/// Submission happens while reading — the pool's bounded queue provides the
/// backpressure — so a batch larger than the queue depth streams through
/// the workers rather than being buffered whole.
///
/// # Errors
///
/// Propagates I/O errors from the transport; protocol-level problems
/// (malformed JSON, unknown workloads) are reported in-band.
pub fn serve_batch<R: BufRead, W: Write, S: LineService>(
    input: R,
    mut output: W,
    service: &S,
) -> std::io::Result<ServeSummary> {
    let mut summary = ServeSummary::default();
    // A pending response per line, Err carrying the in-band parse failure.
    let mut pending: Vec<Result<S::Pending, String>> = Vec::new();
    for line in input.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        summary.requests += 1;
        match SimRequest::from_json_str(&line) {
            Ok(req) => pending.push(Ok(service.dispatch(req))),
            Err(msg) => {
                summary.parse_errors += 1;
                pending.push(Err(msg));
            }
        }
    }
    for entry in pending {
        let line = match entry {
            Ok(p) => p.into_line(),
            Err(msg) => SimResponse::Error(format!("bad request: {msg}")).to_json_string(),
        };
        writeln!(output, "{line}")?;
    }
    output.flush()?;
    Ok(summary)
}

/// Serves one connection in streaming mode: a reader thread parses and
/// submits request lines as they arrive, while this thread writes each
/// response line **as soon as it completes**, flushing per line. Response
/// order still matches request order — streaming changes *when* line *n*
/// is written (the moment jobs 1..=n have all resolved), never which line
/// pairs with which.
///
/// This is the long-lived-connection mode: a client that pipelines K
/// requests starts consuming answers while later requests are still being
/// produced, instead of waiting for its own EOF as in [`serve_batch`].
///
/// # Errors
///
/// Propagates I/O errors from the transport; protocol-level problems are
/// reported in-band, exactly as in batch mode.
pub fn serve_stream<R, W, S>(input: R, mut output: W, service: &S) -> std::io::Result<ServeSummary>
where
    R: BufRead + Send,
    W: Write,
    S: LineService,
{
    std::thread::scope(|scope| {
        // The reader owns admission; the channel carries pending responses
        // (or in-band parse failures) in request order. Bounded-ness comes
        // from the service itself: `dispatch` blocks when it is full.
        let (tx, rx) = mpsc::channel::<std::io::Result<Result<S::Pending, String>>>();
        scope.spawn(move || {
            for line in input.lines() {
                let entry = match line {
                    Ok(l) if l.trim().is_empty() => continue,
                    Ok(l) => Ok(SimRequest::from_json_str(&l).map(|req| service.dispatch(req))),
                    Err(e) => Err(e),
                };
                if tx.send(entry).is_err() {
                    return; // writer hit an I/O error and hung up
                }
            }
        });
        let mut summary = ServeSummary::default();
        for entry in rx {
            summary.requests += 1;
            let line = match entry? {
                Ok(p) => p.into_line(),
                Err(msg) => {
                    summary.parse_errors += 1;
                    SimResponse::Error(format!("bad request: {msg}")).to_json_string()
                }
            };
            writeln!(output, "{line}")?;
            // The per-response flush is the whole point of this mode.
            output.flush()?;
        }
        Ok(summary)
    })
}

/// Accepts TCP connections forever, serving each as one ndjson batch — or,
/// with `streaming`, in per-response-flush [`serve_stream`] mode (the
/// client half-closes its write side to mark end-of-input either way).
/// Connection errors are logged to stderr and do not stop the accept loop.
///
/// # Errors
///
/// Returns only listener-level failures (e.g. the socket was closed).
pub fn serve_tcp<S: LineService>(
    listener: &TcpListener,
    service: &S,
    streaming: bool,
) -> std::io::Result<()> {
    for stream in listener.incoming() {
        let stream = stream?;
        let peer = stream.peer_addr().map(|a| a.to_string()).unwrap_or_else(|_| "?".into());
        let reader = BufReader::new(stream.try_clone()?);
        let served = if streaming {
            serve_stream(reader, &stream, service)
        } else {
            serve_batch(reader, &stream, service)
        };
        match served {
            Ok(s) => eprintln!(
                "ipim_served: {peer}: {} request(s), {} parse error(s)",
                s.requests, s.parse_errors
            ),
            Err(e) => eprintln!("ipim_served: {peer}: {e}"),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PoolConfig;
    use ipim_trace::json;

    #[test]
    fn batch_answers_in_request_order_with_inband_errors() {
        let pool = ServePool::start(&PoolConfig { workers: 2, queue_depth: 8, cache_capacity: 8 });
        let input = "\
{\"workload\":\"Brighten\"}\n\
\n\
this is not json\n\
{\"workload\":\"Shift\",\"width\":64,\"height\":64}\n";
        let mut out = Vec::new();
        let summary = serve_batch(input.as_bytes(), &mut out, &pool).unwrap();
        assert_eq!(summary, ServeSummary { requests: 3, parse_errors: 1 });
        let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().trim().lines().collect();
        assert_eq!(lines.len(), 3, "one response line per request line");
        let statuses: Vec<String> = lines
            .iter()
            .map(|l| json::parse(l).unwrap().get("status").unwrap().as_str().unwrap().to_string())
            .collect();
        assert_eq!(statuses, ["done", "error", "done"]);
        let first = json::parse(lines[0]).unwrap();
        assert_eq!(first.get("workload").unwrap().as_str(), Some("Brighten"));
        pool.shutdown();
    }

    #[test]
    fn stream_mode_answers_before_eof() {
        use std::io::{BufRead as _, Write as _};
        use std::net::{Shutdown, TcpStream};

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let pool =
                ServePool::start(&PoolConfig { workers: 1, queue_depth: 4, cache_capacity: 4 });
            let (stream, _) = listener.accept().unwrap();
            let reader = BufReader::new(stream.try_clone().unwrap());
            let summary = serve_stream(reader, &stream, &pool).unwrap();
            pool.shutdown();
            summary
        });
        let client = TcpStream::connect(addr).unwrap();
        let mut write_half = client.try_clone().unwrap();
        let mut reader = BufReader::new(client);
        // Request → response, twice, WITHOUT closing the write side in
        // between: only the per-response flush makes the first read return.
        for (line, expect) in [
            ("{\"workload\":\"Brighten\"}\n", "\"status\":\"done\""),
            ("not json\n", "\"status\":\"error\""),
        ] {
            write_half.write_all(line.as_bytes()).unwrap();
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            assert!(reply.contains(expect), "{reply}");
        }
        write_half.shutdown(Shutdown::Write).unwrap();
        let summary = server.join().unwrap();
        assert_eq!(summary, ServeSummary { requests: 2, parse_errors: 1 });
    }

    #[test]
    fn stream_and_batch_agree_on_responses() {
        let pool = ServePool::start(&PoolConfig { workers: 2, queue_depth: 8, cache_capacity: 8 });
        let input = "{\"workload\":\"Brighten\"}\nbad\n{\"workload\":\"Shift\"}\n";
        let mut batch_out = Vec::new();
        serve_batch(input.as_bytes(), &mut batch_out, &pool).unwrap();
        let mut stream_out = Vec::new();
        serve_stream(input.as_bytes(), &mut stream_out, &pool).unwrap();
        assert_eq!(
            std::str::from_utf8(&batch_out).unwrap(),
            std::str::from_utf8(&stream_out).unwrap(),
            "pacing must not change the answers"
        );
        pool.shutdown();
    }

    #[test]
    fn tcp_round_trip() {
        use std::io::{Read, Write as _};
        use std::net::{Shutdown, TcpStream};

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let pool =
                ServePool::start(&PoolConfig { workers: 1, queue_depth: 4, cache_capacity: 4 });
            // Serve exactly one connection, then stop.
            let (stream, _) = listener.accept().unwrap();
            let reader = BufReader::new(stream.try_clone().unwrap());
            serve_batch(reader, &stream, &pool).unwrap();
            pool.shutdown();
        });
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(b"{\"workload\":\"Brighten\"}\n").unwrap();
        client.shutdown(Shutdown::Write).unwrap();
        let mut reply = String::new();
        client.read_to_string(&mut reply).unwrap();
        assert!(reply.contains("\"status\":\"done\""), "{reply}");
        server.join().unwrap();
    }
}
