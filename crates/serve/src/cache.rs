//! Content-addressed result cache.
//!
//! Keys are [`SimRequest::fingerprint`](crate::SimRequest::fingerprint)
//! values — a canonical hash of every result-determining field — so two
//! requests that merely spell their JSON differently (field order, workload
//! name case, a deadline) share one entry. Values are complete
//! [`SimResponse`]s; a hit returns a clone that compares exactly equal to
//! the cold run it memoizes (simulation is deterministic, so memoization is
//! semantically invisible). Only `Done` responses are cached: timeouts
//! depend on wall-clock circumstances and errors are cheap to recompute.
//!
//! Eviction is least-recently-used via a monotone touch tick, and the
//! hit/miss/eviction counters export into the `ipim-trace`
//! [`MetricsRegistry`] under `serve/cache/...`.

use std::collections::HashMap;

use ipim_trace::MetricsRegistry;

use crate::response::SimResponse;

struct Entry {
    response: SimResponse,
    touched: u64,
}

/// An LRU result cache with observable counters.
pub struct ResultCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<u64, Entry>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ResultCache {
    /// Creates a cache holding at most `capacity` responses. A capacity of
    /// 0 disables caching (every lookup misses, nothing is stored).
    pub fn new(capacity: usize) -> Self {
        Self { capacity, tick: 0, entries: HashMap::new(), hits: 0, misses: 0, evictions: 0 }
    }

    /// Looks up `fingerprint`, counting a hit or miss and refreshing
    /// recency on hit.
    pub fn lookup(&mut self, fingerprint: u64) -> Option<SimResponse> {
        self.tick += 1;
        match self.entries.get_mut(&fingerprint) {
            Some(e) => {
                e.touched = self.tick;
                self.hits += 1;
                Some(e.response.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores a `Done` response under `fingerprint`, evicting the
    /// least-recently-used entry if the cache is full. Non-`Done` responses
    /// and a zero capacity make this a no-op.
    pub fn insert(&mut self, fingerprint: u64, response: &SimResponse) {
        if self.capacity == 0 || !response.is_done() || self.entries.contains_key(&fingerprint) {
            return;
        }
        if self.entries.len() >= self.capacity {
            if let Some(&lru) = self.entries.iter().min_by_key(|(_, e)| e.touched).map(|(k, _)| k) {
                self.entries.remove(&lru);
                self.evictions += 1;
            }
        }
        self.tick += 1;
        self.entries.insert(fingerprint, Entry { response: response.clone(), touched: self.tick });
    }

    /// Cached responses right now.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups that returned a cached response.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries discarded to make room.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Registers the cache counters under `serve/cache/...`.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry) {
        reg.counter_add("serve/cache/hits", self.hits);
        reg.counter_add("serve/cache/misses", self.misses);
        reg.counter_add("serve/cache/evictions", self.evictions);
        reg.gauge_set("serve/cache/entries", self.entries.len() as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::response::{DoneResponse, TimeoutKind};
    use ipim_core::frontend::Image;
    use ipim_core::ExecutionReport;

    /// A structurally valid `Done` response distinguishable by `tag`.
    fn done(tag: u64) -> SimResponse {
        let report = ExecutionReport {
            cycles: tag,
            stats: Default::default(),
            bank_stats: Default::default(),
            locality: Default::default(),
            energy: Default::default(),
            vaults: 1,
            pes: 32,
        };
        SimResponse::Done(Box::new(DoneResponse {
            workload: "T".into(),
            fingerprint: tag,
            cycles: tag,
            issued: 0,
            energy_pj: 0.0,
            report,
            output: Image::splat(1, 1, tag as f32),
            output_hash: tag,
            fidelity: ipim_core::Fidelity::BitExact,
        }))
    }

    #[test]
    fn hit_returns_the_stored_response_exactly() {
        let mut c = ResultCache::new(4);
        c.insert(7, &done(7));
        assert_eq!(c.lookup(7), Some(done(7)));
        assert_eq!((c.hits(), c.misses()), (1, 0));
        assert_eq!(c.lookup(8), None);
        assert_eq!((c.hits(), c.misses()), (1, 1));
    }

    #[test]
    fn eviction_is_least_recently_used() {
        let mut c = ResultCache::new(2);
        c.insert(1, &done(1));
        c.insert(2, &done(2));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(c.lookup(1).is_some());
        c.insert(3, &done(3));
        assert_eq!(c.evictions(), 1);
        assert!(c.lookup(1).is_some(), "recently used survives");
        assert!(c.lookup(2).is_none(), "LRU entry evicted");
        assert!(c.lookup(3).is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn non_done_responses_are_not_cached() {
        let mut c = ResultCache::new(4);
        c.insert(1, &SimResponse::Error("bad".into()));
        c.insert(2, &SimResponse::Timeout(TimeoutKind::DeadlineBeforeStart));
        assert!(c.is_empty(), "errors and timeouts are never memoized");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = ResultCache::new(0);
        c.insert(1, &done(1));
        assert!(c.is_empty());
        assert_eq!(c.lookup(1), None);
    }

    #[test]
    fn metrics_export_under_serve_cache() {
        let mut c = ResultCache::new(2);
        c.lookup(9);
        c.insert(9, &done(9));
        c.lookup(9);
        let mut reg = MetricsRegistry::default();
        c.export_metrics(&mut reg);
        assert_eq!(reg.counter("serve/cache/misses"), 1);
        assert_eq!(reg.counter("serve/cache/hits"), 1);
        assert!(reg.get("serve/cache/entries").is_some());
    }
}
