//! The wire-level job description and its canonical identity.
//!
//! A [`SimRequest`] names everything that determines a simulation's result:
//! the Table II workload, the image scale, the machine shape, the cycle
//! engine, the compiler options and the cycle budget. Deliberately *not*
//! part of the identity: the wall-clock deadline, which changes when an
//! answer stops being useful but never what the answer is — so it is
//! excluded from [`SimRequest::canonical_key`] and two requests differing
//! only in deadline share one cache entry.

use ipim_core::{
    workload_by_name, CompileOptions, ComputeRootPolicy, Engine, MachineConfig, Placement,
    RegAllocPolicy, ScheduleOverride, Session, Workload, WorkloadScale,
};
use ipim_trace::json;

/// One simulation job, as plain data that crosses threads and the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRequest {
    /// Table II workload name (case-insensitive lookup).
    pub workload: String,
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
    /// Cubes in the simulated machine (default 1). A multi-cube request
    /// tiles its image across all `cubes × vaults` vaults, with cross-cube
    /// traffic crossing the SERDES links (paper Sec. IV-E) — the paper's
    /// 8-cube / 8K-image regime. Result-determining, so part of the cache
    /// identity whenever it departs from the single-cube default.
    pub cubes: usize,
    /// Vaults per cube.
    pub vaults: usize,
    /// Cycle engine: `SkipAhead` (default), `Legacy`, or `Analytic` —
    /// the prediction tier, which answers cost/admission questions from
    /// the model alone (the response carries `fidelity:"approximate"`).
    pub engine: Engine,
    /// Register-allocation policy (`Max` = the paper's `opt`).
    pub reg_alloc: RegAllocPolicy,
    /// Run Algorithm 1 instruction reordering.
    pub reorder: bool,
    /// Add memory-order-enforcement edges before reordering.
    pub memory_order: bool,
    /// Simulation cycle budget; exhausting it yields a `Timeout` response.
    pub max_cycles: u64,
    /// Schedule override applied over the workload's hand-written mapping
    /// (`ScheduleOverride::default()` = keep it). Result-determining, so
    /// part of the cache identity whenever non-empty.
    pub schedule: ScheduleOverride,
    /// Where the compute logic sits: `NearBank` (iPIM, the default) or
    /// `BaseDie` (the paper's PonB baseline, Sec. VII-C1) — what the
    /// benchmark-matrix `ponb` backend selects. Result-determining, so
    /// part of the cache identity whenever it departs from the near-bank
    /// default (the default is invisible on the wire and in the canonical
    /// key, keeping every pre-existing fingerprint unchanged).
    pub placement: Placement,
    /// Wall-clock deadline in milliseconds from admission (`None` = no
    /// deadline). Not part of the cache identity.
    pub deadline_ms: Option<u64>,
}

impl Default for SimRequest {
    fn default() -> Self {
        Self {
            workload: "Brighten".to_string(),
            width: 64,
            height: 64,
            cubes: 1,
            vaults: 1,
            engine: Engine::SkipAhead,
            reg_alloc: RegAllocPolicy::Max,
            reorder: true,
            memory_order: true,
            max_cycles: 2_000_000_000,
            schedule: ScheduleOverride::default(),
            placement: Placement::NearBank,
            deadline_ms: None,
        }
    }
}

impl SimRequest {
    /// A request for `workload` at `width`×`height` with every other field
    /// at its default.
    pub fn named(workload: &str, width: u32, height: u32) -> Self {
        Self { workload: workload.to_string(), width, height, ..Self::default() }
    }

    /// The compiler options the request selects.
    pub fn options(&self) -> CompileOptions {
        CompileOptions {
            reg_alloc: self.reg_alloc,
            reorder: self.reorder,
            memory_order: self.memory_order,
        }
    }

    /// The machine configuration the request selects: `cubes` cubes of
    /// `vaults` vaults each (the single-cube case is exactly the old
    /// [`MachineConfig::vault_slice`] shape).
    pub fn machine_config(&self) -> MachineConfig {
        MachineConfig {
            engine: self.engine,
            cubes: self.cubes,
            placement: self.placement,
            ..MachineConfig::vault_slice(self.vaults)
        }
    }

    /// Instantiates the workload and a session for it.
    ///
    /// # Errors
    ///
    /// Returns a message for unknown workload names or invalid machine
    /// shapes.
    pub fn instantiate(&self) -> Result<(Session, Workload), String> {
        let config = self.machine_config();
        config.validate()?;
        let scale = WorkloadScale { width: self.width, height: self.height };
        let workload = workload_by_name(&self.workload, scale)
            .ok_or_else(|| format!("unknown workload {:?}", self.workload))?;
        let workload = if self.schedule.is_empty() {
            workload
        } else {
            workload.with_override(&self.schedule)?
        };
        Ok((Session::for_worker(&config, &self.options()), workload))
    }

    /// Canonical textual identity: every result-determining field in one
    /// fixed order. Field order in the incoming JSON, the deadline, and
    /// workload-name case never change this string. A schedule override is
    /// result-determining, so it appends its canonical rendering — the
    /// *empty* override appends nothing, keeping override-free requests'
    /// keys (and fingerprints) exactly as they were. The cube count follows
    /// the same rule: the single-cube default appends nothing, so every
    /// pre-multi-cube fingerprint is unchanged.
    pub fn canonical_key(&self) -> String {
        let cubes = if self.cubes == 1 { String::new() } else { format!(";cubes={}", self.cubes) };
        let schedule = if self.schedule.is_empty() {
            String::new()
        } else {
            format!(";schedule={}", self.schedule)
        };
        let placement = if self.placement == Placement::NearBank {
            String::new()
        } else {
            format!(";placement={}", placement_name(self.placement))
        };
        format!(
            "workload={};width={};height={};vaults={};engine={};reg_alloc={};reorder={};\
             memory_order={};max_cycles={}{cubes}{schedule}{placement}",
            self.workload.to_ascii_lowercase(),
            self.width,
            self.height,
            self.vaults,
            engine_name(self.engine),
            reg_alloc_name(self.reg_alloc),
            self.reorder,
            self.memory_order,
            self.max_cycles,
        )
    }

    /// 64-bit FNV-1a of [`canonical_key`](Self::canonical_key) — the result
    /// cache's key.
    pub fn fingerprint(&self) -> u64 {
        fnv1a(self.canonical_key().as_bytes())
    }

    /// Renders the request as a single-line JSON object (canonical field
    /// order), the ndjson wire format `ipim_served` accepts.
    pub fn to_json_string(&self) -> String {
        let cubes =
            if self.cubes == 1 { String::new() } else { format!(",\"cubes\":{}", self.cubes) };
        let schedule = if self.schedule.is_empty() {
            String::new()
        } else {
            format!(",\"schedule\":{}", schedule_json(&self.schedule))
        };
        let placement = if self.placement == Placement::NearBank {
            String::new()
        } else {
            format!(",\"placement\":\"{}\"", placement_name(self.placement))
        };
        let deadline =
            self.deadline_ms.map_or(String::new(), |ms| format!(",\"deadline_ms\":{ms}"));
        format!(
            "{{\"workload\":\"{}\",\"width\":{},\"height\":{},\"vaults\":{},\
             \"engine\":\"{}\",\"reg_alloc\":\"{}\",\"reorder\":{},\"memory_order\":{},\
             \"max_cycles\":{}{cubes}{schedule}{placement}{deadline}}}",
            json_escape(&self.workload),
            self.width,
            self.height,
            self.vaults,
            engine_name(self.engine),
            reg_alloc_name(self.reg_alloc),
            self.reorder,
            self.memory_order,
            self.max_cycles,
        )
    }

    /// Parses a request from one parsed JSON object. Missing optional
    /// fields fall back to [`SimRequest::default`]; `workload` is required.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field.
    pub fn from_json(v: &json::Value) -> Result<Self, String> {
        let d = Self::default();
        let workload = v
            .get("workload")
            .and_then(json::Value::as_str)
            .ok_or("request needs a string \"workload\" field")?
            .to_string();
        Ok(Self {
            workload,
            width: get_u64(v, "width", d.width as u64)? as u32,
            height: get_u64(v, "height", d.height as u64)? as u32,
            cubes: get_u64(v, "cubes", d.cubes as u64)? as usize,
            vaults: get_u64(v, "vaults", d.vaults as u64)? as usize,
            engine: match v.get("engine").map(|e| e.as_str().ok_or("engine must be a string")) {
                None => d.engine,
                Some(s) => parse_engine(s?)?,
            },
            reg_alloc: match v
                .get("reg_alloc")
                .map(|e| e.as_str().ok_or("reg_alloc must be a string"))
            {
                None => d.reg_alloc,
                Some(s) => parse_reg_alloc(s?)?,
            },
            reorder: get_bool(v, "reorder", d.reorder)?,
            memory_order: get_bool(v, "memory_order", d.memory_order)?,
            max_cycles: get_u64(v, "max_cycles", d.max_cycles)?,
            schedule: match v.get("schedule") {
                None | Some(json::Value::Null) => ScheduleOverride::default(),
                Some(s) => parse_schedule(s)?,
            },
            placement: match v
                .get("placement")
                .map(|p| p.as_str().ok_or("placement must be a string"))
            {
                None => d.placement,
                Some(s) => parse_placement(s?)?,
            },
            deadline_ms: match v.get("deadline_ms") {
                None | Some(json::Value::Null) => None,
                Some(x) => Some(x.as_f64().ok_or("deadline_ms must be a number")?.max(0.0) as u64),
            },
        })
    }

    /// Parses a request from one ndjson line.
    ///
    /// # Errors
    ///
    /// Returns a message for malformed JSON or field errors.
    pub fn from_json_str(line: &str) -> Result<Self, String> {
        Self::from_json(&json::parse(line)?)
    }
}

fn engine_name(e: Engine) -> &'static str {
    match e {
        Engine::Legacy => "legacy",
        Engine::SkipAhead => "skip_ahead",
        Engine::Analytic => "analytic",
    }
}

fn parse_engine(s: &str) -> Result<Engine, String> {
    match s {
        "legacy" => Ok(Engine::Legacy),
        "skip_ahead" => Ok(Engine::SkipAhead),
        "analytic" => Ok(Engine::Analytic),
        other => Err(format!("unknown engine {other:?} (legacy | skip_ahead | analytic)")),
    }
}

fn placement_name(p: Placement) -> &'static str {
    match p {
        Placement::NearBank => "near_bank",
        Placement::BaseDie => "base_die",
    }
}

fn parse_placement(s: &str) -> Result<Placement, String> {
    match s {
        "near_bank" => Ok(Placement::NearBank),
        "base_die" => Ok(Placement::BaseDie),
        other => Err(format!("unknown placement {other:?} (near_bank | base_die)")),
    }
}

fn reg_alloc_name(p: RegAllocPolicy) -> &'static str {
    match p {
        RegAllocPolicy::Min => "min",
        RegAllocPolicy::Max => "max",
    }
}

fn parse_reg_alloc(s: &str) -> Result<RegAllocPolicy, String> {
    match s {
        "min" => Ok(RegAllocPolicy::Min),
        "max" => Ok(RegAllocPolicy::Max),
        other => Err(format!("unknown reg_alloc {other:?} (min | max)")),
    }
}

/// Renders a (non-empty) override as its nested JSON object, only the set
/// knobs, in canonical field order.
fn schedule_json(s: &ScheduleOverride) -> String {
    let mut fields = Vec::new();
    if let Some((w, h)) = s.tile {
        fields.push(format!("\"tile_w\":{w},\"tile_h\":{h}"));
    }
    if let Some(p) = s.load_pgsm {
        fields.push(format!("\"load_pgsm\":{p}"));
    }
    if let Some(v) = s.vectorize {
        fields.push(format!("\"vectorize\":{v}"));
    }
    if s.compute_root != ComputeRootPolicy::Keep {
        fields.push(format!("\"compute_root\":\"{}\"", s.compute_root.name()));
    }
    format!("{{{}}}", fields.join(","))
}

/// Parses the optional nested `"schedule"` object: `tile_w`/`tile_h` (both
/// or neither), `load_pgsm`, `vectorize`, `compute_root`.
fn parse_schedule(v: &json::Value) -> Result<ScheduleOverride, String> {
    let opt_u32 = |key: &str| -> Result<Option<u32>, String> {
        match v.get(key) {
            None | Some(json::Value::Null) => Ok(None),
            Some(x) => {
                let n = x.as_f64().ok_or_else(|| format!("schedule.{key} must be a number"))?;
                if n < 1.0 || n.fract() != 0.0 || n > u32::MAX as f64 {
                    return Err(format!("schedule.{key} must be a positive integer, got {n}"));
                }
                Ok(Some(n as u32))
            }
        }
    };
    let tile = match (opt_u32("tile_w")?, opt_u32("tile_h")?) {
        (Some(w), Some(h)) => Some((w, h)),
        (None, None) => None,
        _ => return Err("schedule needs both tile_w and tile_h (or neither)".to_string()),
    };
    let load_pgsm = match v.get("load_pgsm") {
        None | Some(json::Value::Null) => None,
        Some(json::Value::Bool(b)) => Some(*b),
        Some(_) => return Err("schedule.load_pgsm must be a boolean".to_string()),
    };
    let compute_root = match v.get("compute_root") {
        None | Some(json::Value::Null) => ComputeRootPolicy::Keep,
        Some(x) => {
            ComputeRootPolicy::parse(x.as_str().ok_or("schedule.compute_root must be a string")?)?
        }
    };
    Ok(ScheduleOverride { tile, load_pgsm, vectorize: opt_u32("vectorize")?, compute_root })
}

fn get_u64(v: &json::Value, key: &str, default: u64) -> Result<u64, String> {
    match v.get(key) {
        None => Ok(default),
        Some(x) => {
            let n = x.as_f64().ok_or_else(|| format!("{key} must be a number"))?;
            if n < 0.0 || n.fract() != 0.0 {
                return Err(format!("{key} must be a non-negative integer, got {n}"));
            }
            Ok(n as u64)
        }
    }
}

fn get_bool(v: &json::Value, key: &str, default: bool) -> Result<bool, String> {
    match v.get(key) {
        None => Ok(default),
        Some(json::Value::Bool(b)) => Ok(*b),
        Some(_) => Err(format!("{key} must be a boolean")),
    }
}

/// 64-bit FNV-1a: tiny, dependency-free, and stable across platforms —
/// exactly what a content-addressed cache key needs.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Escapes a string for a JSON literal (the subset our own field values
/// need; full unescaping lives in `ipim_trace::json`).
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip_preserves_identity() {
        let req = SimRequest {
            workload: "Blur".into(),
            width: 128,
            height: 96,
            cubes: 2,
            vaults: 2,
            engine: Engine::Legacy,
            reg_alloc: RegAllocPolicy::Min,
            reorder: false,
            memory_order: true,
            max_cycles: 123_456,
            deadline_ms: Some(2500),
            schedule: ScheduleOverride::default(),
            placement: Placement::BaseDie,
        };
        let back = SimRequest::from_json_str(&req.to_json_string()).unwrap();
        assert_eq!(req, back);
        assert_eq!(req.fingerprint(), back.fingerprint());
    }

    #[test]
    fn field_order_does_not_change_the_fingerprint() {
        let a = SimRequest::from_json_str(
            r#"{"workload":"Blur","width":64,"height":64,"max_cycles":1000}"#,
        )
        .unwrap();
        let b = SimRequest::from_json_str(
            r#"{"max_cycles":1000,"height":64,"width":64,"workload":"Blur"}"#,
        )
        .unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn deadline_and_name_case_are_not_identity() {
        let mut a = SimRequest::named("Blur", 64, 64);
        let mut b = SimRequest::named("blur", 64, 64);
        a.deadline_ms = Some(10);
        b.deadline_ms = None;
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn result_determining_fields_are_identity() {
        let base = SimRequest::named("Blur", 64, 64);
        for other in [
            SimRequest { width: 128, ..base.clone() },
            SimRequest { cubes: 2, ..base.clone() },
            SimRequest { vaults: 2, ..base.clone() },
            SimRequest { engine: Engine::Legacy, ..base.clone() },
            SimRequest { reg_alloc: RegAllocPolicy::Min, ..base.clone() },
            SimRequest { reorder: false, ..base.clone() },
            SimRequest { max_cycles: 1, ..base.clone() },
            SimRequest { placement: Placement::BaseDie, ..base.clone() },
        ] {
            assert_ne!(base.fingerprint(), other.fingerprint(), "{other:?}");
        }
    }

    #[test]
    fn missing_workload_is_rejected() {
        assert!(SimRequest::from_json_str(r#"{"width":64}"#).is_err());
        assert!(SimRequest::from_json_str("not json").is_err());
        assert!(SimRequest::from_json_str(r#"{"workload":"Blur","width":-3}"#).is_err());
        assert!(SimRequest::from_json_str(r#"{"workload":"Blur","engine":"warp"}"#).is_err());
        assert!(SimRequest::from_json_str(r#"{"workload":"Blur","reorder":"yes"}"#).is_err());
    }

    #[test]
    fn instantiate_rejects_unknown_workloads() {
        assert!(SimRequest::named("NoSuchKernel", 64, 64).instantiate().is_err());
        let (_, w) = SimRequest::named("brighten", 64, 64).instantiate().unwrap();
        assert_eq!(w.name, "Brighten");
    }

    #[test]
    fn schedule_override_round_trips_and_hashes() {
        let mut req = SimRequest::named("Blur", 64, 64);
        let base_fp = req.fingerprint();
        req.schedule = ScheduleOverride {
            tile: Some((16, 8)),
            load_pgsm: Some(true),
            vectorize: None,
            compute_root: ComputeRootPolicy::All,
        };
        let back = SimRequest::from_json_str(&req.to_json_string()).unwrap();
        assert_eq!(req, back);
        assert_ne!(req.fingerprint(), base_fp, "override must be part of the identity");
        assert!(req.canonical_key().contains("schedule=tile=16x8,pgsm=on,root=all"));

        // The empty override is the identity: explicit `{}` hashes like no
        // schedule field at all.
        let empty = SimRequest::from_json_str(r#"{"workload":"Blur","schedule":{}}"#).unwrap();
        assert_eq!(empty.fingerprint(), SimRequest::named("Blur", 64, 64).fingerprint());

        // Malformed overrides are named-field errors.
        assert!(
            SimRequest::from_json_str(r#"{"workload":"Blur","schedule":{"tile_w":8}}"#).is_err()
        );
        assert!(SimRequest::from_json_str(
            r#"{"workload":"Blur","schedule":{"compute_root":"sometimes"}}"#
        )
        .is_err());
        assert!(SimRequest::from_json_str(
            r#"{"workload":"Blur","schedule":{"tile_w":0,"tile_h":8}}"#
        )
        .is_err());
    }

    #[test]
    fn schedule_override_reaches_the_workload() {
        let mut req = SimRequest::named("Blur", 64, 64);
        req.schedule = ScheduleOverride { tile: Some((16, 4)), ..ScheduleOverride::default() };
        let (_, w) = req.instantiate().unwrap();
        assert!(w.pipeline.schedule_knobs().iter().all(|(_, s)| s.tile == (16, 4)));
        // An override the frontend rejects degrades to an instantiate error.
        req.schedule = ScheduleOverride { vectorize: Some(3), ..ScheduleOverride::default() };
        assert!(req.instantiate().is_err());
    }

    #[test]
    fn single_cube_keeps_the_historical_fingerprint() {
        // `cubes` follows the schedule-override precedent: the default is
        // invisible on the wire and in the canonical key, so every
        // pre-multi-cube fingerprint (and cache entry) survives.
        let base = SimRequest::named("Blur", 64, 64);
        assert!(!base.canonical_key().contains("cubes"));
        assert!(!base.to_json_string().contains("cubes"));
        let explicit = SimRequest::from_json_str(r#"{"workload":"Blur","cubes":1}"#).unwrap();
        assert_eq!(explicit.fingerprint(), base.fingerprint());

        let multi = SimRequest { cubes: 2, ..base.clone() };
        assert!(multi.canonical_key().contains(";cubes=2"));
        let back = SimRequest::from_json_str(&multi.to_json_string()).unwrap();
        assert_eq!(multi, back);
        let config = multi.machine_config();
        assert_eq!(config.cubes, 2);
        assert_eq!(config.total_vaults(), 2);
    }

    #[test]
    fn near_bank_keeps_the_historical_fingerprint() {
        // `placement` follows the cubes/schedule precedent: the near-bank
        // default is invisible on the wire and in the canonical key, so
        // every pre-PonB-backend fingerprint (and cache entry) survives.
        let base = SimRequest::named("Blur", 64, 64);
        assert!(!base.canonical_key().contains("placement"));
        assert!(!base.to_json_string().contains("placement"));
        let explicit =
            SimRequest::from_json_str(r#"{"workload":"Blur","placement":"near_bank"}"#).unwrap();
        assert_eq!(explicit.fingerprint(), base.fingerprint());

        let ponb = SimRequest { placement: Placement::BaseDie, ..base.clone() };
        assert!(ponb.canonical_key().contains(";placement=base_die"));
        let back = SimRequest::from_json_str(&ponb.to_json_string()).unwrap();
        assert_eq!(ponb, back);
        assert_eq!(ponb.machine_config().placement, Placement::BaseDie);
        assert!(
            SimRequest::from_json_str(r#"{"workload":"Blur","placement":"on_the_moon"}"#).is_err()
        );
    }

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
