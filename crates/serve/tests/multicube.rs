//! Multi-cube serving: `SimRequest.cubes > 1` tiles a large image across
//! `cubes × vaults` vaults, with cross-cube traffic riding the SERDES
//! links of the arch model. These tests hold the acceptance bar for the
//! distributed tier's backend side: a ≥2-cube run of a large image
//! verifies against the golden interpreter, demonstrably crosses the
//! SERDES boundary, and stays bit-identical across engines.

use ipim_core::experiments::verify_output_against_reference;
use ipim_core::Engine;
use ipim_serve::{PoolConfig, ServePool, SimRequest, SimResponse};

fn run(req: SimRequest) -> ipim_serve::DoneResponse {
    let pool = ServePool::start(&PoolConfig { workers: 1, queue_depth: 4, cache_capacity: 0 });
    let resp = pool.submit(req).wait();
    pool.shutdown();
    match resp {
        SimResponse::Done(d) => *d,
        other => panic!("expected done, got {other:?}"),
    }
}

#[test]
fn two_cube_large_image_verifies_against_reference() {
    let req = SimRequest { cubes: 2, vaults: 2, ..SimRequest::named("Blur", 128, 128) };
    let (_, workload) = req.instantiate().expect("valid multi-cube request");
    let done = run(req);
    assert_eq!(done.report.vaults, 4, "2 cubes × 2 vaults tile the image");
    verify_output_against_reference(&workload, &done.output);
}

#[test]
fn cross_cube_traffic_rides_the_serdes_links() {
    // Histogram's reduction tree spans all vaults, so with 2 cubes part
    // of it must cross the cube boundary.
    let single = run(SimRequest { cubes: 1, vaults: 2, ..SimRequest::named("Histogram", 64, 64) });
    let multi = run(SimRequest { cubes: 2, vaults: 1, ..SimRequest::named("Histogram", 64, 64) });
    assert_eq!(single.report.energy.serdes_pj, 0.0, "one cube has nothing to serialize");
    assert!(
        multi.report.energy.serdes_pj > 0.0,
        "2-cube run must spend SERDES energy: {:?}",
        multi.report.energy
    );
}

#[test]
fn engines_agree_bit_for_bit_at_multi_cube() {
    let base = SimRequest { cubes: 2, vaults: 2, ..SimRequest::named("Shift", 128, 64) };
    let legacy = run(SimRequest { engine: Engine::Legacy, ..base.clone() });
    let skip = run(SimRequest { engine: Engine::SkipAhead, ..base });
    assert_eq!(legacy.output_hash, skip.output_hash, "outputs must match bit-for-bit");
    assert_eq!(legacy.report, skip.report, "reports must match exactly across engines");
}
