//! Program-cache identity properties (simkit harness).
//!
//! Two contracts guard the compiled-program cache:
//!
//! 1. **Hit transparency** — a warm compile returns the same
//!    `Arc<CompiledProgram>` as the cold pass, its SIMB program compares
//!    bit-identical (`ipim_isa::Program` is `PartialEq`) to a fresh
//!    cache-bypassing `compile_only`, and a warm `run_workload` produces a
//!    `RunOutcome` (pixels, cycles, stats) exactly equal to the cold run.
//! 2. **Canonical keys** — `program_key` depends only on pipeline content,
//!    the compile-relevant machine shape and the compiler options: two
//!    independent instantiations of the same request agree, the
//!    simulation-only engine choice never perturbs the key, while changing
//!    the workload, its scale, the schedule override or the vault count
//!    must.

use ipim_core::{program_key, Engine, ProgramCache, ScheduleOverride};
use ipim_serve::SimRequest;
use ipim_simkit::check_with;
use ipim_simkit::prop::{tuple3, usize_in, Config};

/// Workloads × scales that are legal on every 1–2-vault slice (keeps the
/// generator inside the space where `instantiate` and compilation succeed).
const NAMES: [&str; 5] = ["Brighten", "Blur", "Shift", "StencilChain", "Histogram"];
const SIZES: [u32; 2] = [64, 128];

fn request(wi: usize, si: usize, vaults: usize) -> SimRequest {
    SimRequest {
        workload: NAMES[wi].to_string(),
        width: SIZES[si],
        height: SIZES[si],
        vaults,
        ..SimRequest::default()
    }
}

fn gen_point() -> ipim_simkit::prop::Gen<(usize, usize, usize)> {
    tuple3(usize_in(0, NAMES.len() - 1), usize_in(0, SIZES.len() - 1), usize_in(1, 2))
}

#[test]
fn prop_same_key_shares_one_program_bit_identical_to_cold() {
    let cfg = Config { cases: 8, ..Config::default() };
    check_with(cfg, "same_key_shares_program", &gen_point(), |&(wi, si, vaults)| {
        let (session, workload) = request(wi, si, vaults).instantiate().expect("instantiate");
        let cache = ProgramCache::new(8);
        let cold = cache
            .compile_pipeline(&workload.pipeline, session.config(), session.options())
            .expect("cold compile");
        let warm = cache
            .compile_pipeline(&workload.pipeline, session.config(), session.options())
            .expect("warm compile");
        // One program object, not an equal copy.
        assert!(std::sync::Arc::ptr_eq(&cold, &warm), "warm compile must share the cold Arc");
        // And the cached lowering is bit-identical to a cache-bypassing one.
        let fresh = session.compile_only(&workload.pipeline).expect("fresh compile");
        assert_eq!(
            fresh.program, cold.program,
            "cached SIMB program must equal a fresh lowering bit-for-bit"
        );
        assert_eq!(cache.stats(), (1, 1, 0), "(hits, misses, evictions)");
    });
}

#[test]
fn warm_run_outcome_is_bit_identical_to_cold() {
    let (session, workload) = request(1, 0, 1).instantiate().expect("instantiate");
    let cold = session.run_workload(&workload, 100_000_000).expect("cold run");
    // The second run resolves its program through the cache (the machine
    // itself is rebuilt fresh both times).
    let warm = session.run_workload(&workload, 100_000_000).expect("warm run");
    assert!(
        std::sync::Arc::ptr_eq(&cold.compiled, &warm.compiled),
        "warm run must reuse the cold run's program"
    );
    assert_eq!(cold.output.data(), warm.output.data(), "pixels must match exactly");
    assert_eq!(cold.report.cycles, warm.report.cycles);
    assert_eq!(cold.report.stats.issued, warm.report.stats.issued);
}

#[test]
fn prop_program_key_is_canonical_and_sensitive() {
    let cfg = Config { cases: 8, ..Config::default() };
    check_with(cfg, "program_key_canonical", &gen_point(), |&(wi, si, vaults)| {
        let req = request(wi, si, vaults);
        let (s1, w1) = req.instantiate().expect("instantiate");
        let (s2, w2) = req.instantiate().expect("instantiate again");
        let base = program_key(&w1.pipeline, s1.config(), s1.options());
        // Canonical: an independent instantiation of the same request
        // derives the identical key.
        assert_eq!(
            base,
            program_key(&w2.pipeline, s2.config(), s2.options()),
            "two instantiations of one request must agree"
        );
        // The engine is simulation-only: flipping it must not perturb the
        // key (mirrors the result cache excluding the deadline).
        let mut other_engine = s1.config().clone();
        other_engine.engine = match other_engine.engine {
            Engine::Legacy => Engine::SkipAhead,
            _ => Engine::Legacy,
        };
        assert_eq!(
            base,
            program_key(&w1.pipeline, &other_engine, s1.options()),
            "engine choice must not leak into the program key"
        );
        // Sensitivity: workload content, scale, schedule and machine shape
        // each move the key.
        let other_wi = (wi + 1) % NAMES.len();
        let (s3, w3) = request(other_wi, si, vaults).instantiate().expect("other workload");
        assert_ne!(
            base,
            program_key(&w3.pipeline, s3.config(), s3.options()),
            "{} and {} must not collide",
            NAMES[wi],
            NAMES[other_wi]
        );
        let (s4, w4) = request(wi, (si + 1) % SIZES.len(), vaults).instantiate().expect("scale");
        assert_ne!(
            base,
            program_key(&w4.pipeline, s4.config(), s4.options()),
            "scale change must move the key"
        );
        let retiled = w1
            .with_override(&ScheduleOverride {
                tile: Some((8, 8)),
                load_pgsm: Some(false),
                vectorize: Some(1),
                compute_root: Default::default(),
            })
            .expect("8x8 retile is legal at these sizes");
        assert_ne!(
            base,
            program_key(&retiled.pipeline, s1.config(), s1.options()),
            "schedule override must move the key"
        );
        let (s5, w5) = request(wi, si, vaults % 2 + 1).instantiate().expect("other vaults");
        assert_ne!(
            base,
            program_key(&w5.pipeline, s5.config(), s5.options()),
            "vault-count change must move the key"
        );
    });
}
