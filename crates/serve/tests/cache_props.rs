//! Cache-identity properties (simkit harness).
//!
//! Two contracts guard the result cache:
//!
//! 1. **Canonical hashing** — a request's fingerprint depends only on its
//!    result-determining field *values*, never on how the JSON spelled
//!    them: field order, workload-name case, and the deadline must not
//!    perturb it, while changing any identity field must.
//! 2. **Hit transparency** — a cache hit returns a `SimResponse` that
//!    compares exactly equal (counters, f64 energy terms, output pixels)
//!    to the cold run it memoized, and both equal the serial
//!    `Session::run_workload` path.

use ipim_serve::{
    ComputeRootPolicy, PoolConfig, ScheduleOverride, ServePool, SimRequest, SimResponse,
};
use ipim_simkit::prop::{bool_any, tuple4, tuple6, u32_in, u64_any, usize_in, Config, Gen};
use ipim_simkit::{check, check_with, Rng};

/// A generator over wire-shaped requests: workload index, dimensions,
/// vaults, cycle budget, deadline presence.
fn gen_request() -> Gen<SimRequest> {
    const NAMES: [&str; 10] = [
        "Brighten",
        "Blur",
        "Downsample",
        "Upsample",
        "Shift",
        "Histogram",
        "BilateralGrid",
        "Interpolate",
        "LocalLaplacian",
        "StencilChain",
    ];
    tuple6(
        usize_in(0, NAMES.len() - 1),
        u32_in(16, 512),
        u32_in(16, 512),
        usize_in(1, 4),
        bool_any(),
        // The ndjson layer carries numbers as f64, so stay within the
        // exactly-representable integer range.
        u64_any().map(|c| c % (1 << 53)),
    )
    .map(|(wi, w, h, vaults, reorder, cycles)| SimRequest {
        workload: NAMES[wi].to_string(),
        width: w,
        height: h,
        vaults,
        reorder,
        max_cycles: cycles,
        ..SimRequest::default()
    })
}

/// Renders `req` as JSON with its fields in a seed-shuffled order.
fn shuffled_json(req: &SimRequest, seed: u64) -> String {
    let mut fields = [
        format!("\"workload\":\"{}\"", req.workload),
        format!("\"width\":{}", req.width),
        format!("\"height\":{}", req.height),
        format!("\"vaults\":{}", req.vaults),
        format!("\"reorder\":{}", req.reorder),
        format!("\"max_cycles\":{}", req.max_cycles),
    ];
    // Fisher–Yates with the simkit PRNG: deterministic per seed.
    let mut rng = Rng::new(seed);
    for i in (1..fields.len()).rev() {
        let j = (rng.next_u64() % (i as u64 + 1)) as usize;
        fields.swap(i, j);
    }
    format!("{{{}}}", fields.join(","))
}

#[test]
fn prop_fingerprint_survives_field_reordering() {
    let gen = ipim_simkit::prop::tuple2(gen_request(), u64_any());
    check("fingerprint_survives_field_reordering", &gen, |(req, shuffle_seed)| {
        let reordered = SimRequest::from_json_str(&shuffled_json(req, *shuffle_seed))
            .expect("shuffled JSON parses");
        assert_eq!(reordered, *req, "parse must recover the same request");
        assert_eq!(reordered.fingerprint(), req.fingerprint());
        assert_eq!(reordered.canonical_key(), req.canonical_key());
    });
}

#[test]
fn prop_fingerprint_ignores_deadline_and_case() {
    check("fingerprint_ignores_deadline_and_case", &gen_request(), |req| {
        let mut relabeled = req.clone();
        relabeled.workload = req.workload.to_ascii_uppercase();
        relabeled.deadline_ms = Some(12_345);
        assert_eq!(relabeled.fingerprint(), req.fingerprint());
    });
}

#[test]
fn prop_identity_fields_change_the_fingerprint() {
    check("identity_fields_change_the_fingerprint", &gen_request(), |req| {
        let variants = [
            SimRequest { width: req.width + 1, ..req.clone() },
            SimRequest { vaults: req.vaults + 1, ..req.clone() },
            SimRequest { reorder: !req.reorder, ..req.clone() },
            SimRequest { max_cycles: req.max_cycles.wrapping_add(1), ..req.clone() },
        ];
        for v in variants {
            assert_ne!(v.fingerprint(), req.fingerprint(), "{v:?}");
        }
    });
}

/// A generator over schedule overrides, spanning the empty override and
/// every knob combination the tuner searches.
fn gen_override() -> Gen<ScheduleOverride> {
    tuple4(usize_in(0, 3), usize_in(0, 2), usize_in(0, 3), usize_in(0, 2)).map(|(t, p, v, r)| {
        ScheduleOverride {
            tile: [None, Some((8, 8)), Some((16, 8)), Some((32, 16))][t],
            load_pgsm: [None, Some(false), Some(true)][p],
            vectorize: [None, Some(1), Some(2), Some(4)][v],
            compute_root: [
                ComputeRootPolicy::Keep,
                ComputeRootPolicy::All,
                ComputeRootPolicy::OutputOnly,
            ][r],
        }
    })
}

#[test]
fn prop_schedule_override_is_part_of_the_cache_identity() {
    let gen = ipim_simkit::prop::tuple3(gen_request(), gen_override(), gen_override());
    check("schedule_override_is_part_of_the_cache_identity", &gen, |(req, ov_a, ov_b)| {
        let plain = req.clone();
        let a = SimRequest { schedule: *ov_a, ..req.clone() };
        let b = SimRequest { schedule: *ov_b, ..req.clone() };

        // A non-empty override must move the fingerprint; the empty one
        // must not (override-free requests keep their pre-override keys).
        if ov_a.is_empty() {
            assert_eq!(a.fingerprint(), plain.fingerprint());
        } else {
            assert_ne!(a.fingerprint(), plain.fingerprint(), "{ov_a}");
        }

        // Requests differing ONLY in the override hash apart.
        if ov_a != ov_b {
            assert_ne!(a.fingerprint(), b.fingerprint(), "{ov_a} vs {ov_b}");
            assert_ne!(a.canonical_key(), b.canonical_key());
        } else {
            assert_eq!(a.fingerprint(), b.fingerprint());
        }

        // The wire round trip preserves the override and its identity.
        let back = SimRequest::from_json_str(&a.to_json_string()).expect("wire round trip");
        assert_eq!(back, a);
        assert_eq!(back.fingerprint(), a.fingerprint());
    });
}

/// Hit transparency needs real simulations, so it runs a handful of cases
/// at 64×64 instead of the default case count.
#[test]
fn prop_cache_hits_are_bit_identical_to_cold_runs() {
    let gen = ipim_simkit::prop::tuple2(
        ipim_simkit::prop::usize_in(0, 2),
        ipim_simkit::prop::usize_in(1, 2),
    )
    .map(|(wi, vaults)| {
        let name = ["Brighten", "Blur", "Shift"][wi];
        SimRequest { vaults, ..SimRequest::named(name, 64, 64) }
    });
    check_with(
        Config { cases: 4, ..Config::default() },
        "cache_hits_are_bit_identical_to_cold_runs",
        &gen,
        |req| {
            let pool =
                ServePool::start(&PoolConfig { workers: 1, queue_depth: 2, cache_capacity: 2 });
            let cold = pool.submit(req.clone()).wait();
            let warm = pool.submit(req.clone()).wait();
            assert_eq!(cold, warm, "hit must be bit-identical to the cold run");

            // Both must also match the serial path the pool memoizes.
            let (session, workload) = req.instantiate().expect("suite workload");
            let serial = session.run_workload(&workload, req.max_cycles).expect("serial run");
            match &cold {
                SimResponse::Done(d) => {
                    assert_eq!(d.report, serial.report, "pooled report != serial report");
                    assert_eq!(d.output, serial.output, "pooled output != serial output");
                    assert_eq!(d.output_hash, ipim_serve::image_hash(&serial.output));
                }
                other => panic!("expected Done, got {other:?}"),
            }
            let metrics = pool.shutdown();
            assert_eq!(metrics.counter("serve/cache/hits"), 1);
        },
    );
}
