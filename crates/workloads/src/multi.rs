//! The four heterogeneous multi-stage benchmarks of Table II.
//!
//! Each pipeline reproduces the computation *patterns* of its namesake
//! (stage counts match Table II); where the original uses operations
//! outside the frontend subset (e.g. `exp` in local Laplacian's remap), a
//! polynomial stand-in with the same stencil/resample/gather structure is
//! used — the performance-relevant shape (arithmetic intensity, access
//! patterns, stage heterogeneity) is preserved.

use ipim_frontend::{x, y, Expr, PipelineBuilder, SourceRef};

use crate::images::{lut_gaussian, synthetic_image};
use crate::{Workload, WorkloadFamily, WorkloadScale};

/// Bilateral grid (4 stages): grid construction (2× spatial subsampling),
/// two grid blurs, and a slice stage combining an upsample of the blurred
/// grid with a data-dependent range-kernel LUT gather.
pub fn bilateral_grid(scale: WorkloadScale) -> Workload {
    let (w, h) = (scale.width, scale.height);
    let mut p = PipelineBuilder::new();
    let input = p.input("in", w, h);
    let lut = p.input("range_lut", 64, 1);

    // Stage 1: grid construction (2×2 box at half resolution).
    let grid = p.func("grid", w / 2, h / 2);
    p.define(
        grid,
        (input.at(2 * x(), 2 * y())
            + input.at(2 * x() + 1, 2 * y())
            + input.at(2 * x(), 2 * y() + 1)
            + input.at(2 * x() + 1, 2 * y() + 1))
            / 4.0,
    );
    p.schedule(grid).compute_root().ipim_tile(8, 8).load_pgsm().vectorize(4);

    // Stages 2–3: blur the grid.
    let gx = p.func("grid_blur_x", w / 2, h / 2);
    p.define(gx, (grid.at(x() - 1, y()) + grid.at(x(), y()) + grid.at(x() + 1, y())) / 3.0);
    p.schedule(gx).compute_root().ipim_tile(8, 8).load_pgsm().vectorize(4);
    let gy = p.func("grid_blur_y", w / 2, h / 2);
    p.define(gy, (gx.at(x(), y() - 1) + gx.at(x(), y()) + gx.at(x(), y() + 1)) / 3.0);
    p.schedule(gy).compute_root().ipim_tile(8, 8).load_pgsm().vectorize(4);

    // Stage 4: slice — upsample the blurred grid and blend by the
    // range-kernel weight looked up from the pixel's own value.
    let out = p.func("slice", w, h);
    let base = gy.at(x() / 2, y() / 2);
    let weight = lut.at((input.at(x(), y()) * 63.9).cast_i32(), 0);
    p.define(out, base.clone() * weight.clone() + input.at(x(), y()) * (1.0 - weight));
    p.schedule(out).compute_root().ipim_tile(8, 8).vectorize(4);

    let pipeline = p.build(out).expect("bilateral grid pipeline");
    Workload {
        name: "BilateralGrid",
        family: WorkloadFamily::Image,
        multi_stage: true,
        stages: 4,
        pipeline,
        inputs: vec![(input.id(), synthetic_image(w, h, 7)), (lut.id(), lut_gaussian(64, 0.25))],
        scale,
        flops_per_pixel: 14.0,
        gpu_bytes_per_pixel: 14.0, // fused grid mostly cached; gather traffic
        output_pixels: scale.pixels(),
    }
}

/// Builds a 2× separable downsample pair of funcs; returns the half-res
/// func.
fn down_pair(
    p: &mut PipelineBuilder,
    name: &str,
    src: SourceRef,
    w: u32,
    h: u32,
    tile: (u32, u32),
) -> SourceRef {
    let dx = p.func(&format!("{name}_x"), w / 2, h);
    p.define(dx, (src.at(2 * x(), y()) + src.at(2 * x() + 1, y())) / 2.0);
    p.schedule(dx).compute_root().ipim_tile(tile.0, tile.1).load_pgsm().vectorize(4);
    let d = p.func(name, w / 2, h / 2);
    p.define(d, (dx.at(x(), 2 * y()) + dx.at(x(), 2 * y() + 1)) / 2.0);
    p.schedule(d).compute_root().ipim_tile(tile.0, tile.1).load_pgsm().vectorize(4);
    d
}

/// Interpolate (12 stages): a 3-level pyramid of separable downsamples, a
/// coarse smooth, and two upsample-blend-smooth levels with normalization —
/// the alpha-weighted pyramid interpolation of the Halide benchmark.
pub fn interpolate(scale: WorkloadScale) -> Workload {
    let (w, h) = (scale.width, scale.height);
    let tile = (16, 16);
    let mut p = PipelineBuilder::new();
    let input = p.input("in", w, h);

    // 1: alpha pre-weighting.
    let alpha = p.func("alpha", w, h);
    p.define(alpha, input.at(x(), y()) * 0.5 + 0.25);
    p.schedule(alpha).compute_root().ipim_tile(tile.0, tile.1).vectorize(4);

    // 2–3: level 1; 4–5: level 2.
    let d1 = down_pair(&mut p, "d1", alpha, w, h, tile);
    let d2 = down_pair(&mut p, "d2", d1, w / 2, h / 2, tile);

    // 6: coarse smooth.
    let s2 = p.func("s2", w / 4, h / 4);
    p.define(s2, (d2.at(x() - 1, y()) + d2.at(x(), y()) + d2.at(x() + 1, y())) / 3.0);
    p.schedule(s2).compute_root().ipim_tile(tile.0, tile.1).load_pgsm().vectorize(4);

    // 7–8: upsample-blend into level 1, then smooth.
    let u1 = p.func("u1", w / 2, h / 2);
    p.define(u1, (s2.at(x() / 2, y() / 2) + d1.at(x(), y())) / 2.0);
    p.schedule(u1).compute_root().ipim_tile(tile.0, tile.1).vectorize(4);
    let s1 = p.func("s1", w / 2, h / 2);
    p.define(s1, (u1.at(x() - 1, y()) + u1.at(x(), y()) + u1.at(x() + 1, y())) / 3.0);
    p.schedule(s1).compute_root().ipim_tile(tile.0, tile.1).load_pgsm().vectorize(4);

    // 9–10: upsample-blend into level 0, then smooth.
    let u0 = p.func("u0", w, h);
    p.define(u0, (s1.at(x() / 2, y() / 2) + alpha.at(x(), y())) / 2.0);
    p.schedule(u0).compute_root().ipim_tile(tile.0, tile.1).vectorize(4);
    let s0 = p.func("s0", w, h);
    p.define(s0, (u0.at(x(), y() - 1) + u0.at(x(), y()) + u0.at(x(), y() + 1)) / 3.0);
    p.schedule(s0).compute_root().ipim_tile(tile.0, tile.1).load_pgsm().vectorize(4);

    // 11: normalize by the alpha weight; 12: clamp.
    let norm = p.func("norm", w, h);
    p.define(norm, s0.at(x(), y()) / (alpha.at(x(), y()) + 0.5));
    p.schedule(norm).compute_root().ipim_tile(tile.0, tile.1).vectorize(4);
    let out = p.func("out", w, h);
    p.define(out, norm.at(x(), y()).clamp(0.0, 1.0));
    p.schedule(out).compute_root().ipim_tile(tile.0, tile.1).vectorize(4);

    let pipeline = p.build(out).expect("interpolate pipeline");
    assert_eq!(pipeline.stage_count(), 12, "stage count matches Table II");
    Workload {
        name: "Interpolate",
        family: WorkloadFamily::Image,
        multi_stage: true,
        stages: 12,
        pipeline,
        inputs: vec![(input.id(), synthetic_image(w, h, 8))],
        scale,
        flops_per_pixel: 18.0,
        gpu_bytes_per_pixel: 24.0, // pyramid intermediates spill on GPU
        output_pixels: scale.pixels(),
    }
}

/// The cubic remap curve used by our local-Laplacian stand-in.
fn remap(v: Expr) -> Expr {
    let d = v.clone() - 0.5;
    v + d.clone() * 0.3 - d.clone() * d.clone() * d * 0.4
}

/// Local Laplacian (23 stages): Gaussian pyramid, per-level remap curves,
/// Laplacian bands, weighted collapse and a tone/contrast chain.
pub fn local_laplacian(scale: WorkloadScale) -> Workload {
    let (w, h) = (scale.width, scale.height);
    let tile = (16, 16);
    let mut p = PipelineBuilder::new();
    let input = p.input("in", w, h);
    let root = |p: &mut PipelineBuilder, f: SourceRef, pgsm: bool| {
        let s = p.schedule(f).compute_root().ipim_tile(tile.0, tile.1).vectorize(4);
        if pgsm {
            s.load_pgsm();
        }
    };

    // 1: remap level 0.
    let r0 = p.func("r0", w, h);
    p.define(r0, remap(input.at(x(), y())));
    root(&mut p, r0, false);
    // 2–3: pyramid level 1; 4–5: level 2.
    let g1 = down_pair(&mut p, "g1", input, w, h, tile);
    let g2 = down_pair(&mut p, "g2", g1, w / 2, h / 2, tile);
    // 6–7: remap coarser levels.
    let r1 = p.func("r1", w / 2, h / 2);
    p.define(r1, remap(g1.at(x(), y())));
    root(&mut p, r1, false);
    let r2 = p.func("r2", w / 4, h / 4);
    p.define(r2, remap(g2.at(x(), y())));
    root(&mut p, r2, false);
    // 8–9: Laplacian bands.
    let l0 = p.func("l0", w, h);
    p.define(l0, input.at(x(), y()) - g1.at(x() / 2, y() / 2));
    root(&mut p, l0, false);
    let l1 = p.func("l1", w / 2, h / 2);
    p.define(l1, g1.at(x(), y()) - g2.at(x() / 2, y() / 2));
    root(&mut p, l1, false);
    // 10–11: band weighting by the remapped images.
    let lr0 = p.func("lr0", w, h);
    p.define(lr0, l0.at(x(), y()) * (r0.at(x(), y()) * 0.5 + 0.5));
    root(&mut p, lr0, false);
    let lr1 = p.func("lr1", w / 2, h / 2);
    p.define(lr1, l1.at(x(), y()) * (r1.at(x(), y()) * 0.5 + 0.5));
    root(&mut p, lr1, false);
    // 12: coarse base.
    let base = p.func("base", w / 4, h / 4);
    p.define(base, r2.at(x(), y()) * 0.9 + 0.05);
    root(&mut p, base, false);
    // 13–14: collapse into level 1, smooth.
    let c1 = p.func("c1", w / 2, h / 2);
    p.define(c1, base.at(x() / 2, y() / 2) + lr1.at(x(), y()));
    root(&mut p, c1, false);
    let c1s = p.func("c1s", w / 2, h / 2);
    p.define(c1s, (c1.at(x() - 1, y()) + c1.at(x(), y()) + c1.at(x() + 1, y())) / 3.0);
    root(&mut p, c1s, true);
    // 15–16: collapse into level 0, smooth.
    let c0 = p.func("c0", w, h);
    p.define(c0, c1s.at(x() / 2, y() / 2) + lr0.at(x(), y()));
    root(&mut p, c0, false);
    let c0s = p.func("c0s", w, h);
    p.define(c0s, (c0.at(x(), y() - 1) + c0.at(x(), y()) + c0.at(x(), y() + 1)) / 3.0);
    root(&mut p, c0s, true);
    // 17–23: detail boost / tone chain.
    let detail = p.func("detail", w, h);
    p.define(detail, c0s.at(x(), y()) - input.at(x(), y()));
    root(&mut p, detail, false);
    let boost = p.func("boost", w, h);
    p.define(boost, input.at(x(), y()) + detail.at(x(), y()) * 0.7);
    root(&mut p, boost, false);
    let lo = p.func("clamp_lo", w, h);
    p.define(lo, boost.at(x(), y()).max(0.0));
    root(&mut p, lo, false);
    let hi = p.func("clamp_hi", w, h);
    p.define(hi, lo.at(x(), y()).min(1.0));
    root(&mut p, hi, false);
    let contrast = p.func("contrast", w, h);
    p.define(contrast, (hi.at(x(), y()) - 0.5) * 1.1 + 0.5);
    root(&mut p, contrast, false);
    let blend = p.func("blend", w, h);
    p.define(blend, (contrast.at(x(), y()) + input.at(x(), y())) * 0.5);
    root(&mut p, blend, false);
    let out = p.func("out", w, h);
    p.define(out, blend.at(x(), y()).clamp(0.0, 1.0));
    root(&mut p, out, false);

    let pipeline = p.build(out).expect("local laplacian pipeline");
    assert_eq!(pipeline.stage_count(), 23, "stage count matches Table II");
    Workload {
        name: "LocalLaplacian",
        family: WorkloadFamily::Image,
        multi_stage: true,
        stages: 23,
        pipeline,
        inputs: vec![(input.id(), synthetic_image(w, h, 9))],
        scale,
        flops_per_pixel: 40.0,
        gpu_bytes_per_pixel: 36.0,
        output_pixels: scale.pixels(),
    }
}

/// Stencil chain (32 stages): 32 chained 3×3 stencils.
pub fn stencil_chain(scale: WorkloadScale) -> Workload {
    let (w, h) = (scale.width, scale.height);
    // Large tiles bound the overlapped-halo recompute of the deep chain;
    // small images fall back to a tile whose grid still covers the 32 PEs
    // of the simulated vault slice (a fixed 16×16 fallback left e.g.
    // 64×64 with only 16 tiles — an illegal mapping).
    let legal = |tw: u32, th: u32| {
        w.is_multiple_of(tw) && h.is_multiple_of(th) && ((w / tw) * (h / th)).is_multiple_of(32)
    };
    let tile = if w >= 512 && h >= 512 {
        (64, 64)
    } else if w >= 128 && h >= 128 {
        let t = [16u32, 8, 4].into_iter().find(|&t| legal(t, t)).unwrap_or(4);
        (t, t)
    } else {
        // Below 128² the ipim-tune hill-climb (seed 0x1915) found the
        // rectangular 16×8 tile 1.75× faster than the square 8×8
        // fallback at 64×64 (3386153 → 1937208 cycles, output verified
        // against the CPU interpreter). Prefer it wherever legal; keep
        // the square ladder behind it — at 32×32 a 16×8 grid has only 8
        // tiles, and the best legal rectangle there (8×4) drifts past
        // the reference tolerance, so the 4×4 square stays the default.
        [(16u32, 8u32), (16, 16), (8, 8), (4, 4)]
            .into_iter()
            .find(|&(tw, th)| legal(tw, th))
            .unwrap_or((4, 4))
    };
    let mut p = PipelineBuilder::new();
    let input = p.input("in", w, h);
    let mut prev = input;
    let mut last = input;
    for k in 0..32 {
        let f = p.func(&format!("st{k}"), w, h);
        p.define(
            f,
            (prev.at(x() - 1, y() - 1)
                + prev.at(x(), y() - 1)
                + prev.at(x() + 1, y() - 1)
                + prev.at(x() - 1, y())
                + prev.at(x(), y())
                + prev.at(x() + 1, y())
                + prev.at(x() - 1, y() + 1)
                + prev.at(x(), y() + 1)
                + prev.at(x() + 1, y() + 1))
                / 9.0,
        );
        p.schedule(f).compute_root().ipim_tile(tile.0, tile.1).load_pgsm().vectorize(4);
        prev = f;
        last = f;
    }
    let pipeline = p.build(last).expect("stencil chain pipeline");
    Workload {
        name: "StencilChain",
        family: WorkloadFamily::Image,
        multi_stage: true,
        stages: 32,
        pipeline,
        inputs: vec![(input.id(), synthetic_image(w, h, 10))],
        scale,
        flops_per_pixel: 32.0 * 9.0,
        gpu_bytes_per_pixel: 40.0, // long chain: intermediates spill to DRAM
        output_pixels: scale.pixels(),
    }
}
