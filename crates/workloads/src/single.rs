//! The six single-stage benchmarks of Table II.

use ipim_frontend::{x, y, PipelineBuilder};

use crate::images::synthetic_image;
use crate::{Workload, WorkloadFamily, WorkloadScale};

/// Tile shape for the single-stage kernels: wide tiles enable deep
/// unrolling (memory-level parallelism) at realistic scales, while small
/// test images fall back to 8×8 so the grid still covers every PE.
fn simple_tile(out_w: u32) -> (u32, u32) {
    if out_w >= 256 {
        (32, 8)
    } else {
        (8, 8)
    }
}

/// `out(x,y) = α · in(x,y)` — pure elementwise, completely bandwidth-bound.
pub fn brighten(scale: WorkloadScale) -> Workload {
    let (w, h) = (scale.width, scale.height);
    let mut p = PipelineBuilder::new();
    let input = p.input("in", w, h);
    let out = p.func("out", w, h);
    p.define(out, input.at(x(), y()) * 1.5);
    let t = simple_tile(w);
    p.schedule(out).compute_root().ipim_tile(t.0, t.1).vectorize(4);
    let pipeline = p.build(out).expect("brighten pipeline");
    Workload {
        name: "Brighten",
        family: WorkloadFamily::Image,
        multi_stage: false,
        stages: 1,
        pipeline,
        inputs: vec![(input.id(), synthetic_image(w, h, 1))],
        scale,
        flops_per_pixel: 1.0,
        gpu_bytes_per_pixel: 8.0, // read + write, fp32
        output_pixels: scale.pixels(),
    }
}

/// Separable 3-tap Gaussian blur (Table II's `blur_x`/`blur_y` formulas).
pub fn blur(scale: WorkloadScale) -> Workload {
    let (w, h) = (scale.width, scale.height);
    let mut p = PipelineBuilder::new();
    let input = p.input("in", w, h);
    let bx = p.func("blur_x", w, h);
    p.define(bx, (input.at(x(), y()) + input.at(x() + 1, y()) + input.at(x() + 2, y())) / 3.0);
    let t = simple_tile(w);
    p.schedule(bx).compute_root().ipim_tile(t.0, t.1).load_pgsm().vectorize(4);
    let out = p.func("blur_y", w, h);
    p.define(out, (bx.at(x(), y()) + bx.at(x(), y() + 1) + bx.at(x(), y() + 2)) / 3.0);
    p.schedule(out).compute_root().ipim_tile(t.0, t.1).load_pgsm().vectorize(4);
    let pipeline = p.build(out).expect("blur pipeline");
    Workload {
        name: "Blur",
        family: WorkloadFamily::Image,
        multi_stage: false,
        stages: 2,
        pipeline,
        inputs: vec![(input.id(), synthetic_image(w, h, 2))],
        scale,
        flops_per_pixel: 8.0,
        gpu_bytes_per_pixel: 8.0, // fused: read input once, write output
        output_pixels: scale.pixels(),
    }
}

/// 2× box downsample with the paper's exact two-pass formula.
pub fn downsample(scale: WorkloadScale) -> Workload {
    let (w, h) = (scale.width, scale.height);
    let mut p = PipelineBuilder::new();
    let input = p.input("in", w, h);
    let d = p.func("d", w / 2, h);
    p.define(
        d,
        (input.at(2 * x() - 1, y()) + input.at(2 * x(), y()) * 2.0 + input.at(2 * x() + 1, y()))
            / 4.0,
    );
    let t = simple_tile(w / 2);
    p.schedule(d).compute_root().ipim_tile(t.0, t.1).load_pgsm().vectorize(4);
    let out = p.func("out", w / 2, h / 2);
    p.define(
        out,
        (d.at(x(), 2 * y() - 1) + d.at(x(), 2 * y()) * 2.0 + d.at(x(), 2 * y() + 1)) / 4.0,
    );
    p.schedule(out).compute_root().ipim_tile(t.0, t.1).load_pgsm().vectorize(4);
    let pipeline = p.build(out).expect("downsample pipeline");
    Workload {
        name: "Downsample",
        family: WorkloadFamily::Image,
        multi_stage: false,
        stages: 2,
        pipeline,
        inputs: vec![(input.id(), synthetic_image(w, h, 3))],
        scale,
        flops_per_pixel: 12.0,
        gpu_bytes_per_pixel: 20.0, // reads 4 input pixels per output + write
        output_pixels: scale.pixels() / 4,
    }
}

/// 2× bilinear-ish upsample with the paper's exact two-pass formula.
pub fn upsample(scale: WorkloadScale) -> Workload {
    // Keep the *output* at the nominal scale (the paper upsamples to the
    // target resolution), so the input is half-size.
    let (ow, oh) = (scale.width, scale.height);
    let (iw, ih) = (ow / 2, oh / 2);
    let mut p = PipelineBuilder::new();
    let input = p.input("in", iw, ih);
    let u = p.func("u", ow, ih);
    p.define(u, (input.at(x() / 2, y()) + input.at((x() + 1) / 2, y())) / 2.0);
    let t = simple_tile(ow);
    p.schedule(u).compute_root().ipim_tile(t.0, t.1).vectorize(4);
    let out = p.func("out", ow, oh);
    p.define(out, (u.at(x(), y() / 2) + u.at(x(), (y() + 1) / 2)) / 2.0);
    p.schedule(out).compute_root().ipim_tile(t.0, t.1).vectorize(4);
    let pipeline = p.build(out).expect("upsample pipeline");
    Workload {
        name: "Upsample",
        family: WorkloadFamily::Image,
        multi_stage: false,
        stages: 2,
        pipeline,
        inputs: vec![(input.id(), synthetic_image(iw, ih, 4))],
        scale,
        flops_per_pixel: 4.0,
        gpu_bytes_per_pixel: 5.0, // 1/4 input read amortized + write
        output_pixels: scale.pixels(),
    }
}

/// `out(x,y) = in(x-4, y-4)` — pure data movement with offset indexing.
pub fn shift(scale: WorkloadScale) -> Workload {
    let (w, h) = (scale.width, scale.height);
    let mut p = PipelineBuilder::new();
    let input = p.input("in", w, h);
    let out = p.func("out", w, h);
    p.define(out, input.at(x() - 4, y() - 4));
    let t = simple_tile(w);
    p.schedule(out).compute_root().ipim_tile(t.0, t.1).vectorize(4);
    let pipeline = p.build(out).expect("shift pipeline");
    Workload {
        name: "Shift",
        family: WorkloadFamily::Image,
        multi_stage: false,
        stages: 1,
        pipeline,
        inputs: vec![(input.id(), synthetic_image(w, h, 5))],
        scale,
        flops_per_pixel: 0.0,
        gpu_bytes_per_pixel: 8.0,
        output_pixels: scale.pixels(),
    }
}

/// 64-bin histogram over the full image (Table II's `RDom` reduction).
pub fn histogram(scale: WorkloadScale) -> Workload {
    let (w, h) = (scale.width, scale.height);
    let mut p = PipelineBuilder::new();
    let input = p.input("in", w, h);
    let out = p.func("histogram", 64, 1);
    p.define_histogram(out, input, 0.0, 1.0);
    let t = simple_tile(w);
    p.schedule(out).compute_root().ipim_tile(t.0, t.1);
    let pipeline = p.build(out).expect("histogram pipeline");
    Workload {
        name: "Histogram",
        family: WorkloadFamily::Image,
        multi_stage: false,
        stages: 1,
        pipeline,
        inputs: vec![(input.id(), synthetic_image(w, h, 6))],
        scale,
        flops_per_pixel: 3.0,
        // The paper observes the GPU schedule is far from bandwidth-bound
        // for Histogram (atomics dominate): model with heavy effective
        // traffic per pixel.
        gpu_bytes_per_pixel: 16.0,
        output_pixels: scale.pixels(),
    }
}
