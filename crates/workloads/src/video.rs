//! The Video workload family: temporal pipelines over multiple input
//! frames. Where Table II is one image in / one image out, these take the
//! current frame *plus explicit prior-frame images* — the streaming shape
//! of per-frame video processing, with frame-to-frame state staged in
//! PGSM where a downstream stencil consumes it.

use ipim_frontend::{x, y, PipelineBuilder};

use crate::images::synthetic_image;
use crate::{ladder_tile, Workload, WorkloadFamily, WorkloadScale};

/// Per-frame delta: `out = |cur − prev|` — the cheapest temporal kernel,
/// two full-frame reads per output pixel (change detection / motion
/// gating).
pub fn frame_delta(scale: WorkloadScale) -> Workload {
    let (w, h) = (scale.width, scale.height);
    let tile = ladder_tile(w, h);
    let mut p = PipelineBuilder::new();
    let cur = p.input("cur", w, h);
    let prev = p.input("prev", w, h);
    let out = p.func("delta", w, h);
    p.define(out, (cur.at(x(), y()) - prev.at(x(), y())).abs());
    p.schedule(out).compute_root().ipim_tile(tile.0, tile.1).vectorize(4);
    let pipeline = p.build(out).expect("frame delta pipeline");
    Workload {
        name: "FrameDelta",
        family: WorkloadFamily::Video,
        multi_stage: false,
        stages: 1,
        pipeline,
        inputs: vec![(cur.id(), synthetic_image(w, h, 21)), (prev.id(), synthetic_image(w, h, 22))],
        scale,
        flops_per_pixel: 2.0,
        gpu_bytes_per_pixel: 12.0, // two frame reads + write
        output_pixels: scale.pixels(),
    }
}

/// 3-frame temporal blur: `out = (f0 + 2·f1 + f2) / 4` — a purely
/// temporal 1-2-1 filter; three frames in flight, zero spatial halo.
pub fn temporal_blur(scale: WorkloadScale) -> Workload {
    let (w, h) = (scale.width, scale.height);
    let tile = ladder_tile(w, h);
    let mut p = PipelineBuilder::new();
    let f0 = p.input("frame0", w, h);
    let f1 = p.input("frame1", w, h);
    let f2 = p.input("frame2", w, h);
    let out = p.func("tblur", w, h);
    p.define(out, (f0.at(x(), y()) + f1.at(x(), y()) * 2.0 + f2.at(x(), y())) / 4.0);
    p.schedule(out).compute_root().ipim_tile(tile.0, tile.1).vectorize(4);
    let pipeline = p.build(out).expect("temporal blur pipeline");
    Workload {
        name: "TemporalBlur",
        family: WorkloadFamily::Video,
        multi_stage: false,
        stages: 1,
        pipeline,
        inputs: vec![
            (f0.id(), synthetic_image(w, h, 23)),
            (f1.id(), synthetic_image(w, h, 24)),
            (f2.id(), synthetic_image(w, h, 25)),
        ],
        scale,
        flops_per_pixel: 4.0,
        gpu_bytes_per_pixel: 16.0, // three frame reads + write
        output_pixels: scale.pixels(),
    }
}

/// Motion energy: squared per-pixel frame difference, then a 3×3 box sum
/// over it — the local-motion-energy stencil of optical-flow front-ends.
/// The squared-difference field is the *inter-frame state*: it
/// materializes as a root stage and stages through PGSM (`load_pgsm` on
/// the consuming stencil), so the temporal term is computed once and the
/// spatial aggregation runs out of the scratchpad.
pub fn motion_energy(scale: WorkloadScale) -> Workload {
    let (w, h) = (scale.width, scale.height);
    let tile = ladder_tile(w, h);
    let mut p = PipelineBuilder::new();
    let cur = p.input("cur", w, h);
    let prev = p.input("prev", w, h);
    let d = p.func("d2", w, h);
    let diff = cur.at(x(), y()) - prev.at(x(), y());
    p.define(d, diff.clone() * diff);
    p.schedule(d).compute_root().ipim_tile(tile.0, tile.1).vectorize(4);
    let out = p.func("energy", w, h);
    p.define(
        out,
        (d.at(x() - 1, y() - 1)
            + d.at(x(), y() - 1)
            + d.at(x() + 1, y() - 1)
            + d.at(x() - 1, y())
            + d.at(x(), y())
            + d.at(x() + 1, y())
            + d.at(x() - 1, y() + 1)
            + d.at(x(), y() + 1)
            + d.at(x() + 1, y() + 1))
            / 9.0,
    );
    p.schedule(out).compute_root().ipim_tile(tile.0, tile.1).load_pgsm().vectorize(4);
    let pipeline = p.build(out).expect("motion energy pipeline");
    Workload {
        name: "MotionEnergy",
        family: WorkloadFamily::Video,
        multi_stage: true,
        stages: 2,
        pipeline,
        inputs: vec![(cur.id(), synthetic_image(w, h, 26)), (prev.id(), synthetic_image(w, h, 27))],
        scale,
        flops_per_pixel: 12.0,
        gpu_bytes_per_pixel: 12.0, // two frame reads + write, stencil cached
        output_pixels: scale.pixels(),
    }
}
