//! The NN workload family: neural-network operators expressed in the same
//! DSL and lowered through the same SIMB backend as the image kernels.
//!
//! These exercise the compiler paths Table II never touches:
//!
//! * **Gemm** — a tiled matrix multiply `C = A·B`. The grid is one tile
//!   wide × 32 tiles tall, so each PE owns a band of full output rows.
//!   `A(k, y)` is read at *constant* x coordinates (legal only on a
//!   1-tile-wide grid) and stages through PGSM per lane; `B` is flattened
//!   to a `(N·K, 1)` strip and fetched through the *computed-index gather*
//!   path — the index `x·K + k + 0.5` carries a fractional constant, which
//!   classifies it dynamic (the replicated-gather layout) while both the
//!   interpreter and the backend truncate it to exactly `x·K + k`.
//! * **Conv3x3** — an im2col-style unrolled 3×3 convolution: the nine
//!   shifted taps with nine distinct hoisted weights are the unrolled
//!   patch-row inner product, followed by a quantized LUT activation
//!   gather (the data-dependent gather path, as BilateralGrid's slice).
//! * **RowSoftmax** — a full-row softmax: log-tree max-reduction,
//!   exp-approximation, log-tree sum-reduction and a normalize stage.
//!   The width-halving tree stages are stride-2 affine accesses; the
//!   final combines read the surviving 4-wide partials at constant x.

use ipim_frontend::{x, y, Expr, PipelineBuilder, SourceRef};

use crate::images::synthetic_image;
use crate::{lut_gaussian, row_tile_height, Workload, WorkloadFamily, WorkloadScale};

/// The GEMM inner dimension. Fixed (not scaled with the image) so the
/// per-PE `A` band and the replicated `B` strip stay within PGSM / bank
/// capacity at every scale; 32 gives each output pixel a 64-FLOP dot
/// product, enough to shift the kernel from bandwidth- to compute-heavy.
pub(crate) const GEMM_K: u32 = 32;

/// How many `A·B` products each accumulation stage folds in. Four keeps
/// every stage's register and unroll budget comfortable while the chain
/// (`K / GEMM_CHUNK` stages) stays short.
const GEMM_CHUNK: u32 = 4;

/// Tiled GEMM: `C(x, y) = Σ_k A(k, y) · B(x·K + k)` with `K` = 32.
///
/// `A` is `(K, M)` (one row of reduction operands per output row), `B` is
/// the `(N·K, 1)` column-major flattening of a `K×N` matrix. The schedule
/// tiles rows only: tile `(N, M/32)`, so the 32 PEs each own a band of
/// output rows and the reduction runs entirely PE-local.
pub fn gemm(scale: WorkloadScale) -> Workload {
    let (w, h) = (scale.width, scale.height);
    let k_dim = GEMM_K;
    let th = row_tile_height(h).unwrap_or(h);
    let mut p = PipelineBuilder::new();
    let a = p.input("a", k_dim, h);
    let b = p.input("b_flat", w * k_dim, 1);
    let chunks = k_dim / GEMM_CHUNK;
    let mut prev: Option<SourceRef> = None;
    for c in 0..chunks {
        let f = if c + 1 == chunks { p.func("c", w, h) } else { p.func(&format!("acc{c}"), w, h) };
        // The `+ 0.5` in the B index forces the dynamic
        // (replicated-gather) access class; integer evaluation drops it
        // identically on the interpreter and the device, leaving exactly
        // `x·K + k`.
        let product = |t: u32| {
            let k = (c * GEMM_CHUNK + t) as i32;
            a.at(k, y()) * b.at(x() * k_dim as i32 + k + 0.5, 0)
        };
        let mut e: Expr = match prev {
            Some(pr) => pr.at(x(), y()) + product(0),
            None => product(0),
        };
        for t in 1..GEMM_CHUNK {
            e = e + product(t);
        }
        p.define(f, e);
        p.schedule(f).compute_root().ipim_tile(w, th).vectorize(4);
        prev = Some(f);
    }
    let out = prev.expect("at least one accumulation stage");
    let pipeline = p.build(out).expect("gemm pipeline");
    Workload {
        name: "Gemm",
        family: WorkloadFamily::Nn,
        multi_stage: true,
        stages: chunks as usize,
        pipeline,
        inputs: vec![
            (a.id(), synthetic_image(k_dim, h, 11)),
            (b.id(), synthetic_image(w * k_dim, 1, 12)),
        ],
        scale,
        flops_per_pixel: 2.0 * k_dim as f64,
        gpu_bytes_per_pixel: 12.0, // A row + B column mostly cached + write
        output_pixels: scale.pixels(),
    }
}

/// The 3×3 convolution weights: a 1-2-1 binomial kernel normalized to sum
/// to one, so the accumulator stays inside the LUT's `[0, 1)` domain.
const CONV_W: [f32; 9] = [
    1.0 / 16.0,
    2.0 / 16.0,
    1.0 / 16.0,
    2.0 / 16.0,
    4.0 / 16.0,
    2.0 / 16.0,
    1.0 / 16.0,
    2.0 / 16.0,
    1.0 / 16.0,
];

/// Im2col-style 3×3 convolution with a quantized LUT activation.
///
/// Stage 1 is the unrolled patch inner product — nine shifted taps times
/// nine distinct weights, exactly the nine f32 constants the backend's
/// constant-hoisting pins to registers. Stage 2 quantizes the accumulator
/// to 6 bits and gathers the activation value from a 64-entry LUT (the
/// data-dependent gather lowering).
pub fn conv3x3(scale: WorkloadScale) -> Workload {
    let (w, h) = (scale.width, scale.height);
    let tile = crate::ladder_tile(w, h);
    let mut p = PipelineBuilder::new();
    let input = p.input("in", w, h);
    let lut = p.input("act_lut", 64, 1);
    let acc = p.func("acc", w, h);
    let tap = |i: usize| {
        let (dx, dy) = ((i % 3) as i32 - 1, (i / 3) as i32 - 1);
        input.at(x() + dx, y() + dy) * CONV_W[i]
    };
    let mut e: Expr = tap(0);
    for i in 1..9 {
        e = e + tap(i);
    }
    p.define(acc, e);
    p.schedule(acc).compute_root().ipim_tile(tile.0, tile.1).load_pgsm().vectorize(4);
    let out = p.func("act", w, h);
    p.define(out, lut.at((acc.at(x(), y()) * 63.9).cast_i32(), 0));
    p.schedule(out).compute_root().ipim_tile(tile.0, tile.1).vectorize(4);
    let pipeline = p.build(out).expect("conv3x3 pipeline");
    Workload {
        name: "Conv3x3",
        family: WorkloadFamily::Nn,
        multi_stage: true,
        stages: 2,
        pipeline,
        inputs: vec![(input.id(), synthetic_image(w, h, 13)), (lut.id(), lut_gaussian(64, 0.35))],
        scale,
        flops_per_pixel: 19.0, // 9 MADs + quantize
        gpu_bytes_per_pixel: 12.0,
        output_pixels: scale.pixels(),
    }
}

/// The widths of a row-reduction's log tree, halving from `w` while the
/// next level stays a positive multiple of 4 (the SIMB lane width — a
/// func narrower than one vector cannot be scheduled). The last entry is
/// the combine width the final stage reads at constant x.
pub(crate) fn reduction_widths(w: u32) -> Vec<u32> {
    let mut widths = vec![w];
    let mut cur = w;
    while cur.is_multiple_of(2) && (cur / 2).is_multiple_of(4) {
        cur /= 2;
        widths.push(cur);
        if cur == 4 {
            break;
        }
    }
    widths
}

/// Row softmax: `out(x, y) = exp(in(x, y) − max_row(y)) / Σ_x exp(…)`.
///
/// The row max and row sum are *full-row reductions*, built as log trees
/// of width-halving stages (`r(x) = combine(v(2x), v(2x+1))`) down to a
/// 4-wide partial, which the consuming stage folds with constant-x reads
/// — legal because the schedule keeps the grid one tile wide, like Gemm.
/// `exp` is approximated as `(1 + t/16)^16` by four squaring stages,
/// exact enough for a reduction-path stress test and cheap enough to
/// verify bit-close against the interpreter.
pub fn row_softmax(scale: WorkloadScale) -> Workload {
    let (w, h) = (scale.width, scale.height);
    let th = row_tile_height(h).unwrap_or(h);
    let widths = reduction_widths(w);
    let combine_w = *widths.last().expect("non-empty width chain");
    let mut p = PipelineBuilder::new();
    let input = p.input("in", w, h);
    let root = |p: &mut PipelineBuilder, f: SourceRef, fw: u32| {
        p.schedule(f).compute_root().ipim_tile(fw, th).vectorize(4);
    };

    // Max-reduction tree.
    let mut m = input;
    for &fw in &widths[1..] {
        let f = p.func(&format!("max{fw}"), fw, h);
        p.define(f, m.at(2 * x(), y()).max(m.at(2 * x() + 1, y())));
        root(&mut p, f, fw);
        m = f;
    }
    // Fold the surviving partials at constant x into the row max.
    let row_max = |m: SourceRef| {
        let mut e = m.at(0, y());
        for i in 1..combine_w as i32 {
            e = e.max(m.at(i, y()));
        }
        e
    };

    // exp(t) ≈ (1 + t/16)^16 for t = in − max ∈ [−1, 0]: the base stays
    // inside [15/16, 1], so repeated squaring stays in (0, 1] and the
    // row sum below is bounded away from zero.
    let u = p.func("expbase", w, h);
    p.define(u, (input.at(x(), y()) - row_max(m)) * (1.0 / 16.0) + 1.0);
    root(&mut p, u, w);
    let mut e_f = u;
    for i in 0..4 {
        let f = p.func(&format!("sq{i}"), w, h);
        p.define(f, e_f.at(x(), y()) * e_f.at(x(), y()));
        root(&mut p, f, w);
        e_f = f;
    }

    // Sum-reduction tree over the exponentials.
    let mut s = e_f;
    for &fw in &widths[1..] {
        let f = p.func(&format!("sum{fw}"), fw, h);
        p.define(f, s.at(2 * x(), y()) + s.at(2 * x() + 1, y()));
        root(&mut p, f, fw);
        s = f;
    }
    let row_sum = {
        let mut e = s.at(0, y());
        for i in 1..combine_w as i32 {
            e = e + s.at(i, y());
        }
        e
    };

    // Normalize.
    let out = p.func("softmax", w, h);
    p.define(out, e_f.at(x(), y()) / row_sum);
    root(&mut p, out, w);

    let pipeline = p.build(out).expect("row softmax pipeline");
    let stages = pipeline.stage_count();
    Workload {
        name: "RowSoftmax",
        family: WorkloadFamily::Nn,
        multi_stage: true,
        stages,
        pipeline,
        inputs: vec![(input.id(), synthetic_image(w, h, 15))],
        scale,
        flops_per_pixel: 12.0, // 2 tree levels amortized + exp + normalize
        gpu_bytes_per_pixel: 12.0,
        output_pixels: scale.pixels(),
    }
}
