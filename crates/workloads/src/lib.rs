//! The paper's Table II benchmark suite: six single-stage kernels covering
//! elementwise, stencil, resampling, shift and reduction patterns, plus
//! four heterogeneous multi-stage pipelines (bilateral grid, interpolate,
//! local Laplacian, stencil chain).
//!
//! Each [`Workload`] bundles a frontend [`Pipeline`] with deterministic
//! synthetic inputs (standing in for DIV8K; see DESIGN.md §2) and the
//! metadata the GPU baseline model needs.
//!
//! Pipelines are parameterized by [`WorkloadScale`] so the same code runs
//! the paper-scale 8K shapes and the fast simulation slices used by tests
//! and benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod images;
mod multi;
mod single;

pub use images::{lut_gaussian, synthetic_image};

use std::fmt;

use ipim_frontend::{Image, Pipeline, Schedule, SourceId};

/// Image scale a workload is instantiated at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadScale {
    /// Image width (pixels).
    pub width: u32,
    /// Image height (pixels).
    pub height: u32,
}

impl Default for WorkloadScale {
    fn default() -> Self {
        // The default simulation slice: big enough to keep every PE busy
        // over multiple tile slots, small enough for cycle-accurate runs.
        Self { width: 512, height: 512 }
    }
}

impl WorkloadScale {
    /// A small scale for unit tests.
    pub fn tiny() -> Self {
        Self { width: 128, height: 128 }
    }

    /// The paper's DIV8K resolution (7680 × 4320); use with the analytic
    /// scale-out path, not cycle-accurate simulation.
    pub fn div8k() -> Self {
        Self { width: 7680, height: 4320 }
    }

    /// Total pixels.
    pub fn pixels(&self) -> u64 {
        self.width as u64 * self.height as u64
    }
}

/// One Table II benchmark instance.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Benchmark name as in the paper's figures.
    pub name: &'static str,
    /// Whether the paper groups it with the multi-stage benchmarks.
    pub multi_stage: bool,
    /// Pipeline stage count as the paper reports it.
    pub stages: usize,
    /// The frontend pipeline.
    pub pipeline: Pipeline,
    /// Input images keyed by source.
    pub inputs: Vec<(SourceId, Image)>,
    /// The scale it was instantiated at.
    pub scale: WorkloadScale,
    /// Arithmetic (FP) operations per *output* pixel, for the GPU roofline.
    pub flops_per_pixel: f64,
    /// Effective DRAM bytes per output pixel on a fused GPU implementation
    /// (reads of inputs + final write, intermediates cached on chip).
    pub gpu_bytes_per_pixel: f64,
    /// Output pixels (may differ from input pixels for resampling).
    pub output_pixels: u64,
}

impl Workload {
    /// The output image extent.
    pub fn output_extent(&self) -> (u32, u32) {
        self.pipeline.output().extent
    }

    /// Rebuilds this workload with `ov` applied over the hand-written
    /// schedule (see [`ScheduleOverride`]). Inputs, metadata and the
    /// algorithm are unchanged — only the mapping moves.
    ///
    /// # Errors
    ///
    /// Returns a message when the overridden schedule fails frontend
    /// validation (zero tile, bad vectorize width). Deeper machine-specific
    /// legality (divisibility, PGSM capacity) surfaces later, at compile
    /// time, exactly as for hand schedules.
    pub fn with_override(&self, ov: &ScheduleOverride) -> Result<Workload, String> {
        let output = self.pipeline.output().source;
        let pipeline = self
            .pipeline
            .reschedule(|f| ov.apply(&f.schedule, f.source == output))
            .map_err(|e| format!("{}: {e}", self.name))?;
        Ok(Workload { pipeline, ..self.clone() })
    }
}

/// What happens to each func's `compute_root` flag under an override.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ComputeRootPolicy {
    /// Keep the hand-written per-func choice.
    #[default]
    Keep,
    /// Materialize every func (`compute_root` everywhere): maximal kernel
    /// boundaries, minimal recomputation, maximal DRAM traffic.
    All,
    /// Materialize only the output: every intermediate inlines into its
    /// consumers (reductions stay boundaries — the compiler forces that).
    OutputOnly,
}

impl ComputeRootPolicy {
    /// Canonical wire/report spelling (`keep` | `all` | `output_only`).
    pub fn name(&self) -> &'static str {
        match self {
            ComputeRootPolicy::Keep => "keep",
            ComputeRootPolicy::All => "all",
            ComputeRootPolicy::OutputOnly => "output_only",
        }
    }

    /// Parses [`name`](Self::name)'s spelling.
    ///
    /// # Errors
    ///
    /// Returns a message listing the accepted spellings.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "keep" => Ok(ComputeRootPolicy::Keep),
            "all" => Ok(ComputeRootPolicy::All),
            "output_only" => Ok(ComputeRootPolicy::OutputOnly),
            other => Err(format!("unknown compute_root {other:?} (keep | all | output_only)")),
        }
    }
}

/// A partial schedule applied on top of a workload's hand-written one:
/// `None` fields keep the hand choice, `Some` fields replace it on every
/// func. This is the unit the autotuner searches over and the serving
/// layer carries in [`SimRequest`](../ipim_serve/struct.SimRequest.html)s
/// (where it is part of the cache identity).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct ScheduleOverride {
    /// Replace every func's `ipim_tile` size. The grid derives from the
    /// *output* stage's tile, so this is the knob that moves the tile grid.
    pub tile: Option<(u32, u32)>,
    /// Replace every func's PGSM staging choice.
    pub load_pgsm: Option<bool>,
    /// Replace every func's SIMD vector width (1, 2 or 4).
    pub vectorize: Option<u32>,
    /// Rewrite the `compute_root` kernel-boundary structure.
    pub compute_root: ComputeRootPolicy,
}

impl ScheduleOverride {
    /// Whether this override changes nothing (the identity element — a
    /// request carrying it must hash like one carrying no override).
    pub fn is_empty(&self) -> bool {
        *self == ScheduleOverride::default()
    }

    /// The schedule `base` becomes under this override (`is_output` selects
    /// the [`ComputeRootPolicy::OutputOnly`] special case).
    pub fn apply(&self, base: &Schedule, is_output: bool) -> Schedule {
        Schedule {
            compute_root: match self.compute_root {
                ComputeRootPolicy::Keep => base.compute_root,
                ComputeRootPolicy::All => true,
                ComputeRootPolicy::OutputOnly => is_output,
            },
            tile: self.tile.unwrap_or(base.tile),
            load_pgsm: self.load_pgsm.unwrap_or(base.load_pgsm),
            vectorize: self.vectorize.unwrap_or(base.vectorize),
        }
    }
}

impl fmt::Display for ScheduleOverride {
    /// Canonical one-line form: only the set knobs, in fixed order, e.g.
    /// `tile=32x8,pgsm=on,root=all`; the empty override renders `default`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "default");
        }
        let mut parts = Vec::new();
        if let Some((w, h)) = self.tile {
            parts.push(format!("tile={w}x{h}"));
        }
        if let Some(p) = self.load_pgsm {
            parts.push(format!("pgsm={}", if p { "on" } else { "off" }));
        }
        if let Some(v) = self.vectorize {
            parts.push(format!("vec={v}"));
        }
        if self.compute_root != ComputeRootPolicy::Keep {
            parts.push(format!("root={}", self.compute_root.name()));
        }
        write!(f, "{}", parts.join(","))
    }
}

/// All ten Table II benchmarks at the given scale, in the paper's order.
pub fn all_workloads(scale: WorkloadScale) -> Vec<Workload> {
    vec![
        single::brighten(scale),
        single::blur(scale),
        single::downsample(scale),
        single::upsample(scale),
        single::shift(scale),
        single::histogram(scale),
        multi::bilateral_grid(scale),
        multi::interpolate(scale),
        multi::local_laplacian(scale),
        multi::stencil_chain(scale),
    ]
}

/// Looks up one benchmark by its paper name.
pub fn workload_by_name(name: &str, scale: WorkloadScale) -> Option<Workload> {
    all_workloads(scale).into_iter().find(|w| w.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_benchmarks_in_paper_order() {
        let ws = all_workloads(WorkloadScale::tiny());
        let names: Vec<_> = ws.iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            vec![
                "Brighten",
                "Blur",
                "Downsample",
                "Upsample",
                "Shift",
                "Histogram",
                "BilateralGrid",
                "Interpolate",
                "LocalLaplacian",
                "StencilChain",
            ]
        );
        assert_eq!(ws.iter().filter(|w| w.multi_stage).count(), 4);
    }

    #[test]
    fn stage_counts_match_table2() {
        let ws = all_workloads(WorkloadScale::tiny());
        let count = |n: &str| ws.iter().find(|w| w.name == n).unwrap().stages;
        assert_eq!(count("BilateralGrid"), 4);
        assert_eq!(count("Interpolate"), 12);
        assert_eq!(count("LocalLaplacian"), 23);
        assert_eq!(count("StencilChain"), 32);
    }

    #[test]
    fn lookup_by_name_case_insensitive() {
        assert!(workload_by_name("blur", WorkloadScale::tiny()).is_some());
        assert!(workload_by_name("BLUR", WorkloadScale::tiny()).is_some());
        assert!(workload_by_name("nope", WorkloadScale::tiny()).is_none());
    }

    #[test]
    fn inputs_match_pipeline_declarations() {
        for w in all_workloads(WorkloadScale::tiny()) {
            assert_eq!(w.inputs.len(), w.pipeline.inputs().len(), "{} input count", w.name);
            for (def, (src, img)) in w.pipeline.inputs().iter().zip(&w.inputs) {
                assert_eq!(def.source, *src, "{} input order", w.name);
                assert_eq!(def.extent, (img.width(), img.height()), "{} input extent", w.name);
            }
        }
    }

    #[test]
    fn schedule_override_rewrites_every_func() {
        let w = workload_by_name("Blur", WorkloadScale::tiny()).unwrap();
        let ov = ScheduleOverride {
            tile: Some((16, 4)),
            load_pgsm: Some(false),
            vectorize: None,
            compute_root: ComputeRootPolicy::OutputOnly,
        };
        let re = w.with_override(&ov).unwrap();
        for (name, s) in re.pipeline.schedule_knobs() {
            assert_eq!(s.tile, (16, 4), "{name}");
            assert!(!s.load_pgsm, "{name}");
            assert_eq!(s.vectorize, 4, "{name} keeps the hand width");
        }
        // OutputOnly: blur_x is no longer a root, so it inlines.
        assert_eq!(re.pipeline.root_stages().len(), 1);
        // The original still has both roots.
        assert_eq!(w.pipeline.root_stages().len(), 2);
        // Bad overrides are rejected with the workload named.
        let bad = ScheduleOverride { vectorize: Some(3), ..ScheduleOverride::default() };
        assert!(w.with_override(&bad).unwrap_err().contains("Blur"));
    }

    #[test]
    fn empty_override_is_identity() {
        let ov = ScheduleOverride::default();
        assert!(ov.is_empty());
        assert_eq!(ov.to_string(), "default");
        let w = workload_by_name("Brighten", WorkloadScale::tiny()).unwrap();
        let re = w.with_override(&ov).unwrap();
        assert_eq!(re.pipeline, w.pipeline);
        let full = ScheduleOverride {
            tile: Some((8, 8)),
            load_pgsm: Some(true),
            vectorize: Some(4),
            compute_root: ComputeRootPolicy::All,
        };
        assert!(!full.is_empty());
        assert_eq!(full.to_string(), "tile=8x8,pgsm=on,vec=4,root=all");
    }

    #[test]
    fn compute_root_policy_round_trips() {
        for p in [ComputeRootPolicy::Keep, ComputeRootPolicy::All, ComputeRootPolicy::OutputOnly] {
            assert_eq!(ComputeRootPolicy::parse(p.name()).unwrap(), p);
        }
        assert!(ComputeRootPolicy::parse("never").is_err());
    }

    #[test]
    fn reference_interpreter_runs_every_workload() {
        for w in all_workloads(WorkloadScale::tiny()) {
            let images: Vec<_> = w.inputs.iter().map(|(_, img)| img.clone()).collect();
            let out = ipim_frontend::interpret(&w.pipeline, &images)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert_eq!((out.width(), out.height()), w.output_extent(), "{}", w.name);
            assert!(
                out.data().iter().all(|v| v.is_finite()),
                "{} produced non-finite pixels",
                w.name
            );
        }
    }
}
