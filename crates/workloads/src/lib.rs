//! The paper's Table II benchmark suite: six single-stage kernels covering
//! elementwise, stencil, resampling, shift and reduction patterns, plus
//! four heterogeneous multi-stage pipelines (bilateral grid, interpolate,
//! local Laplacian, stencil chain).
//!
//! Each [`Workload`] bundles a frontend [`Pipeline`] with deterministic
//! synthetic inputs (standing in for DIV8K; see DESIGN.md §2) and the
//! metadata the GPU baseline model needs.
//!
//! Pipelines are parameterized by [`WorkloadScale`] so the same code runs
//! the paper-scale 8K shapes and the fast simulation slices used by tests
//! and benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod images;
mod multi;
mod single;

pub use images::{lut_gaussian, synthetic_image};

use ipim_frontend::{Image, Pipeline, SourceId};

/// Image scale a workload is instantiated at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadScale {
    /// Image width (pixels).
    pub width: u32,
    /// Image height (pixels).
    pub height: u32,
}

impl Default for WorkloadScale {
    fn default() -> Self {
        // The default simulation slice: big enough to keep every PE busy
        // over multiple tile slots, small enough for cycle-accurate runs.
        Self { width: 512, height: 512 }
    }
}

impl WorkloadScale {
    /// A small scale for unit tests.
    pub fn tiny() -> Self {
        Self { width: 128, height: 128 }
    }

    /// The paper's DIV8K resolution (7680 × 4320); use with the analytic
    /// scale-out path, not cycle-accurate simulation.
    pub fn div8k() -> Self {
        Self { width: 7680, height: 4320 }
    }

    /// Total pixels.
    pub fn pixels(&self) -> u64 {
        self.width as u64 * self.height as u64
    }
}

/// One Table II benchmark instance.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Benchmark name as in the paper's figures.
    pub name: &'static str,
    /// Whether the paper groups it with the multi-stage benchmarks.
    pub multi_stage: bool,
    /// Pipeline stage count as the paper reports it.
    pub stages: usize,
    /// The frontend pipeline.
    pub pipeline: Pipeline,
    /// Input images keyed by source.
    pub inputs: Vec<(SourceId, Image)>,
    /// The scale it was instantiated at.
    pub scale: WorkloadScale,
    /// Arithmetic (FP) operations per *output* pixel, for the GPU roofline.
    pub flops_per_pixel: f64,
    /// Effective DRAM bytes per output pixel on a fused GPU implementation
    /// (reads of inputs + final write, intermediates cached on chip).
    pub gpu_bytes_per_pixel: f64,
    /// Output pixels (may differ from input pixels for resampling).
    pub output_pixels: u64,
}

impl Workload {
    /// The output image extent.
    pub fn output_extent(&self) -> (u32, u32) {
        self.pipeline.output().extent
    }
}

/// All ten Table II benchmarks at the given scale, in the paper's order.
pub fn all_workloads(scale: WorkloadScale) -> Vec<Workload> {
    vec![
        single::brighten(scale),
        single::blur(scale),
        single::downsample(scale),
        single::upsample(scale),
        single::shift(scale),
        single::histogram(scale),
        multi::bilateral_grid(scale),
        multi::interpolate(scale),
        multi::local_laplacian(scale),
        multi::stencil_chain(scale),
    ]
}

/// Looks up one benchmark by its paper name.
pub fn workload_by_name(name: &str, scale: WorkloadScale) -> Option<Workload> {
    all_workloads(scale).into_iter().find(|w| w.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_benchmarks_in_paper_order() {
        let ws = all_workloads(WorkloadScale::tiny());
        let names: Vec<_> = ws.iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            vec![
                "Brighten",
                "Blur",
                "Downsample",
                "Upsample",
                "Shift",
                "Histogram",
                "BilateralGrid",
                "Interpolate",
                "LocalLaplacian",
                "StencilChain",
            ]
        );
        assert_eq!(ws.iter().filter(|w| w.multi_stage).count(), 4);
    }

    #[test]
    fn stage_counts_match_table2() {
        let ws = all_workloads(WorkloadScale::tiny());
        let count = |n: &str| ws.iter().find(|w| w.name == n).unwrap().stages;
        assert_eq!(count("BilateralGrid"), 4);
        assert_eq!(count("Interpolate"), 12);
        assert_eq!(count("LocalLaplacian"), 23);
        assert_eq!(count("StencilChain"), 32);
    }

    #[test]
    fn lookup_by_name_case_insensitive() {
        assert!(workload_by_name("blur", WorkloadScale::tiny()).is_some());
        assert!(workload_by_name("BLUR", WorkloadScale::tiny()).is_some());
        assert!(workload_by_name("nope", WorkloadScale::tiny()).is_none());
    }

    #[test]
    fn inputs_match_pipeline_declarations() {
        for w in all_workloads(WorkloadScale::tiny()) {
            assert_eq!(w.inputs.len(), w.pipeline.inputs().len(), "{} input count", w.name);
            for (def, (src, img)) in w.pipeline.inputs().iter().zip(&w.inputs) {
                assert_eq!(def.source, *src, "{} input order", w.name);
                assert_eq!(def.extent, (img.width(), img.height()), "{} input extent", w.name);
            }
        }
    }

    #[test]
    fn reference_interpreter_runs_every_workload() {
        for w in all_workloads(WorkloadScale::tiny()) {
            let images: Vec<_> = w.inputs.iter().map(|(_, img)| img.clone()).collect();
            let out = ipim_frontend::interpret(&w.pipeline, &images)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert_eq!((out.width(), out.height()), w.output_extent(), "{}", w.name);
            assert!(
                out.data().iter().all(|v| v.is_finite()),
                "{} produced non-finite pixels",
                w.name
            );
        }
    }
}
