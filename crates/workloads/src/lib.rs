//! The workload suite, organized into [`WorkloadFamily`]s:
//!
//! * **Image** — the paper's Table II benchmarks: six single-stage kernels
//!   covering elementwise, stencil, resampling, shift and reduction
//!   patterns, plus four heterogeneous multi-stage pipelines (bilateral
//!   grid, interpolate, local Laplacian, stencil chain).
//! * **NN** — neural-network operators on the same SIMB backend: tiled
//!   GEMM, an im2col-unrolled 3×3 convolution with a LUT activation
//!   gather, and a row-softmax built from log-tree reductions.
//! * **Video** — temporal pipelines over multiple frames: per-frame
//!   delta, 3-frame temporal blur, and a motion-energy stencil whose
//!   inter-frame state stages through PGSM.
//!
//! Each [`Workload`] bundles a frontend [`Pipeline`] with deterministic
//! synthetic inputs (standing in for DIV8K; see DESIGN.md §2) and the
//! metadata the GPU baseline model needs.
//!
//! Pipelines are parameterized by [`WorkloadScale`] so the same code runs
//! the paper-scale 8K shapes and the fast simulation slices used by tests
//! and benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod images;
mod multi;
mod nn;
mod single;
mod video;

pub use images::{lut_gaussian, synthetic_image};
pub use nn::{conv3x3, gemm, row_softmax};
pub use video::{frame_delta, motion_energy, temporal_blur};

use std::fmt;

use ipim_frontend::{Image, Pipeline, Schedule, SourceId};

/// Image scale a workload is instantiated at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadScale {
    /// Image width (pixels).
    pub width: u32,
    /// Image height (pixels).
    pub height: u32,
}

impl Default for WorkloadScale {
    fn default() -> Self {
        // The default simulation slice: big enough to keep every PE busy
        // over multiple tile slots, small enough for cycle-accurate runs.
        Self { width: 512, height: 512 }
    }
}

impl WorkloadScale {
    /// A small scale for unit tests.
    pub fn tiny() -> Self {
        Self { width: 128, height: 128 }
    }

    /// The paper's DIV8K resolution (7680 × 4320); use with the analytic
    /// scale-out path, not cycle-accurate simulation.
    pub fn div8k() -> Self {
        Self { width: 7680, height: 4320 }
    }

    /// Total pixels.
    pub fn pixels(&self) -> u64 {
        self.width as u64 * self.height as u64
    }
}

/// Which domain a workload belongs to — the unit the suite is organized,
/// filtered and reported by. The paper's figures cover only
/// [`WorkloadFamily::Image`]; the NN and Video families exercise compiler
/// paths (full-row reductions, computed-index gathers, inter-frame PGSM
/// state) that Table II never touches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum WorkloadFamily {
    /// The paper's Table II image-processing kernels.
    #[default]
    Image,
    /// Neural-network operators (GEMM, convolution, softmax).
    Nn,
    /// Temporal/video pipelines over multiple input frames.
    Video,
}

impl WorkloadFamily {
    /// Canonical wire/report spelling (`image` | `nn` | `video`).
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadFamily::Image => "image",
            WorkloadFamily::Nn => "nn",
            WorkloadFamily::Video => "video",
        }
    }

    /// Parses [`name`](Self::name)'s spelling.
    ///
    /// # Errors
    ///
    /// Returns a message listing the accepted spellings.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "image" => Ok(WorkloadFamily::Image),
            "nn" => Ok(WorkloadFamily::Nn),
            "video" => Ok(WorkloadFamily::Video),
            other => Err(format!("unknown workload family {other:?} (image | nn | video)")),
        }
    }

    /// Every family, in suite order.
    pub const ALL: [WorkloadFamily; 3] =
        [WorkloadFamily::Image, WorkloadFamily::Nn, WorkloadFamily::Video];
}

impl fmt::Display for WorkloadFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One benchmark instance.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Benchmark name as in the paper's figures.
    pub name: &'static str,
    /// The family this workload belongs to.
    pub family: WorkloadFamily,
    /// Whether the paper groups it with the multi-stage benchmarks.
    pub multi_stage: bool,
    /// Pipeline stage count as the paper reports it.
    pub stages: usize,
    /// The frontend pipeline.
    pub pipeline: Pipeline,
    /// Input images keyed by source.
    pub inputs: Vec<(SourceId, Image)>,
    /// The scale it was instantiated at.
    pub scale: WorkloadScale,
    /// Arithmetic (FP) operations per *output* pixel, for the GPU roofline.
    pub flops_per_pixel: f64,
    /// Effective DRAM bytes per output pixel on a fused GPU implementation
    /// (reads of inputs + final write, intermediates cached on chip).
    pub gpu_bytes_per_pixel: f64,
    /// Output pixels (may differ from input pixels for resampling).
    pub output_pixels: u64,
}

impl Workload {
    /// The output image extent.
    pub fn output_extent(&self) -> (u32, u32) {
        self.pipeline.output().extent
    }

    /// Rebuilds this workload with `ov` applied over the hand-written
    /// schedule (see [`ScheduleOverride`]). Inputs, metadata and the
    /// algorithm are unchanged — only the mapping moves.
    ///
    /// # Errors
    ///
    /// Returns a message when the overridden schedule fails frontend
    /// validation (zero tile, bad vectorize width). Deeper machine-specific
    /// legality (divisibility, PGSM capacity) surfaces later, at compile
    /// time, exactly as for hand schedules.
    pub fn with_override(&self, ov: &ScheduleOverride) -> Result<Workload, String> {
        let output = self.pipeline.output().source;
        let pipeline = self
            .pipeline
            .reschedule(|f| ov.apply(&f.schedule, f.source == output))
            .map_err(|e| format!("{}: {e}", self.name))?;
        Ok(Workload { pipeline, ..self.clone() })
    }
}

/// What happens to each func's `compute_root` flag under an override.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ComputeRootPolicy {
    /// Keep the hand-written per-func choice.
    #[default]
    Keep,
    /// Materialize every func (`compute_root` everywhere): maximal kernel
    /// boundaries, minimal recomputation, maximal DRAM traffic.
    All,
    /// Materialize only the output: every intermediate inlines into its
    /// consumers (reductions stay boundaries — the compiler forces that).
    OutputOnly,
}

impl ComputeRootPolicy {
    /// Canonical wire/report spelling (`keep` | `all` | `output_only`).
    pub fn name(&self) -> &'static str {
        match self {
            ComputeRootPolicy::Keep => "keep",
            ComputeRootPolicy::All => "all",
            ComputeRootPolicy::OutputOnly => "output_only",
        }
    }

    /// Parses [`name`](Self::name)'s spelling.
    ///
    /// # Errors
    ///
    /// Returns a message listing the accepted spellings.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "keep" => Ok(ComputeRootPolicy::Keep),
            "all" => Ok(ComputeRootPolicy::All),
            "output_only" => Ok(ComputeRootPolicy::OutputOnly),
            other => Err(format!("unknown compute_root {other:?} (keep | all | output_only)")),
        }
    }
}

/// A partial schedule applied on top of a workload's hand-written one:
/// `None` fields keep the hand choice, `Some` fields replace it on every
/// func. This is the unit the autotuner searches over and the serving
/// layer carries in [`SimRequest`](../ipim_serve/struct.SimRequest.html)s
/// (where it is part of the cache identity).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct ScheduleOverride {
    /// Replace every func's `ipim_tile` size. The grid derives from the
    /// *output* stage's tile, so this is the knob that moves the tile grid.
    pub tile: Option<(u32, u32)>,
    /// Replace every func's PGSM staging choice.
    pub load_pgsm: Option<bool>,
    /// Replace every func's SIMD vector width (1, 2 or 4).
    pub vectorize: Option<u32>,
    /// Rewrite the `compute_root` kernel-boundary structure.
    pub compute_root: ComputeRootPolicy,
}

impl ScheduleOverride {
    /// Whether this override changes nothing (the identity element — a
    /// request carrying it must hash like one carrying no override).
    pub fn is_empty(&self) -> bool {
        *self == ScheduleOverride::default()
    }

    /// The schedule `base` becomes under this override (`is_output` selects
    /// the [`ComputeRootPolicy::OutputOnly`] special case).
    pub fn apply(&self, base: &Schedule, is_output: bool) -> Schedule {
        Schedule {
            compute_root: match self.compute_root {
                ComputeRootPolicy::Keep => base.compute_root,
                ComputeRootPolicy::All => true,
                ComputeRootPolicy::OutputOnly => is_output,
            },
            tile: self.tile.unwrap_or(base.tile),
            load_pgsm: self.load_pgsm.unwrap_or(base.load_pgsm),
            vectorize: self.vectorize.unwrap_or(base.vectorize),
        }
    }
}

impl fmt::Display for ScheduleOverride {
    /// Canonical one-line form: only the set knobs, in fixed order, e.g.
    /// `tile=32x8,pgsm=on,root=all`; the empty override renders `default`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "default");
        }
        let mut parts = Vec::new();
        if let Some((w, h)) = self.tile {
            parts.push(format!("tile={w}x{h}"));
        }
        if let Some(p) = self.load_pgsm {
            parts.push(format!("pgsm={}", if p { "on" } else { "off" }));
        }
        if let Some(v) = self.vectorize {
            parts.push(format!("vec={v}"));
        }
        if self.compute_root != ComputeRootPolicy::Keep {
            parts.push(format!("root={}", self.compute_root.name()));
        }
        write!(f, "{}", parts.join(","))
    }
}

/// Every benchmark at the given scale: the ten Table II kernels in the
/// paper's order, then the NN family, then the Video family.
pub fn all_workloads(scale: WorkloadScale) -> Vec<Workload> {
    vec![
        single::brighten(scale),
        single::blur(scale),
        single::downsample(scale),
        single::upsample(scale),
        single::shift(scale),
        single::histogram(scale),
        multi::bilateral_grid(scale),
        multi::interpolate(scale),
        multi::local_laplacian(scale),
        multi::stencil_chain(scale),
        nn::gemm(scale),
        nn::conv3x3(scale),
        nn::row_softmax(scale),
        video::frame_delta(scale),
        video::temporal_blur(scale),
        video::motion_energy(scale),
    ]
}

/// The workloads of one family, in [`all_workloads`] order.
pub fn workloads_in_family(family: WorkloadFamily, scale: WorkloadScale) -> Vec<Workload> {
    all_workloads(scale).into_iter().filter(|w| w.family == family).collect()
}

/// Looks up one benchmark by its paper name.
pub fn workload_by_name(name: &str, scale: WorkloadScale) -> Option<Workload> {
    all_workloads(scale).into_iter().find(|w| w.name.eq_ignore_ascii_case(name))
}

/// The widest legal 2-D tile for a `w`×`h` output on the 32-PE vault
/// slice, from a fixed preference ladder — the same small-size fallback
/// idea as StencilChain's 16/8/4 ladder, extended with rectangular rungs
/// so every `w`,`h` that are multiples of 8 (and ≥ 32 total tiles) map.
/// Shared by the NN conv and the Video family, whose workloads must stay
/// legal down to 32×32 and at non-square loadgen sizes.
pub(crate) fn ladder_tile(w: u32, h: u32) -> (u32, u32) {
    let legal = |tw: u32, th: u32| {
        w.is_multiple_of(tw) && h.is_multiple_of(th) && ((w / tw) * (h / th)).is_multiple_of(32)
    };
    [(32u32, 8u32), (16, 8), (8, 8), (8, 4), (4, 4), (4, 2), (4, 1)]
        .into_iter()
        .find(|&(tw, th)| legal(tw, th))
        .unwrap_or((4, 1))
}

/// The row-tile height for the reduction-style NN workloads (GEMM,
/// row-softmax), whose grid is 1 tile wide × `h/th` tiles tall: the
/// largest `th` dividing `h` that keeps the tile count a multiple of the
/// 32 SIMB lanes. `None` when `h` has no such divisor (e.g. `h` < 32).
pub(crate) fn row_tile_height(h: u32) -> Option<u32> {
    (1..=h).rev().find(|&th| h.is_multiple_of(th) && (h / th).is_multiple_of(32))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_lists_families_in_order() {
        let ws = all_workloads(WorkloadScale::tiny());
        let names: Vec<_> = ws.iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            vec![
                // Table II, in the paper's order.
                "Brighten",
                "Blur",
                "Downsample",
                "Upsample",
                "Shift",
                "Histogram",
                "BilateralGrid",
                "Interpolate",
                "LocalLaplacian",
                "StencilChain",
                // NN family.
                "Gemm",
                "Conv3x3",
                "RowSoftmax",
                // Video family.
                "FrameDelta",
                "TemporalBlur",
                "MotionEnergy",
            ]
        );
        let in_family = |f| ws.iter().filter(|w| w.family == f).count();
        assert_eq!(in_family(WorkloadFamily::Image), 10);
        assert_eq!(in_family(WorkloadFamily::Nn), 3);
        assert_eq!(in_family(WorkloadFamily::Video), 3);
        for f in WorkloadFamily::ALL {
            let names: Vec<_> =
                workloads_in_family(f, WorkloadScale::tiny()).iter().map(|w| w.name).collect();
            assert!(!names.is_empty(), "{f}: empty family");
            for w in &ws {
                assert_eq!(w.family == f, names.contains(&w.name), "{}", w.name);
            }
        }
    }

    #[test]
    fn stage_counts_match_table2() {
        let ws = all_workloads(WorkloadScale::tiny());
        let count = |n: &str| ws.iter().find(|w| w.name == n).unwrap().stages;
        assert_eq!(count("BilateralGrid"), 4);
        assert_eq!(count("Interpolate"), 12);
        assert_eq!(count("LocalLaplacian"), 23);
        assert_eq!(count("StencilChain"), 32);
    }

    #[test]
    fn new_family_stage_counts() {
        let ws = all_workloads(WorkloadScale::tiny());
        let get = |n: &str| ws.iter().find(|w| w.name == n).unwrap();
        // GEMM: one accumulation stage per 4-wide K chunk.
        assert_eq!(get("Gemm").stages, 8);
        assert_eq!(get("Conv3x3").stages, 2);
        // RowSoftmax at 128²: 5 max-tree + 5 sum-tree levels (128 → 4),
        // the exp base, 4 squarings and the normalize.
        assert_eq!(get("RowSoftmax").stages, 16);
        assert_eq!(get("FrameDelta").stages, 1);
        assert_eq!(get("TemporalBlur").stages, 1);
        assert_eq!(get("MotionEnergy").stages, 2);
        // The declared stage count always matches the built pipeline.
        for w in &ws {
            assert_eq!(w.stages, w.pipeline.stage_count(), "{}", w.name);
        }
    }

    #[test]
    fn family_round_trips_and_reduction_widths() {
        for f in WorkloadFamily::ALL {
            assert_eq!(WorkloadFamily::parse(f.name()).unwrap(), f);
        }
        assert!(WorkloadFamily::parse("audio").is_err());
        assert_eq!(nn::reduction_widths(128), vec![128, 64, 32, 16, 8, 4]);
        assert_eq!(nn::reduction_widths(96), vec![96, 48, 24, 12]);
        assert_eq!(nn::reduction_widths(4), vec![4]);
        // Ladder tiles stay legal on the 32-PE slice for every loadgen
        // size (multiples of 8 with ≥ 32 tiles available).
        for (w, h) in [(32u32, 32u32), (64, 32), (64, 64), (96, 64), (128, 64), (512, 512)] {
            let (tw, th) = ladder_tile(w, h);
            assert_eq!(w % tw, 0, "{w}x{h}");
            assert_eq!(h % th, 0, "{w}x{h}");
            assert_eq!((w / tw) * (h / th) % 32, 0, "{w}x{h}");
        }
        assert_eq!(row_tile_height(512), Some(16));
        assert_eq!(row_tile_height(32), Some(1));
        assert_eq!(row_tile_height(24), None);
    }

    #[test]
    fn lookup_by_name_case_insensitive() {
        assert!(workload_by_name("blur", WorkloadScale::tiny()).is_some());
        assert!(workload_by_name("BLUR", WorkloadScale::tiny()).is_some());
        assert!(workload_by_name("nope", WorkloadScale::tiny()).is_none());
    }

    #[test]
    fn inputs_match_pipeline_declarations() {
        for w in all_workloads(WorkloadScale::tiny()) {
            assert_eq!(w.inputs.len(), w.pipeline.inputs().len(), "{} input count", w.name);
            for (def, (src, img)) in w.pipeline.inputs().iter().zip(&w.inputs) {
                assert_eq!(def.source, *src, "{} input order", w.name);
                assert_eq!(def.extent, (img.width(), img.height()), "{} input extent", w.name);
            }
        }
    }

    #[test]
    fn schedule_override_rewrites_every_func() {
        let w = workload_by_name("Blur", WorkloadScale::tiny()).unwrap();
        let ov = ScheduleOverride {
            tile: Some((16, 4)),
            load_pgsm: Some(false),
            vectorize: None,
            compute_root: ComputeRootPolicy::OutputOnly,
        };
        let re = w.with_override(&ov).unwrap();
        for (name, s) in re.pipeline.schedule_knobs() {
            assert_eq!(s.tile, (16, 4), "{name}");
            assert!(!s.load_pgsm, "{name}");
            assert_eq!(s.vectorize, 4, "{name} keeps the hand width");
        }
        // OutputOnly: blur_x is no longer a root, so it inlines.
        assert_eq!(re.pipeline.root_stages().len(), 1);
        // The original still has both roots.
        assert_eq!(w.pipeline.root_stages().len(), 2);
        // Bad overrides are rejected with the workload named.
        let bad = ScheduleOverride { vectorize: Some(3), ..ScheduleOverride::default() };
        assert!(w.with_override(&bad).unwrap_err().contains("Blur"));
    }

    #[test]
    fn empty_override_is_identity() {
        let ov = ScheduleOverride::default();
        assert!(ov.is_empty());
        assert_eq!(ov.to_string(), "default");
        let w = workload_by_name("Brighten", WorkloadScale::tiny()).unwrap();
        let re = w.with_override(&ov).unwrap();
        assert_eq!(re.pipeline, w.pipeline);
        let full = ScheduleOverride {
            tile: Some((8, 8)),
            load_pgsm: Some(true),
            vectorize: Some(4),
            compute_root: ComputeRootPolicy::All,
        };
        assert!(!full.is_empty());
        assert_eq!(full.to_string(), "tile=8x8,pgsm=on,vec=4,root=all");
    }

    #[test]
    fn compute_root_policy_round_trips() {
        for p in [ComputeRootPolicy::Keep, ComputeRootPolicy::All, ComputeRootPolicy::OutputOnly] {
            assert_eq!(ComputeRootPolicy::parse(p.name()).unwrap(), p);
        }
        assert!(ComputeRootPolicy::parse("never").is_err());
    }

    #[test]
    fn reference_interpreter_runs_every_workload() {
        for w in all_workloads(WorkloadScale::tiny()) {
            let images: Vec<_> = w.inputs.iter().map(|(_, img)| img.clone()).collect();
            let out = ipim_frontend::interpret(&w.pipeline, &images)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert_eq!((out.width(), out.height()), w.output_extent(), "{}", w.name);
            assert!(
                out.data().iter().all(|v| v.is_finite()),
                "{} produced non-finite pixels",
                w.name
            );
        }
    }
}
