//! Deterministic synthetic image generation (the DIV8K stand-in).
//!
//! Real photographs have strong local correlation with broadband detail;
//! the generator sums three octaves of bilinearly-interpolated value noise,
//! normalized to `[0, 1)`. All evaluated kernels are content-independent in
//! runtime (Histogram's binning is exercised by the full-range values), so
//! this preserves the workloads' behaviour (see DESIGN.md §2).

use ipim_frontend::Image;
use ipim_simkit::Rng;

/// Generates a `width × height` natural-image-like test image.
///
/// Deterministic in `(width, height, seed)`.
pub fn synthetic_image(width: u32, height: u32, seed: u64) -> Image {
    let mut img = Image::new(width, height);
    // Three octaves of value noise at coarse/medium/fine granularity.
    let octaves = [(16u32, 0.6f32), (4, 0.3), (1, 0.1)];
    let mut layers = Vec::new();
    for (i, (cell, weight)) in octaves.iter().enumerate() {
        let gw = width.div_ceil(*cell) + 2;
        let gh = height.div_ceil(*cell) + 2;
        let mut rng = Rng::new(seed.wrapping_add(i as u64 * 0x9E37_79B9));
        let grid: Vec<f32> = (0..gw * gh).map(|_| rng.next_f32()).collect();
        layers.push((*cell, *weight, gw, grid));
    }
    for y in 0..height {
        for x in 0..width {
            let mut v = 0.0f32;
            for (cell, weight, gw, grid) in &layers {
                let fx = x as f32 / *cell as f32;
                let fy = y as f32 / *cell as f32;
                let x0 = fx as u32;
                let y0 = fy as u32;
                let tx = fx - x0 as f32;
                let ty = fy - y0 as f32;
                let at = |gx: u32, gy: u32| grid[(gy * gw + gx) as usize];
                let top = at(x0, y0) * (1.0 - tx) + at(x0 + 1, y0) * tx;
                let bot = at(x0, y0 + 1) * (1.0 - tx) + at(x0 + 1, y0 + 1) * tx;
                v += weight * (top * (1.0 - ty) + bot * ty);
            }
            img.set(x, y, v.clamp(0.0, 0.999_999));
        }
    }
    img
}

/// A Gaussian-shaped lookup table of `n` entries over `[0, 1]` with width
/// `sigma` — the range kernel of the bilateral grid's slice stage.
pub fn lut_gaussian(n: u32, sigma: f32) -> Image {
    let mut img = Image::new(n, 1);
    for i in 0..n {
        let t = i as f32 / (n - 1) as f32;
        let d = (t - 0.5) / sigma;
        // exp(-d²/2) approximated by a well-behaved rational so device and
        // host agree bit-for-bit is not required (LUT is host-computed).
        img.set(i, 0, (-0.5 * d * d).exp());
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = synthetic_image(64, 32, 7);
        let b = synthetic_image(64, 32, 7);
        assert_eq!(a.max_abs_diff(&b), 0.0);
        let c = synthetic_image(64, 32, 8);
        assert!(a.max_abs_diff(&c) > 0.0);
    }

    #[test]
    fn values_in_unit_range() {
        let img = synthetic_image(128, 64, 1);
        assert!(img.data().iter().all(|&v| (0.0..1.0).contains(&v)));
    }

    #[test]
    fn has_local_correlation() {
        // Neighboring pixels should be far more similar than random pairs.
        let img = synthetic_image(128, 128, 2);
        let mut neighbor = 0.0f64;
        let mut distant = 0.0f64;
        let mut n = 0u32;
        for y in 0..127 {
            for x in 0..64 {
                neighbor += (img.get(x, y) - img.get(x + 1, y)).abs() as f64;
                distant += (img.get(x, y) - img.get(x + 64, y)).abs() as f64;
                n += 1;
            }
        }
        assert!(neighbor / n as f64 * 2.0 < distant / n as f64, "no spatial structure");
    }

    #[test]
    fn lut_is_peaked_at_center() {
        let lut = lut_gaussian(64, 0.2);
        assert!(lut.get(32, 0) > lut.get(0, 0));
        assert!(lut.get(32, 0) > lut.get(63, 0));
        assert!((lut.get(31, 0) - 1.0).abs() < 0.05);
    }
}
