//! Property tests for the NN/video families' golden-interpreter semantics
//! (DESIGN.md §13): the reference interpreter's *reduction* and *gather*
//! paths are checked against independent re-implementations over random
//! extents and random input images, with simkit shrinking on failure.
//!
//! These pin the two DSL patterns the new families stand on:
//!
//! * the width-halving row-reduction tree (RowSoftmax) — every stage and
//!   the final constant-x combine must fold in exactly the declared order;
//! * the computed-index gather (Gemm's flattened `B` strip) — the
//!   fractional `+ 0.5` in the coordinate must vanish under the
//!   interpreter's integer coordinate semantics, leaving exactly
//!   `x·K + k`;
//! * the data-dependent LUT gather (Conv3x3's activation) — quantize,
//!   truncate, clamp.
//!
//! Replay a failure exactly with
//! `IPIM_PROP_REPLAY=<seed> cargo test -p ipim-workloads <test_name>`.

use ipim_frontend::interpret;
use ipim_simkit::prop::{self, tuple3};
use ipim_workloads::{conv3x3, gemm, row_softmax, synthetic_image, WorkloadScale};

/// The reduction-tree widths, mirroring the (crate-private) ladder the
/// workloads schedule: halve while the next level stays a multiple of 4.
/// Re-implemented here so the test is an independent oracle.
fn tree_widths(w: u32) -> Vec<u32> {
    let mut widths = vec![w];
    let mut cur = w;
    while cur.is_multiple_of(2) && (cur / 2).is_multiple_of(4) && cur > 4 {
        cur /= 2;
        widths.push(cur);
    }
    widths
}

/// Random extents for the row kernels: width a multiple of 4 (the SIMB
/// lane width — the narrowest schedulable func), height unconstrained.
/// Shrinks toward 4×1.
fn extent_gen() -> prop::Gen<(u32, u32, u64)> {
    tuple3(prop::u32_in(1, 17), prop::u32_in(1, 49), prop::u64_any())
        .map(|(wq, h, seed)| (wq * 4, h, seed))
}

#[test]
fn prop_interpreter_row_softmax_matches_reduction_tree_oracle() {
    prop::check(
        "prop_interpreter_row_softmax_matches_reduction_tree_oracle",
        &extent_gen(),
        |&(w, h, seed)| {
            let mut wl = row_softmax(WorkloadScale { width: w, height: h });
            let img = synthetic_image(w, h, seed);
            wl.inputs[0].1 = img.clone();
            let got = interpret(&wl.pipeline, std::slice::from_ref(&img)).expect("interpret");

            for y in 0..h {
                let row: Vec<f32> = (0..w).map(|x| img.get(x, y)).collect();
                // Max tree, in declared fold order.
                let mut m = row.clone();
                for &fw in &tree_widths(w)[1..] {
                    m = (0..fw as usize).map(|i| m[2 * i].max(m[2 * i + 1])).collect();
                }
                let row_max = m[1..].iter().fold(m[0], |a, &b| a.max(b));
                // exp(t) ≈ (1 + t/16)^16 via four squarings, exactly as
                // the pipeline computes it.
                let e: Vec<f32> = row
                    .iter()
                    .map(|&v| {
                        let mut b = (v - row_max) * (1.0 / 16.0) + 1.0;
                        for _ in 0..4 {
                            b *= b;
                        }
                        b
                    })
                    .collect();
                // Sum tree, then the constant-x combine fold.
                let mut s = e.clone();
                for &fw in &tree_widths(w)[1..] {
                    s = (0..fw as usize).map(|i| s[2 * i] + s[2 * i + 1]).collect();
                }
                let row_sum = s[1..].iter().fold(s[0], |a, &b| a + b);
                for x in 0..w {
                    let want = e[x as usize] / row_sum;
                    let have = got.get(x, y);
                    assert!(
                        (want - have).abs() <= 1e-6,
                        "({x},{y}) of {w}x{h}: interpreter {have} vs oracle {want}"
                    );
                }
            }
        },
    );
}

#[test]
fn prop_interpreter_gemm_gather_indexes_exactly_x_k_plus_k() {
    prop::check(
        "prop_interpreter_gemm_gather_indexes_exactly_x_k_plus_k",
        &extent_gen(),
        |&(w, h, seed)| {
            let mut wl = gemm(WorkloadScale { width: w, height: h });
            // The inner dimension is whatever the workload declared for
            // its A operand — derived, not assumed, so the oracle tracks
            // the constant.
            let k = wl.inputs[0].1.width();
            let a = synthetic_image(k, h, seed);
            let b = synthetic_image(w * k, 1, seed ^ 0x9E37_79B9_7F4A_7C15);
            wl.inputs[0].1 = a.clone();
            wl.inputs[1].1 = b.clone();
            let got = interpret(&wl.pipeline, &[a.clone(), b.clone()]).expect("interpret");

            // Chunked accumulation in the pipeline's exact fold order: the
            // gather index `x·K + t + 0.5` must truncate to `x·K + t`.
            let chunk = 4u32;
            for y in 0..h {
                for x in 0..w {
                    let mut acc = 0.0f32;
                    for c in 0..k / chunk {
                        for t in 0..chunk {
                            let kk = c * chunk + t;
                            acc += a.get(kk, y) * b.get(x * k + kk, 0);
                        }
                    }
                    let have = got.get(x, y);
                    assert!(
                        (acc - have).abs() <= 1e-5 * acc.abs().max(1.0),
                        "({x},{y}) of {w}x{h} k={k}: interpreter {have} vs oracle {acc}"
                    );
                }
            }
        },
    );
}

#[test]
fn prop_interpreter_conv3x3_lut_gather_quantizes_and_clamps() {
    // Width/height ≥ 8 keeps a non-empty interior; the border rows are
    // skipped so the oracle need not re-implement coordinate clamping.
    let gen = tuple3(prop::u32_in(2, 13), prop::u32_in(3, 33), prop::u64_any())
        .map(|(wq, h, seed)| (wq * 4, h, seed));
    prop::check(
        "prop_interpreter_conv3x3_lut_gather_quantizes_and_clamps",
        &gen,
        |&(w, h, seed)| {
            let mut wl = conv3x3(WorkloadScale { width: w, height: h });
            let img = synthetic_image(w, h, seed);
            let lut = wl.inputs[1].1.clone();
            wl.inputs[0].1 = img.clone();
            let got = interpret(&wl.pipeline, &[img.clone(), lut.clone()]).expect("interpret");

            let wts = [1.0f32, 2.0, 1.0, 2.0, 4.0, 2.0, 1.0, 2.0, 1.0].map(|v| v / 16.0);
            for y in 1..h - 1 {
                for x in 1..w - 1 {
                    let mut acc = 0.0f32;
                    for (i, wt) in wts.iter().enumerate() {
                        let (dx, dy) = ((i % 3) as i32 - 1, (i / 3) as i32 - 1);
                        acc += img.get((x as i32 + dx) as u32, (y as i32 + dy) as u32) * wt;
                    }
                    let idx = ((acc * 63.9).trunc() as i64).clamp(0, 63) as u32;
                    let want = lut.get(idx, 0);
                    let have = got.get(x, y);
                    // The index computation must agree *exactly* (a gather
                    // off by one entry is a wrong LUT cell, not a rounding
                    // error), so compare against the oracle's cell value.
                    assert!(
                        (want - have).abs() <= 1e-6,
                        "({x},{y}) of {w}x{h}: interpreter {have} vs LUT[{idx}] = {want}"
                    );
                }
            }
        },
    );
}
