//! Reference CPU interpreter: the golden model for compiler correctness.
//!
//! Every func is materialized at its declared extent in definition order
//! (this has identical semantics to any legal schedule, since funcs are
//! pure). Source reads clamp coordinates to the source extent; coordinate
//! expressions evaluate with integer semantics and floor division, value
//! expressions with f32 semantics — matching both Halide's conventions and
//! the SIMB lowering.

use std::collections::HashMap;
use std::fmt;

use crate::expr::{BinOp, Expr, ScalarType, Var};
use crate::image::Image;
use crate::pipeline::{FuncBody, Pipeline, SourceId};

/// Error produced by the interpreter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// Number of provided images doesn't match the pipeline's inputs.
    InputCount {
        /// Inputs the pipeline declares.
        expected: usize,
        /// Images provided.
        got: usize,
    },
    /// An input image's extent doesn't match its declaration.
    InputExtent {
        /// Input name.
        name: String,
        /// Declared extent.
        expected: (u32, u32),
        /// Provided extent.
        got: (u32, u32),
    },
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::InputCount { expected, got } => {
                write!(f, "pipeline expects {expected} inputs, got {got}")
            }
            InterpError::InputExtent { name, expected, got } => {
                write!(f, "input `{name}` expects extent {expected:?}, got {got:?}")
            }
        }
    }
}

impl std::error::Error for InterpError {}

/// Evaluates `pipeline` on `inputs`, returning the output image.
///
/// # Errors
///
/// Returns [`InterpError`] if inputs don't match the pipeline declaration.
pub fn interpret(pipeline: &Pipeline, inputs: &[Image]) -> Result<Image, InterpError> {
    let all = interpret_named(pipeline, inputs)?;
    Ok(all
        .into_iter()
        .find(|(s, _)| *s == pipeline.output().source)
        .map(|(_, img)| img)
        .expect("output func evaluated"))
}

/// Evaluates `pipeline`, returning every func's buffer keyed by source id
/// (useful for debugging intermediate stages).
///
/// # Errors
///
/// Returns [`InterpError`] if inputs don't match the pipeline declaration.
pub fn interpret_named(
    pipeline: &Pipeline,
    inputs: &[Image],
) -> Result<Vec<(SourceId, Image)>, InterpError> {
    if inputs.len() != pipeline.inputs().len() {
        return Err(InterpError::InputCount {
            expected: pipeline.inputs().len(),
            got: inputs.len(),
        });
    }
    let mut buffers: HashMap<SourceId, Image> = HashMap::new();
    for (def, img) in pipeline.inputs().iter().zip(inputs) {
        if def.extent != (img.width(), img.height()) {
            return Err(InterpError::InputExtent {
                name: def.name.clone(),
                expected: def.extent,
                got: (img.width(), img.height()),
            });
        }
        buffers.insert(def.source, img.clone());
    }

    let mut out = Vec::new();
    for func in pipeline.funcs() {
        let (w, h) = func.extent;
        let mut img = Image::new(w, h);
        match func.body.as_ref().expect("validated pipeline") {
            FuncBody::Pure(e) => {
                for yy in 0..h {
                    for xx in 0..w {
                        img.set(xx, yy, eval_f(e, xx as i64, yy as i64, &buffers));
                    }
                }
            }
            FuncBody::Histogram { source, bins, min, max } => {
                let src = &buffers[source];
                let scale = *bins as f32 / (max - min);
                for yy in 0..src.height() {
                    for xx in 0..src.width() {
                        let v = src.get(xx, yy);
                        let bin = (((v - min) * scale) as i64).clamp(0, *bins as i64 - 1);
                        img.set(bin as u32, 0, img.get(bin as u32, 0) + 1.0);
                    }
                }
            }
        }
        buffers.insert(func.source, img.clone());
        out.push((func.source, img));
    }
    Ok(out)
}

/// Evaluates a value expression at output pixel `(x, y)`.
fn eval_f(e: &Expr, x: i64, y: i64, buffers: &HashMap<SourceId, Image>) -> f32 {
    match e {
        Expr::ConstF(v) => *v,
        Expr::ConstI(v) => *v as f32,
        Expr::Var(Var::X) => x as f32,
        Expr::Var(Var::Y) => y as f32,
        Expr::At(s, cx, cy) => {
            let ix = eval_i(cx, x, y, buffers);
            let iy = eval_i(cy, x, y, buffers);
            buffers[s].get_clamped(ix, iy)
        }
        Expr::Bin(op, a, b) => {
            let a = eval_f(a, x, y, buffers);
            let b = eval_f(b, x, y, buffers);
            match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => a / b,
                BinOp::Min => a.min(b),
                BinOp::Max => a.max(b),
                BinOp::Lt => (a < b) as u32 as f32,
                BinOp::Le => (a <= b) as u32 as f32,
                BinOp::Eq => (a == b) as u32 as f32,
            }
        }
        Expr::Cast(ScalarType::I32, inner) => eval_f(inner, x, y, buffers).trunc(),
        Expr::Cast(ScalarType::F32, inner) => eval_f(inner, x, y, buffers),
        Expr::Select(c, a, b) => {
            if eval_f(c, x, y, buffers) != 0.0 {
                eval_f(a, x, y, buffers)
            } else {
                eval_f(b, x, y, buffers)
            }
        }
    }
}

/// Evaluates a coordinate expression with integer semantics (floor
/// division, like Halide).
fn eval_i(e: &Expr, x: i64, y: i64, buffers: &HashMap<SourceId, Image>) -> i64 {
    match e {
        Expr::ConstF(v) => *v as i64,
        Expr::ConstI(v) => *v as i64,
        Expr::Var(Var::X) => x,
        Expr::Var(Var::Y) => y,
        Expr::Bin(op, a, b) => {
            let a = eval_i(a, x, y, buffers);
            let b = eval_i(b, x, y, buffers);
            match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => {
                    if b == 0 {
                        0
                    } else {
                        a.div_euclid(b)
                    }
                }
                BinOp::Min => a.min(b),
                BinOp::Max => a.max(b),
                BinOp::Lt => (a < b) as i64,
                BinOp::Le => (a <= b) as i64,
                BinOp::Eq => (a == b) as i64,
            }
        }
        // A cast inside a coordinate: evaluate the inner expression as a
        // value (this is the data-dependent-gather path) and truncate.
        Expr::Cast(_, inner) => eval_f(inner, x, y, buffers) as i64,
        Expr::At(..) | Expr::Select(..) => eval_f(e, x, y, buffers) as i64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{x, y};
    use crate::pipeline::PipelineBuilder;

    #[test]
    fn brighten_scales_every_pixel() {
        let mut p = PipelineBuilder::new();
        let input = p.input("in", 8, 8);
        let out = p.func("out", 8, 8);
        p.define(out, input.at(x(), y()) * 2.0);
        let pipe = p.build(out).unwrap();
        let img = Image::gradient(8, 8);
        let result = interpret(&pipe, std::slice::from_ref(&img)).unwrap();
        for yy in 0..8 {
            for xx in 0..8 {
                assert_eq!(result.get(xx, yy), img.get(xx, yy) * 2.0);
            }
        }
    }

    #[test]
    fn blur_boundary_clamps() {
        let mut p = PipelineBuilder::new();
        let input = p.input("in", 4, 1);
        let out = p.func("out", 4, 1);
        p.define(out, (input.at(x() - 1, y()) + input.at(x(), y()) + input.at(x() + 1, y())) / 3.0);
        let pipe = p.build(out).unwrap();
        let img = Image::from_vec(4, 1, vec![3.0, 6.0, 9.0, 12.0]);
        let result = interpret(&pipe, &[img]).unwrap();
        // x=0 clamps: (3+3+6)/3 = 4
        assert_eq!(result.get(0, 0), 4.0);
        assert_eq!(result.get(1, 0), 6.0);
        // x=3 clamps: (9+12+12)/3 = 11
        assert_eq!(result.get(3, 0), 11.0);
    }

    #[test]
    fn downsample_halves_extent() {
        let mut p = PipelineBuilder::new();
        let input = p.input("in", 8, 8);
        let out = p.func("out", 4, 4);
        p.define(out, input.at(x() * 2, y() * 2));
        let pipe = p.build(out).unwrap();
        let mut img = Image::new(8, 8);
        for yy in 0..8 {
            for xx in 0..8 {
                img.set(xx, yy, (yy * 8 + xx) as f32);
            }
        }
        let result = interpret(&pipe, &[img]).unwrap();
        assert_eq!(result.get(0, 0), 0.0);
        assert_eq!(result.get(1, 0), 2.0);
        assert_eq!(result.get(0, 1), 16.0);
    }

    #[test]
    fn upsample_uses_floor_division() {
        let mut p = PipelineBuilder::new();
        let input = p.input("in", 2, 1);
        let out = p.func("out", 4, 1);
        p.define(out, input.at(x() / 2, y()));
        let pipe = p.build(out).unwrap();
        let img = Image::from_vec(2, 1, vec![5.0, 7.0]);
        let result = interpret(&pipe, &[img]).unwrap();
        assert_eq!(result.data(), &[5.0, 5.0, 7.0, 7.0]);
    }

    #[test]
    fn histogram_counts_values() {
        let mut p = PipelineBuilder::new();
        let input = p.input("in", 4, 1);
        let h = p.func("hist", 4, 1);
        p.define_histogram(h, input, 0.0, 4.0);
        let pipe = p.build(h).unwrap();
        let img = Image::from_vec(4, 1, vec![0.5, 1.5, 1.7, 3.2]);
        let result = interpret(&pipe, &[img]).unwrap();
        assert_eq!(result.data(), &[1.0, 2.0, 0.0, 1.0]);
    }

    #[test]
    fn histogram_clamps_out_of_range() {
        let mut p = PipelineBuilder::new();
        let input = p.input("in", 3, 1);
        let h = p.func("hist", 2, 1);
        p.define_histogram(h, input, 0.0, 1.0);
        let pipe = p.build(h).unwrap();
        let img = Image::from_vec(3, 1, vec![-5.0, 0.2, 9.0]);
        let result = interpret(&pipe, &[img]).unwrap();
        assert_eq!(result.data(), &[2.0, 1.0]);
    }

    #[test]
    fn data_dependent_gather() {
        let mut p = PipelineBuilder::new();
        let table = p.input("table", 4, 1);
        let idx = p.input("idx", 4, 1);
        let out = p.func("out", 4, 1);
        p.define(out, table.at(idx.at(x(), y()).cast_i32(), 0));
        let pipe = p.build(out).unwrap();
        let table_img = Image::from_vec(4, 1, vec![10.0, 20.0, 30.0, 40.0]);
        let idx_img = Image::from_vec(4, 1, vec![3.0, 2.0, 1.0, 0.0]);
        let result = interpret(&pipe, &[table_img, idx_img]).unwrap();
        assert_eq!(result.data(), &[40.0, 30.0, 20.0, 10.0]);
    }

    #[test]
    fn select_blends() {
        let mut p = PipelineBuilder::new();
        let input = p.input("in", 4, 1);
        let out = p.func("out", 4, 1);
        p.define(out, input.at(x(), y()).lt(2.0).select(100.0, 200.0));
        let pipe = p.build(out).unwrap();
        let img = Image::from_vec(4, 1, vec![0.0, 1.0, 2.0, 3.0]);
        let result = interpret(&pipe, &[img]).unwrap();
        assert_eq!(result.data(), &[100.0, 100.0, 200.0, 200.0]);
    }

    #[test]
    fn wrong_input_count_rejected() {
        let mut p = PipelineBuilder::new();
        let input = p.input("in", 4, 4);
        let out = p.func("out", 4, 4);
        p.define(out, input.at(x(), y()));
        let pipe = p.build(out).unwrap();
        assert!(matches!(
            interpret(&pipe, &[]),
            Err(InterpError::InputCount { expected: 1, got: 0 })
        ));
    }

    #[test]
    fn wrong_input_extent_rejected() {
        let mut p = PipelineBuilder::new();
        let input = p.input("in", 4, 4);
        let out = p.func("out", 4, 4);
        p.define(out, input.at(x(), y()));
        let pipe = p.build(out).unwrap();
        assert!(matches!(
            interpret(&pipe, &[Image::new(5, 4)]),
            Err(InterpError::InputExtent { .. })
        ));
    }

    #[test]
    fn intermediate_buffers_available() {
        let mut p = PipelineBuilder::new();
        let input = p.input("in", 4, 4);
        let mid = p.func("mid", 4, 4);
        p.define(mid, input.at(x(), y()) + 1.0);
        let out = p.func("out", 4, 4);
        p.define(out, mid.at(x(), y()) * 2.0);
        let pipe = p.build(out).unwrap();
        let all = interpret_named(&pipe, &[Image::splat(4, 4, 1.0)]).unwrap();
        assert_eq!(all.len(), 2);
        let mid_img = &all[0].1;
        assert_eq!(mid_img.get(0, 0), 2.0);
        let out_img = &all[1].1;
        assert_eq!(out_img.get(0, 0), 4.0);
    }
}
