//! Pipelines: named functions with bodies, extents and schedules.

use std::collections::HashMap;
use std::fmt;

use crate::expr::{Expr, SourceRef};

/// Identifies a source: input images come first, then funcs, in definition
/// order (the numbering is internal; use [`SourceRef`] handles).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SourceId(pub u32);

impl fmt::Display for SourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "src{}", self.0)
    }
}

/// Identifies a `Func` within its pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub(crate) u32);

/// What a stage computes.
#[derive(Debug, Clone, PartialEq)]
pub enum FuncBody {
    /// A pure function of `x`, `y` (the common case).
    Pure(Expr),
    /// A histogram reduction over an entire source: output extent is
    /// `(bins, 1)`, counting source values binned linearly over
    /// `[min, max)`.
    ///
    /// This is a specialized reduction body standing in for Halide's
    /// general `RDom` update definitions — exactly the shape the paper's
    /// Histogram benchmark needs (a reduction of parallel partial
    /// histograms, Sec. VII-B).
    Histogram {
        /// Source whose values are counted.
        source: SourceId,
        /// Number of bins.
        bins: u32,
        /// Inclusive lower bound of the value range.
        min: f32,
        /// Exclusive upper bound of the value range.
        max: f32,
    },
}

/// Kind of a scheduled stage, used for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageKind {
    /// Pointwise / stencil / resampling stage.
    Pure,
    /// Histogram reduction stage.
    Histogram,
}

/// Per-`Func` schedule (paper Sec. V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Schedule {
    /// Materialize this func to DRAM as a kernel boundary (`compute_root`);
    /// non-root funcs are inlined into their consumers.
    pub compute_root: bool,
    /// Tile size distributed across the PE hierarchy (`ipim_tile`).
    pub tile: (u32, u32),
    /// Stage each tile's input window in the PGSM before computing.
    pub load_pgsm: bool,
    /// SIMD vector width (1 = scalar; 4 matches the 128-bit lanes).
    pub vectorize: u32,
}

impl Default for Schedule {
    fn default() -> Self {
        Self { compute_root: false, tile: (8, 8), load_pgsm: false, vectorize: 4 }
    }
}

impl Schedule {
    /// Validates the schedule's own invariants (the same checks
    /// [`PipelineBuilder::build`] runs), naming `func` in the error.
    pub fn validate(&self, func: &str) -> Result<(), PipelineError> {
        if self.tile.0 == 0 || self.tile.1 == 0 {
            return Err(PipelineError::BadSchedule {
                func: func.to_string(),
                what: "tile dimensions must be non-zero".into(),
            });
        }
        if !matches!(self.vectorize, 1 | 2 | 4) {
            return Err(PipelineError::BadSchedule {
                func: func.to_string(),
                what: format!("vectorize({}) must be 1, 2 or 4", self.vectorize),
            });
        }
        Ok(())
    }

    /// Compact one-line rendering of the knob settings, e.g.
    /// `root tile=32x8 pgsm vec=4` — the canonical form tuner reports and
    /// dedup keys use.
    pub fn summary(&self) -> String {
        format!(
            "{}tile={}x{}{} vec={}",
            if self.compute_root { "root " } else { "" },
            self.tile.0,
            self.tile.1,
            if self.load_pgsm { " pgsm" } else { "" },
            self.vectorize,
        )
    }
}

impl FuncDef {
    /// The stage kind (pure map/stencil vs. reduction).
    pub fn kind(&self) -> StageKind {
        match self.body {
            Some(FuncBody::Histogram { .. }) => StageKind::Histogram,
            _ => StageKind::Pure,
        }
    }
}

/// One function definition in a pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    /// Human-readable name.
    pub name: String,
    /// The source id this func exposes to other expressions.
    pub source: SourceId,
    /// Output extent (width, height).
    pub extent: (u32, u32),
    /// What it computes; `None` until defined.
    pub body: Option<FuncBody>,
    /// How it is mapped to iPIM.
    pub schedule: Schedule,
}

/// One input image declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct InputDef {
    /// Human-readable name.
    pub name: String,
    /// The source id expressions use.
    pub source: SourceId,
    /// Extent (width, height).
    pub extent: (u32, u32),
}

/// Error produced while building a pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// A func was used but never defined.
    UndefinedFunc(String),
    /// A func body references a source defined *after* it (cycle).
    ForwardReference {
        /// The func with the illegal reference.
        func: String,
    },
    /// The requested output func does not exist.
    UnknownOutput,
    /// A schedule is invalid (e.g. zero tile size).
    BadSchedule {
        /// The offending func.
        func: String,
        /// Description of the problem.
        what: String,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::UndefinedFunc(n) => write!(f, "func `{n}` was never defined"),
            PipelineError::ForwardReference { func } => {
                write!(f, "func `{func}` references a source defined after it")
            }
            PipelineError::UnknownOutput => write!(f, "output func does not exist"),
            PipelineError::BadSchedule { func, what } => {
                write!(f, "invalid schedule on `{func}`: {what}")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// A validated pipeline: inputs, funcs in definition order, and the output.
#[derive(Debug, Clone, PartialEq)]
pub struct Pipeline {
    inputs: Vec<InputDef>,
    funcs: Vec<FuncDef>,
    output: FuncId,
}

impl Pipeline {
    /// The declared input images, in declaration order.
    pub fn inputs(&self) -> &[InputDef] {
        &self.inputs
    }

    /// The funcs in definition (topological) order.
    pub fn funcs(&self) -> &[FuncDef] {
        &self.funcs
    }

    /// The output func.
    pub fn output(&self) -> &FuncDef {
        &self.funcs[self.output.0 as usize]
    }

    /// The output func's id.
    pub fn output_id(&self) -> FuncId {
        self.output
    }

    /// Looks up a func by source id.
    pub fn func_by_source(&self, s: SourceId) -> Option<&FuncDef> {
        self.funcs.iter().find(|f| f.source == s)
    }

    /// Looks up an input by source id.
    pub fn input_by_source(&self, s: SourceId) -> Option<&InputDef> {
        self.inputs.iter().find(|i| i.source == s)
    }

    /// Extent of any source.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not part of this pipeline.
    pub fn extent(&self, s: SourceId) -> (u32, u32) {
        self.input_by_source(s)
            .map(|i| i.extent)
            .or_else(|| self.func_by_source(s).map(|f| f.extent))
            .unwrap_or_else(|| panic!("source {s} not in pipeline"))
    }

    /// The *root stages* in execution order: every `compute_root` func (and
    /// always the output), with all non-root funcs inlined into their
    /// consumers' expressions.
    ///
    /// Each returned stage's body references only pipeline inputs and
    /// earlier root stages — the kernel boundary structure the compiler
    /// lowers (one kernel per `compute_root()`, paper Sec. V-A).
    pub fn root_stages(&self) -> Vec<FuncDef> {
        // Inline non-root bodies into later funcs, walking in order.
        let mut inlined: HashMap<SourceId, Expr> = HashMap::new();
        let mut roots = Vec::new();
        for func in &self.funcs {
            let is_root = func.schedule.compute_root || func.source == self.output_source();
            let body = func.body.clone().expect("validated pipeline");
            match body {
                FuncBody::Pure(mut e) => {
                    // Substitute all inlined (non-root) predecessors.
                    // Repeat until no inlined source remains (a substituted
                    // body can itself reference inlined funcs, but always
                    // earlier ones, so this terminates).
                    loop {
                        let srcs = e.sources();
                        let mut changed = false;
                        for s in srcs {
                            if let Some(b) = inlined.get(&s) {
                                e = e.inline(s, b);
                                changed = true;
                            }
                        }
                        if !changed {
                            break;
                        }
                    }
                    if is_root {
                        roots.push(FuncDef { body: Some(FuncBody::Pure(e)), ..func.clone() });
                    } else {
                        inlined.insert(func.source, e);
                    }
                }
                FuncBody::Histogram { source, .. } => {
                    // Reductions are always kernel boundaries, and their
                    // source must be materialized: if it was inlined,
                    // promote it to a root stage here.
                    if let Some(body) = inlined.remove(&source) {
                        let def = self
                            .funcs
                            .iter()
                            .find(|f| f.source == source)
                            .expect("inlined source is a func")
                            .clone();
                        roots.push(FuncDef { body: Some(FuncBody::Pure(body)), ..def });
                    }
                    roots.push(func.clone());
                }
            }
        }
        roots
    }

    fn output_source(&self) -> SourceId {
        self.funcs[self.output.0 as usize].source
    }

    /// Upper bound on the total expression node count [`root_stages`]
    /// (Self::root_stages) would materialize, computed arithmetically
    /// without building any expression — O(funcs × body size).
    ///
    /// Inlining a deep producer chain multiplies expression sizes, so a
    /// schedule that clears `compute_root` along such a chain can make the
    /// real count exponential. Callers (the autotuner's space enumeration)
    /// use this bound to reject those schedules *before* paying for the
    /// inlining.
    pub fn inlined_size_bound(&self) -> u64 {
        let mut inlined: HashMap<SourceId, u64> = HashMap::new();
        let mut total = 0u64;
        for func in &self.funcs {
            let is_root = func.schedule.compute_root || func.source == self.output_source();
            let size = match func.body.as_ref().expect("validated pipeline") {
                FuncBody::Pure(e) => bounded_size(e, &inlined),
                FuncBody::Histogram { source, .. } => {
                    1u64.saturating_add(inlined.get(source).copied().unwrap_or(1))
                }
            };
            if is_root {
                total = total.saturating_add(size);
            } else {
                inlined.insert(func.source, size);
            }
        }
        total
    }

    /// Rebuilds the pipeline with every func's schedule replaced by
    /// `f(func)`, re-validating each new schedule. Bodies, extents and the
    /// output are untouched — this is the autotuner's entry point: the same
    /// algorithm under a different mapping.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::BadSchedule`] if any replacement schedule
    /// is invalid.
    pub fn reschedule(
        &self,
        mut f: impl FnMut(&FuncDef) -> Schedule,
    ) -> Result<Pipeline, PipelineError> {
        let mut p = self.clone();
        for func in &mut p.funcs {
            let s = f(func);
            s.validate(&func.name)?;
            func.schedule = s;
        }
        Ok(p)
    }

    /// One `(func name, schedule)` row per func, in definition order — the
    /// knob-introspection view the tuner's schedule space and leaderboard
    /// are built from.
    pub fn schedule_knobs(&self) -> Vec<(String, Schedule)> {
        self.funcs.iter().map(|f| (f.name.clone(), f.schedule)).collect()
    }

    /// The whole pipeline's schedule rendered as one canonical line
    /// (`func=knobs; ...`), stable across runs — used to dedup candidate
    /// mappings that differ syntactically but compile identically.
    pub fn schedule_summary(&self) -> String {
        self.funcs
            .iter()
            .map(|f| format!("{}={}", f.name, f.schedule.summary()))
            .collect::<Vec<_>>()
            .join("; ")
    }

    /// Total number of stages (funcs) as the paper counts them.
    pub fn stage_count(&self) -> usize {
        self.funcs.len()
    }

    /// Canonical full-content rendering: inputs, every func's extent, body
    /// and schedule, and the output — everything that determines what the
    /// compiler produces, in one stable line.
    ///
    /// Two pipelines with equal content summaries compile to the same
    /// program on the same machine, which is what makes this string (plus a
    /// machine/options summary) a sound content-addressed cache key for
    /// compiled programs. Expression bodies render through their canonical
    /// [`fmt::Display`] form, so the summary is insensitive to how the
    /// expression tree was spelled at build time but sensitive to any
    /// change in what it computes.
    pub fn content_summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for i in &self.inputs {
            let _ = write!(out, "in {}={}x{};", i.source, i.extent.0, i.extent.1);
        }
        for f in &self.funcs {
            let _ = write!(
                out,
                "fn {}={}x{}[{}]{{{}}};",
                f.source,
                f.extent.0,
                f.extent.1,
                f.schedule.summary(),
                f.body_summary(),
            );
        }
        let _ = write!(out, "out {}", self.output_source());
        out
    }
}

impl FuncDef {
    /// Canonical rendering of this func's body (the per-stage half of
    /// [`Pipeline::content_summary`]).
    pub fn body_summary(&self) -> String {
        match &self.body {
            Some(FuncBody::Pure(e)) => e.to_string(),
            Some(FuncBody::Histogram { source, bins, min, max }) => {
                // f32 Display collapses distinct bit patterns (-0.0 vs 0.0);
                // render the bits so the summary is exactly as sensitive as
                // the generated code.
                format!(
                    "hist({source},bins={bins},min={:08x},max={:08x})",
                    min.to_bits(),
                    max.to_bits()
                )
            }
            None => "undefined".to_string(),
        }
    }
}

/// Node-count bound of `e` after substituting each reference to an
/// inlined source with that source's (already bounded) body size. A
/// substituted body's variables are themselves replaced by the reference's
/// coordinate expressions, so the body size multiplies by the coordinate
/// size — saturating arithmetic keeps runaway schedules finite.
fn bounded_size(e: &Expr, inlined: &HashMap<SourceId, u64>) -> u64 {
    match e {
        Expr::ConstF(_) | Expr::ConstI(_) | Expr::Var(_) => 1,
        Expr::At(s, cx, cy) => {
            let coords = bounded_size(cx, inlined).saturating_add(bounded_size(cy, inlined));
            match inlined.get(s) {
                Some(&body) => body.saturating_mul(coords.saturating_add(1)),
                None => coords.saturating_add(1),
            }
        }
        Expr::Bin(_, a, b) => {
            1u64.saturating_add(bounded_size(a, inlined)).saturating_add(bounded_size(b, inlined))
        }
        Expr::Cast(_, inner) => 1u64.saturating_add(bounded_size(inner, inlined)),
        Expr::Select(c, a, b) => 1u64
            .saturating_add(bounded_size(c, inlined))
            .saturating_add(bounded_size(a, inlined))
            .saturating_add(bounded_size(b, inlined)),
    }
}

/// Builds a [`Pipeline`].
#[derive(Debug, Default)]
pub struct PipelineBuilder {
    inputs: Vec<InputDef>,
    funcs: Vec<FuncDef>,
    next_source: u32,
}

impl PipelineBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares an input image.
    pub fn input(&mut self, name: &str, width: u32, height: u32) -> SourceRef {
        let source = SourceId(self.next_source);
        self.next_source += 1;
        self.inputs.push(InputDef { name: name.to_string(), source, extent: (width, height) });
        SourceRef(source)
    }

    /// Declares a func with the given output extent (body set by
    /// [`define`](Self::define)).
    pub fn func(&mut self, name: &str, width: u32, height: u32) -> SourceRef {
        let source = SourceId(self.next_source);
        self.next_source += 1;
        self.funcs.push(FuncDef {
            name: name.to_string(),
            source,
            extent: (width, height),
            body: None,
            schedule: Schedule::default(),
        });
        SourceRef(source)
    }

    /// Defines a func's pure body.
    ///
    /// # Panics
    ///
    /// Panics if `f` is not a func of this builder or is already defined.
    pub fn define(&mut self, f: SourceRef, body: Expr) {
        let func = self.func_mut(f);
        assert!(func.body.is_none(), "func `{}` defined twice", func.name);
        func.body = Some(FuncBody::Pure(body));
    }

    /// Defines a func as a histogram reduction of `source`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is unknown/already defined or `bins` doesn't match the
    /// declared extent.
    pub fn define_histogram(&mut self, f: SourceRef, source: SourceRef, min: f32, max: f32) {
        let func = self.func_mut(f);
        assert!(func.body.is_none(), "func `{}` defined twice", func.name);
        assert_eq!(func.extent.1, 1, "histogram extent must be (bins, 1)");
        let bins = func.extent.0;
        func.body = Some(FuncBody::Histogram { source: source.0, bins, min, max });
    }

    /// Mutable schedule access for a func.
    ///
    /// # Panics
    ///
    /// Panics if `f` is not a func of this builder.
    pub fn schedule(&mut self, f: SourceRef) -> ScheduleMut<'_> {
        let func = self.func_mut(f);
        ScheduleMut { schedule: &mut func.schedule }
    }

    fn func_mut(&mut self, f: SourceRef) -> &mut FuncDef {
        self.funcs
            .iter_mut()
            .find(|d| d.source == f.0)
            .unwrap_or_else(|| panic!("{} is not a func of this pipeline", f.0))
    }

    /// Validates and seals the pipeline with `output` as the final stage.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError`] if any func is undefined, references a
    /// later source, or has an invalid schedule.
    pub fn build(self, output: SourceRef) -> Result<Pipeline, PipelineError> {
        let output_idx = self
            .funcs
            .iter()
            .position(|f| f.source == output.0)
            .ok_or(PipelineError::UnknownOutput)?;
        for (i, f) in self.funcs.iter().enumerate() {
            let body =
                f.body.as_ref().ok_or_else(|| PipelineError::UndefinedFunc(f.name.clone()))?;
            f.schedule.validate(&f.name)?;
            let refs: Vec<SourceId> = match body {
                FuncBody::Pure(e) => e.sources(),
                FuncBody::Histogram { source, .. } => vec![*source],
            };
            for r in refs {
                let is_input = self.inputs.iter().any(|inp| inp.source == r);
                let is_earlier_func = self.funcs[..i].iter().any(|prev| prev.source == r);
                if !is_input && !is_earlier_func {
                    return Err(PipelineError::ForwardReference { func: f.name.clone() });
                }
            }
        }
        Ok(Pipeline { inputs: self.inputs, funcs: self.funcs, output: FuncId(output_idx as u32) })
    }
}

/// Fluent mutable view of a func's schedule.
#[derive(Debug)]
pub struct ScheduleMut<'a> {
    schedule: &'a mut Schedule,
}

impl ScheduleMut<'_> {
    /// Materialize this func to DRAM (kernel boundary).
    pub fn compute_root(self) -> Self {
        self.schedule.compute_root = true;
        self
    }

    /// Set the `ipim_tile` partition size.
    pub fn ipim_tile(self, w: u32, h: u32) -> Self {
        self.schedule.tile = (w, h);
        self
    }

    /// Stage input windows in the PGSM.
    pub fn load_pgsm(self) -> Self {
        self.schedule.load_pgsm = true;
        self
    }

    /// Set the SIMD vector width.
    pub fn vectorize(self, width: u32) -> Self {
        self.schedule.vectorize = width;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{x, y};

    #[test]
    fn simple_two_stage_pipeline() {
        let mut p = PipelineBuilder::new();
        let input = p.input("in", 16, 16);
        let bx = p.func("blurx", 16, 16);
        p.define(bx, (input.at(x() - 1, y()) + input.at(x() + 1, y())) / 2.0);
        let out = p.func("out", 16, 16);
        p.define(out, (bx.at(x(), y() - 1) + bx.at(x(), y() + 1)) / 2.0);
        p.schedule(out).compute_root().ipim_tile(8, 8).load_pgsm();
        let pipe = p.build(out).unwrap();
        assert_eq!(pipe.stage_count(), 2);
        assert_eq!(pipe.output().name, "out");
        assert_eq!(pipe.extent(input.id()), (16, 16));
    }

    #[test]
    fn non_root_funcs_are_inlined_into_roots() {
        let mut p = PipelineBuilder::new();
        let input = p.input("in", 8, 8);
        let a = p.func("a", 8, 8);
        p.define(a, input.at(x(), y()) * 2.0);
        let b = p.func("b", 8, 8);
        p.define(b, a.at(x() + 1, y()) + 1.0);
        let pipe = p.build(b).unwrap();
        let roots = pipe.root_stages();
        assert_eq!(roots.len(), 1, "`a` should inline into `b`");
        match roots[0].body.as_ref().unwrap() {
            FuncBody::Pure(e) => {
                assert_eq!(e.sources(), vec![input.id()], "only the input remains");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn compute_root_prevents_inlining() {
        let mut p = PipelineBuilder::new();
        let input = p.input("in", 8, 8);
        let a = p.func("a", 8, 8);
        p.define(a, input.at(x(), y()) * 2.0);
        p.schedule(a).compute_root();
        let b = p.func("b", 8, 8);
        p.define(b, a.at(x(), y()) + 1.0);
        let pipe = p.build(b).unwrap();
        let roots = pipe.root_stages();
        assert_eq!(roots.len(), 2);
        assert_eq!(roots[0].name, "a");
        assert_eq!(roots[1].name, "b");
    }

    #[test]
    fn undefined_func_rejected() {
        let mut p = PipelineBuilder::new();
        let _ = p.input("in", 8, 8);
        let f = p.func("f", 8, 8);
        assert_eq!(p.build(f), Err(PipelineError::UndefinedFunc("f".into())));
    }

    #[test]
    fn forward_reference_rejected() {
        let mut p = PipelineBuilder::new();
        let a = p.func("a", 8, 8);
        let b = p.func("b", 8, 8);
        p.define(a, b.at(x(), y()));
        p.define(b, Expr::ConstF(0.0));
        assert!(matches!(p.build(b), Err(PipelineError::ForwardReference { .. })));
    }

    #[test]
    fn bad_schedules_rejected() {
        let mut p = PipelineBuilder::new();
        let f = p.func("f", 8, 8);
        p.define(f, Expr::ConstF(1.0));
        p.schedule(f).ipim_tile(0, 8);
        assert!(matches!(p.build(f), Err(PipelineError::BadSchedule { .. })));

        let mut p = PipelineBuilder::new();
        let f = p.func("f", 8, 8);
        p.define(f, Expr::ConstF(1.0));
        p.schedule(f).vectorize(3);
        assert!(matches!(p.build(f), Err(PipelineError::BadSchedule { .. })));
    }

    #[test]
    fn reschedule_replaces_schedules_and_revalidates() {
        let mut p = PipelineBuilder::new();
        let input = p.input("in", 16, 16);
        let a = p.func("a", 16, 16);
        p.define(a, input.at(x(), y()) * 2.0);
        let b = p.func("b", 16, 16);
        p.define(b, a.at(x(), y()) + 1.0);
        let pipe = p.build(b).unwrap();
        assert_eq!(pipe.root_stages().len(), 1, "a inlines by default");

        // Force every func to a 4×2 compute_root tile: now both are roots.
        let re = pipe
            .reschedule(|_| Schedule { compute_root: true, tile: (4, 2), ..Schedule::default() })
            .unwrap();
        assert_eq!(re.root_stages().len(), 2);
        assert_eq!(re.schedule_knobs()[0].1.tile, (4, 2));
        // The original pipeline is untouched.
        assert_eq!(pipe.schedule_knobs()[0].1.tile, (8, 8));
        // Invalid replacement schedules are rejected.
        assert!(matches!(
            pipe.reschedule(|_| Schedule { tile: (0, 8), ..Schedule::default() }),
            Err(PipelineError::BadSchedule { .. })
        ));
        assert!(matches!(
            pipe.reschedule(|_| Schedule { vectorize: 3, ..Schedule::default() }),
            Err(PipelineError::BadSchedule { .. })
        ));
    }

    #[test]
    fn schedule_summary_is_canonical() {
        let s = Schedule { compute_root: true, tile: (32, 8), load_pgsm: true, vectorize: 4 };
        assert_eq!(s.summary(), "root tile=32x8 pgsm vec=4");
        let mut p = PipelineBuilder::new();
        let input = p.input("in", 8, 8);
        let f = p.func("f", 8, 8);
        p.define(f, input.at(x(), y()));
        let pipe = p.build(f).unwrap();
        assert_eq!(pipe.schedule_summary(), "f=tile=8x8 vec=4");
    }

    #[test]
    fn stage_kind_classification() {
        let mut p = PipelineBuilder::new();
        let input = p.input("in", 8, 8);
        let f = p.func("f", 8, 8);
        p.define(f, input.at(x(), y()));
        let h = p.func("h", 4, 1);
        p.define_histogram(h, input, 0.0, 1.0);
        let pipe = p.build(h).unwrap();
        assert_eq!(pipe.funcs()[0].kind(), StageKind::Pure);
        assert_eq!(pipe.funcs()[1].kind(), StageKind::Histogram);
    }

    #[test]
    fn histogram_body_shape() {
        let mut p = PipelineBuilder::new();
        let input = p.input("in", 32, 32);
        let h = p.func("hist", 64, 1);
        p.define_histogram(h, input, 0.0, 1.0);
        let pipe = p.build(h).unwrap();
        match pipe.output().body.as_ref().unwrap() {
            FuncBody::Histogram { bins: 64, .. } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn histogram_stays_a_root_stage() {
        let mut p = PipelineBuilder::new();
        let input = p.input("in", 32, 32);
        let pre = p.func("pre", 32, 32);
        p.define(pre, input.at(x(), y()) * 2.0);
        let h = p.func("hist", 16, 1);
        p.define_histogram(h, pre, 0.0, 2.0);
        let pipe = p.build(h).unwrap();
        let roots = pipe.root_stages();
        // `pre` is non-root but a reduction source must still be
        // materialized... the histogram body names it, so it stays.
        assert!(roots.iter().any(|r| matches!(r.body, Some(FuncBody::Histogram { .. }))));
    }
}
