//! Halide-style image-processing frontend for iPIM (paper Sec. V-A).
//!
//! Like Halide, the frontend decouples the *algorithm* (pure functions over
//! image coordinates, [`Expr`]/[`FuncDef`]) from the *schedule* (how the
//! computation maps onto hardware). iPIM adds two schedule primitives:
//!
//! * [`ScheduleMut::ipim_tile`] — partition the image into tiles and
//!   distribute them over the cube/vault/PG/PE hierarchy (Fig. 3(a)),
//! * [`ScheduleMut::load_pgsm`] — stage each tile's input window in the
//!   process-group scratchpad before computing (Fig. 3(b)),
//!
//! alongside the standard `compute_root` and `vectorize` schedules.
//!
//! The crate also contains a reference CPU interpreter ([`interpret`]) used
//! as the golden model for compiler correctness tests, and an affine access
//! analysis ([`AccessPattern`]) used by bounds inference.
//!
//! # Example
//!
//! ```
//! use ipim_frontend::{PipelineBuilder, x, y, Image, interpret};
//!
//! let mut p = PipelineBuilder::new();
//! let input = p.input("in", 64, 64);
//! let blur = p.func("blur", 64, 64);
//! p.define(
//!     blur,
//!     (input.at(x() - 1, y()) + input.at(x(), y()) + input.at(x() + 1, y())) / 3.0,
//! );
//! p.schedule(blur).compute_root().ipim_tile(8, 8).load_pgsm().vectorize(4);
//! let pipeline = p.build(blur).unwrap();
//!
//! let img = Image::gradient(64, 64);
//! let out = interpret(&pipeline, &[img]).unwrap();
//! assert_eq!(out.width(), 64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access;
mod expr;
mod image;
mod interp;
mod pipeline;

pub use access::{
    analyze_coord, collect_accesses, footprints, AccessPattern, AffineCoord, StencilFootprint,
};
pub use expr::{x, y, BinOp, Expr, ScalarType, SourceRef, Var};
pub use image::Image;
pub use interp::{interpret, interpret_named, InterpError};
pub use pipeline::{
    FuncBody, FuncDef, FuncId, Pipeline, PipelineBuilder, PipelineError, Schedule, ScheduleMut,
    SourceId, StageKind,
};
