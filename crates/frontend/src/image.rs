//! The 2D f32 image container used by the reference interpreter, the host
//! upload path and the workload generators.

/// A row-major 2D image of `f32` pixels.
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    width: u32,
    height: u32,
    data: Vec<f32>,
}

impl Image {
    /// Creates a zero-filled image.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be non-zero");
        Self { width, height, data: vec![0.0; (width * height) as usize] }
    }

    /// Creates an image from existing row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != width * height`.
    pub fn from_vec(width: u32, height: u32, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), (width * height) as usize, "data length mismatch");
        assert!(width > 0 && height > 0, "image dimensions must be non-zero");
        Self { width, height, data }
    }

    /// Creates an image filled with `v`.
    pub fn splat(width: u32, height: u32, v: f32) -> Self {
        Self { width, height, data: vec![v; (width * height) as usize] }
    }

    /// A deterministic diagonal gradient test image (values in `[0, 1)`).
    pub fn gradient(width: u32, height: u32) -> Self {
        let mut img = Self::new(width, height);
        let denom = (width + height) as f32;
        for y in 0..height {
            for x in 0..width {
                img.set(x, y, (x + y) as f32 / denom);
            }
        }
        img
    }

    /// Image width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of pixels.
    pub fn pixels(&self) -> u64 {
        self.width as u64 * self.height as u64
    }

    /// Pixel value at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range; use [`Image::get_clamped`] for boundary
    /// reads.
    pub fn get(&self, x: u32, y: u32) -> f32 {
        assert!(x < self.width && y < self.height, "pixel ({x},{y}) out of range");
        self.data[(y * self.width + x) as usize]
    }

    /// Pixel value with clamp-to-edge boundary behaviour (signed coords).
    pub fn get_clamped(&self, x: i64, y: i64) -> f32 {
        let cx = x.clamp(0, self.width as i64 - 1) as u32;
        let cy = y.clamp(0, self.height as i64 - 1) as u32;
        self.get(cx, cy)
    }

    /// Sets the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set(&mut self, x: u32, y: u32, v: f32) {
        assert!(x < self.width && y < self.height, "pixel ({x},{y}) out of range");
        self.data[(y * self.width + x) as usize] = v;
    }

    /// Row-major pixel data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Maximum absolute difference against another image.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn max_abs_diff(&self, other: &Image) -> f32 {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "image dimensions differ"
        );
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut img = Image::new(4, 3);
        assert_eq!(img.pixels(), 12);
        img.set(3, 2, 5.0);
        assert_eq!(img.get(3, 2), 5.0);
        assert_eq!(img.get(0, 0), 0.0);
    }

    #[test]
    fn clamped_boundary_reads() {
        let mut img = Image::new(2, 2);
        img.set(0, 0, 1.0);
        img.set(1, 1, 4.0);
        assert_eq!(img.get_clamped(-5, -5), 1.0);
        assert_eq!(img.get_clamped(10, 10), 4.0);
        assert_eq!(img.get_clamped(0, 0), 1.0);
    }

    #[test]
    fn gradient_is_deterministic_and_bounded() {
        let a = Image::gradient(16, 8);
        let b = Image::gradient(16, 8);
        assert_eq!(a, b);
        assert!(a.data().iter().all(|&v| (0.0..1.0).contains(&v)));
    }

    #[test]
    fn max_abs_diff_detects_changes() {
        let a = Image::splat(4, 4, 1.0);
        let mut b = a.clone();
        assert_eq!(a.max_abs_diff(&b), 0.0);
        b.set(2, 2, 1.5);
        assert_eq!(a.max_abs_diff(&b), 0.5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        Image::new(2, 2).get(2, 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_size_rejected() {
        Image::new(0, 4);
    }
}
