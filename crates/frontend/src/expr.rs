//! The expression language: pure scalar expressions over image coordinates.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

use crate::pipeline::SourceId;

/// The two spatial dimensions of an image function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Var {
    /// Horizontal coordinate.
    X,
    /// Vertical coordinate.
    Y,
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Var::X => write!(f, "x"),
            Var::Y => write!(f, "y"),
        }
    }
}

/// The `x` coordinate variable.
pub fn x() -> Expr {
    Expr::Var(Var::X)
}

/// The `y` coordinate variable.
pub fn y() -> Expr {
    Expr::Var(Var::Y)
}

/// Scalar element types (FP32 and INT32, matching the SIMB ISA lanes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarType {
    /// 32-bit float.
    F32,
    /// 32-bit integer.
    I32,
}

/// Binary operators of the expression language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (integer division floors, like Halide).
    Div,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Less-than comparison producing 1.0 / 0.0.
    Lt,
    /// Less-or-equal comparison producing 1.0 / 0.0.
    Le,
    /// Equality comparison producing 1.0 / 0.0.
    Eq,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Min => "min",
            BinOp::Max => "max",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Eq => "==",
        };
        f.write_str(s)
    }
}

/// A pure scalar expression over the coordinates `x`, `y`.
///
/// Coordinate sub-expressions (the arguments of [`Expr::At`]) are evaluated
/// with integer semantics (floor division); value expressions with f32
/// semantics. [`Expr::Cast`] bridges the two, enabling data-dependent
/// gathers (`in.at(cast_i32(f(x,y)), y)`).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A floating-point constant.
    ConstF(f32),
    /// An integer constant.
    ConstI(i32),
    /// A coordinate variable.
    Var(Var),
    /// A read of a source (input image or another `Func`) at computed
    /// coordinates, clamped to the source's extent.
    At(SourceId, Box<Expr>, Box<Expr>),
    /// A binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Type conversion.
    Cast(ScalarType, Box<Expr>),
    /// `if cond != 0 { a } else { b }`, lane-wise.
    Select(Box<Expr>, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Lane-wise minimum.
    pub fn min(self, other: impl Into<Expr>) -> Expr {
        Expr::Bin(BinOp::Min, Box::new(self), Box::new(other.into()))
    }

    /// Lane-wise maximum.
    pub fn max(self, other: impl Into<Expr>) -> Expr {
        Expr::Bin(BinOp::Max, Box::new(self), Box::new(other.into()))
    }

    /// Less-than comparison (1.0 / 0.0).
    pub fn lt(self, other: impl Into<Expr>) -> Expr {
        Expr::Bin(BinOp::Lt, Box::new(self), Box::new(other.into()))
    }

    /// Less-or-equal comparison (1.0 / 0.0).
    pub fn le(self, other: impl Into<Expr>) -> Expr {
        Expr::Bin(BinOp::Le, Box::new(self), Box::new(other.into()))
    }

    /// Equality comparison (1.0 / 0.0).
    pub fn eq_expr(self, other: impl Into<Expr>) -> Expr {
        Expr::Bin(BinOp::Eq, Box::new(self), Box::new(other.into()))
    }

    /// Clamp into `[lo, hi]`.
    pub fn clamp(self, lo: impl Into<Expr>, hi: impl Into<Expr>) -> Expr {
        self.max(lo.into()).min(hi.into())
    }

    /// Absolute value (`max(e, -e)`).
    pub fn abs(self) -> Expr {
        self.clone().max(-self)
    }

    /// Conversion to integer (truncating; used for data-dependent indices).
    pub fn cast_i32(self) -> Expr {
        Expr::Cast(ScalarType::I32, Box::new(self))
    }

    /// Conversion to float.
    pub fn cast_f32(self) -> Expr {
        Expr::Cast(ScalarType::F32, Box::new(self))
    }

    /// Lane-wise select: `if self != 0 { a } else { b }`.
    pub fn select(self, a: impl Into<Expr>, b: impl Into<Expr>) -> Expr {
        Expr::Select(Box::new(self), Box::new(a.into()), Box::new(b.into()))
    }

    /// Number of nodes in the expression tree (compiler cost heuristics).
    pub fn size(&self) -> usize {
        match self {
            Expr::ConstF(_) | Expr::ConstI(_) | Expr::Var(_) => 1,
            Expr::At(_, cx, cy) => 1 + cx.size() + cy.size(),
            Expr::Bin(_, a, b) => 1 + a.size() + b.size(),
            Expr::Cast(_, e) => 1 + e.size(),
            Expr::Select(c, a, b) => 1 + c.size() + a.size() + b.size(),
        }
    }

    /// All sources referenced by this expression, without duplicates.
    pub fn sources(&self) -> Vec<SourceId> {
        let mut out = Vec::new();
        self.visit_sources(&mut out);
        out
    }

    fn visit_sources(&self, out: &mut Vec<SourceId>) {
        match self {
            Expr::ConstF(_) | Expr::ConstI(_) | Expr::Var(_) => {}
            Expr::At(s, cx, cy) => {
                if !out.contains(s) {
                    out.push(*s);
                }
                cx.visit_sources(out);
                cy.visit_sources(out);
            }
            Expr::Bin(_, a, b) => {
                a.visit_sources(out);
                b.visit_sources(out);
            }
            Expr::Cast(_, e) => e.visit_sources(out),
            Expr::Select(c, a, b) => {
                c.visit_sources(out);
                a.visit_sources(out);
                b.visit_sources(out);
            }
        }
    }

    /// Substitutes reads of `source` with `body` (with coordinates
    /// substituted), the mechanism behind stage inlining.
    pub fn inline(&self, source: SourceId, body: &Expr) -> Expr {
        match self {
            Expr::ConstF(_) | Expr::ConstI(_) | Expr::Var(_) => self.clone(),
            Expr::At(s, cx, cy) => {
                let cx = cx.inline(source, body);
                let cy = cy.inline(source, body);
                if *s == source {
                    body.substitute_coords(&cx, &cy)
                } else {
                    Expr::At(*s, Box::new(cx), Box::new(cy))
                }
            }
            Expr::Bin(op, a, b) => {
                Expr::Bin(*op, Box::new(a.inline(source, body)), Box::new(b.inline(source, body)))
            }
            Expr::Cast(t, e) => Expr::Cast(*t, Box::new(e.inline(source, body))),
            Expr::Select(c, a, b) => Expr::Select(
                Box::new(c.inline(source, body)),
                Box::new(a.inline(source, body)),
                Box::new(b.inline(source, body)),
            ),
        }
    }

    /// Replaces `x`/`y` with the given coordinate expressions.
    pub fn substitute_coords(&self, nx: &Expr, ny: &Expr) -> Expr {
        match self {
            Expr::ConstF(_) | Expr::ConstI(_) => self.clone(),
            Expr::Var(Var::X) => nx.clone(),
            Expr::Var(Var::Y) => ny.clone(),
            Expr::At(s, cx, cy) => Expr::At(
                *s,
                Box::new(cx.substitute_coords(nx, ny)),
                Box::new(cy.substitute_coords(nx, ny)),
            ),
            Expr::Bin(op, a, b) => Expr::Bin(
                *op,
                Box::new(a.substitute_coords(nx, ny)),
                Box::new(b.substitute_coords(nx, ny)),
            ),
            Expr::Cast(t, e) => Expr::Cast(*t, Box::new(e.substitute_coords(nx, ny))),
            Expr::Select(c, a, b) => Expr::Select(
                Box::new(c.substitute_coords(nx, ny)),
                Box::new(a.substitute_coords(nx, ny)),
                Box::new(b.substitute_coords(nx, ny)),
            ),
        }
    }
}

impl From<f32> for Expr {
    fn from(v: f32) -> Self {
        Expr::ConstF(v)
    }
}

impl From<i32> for Expr {
    fn from(v: i32) -> Self {
        Expr::ConstI(v)
    }
}

macro_rules! binop_impl {
    ($trait:ident, $method:ident, $op:expr) => {
        impl $trait for Expr {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                Expr::Bin($op, Box::new(self), Box::new(rhs))
            }
        }

        impl $trait<f32> for Expr {
            type Output = Expr;
            fn $method(self, rhs: f32) -> Expr {
                Expr::Bin($op, Box::new(self), Box::new(Expr::ConstF(rhs)))
            }
        }

        impl $trait<i32> for Expr {
            type Output = Expr;
            fn $method(self, rhs: i32) -> Expr {
                Expr::Bin($op, Box::new(self), Box::new(Expr::ConstI(rhs)))
            }
        }

        impl $trait<Expr> for f32 {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                Expr::Bin($op, Box::new(Expr::ConstF(self)), Box::new(rhs))
            }
        }

        impl $trait<Expr> for i32 {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                Expr::Bin($op, Box::new(Expr::ConstI(self)), Box::new(rhs))
            }
        }
    };
}

binop_impl!(Add, add, BinOp::Add);
binop_impl!(Sub, sub, BinOp::Sub);
binop_impl!(Mul, mul, BinOp::Mul);
binop_impl!(Div, div, BinOp::Div);

impl Neg for Expr {
    type Output = Expr;

    fn neg(self) -> Expr {
        Expr::Bin(BinOp::Sub, Box::new(Expr::ConstF(0.0)), Box::new(self))
    }
}

/// A handle to a source (input image or `Func`) usable in expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceRef(pub(crate) SourceId);

impl SourceRef {
    /// Reads the source at the given coordinates (clamped to its extent).
    pub fn at(self, cx: impl Into<Expr>, cy: impl Into<Expr>) -> Expr {
        Expr::At(self.0, Box::new(cx.into()), Box::new(cy.into()))
    }

    /// The underlying source id.
    pub fn id(self) -> SourceId {
        self.0
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::ConstF(v) => write!(f, "{v}"),
            Expr::ConstI(v) => write!(f, "{v}"),
            Expr::Var(v) => write!(f, "{v}"),
            Expr::At(s, cx, cy) => write!(f, "{s}({cx}, {cy})"),
            Expr::Bin(op @ (BinOp::Min | BinOp::Max), a, b) => {
                write!(f, "{op}({a}, {b})")
            }
            Expr::Bin(op, a, b) => write!(f, "({a} {op} {b})"),
            Expr::Cast(ScalarType::I32, e) => write!(f, "i32({e})"),
            Expr::Cast(ScalarType::F32, e) => write!(f, "f32({e})"),
            Expr::Select(c, a, b) => write!(f, "select({c}, {a}, {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(n: u32) -> SourceRef {
        SourceRef(SourceId(n))
    }

    #[test]
    fn operator_overloads_build_trees() {
        let e = (x() + 1) * 2.0 - y() / 2;
        assert_eq!(e.size(), 9);
        assert!(e.to_string().contains('*'));
    }

    #[test]
    fn sources_deduplicated() {
        let s = src(3);
        let e = s.at(x(), y()) + s.at(x() + 1, y()) + src(5).at(x(), y());
        assert_eq!(e.sources(), vec![SourceId(3), SourceId(5)]);
    }

    #[test]
    fn substitute_coords_replaces_vars() {
        let e = x() + y() * 2.0;
        let sub = e.substitute_coords(&Expr::ConstI(7), &Expr::ConstI(9));
        match sub {
            Expr::Bin(BinOp::Add, a, _) => assert_eq!(*a, Expr::ConstI(7)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn inline_substitutes_body_with_shifted_coords() {
        // g(x,y) = f(x+1, y); inline f(x,y) = x * 10 into g.
        let f = SourceId(0);
        let g_body = src(0).at(x() + 1, y());
        let f_body = x() * 10.0;
        let inlined = g_body.inline(f, &f_body);
        // Result should be (x+1) * 10 with no At nodes left.
        assert!(inlined.sources().is_empty());
        assert_eq!(inlined, (x() + 1) * 10.0);
    }

    #[test]
    fn inline_keeps_other_sources() {
        let e = src(0).at(x(), y()) + src(1).at(x(), y());
        let out = e.inline(SourceId(0), &Expr::ConstF(1.0));
        assert_eq!(out.sources(), vec![SourceId(1)]);
    }

    #[test]
    fn clamp_abs_select_helpers() {
        let c = x().clamp(0, 7);
        assert!(matches!(c, Expr::Bin(BinOp::Min, _, _)));
        let a = Expr::ConstF(-2.0).abs();
        assert!(matches!(a, Expr::Bin(BinOp::Max, _, _)));
        let s = x().lt(3).select(1.0, 2.0);
        assert!(matches!(s, Expr::Select(_, _, _)));
    }

    #[test]
    fn display_is_readable() {
        let e = src(1).at(x() - 1, y()) / 3.0;
        let s = e.to_string();
        assert!(s.contains("src1") || s.contains('('), "{s}");
    }
}
