//! Affine access analysis and stencil bounds inference.
//!
//! The compiler needs to know, for each stage, which window of each source a
//! given output tile reads — to size PGSM staging buffers and to place input
//! halos (paper Fig. 3(b)). Image-processing coordinate expressions are
//! overwhelmingly affine with rational scale (`x + 1`, `2*x - 1`, `x / 2`),
//! which this module recognizes; anything else (data-dependent gathers) is
//! classified [`AccessPattern::Dynamic`] and conservatively reads the whole
//! source.

use crate::expr::{BinOp, Expr, Var};
use crate::pipeline::SourceId;

/// One coordinate of a source access: `(num * v + offset_num) / den` with
/// floor division, or dynamic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AffineCoord {
    /// An affine function of one output coordinate.
    Affine {
        /// Which output variable it depends on (`None` = constant).
        var: Option<Var>,
        /// Numerator scale.
        num: i32,
        /// Denominator (floor division), ≥ 1.
        den: i32,
        /// Additive offset (applied to the numerator).
        offset: i32,
    },
    /// Not an affine function of the output coordinates.
    Dynamic,
}

impl AffineCoord {
    /// Constant coordinate.
    pub fn constant(c: i32) -> Self {
        AffineCoord::Affine { var: None, num: 0, den: 1, offset: c }
    }

    /// Identity on a variable.
    pub fn var(v: Var) -> Self {
        AffineCoord::Affine { var: Some(v), num: 1, den: 1, offset: 0 }
    }

    /// Evaluates the coordinate range given the inclusive variable range
    /// `[lo, hi]` for the variable it depends on; `None` for dynamic.
    pub fn range(&self, lo: i64, hi: i64) -> Option<(i64, i64)> {
        match *self {
            AffineCoord::Dynamic => None,
            AffineCoord::Affine { var, num, den, offset } => {
                let den = den as i64;
                let f = |v: i64| (num as i64 * v + offset as i64).div_euclid(den);
                if var.is_none() {
                    let c = f(0);
                    return Some((c, c));
                }
                let a = f(lo);
                let b = f(hi);
                Some((a.min(b), a.max(b)))
            }
        }
    }
}

/// The (x, y) access pattern of one `At` node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessPattern {
    /// Which source is read.
    pub source: SourceId,
    /// Horizontal coordinate expression.
    pub cx: AffineCoord,
    /// Vertical coordinate expression.
    pub cy: AffineCoord,
}

impl AccessPattern {
    /// Whether either coordinate is data-dependent.
    pub fn is_dynamic(&self) -> bool {
        matches!(self.cx, AffineCoord::Dynamic) || matches!(self.cy, AffineCoord::Dynamic)
    }
}

/// The union of a stage's reads of one source, as a window transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StencilFootprint {
    /// Source being read.
    pub source: SourceId,
    /// `true` if any access is data-dependent: the footprint is the whole
    /// source.
    pub dynamic: bool,
    /// Window in x given an output x-range (see [`Self::window_x`]).
    pub x: (i32, i32, i32), // (num, den, min_offset) ... see fields below
    /// Max x offset.
    pub x_max_offset: i32,
    /// Window in y.
    pub y: (i32, i32, i32),
    /// Max y offset.
    pub y_max_offset: i32,
}

impl StencilFootprint {
    /// The inclusive x-window of the source read for output x in
    /// `[lo, hi]`.
    pub fn window_x(&self, lo: i64, hi: i64) -> (i64, i64) {
        window(self.x, self.x_max_offset, lo, hi)
    }

    /// The inclusive y-window of the source read for output y in
    /// `[lo, hi]`.
    pub fn window_y(&self, lo: i64, hi: i64) -> (i64, i64) {
        window(self.y, self.y_max_offset, lo, hi)
    }
}

fn window(coef: (i32, i32, i32), max_off: i32, lo: i64, hi: i64) -> (i64, i64) {
    let (num, den, min_off) = coef;
    let f = |v: i64, off: i64| (num as i64 * v + off).div_euclid(den as i64);
    let a = f(lo, min_off as i64).min(f(hi, min_off as i64));
    let b = f(lo, max_off as i64).max(f(hi, max_off as i64));
    (a, b)
}

/// Extracts the affine form of a *coordinate* expression.
pub fn analyze_coord(e: &Expr) -> AffineCoord {
    match e {
        Expr::ConstI(c) => AffineCoord::constant(*c),
        Expr::ConstF(c) if c.fract() == 0.0 => AffineCoord::constant(*c as i32),
        Expr::Var(v) => AffineCoord::var(*v),
        Expr::Bin(op, a, b) => {
            let a = analyze_coord(a);
            let b = analyze_coord(b);
            combine(*op, a, b)
        }
        Expr::Cast(_, inner) => analyze_coord(inner),
        _ => AffineCoord::Dynamic,
    }
}

fn combine(op: BinOp, a: AffineCoord, b: AffineCoord) -> AffineCoord {
    use AffineCoord::*;
    let (
        Affine { var: va, num: na, den: da, offset: oa },
        Affine { var: vb, num: nb, den: db, offset: ob },
    ) = (a, b)
    else {
        return Dynamic;
    };
    // Only support den=1 operands for composition except whole-result
    // division below; this covers the benchmark suite's coordinate forms.
    match op {
        BinOp::Add | BinOp::Sub => {
            let sign = if op == BinOp::Sub { -1 } else { 1 };
            if da != 1 || db != 1 {
                return Dynamic;
            }
            match (va, vb) {
                (v, None) => Affine { var: v, num: na, den: 1, offset: oa + sign * ob },
                (None, v) => Affine { var: v, num: sign * nb, den: 1, offset: oa + sign * ob },
                (Some(x), Some(y)) if x == y => {
                    Affine { var: Some(x), num: na + sign * nb, den: 1, offset: oa + sign * ob }
                }
                _ => Dynamic,
            }
        }
        BinOp::Mul => {
            if da != 1 || db != 1 {
                return Dynamic;
            }
            match (va, vb) {
                (v, None) => Affine { var: v, num: na * ob, den: 1, offset: oa * ob },
                (None, v) => Affine { var: v, num: oa * nb, den: 1, offset: oa * ob },
                _ => Dynamic,
            }
        }
        BinOp::Div => {
            // (num*v + offset) / c with constant c.
            if db != 1 || vb.is_some() || ob == 0 {
                return Dynamic;
            }
            Affine { var: va, num: na, den: da * ob, offset: oa }
        }
        _ => Dynamic,
    }
}

/// Collects every source access in a stage body.
pub fn collect_accesses(e: &Expr) -> Vec<AccessPattern> {
    let mut out = Vec::new();
    visit(e, &mut out);
    out
}

fn visit(e: &Expr, out: &mut Vec<AccessPattern>) {
    match e {
        Expr::ConstF(_) | Expr::ConstI(_) | Expr::Var(_) => {}
        Expr::At(s, cx, cy) => {
            out.push(AccessPattern { source: *s, cx: analyze_coord(cx), cy: analyze_coord(cy) });
            visit(cx, out);
            visit(cy, out);
        }
        Expr::Bin(_, a, b) => {
            visit(a, out);
            visit(b, out);
        }
        Expr::Cast(_, inner) => visit(inner, out),
        Expr::Select(c, a, b) => {
            visit(c, out);
            visit(a, out);
            visit(b, out);
        }
    }
}

/// Computes the per-source footprints of a stage body.
pub fn footprints(e: &Expr) -> Vec<StencilFootprint> {
    #[derive(Default)]
    struct AxisAcc {
        init: bool,
        coef: (i32, i32, i32),
        max_off: i32,
    }
    struct Acc {
        source: SourceId,
        dynamic: bool,
        x: AxisAcc,
        y: AxisAcc,
    }

    fn merge_axis(c: AffineCoord, expect_var: Var, axis: &mut AxisAcc, dynamic: &mut bool) {
        match c {
            AffineCoord::Dynamic => *dynamic = true,
            AffineCoord::Affine { var, num, den, offset } => {
                if var.is_some_and(|v| v != expect_var) {
                    // Transposed access (reads x along y): treat as dynamic
                    // for footprint purposes.
                    *dynamic = true;
                    return;
                }
                let (num, den) = if var.is_none() { (0, 1) } else { (num, den) };
                if !axis.init {
                    axis.init = true;
                    axis.coef = (num, den, offset);
                    axis.max_off = offset;
                } else if (axis.coef.0, axis.coef.1) == (num, den) {
                    axis.coef.2 = axis.coef.2.min(offset);
                    axis.max_off = axis.max_off.max(offset);
                } else {
                    // Mixed scales on one source: conservative.
                    *dynamic = true;
                }
            }
        }
    }

    let mut accs: Vec<Acc> = Vec::new();
    for acc in collect_accesses(e) {
        let entry = match accs.iter_mut().find(|f| f.source == acc.source) {
            Some(f) => f,
            None => {
                accs.push(Acc {
                    source: acc.source,
                    dynamic: false,
                    x: AxisAcc::default(),
                    y: AxisAcc::default(),
                });
                accs.last_mut().expect("just pushed")
            }
        };
        if acc.is_dynamic() {
            entry.dynamic = true;
            continue;
        }
        merge_axis(acc.cx, Var::X, &mut entry.x, &mut entry.dynamic);
        merge_axis(acc.cy, Var::Y, &mut entry.y, &mut entry.dynamic);
    }
    accs.into_iter()
        .map(|a| StencilFootprint {
            source: a.source,
            dynamic: a.dynamic,
            x: if a.x.init { a.x.coef } else { (1, 1, 0) },
            x_max_offset: a.x.max_off,
            y: if a.y.init { a.y.coef } else { (1, 1, 0) },
            y_max_offset: a.y.max_off,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{x, y, SourceRef};

    fn src(n: u32) -> SourceRef {
        SourceRef(SourceId(n))
    }

    #[test]
    fn plain_stencil_offsets() {
        let e = src(0).at(x() - 1, y()) + src(0).at(x() + 1, y() + 2);
        let fs = footprints(&e);
        assert_eq!(fs.len(), 1);
        let f = fs[0];
        assert!(!f.dynamic);
        assert_eq!(f.window_x(0, 7), (-1, 8));
        assert_eq!(f.window_y(0, 7), (0, 9));
    }

    #[test]
    fn downsample_scale() {
        let e = src(0).at(x() * 2 - 1, y() * 2 + 1);
        let fs = footprints(&e);
        let f = fs[0];
        assert_eq!(f.window_x(0, 3), (-1, 5));
        assert_eq!(f.window_y(0, 3), (1, 7));
    }

    #[test]
    fn upsample_floor_division() {
        let e = src(0).at(x() / 2, y() / 2);
        let fs = footprints(&e);
        let f = fs[0];
        assert_eq!(f.window_x(0, 7), (0, 3));
        // Negative coordinates floor toward -inf like Halide.
        assert_eq!(f.window_x(-3, -1), (-2, -1));
    }

    #[test]
    fn dynamic_gather_detected() {
        let e = src(0).at(src(1).at(x(), y()).cast_i32(), y());
        let fs = footprints(&e);
        let gathered = fs.iter().find(|f| f.source == SourceId(0)).unwrap();
        assert!(gathered.dynamic);
        // The inner access used for the index is itself affine.
        let index_src = fs.iter().find(|f| f.source == SourceId(1)).unwrap();
        assert!(!index_src.dynamic);
    }

    #[test]
    fn constant_coordinate() {
        let e = src(0).at(5, y());
        let fs = footprints(&e);
        let f = fs[0];
        assert_eq!(f.window_x(0, 100), (5, 5));
    }

    #[test]
    fn mixed_scales_conservative() {
        let e = src(0).at(x(), y()) + src(0).at(x() * 2, y());
        let fs = footprints(&e);
        assert!(fs[0].dynamic);
    }

    #[test]
    fn analyze_coord_forms() {
        assert_eq!(
            analyze_coord(&(x() + 3)),
            AffineCoord::Affine { var: Some(Var::X), num: 1, den: 1, offset: 3 }
        );
        assert_eq!(
            analyze_coord(&(2 * x() - 1)),
            AffineCoord::Affine { var: Some(Var::X), num: 2, den: 1, offset: -1 }
        );
        assert_eq!(
            analyze_coord(&(y() / 2)),
            AffineCoord::Affine { var: Some(Var::Y), num: 1, den: 2, offset: 0 }
        );
        assert_eq!(analyze_coord(&(x() + y())), AffineCoord::Dynamic);
    }

    #[test]
    fn affine_range_with_floor() {
        let c = AffineCoord::Affine { var: Some(Var::X), num: 1, den: 2, offset: 1 };
        // (x+1)/2 over [0,7] -> [0,4]
        assert_eq!(c.range(0, 7), Some((0, 4)));
        assert_eq!(AffineCoord::Dynamic.range(0, 7), None);
        assert_eq!(AffineCoord::constant(9).range(0, 7), Some((9, 9)));
    }
}
