//! Property tests for the frontend: root-stage inlining is semantics
//! preserving, and the interpreter is total over the expression language.

use ipim_frontend::{interpret, x, y, Expr, FuncBody, Image, PipelineBuilder};
use ipim_simkit::check;
use ipim_simkit::prop::{bool_any, f32_in, i32_in, tuple2, tuple4, vec_of, Gen};

type Term = (i32, i32, f32, bool);

/// A random affine-access expression over one input.
fn arb_expr() -> Gen<Vec<Term>> {
    vec_of(tuple4(i32_in(-3, 4), i32_in(-3, 4), f32_in(0.1, 2.0), bool_any()), 1, 6)
}

fn terms_to_expr(input: ipim_frontend::SourceRef, terms: &[Term]) -> Expr {
    let mut e: Option<Expr> = None;
    for (dx, dy, w, minmax) in terms {
        let a = input.at(x() + *dx, y() + *dy);
        let term = if *minmax { a.max(0.25) * *w } else { a * *w };
        e = Some(match e {
            None => term,
            Some(prev) => prev + term,
        });
    }
    e.expect("non-empty")
}

#[test]
fn inlining_preserves_semantics() {
    check("inlining_preserves_semantics", &tuple2(arb_expr(), arb_expr()), |(t1, t2)| {
        // Pipeline A: mid is inlined (not compute_root).
        let build = |root_mid: bool| {
            let mut p = PipelineBuilder::new();
            let input = p.input("in", 24, 24);
            let mid = p.func("mid", 24, 24);
            p.define(mid, terms_to_expr(input, t1));
            if root_mid {
                p.schedule(mid).compute_root();
            }
            let out = p.func("out", 24, 24);
            // out reads mid with the second term set.
            let mut e: Option<Expr> = None;
            for (dx, dy, w, _) in t2 {
                let term = mid.at(x() + *dx, y() + *dy) * *w;
                e = Some(match e {
                    None => term,
                    Some(prev) => prev + term,
                });
            }
            p.define(out, e.expect("non-empty"));
            p.schedule(out).compute_root();
            (p.build(out).expect("valid"), input)
        };
        let (inlined, i1) = build(false);
        let (rooted, _) = build(true);
        // Inlined pipeline has one root stage; rooted has two.
        assert_eq!(inlined.root_stages().len(), 1);
        assert_eq!(rooted.root_stages().len(), 2);
        // Same semantics either way.
        let img = Image::gradient(24, 24);
        let _ = i1;
        let a = interpret(&inlined, std::slice::from_ref(&img)).expect("inlined");
        let b = interpret(&rooted, &[img]).expect("rooted");
        assert!(a.max_abs_diff(&b) <= 1e-4);
    });
}

#[test]
fn interpreter_is_total_and_finite() {
    check("interpreter_is_total_and_finite", &arb_expr(), |terms| {
        let mut p = PipelineBuilder::new();
        let input = p.input("in", 16, 16);
        let out = p.func("out", 16, 16);
        p.define(out, terms_to_expr(input, terms));
        let pipe = p.build(out).expect("valid");
        let img = Image::gradient(16, 16);
        let result = interpret(&pipe, &[img]).expect("interpret");
        assert!(result.data().iter().all(|v| v.is_finite()));
    });
}

#[test]
fn root_stage_bodies_reference_only_materialized_sources() {
    check(
        "root_stage_bodies_reference_only_materialized_sources",
        &tuple2(arb_expr(), arb_expr()),
        |(t1, t2)| {
            let mut p = PipelineBuilder::new();
            let input = p.input("in", 16, 16);
            let a = p.func("a", 16, 16);
            p.define(a, terms_to_expr(input, t1));
            let b = p.func("b", 16, 16);
            let mut e: Option<Expr> = None;
            for (dx, dy, w, _) in t2 {
                let term = a.at(x() + *dx, y() + *dy) * *w;
                e = Some(match e {
                    None => term,
                    Some(prev) => prev + term,
                });
            }
            p.define(b, e.expect("non-empty"));
            p.schedule(b).compute_root();
            let pipe = p.build(b).expect("valid");
            for stage in pipe.root_stages() {
                let FuncBody::Pure(body) = stage.body.as_ref().expect("defined") else {
                    continue;
                };
                for s in body.sources() {
                    // Every referenced source is an input or an earlier root.
                    let is_input = pipe.input_by_source(s).is_some();
                    let is_root = pipe.root_stages().iter().any(|r| r.source == s);
                    assert!(is_input || is_root, "stage references inlined source");
                }
            }
        },
    );
}
