//! Property tests for the matrix/report subsystem (simkit harness).
//!
//! Three contracts:
//!
//! 1. **Wire round-trip** — any cell serialized to its JSONL line and
//!    parsed back compares exactly equal (f64 fields use
//!    shortest-round-trip printing), and whole files round-trip too.
//! 2. **Renderer determinism** — `render` is a pure function of stream
//!    *contents*: shuffling the input line order produces byte-identical
//!    markdown.
//! 3. **Fingerprint stability** — a cell's fingerprint depends only on
//!    its own coordinates, never on the order backends were enumerated
//!    in when the matrix was produced.

use ipim_report::{
    parse_matrix, render, Anchor, Backend, Bound, FigLine, MatrixCell, MatrixFile, Streams,
};
use ipim_simkit::prop::{bool_any, tuple6, u32_in, u64_any, usize_in, Gen};
use ipim_simkit::{check, Rng};

const NAMES: [&str; 6] = ["Brighten", "Blur", "Histogram", "Gemm", "RowSoftmax", "MotionEnergy"];

/// A generator over arbitrary (not necessarily physical) matrix cells:
/// the wire format must round-trip whatever the runner can emit.
fn gen_cell() -> Gen<MatrixCell> {
    tuple6(
        usize_in(0, NAMES.len() - 1),
        usize_in(0, Backend::ALL.len() - 1),
        u32_in(8, 8192),
        // Keep integers within f64's exact range (the wire is f64).
        u64_any().map(|c| c % (1 << 53)),
        u64_any().map(|c| c % (1 << 53)),
        bool_any(),
    )
    .map(|(wi, bi, scale, cycles, wall_ns, with_model)| {
        let backend = Backend::ALL[bi];
        // Derive float fields from the integers so the generator stays
        // deterministic under simkit replay.
        let f = |k: u64| (cycles.wrapping_mul(k) % 1_000_000) as f64 / 7.0;
        MatrixCell {
            workload: NAMES[wi].to_string(),
            family: "image".to_string(),
            scale,
            backend,
            cycles: with_model.then_some(cycles),
            kernel_ns: f(3),
            wall_ns,
            gbps: with_model.then(|| f(5)),
            pj_per_op: with_model.then(|| f(7)),
            ai: with_model.then(|| f(11)),
            peak_gbps: with_model.then(|| f(13)),
            bound: if with_model { Bound::Memory } else { Bound::NotApplicable },
        }
    })
}

#[test]
fn cell_jsonl_round_trips_exactly() {
    check("report/cell_round_trip", &gen_cell(), |cell| {
        let file = MatrixFile {
            cells: vec![cell.clone()],
            anchors: vec![Anchor { name: "fig01_gpu_profile".into(), min_ns: cell.wall_ns }],
        };
        let back = parse_matrix(&file.to_jsonl()).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(&file, &back, "serialize→parse must be the identity");
        assert_eq!(file.to_jsonl(), back.to_jsonl(), "parse→serialize must reproduce the bytes");
    });
}

#[test]
fn renderer_is_deterministic_and_order_invariant() {
    let gen = tuple6(
        u64_any(),
        usize_in(2, 10),
        u32_in(32, 128),
        u64_any().map(|c| c % (1 << 40)),
        bool_any(),
        bool_any(),
    );
    check("report/render_determinism", &gen, |&(seed, n, scale, cycles, with_fig, with_serve)| {
        let mut rng = Rng::new(seed);
        let mut cells = Vec::new();
        for i in 0..n {
            // Unique (workload, backend) coordinates per cell — a real
            // matrix never emits two cells at the same coordinates.
            let name = NAMES[i % NAMES.len()];
            let backend = Backend::ALL[(i / NAMES.len()) % Backend::ALL.len()];
            cells.push(MatrixCell {
                workload: name.to_string(),
                family: "image".to_string(),
                scale,
                backend,
                cycles: Some(cycles + i as u64 + 1),
                kernel_ns: (cycles + i as u64 + 1) as f64,
                wall_ns: rng.next_u64() % (1 << 40),
                gbps: Some(1.5),
                pj_per_op: Some(2.5),
                ai: Some(0.5),
                peak_gbps: Some(512.0),
                bound: Bound::Memory,
            });
        }
        let figures = if with_fig {
            vec![
                FigLine {
                    name: "analytic/divergence/Blur".into(),
                    divergence_pct: Some(3.25),
                    scale: Some(scale as u64),
                    ..FigLine::default()
                },
                FigLine {
                    name: "serve/throughput/workers4".into(),
                    min_ns: Some(52_000_000.0),
                    throughput_rps: Some(53.5),
                    cores: Some(1),
                    mix: Some("fast".into()),
                    transport: Some("inproc".into()),
                    ..FigLine::default()
                },
            ]
        } else {
            Vec::new()
        };
        let serve = if with_serve {
            vec![FigLine {
                name: "shard/throughput/backends3".into(),
                min_ns: Some(9_000_000.0),
                throughput_rps: Some(21.0),
                cores: Some(1),
                mix: Some("mixed".into()),
                transport: Some("shard".into()),
                ..FigLine::default()
            }]
        } else {
            Vec::new()
        };
        let mut streams = Streams { cells, figures, serve, ..Streams::default() };
        let a = render(&streams);
        assert_eq!(a, render(&streams), "same input, same bytes");
        rng.shuffle(&mut streams.cells);
        rng.shuffle(&mut streams.figures);
        rng.shuffle(&mut streams.serve);
        assert_eq!(a, render(&streams), "line order must not matter");
    });
}

#[test]
fn fingerprints_ignore_backend_enumeration_order() {
    let gen = tuple6(
        u64_any(),
        usize_in(0, NAMES.len() - 1),
        u32_in(8, 8192),
        u64_any(),
        bool_any(),
        bool_any(),
    );
    check("report/fingerprint_stability", &gen, |&(seed, wi, scale, _, _, _)| {
        let cell = |backend: Backend| MatrixCell {
            workload: NAMES[wi].to_string(),
            family: "image".to_string(),
            scale,
            backend,
            cycles: None,
            kernel_ns: 0.0,
            wall_ns: 0,
            gbps: None,
            pj_per_op: None,
            ai: None,
            peak_gbps: None,
            bound: Bound::NotApplicable,
        };
        // Enumerate the backends in a seed-shuffled order: the
        // fingerprint each cell gets must match the canonical-order run
        // cell-for-cell (a fingerprint is a function of the cell's own
        // coordinates, not of its position in the file).
        let canonical: Vec<(Backend, u64)> =
            Backend::ALL.into_iter().map(|b| (b, cell(b).fingerprint())).collect();
        let mut shuffled = Backend::ALL;
        Rng::new(seed).shuffle(&mut shuffled);
        for b in shuffled {
            let fp = cell(b).fingerprint();
            let expected = canonical.iter().find(|(cb, _)| *cb == b).unwrap().1;
            assert_eq!(fp, expected, "{}", b.name());
        }
        // And distinct coordinates never collide within one row.
        let mut fps: Vec<u64> = canonical.iter().map(|(_, fp)| *fp).collect();
        fps.sort_unstable();
        fps.dedup();
        assert_eq!(fps.len(), Backend::ALL.len(), "fingerprint collision across backends");
    });
}
