//! Units audit (ISSUE 10 satellite): pins that pJ/op and GB/s mean the
//! same thing across the three energy/bandwidth paths a matrix row
//! mixes — the cycle engines' composed `EnergyBook`, the V100 roofline
//! model, and the PonB placement — so silent unit drift (pJ vs nJ,
//! bytes/cycle vs GB/s) between `compose_energy` and `crates/baselines`
//! fails here, not in a subtly wrong REPORT.md.
//!
//! Blur 64² is the probe: a Table II workload the paper reports on both
//! sides, and one that maps on every backend at this scale.

use ipim_core::baselines::{gpu_profile, run_gpu, GpuModel};
use ipim_core::{workload_by_name, MachineConfig, Placement, Session, WorkloadScale};
use ipim_report::{arith_ops, Backend, Bound, MatrixCell};

fn blur64() -> ipim_core::Workload {
    workload_by_name("Blur", WorkloadScale { width: 64, height: 64 }).expect("Table II workload")
}

/// GB/s on a 1 GHz machine is definitionally bytes/cycle: the report's
/// bandwidth accessor and the raw counters must agree exactly, and the
/// matrix cell must carry that same number.
#[test]
fn cycle_engine_bandwidth_is_bytes_per_cycle() {
    let w = blur64();
    let session = Session::new(MachineConfig::vault_slice(1));
    let o = session.run_workload(&w, 2_000_000_000).expect("run");
    let r = &o.report;
    assert!(r.cycles > 0 && r.dram_bytes() > 0);
    let gbs = r.dram_bytes() as f64 / r.cycles as f64;
    assert_eq!(r.dram_bandwidth_gbs(), gbs, "GB/s must be bytes/cycle at 1 GHz");
    // seconds() uses the same 1 GHz clock: bytes/seconds = GB/s × 1e9.
    let bw_si = r.dram_bytes() as f64 / r.seconds();
    assert!((bw_si / 1e9 - gbs).abs() < 1e-9, "SI path disagrees: {bw_si} vs {gbs}");

    let cell = MatrixCell::from_engine_run(&w, Backend::SkipAhead, r, r.energy.total_pj(), 1);
    assert_eq!(cell.gbps, Some(gbs));
    assert_eq!(cell.cycles, Some(r.cycles));
    assert_eq!(cell.kernel_ns, r.cycles as f64, "1 GHz: cycles ≡ ns");
    // The near-bank roof is total_pes × 16 B/cycle = 512 GB/s on a slice.
    assert_eq!(cell.peak_gbps, Some(512.0));
    assert!(cell.gbps.unwrap() < cell.peak_gbps.unwrap(), "under the roof");
}

/// The composed EnergyBook total, divided by the workload's arithmetic
/// op count, is the cell's pJ/op — and it lands in the physically
/// plausible window the paper's Table III constants imply (SIMD alone is
/// 87.37 pJ/instruction across 32 lanes).
#[test]
fn cycle_engine_energy_is_composed_picojoules() {
    let w = blur64();
    let session = Session::new(MachineConfig::vault_slice(1));
    let o = session.run_workload(&w, 2_000_000_000).expect("run");
    let total_pj = o.report.energy.total_pj();
    assert!((o.report.energy.total_j() - total_pj * 1e-12).abs() < 1e-18, "pJ ↔ J");
    let ops = arith_ops(&w);
    assert_eq!(ops, w.flops_per_pixel * w.output_pixels as f64);
    let cell = MatrixCell::from_engine_run(&w, Backend::SkipAhead, &o.report, total_pj, 1);
    let pj_per_op = cell.pj_per_op.expect("engine cells carry energy");
    assert_eq!(pj_per_op, total_pj / ops);
    assert!(
        (0.1..10_000.0).contains(&pj_per_op),
        "implausible pJ/op {pj_per_op} — unit drift between compose_energy and the cell?"
    );
}

/// The GPU roofline's energy is seconds × board-watts; the cell converts
/// J → pJ with the same op denominator the engines use. Cross-model
/// check: iPIM's near-bank energy per op beats the V100's (the paper's
/// Fig. 7 direction), which only holds when both sides are in the same
/// unit.
#[test]
fn gpu_model_agrees_on_units_and_direction() {
    let w = blur64();
    let model = GpuModel::default();
    let r = run_gpu(&model, &w);
    assert!((r.energy_j - r.seconds * model.power_w).abs() < 1e-15, "E = P × t");
    let cell = MatrixCell::from_gpu(&w, 1);
    let ops = arith_ops(&w);
    let gpu_pj_per_op = cell.pj_per_op.expect("gpu cells carry energy");
    assert!((gpu_pj_per_op - r.energy_j * 1e12 / ops).abs() < 1e-6);
    assert_eq!(cell.kernel_ns, r.seconds * 1e9);
    assert_eq!(cell.peak_gbps, Some(900.0), "V100 HBM2 roof in GB/s");
    assert!((cell.gbps.unwrap() - r.achieved_bw / 1e9).abs() < 1e-9);
    // Roofline classification: Blur's index-calculation inflation makes
    // its ALU term win (Fig. 1(b) — 66 % of ALU work is indexing), so
    // its achieved bandwidth sits *under* the profiled roof; Brighten's
    // bandwidth term wins and its achieved bandwidth *is* the roof.
    let roof = model.peak_bw * gpu_profile(w.name).dram_util;
    assert!(r.achieved_bw < roof * (1.0 - 1e-9), "Blur is ALU-bound in the model");
    assert_eq!(cell.bound, Bound::Compute);
    let brighten = workload_by_name("Brighten", WorkloadScale { width: 64, height: 64 }).unwrap();
    let b = run_gpu(&model, &brighten);
    let b_roof = model.peak_bw * gpu_profile(brighten.name).dram_util;
    assert!((b.achieved_bw - b_roof).abs() <= b_roof * 1e-9);
    assert_eq!(MatrixCell::from_gpu(&brighten, 1).bound, Bound::Memory);

    let session = Session::new(MachineConfig::vault_slice(1));
    let o = session.run_workload(&w, 2_000_000_000).expect("run");
    let ipim_pj_per_op = o.report.energy.total_pj() / ops;
    assert!(
        ipim_pj_per_op < gpu_pj_per_op,
        "iPIM ({ipim_pj_per_op} pJ/op) must beat the GPU ({gpu_pj_per_op} pJ/op) on Blur — \
         if not, one side changed units"
    );
}

/// PonB is the same machine with base-die placement: 32× lower raw
/// bandwidth roof, strictly more cycles, same energy accounting path —
/// the matrix cell's roof must reflect the placement, not the default.
#[test]
fn ponb_placement_shrinks_the_roof_not_the_units() {
    let w = blur64();
    let near = Session::new(MachineConfig::vault_slice(1));
    let ponb = Session::new(MachineConfig {
        placement: Placement::BaseDie,
        ..MachineConfig::vault_slice(1)
    });
    let a = near.run_workload(&w, 2_000_000_000).expect("near-bank run");
    let b = ponb.run_workload(&w, 4_000_000_000).expect("base-die run");
    assert!(b.report.cycles > a.report.cycles, "TSV serialization must cost cycles");

    let near_cell = MatrixCell::from_engine_run(
        &w,
        Backend::SkipAhead,
        &a.report,
        a.report.energy.total_pj(),
        1,
    );
    let ponb_cell =
        MatrixCell::from_engine_run(&w, Backend::Ponb, &b.report, b.report.energy.total_pj(), 1);
    assert_eq!(near_cell.peak_gbps, Some(512.0));
    assert_eq!(ponb_cell.peak_gbps, Some(16.0), "base-die: vault TSV bundle only");
    assert_eq!(
        near_cell.peak_gbps.unwrap() / ponb_cell.peak_gbps.unwrap(),
        32.0,
        "the paper's raw 32× placement gap"
    );
    // Both placements move the same bytes for the same algorithm; only
    // time (and thus effective GB/s) differs.
    assert_eq!(a.report.dram_bytes(), b.report.dram_bytes());
    assert!(ponb_cell.gbps.unwrap() < near_cell.gbps.unwrap());
}
