//! Records the cross-backend benchmark matrix to `results/matrix.jsonl`.
//!
//! ```text
//! cargo run --release -p ipim-report --bin matrix -- \
//!     [--out results/matrix.jsonl] [--scales 32,64,128] \
//!     [--workloads Blur,Histogram] [--backends skip_ahead,gpu] \
//!     [--workers 1] [--max-cycles N] [--smoke]
//! ```
//!
//! `--smoke` is the CI shape: one workload per family (Histogram,
//! RowSoftmax, MotionEnergy) at 32² across every backend. The output file
//! is truncated, not appended — a matrix file is one coherent recording.
//!
//! Skipped cells print loudly to stdout and never fail the run; an
//! unwritable output path does.

use ipim_report::{run_matrix, Backend, MatrixPlan};

fn main() {
    let mut out_path = "results/matrix.jsonl".to_string();
    let mut plan = MatrixPlan::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |flag: &str| args.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match a.as_str() {
            "--out" => out_path = val("--out"),
            "--scales" => {
                plan.scales = val("--scales")
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| panic!("bad scale {s:?}")))
                    .collect();
            }
            "--workloads" => {
                plan.workloads = val("--workloads").split(',').map(|s| s.trim().into()).collect();
            }
            "--backends" => {
                plan.backends = val("--backends")
                    .split(',')
                    .map(|s| Backend::parse(s.trim()).unwrap_or_else(|e| panic!("{e}")))
                    .collect();
            }
            "--workers" => {
                plan.workers = val("--workers").parse().expect("--workers needs a number");
            }
            "--max-cycles" => {
                plan.max_cycles = val("--max-cycles").parse().expect("--max-cycles needs a number");
            }
            "--smoke" => {
                plan.workloads =
                    vec!["Histogram".into(), "RowSoftmax".into(), "MotionEnergy".into()];
                plan.scales = vec![32];
            }
            other => panic!(
                "unknown argument {other:?} (supported: --out FILE --scales LIST \
                 --workloads LIST --backends LIST --workers N --max-cycles N --smoke)"
            ),
        }
    }

    let run = run_matrix(&plan);
    for skip in &run.skips {
        println!("{skip}");
    }
    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create results dir");
        }
    }
    std::fs::write(&out_path, run.to_file().to_jsonl())
        .unwrap_or_else(|e| panic!("cannot write {out_path:?}: {e}"));
    println!(
        "matrix: {} cells, {} skips, anchor {} ns -> {out_path}",
        run.cells.len(),
        run.skips.len(),
        run.to_file().anchor_ns().unwrap_or(0),
    );
}
