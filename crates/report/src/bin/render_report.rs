//! Renders the trajectory report from the recorded JSONL streams.
//!
//! ```text
//! cargo run --release -p ipim-report --bin render_report -- \
//!     [--results results] [--out results/REPORT.md]
//! ```
//!
//! Missing streams are loud skips (named in the rendered report);
//! present-but-corrupt streams fail the run. The output is byte-identical
//! for identical inputs, so CI regenerates it and `cmp`s against the
//! committed copy.

use ipim_report::{render, Streams};

fn main() {
    let mut results_dir = "results".to_string();
    let mut out_path = "results/REPORT.md".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |flag: &str| args.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match a.as_str() {
            "--results" => results_dir = val("--results"),
            "--out" => out_path = val("--out"),
            other => panic!("unknown argument {other:?} (supported: --results DIR --out FILE)"),
        }
    }

    let streams = Streams::load(std::path::Path::new(&results_dir))
        .unwrap_or_else(|e| panic!("corrupt stream: {e}"));
    for m in &streams.missing {
        println!("skip: stream {m} missing from {results_dir}/ — its sections are omitted");
    }
    let text = render(&streams);
    if let Some(parent) = std::path::Path::new(&out_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("create output dir");
        }
    }
    std::fs::write(&out_path, &text).unwrap_or_else(|e| panic!("cannot write {out_path:?}: {e}"));
    println!(
        "report: {} matrix cells, {} figure entries, {} tune runs -> {out_path}",
        streams.cells.len(),
        streams.figures.len(),
        streams.tuning.len(),
    );
}
