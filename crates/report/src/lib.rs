//! Cross-backend benchmark matrix + trajectory report (ROADMAP item 5).
//!
//! Two subsystems, both std-only and hermetic:
//!
//! * [`matrix`] — runs every workload × scale × backend ({skip-ahead,
//!   legacy, analytic, PonB, GPU roofline, golden CPU interpreter}) and
//!   emits one normalized record per cell to the schema-versioned
//!   `results/matrix.jsonl`. Cycle backends fan across the serve pool and
//!   share one compiled program per workload×scale (the global
//!   `ProgramCache`'s key excludes engine and placement); unmappable
//!   cells loud-skip. A `fig01_gpu_profile` machine-speed anchor is
//!   recorded in the same file, making it self-contained for the
//!   `bench_regress --matrix` drift gate.
//! * [`render`] — folds `matrix.jsonl`, `figures.jsonl`,
//!   `serve_fresh.jsonl` and `tuning.jsonl` into one deterministic
//!   `results/REPORT.md` (matrix, speedup-vs-baseline, divergence
//!   envelope, serve/shard throughput, tuner leaderboard). Byte-identical
//!   on identical inputs — CI regenerates and `cmp`s it.
//!
//! See DESIGN.md §14 for the schema and normalization rules.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod matrix;
pub mod render;

pub use matrix::{
    arith_ops, measure_anchor, parse_matrix, read_matrix, run_matrix, Anchor, Backend, Bound,
    MatrixCell, MatrixFile, MatrixPlan, MatrixRun, ANCHOR_NAME, SCHEMA_VERSION,
};
pub use render::{render, FigLine, Streams, TuneBest};
